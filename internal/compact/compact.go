package compact

import (
	"fmt"
	"math"
	"math/bits"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/zpack"
)

// TmpSuffix is appended to a zpack path to form the in-progress generation's
// temp file. It never matches the `*.zpack` glob directory loading uses, so a
// compaction that dies mid-write leaves nothing a warm restart would serve.
const TmpSuffix = ".compact.tmp"

// DefaultMaxCols is how many cluster columns an automatic pick uses. The
// primary column gets the most significant bits of the sort key; more than
// one secondary dilutes every dimension's zone tightness.
const DefaultMaxCols = 2

// Stage names a point in the rewrite's commit protocol, in order. The Hook
// test seam fires at each; a hook error abandons the rewrite exactly there,
// simulating a crash with whatever state the protocol had on disk.
type Stage int

const (
	// StageTempCreated: the temp file exists with only its header; the
	// re-clustered rows are not yet written.
	StageTempCreated Stage = iota
	// StagePreRename: the temp file is complete and fsynced but the rename
	// has not happened; the old generation is still the visible one.
	StagePreRename
	// StagePostRename: the new generation is visible under the final path but
	// the directory entry may not be durable yet (fsync of the parent
	// directory is still pending).
	StagePostRename
)

func (s Stage) String() string {
	switch s {
	case StageTempCreated:
		return "temp-created"
	case StagePreRename:
		return "pre-rename"
	case StagePostRename:
		return "post-rename"
	}
	return fmt.Sprintf("stage(%d)", int(s))
}

// Options tunes one compaction.
type Options struct {
	// Cols pins the cluster columns in significance order. Empty means pick
	// automatically from Provenance and dictionary statistics.
	Cols []string
	// MaxCols bounds an automatic pick (0 = DefaultMaxCols).
	MaxCols int
	// Provenance is the store's cumulative skip attribution, the live
	// evidence of which columns' metadata actually proves segments empty.
	Provenance map[engine.SkipAttr]int64
	// Hook, when set, is called at each Stage of the commit protocol; a
	// non-nil return abandons the rewrite there (crash-test seam).
	Hook func(stage Stage, tmpPath string) error
}

// Result describes one completed compaction.
type Result struct {
	// Cols are the cluster columns used, in significance order.
	Cols []string `json:"cols"`
	// Rows and Segments describe the rewritten generation.
	Rows     int `json:"rows"`
	Segments int `json:"segments"`
	// UnsortedBefore is how many segments were out of primary-key order
	// before the rewrite (after it the count is zero by construction).
	UnsortedBefore int `json:"unsortedBefore"`
}

// File rewrites the zpack file at path re-clustered on the chosen columns and
// atomically replaces it. The commit protocol, in Stage order:
//
//  1. rows are sorted and written to <path>.compact.tmp (any stale temp from
//     a crashed predecessor is removed first);
//  2. the temp file is fsynced via the writer's commit, so its bytes are
//     durable before it can become visible;
//  3. os.Rename moves it over path — atomic on POSIX, so every open and every
//     glob sees either the old complete generation or the new one;
//  4. the parent directory is fsynced, making the swap itself durable.
//
// Committed bytes of the old generation are never touched: readers holding
// its descriptor keep a consistent snapshot until they close it.
func File(path string, opts Options) (Result, error) {
	r, err := zpack.Open(path)
	if err != nil {
		return Result{}, err
	}
	defer r.Close()

	cols := opts.Cols
	if len(cols) == 0 {
		cols = PickCols(r, opts.Provenance, opts.MaxCols)
		if len(cols) == 0 {
			return Result{}, fmt.Errorf("compact: %s: no usable cluster column (need a column with more than one distinct value)", path)
		}
	}
	t := r.Table()
	for _, col := range cols {
		if t.Column(col) == nil {
			return Result{}, fmt.Errorf("compact: %s: no column %q", path, col)
		}
	}
	res := Result{Cols: cols, Rows: r.Rows()}
	if res.UnsortedBefore, err = Unsorted(r, cols[0]); err != nil {
		return Result{}, err
	}
	if err := r.LoadAll(); err != nil {
		return Result{}, err
	}
	ord, err := Order(t, cols)
	if err != nil {
		return Result{}, err
	}

	tmp := path + TmpSuffix
	if err := os.Remove(tmp); err != nil && !os.IsNotExist(err) {
		return Result{}, err
	}
	fields := make([]dataset.Field, t.NumCols())
	for j, c := range t.Columns() {
		fields[j] = c.Field
	}
	w, err := zpack.Create(tmp, r.Name(), fields)
	if err != nil {
		return Result{}, err
	}
	abort := func(stage Stage) error {
		if opts.Hook == nil {
			return nil
		}
		return opts.Hook(stage, tmp)
	}
	if err := abort(StageTempCreated); err != nil {
		w.Discard()
		return Result{}, fmt.Errorf("compact: %s: aborted at %s: %w", path, StageTempCreated, err)
	}
	buf := make([]dataset.Row, 0, 512)
	flushBuf := func() error {
		if len(buf) == 0 {
			return nil
		}
		err := w.Append(buf)
		buf = buf[:0]
		return err
	}
	for _, i := range ord {
		buf = append(buf, t.Row(i))
		if len(buf) == cap(buf) {
			if err := flushBuf(); err != nil {
				w.Discard()
				os.Remove(tmp)
				return Result{}, err
			}
		}
	}
	if err := flushBuf(); err != nil {
		w.Discard()
		os.Remove(tmp)
		return Result{}, err
	}
	// Close commits: partial tail + footer + trailer, then fsync.
	if err := w.Close(); err != nil {
		os.Remove(tmp)
		return Result{}, err
	}
	res.Segments = (res.Rows + engine.SegmentSize - 1) / engine.SegmentSize
	if err := abort(StagePreRename); err != nil {
		return Result{}, fmt.Errorf("compact: %s: aborted at %s: %w", path, StagePreRename, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return Result{}, err
	}
	if err := abort(StagePostRename); err != nil {
		return Result{}, fmt.Errorf("compact: %s: aborted at %s: %w", path, StagePostRename, err)
	}
	if err := syncDir(filepath.Dir(path)); err != nil {
		return Result{}, err
	}
	return res, nil
}

// Order returns the row permutation that re-clusters t: rows sort by a key
// whose most significant word is the primary column's dense rank and whose
// remaining words z-order-interleave the secondary columns' ranks, ties
// broken by original row index. Equality predicates on the primary column get
// perfectly contiguous runs; the secondaries share the residual bit budget
// evenly, the z-order compromise. The order is a deterministic total order:
// the same table and columns always produce the same permutation.
func Order(t *dataset.Table, cols []string) ([]int, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("compact: no cluster columns")
	}
	n := t.NumRows()
	ranks := make([][]uint64, len(cols))
	for j, name := range cols {
		c := t.Column(name)
		if c == nil {
			return nil, fmt.Errorf("compact: no column %q in table %q", name, t.Name)
		}
		ranks[j] = normalizedRanks(c, n)
	}
	// Key layout: word 0 = primary rank; words 1..d-1 = balanced interleave
	// of the secondary ranks (absent when there is only one column).
	kw := len(cols) // key words per row
	keys := make([]uint64, n*kw)
	if len(cols) > 1 {
		dims := make([]uint64, len(cols)-1)
		for i := 0; i < n; i++ {
			for j := 1; j < len(cols); j++ {
				dims[j-1] = ranks[j][i]
			}
			interleaveInto(dims, keys[i*kw+1:(i+1)*kw])
		}
	}
	for i := 0; i < n; i++ {
		keys[i*kw] = ranks[0][i]
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ka := keys[idx[a]*kw : (idx[a]+1)*kw]
		kb := keys[idx[b]*kw : (idx[b]+1)*kw]
		for w := 0; w < kw; w++ {
			if ka[w] != kb[w] {
				return ka[w] < kb[w]
			}
		}
		return idx[a] < idx[b]
	})
	return idx, nil
}

// normalizedRanks maps one column's rows onto dense, left-aligned u64 ranks:
// the kind-specific monotone rank (IntRank, FloatRank, DictRanks) is
// compressed to 0..distinct-1 and shifted so its top bit lands at bit 63.
// Dense left alignment is what makes a balanced interleave meaningful —
// every dimension contributes comparable bit significance regardless of its
// value range.
func normalizedRanks(c *dataset.Column, n int) []uint64 {
	raw := make([]uint64, n)
	switch c.Field.Kind {
	case dataset.KindString:
		dr := DictRanks(c.Dict())
		for i, code := range c.Codes()[:n] {
			raw[i] = dr[code]
		}
	case dataset.KindInt:
		for i, v := range c.Ints()[:n] {
			raw[i] = IntRank(v)
		}
	default:
		for i, v := range c.Floats()[:n] {
			raw[i] = FloatRank(v)
		}
	}
	u := append([]uint64(nil), raw...)
	sort.Slice(u, func(i, j int) bool { return u[i] < u[j] })
	u = dedupSorted(u)
	if len(u) == 0 {
		return raw
	}
	width := bits.Len64(uint64(len(u) - 1))
	if width == 0 {
		width = 1
	}
	shift := uint(64 - width)
	for i, v := range raw {
		raw[i] = uint64(sort.Search(len(u), func(k int) bool { return u[k] >= v })) << shift
	}
	return raw
}

func dedupSorted(u []uint64) []uint64 {
	out := u[:0]
	for i, v := range u {
		if i == 0 || v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// PickCols chooses cluster columns from the file's metadata: columns ranked
// by cumulative skip count descending (the live evidence that their metadata
// proves segments empty), then — when no provenance names any column — by
// dictionary cardinality descending, since a higher-cardinality clustered
// column concentrates each value into a smaller segment fraction. Columns
// with a known cardinality below two (constants, empty files) can never
// produce a skip and are excluded; numeric columns without a dictionary have
// unknown cardinality and are eligible only via provenance.
func PickCols(r *zpack.Reader, prov map[engine.SkipAttr]int64, max int) []string {
	if max <= 0 {
		max = DefaultMaxCols
	}
	totals := engine.ColumnSkipTotals(prov)
	type cand struct {
		name  string
		card  int // -1 = unknown (numeric without a dictionary)
		skips int64
		ord   int
	}
	var cands []cand
	for ord, c := range r.Table().Columns() {
		name := c.Field.Name
		card := -1
		switch c.Field.Kind {
		case dataset.KindString:
			card = len(c.Dict())
		case dataset.KindInt:
			if d := r.IntDict(name); d != nil {
				card = len(d.Vals)
			}
		}
		if card >= 0 && card < 2 {
			continue
		}
		if card < 0 && totals[name] == 0 {
			continue
		}
		cands = append(cands, cand{name: name, card: card, skips: totals[name], ord: ord})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].skips != cands[j].skips {
			return cands[i].skips > cands[j].skips
		}
		if (cands[i].card >= 0) != (cands[j].card >= 0) {
			return cands[i].card >= 0
		}
		if cands[i].card != cands[j].card {
			return cands[i].card > cands[j].card
		}
		return cands[i].ord < cands[j].ord
	})
	// When live evidence exists, cluster only on evidenced columns: a column
	// no query's metadata ever proved anything with just dilutes the key.
	if len(cands) > 0 && cands[0].skips > 0 {
		n := 0
		for _, c := range cands {
			if c.skips > 0 {
				n++
			}
		}
		cands = cands[:n]
	}
	if len(cands) > max {
		cands = cands[:max]
	}
	out := make([]string, len(cands))
	for i, c := range cands {
		out[i] = c.name
	}
	return out
}

// Unsorted counts the segments of the file that are out of order on col: a
// segment whose minimum rank falls below the running maximum of the segments
// before it. A file compacted with col as the primary cluster column reports
// zero; every append of out-of-range rows grows the count, which is what the
// background compactor thresholds on.
func Unsorted(r *zpack.Reader, col string) (int, error) {
	z := r.Zone(col)
	c := r.Table().Column(col)
	if z == nil || c == nil {
		return 0, fmt.Errorf("compact: no column %q in %s", col, r.Path())
	}
	nseg := r.NumSegments()
	var lohi func(s int) (uint64, uint64)
	if c.Field.Kind == dataset.KindString {
		dr := DictRanks(c.Dict())
		lohi = func(s int) (uint64, uint64) {
			lo, hi := uint64(math.MaxUint64), uint64(0)
			base := s * z.Words
			for w := 0; w < z.Words; w++ {
				p := z.Present[base+w]
				for p != 0 {
					code := w*64 + bits.TrailingZeros64(p)
					p &= p - 1
					if code >= len(dr) {
						continue
					}
					if dr[code] < lo {
						lo = dr[code]
					}
					if dr[code] > hi {
						hi = dr[code]
					}
				}
			}
			return lo, hi
		}
	} else {
		lohi = func(s int) (uint64, uint64) {
			if z.Min[s] > z.Max[s] { // no finite values: all NaN
				return math.MaxUint64, math.MaxUint64
			}
			lo, hi := FloatRank(z.Min[s]), FloatRank(z.Max[s])
			if z.NaN[s] {
				hi = math.MaxUint64 // NaN rows rank above every finite value
			}
			return lo, hi
		}
	}
	unsorted := 0
	var prevHi uint64
	for s := 0; s < nseg; s++ {
		lo, hi := lohi(s)
		if s > 0 && lo < prevHi {
			unsorted++
		}
		if s == 0 || hi > prevHi {
			prevHi = hi
		}
	}
	return unsorted, nil
}

// SweepTmp removes stale in-progress generations (<anything>.compact.tmp)
// from dir — the leavings of a compactor that died mid-write — and returns
// the paths removed. Safe to call on a live directory: a temp file is only
// ever read by the compaction that is writing it.
func SweepTmp(dir string) ([]string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*"+TmpSuffix))
	if err != nil {
		return nil, err
	}
	var removed []string
	for _, m := range matches {
		if err := os.Remove(m); err != nil {
			return removed, err
		}
		removed = append(removed, m)
	}
	return removed, nil
}

// syncDir fsyncs a directory, making a just-renamed entry durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
