package compact

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/zpack"
)

// errCrash is the sentinel a crash-test hook returns to abandon the rewrite
// at a chosen stage, simulating the process dying right there.
var errCrash = errors.New("simulated crash")

// crashAt runs a compaction that dies at the given stage and returns the
// File error. The file at path is left exactly as the crash left it.
func crashAt(t *testing.T, path string, stage Stage) error {
	t.Helper()
	_, err := File(path, Options{
		Cols: []string{"z", "x"},
		Hook: func(s Stage, tmp string) error {
			if s == stage {
				return errCrash
			}
			return nil
		},
	})
	if err == nil {
		t.Fatalf("crash at %s: File returned nil error", stage)
	}
	if !errors.Is(err, errCrash) {
		t.Fatalf("crash at %s: error %v does not wrap the sentinel", stage, err)
	}
	if !strings.Contains(err.Error(), stage.String()) {
		t.Fatalf("crash at %s: error %q does not name the stage", stage, err)
	}
	return err
}

// restartView is what a warm restart would serve: the *.zpack glob over the
// directory, which must find exactly one complete generation.
func restartView(t *testing.T, dir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "*.zpack"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 {
		t.Fatalf("restart glob found %v, want exactly one generation", matches)
	}
	return matches[0]
}

// mustServe asserts that the file opens, verifies every checksum, and holds
// the expected row count — i.e. a restart over it serves a complete
// generation, never a torn one.
func mustServe(t *testing.T, path string, rows int) {
	t.Helper()
	r, err := zpack.Open(path)
	if err != nil {
		t.Fatalf("restart cannot open %s: %v", path, err)
	}
	defer r.Close()
	if err := r.Verify(); err != nil {
		t.Fatalf("restart generation fails verification: %v", err)
	}
	if r.Rows() != rows {
		t.Fatalf("restart generation has %d rows, want %d", r.Rows(), rows)
	}
}

// TestCrashMatrix kills the compactor at every stage of the commit protocol
// and checks the invariant the protocol promises: a warm restart always
// serves the newest COMPLETE generation, byte-identical to what was
// committed, and never a torn file.
func TestCrashMatrix(t *testing.T) {
	const rows = 20000 + 8192
	cases := []struct {
		stage   Stage
		swapped bool // true once the new generation is the visible one
	}{
		{StageTempCreated, false},
		{StagePreRename, false},
		{StagePostRename, true},
	}
	for _, tc := range cases {
		t.Run(tc.stage.String(), func(t *testing.T) {
			path := buildSweep(t)
			appendShuffled(t, path, 8192)
			dir := filepath.Dir(path)
			oldBytes, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}

			crashAt(t, path, tc.stage)

			got := restartView(t, dir)
			if got != path {
				t.Fatalf("restart would serve %s, want %s", got, path)
			}
			newBytes, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if tc.swapped {
				// Post-rename: the new generation is committed even though the
				// directory fsync never ran; it must be complete and sorted.
				if string(newBytes) == string(oldBytes) {
					t.Fatal("post-rename crash left the old generation in place")
				}
				mustServe(t, path, rows)
				r, err := zpack.Open(path)
				if err != nil {
					t.Fatal(err)
				}
				n, err := Unsorted(r, "z")
				r.Close()
				if err != nil {
					t.Fatal(err)
				}
				if n != 0 {
					t.Fatalf("committed generation has %d unsorted segments", n)
				}
			} else {
				// Pre-rename stages: the committed file is byte-identical to
				// before the crash — the rewrite never touched it.
				if string(newBytes) != string(oldBytes) {
					t.Fatalf("crash at %s modified the committed generation", tc.stage)
				}
				mustServe(t, path, rows)
				// The abandoned temp is on disk but invisible to the glob; the
				// startup sweep reclaims it and the next compaction succeeds.
				if _, err := os.Stat(path + TmpSuffix); err != nil {
					t.Fatalf("expected abandoned temp after crash at %s: %v", tc.stage, err)
				}
				if removed, err := SweepTmp(dir); err != nil || len(removed) != 1 {
					t.Fatalf("startup sweep removed %v (err %v), want the one temp", removed, err)
				}
			}

			// Recovery: a rerun over whatever the crash left behind commits
			// cleanly and yields a fully clustered generation.
			res, err := File(path, Options{Cols: []string{"z", "x"}})
			if err != nil {
				t.Fatalf("recovery compaction failed: %v", err)
			}
			if res.Rows != rows {
				t.Fatalf("recovery rewrote %d rows, want %d", res.Rows, rows)
			}
			mustServe(t, path, rows)
		})
	}
}

// TestCrashLeavesUnservableTemp: the temp abandoned at StageTempCreated (a
// bare header) and a truncated copy of a complete generation both fail to
// open — a torn file can never be mistaken for a generation even if someone
// bypasses the glob and points a reader straight at it.
func TestCrashLeavesUnservableTemp(t *testing.T) {
	path := buildSweep(t)
	crashAt(t, path, StageTempCreated)
	tmp := path + TmpSuffix
	if _, err := zpack.Open(tmp); err == nil {
		t.Fatal("header-only temp opened as a valid zpack file")
	}

	// Truncate a complete file at several points: a reader must reject every
	// prefix, because the trailer (and its checksum) lives at the very end.
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{17, len(whole) / 3, len(whole) / 2, len(whole) - 1} {
		torn := filepath.Join(t.TempDir(), "torn.zpack"+TmpSuffix)
		if err := os.WriteFile(torn, whole[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := zpack.Open(torn); err == nil {
			t.Fatalf("truncation to %d bytes still opened", n)
		}
	}
}

// TestCompactionOverStaleTemp: a crashed predecessor's temp (even one full of
// garbage) does not block or corrupt the next compaction — File removes it
// and commits a fresh rewrite.
func TestCompactionOverStaleTemp(t *testing.T) {
	path := buildSweep(t)
	appendShuffled(t, path, 4096)
	if err := os.WriteFile(path+TmpSuffix, []byte("garbage from a dead compactor"), 0o644); err != nil {
		t.Fatal(err)
	}
	before := rowMultiset(t, path)
	if _, err := File(path, Options{Cols: []string{"z"}}); err != nil {
		t.Fatal(err)
	}
	if !equalMultiset(before, rowMultiset(t, path)) {
		t.Fatal("rewrite over a stale temp changed the row multiset")
	}
	mustServe(t, path, 24096)
}

func equalMultiset(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}
