// Package compact rewrites sealed zpack files re-clustered on hot group-by
// columns, the write-side complement to zone-map skipping: appends land in
// arrival order, so tail segments span the whole key space and zone maps
// prove nothing; compaction sorts the rows by a z-order key over the cluster
// columns and writes a fresh generation, restoring the skipping win the
// clustered benchmarks measure. Cluster keys come from live skip provenance
// (the columns whose metadata already proves segments empty) with dictionary
// statistics as the cold-start fallback, and the rewrite commits crash-safely:
// temp file, fsync, atomic rename — committed bytes are never touched in
// place, and a half-written generation is invisible to the `*.zpack` glob a
// warm restart loads from.
package compact

import (
	"math"
	"sort"
)

// The z-order key encoder. Every column kind maps onto the unsigned 64-bit
// scale by a monotone rank function; the per-dimension ranks interleave
// bitwise (MSB first) into one key compared lexicographically. With a single
// dimension the interleave is the identity, so a one-column compaction is a
// plain sort by that column.

// IntRank maps an int64 onto the u64 scale preserving order: flipping the
// sign bit sends math.MinInt64 to 0 and math.MaxInt64 to the top.
func IntRank(v int64) uint64 { return uint64(v) ^ (1 << 63) }

// FloatRank maps a float64 onto the u64 scale preserving IEEE-754 order:
// non-negative values set the sign bit, negative values complement (so more
// negative sorts lower), -0 sorts immediately below +0, and NaN maps to the
// maximum rank — NaN matches no range predicate, so pushing NaN rows to the
// file's tail keeps the finite zones tight.
func FloatRank(f float64) uint64 {
	if math.IsNaN(f) {
		return math.MaxUint64
	}
	b := math.Float64bits(f)
	if b&(1<<63) != 0 {
		return ^b
	}
	return b | (1 << 63)
}

// DictRanks returns, for each dictionary code of a categorical column, the
// rank of its string in the sorted dictionary — the monotone u64 map for
// dictionary-encoded values. Codes are insertion-ordered on disk; ranks give
// the value order zone-map bitsets are compared against.
func DictRanks(dict []string) []uint64 {
	codes := make([]int, len(dict))
	for i := range codes {
		codes[i] = i
	}
	sort.Slice(codes, func(i, j int) bool { return dict[codes[i]] < dict[codes[j]] })
	ranks := make([]uint64, len(dict))
	for rank, code := range codes {
		ranks[code] = uint64(rank)
	}
	return ranks
}

// Interleave packs per-dimension ranks into one z-order key of len(dims)
// words: output bit k (counting from the most significant bit of word 0)
// carries bit 63-i of dims[j], where k = i*len(dims)+j. Dimension j=0 owns
// the most significant bit of the key, so earlier columns win ties at equal
// bit depth.
func Interleave(dims []uint64) []uint64 {
	out := make([]uint64, len(dims))
	interleaveInto(dims, out)
	return out
}

func interleaveInto(dims, out []uint64) {
	d := len(dims)
	for i := range out {
		out[i] = 0
	}
	for i := 0; i < 64; i++ {
		for j, v := range dims {
			if v&(1<<(63-uint(i))) != 0 {
				k := i*d + j
				out[k>>6] |= 1 << (63 - uint(k&63))
			}
		}
	}
}

// Deinterleave inverts Interleave for a d-dimension key.
func Deinterleave(key []uint64, d int) []uint64 {
	dims := make([]uint64, d)
	for i := 0; i < 64; i++ {
		for j := 0; j < d; j++ {
			k := i*d + j
			if key[k>>6]&(1<<(63-uint(k&63))) != 0 {
				dims[j] |= 1 << (63 - uint(i))
			}
		}
	}
	return dims
}

// KeyLess compares two equal-length z-order keys lexicographically.
func KeyLess(a, b []uint64) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
