package compact

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/workload"
	"repro/internal/zpack"
)

// buildSweep writes a clustered sweep table to a fresh zpack file and returns
// its path. 20000 rows at SegmentSize 4096 is 5 segments, contiguous on z.
func buildSweep(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "sweep.zpack")
	if err := zpack.Build(path, workload.GroupSweepClustered(20000, 16, 8, 7)); err != nil {
		t.Fatal(err)
	}
	return path
}

// appendShuffled extends the file with rows whose z values are random, the
// way live ingest dirties a clustered file.
func appendShuffled(t *testing.T, path string, rows int) {
	t.Helper()
	w, err := zpack.OpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendTable(workload.GroupSweep(rows, 16, 8, 99)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// rowMultiset renders every row of the file to a string and counts them, so
// two files can be compared as bags regardless of row order.
func rowMultiset(t *testing.T, path string) map[string]int {
	t.Helper()
	r, err := zpack.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.LoadAll(); err != nil {
		t.Fatal(err)
	}
	tab := r.Table()
	m := make(map[string]int, tab.NumRows())
	for i := 0; i < tab.NumRows(); i++ {
		parts := make([]string, 0, tab.NumCols())
		for _, v := range tab.Row(i) {
			parts = append(parts, v.String())
		}
		m[strings.Join(parts, "\x1f")]++
	}
	return m
}

func TestOrderIsDeterministicPermutationWithMonotonePrimary(t *testing.T) {
	tab := workload.GroupSweep(5000, 16, 8, 3)
	ord, err := Order(tab, []string{"z", "x"})
	if err != nil {
		t.Fatal(err)
	}
	if len(ord) != tab.NumRows() {
		t.Fatalf("permutation has %d entries, want %d", len(ord), tab.NumRows())
	}
	seen := make([]bool, len(ord))
	for _, i := range ord {
		if i < 0 || i >= len(seen) || seen[i] {
			t.Fatalf("not a permutation: %d repeated or out of range", i)
		}
		seen[i] = true
	}
	// The primary column is globally sorted: equality predicates on it get
	// contiguous runs, and Unsorted(primary) is zero after a rewrite.
	z := tab.Column("z")
	codes, dict := z.Codes(), z.Dict()
	for k := 1; k < len(ord); k++ {
		if dict[codes[ord[k-1]]] > dict[codes[ord[k]]] {
			t.Fatalf("primary column not monotone at position %d: %q > %q",
				k, dict[codes[ord[k-1]]], dict[codes[ord[k]]])
		}
	}
	again, err := Order(tab, []string{"z", "x"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ord, again) {
		t.Fatal("Order is not deterministic for identical input")
	}
}

func TestOrderSingleColumnSortsInts(t *testing.T) {
	tab := workload.GroupSweep(3000, 16, 8, 4)
	ord, err := Order(tab, []string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	xs := tab.Column("x").Ints()
	for k := 1; k < len(ord); k++ {
		if xs[ord[k-1]] > xs[ord[k]] {
			t.Fatalf("x not sorted at %d: %d > %d", k, xs[ord[k-1]], xs[ord[k]])
		}
	}
}

func TestOrderUnknownColumn(t *testing.T) {
	tab := workload.GroupSweep(100, 4, 2, 5)
	if _, err := Order(tab, []string{"nope"}); err == nil {
		t.Fatal("want error for unknown column")
	}
	if _, err := Order(tab, nil); err == nil {
		t.Fatal("want error for no columns")
	}
}

func TestPickColsByCardinalityWithoutEvidence(t *testing.T) {
	path := buildSweep(t)
	r, err := zpack.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	// No provenance: cardinality descending. z has 16 dictionary words, x has
	// an 8-value int dictionary; p1/p2 (2) lose; y has no dictionary at all,
	// so without evidence it is not a candidate.
	got := PickCols(r, nil, 2)
	if !reflect.DeepEqual(got, []string{"z", "x"}) {
		t.Fatalf("PickCols = %v, want [z x]", got)
	}
	if got := PickCols(r, nil, 1); !reflect.DeepEqual(got, []string{"z"}) {
		t.Fatalf("PickCols max=1 = %v, want [z]", got)
	}
}

func TestPickColsFollowsSkipProvenance(t *testing.T) {
	path := buildSweep(t)
	r, err := zpack.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	// Live evidence trumps cardinality, and unevidenced columns are dropped
	// entirely rather than padded in.
	prov := map[engine.SkipAttr]int64{
		{Column: "p2", Via: "dict"}: 41,
	}
	if got := PickCols(r, prov, 2); !reflect.DeepEqual(got, []string{"p2"}) {
		t.Fatalf("PickCols = %v, want [p2]", got)
	}
	// A numeric column with no dictionary is eligible once zone-map evidence
	// names it.
	prov = map[engine.SkipAttr]int64{
		{Column: "y", Via: "zonemap"}: 10,
		{Column: "z", Via: "dict"}:    90,
	}
	if got := PickCols(r, prov, 2); !reflect.DeepEqual(got, []string{"z", "y"}) {
		t.Fatalf("PickCols = %v, want [z y]", got)
	}
	// "(multi)" and "(none)" attributions never nominate a column.
	prov = map[engine.SkipAttr]int64{
		{Column: "(multi)", Via: "expr"}: 1000,
	}
	if got := PickCols(r, prov, 2); !reflect.DeepEqual(got, []string{"z", "x"}) {
		t.Fatalf("PickCols = %v, want cardinality fallback [z x]", got)
	}
}

func TestPickColsExcludesConstants(t *testing.T) {
	tab := dataset.NewTable("c", []dataset.Field{
		{Name: "k", Kind: dataset.KindString},
		{Name: "v", Kind: dataset.KindString},
	})
	for i := 0; i < 100; i++ {
		tab.AppendRow(dataset.SV("same"), dataset.SV(string(rune('a'+i%5))))
	}
	path := filepath.Join(t.TempDir(), "c.zpack")
	if err := zpack.Build(path, tab); err != nil {
		t.Fatal(err)
	}
	r, err := zpack.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := PickCols(r, nil, 2); !reflect.DeepEqual(got, []string{"v"}) {
		t.Fatalf("PickCols = %v, want [v] (constant k can never skip)", got)
	}
}

func TestUnsortedLifecycle(t *testing.T) {
	path := buildSweep(t)
	open := func() *zpack.Reader {
		r, err := zpack.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	r := open()
	n, err := Unsorted(r, "z")
	r.Close()
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("clustered file reports %d unsorted segments, want 0", n)
	}

	appendShuffled(t, path, 8192)
	r = open()
	n, err = Unsorted(r, "z")
	r.Close()
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("shuffled tail reports 0 unsorted segments, want > 0")
	}

	res, err := File(path, Options{Cols: []string{"z", "x"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.UnsortedBefore != n {
		t.Fatalf("Result.UnsortedBefore = %d, want %d", res.UnsortedBefore, n)
	}
	r = open()
	defer r.Close()
	n, err = Unsorted(r, "z")
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("compacted file reports %d unsorted segments, want 0", n)
	}
}

func TestFilePreservesRowsAndVerifies(t *testing.T) {
	path := buildSweep(t)
	appendShuffled(t, path, 5000)
	before := rowMultiset(t, path)

	res, err := File(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 25000 {
		t.Fatalf("Result.Rows = %d, want 25000", res.Rows)
	}
	if len(res.Cols) == 0 || res.Cols[0] != "z" {
		t.Fatalf("auto-picked cols = %v, want z primary", res.Cols)
	}
	if res.Segments != (25000+engine.SegmentSize-1)/engine.SegmentSize {
		t.Fatalf("Result.Segments = %d", res.Segments)
	}

	after := rowMultiset(t, path)
	if !reflect.DeepEqual(before, after) {
		t.Fatal("compaction changed the row multiset")
	}
	r, err := zpack.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Verify(); err != nil {
		t.Fatalf("compacted file fails checksum verification: %v", err)
	}
	// No leftover temp file after a clean commit.
	if _, err := os.Stat(path + TmpSuffix); !os.IsNotExist(err) {
		t.Fatalf("temp file still present after commit (stat err %v)", err)
	}
}

func TestFileUnknownColumn(t *testing.T) {
	path := buildSweep(t)
	if _, err := File(path, Options{Cols: []string{"nope"}}); err == nil {
		t.Fatal("want error for unknown pinned column")
	}
}

func TestSweepTmp(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, "a.zpack"+TmpSuffix)
	if err := os.WriteFile(stale, []byte("half-written garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	keep := filepath.Join(dir, "a.zpack")
	if err := os.WriteFile(keep, []byte("real"), 0o644); err != nil {
		t.Fatal(err)
	}
	removed, err := SweepTmp(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(removed, []string{stale}) {
		t.Fatalf("SweepTmp removed %v, want [%s]", removed, stale)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatal("stale temp survived the sweep")
	}
	if _, err := os.Stat(keep); err != nil {
		t.Fatalf("sweep touched the committed file: %v", err)
	}
}
