package compact

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// TestIntRankMonotone: the int64 -> u64 map preserves order over random pairs
// and the boundary values where the sign-bit flip could go wrong.
func TestIntRankMonotone(t *testing.T) {
	vals := []int64{math.MinInt64, math.MinInt64 + 1, -1 << 40, -2, -1, 0, 1, 2, 1 << 40, math.MaxInt64 - 1, math.MaxInt64}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		vals = append(vals, rng.Int63()-rng.Int63())
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for i := 1; i < len(vals); i++ {
		a, b := vals[i-1], vals[i]
		ra, rb := IntRank(a), IntRank(b)
		if a < b && ra >= rb {
			t.Fatalf("IntRank not monotone: %d -> %d but %d -> %d", a, ra, b, rb)
		}
		if a == b && ra != rb {
			t.Fatalf("IntRank not a function: %d -> %d and %d", a, ra, rb)
		}
	}
}

// TestFloatRankMonotone: the float64 -> u64 map preserves IEEE-754 order,
// including the negative branch, signed zero, infinities, and NaN above all.
func TestFloatRankMonotone(t *testing.T) {
	ordered := []float64{
		math.Inf(-1), -math.MaxFloat64, -1e300, -2.5, -1, -math.SmallestNonzeroFloat64,
		math.Copysign(0, -1), 0, math.SmallestNonzeroFloat64, 1, 2.5, 1e300, math.MaxFloat64, math.Inf(1),
	}
	for i := 1; i < len(ordered); i++ {
		ra, rb := FloatRank(ordered[i-1]), FloatRank(ordered[i])
		if ra >= rb {
			t.Fatalf("FloatRank not monotone at %v < %v: %d >= %d", ordered[i-1], ordered[i], ra, rb)
		}
	}
	nan := FloatRank(math.NaN())
	if nan != math.MaxUint64 {
		t.Fatalf("FloatRank(NaN) = %d, want max", nan)
	}
	rng := rand.New(rand.NewSource(2))
	vals := make([]float64, 2000)
	for i := range vals {
		vals[i] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(60)-30))
	}
	sort.Float64s(vals)
	for i := 1; i < len(vals); i++ {
		if vals[i-1] < vals[i] && FloatRank(vals[i-1]) >= FloatRank(vals[i]) {
			t.Fatalf("FloatRank not monotone: %v vs %v", vals[i-1], vals[i])
		}
	}
	for _, v := range vals {
		if FloatRank(v) >= nan {
			t.Fatalf("finite %v ranks at or above NaN", v)
		}
	}
}

// TestDictRanks: ranks are the permutation induced by sorting the dictionary.
func TestDictRanks(t *testing.T) {
	dict := []string{"pear", "apple", "zebra", "mango", "apricot"}
	ranks := DictRanks(dict)
	// Every rank 0..n-1 exactly once.
	seen := make([]bool, len(dict))
	for _, r := range ranks {
		if r >= uint64(len(dict)) || seen[r] {
			t.Fatalf("ranks %v are not a permutation", ranks)
		}
		seen[r] = true
	}
	// rank order == string order.
	for i := range dict {
		for j := range dict {
			if (dict[i] < dict[j]) != (ranks[i] < ranks[j]) {
				t.Fatalf("rank order disagrees with string order: %q->%d, %q->%d", dict[i], ranks[i], dict[j], ranks[j])
			}
		}
	}
}

func randomDims(rng *rand.Rand, d int) []uint64 {
	dims := make([]uint64, d)
	for j := range dims {
		// Mix full-range and small values so both high and low bit positions
		// get exercised.
		if rng.Intn(2) == 0 {
			dims[j] = rng.Uint64()
		} else {
			dims[j] = uint64(rng.Intn(1024))
		}
	}
	return dims
}

// TestInterleaveRoundTrip: Deinterleave inverts Interleave for 1..5 dims.
func TestInterleaveRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for d := 1; d <= 5; d++ {
		for i := 0; i < 500; i++ {
			dims := randomDims(rng, d)
			key := Interleave(dims)
			if len(key) != d {
				t.Fatalf("d=%d: key has %d words", d, len(key))
			}
			back := Deinterleave(key, d)
			if !reflect.DeepEqual(dims, back) {
				t.Fatalf("d=%d: round trip %v -> %v -> %v", d, dims, key, back)
			}
		}
	}
}

// TestInterleaveIdentityForOneDim: a single dimension's key is the value
// itself, so one-column compaction is a plain sort.
func TestInterleaveIdentityForOneDim(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		v := rng.Uint64()
		key := Interleave([]uint64{v})
		if len(key) != 1 || key[0] != v {
			t.Fatalf("Interleave([%d]) = %v", v, key)
		}
	}
}

// TestInterleaveMonotonePerDimension: raising one dimension while holding the
// others fixed strictly raises the key — the property that makes zone-map
// bounding boxes meaningful in z-order space.
func TestInterleaveMonotonePerDimension(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for d := 1; d <= 4; d++ {
		for i := 0; i < 500; i++ {
			dims := randomDims(rng, d)
			j := rng.Intn(d)
			if dims[j] == math.MaxUint64 {
				dims[j]--
			}
			bumped := append([]uint64(nil), dims...)
			// A strictly larger value in dimension j, arbitrary distance.
			bumped[j] += 1 + uint64(rng.Int63n(int64(min64(math.MaxUint64-bumped[j], 1<<62))))
			lo, hi := Interleave(dims), Interleave(bumped)
			if !KeyLess(lo, hi) {
				t.Fatalf("d=%d: key not monotone in dim %d: %v (key %v) vs %v (key %v)", d, j, dims, lo, bumped, hi)
			}
			if KeyLess(hi, lo) {
				t.Fatalf("d=%d: KeyLess not antisymmetric", d)
			}
		}
	}
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// TestInterleaveDeterministic: the encoder is a pure function — identical
// inputs produce identical keys, and KeyLess induces one total order.
func TestInterleaveDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 200; i++ {
		dims := randomDims(rng, 3)
		a, b := Interleave(dims), Interleave(append([]uint64(nil), dims...))
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("same dims produced different keys: %v vs %v", a, b)
		}
		if KeyLess(a, b) || KeyLess(b, a) {
			t.Fatal("equal keys compare unequal")
		}
	}
}
