package baseline

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/vis"
	"repro/internal/workload"
)

func tool() *Tool {
	tb := workload.Housing(workload.HousingConfig{Cities: 40, States: 8, Years: 8, Seed: 4})
	return New(engine.NewRowStore(tb), "housing")
}

func TestSpecifyAlphanumericOrder(t *testing.T) {
	viss, err := tool().Specify("year", "SoldPrice", "city", nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(viss) != 40 {
		t.Fatalf("%d visualizations, want one per city", len(viss))
	}
	for i := 1; i < len(viss); i++ {
		if viss[i].Slices[0].Value < viss[i-1].Slices[0].Value {
			t.Fatal("not alphanumeric order")
		}
	}
	if len(viss[0].Points) != 8 {
		t.Errorf("%d points, want 8 years", len(viss[0].Points))
	}
}

func TestSpecifyWithFilters(t *testing.T) {
	viss, err := tool().Specify("year", "SoldPrice", "city",
		[]Filter{{Attr: "state", Value: "state00"}}, "sum")
	if err != nil {
		t.Fatal(err)
	}
	if len(viss) != 5 {
		t.Errorf("%d cities in state00, want 5 (40 cities / 8 states)", len(viss))
	}
	viss2, err := tool().Specify("year", "SoldPrice", "city",
		[]Filter{{Attr: "year", Op: ">=", Value: "2008"}}, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(viss2[0].Points) >= 8 {
		t.Errorf("numeric filter ignored: %d points", len(viss2[0].Points))
	}
}

func TestSpecifyErrors(t *testing.T) {
	tl := tool()
	if _, err := tl.Specify("nope", "SoldPrice", "city", nil, ""); err == nil {
		t.Error("missing column should error")
	}
	if _, err := New(engine.NewRowStore(), "none").Specify("a", "b", "c", nil, ""); err == nil {
		t.Error("missing table should error")
	}
}

func TestCompareEffortReproducesFinding1(t *testing.T) {
	// The drawn pattern is a steep rise; rising cities are c%4==0, and the
	// best match is very unlikely to be the alphanumerically first city.
	eff, err := tool().CompareEffort("year", "SoldPrice", "city",
		[]float64{0, 1, 2, 3, 4, 5, 6, 7}, vis.DefaultMetric)
	if err != nil {
		t.Fatal(err)
	}
	if eff.Candidates != 40 || eff.ZenvisageExamined != 1 {
		t.Errorf("effort = %+v", eff)
	}
	if eff.BaselineExamined <= 1 {
		t.Errorf("baseline examined %d charts; the target should not be first alphabetically", eff.BaselineExamined)
	}
	if eff.BaselineExamined <= eff.ZenvisageExamined {
		t.Error("Finding 1's mechanism: baseline must examine more charts")
	}
	// The best match must be a planted riser (city000, city004, ...).
	got := eff.BestMatch
	idx := int(got[len(got)-2]-'0')*10 + int(got[len(got)-1]-'0')
	if idx%4 != 0 {
		t.Errorf("best match %s is not a rising city", got)
	}
}
