// Package baseline implements the comparison tool of the user study
// (Chapter 8): "our baseline tool replicated the basic query specification
// and output visualization capabilities of existing tools such as Tableau
// ... the baseline allowed users to visualize data by allowing them to
// specify the x-axis, y-axis, category, and filters. The baseline tool would
// populate all the visualizations, which fit the user specifications, using
// an alpha-numeric sort order."
//
// It also provides the effort comparison underlying the study's Finding 1:
// with the baseline, a user hunting for a pattern examines visualizations in
// alphanumeric order until hitting the best match; with zenvisage, the best
// match is ranked first.
package baseline

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/vis"
)

// Filter is one filter row of the baseline interface.
type Filter struct {
	Attr  string
	Op    string // =, !=, <, <=, >, >=, LIKE; default =
	Value string
}

// Tool is a baseline session over one table.
type Tool struct {
	db    engine.DB
	table string
}

// New creates a baseline tool over the back-end.
func New(db engine.DB, table string) *Tool {
	return &Tool{db: db, table: table}
}

// Specify returns every visualization matching the specification — one per
// category value, in alphanumeric order of the value, aggregating y with agg
// (default avg). This is the entirety of the baseline's query power.
func (t *Tool) Specify(x, y, category string, filters []Filter, agg string) ([]*vis.Visualization, error) {
	tb := t.db.Table(t.table)
	if tb == nil {
		return nil, fmt.Errorf("baseline: no table %q", t.table)
	}
	for _, col := range []string{x, y, category} {
		if !tb.HasColumn(col) {
			return nil, fmt.Errorf("baseline: table %q has no column %q", t.table, col)
		}
	}
	if agg == "" {
		agg = "avg"
	}
	var where string
	if len(filters) > 0 {
		parts := make([]string, len(filters))
		for i, f := range filters {
			op := f.Op
			if op == "" {
				op = "="
			}
			val := f.Value
			if c := tb.Column(f.Attr); c == nil || c.Field.Kind == dataset.KindString {
				val = "'" + strings.ReplaceAll(val, "'", "''") + "'"
			}
			parts[i] = fmt.Sprintf("%s %s %s", f.Attr, op, val)
		}
		where = " WHERE " + strings.Join(parts, " AND ")
	}
	sql := fmt.Sprintf("SELECT %s, %s(%s) AS y, %s FROM %s%s GROUP BY %s, %s ORDER BY %s, %s",
		x, strings.ToUpper(agg), y, category, t.table, where, category, x, category, x)
	res, err := t.db.ExecuteSQL(sql)
	if err != nil {
		return nil, err
	}
	xi, yi, zi := res.ColIndex(x), res.ColIndex("y"), res.ColIndex(category)
	var out []*vis.Visualization
	var cur *vis.Visualization
	var curZ string
	for _, row := range res.Rows {
		zv := row[zi].String()
		if cur == nil || zv != curZ {
			cur = &vis.Visualization{XAttr: x, YAttr: y,
				Slices: []vis.Slice{{Attr: category, Value: zv}}}
			out = append(out, cur)
			curZ = zv
		}
		cur.Points = append(cur.Points, vis.Point{X: row[xi], Y: row[yi].Float()})
	}
	// ORDER BY already sorts by category; make the alphanumeric contract
	// explicit regardless of back-end ordering quirks.
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].Slices[0].Value < out[j].Slices[0].Value
	})
	return out, nil
}

// Effort is the examination cost of one pattern-finding task on both tools.
type Effort struct {
	Candidates        int // total visualizations matching the specification
	BaselineExamined  int // charts viewed before reaching the best match (alphanumeric order)
	ZenvisageExamined int // always 1: the ranked list puts the best match first
	BestMatch         string
}

// CompareEffort measures Finding 1's mechanism for a drawn-pattern search:
// the baseline user pages through charts alphabetically until the best match;
// zenvisage ranks it first.
func (t *Tool) CompareEffort(x, y, category string, drawn []float64, m vis.Metric) (Effort, error) {
	viss, err := t.Specify(x, y, category, nil, "")
	if err != nil {
		return Effort{}, err
	}
	if len(viss) == 0 {
		return Effort{}, fmt.Errorf("baseline: no candidate visualizations")
	}
	target := vis.FromFloats(drawn)
	best, bestD := 0, 0.0
	for i, v := range viss {
		d := vis.Distance(target, v, m)
		if i == 0 || d < bestD {
			best, bestD = i, d
		}
	}
	return Effort{
		Candidates:        len(viss),
		BaselineExamined:  best + 1,
		ZenvisageExamined: 1,
		BestMatch:         viss[best].Slices[0].Value,
	}, nil
}
