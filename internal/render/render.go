// Package render draws visualizations as text, standing in for the paper's
// Vega-lite front-end (Section 6.1). It consumes the same data payload the
// back-end returns — a vis.Visualization — and renders bar charts, line
// charts, and scatterplots to fixed-width ASCII suitable for a terminal.
package render

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/vis"
)

// Config controls chart geometry.
type Config struct {
	Width  int // plot area columns (default 48)
	Height int // plot area rows for line/scatter (default 12)
}

func (c Config) withDefaults() Config {
	if c.Width <= 0 {
		c.Width = 48
	}
	if c.Height <= 0 {
		c.Height = 12
	}
	return c
}

// Chart renders the visualization using its VizType: "bar" and "dotplot"
// render as horizontal bars, everything else as a height-mapped line/scatter
// grid. Empty visualizations render a placeholder.
func Chart(v *vis.Visualization, cfg Config) string {
	cfg = cfg.withDefaults()
	var sb strings.Builder
	sb.WriteString(v.Label())
	sb.WriteByte('\n')
	if len(v.Points) == 0 {
		sb.WriteString("  (no data)\n")
		return sb.String()
	}
	switch v.VizType {
	case "bar", "dotplot":
		renderBars(&sb, v, cfg)
	default:
		renderGrid(&sb, v, cfg)
	}
	return sb.String()
}

func renderBars(sb *strings.Builder, v *vis.Visualization, cfg Config) {
	maxLabel := 0
	lo, hi := yRange(v)
	for _, p := range v.Points {
		if n := len(p.X.String()); n > maxLabel {
			maxLabel = n
		}
	}
	if maxLabel > 16 {
		maxLabel = 16
	}
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	mark := '#'
	if v.VizType == "dotplot" {
		mark = 'o'
	}
	for _, p := range v.Points {
		label := p.X.String()
		if len(label) > maxLabel {
			label = label[:maxLabel]
		}
		// Bars are proportional to the value relative to zero (or the min
		// when all values share a sign), the standard bar-chart baseline.
		base := math.Min(lo, 0)
		frac := (p.Y - base) / (hi - base + 1e-12)
		n := int(frac * float64(cfg.Width))
		if n < 0 {
			n = 0
		}
		fmt.Fprintf(sb, "  %-*s |%s %.4g\n", maxLabel, label, strings.Repeat(string(mark), n), p.Y)
	}
}

func renderGrid(sb *strings.Builder, v *vis.Visualization, cfg Config) {
	lo, hi := yRange(v)
	if hi == lo {
		hi = lo + 1
	}
	cols := cfg.Width
	rows := cfg.Height
	grid := make([][]byte, rows)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cols))
	}
	n := len(v.Points)
	mark := byte('*')
	if v.VizType == "scatterplot" {
		mark = '.'
	}
	for i, p := range v.Points {
		c := 0
		if n > 1 {
			c = i * (cols - 1) / (n - 1)
		}
		r := int((hi - p.Y) / (hi - lo) * float64(rows-1))
		if r < 0 {
			r = 0
		}
		if r >= rows {
			r = rows - 1
		}
		grid[r][c] = mark
	}
	fmt.Fprintf(sb, "  %.4g\n", hi)
	for _, line := range grid {
		sb.WriteString("  |")
		sb.Write(line)
		sb.WriteByte('\n')
	}
	fmt.Fprintf(sb, "  %.4g", lo)
	fmt.Fprintf(sb, "  [%s: %s .. %s]\n", v.XAttr, v.Points[0].X, v.Points[len(v.Points)-1].X)
}

func yRange(v *vis.Visualization) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, p := range v.Points {
		if p.Y < lo {
			lo = p.Y
		}
		if p.Y > hi {
			hi = p.Y
		}
	}
	return lo, hi
}

// Gallery renders several visualizations in sequence with separators.
func Gallery(vs []*vis.Visualization, cfg Config) string {
	var sb strings.Builder
	for i, v := range vs {
		if i > 0 {
			sb.WriteString(strings.Repeat("-", 60) + "\n")
		}
		sb.WriteString(Chart(v, cfg))
	}
	return sb.String()
}
