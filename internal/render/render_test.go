package render

import (
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/vis"
)

func sample(vizType string) *vis.Visualization {
	v := vis.FromSeries("year", "sales",
		[]dataset.Value{dataset.IV(2014), dataset.IV(2015), dataset.IV(2016)},
		[]float64{100, 250, 175})
	v.VizType = vizType
	v.Slices = []vis.Slice{{Attr: "product", Value: "chair"}}
	return v
}

func TestBarChart(t *testing.T) {
	out := Chart(sample("bar"), Config{Width: 20})
	if !strings.Contains(out, "sales vs year [product=chair]") {
		t.Errorf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "#") {
		t.Errorf("missing bars:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Errorf("bar chart lines = %d:\n%s", len(lines), out)
	}
	// The 250 bar must be the longest.
	longest, longestCount := "", 0
	for _, l := range lines[1:] {
		if n := strings.Count(l, "#"); n > longestCount {
			longest, longestCount = l, n
		}
	}
	if !strings.Contains(longest, "250") {
		t.Errorf("longest bar should be 250:\n%s", out)
	}
}

func TestDotplotUsesO(t *testing.T) {
	out := Chart(sample("dotplot"), Config{})
	if !strings.Contains(out, "o") || strings.Contains(out, "#") {
		t.Errorf("dotplot marks wrong:\n%s", out)
	}
}

func TestLineChartGrid(t *testing.T) {
	out := Chart(sample("line"), Config{Width: 30, Height: 6})
	if strings.Count(out, "*") != 3 {
		t.Errorf("line grid should plot 3 marks:\n%s", out)
	}
	if !strings.Contains(out, "[year: 2014 .. 2016]") {
		t.Errorf("missing x range footer:\n%s", out)
	}
}

func TestScatterUsesDots(t *testing.T) {
	out := Chart(sample("scatterplot"), Config{})
	if !strings.Contains(out, ".") {
		t.Errorf("scatter marks missing:\n%s", out)
	}
}

func TestEmptyVisualization(t *testing.T) {
	v := &vis.Visualization{XAttr: "x", YAttr: "y"}
	out := Chart(v, Config{})
	if !strings.Contains(out, "(no data)") {
		t.Errorf("empty render = %q", out)
	}
}

func TestConstantSeriesDoesNotPanic(t *testing.T) {
	v := vis.FromFloats([]float64{5, 5, 5})
	v.VizType = "line"
	out := Chart(v, Config{})
	if out == "" {
		t.Error("constant series render empty")
	}
}

func TestGallerySeparators(t *testing.T) {
	out := Gallery([]*vis.Visualization{sample("bar"), sample("line")}, Config{})
	seps := 0
	for _, line := range strings.Split(out, "\n") {
		if line == strings.Repeat("-", 60) {
			seps++
		}
	}
	if seps != 1 {
		t.Errorf("gallery separators = %d:\n%s", seps, out)
	}
}

func TestLongLabelsTruncate(t *testing.T) {
	v := vis.FromSeries("name", "v",
		[]dataset.Value{dataset.SV("an-extremely-long-category-label-here")},
		[]float64{10})
	v.VizType = "bar"
	out := Chart(v, Config{Width: 10})
	for _, line := range strings.Split(out, "\n") {
		if len(line) > 120 {
			t.Errorf("line too long: %q", line)
		}
	}
}
