package obsv

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	return b.String()
}

func TestCounterExposition(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("reqs_total", "total requests")
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters are monotone
	out := render(t, r)
	for _, want := range []string{
		"# HELP reqs_total total requests\n",
		"# TYPE reqs_total counter\n",
		"reqs_total 5\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.NewGauge("depth", "queue depth")
	g.Set(3)
	g.Add(2)
	g.Add(-4)
	if got := g.Value(); got != 1 {
		t.Fatalf("gauge = %v, want 1", got)
	}
	if out := render(t, r); !strings.Contains(out, "depth 1\n") {
		t.Errorf("missing gauge sample:\n%s", out)
	}
}

func TestGaugeFuncAndCollector(t *testing.T) {
	r := NewRegistry()
	r.NewGaugeFunc("ready", "readiness", func() float64 { return 1 })
	r.NewCollector("per_ds", "per dataset", "counter", func(emit func(Sample)) {
		emit(Sample{Labels: []Label{{"dataset", "sales"}}, Value: 7})
	})
	out := render(t, r)
	if !strings.Contains(out, "ready 1\n") {
		t.Errorf("missing gauge func:\n%s", out)
	}
	if !strings.Contains(out, `per_ds{dataset="sales"} 7`+"\n") {
		t.Errorf("missing collector sample:\n%s", out)
	}
}

func TestHistogramCumulativeBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("lat_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 100} {
		h.Observe(v)
	}
	out := render(t, r)
	for _, want := range []string{
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="10"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		`lat_seconds_count 5`,
		`lat_seconds_sum 106.05`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d, want 5", h.Count())
	}
}

func TestHistogramBoundaryInclusive(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	h.Observe(1) // le="1" bucket must include exactly-1 observations
	if got := h.counts[0].Load(); got != 1 {
		t.Fatalf("boundary observation landed in bucket %v, want counts[0]=1", got)
	}
}

func TestVecsSortedAndLabelled(t *testing.T) {
	r := NewRegistry()
	cv := r.NewCounterVec("http_total", "by endpoint/code", []string{"endpoint", "code"})
	cv.With("query", "200").Add(3)
	cv.With("spec", "422").Inc()
	cv.With("query", "200").Inc() // same child
	hv := r.NewHistogramVec("dur_seconds", "by endpoint", []string{"endpoint"}, []float64{1})
	hv.With("query").Observe(0.5)
	out := render(t, r)
	wantOrder := []string{
		`http_total{endpoint="query",code="200"} 4`,
		`http_total{endpoint="spec",code="422"} 1`,
		`dur_seconds_bucket{endpoint="query",le="1"} 1`,
		`dur_seconds_count{endpoint="query"} 1`,
	}
	last := -1
	for _, want := range wantOrder {
		i := strings.Index(out, want)
		if i < 0 {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
		if i < last {
			t.Fatalf("sample %q out of order:\n%s", want, out)
		}
		last = i
	}
}

func TestVecLabelArityPanics(t *testing.T) {
	r := NewRegistry()
	cv := r.NewCounterVec("v_total", "", []string{"a", "b"})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong label arity")
		}
	}()
	cv.With("only-one")
}

func TestDuplicateAndInvalidNamesPanic(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("x_total", "")
	for name, f := range map[string]func(){
		"duplicate": func() { r.NewCounter("x_total", "") },
		"invalid":   func() { r.NewCounter("9starts_with_digit", "") },
		"empty":     func() { r.NewCounter("", "") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	cv := r.NewCounterVec("esc_total", "has \\ and\nnewline", []string{"q"})
	cv.With("a\"b\\c\nd").Inc()
	out := render(t, r)
	if !strings.Contains(out, `# HELP esc_total has \\ and\nnewline`+"\n") {
		t.Errorf("help not escaped:\n%s", out)
	}
	if !strings.Contains(out, `esc_total{q="a\"b\\c\nd"} 1`+"\n") {
		t.Errorf("label not escaped:\n%s", out)
	}
}

func TestServeHTTP(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("hits_total", "hits").Inc()
	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "hits_total 1\n") {
		t.Errorf("body missing counter:\n%s", rec.Body.String())
	}
	rec = httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("POST", "/metrics", nil))
	if rec.Code != 405 {
		t.Fatalf("POST status = %d, want 405", rec.Code)
	}
}

func TestConcurrentUpdatesAndScrapes(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "")
	h := r.NewHistogram("h_seconds", "", []float64{1})
	g := r.NewGauge("g", "")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(0.5)
				g.Add(1)
			}
		}()
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var b strings.Builder
			_, _ = r.WriteTo(&b)
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || h.Count() != 8000 || g.Value() != 8000 {
		t.Fatalf("lost updates: c=%d h=%d g=%v", c.Value(), h.Count(), g.Value())
	}
	if math.Abs(h.Sum()-4000) > 1e-6 {
		t.Fatalf("histogram sum = %v, want 4000", h.Sum())
	}
}
