// Package obsv is a dependency-free metrics library exposing the Prometheus
// text exposition format (version 0.0.4). It provides the three primitive
// instrument kinds — monotonically increasing counters, set-anywhere gauges,
// and fixed-bucket histograms — plus labelled "vec" variants and scrape-time
// collectors for values that already live elsewhere (store counters, queue
// depths). The registry renders everything with WriteTo / ServeHTTP.
//
// The package deliberately implements only what the serving layer needs:
// no push gateways, no summaries, no exemplars. Instruments are safe for
// concurrent use; hot-path updates are single atomic operations.
package obsv

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// A Label is one key="value" pair on a sample.
type Label struct {
	Key, Value string
}

// A Sample is one exposition line within a metric family. Suffix is appended
// to the family name ("_bucket", "_sum", "_count" for histograms; empty for
// counters and gauges).
type Sample struct {
	Suffix string
	Labels []Label
	Value  float64
}

// family is one named metric with its HELP/TYPE header and a scrape-time
// sample producer.
type family struct {
	name    string
	help    string
	typ     string // "counter", "gauge", or "histogram"
	collect func(emit func(Sample))
}

// A Registry holds metric families and renders them in registration order.
type Registry struct {
	mu    sync.Mutex
	fams  []*family
	names map[string]struct{}
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]struct{})}
}

func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func (r *Registry) register(name, help, typ string, collect func(emit func(Sample))) {
	if !validName(name) {
		panic(fmt.Sprintf("obsv: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.names[name]; dup {
		panic(fmt.Sprintf("obsv: duplicate metric name %q", name))
	}
	r.names[name] = struct{}{}
	r.fams = append(r.fams, &family{name: name, help: help, typ: typ, collect: collect})
}

// NewCollector registers a fully dynamic family: fn is invoked at scrape time
// and emits whatever samples currently exist. Use it for per-dataset or
// per-shard series whose label sets are not known up front.
func (r *Registry) NewCollector(name, help, typ string, fn func(emit func(Sample))) {
	r.register(name, help, typ, fn)
}

// NewGaugeFunc registers a single unlabelled gauge computed at scrape time.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, "gauge", func(emit func(Sample)) {
		emit(Sample{Value: fn()})
	})
}

// ---------------------------------------------------------------------------
// Counter

// A Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative increments are ignored to keep the counter monotone.
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// NewCounter registers and returns an unlabelled counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{}
	r.register(name, help, "counter", func(emit func(Sample)) {
		emit(Sample{Value: float64(c.Value())})
	})
	return c
}

// ---------------------------------------------------------------------------
// Gauge

// A Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments the gauge by d (may be negative).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// NewGauge registers and returns an unlabelled gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(name, help, "gauge", func(emit func(Sample)) {
		emit(Sample{Value: g.Value()})
	})
	return g
}

// ---------------------------------------------------------------------------
// Histogram

// DefBuckets are latency-shaped default bucket bounds in seconds.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// A Histogram counts observations into fixed cumulative buckets.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; an implicit +Inf bucket follows
	counts  []atomic.Int64
	sumBits atomic.Uint64
	count   atomic.Int64
}

func newHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	bounds := make([]float64, len(buckets))
	copy(bounds, buckets)
	sort.Float64s(bounds)
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			break
		}
	}
	h.count.Add(1)
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// emitWith writes the cumulative bucket, sum, and count samples, appending
// base labels to each.
func (h *Histogram) emitWith(base []Label, emit func(Sample)) {
	cum := int64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		emit(Sample{
			Suffix: "_bucket",
			Labels: append(append([]Label{}, base...), Label{"le", formatFloat(bound)}),
			Value:  float64(cum),
		})
	}
	cum += h.counts[len(h.bounds)].Load()
	emit(Sample{
		Suffix: "_bucket",
		Labels: append(append([]Label{}, base...), Label{"le", "+Inf"}),
		Value:  float64(cum),
	})
	emit(Sample{Suffix: "_sum", Labels: base, Value: h.Sum()})
	emit(Sample{Suffix: "_count", Labels: base, Value: float64(h.Count())})
}

// NewHistogram registers and returns an unlabelled histogram. A nil bucket
// slice selects DefBuckets.
func (r *Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	h := newHistogram(buckets)
	r.register(name, help, "histogram", func(emit func(Sample)) {
		h.emitWith(nil, emit)
	})
	return h
}

// ---------------------------------------------------------------------------
// Labelled vecs

// vec is the shared child table behind CounterVec and HistogramVec.
type vec[T any] struct {
	mu     sync.Mutex
	labels []string
	kids   map[string]T
	vals   map[string][]string
	make   func() T
}

func newVec[T any](labels []string, mk func() T) *vec[T] {
	return &vec[T]{labels: labels, kids: make(map[string]T), vals: make(map[string][]string), make: mk}
}

func (v *vec[T]) with(values ...string) T {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obsv: got %d label values, want %d (%v)", len(values), len(v.labels), v.labels))
	}
	key := strings.Join(values, "\x00")
	v.mu.Lock()
	defer v.mu.Unlock()
	kid, ok := v.kids[key]
	if !ok {
		kid = v.make()
		v.kids[key] = kid
		v.vals[key] = append([]string{}, values...)
	}
	return kid
}

// snapshot returns the children in sorted key order for deterministic output.
func (v *vec[T]) snapshot() (keys []string, kids []T, labels [][]Label) {
	v.mu.Lock()
	defer v.mu.Unlock()
	keys = make([]string, 0, len(v.kids))
	for k := range v.kids {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		kids = append(kids, v.kids[k])
		ls := make([]Label, len(v.labels))
		for i, name := range v.labels {
			ls[i] = Label{name, v.vals[k][i]}
		}
		labels = append(labels, ls)
	}
	return keys, kids, labels
}

// A CounterVec is a counter family partitioned by label values.
type CounterVec struct{ v *vec[*Counter] }

// With returns (creating on first use) the child counter for the given label
// values, which must match the label names in count and order.
func (cv *CounterVec) With(values ...string) *Counter { return cv.v.with(values...) }

// NewCounterVec registers a labelled counter family.
func (r *Registry) NewCounterVec(name, help string, labels []string) *CounterVec {
	cv := &CounterVec{v: newVec(labels, func() *Counter { return &Counter{} })}
	r.register(name, help, "counter", func(emit func(Sample)) {
		_, kids, ls := cv.v.snapshot()
		for i, kid := range kids {
			emit(Sample{Labels: ls[i], Value: float64(kid.Value())})
		}
	})
	return cv
}

// A HistogramVec is a histogram family partitioned by label values.
type HistogramVec struct{ v *vec[*Histogram] }

// With returns (creating on first use) the child histogram for the given
// label values.
func (hv *HistogramVec) With(values ...string) *Histogram { return hv.v.with(values...) }

// NewHistogramVec registers a labelled histogram family. A nil bucket slice
// selects DefBuckets.
func (r *Registry) NewHistogramVec(name, help string, labels []string, buckets []float64) *HistogramVec {
	hv := &HistogramVec{v: newVec(labels, func() *Histogram { return newHistogram(buckets) })}
	r.register(name, help, "histogram", func(emit func(Sample)) {
		_, kids, ls := hv.v.snapshot()
		for i, kid := range kids {
			kid.emitWith(ls[i], emit)
		}
	})
	return hv
}

// ---------------------------------------------------------------------------
// Exposition

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// WriteTo renders every registered family in the Prometheus text exposition
// format, in registration order.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	fams := append([]*family{}, r.fams...)
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		f.collect(func(s Sample) {
			b.WriteString(f.name)
			b.WriteString(s.Suffix)
			if len(s.Labels) > 0 {
				b.WriteByte('{')
				for i, l := range s.Labels {
					if i > 0 {
						b.WriteByte(',')
					}
					fmt.Fprintf(&b, `%s="%s"`, l.Key, escapeLabel(l.Value))
				}
				b.WriteByte('}')
			}
			b.WriteByte(' ')
			b.WriteString(formatFloat(s.Value))
			b.WriteByte('\n')
		})
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// ServeHTTP implements http.Handler, serving the exposition text.
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet && req.Method != http.MethodHead {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if req.Method == http.MethodHead {
		return
	}
	_, _ = r.WriteTo(w)
}
