// Package recommend implements zenvisage's Recommendation Service (Section
// 6.2): alongside query results, the back-end surfaces the most *diverse*
// trends for the axes the user is viewing, found by k-means clustering the
// candidate visualizations and returning one representative per cluster
// (default k = 5, user-adjustable, exactly as the paper describes).
package recommend

import (
	"fmt"
	"strings"

	"repro/internal/engine"
	"repro/internal/vis"
)

// Request describes what the user is currently viewing.
type Request struct {
	Table string
	X, Y  string
	Z     string // the attribute to slice by (one visualization per value)
	Agg   string // aggregate for Y; default "avg"
	K     int    // number of recommendations; default 5
	// AutoK chooses the number of recommendations from the data via elbow
	// detection instead of the fixed K — the paper's future-work item
	// "automatically figure out the right number of representative trends
	// based on data characteristics" (Section 10.1). K then caps the count.
	AutoK bool
	Seed  int64
}

// Recommendation is one suggested visualization with the size of the cluster
// it represents (bigger cluster = more common trend).
type Recommendation struct {
	Vis         *vis.Visualization
	ClusterSize int
}

// Diverse returns up to K visualizations representing the most diverse
// trends among the Z slices of the current view.
func Diverse(db engine.DB, req Request, m vis.Metric) ([]Recommendation, error) {
	if req.K <= 0 {
		req.K = 5
	}
	if req.Agg == "" {
		req.Agg = "avg"
	}
	t := db.Table(req.Table)
	if t == nil {
		return nil, fmt.Errorf("recommend: no table %q", req.Table)
	}
	for _, col := range []string{req.X, req.Y, req.Z} {
		if !t.HasColumn(col) {
			return nil, fmt.Errorf("recommend: table %q has no column %q", req.Table, col)
		}
	}
	sql := fmt.Sprintf("SELECT %s, %s(%s) AS y, %s FROM %s GROUP BY %s, %s ORDER BY %s, %s",
		req.X, strings.ToUpper(req.Agg), req.Y, req.Z, req.Table, req.Z, req.X, req.Z, req.X)
	res, err := db.ExecuteSQL(sql)
	if err != nil {
		return nil, err
	}
	xi, yi, zi := res.ColIndex(req.X), res.ColIndex("y"), res.ColIndex(req.Z)
	var viss []*vis.Visualization
	var cur *vis.Visualization
	var curZ string
	for _, row := range res.Rows {
		z := row[zi].String()
		if cur == nil || z != curZ {
			cur = &vis.Visualization{
				XAttr:  req.X,
				YAttr:  req.Y,
				Slices: []vis.Slice{{Attr: req.Z, Value: z}},
			}
			viss = append(viss, cur)
			curZ = z
		}
		cur.Points = append(cur.Points, vis.Point{X: row[xi], Y: row[yi].Float()})
	}
	if len(viss) == 0 {
		return nil, nil
	}
	k := req.K
	if req.AutoK {
		if auto := vis.AutoK(viss, req.K*2, m, req.Seed); auto < k {
			k = auto
		}
	}
	picked := vis.Representative(viss, k, m, req.Seed)
	// Cluster sizes: rerun the clustering to attribute sizes. Representative
	// orders by descending cluster size; approximate sizes by re-assigning
	// every candidate to its nearest pick.
	domain := vis.Domain(viss)
	vecs := make([][]float64, len(viss))
	for i, v := range viss {
		vec := v.Vector(domain)
		if m.Normalize {
			vec = vis.ZNormalize(vec)
		}
		vecs[i] = vec
	}
	sizes := make(map[int]int, len(picked))
	for i := range viss {
		best, bestD := -1, 0.0
		for _, p := range picked {
			d := m.Fn(vecs[i], vecs[p])
			if best == -1 || d < bestD {
				best, bestD = p, d
			}
		}
		sizes[best]++
	}
	out := make([]Recommendation, 0, len(picked))
	for _, p := range picked {
		out = append(out, Recommendation{Vis: viss[p], ClusterSize: sizes[p]})
	}
	return out, nil
}
