package recommend

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/vis"
	"repro/internal/workload"
)

func TestDiverseFindsDistinctShapes(t *testing.T) {
	tb := workload.Sales(workload.SalesConfig{Rows: 20000, Products: 12, Years: 8, Cities: 4, Seed: 5})
	db := engine.NewRowStore(tb)
	recs, err := Diverse(db, Request{
		Table: "sales", X: "year", Y: "revenue", Z: "product", K: 4, Seed: 11,
	}, vis.DefaultMetric)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("%d recommendations, want 4", len(recs))
	}
	total := 0
	for _, r := range recs {
		if r.Vis == nil || len(r.Vis.Points) == 0 {
			t.Error("empty recommendation")
		}
		if r.ClusterSize <= 0 {
			t.Error("cluster size must be positive")
		}
		total += r.ClusterSize
	}
	if total != 12 {
		t.Errorf("cluster sizes sum to %d, want 12 products", total)
	}
	// The four planted shapes (rising, falling, flat, spiked) should appear
	// among the recommended trends: the first two recommendations must have
	// opposite trend signs somewhere in the set.
	hasUp, hasDown := false, false
	for _, r := range recs {
		tr := vis.Trend(r.Vis)
		if tr > 0.2 {
			hasUp = true
		}
		if tr < -0.2 {
			hasDown = true
		}
	}
	if !hasUp || !hasDown {
		t.Error("diverse set should include both rising and falling trends")
	}
}

func TestDiverseDefaults(t *testing.T) {
	tb := workload.Sales(workload.SalesConfig{Rows: 5000, Products: 8, Years: 6, Cities: 3, Seed: 5})
	db := engine.NewBitmapStore(tb)
	recs, err := Diverse(db, Request{Table: "sales", X: "year", Y: "revenue", Z: "product"}, vis.DefaultMetric)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Errorf("default K should be 5, got %d", len(recs))
	}
}

func TestDiverseErrors(t *testing.T) {
	tb := workload.Sales(workload.SalesConfig{Rows: 100, Products: 4, Years: 3, Cities: 2, Seed: 1})
	db := engine.NewRowStore(tb)
	if _, err := Diverse(db, Request{Table: "nope", X: "year", Y: "revenue", Z: "product"}, vis.DefaultMetric); err == nil {
		t.Error("missing table should error")
	}
	if _, err := Diverse(db, Request{Table: "sales", X: "bogus", Y: "revenue", Z: "product"}, vis.DefaultMetric); err == nil {
		t.Error("missing column should error")
	}
}

func TestAutoKRecommendations(t *testing.T) {
	// The sales generator plants exactly four trend shapes (rising, falling,
	// flat, spiked); auto-k should land near that, not at the K=8 cap.
	tb := workload.Sales(workload.SalesConfig{Rows: 40000, Products: 16, Years: 10, Cities: 4, Seed: 6})
	db := engine.NewRowStore(tb)
	recs, err := Diverse(db, Request{
		Table: "sales", X: "year", Y: "revenue", Z: "product", K: 8, AutoK: true, Seed: 11,
	}, vis.DefaultMetric)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < 2 || len(recs) >= 8 {
		t.Errorf("auto-k picked %d recommendations, want a handful under the cap", len(recs))
	}
}
