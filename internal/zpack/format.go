// Package zpack is the persistent columnar segment store: a versioned,
// checksummed on-disk format that serializes ColumnStore segments — column
// data, zone maps, dictionaries — plus a footer index, so a dataset opens by
// reading the footer and loads segments lazily on first touch. Zone-map
// skipping works without ever deserializing skipped segments, and a server
// restart over .zpack files reaches ready without re-parsing CSV.
//
// File layout (all integers little-endian; docs/FORMAT.md is the normative
// spec):
//
//	header   16 B   magic "ZPK1", version u32, 8 B reserved
//	blocks   ...    one block per (segment, column), raw typed payloads
//	footer   ...    schema, dictionaries, segment index, zone maps
//	trailer  24 B   footer offset u64, length u64, CRC-32C u32, magic "ZPKE"
//
// The file is append-only: committed byte ranges are never rewritten.
// Writer.Flush appends the open tail segment's blocks and a fresh footer +
// trailer at the end of the file; superseded tail blocks and footers become
// dead space. That is what makes appends snapshot-consistent — a reader that
// already holds a footer keeps resolving every offset it knows about, while
// new readers pick up the extended trailer at EOF.
package zpack

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

const (
	// Version is the on-disk format version this package reads and writes.
	Version = 1

	headerSize  = 16
	trailerSize = 24
)

var (
	headerMagic  = [4]byte{'Z', 'P', 'K', '1'}
	trailerMagic = [4]byte{'Z', 'P', 'K', 'E'}

	// castagnoli is the CRC-32C polynomial every block and the footer are
	// checksummed with.
	castagnoli = crc32.MakeTable(crc32.Castagnoli)
)

// blockRef locates one (segment, column) block in the file.
type blockRef struct {
	off int64
	len int64
	crc uint32
}

// binWriter accumulates the footer payload.
type binWriter struct{ b []byte }

func (w *binWriter) u8(v uint8)   { w.b = append(w.b, v) }
func (w *binWriter) u32(v uint32) { w.b = binary.LittleEndian.AppendUint32(w.b, v) }
func (w *binWriter) u64(v uint64) { w.b = binary.LittleEndian.AppendUint64(w.b, v) }
func (w *binWriter) i64(v int64)  { w.u64(uint64(v)) }
func (w *binWriter) f64(v float64) {
	w.u64(math.Float64bits(v))
}
func (w *binWriter) str(s string) {
	w.u32(uint32(len(s)))
	w.b = append(w.b, s...)
}

// binReader decodes the footer payload with bounds checking; the first
// overrun poisons every subsequent read, so decoders check err once at the
// end of a section.
type binReader struct {
	b   []byte
	off int
	err error
}

func (r *binReader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("zpack: corrupt footer: truncated at byte %d of %d", r.off, len(r.b))
	}
}

func (r *binReader) u8() uint8 {
	if r.err != nil || r.off+1 > len(r.b) {
		r.fail()
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *binReader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *binReader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *binReader) i64() int64   { return int64(r.u64()) }
func (r *binReader) f64() float64 { return math.Float64frombits(r.u64()) }
func (r *binReader) str() string {
	n := int(r.u32())
	if r.err != nil || n < 0 || r.off+n > len(r.b) {
		r.fail()
		return ""
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s
}
