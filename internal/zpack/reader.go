package zpack

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sync"
	"sync/atomic"

	"repro/internal/dataset"
	"repro/internal/engine"
)

// Reader serves one committed snapshot of a zpack file as an
// engine.SegmentSource. Open reads only the header, trailer, and footer —
// cheap, metadata-sized I/O — and presizes the table's column storage;
// segment data is read, checksum-verified, and decoded in place the first
// time a scan visits the segment. A segment the zone maps prove empty is
// never read from disk.
//
// All methods are safe for concurrent use.
type Reader struct {
	f     *os.File
	owns  bool // whether Close may close f (Reopen shares the descriptor)
	path  string
	foot  *footer
	table *dataset.Table

	zones     map[string]*engine.ZoneData
	intDicts  map[string]*engine.IntDict
	intCodeOf map[string]map[int64]int32

	loads       []loadState
	segLoads    atomic.Int64
	bytesLoaded atomic.Int64
	loadAll     sync.Once
	loadAllErr  error
}

type loadState struct {
	once sync.Once
	err  error
}

// Open opens a zpack file, reading its footer and preparing the lazy table.
func Open(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	r, err := newReader(f, path, true)
	if err != nil {
		f.Close()
		return nil, err
	}
	return r, nil
}

// Reopen re-reads the footer and returns a fresh Reader over the newly
// committed snapshot. In the append case the path still names the inode this
// Reader holds open: committed byte ranges are append-only, so the original
// Reader keeps working unchanged, the two share the descriptor, and only the
// Reader created by Open owns it — no file-descriptor-per-generation leak.
// But after a compaction's atomic-rename cutover the path names a NEW inode;
// re-reading the shared descriptor there would resurrect the replaced
// generation's footer (or tear against a concurrent writer), so Reopen
// detects the generation boundary with os.SameFile and opens a fresh,
// descriptor-owning Reader instead.
func (r *Reader) Reopen() (*Reader, error) {
	if st, err := os.Stat(r.path); err == nil {
		if fst, ferr := r.f.Stat(); ferr == nil && !os.SameFile(st, fst) {
			return Open(r.path)
		}
	}
	return newReader(r.f, r.path, false)
}

func newReader(f *os.File, path string, owns bool) (*Reader, error) {
	foot, _, err := readFooter(f)
	if err != nil {
		return nil, err
	}
	t := dataset.NewPresized(foot.name, foot.fields, int(foot.nrows))
	r := &Reader{
		f:         f,
		owns:      owns,
		path:      path,
		foot:      foot,
		table:     t,
		zones:     foot.zones,
		intDicts:  make(map[string]*engine.IntDict),
		intCodeOf: make(map[string]map[int64]int32),
		loads:     make([]loadState, len(foot.segs)),
	}
	for _, c := range t.Columns() {
		name := c.Field.Name
		switch c.Field.Kind {
		case dataset.KindString:
			c.SetDict(foot.dicts[name])
		case dataset.KindInt:
			if vals, ok := foot.intVals[name]; ok {
				d := &engine.IntDict{Vals: vals, Codes: make([]int32, foot.nrows)}
				codeOf := make(map[int64]int32, len(vals))
				distinct := make([]dataset.Value, len(vals))
				for i, v := range vals {
					codeOf[v] = int32(i)
					distinct[i] = dataset.IV(v)
				}
				r.intDicts[name] = d
				r.intCodeOf[name] = codeOf
				// Distinct enumeration (axis '*' expansion) answers straight
				// from the footer; no data load needed.
				c.SetDistinctSorted(distinct)
			} else {
				c.SetEnsureLoaded(r.ensureAll)
			}
		default:
			c.SetEnsureLoaded(r.ensureAll)
		}
	}
	return r, nil
}

// readFooter validates the header and trailer of an open file and decodes
// the committed footer. It returns the file size alongside.
func readFooter(f *os.File) (*footer, int64, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, 0, err
	}
	size := st.Size()
	if size < headerSize+trailerSize {
		return nil, 0, fmt.Errorf("zpack: %s: file too short (%d bytes) to be a zpack file", f.Name(), size)
	}
	var hdr [headerSize]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return nil, 0, err
	}
	if [4]byte(hdr[:4]) != headerMagic {
		return nil, 0, fmt.Errorf("zpack: %s: bad magic %q (not a zpack file)", f.Name(), hdr[:4])
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != Version {
		return nil, 0, fmt.Errorf("zpack: %s: unsupported format version %d (this build reads version %d)", f.Name(), v, Version)
	}
	var tr [trailerSize]byte
	if _, err := f.ReadAt(tr[:], size-trailerSize); err != nil {
		return nil, 0, err
	}
	if [4]byte(tr[20:24]) != trailerMagic {
		return nil, 0, fmt.Errorf("zpack: %s: bad trailer magic (truncated or torn final append)", f.Name())
	}
	footOff := int64(binary.LittleEndian.Uint64(tr[0:8]))
	footLen := int64(binary.LittleEndian.Uint64(tr[8:16]))
	footCRC := binary.LittleEndian.Uint32(tr[16:20])
	if footOff < headerSize || footLen < 0 || footOff+footLen > size-trailerSize {
		return nil, 0, fmt.Errorf("zpack: %s: trailer points outside the file (footer at %d+%d of %d)", f.Name(), footOff, footLen, size)
	}
	payload := make([]byte, footLen)
	if _, err := f.ReadAt(payload, footOff); err != nil {
		return nil, 0, err
	}
	if got := crc32.Checksum(payload, castagnoli); got != footCRC {
		return nil, 0, fmt.Errorf("zpack: %s: footer checksum mismatch (got %08x, want %08x)", f.Name(), got, footCRC)
	}
	foot, err := decodeFooter(payload)
	if err != nil {
		return nil, 0, err
	}
	for i, s := range foot.segs {
		for j, b := range s.blocks {
			if b.off < headerSize || b.len < 0 || b.off+b.len > size-trailerSize {
				return nil, 0, fmt.Errorf("zpack: %s: segment %d column %d block outside the file", f.Name(), i, j)
			}
		}
	}
	return foot, size, nil
}

// Table returns the lazily-backed base table: full schema, dictionaries, and
// row count up front, column data materializing as segments load. It is only
// valid under the column back-end (or after LoadAll); other back-ends read
// raw slices eagerly.
func (r *Reader) Table() *dataset.Table { return r.table }

// Name returns the dataset name recorded in the footer.
func (r *Reader) Name() string { return r.foot.name }

// Path returns the file path the reader was opened from.
func (r *Reader) Path() string { return r.path }

// Rows returns the committed row count.
func (r *Reader) Rows() int { return int(r.foot.nrows) }

// NumSegments returns the committed segment count.
func (r *Reader) NumSegments() int { return len(r.foot.segs) }

// SegmentRows returns the row count of segment s.
func (r *Reader) SegmentRows(s int) int { return r.foot.segs[s].rows }

// Zone returns the named column's zone maps.
func (r *Reader) Zone(col string) *engine.ZoneData { return r.zones[col] }

// IntDict returns the named integer column's dictionary encoding, or nil.
func (r *Reader) IntDict(col string) *engine.IntDict { return r.intDicts[col] }

// SegmentLoads returns how many segments have been materialized from disk —
// the observable that proves zone-map-skipped segments were never read.
func (r *Reader) SegmentLoads() int64 { return r.segLoads.Load() }

// BytesLoaded returns the total block bytes read and decoded so far.
func (r *Reader) BytesLoaded() int64 { return r.bytesLoaded.Load() }

// Load materializes segment seg into the table's column storage: each block
// is read, checksum-verified, and decoded in place. Load is idempotent and
// safe for concurrent use; the work happens once per segment per Reader.
func (r *Reader) Load(seg int) error {
	if seg < 0 || seg >= len(r.loads) {
		return fmt.Errorf("zpack: segment %d out of range (file has %d)", seg, len(r.loads))
	}
	l := &r.loads[seg]
	l.once.Do(func() {
		l.err = r.loadSegment(seg)
	})
	return l.err
}

func (r *Reader) loadSegment(seg int) error {
	n, err := decodeSegmentBlocks(r.f, r.foot, seg, func(j int, c *dataset.Column, lo int, codes []int32, ints []int64, floats []float64) error {
		switch c.Field.Kind {
		case dataset.KindString:
			copy(c.Codes()[lo:], codes)
		case dataset.KindInt:
			copy(c.Ints()[lo:], ints)
			if d := r.intDicts[c.Field.Name]; d != nil {
				codeOf := r.intCodeOf[c.Field.Name]
				for i, v := range ints {
					code, ok := codeOf[v]
					if !ok {
						return fmt.Errorf("zpack: segment %d column %q: value %d missing from footer dictionary (corrupt data)", seg, c.Field.Name, v)
					}
					d.Codes[lo+i] = code
				}
			}
		default:
			copy(c.Floats()[lo:], floats)
		}
		return nil
	}, r.table)
	if err != nil {
		return err
	}
	r.segLoads.Add(1)
	r.bytesLoaded.Add(n)
	return nil
}

// ensureAll is the DistinctSorted hook for numeric columns without a footer
// dictionary: materialize everything before the raw scan. A load failure
// must not degrade into silently incomplete enumeration (zeroed segments
// would just be missing from the distinct set), so it panics with the load
// error; the ZQL axis-expansion path recovers it into a query error.
func (r *Reader) ensureAll() {
	if err := r.LoadAll(); err != nil {
		panic(err)
	}
}

// LoadAll materializes every segment (for use with non-columnar back-ends or
// full exports), returning the first load error.
func (r *Reader) LoadAll() error {
	r.loadAll.Do(func() {
		for s := 0; s < len(r.loads); s++ {
			if err := r.Load(s); err != nil {
				r.loadAllErr = err
				return
			}
		}
	})
	return r.loadAllErr
}

// Verify re-reads every committed block and checks its length and checksum
// against the footer index, without touching the table. It returns the
// first corruption found.
func (r *Reader) Verify() error {
	for s := range r.foot.segs {
		if _, err := decodeSegmentBlocks(r.f, r.foot, s, nil, r.table); err != nil {
			return err
		}
	}
	return nil
}

// Close closes the underlying file if this Reader owns it (Readers produced
// by Reopen share their parent's descriptor and Close is a no-op for them).
func (r *Reader) Close() error {
	if !r.owns {
		return nil
	}
	return r.f.Close()
}

// blockWidth returns the on-disk bytes per row of a column kind.
func blockWidth(k dataset.Kind) int {
	if k == dataset.KindString {
		return 4
	}
	return 8
}

// decodeSegmentBlocks reads, checks, and decodes every column block of one
// segment, handing each column's decoded values to sink (nil sink = verify
// only). It returns the byte count read.
func decodeSegmentBlocks(f io.ReaderAt, foot *footer, seg int, sink func(j int, c *dataset.Column, lo int, codes []int32, ints []int64, floats []float64) error, t *dataset.Table) (int64, error) {
	s := foot.segs[seg]
	lo := seg * engine.SegmentSize
	var total int64
	for j, fd := range foot.fields {
		ref := s.blocks[j]
		if want := int64(s.rows * blockWidth(fd.Kind)); ref.len != want {
			return 0, fmt.Errorf("zpack: segment %d column %q: block length %d, want %d", seg, fd.Name, ref.len, want)
		}
		buf := make([]byte, ref.len)
		if _, err := f.ReadAt(buf, ref.off); err != nil {
			return 0, fmt.Errorf("zpack: segment %d column %q: %w", seg, fd.Name, err)
		}
		if got := crc32.Checksum(buf, castagnoli); got != ref.crc {
			return 0, fmt.Errorf("zpack: segment %d column %q: block checksum mismatch (got %08x, want %08x)", seg, fd.Name, got, ref.crc)
		}
		total += ref.len
		if sink == nil {
			continue
		}
		c := t.Columns()[j]
		var codes []int32
		var ints []int64
		var floats []float64
		switch fd.Kind {
		case dataset.KindString:
			codes = make([]int32, s.rows)
			card := int32(len(foot.dicts[fd.Name]))
			for i := range codes {
				code := int32(binary.LittleEndian.Uint32(buf[i*4:]))
				if code < 0 || code >= card {
					return 0, fmt.Errorf("zpack: segment %d column %q: dictionary code %d out of range [0,%d)", seg, fd.Name, code, card)
				}
				codes[i] = code
			}
		case dataset.KindInt:
			ints = make([]int64, s.rows)
			for i := range ints {
				ints[i] = int64(binary.LittleEndian.Uint64(buf[i*8:]))
			}
		default:
			floats = make([]float64, s.rows)
			for i := range floats {
				floats[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
			}
		}
		if err := sink(j, c, lo, codes, ints, floats); err != nil {
			return 0, err
		}
	}
	return total, nil
}

// decodeSegmentInto appends one segment's decoded rows onto a buffer table
// (the OpenAppend tail-restore path). extra is unused and reserved.
func decodeSegmentInto(f io.ReaderAt, foot *footer, seg int, buf *dataset.Table) error {
	s := foot.segs[seg]
	cols := make([][]dataset.Value, len(foot.fields))
	_, err := decodeSegmentBlocks(f, foot, seg, func(j int, _ *dataset.Column, _ int, codes []int32, ints []int64, floats []float64) error {
		vals := make([]dataset.Value, s.rows)
		switch foot.fields[j].Kind {
		case dataset.KindString:
			dict := foot.dicts[foot.fields[j].Name]
			for i, code := range codes {
				vals[i] = dataset.SV(dict[code])
			}
		case dataset.KindInt:
			for i, v := range ints {
				vals[i] = dataset.IV(v)
			}
		default:
			for i, v := range floats {
				vals[i] = dataset.FV(v)
			}
		}
		cols[j] = vals
		return nil
	}, buf)
	if err != nil {
		return err
	}
	row := make(dataset.Row, len(cols))
	for i := 0; i < s.rows; i++ {
		for j := range cols {
			row[j] = cols[j][i]
		}
		buf.AppendRow(row...)
	}
	return nil
}
