package zpack

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dataset"
)

func genTable(name string, rows int, tag string) *dataset.Table {
	t := dataset.NewTable(name, []dataset.Field{
		{Name: "k", Kind: dataset.KindString},
		{Name: "v", Kind: dataset.KindInt},
	})
	for i := 0; i < rows; i++ {
		t.AppendRow(dataset.SV(tag), dataset.IV(int64(i)))
	}
	return t
}

// TestReopenAcrossGenerationBoundary is the regression test for the stale-fd
// bug: when a compaction renames a new generation over the path, the old
// Reader's descriptor points at the now-unlinked old inode. Reopen used to
// re-read the footer through that shared descriptor, resurrecting the
// replaced generation; it must instead notice the inode changed and open the
// file fresh.
func TestReopenAcrossGenerationBoundary(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "gen.zpack")
	if err := Build(path, genTable("gen", 100, "old")); err != nil {
		t.Fatal(err)
	}
	r1, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r1.Close()

	// Simulate the compactor's cutover: write the next generation beside the
	// file and atomically rename it into place. r1's descriptor now holds the
	// unlinked old inode.
	next := path + ".next"
	if err := Build(next, genTable("gen", 300, "new")); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(next, path); err != nil {
		t.Fatal(err)
	}

	// The old Reader is a consistent snapshot of the deleted-but-open old
	// generation: in-flight queries finish on the view they started with.
	if err := r1.LoadAll(); err != nil {
		t.Fatalf("old-generation reader cannot load after cutover: %v", err)
	}
	if r1.Rows() != 100 {
		t.Fatalf("old-generation reader sees %d rows, want 100", r1.Rows())
	}
	if got := r1.Table().Column("k").Dict(); len(got) != 1 || got[0] != "old" {
		t.Fatalf("old-generation reader dict = %v, want [old]", got)
	}

	// Reopen must serve the NEW generation, not re-read the stale descriptor.
	r2, err := r1.Reopen()
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if r2.Rows() != 300 {
		t.Fatalf("Reopen sees %d rows, want 300 (stale-fd bug: re-read old inode)", r2.Rows())
	}
	if err := r2.LoadAll(); err != nil {
		t.Fatal(err)
	}
	if got := r2.Table().Column("k").Dict(); len(got) != 1 || got[0] != "new" {
		t.Fatalf("Reopen dict = %v, want [new]", got)
	}
	if err := r2.Verify(); err != nil {
		t.Fatal(err)
	}

	// The new Reader owns its own descriptor: closing the old generation's
	// Reader must not pull the rug out from under it.
	if err := r1.Close(); err != nil {
		t.Fatal(err)
	}
	r3, err := r2.Reopen() // same inode now: the shared-descriptor fast path
	if err != nil {
		t.Fatal(err)
	}
	if r3.Rows() != 300 {
		t.Fatalf("post-close Reopen sees %d rows, want 300", r3.Rows())
	}
	if err := r3.LoadAll(); err != nil {
		t.Fatalf("descriptor died with the old reader: %v", err)
	}
}

// TestReopenSameInodeSharesDescriptor: the append fast path is unchanged —
// when the path still names the inode the Reader holds, Reopen shares the
// descriptor rather than opening a new one.
func TestReopenSameInodeSharesDescriptor(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "app.zpack")
	if err := Build(path, genTable("app", 50, "base")); err != nil {
		t.Fatal(err)
	}
	r1, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r1.Close()

	w, err := OpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendTable(genTable("app", 25, "base")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r2, err := r1.Reopen()
	if err != nil {
		t.Fatal(err)
	}
	if r2.Rows() != 75 {
		t.Fatalf("Reopen after append sees %d rows, want 75", r2.Rows())
	}
	// Shared descriptor: r2.Close is a no-op and r1 keeps working.
	if err := r2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r1.LoadAll(); err != nil {
		t.Fatalf("shared descriptor closed by non-owning reader: %v", err)
	}
}
