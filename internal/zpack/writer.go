package zpack

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"sort"

	"repro/internal/dataset"
	"repro/internal/engine"
)

// Writer builds or extends a zpack file. Rows appended through it buffer
// into an open tail segment; the tail seals at engine.SegmentSize rows (its
// zone maps are computed and its blocks written), and Flush commits the
// current state by appending the partial tail's blocks plus a fresh footer
// and trailer at the end of the file. Committed byte ranges are never
// rewritten, so readers holding an older footer keep a consistent snapshot.
//
// A Writer is not safe for concurrent use; callers serialize appends.
type Writer struct {
	f      *os.File
	path   string
	name   string
	fields []dataset.Field

	writeOff   int64
	rowsSealed int64
	sealed     []sealedSeg
	tail       *dataset.Table
	// intTrack accumulates the distinct values of each integer column; a nil
	// map marks a column that exceeded engine.MaxIntDictCardinality and is
	// permanently unencoded.
	intTrack map[string]map[int64]struct{}
	dirty    bool
}

// sealedSeg is one committed-side segment: its block index plus the zone
// data captured when it sealed. Categorical presence bitsets are stored at
// their seal-time word count and padded to the final dictionary size when
// the footer is rendered (dictionaries only grow).
type sealedSeg struct {
	rows    int
	blocks  []blockRef
	num     map[string]numZone
	present map[string][]uint64
}

type numZone struct {
	min, max float64
	nan      bool
}

// Create starts a new zpack file at path for the given schema, truncating
// any existing file. The dataset name is recorded in the footer.
func Create(path, name string, fields []dataset.Field) (*Writer, error) {
	if name == "" {
		return nil, fmt.Errorf("zpack: dataset name must not be empty")
	}
	if len(fields) == 0 {
		return nil, fmt.Errorf("zpack: schema must have at least one column")
	}
	seen := make(map[string]bool, len(fields))
	for _, fd := range fields {
		if fd.Name == "" || seen[fd.Name] {
			return nil, fmt.Errorf("zpack: invalid schema: empty or duplicate column %q", fd.Name)
		}
		seen[fd.Name] = true
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	var hdr [headerSize]byte
	copy(hdr[:4], headerMagic[:])
	binary.LittleEndian.PutUint32(hdr[4:8], Version)
	if _, err := f.WriteAt(hdr[:], 0); err != nil {
		f.Close()
		return nil, err
	}
	w := &Writer{
		f:        f,
		path:     path,
		name:     name,
		fields:   append([]dataset.Field(nil), fields...),
		writeOff: headerSize,
		intTrack: make(map[string]map[int64]struct{}),
		dirty:    true, // a fresh file has no committed footer yet
	}
	for _, fd := range fields {
		if fd.Kind == dataset.KindInt {
			w.intTrack[fd.Name] = make(map[int64]struct{})
		}
	}
	w.resetTail(nil)
	return w, nil
}

// OpenAppend opens an existing zpack file for appending: the footer is read
// back, sealed segments and dictionaries are restored, and a trailing
// partial segment (if any) is decoded into the open tail buffer so new rows
// keep accreting into it.
func OpenAppend(path string) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	foot, size, err := readFooter(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	w := &Writer{
		f:        f,
		path:     path,
		name:     foot.name,
		fields:   foot.fields,
		writeOff: size,
		intTrack: make(map[string]map[int64]struct{}),
	}
	for _, fd := range w.fields {
		if fd.Kind != dataset.KindInt {
			continue
		}
		vals, ok := foot.intVals[fd.Name]
		if !ok {
			w.intTrack[fd.Name] = nil // exceeded the bound in a prior session
			continue
		}
		m := make(map[int64]struct{}, len(vals))
		for _, v := range vals {
			m[v] = struct{}{}
		}
		w.intTrack[fd.Name] = m
	}
	// Split the footer's segments into sealed ones and the open tail.
	nseg := len(foot.segs)
	tailSeg := -1
	if nseg > 0 && foot.segs[nseg-1].rows < engine.SegmentSize {
		tailSeg = nseg - 1
	}
	for i, s := range foot.segs {
		if i == tailSeg {
			break
		}
		rec := sealedSeg{
			rows:    s.rows,
			blocks:  s.blocks,
			num:     make(map[string]numZone),
			present: make(map[string][]uint64),
		}
		for _, fd := range w.fields {
			z := foot.zones[fd.Name]
			if fd.Kind == dataset.KindString {
				rec.present[fd.Name] = append([]uint64(nil), z.Present[i*z.Words:(i+1)*z.Words]...)
			} else {
				rec.num[fd.Name] = numZone{min: z.Min[i], max: z.Max[i], nan: z.NaN[i]}
			}
		}
		w.sealed = append(w.sealed, rec)
		w.rowsSealed += int64(s.rows)
	}
	w.resetTail(foot.dicts)
	if tailSeg >= 0 {
		if err := decodeSegmentInto(f, foot, tailSeg, w.tail); err != nil {
			f.Close()
			return nil, err
		}
	}
	return w, nil
}

// resetTail replaces the tail buffer with an empty table whose categorical
// columns carry the accumulated global dictionaries, so tail codes stay
// consistent with every sealed block.
func (w *Writer) resetTail(dicts map[string][]string) {
	prev := w.tail
	w.tail = dataset.NewTable(w.name, w.fields)
	for _, c := range w.tail.Columns() {
		if c.Field.Kind != dataset.KindString {
			continue
		}
		switch {
		case prev != nil:
			c.SetDict(prev.Column(c.Field.Name).Dict())
		case dicts != nil:
			c.SetDict(dicts[c.Field.Name])
		}
	}
}

// Name returns the dataset name recorded in the footer.
func (w *Writer) Name() string { return w.name }

// Fields returns the schema.
func (w *Writer) Fields() []dataset.Field { return w.fields }

// Rows returns the total row count, sealed plus buffered tail.
func (w *Writer) Rows() int64 { return w.rowsSealed + int64(w.tail.NumRows()) }

// Segments returns the segment count the next Flush will commit.
func (w *Writer) Segments() int {
	n := len(w.sealed)
	if w.tail.NumRows() > 0 {
		n++
	}
	return n
}

// Append buffers rows into the open tail segment, sealing it each time it
// reaches engine.SegmentSize rows. Values are coerced to the column kinds
// the way dataset.Column.Append coerces them. The rows are NOT durable until
// Flush commits them.
func (w *Writer) Append(rows []dataset.Row) error {
	for _, row := range rows {
		if len(row) != len(w.fields) {
			return fmt.Errorf("zpack: row arity %d does not match schema arity %d", len(row), len(w.fields))
		}
		w.tail.AppendRow(row...)
		for j, fd := range w.fields {
			if fd.Kind != dataset.KindInt {
				continue
			}
			if m := w.intTrack[fd.Name]; m != nil {
				m[row[j].Int()] = struct{}{}
				if len(m) > engine.MaxIntDictCardinality {
					w.intTrack[fd.Name] = nil
				}
			}
		}
		w.dirty = true
		if w.tail.NumRows() == engine.SegmentSize {
			if err := w.seal(); err != nil {
				return err
			}
		}
	}
	return nil
}

// AppendTable appends every row of t (schema must match by arity and kind).
func (w *Writer) AppendTable(t *dataset.Table) error {
	if t.NumCols() != len(w.fields) {
		return fmt.Errorf("zpack: table has %d columns, file schema has %d", t.NumCols(), len(w.fields))
	}
	for j, fd := range w.fields {
		if c := t.Columns()[j]; c.Field.Kind != fd.Kind {
			return fmt.Errorf("zpack: table schema does not match file schema at column %q", fd.Name)
		}
	}
	for i := 0; i < t.NumRows(); i++ {
		if err := w.Append([]dataset.Row{t.Row(i)}); err != nil {
			return err
		}
	}
	return nil
}

// seal writes the full tail segment's blocks, captures its zone maps, and
// opens a fresh tail.
func (w *Writer) seal() error {
	refs, err := w.writeSegmentBlocks(w.tail)
	if err != nil {
		return err
	}
	rec := sealedSeg{
		rows:    w.tail.NumRows(),
		blocks:  refs,
		num:     make(map[string]numZone),
		present: make(map[string][]uint64),
	}
	w.captureZones(w.tail, &rec)
	w.sealed = append(w.sealed, rec)
	w.rowsSealed += int64(rec.rows)
	w.resetTail(nil)
	return nil
}

// captureZones computes the single-segment zone maps of a (<= SegmentSize
// rows) buffer table through engine.ComputeZones, the same code the
// in-memory column store uses, so skipping proofs agree across backends.
func (w *Writer) captureZones(t *dataset.Table, rec *sealedSeg) {
	zones := engine.ComputeZones(t)
	for _, fd := range w.fields {
		z := zones[fd.Name]
		if fd.Kind == dataset.KindString {
			rec.present[fd.Name] = z.Present
		} else {
			rec.num[fd.Name] = numZone{min: z.Min[0], max: z.Max[0], nan: z.NaN[0]}
		}
	}
}

// writeSegmentBlocks encodes and writes one block per column at the current
// end of file, returning their index entries.
func (w *Writer) writeSegmentBlocks(t *dataset.Table) ([]blockRef, error) {
	refs := make([]blockRef, t.NumCols())
	for j, c := range t.Columns() {
		payload := encodeBlock(c, t.NumRows())
		refs[j] = blockRef{
			off: w.writeOff,
			len: int64(len(payload)),
			crc: crc32.Checksum(payload, castagnoli),
		}
		if _, err := w.f.WriteAt(payload, w.writeOff); err != nil {
			return nil, err
		}
		w.writeOff += int64(len(payload))
	}
	return refs, nil
}

// Flush commits the current state: the partial tail segment's blocks (if
// any), then a fresh footer and trailer, are appended at the end of the
// file and synced. A reader that opened before the flush keeps resolving
// its old footer's offsets — nothing it references is overwritten.
func (w *Writer) Flush() error {
	if !w.dirty {
		return nil
	}
	segs := make([]segMeta, 0, len(w.sealed)+1)
	records := w.sealed
	for _, rec := range w.sealed {
		segs = append(segs, segMeta{rows: rec.rows, blocks: rec.blocks})
	}
	if w.tail.NumRows() > 0 {
		refs, err := w.writeSegmentBlocks(w.tail)
		if err != nil {
			return err
		}
		rec := sealedSeg{rows: w.tail.NumRows(), blocks: refs,
			num: make(map[string]numZone), present: make(map[string][]uint64)}
		w.captureZones(w.tail, &rec)
		segs = append(segs, segMeta{rows: rec.rows, blocks: refs})
		records = append(append([]sealedSeg(nil), w.sealed...), rec)
	}
	foot := &footer{
		name:    w.name,
		fields:  w.fields,
		nrows:   w.Rows(),
		segs:    segs,
		dicts:   make(map[string][]string),
		intVals: make(map[string][]int64),
		zones:   make(map[string]*engine.ZoneData),
	}
	for _, c := range w.tail.Columns() {
		if c.Field.Kind == dataset.KindString {
			foot.dicts[c.Field.Name] = c.Dict()
		}
	}
	for name, m := range w.intTrack {
		if m == nil {
			continue
		}
		vals := make([]int64, 0, len(m))
		for v := range m {
			vals = append(vals, v)
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		foot.intVals[name] = vals
	}
	w.buildFooterZones(foot, records)
	payload := foot.encode()
	footerOff := w.writeOff
	if _, err := w.f.WriteAt(payload, footerOff); err != nil {
		return err
	}
	var tr [trailerSize]byte
	binary.LittleEndian.PutUint64(tr[0:8], uint64(footerOff))
	binary.LittleEndian.PutUint64(tr[8:16], uint64(len(payload)))
	binary.LittleEndian.PutUint32(tr[16:20], crc32.Checksum(payload, castagnoli))
	copy(tr[20:24], trailerMagic[:])
	if _, err := w.f.WriteAt(tr[:], footerOff+int64(len(payload))); err != nil {
		return err
	}
	w.writeOff = footerOff + int64(len(payload)) + trailerSize
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.dirty = false
	return nil
}

// buildFooterZones assembles the footer's per-column zone arrays from the
// per-segment records, padding categorical presence bitsets to the final
// dictionary word count.
func (w *Writer) buildFooterZones(foot *footer, records []sealedSeg) {
	nseg := len(records)
	for _, fd := range w.fields {
		z := &engine.ZoneData{}
		if fd.Kind == dataset.KindString {
			z.Words = (len(foot.dicts[fd.Name]) + 63) / 64
			if z.Words == 0 {
				z.Words = 1
			}
			z.Present = make([]uint64, nseg*z.Words)
			for i, rec := range records {
				copy(z.Present[i*z.Words:(i+1)*z.Words], rec.present[fd.Name])
			}
		} else {
			z.Min = make([]float64, nseg)
			z.Max = make([]float64, nseg)
			z.NaN = make([]bool, nseg)
			for i, rec := range records {
				nz := rec.num[fd.Name]
				z.Min[i], z.Max[i], z.NaN[i] = nz.min, nz.max, nz.nan
			}
		}
		foot.zones[fd.Name] = z
	}
}

// Close flushes any uncommitted state and closes the file.
func (w *Writer) Close() error {
	if err := w.Flush(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// Discard closes the file WITHOUT flushing, abandoning everything buffered
// or written since the last commit (the trailer still points at the last
// committed footer, so the file stays readable at that state). Use it to
// drop a writer whose in-memory state may have diverged from the file after
// a failed Append or Flush, then OpenAppend to recover.
func (w *Writer) Discard() { w.f.Close() }

// Build writes t to a new zpack file at path in one shot: create, append
// every row, flush, close.
func Build(path string, t *dataset.Table) error {
	fields := make([]dataset.Field, t.NumCols())
	for j, c := range t.Columns() {
		fields[j] = c.Field
	}
	w, err := Create(path, t.Name, fields)
	if err != nil {
		return err
	}
	if err := w.AppendTable(t); err != nil {
		w.f.Close()
		return err
	}
	return w.Close()
}

// encodeBlock renders the first rows values of a column as its typed block
// payload: u32 dictionary codes for categorical columns, u64 two's-complement
// or IEEE-754 bits for int and float columns, all little-endian.
func encodeBlock(c *dataset.Column, rows int) []byte {
	switch c.Field.Kind {
	case dataset.KindString:
		out := make([]byte, 0, rows*4)
		for _, code := range c.Codes()[:rows] {
			out = binary.LittleEndian.AppendUint32(out, uint32(code))
		}
		return out
	case dataset.KindInt:
		out := make([]byte, 0, rows*8)
		for _, v := range c.Ints()[:rows] {
			out = binary.LittleEndian.AppendUint64(out, uint64(v))
		}
		return out
	default:
		out := make([]byte, 0, rows*8)
		for _, v := range c.Floats()[:rows] {
			out = binary.LittleEndian.AppendUint64(out, math.Float64bits(v))
		}
		return out
	}
}
