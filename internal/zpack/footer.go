package zpack

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/engine"
)

// footer is the decoded metadata index of a zpack file: everything a reader
// needs before touching any data block — schema, dictionaries, the segment
// block index, and every column's zone maps.
type footer struct {
	name    string
	fields  []dataset.Field
	nrows   int64
	segs    []segMeta
	dicts   map[string][]string // categorical column -> dictionary, code order
	intVals map[string][]int64  // dict-encoded int column -> sorted distinct values
	zones   map[string]*engine.ZoneData
}

// segMeta is one segment's entry in the footer index.
type segMeta struct {
	rows   int
	blocks []blockRef // schema order, one per column
}

func (f *footer) encode() []byte {
	w := &binWriter{}
	w.str(f.name)
	w.u32(uint32(len(f.fields)))
	for _, fd := range f.fields {
		w.str(fd.Name)
		w.u8(uint8(fd.Kind))
	}
	w.u64(uint64(f.nrows))
	w.u32(uint32(len(f.segs)))
	for _, s := range f.segs {
		w.u32(uint32(s.rows))
		for _, b := range s.blocks {
			w.u64(uint64(b.off))
			w.u64(uint64(b.len))
			w.u32(b.crc)
		}
	}
	for _, fd := range f.fields {
		switch fd.Kind {
		case dataset.KindString:
			dict := f.dicts[fd.Name]
			w.u32(uint32(len(dict)))
			for _, s := range dict {
				w.str(s)
			}
		case dataset.KindInt:
			vals, ok := f.intVals[fd.Name]
			if !ok {
				w.u8(0)
				continue
			}
			w.u8(1)
			w.u32(uint32(len(vals)))
			for _, v := range vals {
				w.i64(v)
			}
		}
	}
	nseg := len(f.segs)
	for _, fd := range f.fields {
		z := f.zones[fd.Name]
		if fd.Kind == dataset.KindString {
			w.u32(uint32(z.Words))
			for _, p := range z.Present {
				w.u64(p)
			}
			continue
		}
		for s := 0; s < nseg; s++ {
			w.f64(z.Min[s])
		}
		for s := 0; s < nseg; s++ {
			w.f64(z.Max[s])
		}
		for s := 0; s < nseg; s++ {
			if z.NaN[s] {
				w.u8(1)
			} else {
				w.u8(0)
			}
		}
	}
	return w.b
}

func decodeFooter(b []byte) (*footer, error) {
	r := &binReader{b: b}
	f := &footer{
		dicts:   make(map[string][]string),
		intVals: make(map[string][]int64),
		zones:   make(map[string]*engine.ZoneData),
	}
	f.name = r.str()
	ncols := int(r.u32())
	if r.err != nil || ncols > 1<<20 {
		return nil, fmt.Errorf("zpack: corrupt footer: implausible column count %d", ncols)
	}
	f.fields = make([]dataset.Field, ncols)
	for i := range f.fields {
		f.fields[i] = dataset.Field{Name: r.str(), Kind: dataset.Kind(r.u8())}
		if k := f.fields[i].Kind; r.err == nil && k > dataset.KindFloat {
			return nil, fmt.Errorf("zpack: corrupt footer: column %q has unknown kind %d", f.fields[i].Name, k)
		}
	}
	f.nrows = r.i64()
	nseg := int(r.u32())
	if r.err != nil || f.nrows < 0 || nseg < 0 || nseg > 1<<28 ||
		int64(nseg) != (f.nrows+engine.SegmentSize-1)/engine.SegmentSize {
		return nil, fmt.Errorf("zpack: corrupt footer: %d segments inconsistent with %d rows", nseg, f.nrows)
	}
	f.segs = make([]segMeta, nseg)
	var total int64
	for i := range f.segs {
		s := &f.segs[i]
		s.rows = int(r.u32())
		s.blocks = make([]blockRef, ncols)
		for j := range s.blocks {
			s.blocks[j] = blockRef{off: int64(r.u64()), len: int64(r.u64()), crc: r.u32()}
		}
		if r.err != nil {
			break
		}
		if s.rows <= 0 || s.rows > engine.SegmentSize || (s.rows < engine.SegmentSize && i != nseg-1) {
			return nil, fmt.Errorf("zpack: corrupt footer: segment %d holds %d rows (only the last segment may be partial)", i, s.rows)
		}
		total += int64(s.rows)
	}
	if r.err == nil && total != f.nrows {
		return nil, fmt.Errorf("zpack: corrupt footer: segment rows sum to %d, want %d", total, f.nrows)
	}
	for _, fd := range f.fields {
		switch fd.Kind {
		case dataset.KindString:
			n := int(r.u32())
			if r.err != nil || n > 1<<28 {
				r.fail()
				break
			}
			dict := make([]string, n)
			for i := range dict {
				dict[i] = r.str()
			}
			f.dicts[fd.Name] = dict
		case dataset.KindInt:
			if r.u8() == 0 {
				continue
			}
			n := int(r.u32())
			if r.err != nil || n > engine.MaxIntDictCardinality {
				r.fail()
				break
			}
			vals := make([]int64, n)
			for i := range vals {
				vals[i] = r.i64()
			}
			f.intVals[fd.Name] = vals
		}
	}
	for _, fd := range f.fields {
		z := &engine.ZoneData{}
		if fd.Kind == dataset.KindString {
			z.Words = int(r.u32())
			if wantWords := (len(f.dicts[fd.Name]) + 63) / 64; r.err == nil &&
				(z.Words < 1 || (wantWords > 0 && z.Words < wantWords)) {
				return nil, fmt.Errorf("zpack: corrupt footer: column %q zone words %d below dictionary need", fd.Name, z.Words)
			}
			if r.err == nil {
				z.Present = make([]uint64, nseg*z.Words)
				for i := range z.Present {
					z.Present[i] = r.u64()
				}
			}
		} else {
			z.Min = make([]float64, nseg)
			z.Max = make([]float64, nseg)
			z.NaN = make([]bool, nseg)
			for s := 0; s < nseg; s++ {
				z.Min[s] = r.f64()
			}
			for s := 0; s < nseg; s++ {
				z.Max[s] = r.f64()
			}
			for s := 0; s < nseg; s++ {
				z.NaN[s] = r.u8() != 0
			}
		}
		f.zones[fd.Name] = z
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(b) {
		return nil, fmt.Errorf("zpack: corrupt footer: %d trailing bytes", len(b)-r.off)
	}
	return f, nil
}
