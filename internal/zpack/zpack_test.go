package zpack

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/workload"
)

func testTable(rows int) *dataset.Table {
	return workload.Sales(workload.SalesConfig{Rows: rows, Products: 8, Years: 8, Cities: 4, Seed: 2})
}

func buildFile(t *testing.T, tb *dataset.Table) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), tb.Name+".zpack")
	if err := Build(path, tb); err != nil {
		t.Fatal(err)
	}
	return path
}

// assertTablesEqual compares every cell of two fully materialized tables.
func assertTablesEqual(t *testing.T, got, want *dataset.Table) {
	t.Helper()
	if got.NumRows() != want.NumRows() || got.NumCols() != want.NumCols() {
		t.Fatalf("shape = %dx%d, want %dx%d", got.NumRows(), got.NumCols(), want.NumRows(), want.NumCols())
	}
	for j, wc := range want.Columns() {
		gc := got.Columns()[j]
		if gc.Field != wc.Field {
			t.Fatalf("column %d field = %+v, want %+v", j, gc.Field, wc.Field)
		}
		for i := 0; i < want.NumRows(); i++ {
			if gv, wv := gc.Value(i), wc.Value(i); gv != wv {
				t.Fatalf("cell (%d, %s) = %v, want %v", i, wc.Field.Name, gv, wv)
			}
		}
	}
}

func TestRoundTrip(t *testing.T) {
	tb := testTable(10000) // 3 segments, last partial
	r, err := Open(buildFile(t, tb))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Rows() != tb.NumRows() || r.NumSegments() != 3 {
		t.Fatalf("rows/segments = %d/%d, want %d/3", r.Rows(), r.NumSegments(), tb.NumRows())
	}
	if r.SegmentLoads() != 0 {
		t.Fatalf("open should load no segments, loaded %d", r.SegmentLoads())
	}
	if err := r.LoadAll(); err != nil {
		t.Fatal(err)
	}
	assertTablesEqual(t, r.Table(), tb)
}

// TestRoundTripQueryIdentical pins the acceptance criterion at the engine
// level: SQL over a zpack-backed column store is byte-identical to the
// in-memory column store (and the zexec golden corpus extends this to full
// ZQL — see internal/zexec's golden test).
func TestRoundTripQueryIdentical(t *testing.T) {
	tb := testTable(10000)
	r, err := Open(buildFile(t, tb))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	mem := engine.NewColumnStore(tb)
	packed := engine.NewColumnStoreFromSource(r)
	queries := []string{
		"SELECT year, SUM(revenue) AS s FROM sales GROUP BY year ORDER BY year",
		"SELECT product, COUNT(*) AS n FROM sales WHERE city = 'city_1' GROUP BY product",
		"SELECT year, AVG(profit) AS a FROM sales WHERE product IN ('product_1', 'product_3') GROUP BY year",
		"SELECT year, MIN(revenue) AS lo, MAX(revenue) AS hi FROM sales WHERE revenue >= 100 GROUP BY year",
		"SELECT product FROM sales WHERE revenue < 0 GROUP BY product",
	}
	for _, sql := range queries {
		want, err := mem.ExecuteSQL(sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		got, err := packed.ExecuteSQL(sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		if fmt.Sprintf("%v", got) != fmt.Sprintf("%v", want) {
			t.Errorf("%s:\n got %v\nwant %v", sql, got, want)
		}
	}
}

// TestLazySkippedSegmentsNeverLoaded is the acceptance criterion's counting
// assertion: a query whose zone maps prune segments must not read them from
// disk. The fixture is value-clustered so a range predicate isolates one
// segment.
func TestLazySkippedSegmentsNeverLoaded(t *testing.T) {
	tb := dataset.NewTable("clustered", []dataset.Field{
		{Name: "k", Kind: dataset.KindInt},
		{Name: "v", Kind: dataset.KindFloat},
	})
	const n = 5 * engine.SegmentSize
	for i := 0; i < n; i++ {
		tb.AppendRow(dataset.IV(int64(i)), dataset.FV(float64(i%100)))
	}
	r, err := Open(buildFile(t, tb))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	db := engine.NewColumnStoreFromSource(r)
	// k is clustered by construction: segment s holds [s*4096, (s+1)*4096).
	target := 2*engine.SegmentSize + 17
	res, err := db.ExecuteSQL(fmt.Sprintf("SELECT k, v FROM clustered WHERE k = %d", target))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != int64(target) {
		t.Fatalf("unexpected result %+v", res.Rows)
	}
	if got := r.SegmentLoads(); got != 1 {
		t.Errorf("query over one segment loaded %d segments, want 1", got)
	}
	c := db.Counters()
	if c.SegmentsSkipped != 4 {
		t.Errorf("segments skipped = %d, want 4", c.SegmentsSkipped)
	}
	// A second query over an already-loaded segment must not reload it.
	if _, err := db.ExecuteSQL(fmt.Sprintf("SELECT v FROM clustered WHERE k = %d", target+1)); err != nil {
		t.Fatal(err)
	}
	if got := r.SegmentLoads(); got != 1 {
		t.Errorf("warm re-query reloaded: %d segment loads, want 1", got)
	}
}

func TestAppendAcrossSealBoundary(t *testing.T) {
	tb := testTable(10000)
	path := filepath.Join(t.TempDir(), "sales.zpack")
	// Write the first 6000 rows, close, reopen for append, add the rest in
	// two batches that cross a 4096 boundary.
	fields := make([]dataset.Field, tb.NumCols())
	for j, c := range tb.Columns() {
		fields[j] = c.Field
	}
	w, err := Create(path, tb.Name, fields)
	if err != nil {
		t.Fatal(err)
	}
	appendRange := func(w *Writer, lo, hi int) {
		t.Helper()
		rows := make([]dataset.Row, 0, hi-lo)
		for i := lo; i < hi; i++ {
			rows = append(rows, tb.Row(i))
		}
		if err := w.Append(rows); err != nil {
			t.Fatal(err)
		}
	}
	appendRange(w, 0, 6000)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w, err = OpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	if w.Rows() != 6000 {
		t.Fatalf("reopened rows = %d, want 6000", w.Rows())
	}
	appendRange(w, 6000, 9000)
	if err := w.Flush(); err != nil { // commit mid-way, then keep appending
		t.Fatal(err)
	}
	appendRange(w, 9000, 10000)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.LoadAll(); err != nil {
		t.Fatal(err)
	}
	assertTablesEqual(t, r.Table(), tb)
}

// TestAppendSnapshotConsistency pins the append-only contract: a reader open
// before an append keeps serving its committed snapshot (every offset it
// knows stays valid), while a Reopen sees the extended data.
func TestAppendSnapshotConsistency(t *testing.T) {
	tb := testTable(5000)
	path := buildFile(t, tb)
	old, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer old.Close()

	w, err := OpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	extra := testTable(8000)
	rows := make([]dataset.Row, 0, 3000)
	for i := 5000; i < 8000; i++ {
		rows = append(rows, extra.Row(i))
	}
	if err := w.Append(rows); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// The old snapshot still reads clean — including its tail segment, whose
	// blocks must not have been overwritten by the append.
	if err := old.LoadAll(); err != nil {
		t.Fatalf("pre-append reader broken after append: %v", err)
	}
	assertTablesEqual(t, old.Table(), tb)

	fresh, err := old.Reopen()
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Rows() != 8000 {
		t.Fatalf("reopened rows = %d, want 8000", fresh.Rows())
	}
	if err := fresh.LoadAll(); err != nil {
		t.Fatal(err)
	}
	assertTablesEqual(t, fresh.Table(), extra)
}

func TestVerifyAndCorruption(t *testing.T) {
	tb := testTable(9000)
	path := buildFile(t, tb)
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Verify(); err != nil {
		t.Fatalf("fresh file failed verify: %v", err)
	}
	r.Close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(t *testing.T, mutate func(b []byte) []byte, wantSubstr string) {
		t.Helper()
		p := filepath.Join(t.TempDir(), "corrupt.zpack")
		if err := os.WriteFile(p, mutate(append([]byte(nil), raw...)), 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := Open(p)
		if err == nil {
			err = r.Verify()
			if le := r.LoadAll(); err == nil {
				err = le
			}
			r.Close()
		}
		if err == nil {
			t.Fatalf("corrupted file opened, verified, and loaded clean")
		}
		if !strings.Contains(err.Error(), wantSubstr) {
			t.Errorf("error %q does not mention %q", err, wantSubstr)
		}
	}
	t.Run("truncated footer", func(t *testing.T) {
		corrupt(t, func(b []byte) []byte { return b[:len(b)-100] }, "zpack")
	})
	t.Run("truncated to nothing", func(t *testing.T) {
		corrupt(t, func(b []byte) []byte { return b[:10] }, "too short")
	})
	t.Run("bad header magic", func(t *testing.T) {
		corrupt(t, func(b []byte) []byte { b[0] = 'X'; return b }, "not a zpack file")
	})
	t.Run("wrong version", func(t *testing.T) {
		corrupt(t, func(b []byte) []byte { b[4] = 99; return b }, "unsupported format version")
	})
	t.Run("bad trailer magic", func(t *testing.T) {
		corrupt(t, func(b []byte) []byte { b[len(b)-1] ^= 0xff; return b }, "trailer magic")
	})
	t.Run("footer checksum", func(t *testing.T) {
		// Flip a byte inside the footer (just before the trailer).
		corrupt(t, func(b []byte) []byte { b[len(b)-trailerSize-5] ^= 0xff; return b }, "checksum mismatch")
	})
	t.Run("block checksum", func(t *testing.T) {
		// Flip a data byte just after the header: the first block.
		corrupt(t, func(b []byte) []byte { b[headerSize+3] ^= 0xff; return b }, "checksum mismatch")
	})
}

// TestDeterministicBytes pins byte-for-byte reproducible output for the same
// input — the property the committed golden fixture depends on.
func TestDeterministicBytes(t *testing.T) {
	tb := testTable(9000)
	a, err := os.ReadFile(buildFile(t, tb))
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(buildFile(t, testTable(9000)))
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("two builds of the same table produced different bytes")
	}
}

func TestEmptyDataset(t *testing.T) {
	tb := dataset.NewTable("empty", []dataset.Field{
		{Name: "a", Kind: dataset.KindString},
		{Name: "b", Kind: dataset.KindFloat},
	})
	r, err := Open(buildFile(t, tb))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Rows() != 0 || r.NumSegments() != 0 {
		t.Fatalf("rows/segments = %d/%d, want 0/0", r.Rows(), r.NumSegments())
	}
	db := engine.NewColumnStoreFromSource(r)
	res, err := db.ExecuteSQL("SELECT a, COUNT(*) AS n FROM empty GROUP BY a")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("rows = %+v", res.Rows)
	}
}

// TestGoldenFixtureBackwardReadable guards format compatibility: the
// committed v1 fixture must keep opening and matching its committed CSV
// source byte for byte, in every future build of this package.
func TestGoldenFixtureBackwardReadable(t *testing.T) {
	r, err := Open(filepath.Join("testdata", "fixture_v1.zpack"))
	if err != nil {
		t.Fatalf("committed v1 fixture no longer opens: %v", err)
	}
	defer r.Close()
	if err := r.Verify(); err != nil {
		t.Fatalf("committed v1 fixture no longer verifies: %v", err)
	}
	want, err := dataset.ReadCSVFile("fixture", filepath.Join("testdata", "fixture.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.LoadAll(); err != nil {
		t.Fatal(err)
	}
	assertTablesEqual(t, r.Table(), want)
}

// TestShardedReaderRangeViews pins the footer-index sharding contract: a
// zpack file shards into contiguous range views of the same reader without
// rewriting a byte, zone-map pruning composes with sharding (a pruned
// shard's segments are never read from disk, visible per shard), and the
// gathered result equals the in-memory store's.
func TestShardedReaderRangeViews(t *testing.T) {
	tb := dataset.NewTable("clustered", []dataset.Field{
		{Name: "k", Kind: dataset.KindInt},
		{Name: "v", Kind: dataset.KindFloat},
	})
	const n = 5 * engine.SegmentSize
	for i := 0; i < n; i++ {
		tb.AppendRow(dataset.IV(int64(i)), dataset.FV(float64(i%100)))
	}
	r, err := Open(buildFile(t, tb))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	// 5 segments over 3 shards: [0,1), [1,3), [3,5).
	db := engine.NewShardedStoreFromSource(3, r)
	mem := engine.NewColumnStore(tb)
	target := 2*engine.SegmentSize + 17
	sql := fmt.Sprintf("SELECT k, v FROM clustered WHERE k = %d", target)
	want, err := mem.ExecuteSQL(sql)
	if err != nil {
		t.Fatal(err)
	}
	got, err := db.ExecuteSQL(sql)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%v", got) != fmt.Sprintf("%v", want) {
		t.Errorf("sharded zpack result:\n got %v\nwant %v", got, want)
	}
	// The target row lives in segment 2, owned by shard 1: exactly one
	// segment crosses the disk, through that shard's view.
	if loads := r.SegmentLoads(); loads != 1 {
		t.Errorf("sharded point query loaded %d segments, want 1", loads)
	}
	stats := db.ShardStats("clustered")
	if len(stats) != 3 {
		t.Fatalf("%d shard stats", len(stats))
	}
	for i, sc := range stats {
		wantLoads := int64(0)
		if i == 1 {
			wantLoads = 1
		}
		if sc.SegmentLoads != wantLoads {
			t.Errorf("shard %d loads = %d, want %d", i, sc.SegmentLoads, wantLoads)
		}
	}
	// A full scan loads the rest, each segment exactly once despite the
	// shard fan-out.
	if _, err := db.ExecuteSQL("SELECT COUNT(*) AS c FROM clustered"); err != nil {
		t.Fatal(err)
	}
	if loads := r.SegmentLoads(); loads != 5 {
		t.Errorf("full scan loaded %d segments, want 5", loads)
	}
}
