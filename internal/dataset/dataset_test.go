package dataset

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestValueCoercions(t *testing.T) {
	cases := []struct {
		v Value
		f float64
		i int64
		s string
	}{
		{IV(42), 42, 42, "42"},
		{FV(2.5), 2.5, 2, "2.5"},
		{SV("7"), 7, 7, "7"},
		{SV("x"), 0, 0, "x"},
		{SV(""), 0, 0, ""},
	}
	for _, c := range cases {
		if got := c.v.Float(); got != c.f {
			t.Errorf("%v.Float() = %v, want %v", c.v, got, c.f)
		}
		if got := c.v.Int(); got != c.i {
			t.Errorf("%v.Int() = %v, want %v", c.v, got, c.i)
		}
		if got := c.v.String(); got != c.s {
			t.Errorf("%v.String() = %q, want %q", c.v, got, c.s)
		}
	}
}

func TestValueEqualMixedNumeric(t *testing.T) {
	if !IV(3).Equal(FV(3)) {
		t.Error("IV(3) should equal FV(3)")
	}
	if IV(3).Equal(SV("3")) {
		t.Error("IV(3) should not equal SV(\"3\")")
	}
	if !SV("a").Equal(SV("a")) {
		t.Error("SV equality broken")
	}
}

func TestValueCompare(t *testing.T) {
	if IV(1).Compare(IV(2)) != -1 || IV(2).Compare(IV(1)) != 1 || IV(2).Compare(FV(2)) != 0 {
		t.Error("numeric compare broken")
	}
	if SV("a").Compare(SV("b")) != -1 {
		t.Error("string compare broken")
	}
}

func TestValueCompareIsAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		return IV(a).Compare(IV(b)) == -IV(b).Compare(IV(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseValue(t *testing.T) {
	if v := ParseValue("12"); v.Kind != KindInt || v.I != 12 {
		t.Errorf("ParseValue(12) = %#v", v)
	}
	if v := ParseValue("1.5"); v.Kind != KindFloat || v.F != 1.5 {
		t.Errorf("ParseValue(1.5) = %#v", v)
	}
	if v := ParseValue("chair"); v.Kind != KindString || v.S != "chair" {
		t.Errorf("ParseValue(chair) = %#v", v)
	}
	if v := ParseValue(""); v.Kind != KindString || v.S != "" {
		t.Errorf("ParseValue(empty) = %#v", v)
	}
}

func TestNullValue(t *testing.T) {
	if !NullValue.IsNull() {
		t.Error("NullValue must report IsNull")
	}
	if SV("null").IsNull() {
		t.Error("the literal string 'null' must not be the null sentinel")
	}
	if NullValue.String() != "NULL" {
		t.Errorf("NullValue.String() = %q", NullValue.String())
	}
}

func sampleTable() *Table {
	t := NewTable("sales", []Field{
		{Name: "product", Kind: KindString},
		{Name: "year", Kind: KindInt},
		{Name: "sales", Kind: KindFloat},
	})
	t.AppendRow(SV("chair"), IV(2014), FV(100))
	t.AppendRow(SV("table"), IV(2014), FV(200))
	t.AppendRow(SV("chair"), IV(2015), FV(150))
	t.AppendRow(SV("desk"), IV(2015), FV(50))
	return t
}

func TestTableBasics(t *testing.T) {
	tb := sampleTable()
	if tb.NumRows() != 4 || tb.NumCols() != 3 {
		t.Fatalf("shape = %dx%d", tb.NumRows(), tb.NumCols())
	}
	if !tb.HasColumn("product") || tb.HasColumn("nope") {
		t.Error("HasColumn broken")
	}
	r := tb.Row(2)
	if r[0].S != "chair" || r[1].I != 2015 || r[2].F != 150 {
		t.Errorf("Row(2) = %v", r)
	}
	if got := tb.Column("product").Cardinality(); got != 3 {
		t.Errorf("product cardinality = %d, want 3", got)
	}
}

func TestColumnDictionaryEncoding(t *testing.T) {
	tb := sampleTable()
	c := tb.Column("product")
	if c.CodeOf("chair") != c.Code(0) || c.Code(0) != c.Code(2) {
		t.Error("same string must share a code")
	}
	if c.CodeOf("widget") != -1 {
		t.Error("CodeOf of unseen string must be -1")
	}
	if len(c.Dict()) != 3 {
		t.Errorf("dict size = %d", len(c.Dict()))
	}
}

func TestDistinctSorted(t *testing.T) {
	tb := sampleTable()
	got := tb.Column("product").DistinctSorted()
	want := []string{"chair", "desk", "table"}
	for i, w := range want {
		if got[i].S != w {
			t.Errorf("distinct[%d] = %q, want %q", i, got[i].S, w)
		}
	}
	years := tb.Column("year").DistinctSorted()
	if len(years) != 2 || years[0].I != 2014 || years[1].I != 2015 {
		t.Errorf("year distinct = %v", years)
	}
	sales := tb.Column("sales").DistinctSorted()
	if len(sales) != 4 || sales[0].F != 50 {
		t.Errorf("sales distinct = %v", sales)
	}
}

func TestCategoricalAndMeasureColumns(t *testing.T) {
	tb := sampleTable()
	if got := tb.CategoricalColumns(); len(got) != 1 || got[0] != "product" {
		t.Errorf("categorical = %v", got)
	}
	if got := tb.MeasureColumns(); len(got) != 2 {
		t.Errorf("measures = %v", got)
	}
}

func TestColumnFloatAccess(t *testing.T) {
	tb := sampleTable()
	if tb.Column("year").Float(0) != 2014 {
		t.Error("int column Float broken")
	}
	if tb.Column("sales").Float(1) != 200 {
		t.Error("float column Float broken")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tb := sampleTable()
	var buf bytes.Buffer
	if err := WriteCSV(tb, &buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV("sales", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != tb.NumRows() || got.NumCols() != tb.NumCols() {
		t.Fatalf("round trip shape %dx%d", got.NumRows(), got.NumCols())
	}
	for i := 0; i < tb.NumRows(); i++ {
		a, b := tb.Row(i), got.Row(i)
		for j := range a {
			if !a[j].Equal(b[j]) {
				t.Errorf("row %d col %d: %v != %v", i, j, a[j], b[j])
			}
		}
	}
	if got.Column("year").Field.Kind != KindInt {
		t.Error("year should sniff as int")
	}
	// Integral floats render without a decimal point, so they sniff back as
	// int; the values still compare equal above.
	if k := got.Column("sales").Field.Kind; k == KindString {
		t.Error("sales should sniff as numeric")
	}
}

func TestCSVKindSniffing(t *testing.T) {
	in := "a,b,c\n1,1.5,x\n2,2,y\n"
	tb, err := ReadCSV("t", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tb.Column("a").Field.Kind != KindInt {
		t.Error("a should be int")
	}
	if tb.Column("b").Field.Kind != KindFloat {
		t.Error("b should be float (mixed int/float)")
	}
	if tb.Column("c").Field.Kind != KindString {
		t.Error("c should be string")
	}
}

func TestCSVErrors(t *testing.T) {
	if _, err := ReadCSV("t", strings.NewReader("")); err == nil {
		t.Error("empty input should error")
	}
	if _, err := ReadCSV("t", strings.NewReader("a,b\n1\n")); err == nil {
		t.Error("ragged row should error")
	}
}

func TestAppendRowArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on wrong arity")
		}
	}()
	sampleTable().AppendRow(SV("x"))
}

func TestRowClone(t *testing.T) {
	r := Row{SV("a"), IV(1)}
	c := r.Clone()
	c[0] = SV("b")
	if r[0].S != "a" {
		t.Error("Clone must not alias")
	}
}
