// Package dataset provides the typed, columnar, in-memory relation that every
// layer of zenvisage operates on: the SQL executors scan it, the bitmap store
// indexes it, and the workload generators synthesize into it.
//
// A Table is a named collection of Columns sharing a row count. Categorical
// (string) columns are dictionary-encoded so that the bitmap back-end can
// build one roaring bitmap per distinct value, and measure columns are stored
// as raw int64/float64 slices for fast aggregation.
package dataset

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind is the runtime type of a column or scalar value.
type Kind uint8

const (
	// KindString is a dictionary-encoded categorical column.
	KindString Kind = iota
	// KindInt is a 64-bit integer measure or ordinal column.
	KindInt
	// KindFloat is a 64-bit floating point measure column.
	KindFloat
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Value is a dynamically typed scalar. It is the currency of result sets and
// predicate constants. The zero Value is the empty string.
type Value struct {
	Kind Kind
	S    string
	I    int64
	F    float64
}

// NullValue reports a sentinel used for missing cells in pivoted results.
var NullValue = Value{Kind: KindString, S: "\x00null"}

// IsNull reports whether v is the missing-cell sentinel.
func (v Value) IsNull() bool { return v.Kind == KindString && v.S == "\x00null" }

// SV returns a string Value.
func SV(s string) Value { return Value{Kind: KindString, S: s} }

// IV returns an int Value.
func IV(i int64) Value { return Value{Kind: KindInt, I: i} }

// FV returns a float Value.
func FV(f float64) Value { return Value{Kind: KindFloat, F: f} }

// Float returns the value coerced to float64. Strings parse if numeric,
// otherwise 0.
func (v Value) Float() float64 {
	switch v.Kind {
	case KindInt:
		return float64(v.I)
	case KindFloat:
		return v.F
	default:
		f, _ := strconv.ParseFloat(v.S, 64)
		return f
	}
}

// Int returns the value coerced to int64.
func (v Value) Int() int64 {
	switch v.Kind {
	case KindInt:
		return v.I
	case KindFloat:
		return int64(v.F)
	default:
		i, _ := strconv.ParseInt(v.S, 10, 64)
		return i
	}
}

// String renders the value the way a CSV or result row would show it.
func (v Value) String() string {
	switch v.Kind {
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	default:
		if v.IsNull() {
			return "NULL"
		}
		return v.S
	}
}

// Equal reports whether two values compare equal, coercing numerics so that
// IV(3) equals FV(3).
func (v Value) Equal(o Value) bool {
	if v.Kind == KindString || o.Kind == KindString {
		if v.Kind != o.Kind {
			return false
		}
		return v.S == o.S
	}
	return v.Float() == o.Float()
}

// Compare orders two values: numerics numerically, strings lexically.
// Mixed string/numeric compares by the string rendering so sorting stays
// total. Returns -1, 0, or +1.
func (v Value) Compare(o Value) int {
	if v.Kind != KindString && o.Kind != KindString {
		a, b := v.Float(), o.Float()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	}
	return strings.Compare(v.String(), o.String())
}

// ParseValue guesses the kind of a raw text cell: int, then float, then
// string. Empty cells are the empty string.
func ParseValue(s string) Value {
	if s == "" {
		return SV("")
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return IV(i)
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return FV(f)
	}
	return SV(s)
}

// Row is one tuple of a result set.
type Row []Value

// Clone deep-copies the row.
func (r Row) Clone() Row {
	c := make(Row, len(r))
	copy(c, r)
	return c
}
