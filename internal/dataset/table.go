package dataset

import (
	"fmt"
	"sort"
)

// Field describes one column of a table.
type Field struct {
	Name string
	Kind Kind
}

// Column is the physical storage for one field. Categorical columns are
// dictionary-encoded: codes[i] indexes into dict. Numeric columns use the
// typed slices directly.
//
// A column normally materializes through Append*; a lazily-backed table
// (zpack) instead Presizes the storage and fills row ranges in place as
// segments load, optionally installing a distinct-value cache and an
// ensure-loaded hook so metadata reads stay correct before the data lands.
type Column struct {
	Field Field

	codes  []int32
	dict   []string
	dictIx map[string]int32

	ints   []int64
	floats []float64

	distinct []Value // optional precomputed DistinctSorted (lazy backings)
	ensure   func()  // optional hook: materialize all rows before a raw read
}

// NewColumn returns an empty column of the given field.
func NewColumn(f Field) *Column {
	c := &Column{Field: f}
	if f.Kind == KindString {
		c.dictIx = make(map[string]int32)
	}
	return c
}

// Len returns the number of rows stored.
func (c *Column) Len() int {
	switch c.Field.Kind {
	case KindString:
		return len(c.codes)
	case KindInt:
		return len(c.ints)
	default:
		return len(c.floats)
	}
}

// AppendString appends a categorical value; panics on non-string columns.
func (c *Column) AppendString(s string) {
	code, ok := c.dictIx[s]
	if !ok {
		code = int32(len(c.dict))
		c.dict = append(c.dict, s)
		c.dictIx[s] = code
	}
	c.codes = append(c.codes, code)
}

// AppendInt appends an integer value.
func (c *Column) AppendInt(i int64) { c.ints = append(c.ints, i) }

// AppendFloat appends a float value.
func (c *Column) AppendFloat(f float64) { c.floats = append(c.floats, f) }

// Append appends a dynamically typed value, coercing it to the column kind.
func (c *Column) Append(v Value) {
	switch c.Field.Kind {
	case KindString:
		c.AppendString(v.String())
	case KindInt:
		c.AppendInt(v.Int())
	default:
		c.AppendFloat(v.Float())
	}
}

// Value returns the cell at row i as a Value.
func (c *Column) Value(i int) Value {
	switch c.Field.Kind {
	case KindString:
		return SV(c.dict[c.codes[i]])
	case KindInt:
		return IV(c.ints[i])
	default:
		return FV(c.floats[i])
	}
}

// Float returns the cell at row i coerced to float64. For categorical
// columns it parses the dictionary entry.
func (c *Column) Float(i int) float64 {
	switch c.Field.Kind {
	case KindInt:
		return float64(c.ints[i])
	case KindFloat:
		return c.floats[i]
	default:
		return SV(c.dict[c.codes[i]]).Float()
	}
}

// Code returns the dictionary code at row i; only valid for string columns.
func (c *Column) Code(i int) int32 { return c.codes[i] }

// Codes exposes the raw code slice of a categorical column for fast scans.
func (c *Column) Codes() []int32 { return c.codes }

// Ints exposes the raw int slice.
func (c *Column) Ints() []int64 { return c.ints }

// Floats exposes the raw float slice.
func (c *Column) Floats() []float64 { return c.floats }

// Dict returns the dictionary of a categorical column (code -> value).
func (c *Column) Dict() []string { return c.dict }

// CodeOf returns the dictionary code for s, or -1 if s never occurs.
func (c *Column) CodeOf(s string) int32 {
	if code, ok := c.dictIx[s]; ok {
		return code
	}
	return -1
}

// Cardinality returns the number of distinct values of a categorical column.
func (c *Column) Cardinality() int { return len(c.dict) }

// Presize replaces the column's storage with zeroed slices of length n, the
// layout a lazily-loading backing fills in place: the slice headers never
// change after this, so readers that captured them observe loaded data.
func (c *Column) Presize(n int) {
	switch c.Field.Kind {
	case KindString:
		c.codes = make([]int32, n)
	case KindInt:
		c.ints = make([]int64, n)
	default:
		c.floats = make([]float64, n)
	}
}

// SetDict installs the full dictionary of a categorical column up front
// (lazy backings persist dictionaries in their metadata footer).
func (c *Column) SetDict(dict []string) {
	c.dict = append([]string(nil), dict...)
	c.dictIx = make(map[string]int32, len(dict))
	for i, s := range c.dict {
		c.dictIx[s] = int32(i)
	}
}

// SetDistinctSorted installs a precomputed DistinctSorted result, so a
// lazily-backed numeric column can answer distinct-value enumeration (axis
// '*' expansion) from metadata without materializing any data.
func (c *Column) SetDistinctSorted(vals []Value) { c.distinct = vals }

// SetEnsureLoaded installs a hook DistinctSorted calls before scanning raw
// numeric data, so a lazily-backed column can materialize itself first.
func (c *Column) SetEnsureLoaded(f func()) { c.ensure = f }

// DistinctSorted returns the sorted distinct values of the column. For
// numeric columns this scans (materializing a lazy backing first); for
// categorical it sorts the dictionary.
func (c *Column) DistinctSorted() []Value {
	if c.distinct != nil {
		return append([]Value(nil), c.distinct...)
	}
	if c.ensure != nil && c.Field.Kind != KindString {
		c.ensure()
	}
	switch c.Field.Kind {
	case KindString:
		vals := append([]string(nil), c.dict...)
		sort.Strings(vals)
		out := make([]Value, len(vals))
		for i, s := range vals {
			out[i] = SV(s)
		}
		return out
	case KindInt:
		seen := make(map[int64]struct{})
		for _, v := range c.ints {
			seen[v] = struct{}{}
		}
		keys := make([]int64, 0, len(seen))
		for k := range seen {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		out := make([]Value, len(keys))
		for i, k := range keys {
			out[i] = IV(k)
		}
		return out
	default:
		seen := make(map[float64]struct{})
		for _, v := range c.floats {
			seen[v] = struct{}{}
		}
		keys := make([]float64, 0, len(seen))
		for k := range seen {
			keys = append(keys, k)
		}
		sort.Float64s(keys)
		out := make([]Value, len(keys))
		for i, k := range keys {
			out[i] = FV(k)
		}
		return out
	}
}

// Table is an immutable-after-build named relation.
type Table struct {
	Name   string
	cols   []*Column
	byName map[string]*Column
	nrows  int
}

// NewTable creates an empty table with the given schema.
func NewTable(name string, fields []Field) *Table {
	t := &Table{Name: name, byName: make(map[string]*Column, len(fields))}
	for _, f := range fields {
		c := NewColumn(f)
		t.cols = append(t.cols, c)
		t.byName[f.Name] = c
	}
	return t
}

// NewPresized creates a table whose columns are zeroed storage of the given
// row count, ready to be filled in place by a lazy backing (zpack). The
// table reports rows rows immediately; cells read as zero values until
// their segment loads.
func NewPresized(name string, fields []Field, rows int) *Table {
	t := NewTable(name, fields)
	for _, c := range t.cols {
		c.Presize(rows)
	}
	t.nrows = rows
	return t
}

// NumRows returns the row count.
func (t *Table) NumRows() int { return t.nrows }

// NumCols returns the column count.
func (t *Table) NumCols() int { return len(t.cols) }

// Columns returns the columns in schema order.
func (t *Table) Columns() []*Column { return t.cols }

// Column returns the column named name, or nil.
func (t *Table) Column(name string) *Column { return t.byName[name] }

// HasColumn reports whether the table has a column named name.
func (t *Table) HasColumn(name string) bool { _, ok := t.byName[name]; return ok }

// ColumnNames returns the field names in schema order.
func (t *Table) ColumnNames() []string {
	out := make([]string, len(t.cols))
	for i, c := range t.cols {
		out[i] = c.Field.Name
	}
	return out
}

// AppendRow appends one tuple; values must match the schema arity.
func (t *Table) AppendRow(vals ...Value) {
	if len(vals) != len(t.cols) {
		panic(fmt.Sprintf("dataset: AppendRow arity %d != schema arity %d", len(vals), len(t.cols)))
	}
	for i, v := range vals {
		t.cols[i].Append(v)
	}
	t.nrows++
}

// Row materializes row i as a Row of Values.
func (t *Table) Row(i int) Row {
	r := make(Row, len(t.cols))
	for j, c := range t.cols {
		r[j] = c.Value(i)
	}
	return r
}

// CategoricalColumns returns the names of all string-kinded columns, the set
// the bitmap back-end indexes by default.
func (t *Table) CategoricalColumns() []string {
	var out []string
	for _, c := range t.cols {
		if c.Field.Kind == KindString {
			out = append(out, c.Field.Name)
		}
	}
	return out
}

// MeasureColumns returns the names of all numeric columns.
func (t *Table) MeasureColumns() []string {
	var out []string
	for _, c := range t.cols {
		if c.Field.Kind != KindString {
			out = append(out, c.Field.Name)
		}
	}
	return out
}
