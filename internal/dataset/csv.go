package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
)

// ReadCSV loads a table from CSV with a header row. Column kinds are inferred
// from the first maxSniff data rows: a column is int if every sampled cell
// parses as int, float if every cell parses as a number, otherwise string.
func ReadCSV(name string, r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = false
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	var records [][]string
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading CSV row %d: %w", len(records)+2, err)
		}
		records = append(records, rec)
	}
	fields := make([]Field, len(header))
	for j, h := range header {
		fields[j] = Field{Name: h, Kind: sniffKind(records, j)}
	}
	t := NewTable(name, fields)
	for _, rec := range records {
		if len(rec) != len(fields) {
			return nil, fmt.Errorf("dataset: CSV row has %d cells, want %d", len(rec), len(fields))
		}
		for j, cell := range rec {
			switch fields[j].Kind {
			case KindInt:
				i, err := strconv.ParseInt(cell, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("dataset: column %q: %w", fields[j].Name, err)
				}
				t.cols[j].AppendInt(i)
			case KindFloat:
				f, err := strconv.ParseFloat(cell, 64)
				if err != nil {
					return nil, fmt.Errorf("dataset: column %q: %w", fields[j].Name, err)
				}
				t.cols[j].AppendFloat(f)
			default:
				t.cols[j].AppendString(cell)
			}
		}
		t.nrows++
	}
	return t, nil
}

const maxSniff = 1000

func sniffKind(records [][]string, col int) Kind {
	n := len(records)
	if n > maxSniff {
		n = maxSniff
	}
	if n == 0 {
		return KindString
	}
	allInt, allNum := true, true
	for i := 0; i < n; i++ {
		cell := records[i][col]
		if _, err := strconv.ParseInt(cell, 10, 64); err != nil {
			allInt = false
		}
		if _, err := strconv.ParseFloat(cell, 64); err != nil {
			allNum = false
			break
		}
	}
	switch {
	case allInt:
		return KindInt
	case allNum:
		return KindFloat
	default:
		return KindString
	}
}

// ReadCSVFile loads a table from a CSV file on disk, naming it after path.
func ReadCSVFile(name, path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(name, f)
}

// WriteCSV serializes the table with a header row.
func WriteCSV(t *Table, w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.ColumnNames()); err != nil {
		return err
	}
	rec := make([]string, t.NumCols())
	for i := 0; i < t.NumRows(); i++ {
		for j, c := range t.Columns() {
			rec[j] = c.Value(i).String()
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
