package engine

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/minisql"
)

// shardMetrics builds a multi-segment table for sharding differentials:
// region is clustered (contiguous runs, so zone maps prove shards empty for
// equality predicates) and every measure is integer-valued, so SUM/AVG
// accumulate exactly and sharded results must be byte-identical to the
// unsharded scan. 50_000 rows = 13 segments.
func shardMetrics(rows int) *dataset.Table {
	t := dataset.NewTable("metrics", []dataset.Field{
		{Name: "region", Kind: dataset.KindString},
		{Name: "bucket", Kind: dataset.KindInt},
		{Name: "value", Kind: dataset.KindFloat},
		{Name: "weight", Kind: dataset.KindFloat},
	})
	regions := []string{"north", "south", "east", "west", "mid", "coast"}
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < rows; i++ {
		t.AppendRow(
			dataset.SV(regions[i*len(regions)/rows]),
			dataset.IV(int64(rng.Intn(16))),
			dataset.FV(float64(rng.Intn(1000))),
			dataset.FV(float64(i%97)),
		)
	}
	return t
}

// shardQueries exercises every sink and merge path: the flat dictionary-code
// sink (string and dictionary-int keys), the hash sink (binned keys),
// projections with and without ordering, aggregates without GROUP BY, empty
// match sets, and non-grouped representative columns.
var shardQueries = []string{
	"SELECT region, SUM(value) AS s, COUNT(*) AS n FROM metrics GROUP BY region ORDER BY region",
	"SELECT region, SUM(value) AS s FROM metrics WHERE region = 'north' GROUP BY region",
	"SELECT bucket, AVG(value) AS a, MIN(value) AS lo, MAX(value) AS hi FROM metrics GROUP BY bucket ORDER BY bucket",
	"SELECT region, bucket, SUM(value) AS s FROM metrics WHERE bucket IN (1, 2, 3) GROUP BY region, bucket ORDER BY region, bucket",
	"SELECT BIN(weight, 10) AS w, COUNT(*) AS n FROM metrics GROUP BY BIN(weight, 10) ORDER BY w",
	"SELECT SUM(weight) AS s, COUNT(*) AS n FROM metrics",
	"SELECT COUNT(*) AS n FROM metrics WHERE value < 0",
	"SELECT region, SUM(value) AS s FROM metrics WHERE region = 'nowhere' GROUP BY region",
	"SELECT value, weight FROM metrics WHERE region = 'east' AND value > 900 ORDER BY value DESC, weight LIMIT 25",
	"SELECT region FROM metrics WHERE value = 999 LIMIT 40",
	"SELECT region, weight, SUM(value) AS s FROM metrics GROUP BY region ORDER BY region",
}

// TestShardedMatchesUnsharded is the core differential: for every shard
// count, every query's sharded result must be identical — group order, row
// order, every byte — to the unsharded column store's.
func TestShardedMatchesUnsharded(t *testing.T) {
	tb := shardMetrics(50_000)
	ref := NewColumnStore(tb)
	for _, n := range []int{1, 2, 3, 4, 8, 64} {
		db := NewShardedStore(n, tb)
		db.SetParallelism(4)
		for _, q := range shardQueries {
			want, err := ref.ExecuteSQL(q)
			if err != nil {
				t.Fatal(err)
			}
			got, err := db.ExecuteSQL(q)
			if err != nil {
				t.Fatalf("shards=%d %q: %v", n, q, err)
			}
			if err := sameResult(got, want); err != nil {
				t.Fatalf("shards=%d %q: %v", n, q, err)
			}
		}
	}
}

// TestShardedBatchMatchesUnsharded scatters the whole query set as one
// batch — the path the serving coalescer takes — and spans two tables so the
// scatter covers multiple table groups in one call.
func TestShardedBatchMatchesUnsharded(t *testing.T) {
	tb := shardMetrics(50_000)
	other := salesTable()
	ref := NewColumnStore(tb, other)
	db := NewShardedStore(3, tb, other)
	db.SetParallelism(4)
	queries := append([]string{}, shardQueries...)
	queries = append(queries,
		"SELECT year, SUM(sales) AS s FROM sales WHERE product = 'chair' GROUP BY year ORDER BY year",
		"SELECT COUNT(*) AS n FROM sales WHERE location = 'UK'",
	)
	var plans []*Plan
	var want []*Result
	for _, q := range queries {
		p, err := prepareSQL(db, q)
		if err != nil {
			t.Fatal(err)
		}
		plans = append(plans, p)
		w, err := ref.ExecuteSQL(q)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, w)
	}
	got, err := db.ExecuteBatch(context.Background(), plans)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if err := sameResult(got[i], want[i]); err != nil {
			t.Fatalf("%q: %v", queries[i], err)
		}
	}
}

// TestShardedUnevenSplit pins the SplitSourceAt contract: deliberately
// lopsided cuts, including an empty middle shard, still gather to the exact
// unsharded result (an empty shard merges as the identity).
func TestShardedUnevenSplit(t *testing.T) {
	tb := shardMetrics(50_000)
	ref := NewColumnStore(tb)
	src := NewMemSource(tb)
	nseg := src.NumSegments()
	for _, cuts := range [][]int{
		{1, 1},                 // empty middle shard
		{0, nseg},              // empty first and last shards
		{1, nseg - 1},          // tiny edges, fat middle
		{nseg / 4, nseg/4 + 1}, // one-segment middle shard
	} {
		db := NewShardedStoreFromShards(SplitSourceAt(NewMemSource(tb), cuts))
		db.SetParallelism(4)
		for _, q := range shardQueries {
			want, err := ref.ExecuteSQL(q)
			if err != nil {
				t.Fatal(err)
			}
			got, err := db.ExecuteSQL(q)
			if err != nil {
				t.Fatalf("cuts=%v %q: %v", cuts, q, err)
			}
			if err := sameResult(got, want); err != nil {
				t.Fatalf("cuts=%v %q: %v", cuts, q, err)
			}
		}
	}
}

// TestShardedEmptyTable covers the degenerate split: zero segments yield one
// empty shard, and aggregate semantics (COUNT 0, NULL elsewhere) survive the
// gather.
func TestShardedEmptyTable(t *testing.T) {
	tb := dataset.NewTable("metrics", []dataset.Field{
		{Name: "region", Kind: dataset.KindString},
		{Name: "value", Kind: dataset.KindFloat},
	})
	ref := NewColumnStore(tb)
	db := NewShardedStore(4, tb)
	for _, q := range []string{
		"SELECT COUNT(*) AS n FROM metrics",
		"SELECT SUM(value) AS s FROM metrics",
		"SELECT region, SUM(value) AS s FROM metrics GROUP BY region",
		"SELECT region, value FROM metrics",
	} {
		want, err := ref.ExecuteSQL(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := db.ExecuteSQL(q)
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		if err := sameResult(got, want); err != nil {
			t.Fatalf("%q: %v", q, err)
		}
	}
}

func TestSplitSourceShapes(t *testing.T) {
	tb := shardMetrics(50_000)
	src := NewMemSource(tb)
	nseg := src.NumSegments()
	if nseg != 13 {
		t.Fatalf("nseg = %d, want 13", nseg)
	}
	for _, c := range []struct{ n, want int }{
		{1, 1}, {3, 3}, {13, 13}, {64, 13}, {0, 1}, {-2, 1},
	} {
		views := SplitSource(NewMemSource(tb), c.n)
		if len(views) != c.want {
			t.Fatalf("SplitSource(%d): %d views, want %d", c.n, len(views), c.want)
		}
		covered := 0
		prevHi := 0
		for _, v := range views {
			lo, hi := v.(SegmentRanged).SegRange()
			if lo != prevHi || hi < lo {
				t.Fatalf("SplitSource(%d): non-contiguous range [%d,%d) after %d", c.n, lo, hi, prevHi)
			}
			covered += hi - lo
			prevHi = hi
		}
		if covered != nseg || prevHi != nseg {
			t.Fatalf("SplitSource(%d): covered %d of %d segments", c.n, covered, nseg)
		}
	}
	for _, bad := range [][]int{{-1}, {5, 3}, {nseg + 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SplitSourceAt(%v) should panic", bad)
				}
			}()
			SplitSourceAt(NewMemSource(tb), bad)
		}()
	}
}

// failSource fails Load for chosen segments; everything else delegates.
type failSource struct {
	SegmentSource
	failAt map[int]error
}

func (f *failSource) Load(seg int) error {
	if err := f.failAt[seg]; err != nil {
		return err
	}
	return f.SegmentSource.Load(seg)
}

// panicSource panics on Load for chosen segments.
type panicSource struct {
	SegmentSource
	panicAt int
}

func (p *panicSource) Load(seg int) error {
	if seg == p.panicAt {
		panic(fmt.Sprintf("injected panic at segment %d", seg))
	}
	return p.SegmentSource.Load(seg)
}

// TestShardedErrorSelectionDeterministic injects load failures into two
// different shards and asserts the gather always reports the lowest shard
// index's error — the scatter-pool mirror of the process pool's
// lowest-index convention — no matter how the workers race.
func TestShardedErrorSelectionDeterministic(t *testing.T) {
	tb := shardMetrics(50_000)
	errLow := errors.New("disk failure in segment 5")
	errHigh := errors.New("disk failure in segment 9")
	src := &failSource{
		SegmentSource: NewMemSource(tb),
		failAt:        map[int]error{5: errLow, 9: errHigh},
	}
	// Cuts [4, 8]: segment 5 lands in shard 1, segment 9 in shard 2.
	db := NewShardedStoreFromShards(SplitSourceAt(src, []int{4, 8}))
	db.SetParallelism(4)
	p, err := prepareSQL(db, "SELECT COUNT(*) AS n FROM metrics")
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 30; trial++ {
		_, err := db.ExecuteBatch(context.Background(), []*Plan{p})
		if err == nil {
			t.Fatal("want error")
		}
		if !errors.Is(err, errLow) {
			t.Fatalf("trial %d: got %v, want the lowest shard's error", trial, err)
		}
		if errors.Is(err, errHigh) {
			t.Fatalf("trial %d: higher shard's error leaked: %v", trial, err)
		}
	}
}

// TestShardedPanicContainment injects a panic into one shard's scan: it must
// surface as that shard's error, not kill the process — and a lower shard's
// plain error still outranks a higher shard's panic.
func TestShardedPanicContainment(t *testing.T) {
	tb := shardMetrics(50_000)
	src := &panicSource{SegmentSource: NewMemSource(tb), panicAt: 9}
	db := NewShardedStoreFromShards(SplitSourceAt(src, []int{4, 8}))
	db.SetParallelism(4)
	_, err := db.ExecuteSQL("SELECT COUNT(*) AS n FROM metrics")
	if err == nil || !strings.Contains(err.Error(), "shard panic") {
		t.Fatalf("got %v, want contained shard panic", err)
	}

	errLow := errors.New("disk failure in segment 5")
	both := &panicSource{
		SegmentSource: &failSource{SegmentSource: NewMemSource(tb), failAt: map[int]error{5: errLow}},
		panicAt:       9,
	}
	db = NewShardedStoreFromShards(SplitSourceAt(both, []int{4, 8}))
	db.SetParallelism(4)
	_, err = db.ExecuteSQL("SELECT COUNT(*) AS n FROM metrics")
	if err == nil || !errors.Is(err, errLow) {
		t.Fatalf("got %v, want lower shard's error to outrank the panic", err)
	}
}

// TestShardedPerShardCounters checks the per-shard observability: segment
// ownership, scan/skip/load totals per shard, and their consistency with the
// store-wide counters.
func TestShardedPerShardCounters(t *testing.T) {
	tb := shardMetrics(50_000)
	db := NewShardedStore(3, tb)
	db.SetParallelism(4)
	if db.NumShards("metrics") != 3 || db.NumShards("nope") != 0 {
		t.Fatalf("NumShards = %d", db.NumShards("metrics"))
	}
	if db.NumSegments("metrics") != 13 {
		t.Fatalf("NumSegments = %d", db.NumSegments("metrics"))
	}
	if db.ShardStats("nope") != nil {
		t.Fatal("unknown table should report nil shard stats")
	}
	if _, err := db.ExecuteSQL("SELECT COUNT(*) AS n FROM metrics"); err != nil {
		t.Fatal(err)
	}
	stats := db.ShardStats("metrics")
	if len(stats) != 3 {
		t.Fatalf("%d shard stats", len(stats))
	}
	var segs, rows, loads int64
	for _, sc := range stats {
		segs += int64(sc.Segments)
		rows += sc.RowsScanned
		loads += sc.SegmentLoads
	}
	if segs != 13 {
		t.Fatalf("shard segments sum to %d, want 13", segs)
	}
	if rows != 50_000 {
		t.Fatalf("shard rows scanned sum to %d, want 50000", rows)
	}
	if loads != 13 {
		t.Fatalf("full scan loaded %d segments, want 13", loads)
	}
	if c := db.Counters(); c.RowsScanned != rows {
		t.Fatalf("store counters %d vs shard sum %d", c.RowsScanned, rows)
	}
}

// TestShardedSkipKeepsSegmentsUnloaded proves pruning composes with
// sharding: a clustered equality touches only the early shards, the tail
// shard's zone maps prove every segment empty, and its loads stay at zero.
func TestShardedSkipKeepsSegmentsUnloaded(t *testing.T) {
	tb := shardMetrics(50_000)
	db := NewShardedStore(3, tb)
	db.SetParallelism(4)
	if _, err := db.ExecuteSQL("SELECT COUNT(*) AS n FROM metrics WHERE region = 'north'"); err != nil {
		t.Fatal(err)
	}
	stats := db.ShardStats("metrics")
	var loads, skipped int64
	for _, sc := range stats {
		loads += sc.SegmentLoads
		skipped += sc.SegmentsSkipped
	}
	if loads >= 13 {
		t.Fatalf("clustered equality loaded all %d segments", loads)
	}
	if skipped == 0 {
		t.Fatal("no segments skipped")
	}
	if tail := stats[2]; tail.SegmentLoads != 0 || tail.RowsScanned != 0 {
		t.Fatalf("tail shard should be fully pruned, got %+v", tail)
	}
}

// prepareSQL is Prepare from SQL text, for tests.
func prepareSQL(db DB, sql string) (*Plan, error) {
	q, err := minisql.Parse(sql)
	if err != nil {
		return nil, err
	}
	return db.Prepare(q)
}
