package engine

import (
	"context"
	"math/bits"
	"sync"
	"sync/atomic"

	"repro/internal/dataset"
	"repro/internal/minisql"
	"repro/internal/trace"
)

// segmentSize is the internal alias of SegmentSize (see segsource.go).
const segmentSize = SegmentSize

// ColumnStore is a columnar vectorized executor over internal/dataset's
// native layout (dictionary codes plus raw measure slices). Each table is
// partitioned into fixed-size segments with precomputed zone maps — min/max
// per numeric column and a dictionary-code presence bitset per categorical
// column. Predicates are compiled (at Prepare time) into vecFilters that
// evaluate a whole segment into a selection bitmap, skipping segments the
// zone maps prove empty, and group-by aggregation over categorical keys runs
// through flat per-group accumulator arrays indexed by dictionary code
// instead of a hash map.
//
// ExecuteBatch mirrors the bitmap store's conjunct factoring: plans sharing
// top-level WHERE conjuncts (the repeated constraints of a ZQL request
// batch) have each shared conjunct's per-segment selection computed once per
// scan worker and intersected per plan.
type ColumnStore struct {
	parLimit
	planToggle
	tables map[string]*dataset.Table
	cols   map[string]*colTable
	stats  counters
	prov   skipProv
}

// colTable is the segmented view of one base table. src is the segment
// source the data materializes through: a no-op memSource for in-memory
// tables, a lazy reader (zpack) for disk-resident ones. Zone maps and
// integer dictionaries always come from the source's metadata, so the scan
// can prove segments empty without ever loading them. [segLo, segHi) is the
// global segment range the store scans: the whole table normally, a shard's
// owned sub-range when the source is a SegmentRanged view — row indices,
// zone maps, and dictionary codes stay globally indexed either way.
type colTable struct {
	t            *dataset.Table
	src          SegmentSource
	segLo, segHi int
	zones        map[string]*ZoneData // by column name
	intCodes     map[string]*IntDict  // low-cardinality int columns, by name
	loaded       []atomic.Bool        // owned segments a scan has materialized
	loads        atomic.Int64         // distinct owned segments materialized
}

// markLoaded counts the first materialization of an owned segment.
func (ct *colTable) markLoaded(seg int) {
	if i := seg - ct.segLo; i >= 0 && i < len(ct.loaded) && !ct.loaded[i].Swap(true) {
		ct.loads.Add(1)
	}
}

// newColTable builds the segmented view over a source's metadata.
func newColTable(src SegmentSource) *colTable {
	t := src.Table()
	lo, hi := 0, src.NumSegments()
	if r, ok := src.(SegmentRanged); ok {
		lo, hi = r.SegRange()
	}
	ct := &colTable{
		t:        t,
		src:      src,
		segLo:    lo,
		segHi:    hi,
		zones:    make(map[string]*ZoneData, t.NumCols()),
		intCodes: make(map[string]*IntDict),
		loaded:   make([]atomic.Bool, hi-lo),
	}
	for _, c := range t.Columns() {
		ct.zones[c.Field.Name] = src.Zone(c.Field.Name)
		if d := src.IntDict(c.Field.Name); d != nil {
			ct.intCodes[c.Field.Name] = d
		}
	}
	return ct
}

// segBounds returns the row range [lo, hi) of segment s.
func (ct *colTable) segBounds(s int) (lo, hi int) {
	lo = s * segmentSize
	hi = lo + segmentSize
	if n := ct.t.NumRows(); hi > n {
		hi = n
	}
	return lo, hi
}

// NewColumnStore builds a column store over the given in-memory base tables,
// segmenting each and precomputing its zone maps.
func NewColumnStore(tables ...*dataset.Table) *ColumnStore {
	srcs := make([]SegmentSource, len(tables))
	for i, t := range tables {
		srcs[i] = NewMemSource(t)
	}
	return NewColumnStoreFromSource(srcs...)
}

// NewColumnStoreFromSource builds a column store over segment sources whose
// column data may materialize lazily: zone maps come from the sources'
// metadata, and a segment's data is loaded only when a scan first visits it —
// a segment every plan's zone maps prove empty is never loaded at all.
func NewColumnStoreFromSource(sources ...SegmentSource) *ColumnStore {
	s := &ColumnStore{
		tables: make(map[string]*dataset.Table, len(sources)),
		cols:   make(map[string]*colTable, len(sources)),
	}
	for _, src := range sources {
		t := src.Table()
		s.tables[t.Name] = t
		s.cols[t.Name] = newColTable(src)
	}
	return s
}

// NumSegments returns the segment count the store scans for the named table
// (its owned range when the source is sharded), or 0 (the Segmented
// interface).
func (s *ColumnStore) NumSegments(table string) int {
	if ct := s.cols[table]; ct != nil {
		return ct.segHi - ct.segLo
	}
	return 0
}

// Name identifies the back-end.
func (s *ColumnStore) Name() string { return "columnstore" }

// Table returns the named base table, or nil.
func (s *ColumnStore) Table(name string) *dataset.Table { return s.tables[name] }

// Counters returns cumulative execution statistics.
func (s *ColumnStore) Counters() Counters { return s.stats.snapshot() }

// SkipProvenance returns cumulative skip counts attributed to the column and
// metadata kind (zone map / dictionary bitset) that proved each skipped
// segment empty.
func (s *ColumnStore) SkipProvenance() map[SkipAttr]int64 { return s.prov.snapshot() }

// SegmentLoads returns how many distinct segments of the named table scans
// have materialized — for zpack-backed sources, segments actually read from
// disk. Zone-map-skipped segments never load, so this lags SegmentsScanned's
// per-scan accounting.
func (s *ColumnStore) SegmentLoads(table string) int64 {
	if ct := s.cols[table]; ct != nil {
		return ct.loads.Load()
	}
	return 0
}

// vecPlan is the column store's per-plan compilation: the WHERE clause split
// into top-level conjuncts, each lowered to a vectorized filter and keyed by
// its canonical SQL so a batch can share evaluations across plans.
type vecPlan struct {
	ct    *colTable
	conjs []vecConjunct // empty means "all rows"
}

type vecConjunct struct {
	key  string // canonical SQL of the conjunct, the sharing key
	f    vecFilter
	attr SkipAttr     // which column/metadata a skip by this conjunct credits
	pred rowPredicate // row-at-a-time form, for masked evaluation
}

// skipCause reports whether the zone maps prove segment seg holds no row
// matching ALL conjuncts, and if so which conjunct proved it (the first
// proving conjunct wins, matching evaluation order).
func (v *vecPlan) skipCause(seg int) (SkipAttr, bool) {
	for _, c := range v.conjs {
		if c.f.skip(seg) {
			return c.attr, true
		}
	}
	return SkipAttr{}, false
}

// plannerStats builds the scoring snapshot from the table's build-time
// metadata — zone maps folded to global envelopes, integer dictionaries —
// plus the store's live skip provenance as the tie-breaking signal.
func (s *ColumnStore) plannerStats(ct *colTable) *plannerStats {
	ps := newPlannerStats(ct.t)
	ps.addZones(ct.zones, ct.intCodes)
	return ps.withProv(s.prov.snapshot())
}

// Prepare validates and column-resolves a parsed query, then attaches the
// vectorized compilation (the column store's Plan hook). With planning on,
// the conjuncts compile in the greedy planner's order, so the per-segment
// skip test and the selection-bitmap intersection both run cheapest/most-
// selective-first.
func (s *ColumnStore) Prepare(q *minisql.Query) (*Plan, error) {
	p, err := newPlan(s, s.tables[q.From], q)
	if err != nil {
		return nil, err
	}
	ct := s.cols[q.From]
	if s.planningOn() && len(p.conjs) > 1 {
		if err := p.applyPlanOrder(s.plannerStats(ct)); err != nil {
			return nil, err
		}
		s.stats.notePlanned(p.reordered)
	}
	return s.compileVecPlan(p, ct)
}

// prepareOrdered builds a plan that adopts an externally decided conjunct
// order instead of planning locally — the sharded store plans once over the
// global metadata and hands every shard the same order.
func (s *ColumnStore) prepareOrdered(q *minisql.Query, conjs []minisql.Expr, reordered bool) (*Plan, error) {
	p, err := newPlan(s, s.tables[q.From], q)
	if err != nil {
		return nil, err
	}
	if reordered {
		p.conjs, p.reordered = conjs, true
	}
	return s.compileVecPlan(p, s.cols[q.From])
}

// compileVecPlan lowers the plan's conjuncts — already in execution order —
// to vectorized filters. Each conjunct also keeps its row-at-a-time
// predicate so the scan can evaluate later conjuncts only on the rows still
// selected (masked evaluation) when the survivor set is already sparse.
func (s *ColumnStore) compileVecPlan(p *Plan, ct *colTable) (*Plan, error) {
	vp := &vecPlan{ct: ct}
	for _, c := range p.conjs {
		f, err := compileVec(ct, p.t, c)
		if err != nil {
			return nil, err
		}
		pred, err := compilePredicate(p.t, c)
		if err != nil {
			return nil, err
		}
		vp.conjs = append(vp.conjs, vecConjunct{key: c.SQL(), f: f, attr: conjAttr(c, f), pred: pred})
	}
	p.vec = vp
	return p, nil
}

// Execute runs a parsed query (Prepare + Plan.Execute, which routes through
// ExecuteBatch — the column store has no separate single-plan path).
func (s *ColumnStore) Execute(q *minisql.Query) (*Result, error) {
	p, err := s.Prepare(q)
	if err != nil {
		return nil, err
	}
	return p.Execute()
}

// ExecuteSQL parses and runs SQL text.
func (s *ColumnStore) ExecuteSQL(sql string) (*Result, error) {
	q, err := minisql.Parse(sql)
	if err != nil {
		return nil, err
	}
	return s.Execute(q)
}

// ExecuteBatch runs the plans as one request. Plans are grouped by base
// table and dealt round-robin across at most Parallelism scan workers; each
// worker walks the table's segments once for all of its plans, evaluating
// every distinct predicate conjunct at most once per segment and skipping
// (plan, segment) pairs the zone maps prove empty.
func (s *ColumnStore) ExecuteBatch(ctx context.Context, plans []*Plan) ([]*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := checkBatch(s, plans); err != nil {
		return nil, err
	}
	results := make([]*Result, len(plans))
	errs := make([]error, len(plans))
	parent := trace.FromContext(ctx)
	var wg sync.WaitGroup
	sem := make(chan struct{}, s.parallelism())
	for _, grp := range groupPlansByTable(plans) {
		ct := s.cols[grp.t.Name]
		tname := grp.t.Name
		shards := shardIndices(grp.idx, s.parallelism())
		s.stats.queries.Add(int64(len(grp.idx)))
		for _, shard := range shards {
			wg.Add(1)
			sem <- struct{}{}
			go func(shard []int) {
				defer wg.Done()
				defer func() { <-sem }()
				sp := parent.StartChild("scan")
				sp.SetStr("backend", "column")
				sp.SetStr("table", tname)
				sp.SetInt("plans", int64(len(shard)))
				defer sp.End()
				sinks := make([]rowSink, len(shard))
				for k, pi := range shard {
					sinks[k] = newColSink(plans[pi])
				}
				if err := s.scanInto(ctx, ct, plans, shard, sinks, sp); err != nil {
					// A failed segment load poisons every plan in the
					// worker's share: each may have consumed partial data
					// from the scan so far.
					for _, pi := range shard {
						errs[pi] = err
					}
					return
				}
				for k, pi := range shard {
					results[pi], errs[pi] = sinks[k].finish()
				}
			}(shard)
		}
	}
	wg.Wait()
	if err := firstError(plans, errs); err != nil {
		return nil, err
	}
	return results, nil
}

// rowSink is the push interface both accumulator kinds implement; matching
// rows go in, a result relation comes out.
type rowSink interface {
	add(i int)
	finish() (*Result, error)
}

// colEqGroup folds every shard plan whose whole predicate is one equality
// on the same categorical column into a single code-routed pass per segment
// (the columnar mirror of the row store's eqDispatch): one dictionary-code
// lookup per row feeds every interested plan's sink, and zone maps still
// skip per plan.
type colEqGroup struct {
	codes   []int32
	route   [][]rowSink    // dictionary code -> sinks that want the row
	filters []*catEqFilter // one per member plan, for per-plan zone tests
	attrs   []SkipAttr     // parallel to filters, for skip attribution
}

// scanPartial runs every plan's scan over the store's segment range on the
// calling goroutine and returns the raw, unfinished sinks, plan-aligned —
// the scatter half of the sharded store's scatter/gather. All plans must
// read one table (the sharded store scatters per table group).
func (s *ColumnStore) scanPartial(ctx context.Context, plans []*Plan) ([]rowSink, error) {
	ct := s.cols[plans[0].t.Name]
	shard := make([]int, len(plans))
	sinks := make([]rowSink, len(plans))
	for k, p := range plans {
		shard[k] = k
		sinks[k] = newColSink(p)
	}
	s.stats.queries.Add(int64(len(plans)))
	// The sharded store put this shard's scan span in ctx (or nothing, when
	// the request is untraced) — scanInto annotates it either way.
	if err := s.scanInto(ctx, ct, plans, shard, sinks, trace.FromContext(ctx)); err != nil {
		return nil, err
	}
	return sinks, nil
}

// scanInto is one worker's shared segment walk over the table's owned range
// [segLo, segHi), feeding every plan in the shard's sink. Single-equality
// plans over one column share a code-routed pass; every other distinct
// conjunct (keyed by canonical SQL) is evaluated at most once per segment
// and intersected per plan. A segment's data is materialized through the
// table's segment source the first time any plan actually scans it —
// zone-map-skipped segments are never loaded. The first failed segment load
// is returned; sinks may then hold partial data and must be discarded. The
// context is checked once per segment: a cancelled scan stops at the next
// segment boundary and returns ctx.Err().
func (s *ColumnStore) scanInto(ctx context.Context, ct *colTable, plans []*Plan, shard []int, sinks []rowSink, sp *trace.Span) error {
	// Partition the shard: dispatchable single-equality plans fold into
	// per-column groups, everything else goes through the shared-conjunct
	// slots.
	var groups []*colEqGroup
	groupOf := make(map[*ZoneData]*colEqGroup)
	var slotKs []int
	for k, pi := range shard {
		vp := plans[pi].vec
		if len(vp.conjs) == 1 {
			if f, ok := vp.conjs[0].f.(*catEqFilter); ok && !f.neq {
				g := groupOf[f.zone]
				if g == nil {
					g = &colEqGroup{codes: f.codes}
					groupOf[f.zone] = g
					groups = append(groups, g)
				}
				for int(f.code) >= len(g.route) {
					g.route = append(g.route, nil)
				}
				g.route[f.code] = append(g.route[f.code], sinks[k])
				g.filters = append(g.filters, f)
				g.attrs = append(g.attrs, vp.conjs[0].attr)
				continue
			}
		}
		slotKs = append(slotKs, k)
	}
	// Assign each distinct remaining conjunct one slot; plans refer to
	// slots so a shared conjunct is evaluated once per segment.
	slotOf := make(map[string]int)
	var filters []vecFilter
	var slotPreds []rowPredicate
	planSlots := make(map[int][]int, len(slotKs))
	for _, k := range slotKs {
		vp := plans[shard[k]].vec
		for _, c := range vp.conjs {
			slot, ok := slotOf[c.key]
			if !ok {
				slot = len(filters)
				slotOf[c.key] = slot
				filters = append(filters, c.f)
				slotPreds = append(slotPreds, c.pred)
			}
			planSlots[k] = append(planSlots[k], slot)
		}
	}
	slotBits := make([][]uint64, len(filters))
	for i := range slotBits {
		slotBits[i] = newSegBits()
	}
	slotDone := make([]bool, len(filters))
	acc := newSegBits()
	var scanned, skipped, segsScanned int64
	prov := make(map[SkipAttr]int64)
	var loadErr error
	segSpans := 0
	for seg := ct.segLo; seg < ct.segHi && loadErr == nil; seg++ {
		// The segment boundary is the scan's cancellation point: a deadline
		// or client disconnect stops the walk here, never mid-segment.
		if err := ctx.Err(); err != nil {
			loadErr = err
			break
		}
		lo, hi := ct.segBounds(seg)
		for i := range slotDone {
			slotDone[i] = false
		}
		// visit materializes the segment on first touch; filters and sinks
		// read the table's raw column slices, so the load must land before
		// either runs. A segment every plan skips is never visited.
		visited := false
		visit := func() bool {
			if visited {
				return true
			}
			if err := ct.src.Load(seg); err != nil {
				loadErr = err
				return false
			}
			ct.markLoaded(seg)
			visited = true
			segsScanned++
			scanned += int64(hi - lo)
			// Sampled per-segment spans: the first few scanned segments get
			// a marker child each, enough to see which part of the table a
			// slow scan actually touched without a span per segment.
			if sp != nil && segSpans < segSpanSample {
				segSpans++
				c := sp.StartChild("segment")
				c.SetInt("seg", int64(seg))
				c.SetInt("rows", int64(hi-lo))
				c.End()
			}
			return true
		}
		for _, g := range groups {
			live := false
			for gi, f := range g.filters {
				if f.skip(seg) {
					skipped++
					prov[g.attrs[gi]]++
				} else {
					live = true
				}
			}
			if !live {
				continue
			}
			if !visit() {
				break
			}
			codes, route := g.codes, g.route
			for i := lo; i < hi; i++ {
				if c := codes[i]; int(c) < len(route) {
					for _, sink := range route[c] {
						sink.add(i)
					}
				}
			}
		}
		for _, k := range slotKs {
			if loadErr != nil {
				break
			}
			vp := plans[shard[k]].vec
			if attr, ok := vp.skipCause(seg); ok {
				skipped++
				prov[attr]++
				continue
			}
			if !visit() {
				break
			}
			sink := sinks[k]
			slots := planSlots[k]
			switch len(slots) {
			case 0:
				for i := lo; i < hi; i++ {
					sink.add(i)
				}
				continue
			case 1:
				drainBits(evalSlot(filters, slotBits, slotDone, slots[0], lo, hi), lo, hi, sink)
				continue
			}
			copy(acc, evalSlot(filters, slotBits, slotDone, slots[0], lo, hi))
			for _, slot := range slots[1:] {
				live := popCount(acc, hi-lo)
				if live == 0 {
					break // intersection already empty; later conjuncts can't revive it
				}
				// Masked evaluation: when the survivor set is sparse and the
				// conjunct's bitmap hasn't been shared yet, testing only the
				// surviving rows with the row predicate beats a full
				// vectorized pass over the segment. Result-identical — the
				// differential fuzzer pins the predicate/filter equivalence.
				if !slotDone[slot] && live <= (hi-lo)/maskedEvalDiv {
					filterBits(acc, lo, hi, slotPreds[slot])
					continue
				}
				bits := evalSlot(filters, slotBits, slotDone, slot, lo, hi)
				for w := range acc {
					acc[w] &= bits[w]
				}
			}
			drainBits(acc, lo, hi, sink)
		}
	}
	s.stats.rowsScanned.Add(scanned)
	s.stats.segmentsScanned.Add(segsScanned)
	s.stats.segmentsSkipped.Add(skipped)
	s.prov.addAll(prov)
	if sp != nil {
		sp.SetInt("rows", scanned)
		sp.SetInt("segments", segsScanned)
		sp.SetInt("segmentsSkipped", skipped)
	}
	return loadErr
}

// segSpanSample is how many scanned segments per worker get a sampled
// per-segment child span.
const segSpanSample = 8

// evalSlot returns the selection bitmap of one conjunct for the current
// segment, evaluating it on first use.
func evalSlot(filters []vecFilter, slotBits [][]uint64, slotDone []bool, slot, lo, hi int) []uint64 {
	if !slotDone[slot] {
		clearBits(slotBits[slot])
		filters[slot].eval(lo, hi, slotBits[slot])
		slotDone[slot] = true
	}
	return slotBits[slot]
}

// maskedEvalDiv sets the masked-evaluation threshold: a later conjunct is
// tested row-at-a-time on the surviving rows (instead of a full vectorized
// pass) when survivors are at most 1/maskedEvalDiv of the segment.
const maskedEvalDiv = 16

// popCount returns the number of selected rows in the first n bits.
func popCount(sel []uint64, n int) int {
	words := (n + 63) / 64
	total := 0
	for w := 0; w < words; w++ {
		total += bits.OnesCount64(sel[w])
	}
	return total
}

// filterBits clears every selected bit whose row fails pred — the masked
// (row-at-a-time) evaluation of one conjunct over a sparse survivor set.
func filterBits(sel []uint64, lo, hi int, pred rowPredicate) {
	words := (hi - lo + 63) / 64
	for w := 0; w < words; w++ {
		word := sel[w]
		base := lo + w<<6
		for word != 0 {
			b := bits.TrailingZeros64(word)
			if !pred(base + b) {
				sel[w] &^= 1 << uint(b)
			}
			word &= word - 1
		}
	}
}

// drainBits feeds the selected rows of a segment into the sink in ascending
// row order — the order every back-end produces, which is what keeps group
// first-seen order and float accumulation identical across stores.
func drainBits(sel []uint64, lo, hi int, sink rowSink) {
	words := (hi - lo + 63) / 64
	for w := 0; w < words; w++ {
		word := sel[w]
		base := lo + w<<6
		for word != 0 {
			sink.add(base + bits.TrailingZeros64(word))
			word &= word - 1
		}
	}
}

// maxFlatSlots bounds the combined key space (product of the group-key
// cardinalities) the flat accumulator path will allocate; beyond it the
// generic hash sink takes over.
const maxFlatSlots = 1 << 16

// newColSink picks the accumulator for a plan: the flat dictionary-code
// sink when every GROUP BY key is an unbinned categorical or dictionary-
// encoded integer column and the combined key space is small, the generic
// hash sink otherwise.
func newColSink(p *Plan) rowSink {
	if !p.hasAgg && len(p.q.GroupBy) == 0 {
		return p.newSink() // projection: nothing to accumulate
	}
	ct := p.vec.ct
	slots := 1
	codes := make([][]int32, len(p.keyCol))
	card := make([]int, len(p.keyCol))
	for k, c := range p.keyCol {
		if p.q.GroupBy[k].Bin != 0 {
			return p.newSink()
		}
		switch c.Field.Kind {
		case dataset.KindString:
			codes[k] = c.Codes()
			card[k] = c.Cardinality()
		case dataset.KindInt:
			ic := ct.intCodes[c.Field.Name]
			if ic == nil {
				return p.newSink()
			}
			codes[k] = ic.Codes
			card[k] = len(ic.Vals)
		default:
			return p.newSink()
		}
		if card[k] == 0 {
			card[k] = 1
		}
		if slots > maxFlatSlots/card[k] {
			return p.newSink()
		}
		slots *= card[k]
	}
	fs := &flatSink{
		p:     p,
		slots: make([]int32, slots),
		codes: codes,
		card:  card,
	}
	for i := range fs.slots {
		fs.slots[i] = -1
	}
	for _, c := range p.aggCol {
		fs.aggCol = append(fs.aggCol, c)
		if c == nil { // COUNT(*)
			fs.aggF = append(fs.aggF, nil)
			fs.aggI = append(fs.aggI, nil)
			continue
		}
		fs.aggF = append(fs.aggF, floatsOf(c))
		fs.aggI = append(fs.aggI, intsOf(c))
	}
	return fs
}

// flatSink is the vectorized aggregation accumulator: the combined
// dictionary code of a row's group keys indexes a flat slot array instead of
// hashing a key buffer. Groups are still emitted in first-seen order, so
// results stay byte-identical to the hash sink's.
type flatSink struct {
	p      *Plan
	slots  []int32 // combined key code -> index into groups, -1 = unseen
	groups []*group
	codes  [][]int32
	card   []int
	aggCol []*dataset.Column
	aggF   [][]float64
	aggI   [][]int64
}

func (s *flatSink) add(i int) {
	slot := 0
	for k, codes := range s.codes {
		slot = slot*s.card[k] + int(codes[i])
	}
	gi := s.slots[slot]
	if gi < 0 {
		p := s.p
		g := &group{
			keyVals:  make([]dataset.Value, len(p.keyCol)),
			aggs:     make([]aggState, len(p.aggSel)),
			firstRow: i,
		}
		for k, c := range p.keyCol {
			g.keyVals[k] = c.Value(i)
		}
		gi = int32(len(s.groups))
		s.groups = append(s.groups, g)
		s.slots[slot] = gi
	}
	g := s.groups[gi]
	for a := range g.aggs {
		switch {
		case s.aggCol[a] == nil:
			g.aggs[a].add(0) // COUNT(*): only count matters
		case s.aggF[a] != nil:
			g.aggs[a].add(s.aggF[a][i])
		case s.aggI[a] != nil:
			g.aggs[a].add(float64(s.aggI[a][i]))
		default:
			g.aggs[a].add(s.aggCol[a].Float(i))
		}
	}
}

func (s *flatSink) finish() (*Result, error) { return s.p.finishGroups(s.groups) }

// slotAt recomputes a row's combined key code. Used at gather time, when the
// row's segment is guaranteed loaded (the shard that saw the row loaded it,
// and the scatter barrier orders that load before any merge).
func (s *flatSink) slotAt(i int) int {
	slot := 0
	for k, codes := range s.codes {
		slot = slot*s.card[k] + int(codes[i])
	}
	return slot
}

// mergeFrom folds a later shard's partial accumulation into s. Shard sinks
// share the plan's dictionary code slices (globally indexed), so a group's
// slot is the same in every shard; new groups append in o's order, which is
// global first-seen order because s covers strictly earlier rows.
func (s *flatSink) mergeFrom(o *flatSink) {
	for _, g := range o.groups {
		slot := o.slotAt(g.firstRow)
		gi := s.slots[slot]
		if gi < 0 {
			s.slots[slot] = int32(len(s.groups))
			s.groups = append(s.groups, g)
			continue
		}
		s.groups[gi].merge(g)
	}
}
