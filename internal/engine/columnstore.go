package engine

import (
	"math"
	"math/bits"
	"sync"

	"repro/internal/dataset"
	"repro/internal/minisql"
)

// segmentSize is the number of rows per column-store segment: the unit of
// zone-map granularity and of vectorized predicate evaluation. 4096 rows
// keeps a segment's selection bitmap at 64 words and a segment's worth of
// one float64 column inside L1/L2.
const segmentSize = 4096

// ColumnStore is a columnar vectorized executor over internal/dataset's
// native layout (dictionary codes plus raw measure slices). Each table is
// partitioned into fixed-size segments with precomputed zone maps — min/max
// per numeric column and a dictionary-code presence bitset per categorical
// column. Predicates are compiled (at Prepare time) into vecFilters that
// evaluate a whole segment into a selection bitmap, skipping segments the
// zone maps prove empty, and group-by aggregation over categorical keys runs
// through flat per-group accumulator arrays indexed by dictionary code
// instead of a hash map.
//
// ExecuteBatch mirrors the bitmap store's conjunct factoring: plans sharing
// top-level WHERE conjuncts (the repeated constraints of a ZQL request
// batch) have each shared conjunct's per-segment selection computed once per
// scan worker and intersected per plan.
type ColumnStore struct {
	parLimit
	tables map[string]*dataset.Table
	cols   map[string]*colTable
	stats  counters
}

// colTable is the segmented view of one base table.
type colTable struct {
	t        *dataset.Table
	nseg     int
	zones    map[string]*colZone    // by column name
	intCodes map[string]*intCodeCol // low-cardinality int columns, by name
}

// maxIntCodeCardinality bounds the distinct-value count an integer column
// may have and still get a build-time dictionary encoding (the same 4096 the
// bitmap store uses for its integer value indexes). Encoded columns let the
// flat group-by accumulator treat integer keys like categorical ones.
const maxIntCodeCardinality = 4096

// intCodeCol is a build-time dictionary encoding of an integer column:
// codes[i] indexes into the sorted distinct values vals.
type intCodeCol struct {
	codes []int32
	vals  []int64
}

// colZone holds one column's per-segment zone maps. Numeric columns carry
// min/max plus a NaN-presence flag (NaN compares false with everything, so
// it never lands in min/max — but it still matches != predicates);
// categorical columns carry a presence bitset over dictionary codes (words
// words per segment).
type colZone struct {
	min, max []float64
	nan      []bool
	words    int
	present  []uint64 // nseg * words
}

func (z *colZone) hasCode(s int, code int32) bool {
	return z.present[s*z.words+int(code>>6)]&(1<<(uint(code)&63)) != 0
}

// onlyCode reports whether code is the only dictionary code present in
// segment s.
func (z *colZone) onlyCode(s int, code int32) bool {
	base := s * z.words
	for w := 0; w < z.words; w++ {
		p := z.present[base+w]
		if w == int(code>>6) {
			p &^= 1 << (uint(code) & 63)
		}
		if p != 0 {
			return false
		}
	}
	return true
}

// anyCode reports whether any code of the want bitset occurs in segment s.
func (z *colZone) anyCode(s int, want []uint64) bool {
	base := s * z.words
	for w := 0; w < z.words; w++ {
		if z.present[base+w]&want[w] != 0 {
			return true
		}
	}
	return false
}

// newColTable partitions t into segments and builds every column's zone map.
func newColTable(t *dataset.Table) *colTable {
	n := t.NumRows()
	nseg := (n + segmentSize - 1) / segmentSize
	ct := &colTable{
		t:        t,
		nseg:     nseg,
		zones:    make(map[string]*colZone, t.NumCols()),
		intCodes: make(map[string]*intCodeCol),
	}
	for _, c := range t.Columns() {
		if c.Field.Kind == dataset.KindInt {
			if ic := encodeIntColumn(c); ic != nil {
				ct.intCodes[c.Field.Name] = ic
			}
		}
		z := &colZone{}
		if c.Field.Kind == dataset.KindString {
			z.words = (c.Cardinality() + 63) / 64
			if z.words == 0 {
				z.words = 1
			}
			z.present = make([]uint64, nseg*z.words)
			for i, code := range c.Codes() {
				z.present[(i/segmentSize)*z.words+int(code>>6)] |= 1 << (uint(code) & 63)
			}
		} else {
			z.min = make([]float64, nseg)
			z.max = make([]float64, nseg)
			z.nan = make([]bool, nseg)
			for s := 0; s < nseg; s++ {
				z.min[s] = math.Inf(1)
				z.max[s] = math.Inf(-1)
			}
			update := func(i int, v float64) {
				s := i / segmentSize
				if v != v {
					z.nan[s] = true
					return
				}
				if v < z.min[s] {
					z.min[s] = v
				}
				if v > z.max[s] {
					z.max[s] = v
				}
			}
			if c.Field.Kind == dataset.KindInt {
				for i, v := range c.Ints() {
					update(i, float64(v))
				}
			} else {
				for i, v := range c.Floats() {
					update(i, v)
				}
			}
		}
		ct.zones[c.Field.Name] = z
	}
	return ct
}

// encodeIntColumn builds the dictionary encoding of an integer column, or
// nil when the column has too many distinct values to be worth it.
func encodeIntColumn(c *dataset.Column) *intCodeCol {
	distinct := c.DistinctSorted()
	if len(distinct) > maxIntCodeCardinality {
		return nil
	}
	ic := &intCodeCol{vals: make([]int64, len(distinct))}
	codeOf := make(map[int64]int32, len(distinct))
	for i, v := range distinct {
		ic.vals[i] = v.I
		codeOf[v.I] = int32(i)
	}
	ints := c.Ints()
	ic.codes = make([]int32, len(ints))
	for i, v := range ints {
		ic.codes[i] = codeOf[v]
	}
	return ic
}

// segBounds returns the row range [lo, hi) of segment s.
func (ct *colTable) segBounds(s int) (lo, hi int) {
	lo = s * segmentSize
	hi = lo + segmentSize
	if n := ct.t.NumRows(); hi > n {
		hi = n
	}
	return lo, hi
}

// NewColumnStore builds a column store over the given base tables,
// segmenting each and precomputing its zone maps.
func NewColumnStore(tables ...*dataset.Table) *ColumnStore {
	s := &ColumnStore{
		tables: make(map[string]*dataset.Table, len(tables)),
		cols:   make(map[string]*colTable, len(tables)),
	}
	for _, t := range tables {
		s.tables[t.Name] = t
		s.cols[t.Name] = newColTable(t)
	}
	return s
}

// Name identifies the back-end.
func (s *ColumnStore) Name() string { return "columnstore" }

// Table returns the named base table, or nil.
func (s *ColumnStore) Table(name string) *dataset.Table { return s.tables[name] }

// Counters returns cumulative execution statistics.
func (s *ColumnStore) Counters() Counters { return s.stats.snapshot() }

// vecPlan is the column store's per-plan compilation: the WHERE clause split
// into top-level conjuncts, each lowered to a vectorized filter and keyed by
// its canonical SQL so a batch can share evaluations across plans.
type vecPlan struct {
	ct    *colTable
	conjs []vecConjunct // empty means "all rows"
}

type vecConjunct struct {
	key string // canonical SQL of the conjunct, the sharing key
	f   vecFilter
}

// skip reports whether the zone maps prove segment seg holds no row
// matching ALL conjuncts.
func (v *vecPlan) skip(seg int) bool {
	for _, c := range v.conjs {
		if c.f.skip(seg) {
			return true
		}
	}
	return false
}

// Prepare validates and column-resolves a parsed query, then attaches the
// vectorized compilation (the column store's Plan hook).
func (s *ColumnStore) Prepare(q *minisql.Query) (*Plan, error) {
	p, err := newPlan(s, s.tables[q.From], q)
	if err != nil {
		return nil, err
	}
	ct := s.cols[q.From]
	vp := &vecPlan{ct: ct}
	if q.Where != nil {
		conjuncts := []minisql.Expr{q.Where}
		if and, isAnd := q.Where.(*minisql.And); isAnd {
			conjuncts = and.Args
		}
		for _, c := range conjuncts {
			f, err := compileVec(ct, p.t, c)
			if err != nil {
				return nil, err
			}
			vp.conjs = append(vp.conjs, vecConjunct{key: c.SQL(), f: f})
		}
	}
	p.vec = vp
	return p, nil
}

// Execute runs a parsed query (Prepare + Plan.Execute, which routes through
// ExecuteBatch — the column store has no separate single-plan path).
func (s *ColumnStore) Execute(q *minisql.Query) (*Result, error) {
	p, err := s.Prepare(q)
	if err != nil {
		return nil, err
	}
	return p.Execute()
}

// ExecuteSQL parses and runs SQL text.
func (s *ColumnStore) ExecuteSQL(sql string) (*Result, error) {
	q, err := minisql.Parse(sql)
	if err != nil {
		return nil, err
	}
	return s.Execute(q)
}

// ExecuteBatch runs the plans as one request. Plans are grouped by base
// table and dealt round-robin across at most Parallelism scan workers; each
// worker walks the table's segments once for all of its plans, evaluating
// every distinct predicate conjunct at most once per segment and skipping
// (plan, segment) pairs the zone maps prove empty.
func (s *ColumnStore) ExecuteBatch(plans []*Plan) ([]*Result, error) {
	if err := checkBatch(s, plans); err != nil {
		return nil, err
	}
	results := make([]*Result, len(plans))
	errs := make([]error, len(plans))
	var wg sync.WaitGroup
	sem := make(chan struct{}, s.parallelism())
	for _, grp := range groupPlansByTable(plans) {
		ct := s.cols[grp.t.Name]
		shards := shardIndices(grp.idx, s.parallelism())
		s.stats.queries.Add(int64(len(grp.idx)))
		for _, shard := range shards {
			wg.Add(1)
			sem <- struct{}{}
			go func(shard []int) {
				defer wg.Done()
				defer func() { <-sem }()
				s.scanSegments(ct, plans, shard, results, errs)
			}(shard)
		}
	}
	wg.Wait()
	if err := firstError(plans, errs); err != nil {
		return nil, err
	}
	return results, nil
}

// rowSink is the push interface both accumulator kinds implement; matching
// rows go in, a result relation comes out.
type rowSink interface {
	add(i int)
	finish() (*Result, error)
}

// colEqGroup folds every shard plan whose whole predicate is one equality
// on the same categorical column into a single code-routed pass per segment
// (the columnar mirror of the row store's eqDispatch): one dictionary-code
// lookup per row feeds every interested plan's sink, and zone maps still
// skip per plan.
type colEqGroup struct {
	codes   []int32
	route   [][]rowSink    // dictionary code -> sinks that want the row
	filters []*catEqFilter // one per member plan, for per-plan zone tests
}

// scanSegments is one worker's shared segment walk serving every plan in the
// shard. Single-equality plans over one column share a code-routed pass;
// every other distinct conjunct (keyed by canonical SQL) is evaluated at
// most once per segment and intersected per plan.
func (s *ColumnStore) scanSegments(ct *colTable, plans []*Plan, shard []int, results []*Result, errs []error) {
	sinks := make([]rowSink, len(shard))
	for k, pi := range shard {
		sinks[k] = newColSink(plans[pi])
	}
	// Partition the shard: dispatchable single-equality plans fold into
	// per-column groups, everything else goes through the shared-conjunct
	// slots.
	var groups []*colEqGroup
	groupOf := make(map[*colZone]*colEqGroup)
	var slotKs []int
	for k, pi := range shard {
		vp := plans[pi].vec
		if len(vp.conjs) == 1 {
			if f, ok := vp.conjs[0].f.(*catEqFilter); ok && !f.neq {
				g := groupOf[f.zone]
				if g == nil {
					g = &colEqGroup{codes: f.codes}
					groupOf[f.zone] = g
					groups = append(groups, g)
				}
				for int(f.code) >= len(g.route) {
					g.route = append(g.route, nil)
				}
				g.route[f.code] = append(g.route[f.code], sinks[k])
				g.filters = append(g.filters, f)
				continue
			}
		}
		slotKs = append(slotKs, k)
	}
	// Assign each distinct remaining conjunct one slot; plans refer to
	// slots so a shared conjunct is evaluated once per segment.
	slotOf := make(map[string]int)
	var filters []vecFilter
	planSlots := make(map[int][]int, len(slotKs))
	for _, k := range slotKs {
		vp := plans[shard[k]].vec
		for _, c := range vp.conjs {
			slot, ok := slotOf[c.key]
			if !ok {
				slot = len(filters)
				slotOf[c.key] = slot
				filters = append(filters, c.f)
			}
			planSlots[k] = append(planSlots[k], slot)
		}
	}
	slotBits := make([][]uint64, len(filters))
	for i := range slotBits {
		slotBits[i] = newSegBits()
	}
	slotDone := make([]bool, len(filters))
	acc := newSegBits()
	var scanned, skipped int64
	for seg := 0; seg < ct.nseg; seg++ {
		lo, hi := ct.segBounds(seg)
		for i := range slotDone {
			slotDone[i] = false
		}
		visited := false
		for _, g := range groups {
			live := false
			for _, f := range g.filters {
				if f.skip(seg) {
					skipped++
				} else {
					live = true
				}
			}
			if !live {
				continue
			}
			if !visited {
				visited = true
				scanned += int64(hi - lo)
			}
			codes, route := g.codes, g.route
			for i := lo; i < hi; i++ {
				if c := codes[i]; int(c) < len(route) {
					for _, sink := range route[c] {
						sink.add(i)
					}
				}
			}
		}
		for _, k := range slotKs {
			vp := plans[shard[k]].vec
			if vp.skip(seg) {
				skipped++
				continue
			}
			if !visited {
				visited = true
				scanned += int64(hi - lo)
			}
			sink := sinks[k]
			slots := planSlots[k]
			switch len(slots) {
			case 0:
				for i := lo; i < hi; i++ {
					sink.add(i)
				}
				continue
			case 1:
				drainBits(evalSlot(filters, slotBits, slotDone, slots[0], lo, hi), lo, hi, sink)
				continue
			}
			copy(acc, evalSlot(filters, slotBits, slotDone, slots[0], lo, hi))
			for _, slot := range slots[1:] {
				bits := evalSlot(filters, slotBits, slotDone, slot, lo, hi)
				for w := range acc {
					acc[w] &= bits[w]
				}
			}
			drainBits(acc, lo, hi, sink)
		}
	}
	s.stats.rowsScanned.Add(scanned)
	s.stats.segmentsSkipped.Add(skipped)
	for k, pi := range shard {
		results[pi], errs[pi] = sinks[k].finish()
	}
}

// evalSlot returns the selection bitmap of one conjunct for the current
// segment, evaluating it on first use.
func evalSlot(filters []vecFilter, slotBits [][]uint64, slotDone []bool, slot, lo, hi int) []uint64 {
	if !slotDone[slot] {
		clearBits(slotBits[slot])
		filters[slot].eval(lo, hi, slotBits[slot])
		slotDone[slot] = true
	}
	return slotBits[slot]
}

// drainBits feeds the selected rows of a segment into the sink in ascending
// row order — the order every back-end produces, which is what keeps group
// first-seen order and float accumulation identical across stores.
func drainBits(sel []uint64, lo, hi int, sink rowSink) {
	words := (hi - lo + 63) / 64
	for w := 0; w < words; w++ {
		word := sel[w]
		base := lo + w<<6
		for word != 0 {
			sink.add(base + bits.TrailingZeros64(word))
			word &= word - 1
		}
	}
}

// maxFlatSlots bounds the combined key space (product of the group-key
// cardinalities) the flat accumulator path will allocate; beyond it the
// generic hash sink takes over.
const maxFlatSlots = 1 << 16

// newColSink picks the accumulator for a plan: the flat dictionary-code
// sink when every GROUP BY key is an unbinned categorical or dictionary-
// encoded integer column and the combined key space is small, the generic
// hash sink otherwise.
func newColSink(p *Plan) rowSink {
	if !p.hasAgg && len(p.q.GroupBy) == 0 {
		return p.newSink() // projection: nothing to accumulate
	}
	ct := p.vec.ct
	slots := 1
	codes := make([][]int32, len(p.keyCol))
	card := make([]int, len(p.keyCol))
	for k, c := range p.keyCol {
		if p.q.GroupBy[k].Bin != 0 {
			return p.newSink()
		}
		switch c.Field.Kind {
		case dataset.KindString:
			codes[k] = c.Codes()
			card[k] = c.Cardinality()
		case dataset.KindInt:
			ic := ct.intCodes[c.Field.Name]
			if ic == nil {
				return p.newSink()
			}
			codes[k] = ic.codes
			card[k] = len(ic.vals)
		default:
			return p.newSink()
		}
		if card[k] == 0 {
			card[k] = 1
		}
		if slots > maxFlatSlots/card[k] {
			return p.newSink()
		}
		slots *= card[k]
	}
	fs := &flatSink{
		p:     p,
		slots: make([]int32, slots),
		codes: codes,
		card:  card,
	}
	for i := range fs.slots {
		fs.slots[i] = -1
	}
	for _, c := range p.aggCol {
		fs.aggCol = append(fs.aggCol, c)
		if c == nil { // COUNT(*)
			fs.aggF = append(fs.aggF, nil)
			fs.aggI = append(fs.aggI, nil)
			continue
		}
		fs.aggF = append(fs.aggF, floatsOf(c))
		fs.aggI = append(fs.aggI, intsOf(c))
	}
	return fs
}

// flatSink is the vectorized aggregation accumulator: the combined
// dictionary code of a row's group keys indexes a flat slot array instead of
// hashing a key buffer. Groups are still emitted in first-seen order, so
// results stay byte-identical to the hash sink's.
type flatSink struct {
	p      *Plan
	slots  []int32 // combined key code -> index into groups, -1 = unseen
	groups []*group
	codes  [][]int32
	card   []int
	aggCol []*dataset.Column
	aggF   [][]float64
	aggI   [][]int64
}

func (s *flatSink) add(i int) {
	slot := 0
	for k, codes := range s.codes {
		slot = slot*s.card[k] + int(codes[i])
	}
	gi := s.slots[slot]
	if gi < 0 {
		p := s.p
		g := &group{
			keyVals:  make([]dataset.Value, len(p.keyCol)),
			aggs:     make([]aggState, len(p.aggSel)),
			firstRow: i,
		}
		for k, c := range p.keyCol {
			g.keyVals[k] = c.Value(i)
		}
		gi = int32(len(s.groups))
		s.groups = append(s.groups, g)
		s.slots[slot] = gi
	}
	g := s.groups[gi]
	for a := range g.aggs {
		switch {
		case s.aggCol[a] == nil:
			g.aggs[a].add(0) // COUNT(*): only count matters
		case s.aggF[a] != nil:
			g.aggs[a].add(s.aggF[a][i])
		case s.aggI[a] != nil:
			g.aggs[a].add(float64(s.aggI[a][i]))
		default:
			g.aggs[a].add(s.aggCol[a].Float(i))
		}
	}
}

func (s *flatSink) finish() (*Result, error) { return s.p.finishGroups(s.groups) }
