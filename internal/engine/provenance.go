package engine

import (
	"sort"
	"sync"

	"repro/internal/minisql"
)

// Skip provenance: every time a zone map or dictionary bitset proves a
// (plan, segment) pair empty, the column store attributes the skip to the
// predicate conjunct that proved it — which column, and via which metadata
// kind. The per-column skip rates this produces are exactly the signal a
// future compactor needs to pick re-cluster columns (ROADMAP item 2), and
// the serving layer exports them on /stats and /metrics.

// A SkipAttr identifies the metadata that proved a segment empty: the column
// the proving conjunct constrains, and the mechanism.
type SkipAttr struct {
	// Column is the conjunct's column name, or "(multi)" for a composite
	// conjunct constraining several columns.
	Column string
	// Via is "dict" (categorical dictionary-code presence bitset), "zonemap"
	// (numeric min/max zones), "const" (a constant-false predicate), or
	// "expr" (a composite AND/OR proof over several legs).
	Via string
}

// SkipAttributed is implemented by stores that attribute zone-map skips;
// the serving layer surfaces the attribution.
type SkipAttributed interface {
	// SkipProvenance returns cumulative skip counts by attribution.
	SkipProvenance() map[SkipAttr]int64
}

// skipProv is the store-level accumulator. Scan workers batch attributions
// in a worker-local map and fold them in once per scan, so the hot loop
// never takes this mutex per segment.
type skipProv struct {
	mu sync.Mutex
	m  map[SkipAttr]int64
}

func (p *skipProv) addAll(local map[SkipAttr]int64) {
	if len(local) == 0 {
		return
	}
	p.mu.Lock()
	if p.m == nil {
		p.m = make(map[SkipAttr]int64)
	}
	for a, n := range local {
		p.m[a] += n
	}
	p.mu.Unlock()
}

func (p *skipProv) snapshot() map[SkipAttr]int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[SkipAttr]int64, len(p.m))
	for a, n := range p.m {
		out[a] = n
	}
	return out
}

// mergeSkipProv folds src into dst (allocating dst on first use) and returns
// dst — the gather half for sharded stores.
func mergeSkipProv(dst, src map[SkipAttr]int64) map[SkipAttr]int64 {
	if dst == nil {
		dst = make(map[SkipAttr]int64, len(src))
	}
	for a, n := range src {
		dst[a] += n
	}
	return dst
}

// SortedSkipAttrs returns the map's keys ordered by count descending, then
// column/via ascending — the stable order /stats and /metrics emit.
func SortedSkipAttrs(m map[SkipAttr]int64) []SkipAttr {
	attrs := make([]SkipAttr, 0, len(m))
	for a := range m {
		attrs = append(attrs, a)
	}
	sort.Slice(attrs, func(i, j int) bool {
		if m[attrs[i]] != m[attrs[j]] {
			return m[attrs[i]] > m[attrs[j]]
		}
		if attrs[i].Column != attrs[j].Column {
			return attrs[i].Column < attrs[j].Column
		}
		return attrs[i].Via < attrs[j].Via
	})
	return attrs
}

// ColumnSkipTotals folds a skip-provenance map to per-column totals,
// dropping the synthetic "(multi)" and "(none)" buckets that don't name a
// real column — the ranking signal the compactor's key chooser consumes.
func ColumnSkipTotals(m map[SkipAttr]int64) map[string]int64 {
	out := make(map[string]int64, len(m))
	for a, n := range m {
		if a.Column == "(multi)" || a.Column == "(none)" {
			continue
		}
		out[a.Column] += n
	}
	return out
}

// exprColumns collects the distinct column names an expression constrains,
// in first-seen order.
func exprColumns(e minisql.Expr, into []string) []string {
	add := func(col string) []string {
		for _, c := range into {
			if c == col {
				return into
			}
		}
		return append(into, col)
	}
	switch x := e.(type) {
	case *minisql.Compare:
		into = add(x.Col)
	case *minisql.In:
		into = add(x.Col)
	case *minisql.Like:
		into = add(x.Col)
	case *minisql.Between:
		into = add(x.Col)
	case *minisql.And:
		for _, a := range x.Args {
			into = exprColumns(a, into)
		}
	case *minisql.Or:
		for _, a := range x.Args {
			into = exprColumns(a, into)
		}
	case *minisql.Not:
		into = exprColumns(x.Arg, into)
	}
	return into
}

// conjAttr computes the skip attribution of one compiled conjunct: the
// column set comes from the expression, the mechanism from the compiled
// filter's shape.
func conjAttr(e minisql.Expr, f vecFilter) SkipAttr {
	a := SkipAttr{Column: "(multi)"}
	switch cols := exprColumns(e, nil); len(cols) {
	case 0:
		a.Column = "(none)"
	case 1:
		a.Column = cols[0]
	}
	switch f.(type) {
	case *catEqFilter, *catSetFilter:
		a.Via = "dict"
	case *numRangeFilter, *numNeFilter, *numSetFilter:
		a.Via = "zonemap"
	case constFilter, *constFilter:
		// compileVec folds predicates over values the dictionary never saw
		// (and empty IN lists) to a by-value constFilter.
		a.Via = "const"
	case *andFilter, *orFilter:
		a.Via = "expr"
	default:
		// predFilter and notFilter never skip; attribute defensively.
		a.Via = "none"
	}
	return a
}
