package engine

import (
	"context"
	"fmt"
	"math"
	"testing"

	"repro/internal/dataset"
)

// clusteredTable builds a table whose rows arrive ordered by a "day" column
// (the natural load order of telemetry-style data), so day values cluster
// into segments and zone maps can prove most segments empty for selective
// predicates. The row count is deliberately not a multiple of segmentSize to
// exercise the partial last segment.
func clusteredTable(rows int) *dataset.Table {
	t := dataset.NewTable("events", []dataset.Field{
		{Name: "region", Kind: dataset.KindString},
		{Name: "day", Kind: dataset.KindInt},
		{Name: "value", Kind: dataset.KindFloat},
	})
	regions := []string{"us", "eu", "ap"}
	for i := 0; i < rows; i++ {
		t.AppendRow(
			dataset.SV(regions[i%len(regions)]),
			dataset.IV(int64(i/100)), // ascending: clusters into segments
			dataset.FV(float64(i%977)),
		)
	}
	return t
}

// TestColumnStoreMatchesRowStore is the differential oracle for the column
// store: Execute and ExecuteBatch over the generated engine workload must
// return exactly what the row store returns, query by query.
func TestColumnStoreMatchesRowStore(t *testing.T) {
	tb := salesTable()
	sqls := genWorkload(61, 96)
	row := NewRowStore(tb)
	col := NewColumnStore(tb)
	rowPlans := mustPrepareAll(t, row, sqls)
	colPlans := mustPrepareAll(t, col, sqls)

	rowBatch, err := row.ExecuteBatch(context.Background(), rowPlans)
	if err != nil {
		t.Fatal(err)
	}
	colBatch, err := col.ExecuteBatch(context.Background(), colPlans)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sqls {
		assertSameResult(t, "batch "+sqls[i], colBatch[i], rowBatch[i])
		single, err := colPlans[i].Execute()
		if err != nil {
			t.Fatalf("Execute %q: %v", sqls[i], err)
		}
		assertSameResult(t, "single "+sqls[i], single, rowBatch[i])
	}
}

// TestColumnStoreClusteredDifferential repeats the differential on data with
// a partial final segment and real zone-map clustering, where skipping (not
// just vectorization) is on the execution path.
func TestColumnStoreClusteredDifferential(t *testing.T) {
	tb := clusteredTable(3*segmentSize + 1234)
	row := NewRowStore(tb)
	col := NewColumnStore(tb)
	sqls := []string{
		"SELECT region, SUM(value) AS s FROM events WHERE day = 7 GROUP BY region ORDER BY region",
		"SELECT day, COUNT(*) AS n FROM events WHERE day >= 100 AND day < 103 GROUP BY day ORDER BY day",
		"SELECT region, AVG(value) AS a FROM events WHERE region = 'eu' GROUP BY region",
		"SELECT day, value FROM events WHERE value > 970 AND day BETWEEN 120 AND 125 ORDER BY day, value",
		"SELECT COUNT(*) AS n FROM events WHERE region != 'us' AND day IN (1, 50, 131)",
		"SELECT region, MIN(value) AS lo, MAX(value) AS hi FROM events GROUP BY region ORDER BY region",
		"SELECT COUNT(*) AS n FROM events WHERE day = 99999",
	}
	for _, sql := range sqls {
		want, err := row.ExecuteSQL(sql)
		if err != nil {
			t.Fatalf("rowstore %q: %v", sql, err)
		}
		got, err := col.ExecuteSQL(sql)
		if err != nil {
			t.Fatalf("columnstore %q: %v", sql, err)
		}
		assertSameResult(t, sql, got, want)
	}
	if skipped := col.Counters().SegmentsSkipped; skipped == 0 {
		t.Error("clustered workload skipped no segments; zone maps are not engaged")
	}
}

// TestColumnStoreZoneSkipping pins the zone-map accounting: a point
// predicate on a clustered column must visit exactly one segment and report
// every other one as skipped.
func TestColumnStoreZoneSkipping(t *testing.T) {
	const nseg = 4
	tb := clusteredTable(nseg * segmentSize)
	col := NewColumnStore(tb)

	// day = 7 lives entirely inside the first segment (100 rows per day).
	before := col.Counters()
	res, err := col.ExecuteSQL("SELECT COUNT(*) AS n FROM events WHERE day = 7")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].Int(); got != 100 {
		t.Fatalf("COUNT = %d, want 100", got)
	}
	after := col.Counters()
	if got := after.SegmentsSkipped - before.SegmentsSkipped; got != nseg-1 {
		t.Errorf("SegmentsSkipped advanced by %d, want %d", got, nseg-1)
	}
	if got := after.RowsScanned - before.RowsScanned; got != segmentSize {
		t.Errorf("RowsScanned advanced by %d, want one segment (%d)", got, segmentSize)
	}

	// An impossible predicate skips everything and scans nothing.
	before = after
	if _, err := col.ExecuteSQL("SELECT COUNT(*) AS n FROM events WHERE day = -1"); err != nil {
		t.Fatal(err)
	}
	after = col.Counters()
	if got := after.SegmentsSkipped - before.SegmentsSkipped; got != nseg {
		t.Errorf("SegmentsSkipped advanced by %d, want %d", got, nseg)
	}
	if got := after.RowsScanned - before.RowsScanned; got != 0 {
		t.Errorf("RowsScanned advanced by %d, want 0", got)
	}

	// A categorical value absent from the whole table short-circuits at
	// compile time; every segment still counts as skipped.
	before = after
	if _, err := col.ExecuteSQL("SELECT COUNT(*) AS n FROM events WHERE region = 'mars'"); err != nil {
		t.Fatal(err)
	}
	after = col.Counters()
	if got := after.SegmentsSkipped - before.SegmentsSkipped; got != nseg {
		t.Errorf("SegmentsSkipped advanced by %d, want %d", got, nseg)
	}
}

// TestColumnStoreBatchConjunctSharing checks that a single-worker batch of
// plans sharing a selective conjunct scans each needed segment once, not
// once per plan, and that zone skipping still applies per plan.
func TestColumnStoreBatchConjunctSharing(t *testing.T) {
	const nseg = 4
	tb := clusteredTable(nseg * segmentSize)
	col := NewColumnStore(tb)
	col.SetParallelism(1)
	var sqls []string
	for _, region := range []string{"us", "eu", "ap"} {
		sqls = append(sqls, fmt.Sprintf(
			"SELECT day, SUM(value) AS s FROM events WHERE day < 30 AND region = '%s' GROUP BY day ORDER BY day", region))
	}
	plans := mustPrepareAll(t, col, sqls)
	before := col.Counters()
	batch, err := col.ExecuteBatch(context.Background(), plans)
	if err != nil {
		t.Fatal(err)
	}
	after := col.Counters()
	// day < 30 confines all three plans to the first segment; the shared
	// scan visits it once for the whole batch.
	if got := after.RowsScanned - before.RowsScanned; got != segmentSize {
		t.Errorf("batch scanned %d rows, want one shared segment (%d)", got, segmentSize)
	}
	// Each of the 3 plans skipped the other nseg-1 segments.
	if got := after.SegmentsSkipped - before.SegmentsSkipped; got != 3*(nseg-1) {
		t.Errorf("SegmentsSkipped advanced by %d, want %d", got, 3*(nseg-1))
	}
	row := NewRowStore(tb)
	for i, sql := range sqls {
		want, err := row.ExecuteSQL(sql)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResult(t, sql, batch[i], want)
	}
}

// TestColumnStoreFlatSinkFallback drives group-by shapes on both sides of
// the flat-accumulator eligibility line (binned keys, numeric keys, empty
// group) against the row store.
func TestColumnStoreFlatSinkFallback(t *testing.T) {
	tb := salesTable()
	row := NewRowStore(tb)
	col := NewColumnStore(tb)
	for _, sql := range []string{
		// Flat path: categorical keys.
		"SELECT product, location, COUNT(*) AS n FROM sales GROUP BY product, location ORDER BY product, location",
		// Flat path: int key with a build-time dictionary encoding (year has
		// 6 distinct values, far under maxIntCodeCardinality).
		"SELECT year, SUM(sales) AS s FROM sales GROUP BY year ORDER BY year",
		// Generic path: binned key.
		"SELECT BIN(sales, 250) AS b, COUNT(*) AS n FROM sales GROUP BY BIN(sales, 250) ORDER BY b",
		// Generic path: float key.
		"SELECT sales, COUNT(*) AS n FROM sales GROUP BY sales ORDER BY sales LIMIT 9",
		// Aggregate with no GROUP BY over an empty match set.
		"SELECT SUM(profit) AS s, COUNT(*) AS n FROM sales WHERE product = 'absent'",
		// Projection (no aggregation at all).
		"SELECT product, sales FROM sales WHERE location = 'UK' ORDER BY sales DESC LIMIT 7",
	} {
		want, err := row.ExecuteSQL(sql)
		if err != nil {
			t.Fatal(err)
		}
		got, err := col.ExecuteSQL(sql)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResult(t, sql, got, want)
	}
}

// TestColumnStoreNaNDoesNotVoidNeSkipProof is the regression test for the
// zone-map != proof: NaN never lands in a segment's min/max, but a NaN row
// still matches a != predicate, so a segment whose non-NaN values all equal
// the constant must NOT be skipped when it also holds NaNs.
func TestColumnStoreNaNDoesNotVoidNeSkipProof(t *testing.T) {
	tb := dataset.NewTable("m", []dataset.Field{
		{Name: "v", Kind: dataset.KindFloat},
	})
	for i := 0; i < segmentSize; i++ {
		if i%3 == 1 {
			tb.AppendRow(dataset.FV(math.NaN()))
		} else {
			tb.AppendRow(dataset.FV(5))
		}
	}
	row, col := NewRowStore(tb), NewColumnStore(tb)
	for _, sql := range []string{
		"SELECT COUNT(*) AS n FROM m WHERE v != 5",
		"SELECT COUNT(*) AS n FROM m WHERE v = 5",
		"SELECT COUNT(*) AS n FROM m WHERE v > 4",
	} {
		want, err := row.ExecuteSQL(sql)
		if err != nil {
			t.Fatal(err)
		}
		got, err := col.ExecuteSQL(sql)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResult(t, sql, got, want)
	}
}

// TestColumnStoreHighCardinalityIntKey pins the hash-sink fallback for an
// integer group key with too many distinct values to dictionary-encode
// (> MaxIntDictCardinality), which no other fixture reaches.
func TestColumnStoreHighCardinalityIntKey(t *testing.T) {
	tb := dataset.NewTable("ids", []dataset.Field{
		{Name: "id", Kind: dataset.KindInt},
		{Name: "v", Kind: dataset.KindFloat},
	})
	n := MaxIntDictCardinality + 500
	for i := 0; i < n; i++ {
		tb.AppendRow(dataset.IV(int64(i*3)), dataset.FV(float64(i%7)))
	}
	row, col := NewRowStore(tb), NewColumnStore(tb)
	if col.cols["ids"].intCodes["id"] != nil {
		t.Fatalf("id column should exceed the int-code cardinality bound")
	}
	sql := "SELECT id, SUM(v) AS s FROM ids WHERE id >= 600 GROUP BY id ORDER BY id LIMIT 25"
	want, err := row.ExecuteSQL(sql)
	if err != nil {
		t.Fatal(err)
	}
	got, err := col.ExecuteSQL(sql)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, sql, got, want)
}
