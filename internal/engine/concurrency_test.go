package engine

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/minisql"
)

// The concurrent-read contract of all three back-ends: tables are immutable
// after build, indexes/zone maps are immutable after store construction,
// roaring set operations are functional (they return fresh bitmaps, or share
// inputs read-only), plan execution state lives in per-execution sinks (the
// column store's compiled vecFilters hold only immutable state), and the
// cumulative counters are atomics. This test drives every read entry point
// from many goroutines at once so `go test -race` verifies the audit.

// concurrencyQueries is a mix of shapes: indexable equality (bitmap fast
// path), range predicates (int index), residual predicates (post-filter),
// aggregation, grouping, ordering, and full scans.
var concurrencyQueries = []string{
	"SELECT year, SUM(sales) FROM sales WHERE product='chair' AND location='US' GROUP BY year ORDER BY year",
	"SELECT year, AVG(profit) FROM sales WHERE product='table' GROUP BY year ORDER BY year",
	"SELECT product, COUNT(*) FROM sales GROUP BY product ORDER BY product",
	"SELECT year, SUM(sales) FROM sales WHERE year >= 2012 AND profit > 0 GROUP BY year ORDER BY year",
	"SELECT product, location, MAX(sales) FROM sales GROUP BY product, location ORDER BY product, location",
	"SELECT year, sales FROM sales WHERE product='desk' AND location='UK' ORDER BY year LIMIT 10",
	"SELECT COUNT(*) FROM sales WHERE product IN ('chair', 'stapler')",
}

func TestConcurrentReaders(t *testing.T) {
	tb := salesTable()
	for _, db := range allStores(tb) {
		t.Run(db.Name(), func(t *testing.T) {
			// Baseline results computed sequentially before any concurrency.
			want := make([]*Result, len(concurrencyQueries))
			for i, sql := range concurrencyQueries {
				res, err := db.ExecuteSQL(sql)
				if err != nil {
					t.Fatalf("%s: %v", sql, err)
				}
				want[i] = res
			}
			const goroutines = 8
			const rounds = 20
			var wg sync.WaitGroup
			errs := make(chan error, goroutines)
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for r := 0; r < rounds; r++ {
						// Single-plan path.
						qi := (g + r) % len(concurrencyQueries)
						res, err := db.ExecuteSQL(concurrencyQueries[qi])
						if err != nil {
							errs <- err
							return
						}
						if err := sameResult(res, want[qi]); err != nil {
							errs <- fmt.Errorf("query %d: %w", qi, err)
							return
						}
						// Batch path: every query as one shared-scan batch.
						plans := make([]*Plan, len(concurrencyQueries))
						for i, sql := range concurrencyQueries {
							q, err := minisql.Parse(sql)
							if err != nil {
								errs <- err
								return
							}
							if plans[i], err = db.Prepare(q); err != nil {
								errs <- err
								return
							}
						}
						results, err := db.ExecuteBatch(context.Background(), plans)
						if err != nil {
							errs <- err
							return
						}
						for i, res := range results {
							if err := sameResult(res, want[i]); err != nil {
								errs <- fmt.Errorf("batch query %d: %w", i, err)
								return
							}
						}
						// Counter reads race with the writers by design.
						_ = db.Counters()
					}
				}(g)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
		})
	}
}

// sameResult compares two results cell by cell.
func sameResult(got, want *Result) error {
	if len(got.Cols) != len(want.Cols) {
		return fmt.Errorf("cols = %v, want %v", got.Cols, want.Cols)
	}
	if len(got.Rows) != len(want.Rows) {
		return fmt.Errorf("%d rows, want %d", len(got.Rows), len(want.Rows))
	}
	for i := range got.Rows {
		for j := range got.Rows[i] {
			if !got.Rows[i][j].Equal(want.Rows[i][j]) {
				return fmt.Errorf("row %d col %d = %v, want %v", i, j, got.Rows[i][j], want.Rows[i][j])
			}
		}
	}
	return nil
}
