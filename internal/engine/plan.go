package engine

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/minisql"
)

// Plan is a validated, column-resolved logical plan for one query: the table
// is looked up, every select / group / order item is bound against the
// schema, and the WHERE predicate is compiled to a row closure — all exactly
// once, at Prepare time. A Plan is immutable after Prepare and may be
// executed any number of times, alone (Execute) or as part of a batch
// (DB.ExecuteBatch), where the back-end shares work across the plans.
type Plan struct {
	db  DB
	q   *minisql.Query
	t   *dataset.Table
	sql string // canonical rendering of q, fixed at Prepare time

	pred rowPredicate // compiled WHERE; always-true when q.Where is nil
	vec  *vecPlan     // column-store compilation hook; nil elsewhere
	sub  []*Plan      // sharded-store per-shard plans; nil elsewhere
	// conjs holds the top-level WHERE conjuncts in execution order: written
	// order as parsed, or the greedy planner's order when the store reordered
	// them at Prepare time (reordered is then true). The query AST itself is
	// never reordered — p.sql must not depend on execution strategy.
	conjs     []minisql.Expr
	reordered bool
	// route is the AutoStore routing decision ("eq-dispatch", "scan-agg",
	// ...) stamped at Prepare time; empty when the plan was prepared against
	// a concrete store directly. conjInfo carries the planner's per-conjunct
	// scores in execution order. Both exist purely for observability
	// (EXPLAIN / trace attrs) and never influence execution.
	route    string
	conjInfo []ConjunctInfo
	cols     []string          // output column names
	hasAgg   bool              // any aggregate select item
	selCol   []*dataset.Column // per select item; nil for COUNT(*)
	keyCol   []*dataset.Column // per GROUP BY key
	aggSel   []int             // select positions that are aggregates
	aggCol   []*dataset.Column // parallel to aggSel; nil for COUNT(*)
	// keyOf maps each select position to its GROUP BY key index, or -1 when
	// the item is an aggregate or a non-grouped plain column.
	keyOf []int
}

// newPlan binds q against t, validating every column reference.
func newPlan(db DB, t *dataset.Table, q *minisql.Query) (*Plan, error) {
	if t == nil {
		return nil, fmt.Errorf("engine: no table %q", q.From)
	}
	p := &Plan{db: db, q: q, t: t, sql: q.SQL()}
	p.cols = make([]string, len(q.Select))
	p.selCol = make([]*dataset.Column, len(q.Select))
	p.keyOf = make([]int, len(q.Select))
	for i, s := range q.Select {
		p.cols[i] = s.OutName()
		if s.Agg != minisql.AggNone {
			p.hasAgg = true
		}
		if s.Col == "*" {
			if s.Agg != minisql.AggCount {
				return nil, fmt.Errorf("engine: '*' is only valid inside COUNT")
			}
		} else {
			c := t.Column(s.Col)
			if c == nil {
				return nil, fmt.Errorf("engine: table %q has no column %q", t.Name, s.Col)
			}
			p.selCol[i] = c
		}
		p.keyOf[i] = -1
		if s.Agg != minisql.AggNone {
			p.aggSel = append(p.aggSel, i)
			p.aggCol = append(p.aggCol, p.selCol[i])
		}
	}
	p.keyCol = make([]*dataset.Column, len(q.GroupBy))
	for k, g := range q.GroupBy {
		c := t.Column(g.Col)
		if c == nil {
			return nil, fmt.Errorf("engine: table %q has no column %q", t.Name, g.Col)
		}
		p.keyCol[k] = c
	}
	for i, s := range q.Select {
		if s.Agg != minisql.AggNone {
			continue
		}
		for k, g := range q.GroupBy {
			if g.Col == s.Col && g.Bin == s.Bin {
				p.keyOf[i] = k
				break
			}
		}
	}
	for _, o := range q.OrderBy {
		found := false
		for _, c := range p.cols {
			if c == o.Col {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("engine: ORDER BY column %q is not in the select list", o.Col)
		}
	}
	pred, err := compilePredicate(t, q.Where)
	if err != nil {
		return nil, err
	}
	p.pred = pred
	p.conjs = splitConjuncts(q.Where)
	return p, nil
}

// Reordered reports whether the planner changed the plan's conjunct
// execution order away from written order.
func (p *Plan) Reordered() bool { return p.reordered }

// ConjunctInfo is one conjunct's planner audit record: its canonical SQL,
// the estimated selectivity used to order it (NaN-free; -1 when the planner
// did not score the plan), and its evaluation-cost tier.
type ConjunctInfo struct {
	SQL  string  `json:"sql"`
	Sel  float64 `json:"sel"`
	Cost int     `json:"cost"`
}

// PlanInfo is the plan's observability summary — what EXPLAIN shows.
type PlanInfo struct {
	SQL       string
	Route     string // AutoStore route decision, "" when routed directly
	Reordered bool
	Conjuncts []ConjunctInfo // execution order
}

// Info returns the plan's observability summary. When the planner never
// scored the plan (planning off, or fewer than two conjuncts) the conjuncts
// are reported in written order with Sel = -1.
func (p *Plan) Info() PlanInfo {
	info := PlanInfo{SQL: p.sql, Route: p.route, Reordered: p.reordered}
	if len(p.conjInfo) > 0 {
		info.Conjuncts = p.conjInfo
	} else {
		for _, e := range p.conjs {
			info.Conjuncts = append(info.Conjuncts, ConjunctInfo{SQL: e.SQL(), Sel: -1, Cost: -1})
		}
	}
	return info
}

// Route returns the AutoStore routing decision stamped at Prepare time, or
// "" when the plan was prepared against a concrete store directly.
func (p *Plan) Route() string { return p.route }

// Conjuncts returns the plan's top-level WHERE conjuncts in execution order.
func (p *Plan) Conjuncts() []minisql.Expr { return p.conjs }

// Table returns the base table the plan reads.
func (p *Plan) Table() *dataset.Table { return p.t }

// Query returns the logical query the plan was prepared from.
func (p *Plan) Query() *minisql.Query { return p.q }

// SQL returns the canonical SQL text of the plan's query, rendered once at
// Prepare time — it doubles as the plan's result-cache key, so it must not
// depend on anything but the query.
func (p *Plan) SQL() string { return p.sql }

// planRunner is the store-side single-plan entry point; both back-ends
// implement it.
type planRunner interface {
	runPlan(p *Plan) (*Result, error)
}

// Execute runs the plan against the back-end that prepared it.
func (p *Plan) Execute() (*Result, error) {
	return p.ExecuteContext(context.Background())
}

// ExecuteContext runs the plan under a context; cancellation is observed at
// the back-end's batch cancellation points.
func (p *Plan) ExecuteContext(ctx context.Context) (*Result, error) {
	if r, ok := p.db.(planRunner); ok {
		return r.runPlan(p)
	}
	results, err := p.db.ExecuteBatch(ctx, []*Plan{p})
	if err != nil {
		return nil, err
	}
	return results[0], nil
}

// run drains the matching-row iterator through a fresh sink. It is the
// single-plan execution path shared by both back-ends.
func (p *Plan) run(iter rowIter) (*Result, error) {
	sink := p.newSink()
	iter(func(i int) { sink.add(i) })
	return sink.finish()
}

// planSink accumulates one plan's output incrementally: matching rows are
// pushed in (add) and the result relation is emitted at the end (finish).
// The push interface is what lets a batch executor feed many plans from one
// shared scan.
type planSink struct {
	p *Plan
	// Projection mode.
	rows []dataset.Row
	// Aggregation mode.
	groups    map[string]*group
	groupList []*group
	keyBuf    []byte
}

// newSink creates a fresh accumulator for one execution of the plan.
func (p *Plan) newSink() *planSink {
	s := &planSink{p: p}
	if p.hasAgg || len(p.q.GroupBy) > 0 {
		s.groups = make(map[string]*group)
		s.keyBuf = make([]byte, 0, 64)
	}
	return s
}

// add feeds one matching row index into the sink.
func (s *planSink) add(i int) {
	p := s.p
	if s.groups == nil {
		row := make(dataset.Row, len(p.q.Select))
		for j, sel := range p.q.Select {
			row[j] = cellValue(p.selCol[j], sel.Bin, i)
		}
		s.rows = append(s.rows, row)
		return
	}
	s.keyBuf = s.keyBuf[:0]
	for k, c := range p.keyCol {
		if c.Field.Kind == dataset.KindString && p.q.GroupBy[k].Bin == 0 {
			s.keyBuf = binary.AppendVarint(s.keyBuf, int64(c.Code(i)))
		} else {
			v := c.Float(i)
			if p.q.GroupBy[k].Bin > 0 {
				v = binValue(v, p.q.GroupBy[k].Bin)
			}
			s.keyBuf = binary.LittleEndian.AppendUint64(s.keyBuf, math.Float64bits(v))
		}
		s.keyBuf = append(s.keyBuf, 0xff)
	}
	g, ok := s.groups[string(s.keyBuf)]
	if !ok {
		g = &group{
			keyVals:  make([]dataset.Value, len(p.keyCol)),
			aggs:     make([]aggState, len(p.aggSel)),
			firstRow: i,
		}
		for k, c := range p.keyCol {
			g.keyVals[k] = cellValue(c, p.q.GroupBy[k].Bin, i)
		}
		s.groups[string(s.keyBuf)] = g
		s.groupList = append(s.groupList, g)
	}
	for a, c := range p.aggCol {
		if c == nil {
			g.aggs[a].add(0) // COUNT(*): only count matters
		} else {
			g.aggs[a].add(c.Float(i))
		}
	}
}

// mergeFrom folds a later shard's partial accumulation into s. Shards cover
// contiguous ascending row ranges, so appending o's new groups after s's
// (each list already in first-seen order, keys built from the shared table's
// global codes) reproduces the global first-seen order, and concatenating
// projection rows reproduces ascending row order. Matching groups merge
// accumulator state; s's group keeps its firstRow (the globally earlier
// representative row).
func (s *planSink) mergeFrom(o *planSink) {
	if s.groups == nil {
		s.rows = append(s.rows, o.rows...)
		return
	}
	keyOf := make(map[*group]string, len(o.groups))
	for key, g := range o.groups {
		keyOf[g] = key
	}
	for _, g := range o.groupList {
		key := keyOf[g]
		if dst, ok := s.groups[key]; ok {
			dst.merge(g)
			continue
		}
		s.groups[key] = g
		s.groupList = append(s.groupList, g)
	}
}

// finish emits the result relation: group rows (or projected rows), ordering,
// and LIMIT.
func (s *planSink) finish() (*Result, error) {
	if s.groups == nil {
		return s.p.finishRows(s.rows)
	}
	return s.p.finishGroups(s.groupList)
}

// finishRows emits a projection result from the accumulated rows, applying
// ordering and LIMIT. Shared by every sink implementation.
func (p *Plan) finishRows(rows []dataset.Row) (*Result, error) {
	res := &Result{Cols: p.cols, Rows: rows}
	return p.orderAndLimit(res)
}

// finishGroups emits an aggregation result from groups in first-seen order,
// applying ordering and LIMIT. Shared by every sink implementation, which is
// what keeps the back-ends byte-identical: only the way matching rows are
// produced differs.
func (p *Plan) finishGroups(groupList []*group) (*Result, error) {
	res := &Result{Cols: p.cols}
	// An aggregate with no GROUP BY always yields exactly one row, even
	// over an empty match set (SQL semantics).
	if len(p.q.GroupBy) == 0 && len(groupList) == 0 {
		groupList = append(groupList, &group{aggs: make([]aggState, len(p.aggSel)), firstRow: -1})
	}
	// One output row per group in first-seen order; orderResult sorts.
	for _, g := range groupList {
		row := make(dataset.Row, len(p.q.Select))
		ai := 0
		for j, sel := range p.q.Select {
			if sel.Agg != minisql.AggNone {
				row[j] = g.aggs[ai].value(sel.Agg)
				ai++
				continue
			}
			if k := p.keyOf[j]; k >= 0 {
				row[j] = g.keyVals[k]
				continue
			}
			// Non-grouped plain column: representative value from the
			// group's first row (the query author asserts dependence).
			if g.firstRow < 0 {
				row[j] = dataset.NullValue
			} else {
				row[j] = cellValue(p.selCol[j], sel.Bin, g.firstRow)
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return p.orderAndLimit(res)
}

func (p *Plan) orderAndLimit(res *Result) (*Result, error) {
	if err := orderResult(res, p.q.OrderBy); err != nil {
		return nil, err
	}
	if p.q.Limit >= 0 && len(res.Rows) > p.q.Limit {
		res.Rows = res.Rows[:p.q.Limit]
	}
	return res, nil
}

// groupPlansByTable partitions batch plan indices by base table, preserving
// first-seen order.
type planGroup struct {
	t   *dataset.Table
	idx []int
}

func groupPlansByTable(plans []*Plan) []*planGroup {
	byTable := make(map[*dataset.Table]*planGroup)
	var out []*planGroup
	for i, p := range plans {
		g, ok := byTable[p.t]
		if !ok {
			g = &planGroup{t: p.t}
			byTable[p.t] = g
			out = append(out, g)
		}
		g.idx = append(g.idx, i)
	}
	return out
}

// shardIndices deals the indices round-robin into at most par shards, so a
// batch executor can bound its concurrency while heterogeneous plans stay
// balanced.
func shardIndices(idx []int, par int) [][]int {
	if par < 1 {
		par = 1
	}
	if par > len(idx) {
		par = len(idx)
	}
	shards := make([][]int, par)
	for k, i := range idx {
		shards[k%par] = append(shards[k%par], i)
	}
	return shards
}

// checkBatch validates that every plan in a batch was prepared by db.
func checkBatch(db DB, plans []*Plan) error {
	for i, p := range plans {
		if p == nil {
			return fmt.Errorf("engine: batch plan %d is nil", i)
		}
		if p.db != db {
			return fmt.Errorf("engine: batch plan %d was prepared by a different back-end", i)
		}
	}
	return nil
}

// firstError returns the first non-nil error, annotated with its plan's SQL.
func firstError(plans []*Plan, errs []error) error {
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("engine: batch plan %q: %w", plans[i].SQL(), err)
		}
	}
	return nil
}
