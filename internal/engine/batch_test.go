package engine

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/minisql"
)

// genWorkload builds a deterministic mix of slice/aggregate queries of the
// shapes zexec emits: per-slice equality filters, IN-list batches, range
// constraints, grouped multi-aggregates, and plain projections.
func genWorkload(seed int64, n int) []string {
	rng := rand.New(rand.NewSource(seed))
	products := []string{"chair", "table", "desk", "stapler", "widget"}
	locations := []string{"US", "UK", "FR"}
	var out []string
	for i := 0; i < n; i++ {
		switch rng.Intn(5) {
		case 0:
			out = append(out, fmt.Sprintf(
				"SELECT year, SUM(sales) AS a0 FROM sales WHERE product = '%s' GROUP BY year ORDER BY year",
				products[rng.Intn(len(products))]))
		case 1:
			out = append(out, fmt.Sprintf(
				"SELECT year, AVG(sales) AS a0, product FROM sales WHERE product IN ('%s', '%s') AND location = '%s' GROUP BY product, year ORDER BY product, year",
				products[rng.Intn(len(products))], products[rng.Intn(len(products))],
				locations[rng.Intn(len(locations))]))
		case 2:
			out = append(out, fmt.Sprintf(
				"SELECT year, MIN(profit) AS lo, MAX(profit) AS hi, COUNT(*) AS n FROM sales WHERE year >= %d AND sales < %d GROUP BY year ORDER BY year",
				2010+rng.Intn(6), 200+rng.Intn(800)))
		case 3:
			out = append(out, fmt.Sprintf(
				"SELECT product, sales FROM sales WHERE location = '%s' AND year BETWEEN %d AND %d ORDER BY sales DESC LIMIT %d",
				locations[rng.Intn(len(locations))], 2010+rng.Intn(3), 2013+rng.Intn(3), 1+rng.Intn(20)))
		default:
			out = append(out, fmt.Sprintf(
				"SELECT BIN(sales, 100) AS b, COUNT(*) AS n FROM sales WHERE product != '%s' GROUP BY BIN(sales, 100) ORDER BY b",
				products[rng.Intn(len(products))]))
		}
	}
	return out
}

func mustPrepareAll(t *testing.T, db DB, sqls []string) []*Plan {
	t.Helper()
	plans := make([]*Plan, len(sqls))
	for i, s := range sqls {
		q, err := minisql.Parse(s)
		if err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		p, err := db.Prepare(q)
		if err != nil {
			t.Fatalf("%s: prepare %q: %v", db.Name(), s, err)
		}
		plans[i] = p
	}
	return plans
}

func assertSameResult(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if len(got.Cols) != len(want.Cols) {
		t.Fatalf("%s: cols %v vs %v", label, got.Cols, want.Cols)
	}
	for i := range want.Cols {
		if got.Cols[i] != want.Cols[i] {
			t.Fatalf("%s: cols %v vs %v", label, got.Cols, want.Cols)
		}
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("%s: %d rows vs %d", label, len(got.Rows), len(want.Rows))
	}
	for i := range want.Rows {
		for j := range want.Rows[i] {
			g, w := got.Rows[i][j], want.Rows[i][j]
			if g.IsNull() != w.IsNull() || (!w.IsNull() && !g.Equal(w)) {
				t.Fatalf("%s: row %d col %d: %v vs %v", label, i, j, g, w)
			}
		}
	}
}

// TestExecuteBatchMatchesExecute is the differential test for the batch
// path: on both back-ends, ExecuteBatch over a generated workload must
// return exactly what per-query Execute returns.
func TestExecuteBatchMatchesExecute(t *testing.T) {
	tb := salesTable()
	sqls := genWorkload(23, 64)
	for _, db := range allStores(tb) {
		plans := mustPrepareAll(t, db, sqls)
		batch, err := db.ExecuteBatch(context.Background(), plans)
		if err != nil {
			t.Fatalf("%s: ExecuteBatch: %v", db.Name(), err)
		}
		if len(batch) != len(plans) {
			t.Fatalf("%s: %d results for %d plans", db.Name(), len(batch), len(plans))
		}
		for i, p := range plans {
			single, err := p.Execute()
			if err != nil {
				t.Fatalf("%s: Execute %q: %v", db.Name(), sqls[i], err)
			}
			assertSameResult(t, fmt.Sprintf("%s %q", db.Name(), sqls[i]), batch[i], single)
		}
	}
}

// TestExecuteBatchAcrossStores cross-checks the two back-ends' batch
// executors against each other.
func TestExecuteBatchAcrossStores(t *testing.T) {
	tb := salesTable()
	sqls := genWorkload(41, 48)
	row, bit := NewRowStore(tb), NewBitmapStore(tb)
	rowRes, err := row.ExecuteBatch(context.Background(), mustPrepareAll(t, row, sqls))
	if err != nil {
		t.Fatal(err)
	}
	bitRes, err := bit.ExecuteBatch(context.Background(), mustPrepareAll(t, bit, sqls))
	if err != nil {
		t.Fatal(err)
	}
	for i := range sqls {
		assertSameResult(t, sqls[i], bitRes[i], rowRes[i])
	}
}

// TestExecuteBatchParallelismOne forces a single shared scan for the whole
// batch and checks both correctness and the scan-sharing counter.
func TestExecuteBatchParallelismOne(t *testing.T) {
	tb := salesTable()
	db := NewRowStore(tb)
	db.SetParallelism(1)
	sqls := genWorkload(7, 16)
	plans := mustPrepareAll(t, db, sqls)
	before := db.Counters()
	batch, err := db.ExecuteBatch(context.Background(), plans)
	if err != nil {
		t.Fatal(err)
	}
	after := db.Counters()
	if got := after.Queries - before.Queries; got != int64(len(plans)) {
		t.Errorf("queries counter advanced by %d, want %d", got, len(plans))
	}
	// One worker means one shared scan: the whole batch costs one table
	// length, not len(plans) of them.
	if got := after.RowsScanned - before.RowsScanned; got != int64(tb.NumRows()) {
		t.Errorf("batch scanned %d rows, want one shared scan of %d", got, tb.NumRows())
	}
	for i, p := range plans {
		single, err := p.Execute()
		if err != nil {
			t.Fatal(err)
		}
		assertSameResult(t, sqls[i], batch[i], single)
	}
}

// TestPlanReuse executes one prepared plan repeatedly; results must not
// leak state between runs.
func TestPlanReuse(t *testing.T) {
	tb := salesTable()
	for _, db := range allStores(tb) {
		q, err := minisql.Parse("SELECT year, SUM(sales) AS s FROM sales WHERE product = 'chair' GROUP BY year ORDER BY year")
		if err != nil {
			t.Fatal(err)
		}
		p, err := db.Prepare(q)
		if err != nil {
			t.Fatal(err)
		}
		first, err := p.Execute()
		if err != nil {
			t.Fatal(err)
		}
		for rep := 0; rep < 3; rep++ {
			again, err := p.Execute()
			if err != nil {
				t.Fatal(err)
			}
			assertSameResult(t, fmt.Sprintf("%s rep %d", db.Name(), rep), again, first)
		}
	}
}

// TestPrepareRejectsForeignPlan ensures a plan cannot run on a back-end
// that did not prepare it.
func TestPrepareRejectsForeignPlan(t *testing.T) {
	tb := salesTable()
	row, bit := NewRowStore(tb), NewBitmapStore(tb)
	q, err := minisql.Parse("SELECT COUNT(*) FROM sales")
	if err != nil {
		t.Fatal(err)
	}
	p, err := row.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bit.ExecuteBatch(context.Background(), []*Plan{p}); err == nil {
		t.Error("bitmap store accepted a row-store plan")
	}
	if _, err := row.ExecuteBatch(context.Background(), []*Plan{nil}); err == nil {
		t.Error("nil plan accepted")
	}
}

// TestExecuteBatchMultiTable checks a batch spanning two base tables.
func TestExecuteBatchMultiTable(t *testing.T) {
	a := salesTable()
	b := dataset.NewTable("other", []dataset.Field{
		{Name: "k", Kind: dataset.KindString},
		{Name: "v", Kind: dataset.KindFloat},
	})
	b.AppendRow(dataset.SV("x"), dataset.FV(1))
	b.AppendRow(dataset.SV("x"), dataset.FV(2))
	b.AppendRow(dataset.SV("y"), dataset.FV(5))
	db := NewRowStore(a, b)
	sqls := []string{
		"SELECT COUNT(*) AS n FROM sales",
		"SELECT k, SUM(v) AS s FROM other GROUP BY k ORDER BY k",
		"SELECT COUNT(*) AS n FROM sales WHERE product = 'chair'",
	}
	plans := mustPrepareAll(t, db, sqls)
	batch, err := db.ExecuteBatch(context.Background(), plans)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range plans {
		single, err := p.Execute()
		if err != nil {
			t.Fatal(err)
		}
		assertSameResult(t, sqls[i], batch[i], single)
	}
	if batch[1].Rows[0][1].Float() != 3 || batch[1].Rows[1][1].Float() != 5 {
		t.Errorf("other table sums = %v", batch[1].Rows)
	}
}

// TestEmptyMatchAggregates pins the SQL semantics of aggregates over an
// empty match set with no GROUP BY: COUNT is 0 and every other aggregate
// is NULL.
func TestEmptyMatchAggregates(t *testing.T) {
	tb := salesTable()
	for _, db := range allStores(tb) {
		res, err := db.ExecuteSQL("SELECT COUNT(*) AS n, SUM(sales) AS s, MIN(sales) AS lo, MAX(sales) AS hi, AVG(sales) AS a FROM sales WHERE product = 'nothing'")
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 1 {
			t.Fatalf("%s: %d rows, want 1", db.Name(), len(res.Rows))
		}
		row := res.Rows[0]
		if row[0].Int() != 0 {
			t.Errorf("%s: COUNT over empty set = %v, want 0", db.Name(), row[0])
		}
		for i, name := range []string{"SUM", "MIN", "MAX", "AVG"} {
			if !row[1+i].IsNull() {
				t.Errorf("%s: %s over empty set = %v, want NULL", db.Name(), name, row[1+i])
			}
		}
	}
}

// TestPrepareValidation pins the errors Prepare reports for unresolvable
// queries — validation happens once, before any execution.
func TestPrepareValidation(t *testing.T) {
	tb := salesTable()
	for _, db := range allStores(tb) {
		for _, bad := range []string{
			"SELECT a FROM nope",
			"SELECT nope FROM sales",
			"SELECT product FROM sales GROUP BY nope",
			"SELECT product FROM sales ORDER BY other",
			"SELECT product FROM sales WHERE nope = 1",
		} {
			q, err := minisql.Parse(bad)
			if err != nil {
				t.Fatalf("parse %q: %v", bad, err)
			}
			if _, err := db.Prepare(q); err == nil {
				t.Errorf("%s: Prepare(%q) should fail", db.Name(), bad)
			}
		}
	}
}
