package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/dataset"
)

// rangeTable has a low-cardinality int column (indexable) and a
// high-cardinality one (not indexable).
func rangeTable() *dataset.Table {
	t := dataset.NewTable("r", []dataset.Field{
		{Name: "year", Kind: dataset.KindInt},
		{Name: "id", Kind: dataset.KindInt},
		{Name: "cat", Kind: dataset.KindString},
		{Name: "v", Kind: dataset.KindFloat},
	})
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 20000; i++ {
		t.AppendRow(
			dataset.IV(int64(2000+rng.Intn(20))),
			dataset.IV(int64(i)), // 20000 distinct: above the index bound
			dataset.SV(fmt.Sprintf("c%d", rng.Intn(5))),
			dataset.FV(rng.Float64()*100),
		)
	}
	return t
}

func TestIntIndexBuiltSelectively(t *testing.T) {
	s := NewBitmapStore(rangeTable())
	if _, ok := s.intIndexes["r"]["year"]; !ok {
		t.Error("year (20 distinct) should be int-indexed")
	}
	if _, ok := s.intIndexes["r"]["id"]; ok {
		t.Error("id (20000 distinct) should not be int-indexed")
	}
}

// TestRangePredicatesDifferential cross-checks every range operator shape
// against the row store.
func TestRangePredicatesDifferential(t *testing.T) {
	tb := rangeTable()
	row, bit := NewRowStore(tb), NewBitmapStore(tb)
	queries := []string{
		"SELECT COUNT(*) FROM r WHERE year < 2005",
		"SELECT COUNT(*) FROM r WHERE year <= 2005",
		"SELECT COUNT(*) FROM r WHERE year > 2015",
		"SELECT COUNT(*) FROM r WHERE year >= 2015",
		"SELECT COUNT(*) FROM r WHERE year = 2010",
		"SELECT COUNT(*) FROM r WHERE year != 2010",
		"SELECT COUNT(*) FROM r WHERE year BETWEEN 2005 AND 2010",
		"SELECT COUNT(*) FROM r WHERE year IN (2001, 2003, 2019)",
		"SELECT COUNT(*) FROM r WHERE year BETWEEN 2005 AND 2010 AND cat = 'c1'",
		"SELECT COUNT(*) FROM r WHERE year < 2002 OR year > 2018",
		"SELECT COUNT(*) FROM r WHERE NOT (year BETWEEN 2002 AND 2018)",
		"SELECT COUNT(*) FROM r WHERE year = 1999",  // below domain
		"SELECT COUNT(*) FROM r WHERE year > 2100",  // above domain
		"SELECT COUNT(*) FROM r WHERE year <= 1800", // empty
		"SELECT year, COUNT(*) AS n FROM r WHERE year >= 2010 GROUP BY year ORDER BY year",
	}
	for _, q := range queries {
		r1, err1 := row.ExecuteSQL(q)
		r2, err2 := bit.ExecuteSQL(q)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: %v / %v", q, err1, err2)
		}
		if len(r1.Rows) != len(r2.Rows) {
			t.Fatalf("%s: %d vs %d rows", q, len(r1.Rows), len(r2.Rows))
		}
		for i := range r1.Rows {
			for j := range r1.Rows[i] {
				if !r1.Rows[i][j].Equal(r2.Rows[i][j]) {
					t.Fatalf("%s: cell (%d,%d) %v vs %v", q, i, j, r1.Rows[i][j], r2.Rows[i][j])
				}
			}
		}
	}
}

func TestRangePredicateScansLessThanFullTable(t *testing.T) {
	tb := rangeTable()
	bit := NewBitmapStore(tb)
	before := bit.Counters().RowsScanned
	if _, err := bit.ExecuteSQL("SELECT COUNT(*) FROM r WHERE year < 2002"); err != nil {
		t.Fatal(err)
	}
	scanned := bit.Counters().RowsScanned - before
	if scanned >= int64(tb.NumRows())/2 {
		t.Errorf("range predicate scanned %d rows of %d; index not used", scanned, tb.NumRows())
	}
}

func TestFractionalRangeBounds(t *testing.T) {
	tb := rangeTable()
	row, bit := NewRowStore(tb), NewBitmapStore(tb)
	// Fractional comparisons exercise the ceil/floor boundary logic.
	for _, q := range []string{
		"SELECT COUNT(*) FROM r WHERE year < 2005.5",
		"SELECT COUNT(*) FROM r WHERE year >= 2004.5",
		"SELECT COUNT(*) FROM r WHERE year = 2005.5",
	} {
		r1, _ := row.ExecuteSQL(q)
		r2, err := bit.ExecuteSQL(q)
		if err != nil {
			t.Fatal(err)
		}
		if !r1.Rows[0][0].Equal(r2.Rows[0][0]) {
			t.Errorf("%s: %v vs %v", q, r1.Rows[0][0], r2.Rows[0][0])
		}
	}
}

func TestUnindexedIntStillCorrect(t *testing.T) {
	tb := rangeTable()
	row, bit := NewRowStore(tb), NewBitmapStore(tb)
	q := "SELECT COUNT(*) FROM r WHERE id < 100 AND cat = 'c1'"
	r1, _ := row.ExecuteSQL(q)
	r2, err := bit.ExecuteSQL(q)
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Rows[0][0].Equal(r2.Rows[0][0]) {
		t.Errorf("%v vs %v", r1.Rows[0][0], r2.Rows[0][0])
	}
}
