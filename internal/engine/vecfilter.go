package engine

import (
	"math"
	"sync"

	"repro/internal/dataset"
	"repro/internal/minisql"
)

// The vectorized predicate layer of the column store. A minisql.Expr is
// compiled once, at Prepare time, into a tree of vecFilters; at execution
// each filter evaluates one segment at a time into a selection bitmap
// (one bit per row of the segment) instead of being interpreted per row.
// Every filter also answers a zone-map question — "can this segment possibly
// contain a matching row?" — so segments the zone maps prove empty are
// skipped without touching their data.

// segWords is the bitmap length of one full segment's selection vector.
const segWords = segmentSize / 64

// vecFilter evaluates a predicate over one segment of a table.
//
// Implementations hold only immutable compile-time state (column slices,
// zone maps, constants), so one vecFilter may be evaluated by any number of
// goroutines at once — the same contract plan predicates already obey.
type vecFilter interface {
	// skip reports whether the zone maps PROVE segment s holds no matching
	// row. False means "maybe"; skip is always allowed to give up and return
	// false.
	skip(s int) bool
	// eval sets bit i-lo of bits for every matching row i in [lo, hi).
	// bits has segWords words and arrives zeroed.
	eval(lo, hi int, bits []uint64)
}

func setBit(bits []uint64, i int) { bits[i>>6] |= 1 << (uint(i) & 63) }
func clearBits(bits []uint64) {
	for i := range bits {
		bits[i] = 0
	}
}
func newSegBits() []uint64 { return make([]uint64, segWords) }

// segBitsPool recycles composite filters' scratch bitmaps. eval runs once
// per segment inside the scan hot loop, and filters must stay stateless for
// concurrent execution, so scratch is pooled instead of owned.
var segBitsPool = sync.Pool{New: func() any {
	b := newSegBits()
	return &b
}}

func getSegBits() *[]uint64  { return segBitsPool.Get().(*[]uint64) }
func putSegBits(b *[]uint64) { segBitsPool.Put(b) }

// maskTail clears the bits at and above n, so complements of a partial
// segment don't select rows past the table end.
func maskTail(bits []uint64, n int) {
	full := n >> 6
	if rem := uint(n) & 63; rem != 0 {
		bits[full] &= (1 << rem) - 1
		full++
	}
	for i := full; i < len(bits); i++ {
		bits[i] = 0
	}
}

// --- leaves ---------------------------------------------------------------

// constFilter matches everything or nothing (e.g. equality against a string
// the dictionary has never seen).
type constFilter struct{ match bool }

func (f constFilter) skip(int) bool { return !f.match }
func (f constFilter) eval(lo, hi int, bits []uint64) {
	if !f.match {
		return
	}
	for i := 0; i < hi-lo; i++ {
		setBit(bits, i)
	}
}

// catEqFilter is code equality (or inequality) on a categorical column.
type catEqFilter struct {
	codes []int32
	zone  *ZoneData
	code  int32
	neq   bool
}

func (f *catEqFilter) skip(s int) bool {
	if f.neq {
		// Skip only if the segment holds nothing but f.code.
		return f.zone.onlyCode(s, f.code)
	}
	return !f.zone.hasCode(s, f.code)
}

func (f *catEqFilter) eval(lo, hi int, bits []uint64) {
	codes, code := f.codes, f.code
	if f.neq {
		for i := lo; i < hi; i++ {
			if codes[i] != code {
				setBit(bits, i-lo)
			}
		}
		return
	}
	for i := lo; i < hi; i++ {
		if codes[i] == code {
			setBit(bits, i-lo)
		}
	}
}

// catSetFilter matches rows whose code is in a compiled code set — IN lists
// and LIKE patterns over categorical columns compile to this.
type catSetFilter struct {
	codes []int32
	zone  *ZoneData
	want  []uint64 // bitset over dictionary codes
}

func (f *catSetFilter) skip(s int) bool { return !f.zone.anyCode(s, f.want) }

func (f *catSetFilter) eval(lo, hi int, bits []uint64) {
	codes, want := f.codes, f.want
	for i := lo; i < hi; i++ {
		c := codes[i]
		if want[c>>6]&(1<<(uint(c)&63)) != 0 {
			setBit(bits, i-lo)
		}
	}
}

// numRangeFilter matches numeric rows inside [lo, hi] (either bound may be
// infinite) — comparisons and BETWEEN both compile to this.
type numRangeFilter struct {
	ints   []int64
	floats []float64
	zone   *ZoneData
	lo, hi float64
}

func (f *numRangeFilter) skip(s int) bool {
	return f.zone.Max[s] < f.lo || f.zone.Min[s] > f.hi
}

func (f *numRangeFilter) eval(lo, hi int, bits []uint64) {
	a, b := f.lo, f.hi
	if f.ints != nil {
		vals := f.ints
		for i := lo; i < hi; i++ {
			v := float64(vals[i])
			if v >= a && v <= b {
				setBit(bits, i-lo)
			}
		}
		return
	}
	vals := f.floats
	for i := lo; i < hi; i++ {
		if vals[i] >= a && vals[i] <= b {
			setBit(bits, i-lo)
		}
	}
}

// numNeFilter is numeric !=, the one comparison a single range can't express.
type numNeFilter struct {
	ints   []int64
	floats []float64
	zone   *ZoneData
	val    float64
}

func (f *numNeFilter) skip(s int) bool {
	// min == max == val proves every non-NaN row equals val; a NaN row
	// still matches != (NaN compares unequal to everything), so its
	// presence voids the proof.
	return f.zone.Min[s] == f.val && f.zone.Max[s] == f.val && !f.zone.NaN[s]
}

func (f *numNeFilter) eval(lo, hi int, bits []uint64) {
	v := f.val
	if f.ints != nil {
		vals := f.ints
		for i := lo; i < hi; i++ {
			if float64(vals[i]) != v {
				setBit(bits, i-lo)
			}
		}
		return
	}
	vals := f.floats
	for i := lo; i < hi; i++ {
		if vals[i] != v {
			setBit(bits, i-lo)
		}
	}
}

// numSetFilter is a numeric IN list. The zone test uses the set's own
// min/max envelope: if every wanted value lies outside the segment's range,
// no row can match.
type numSetFilter struct {
	ints           []int64
	floats         []float64
	zone           *ZoneData
	want           map[float64]bool
	wantLo, wantHi float64
}

func (f *numSetFilter) skip(s int) bool {
	return f.wantHi < f.zone.Min[s] || f.wantLo > f.zone.Max[s]
}

func (f *numSetFilter) eval(lo, hi int, bits []uint64) {
	if f.ints != nil {
		vals := f.ints
		for i := lo; i < hi; i++ {
			if f.want[float64(vals[i])] {
				setBit(bits, i-lo)
			}
		}
		return
	}
	vals := f.floats
	for i := lo; i < hi; i++ {
		if f.want[vals[i]] {
			setBit(bits, i-lo)
		}
	}
}

// predFilter is the catch-all: it evaluates a compiled row predicate inside
// the segment loop. Shapes the typed leaves don't cover (mixed-kind
// comparisons, LIKE over numerics) land here; no zone skipping.
type predFilter struct{ pred rowPredicate }

func (f predFilter) skip(int) bool { return false }
func (f predFilter) eval(lo, hi int, bits []uint64) {
	for i := lo; i < hi; i++ {
		if f.pred(i) {
			setBit(bits, i-lo)
		}
	}
}

// --- composites -----------------------------------------------------------

// andFilter intersects its children's selections.
type andFilter struct{ args []vecFilter }

func (f *andFilter) skip(s int) bool {
	for _, a := range f.args {
		if a.skip(s) {
			return true
		}
	}
	return false
}

func (f *andFilter) eval(lo, hi int, bits []uint64) {
	f.args[0].eval(lo, hi, bits)
	sp := getSegBits()
	defer putSegBits(sp)
	scratch := *sp
	for _, a := range f.args[1:] {
		clearBits(scratch)
		a.eval(lo, hi, scratch)
		for w := range bits {
			bits[w] &= scratch[w]
		}
	}
}

// orFilter unions its children's selections, skipping children the zone maps
// rule out for the segment.
type orFilter struct{ args []vecFilter }

func (f *orFilter) skip(s int) bool {
	for _, a := range f.args {
		if !a.skip(s) {
			return false
		}
	}
	return true
}

func (f *orFilter) eval(lo, hi int, bits []uint64) {
	s := lo / segmentSize
	sp := getSegBits()
	defer putSegBits(sp)
	scratch := *sp
	for _, a := range f.args {
		if a.skip(s) {
			continue
		}
		clearBits(scratch)
		a.eval(lo, hi, scratch)
		for w := range bits {
			bits[w] |= scratch[w]
		}
	}
}

// notFilter complements its child inside the segment.
type notFilter struct{ arg vecFilter }

func (f *notFilter) skip(int) bool { return false }
func (f *notFilter) eval(lo, hi int, bits []uint64) {
	f.arg.eval(lo, hi, bits)
	for w := range bits {
		bits[w] = ^bits[w]
	}
	maskTail(bits, hi-lo)
}

// --- compilation ----------------------------------------------------------

// compileVec lowers a predicate to a vectorized filter over ct. A nil expr
// matches every row. Compilation cannot fail where compilePredicate
// succeeded: any shape without a typed vectorized form falls back to a
// predFilter around the row-at-a-time closure.
func compileVec(ct *colTable, t *dataset.Table, e minisql.Expr) (vecFilter, error) {
	if e == nil {
		return constFilter{match: true}, nil
	}
	switch x := e.(type) {
	case *minisql.And:
		args, err := compileVecList(ct, t, x.Args)
		if err != nil {
			return nil, err
		}
		return &andFilter{args: args}, nil
	case *minisql.Or:
		args, err := compileVecList(ct, t, x.Args)
		if err != nil {
			return nil, err
		}
		return &orFilter{args: args}, nil
	case *minisql.Not:
		arg, err := compileVec(ct, t, x.Arg)
		if err != nil {
			return nil, err
		}
		return &notFilter{arg: arg}, nil
	case *minisql.Compare:
		return compileVecCompare(ct, t, x)
	case *minisql.In:
		return compileVecIn(ct, t, x)
	case *minisql.Like:
		return compileVecLike(ct, t, x)
	case *minisql.Between:
		c, err := lookupColumn(t, x.Col)
		if err != nil {
			return nil, err
		}
		if c.Field.Kind != dataset.KindString && x.Lo.Kind != dataset.KindString && x.Hi.Kind != dataset.KindString {
			return numRange(ct, c, x.Lo.Float(), x.Hi.Float()), nil
		}
		return fallbackFilter(t, x)
	}
	return fallbackFilter(t, e)
}

func compileVecList(ct *colTable, t *dataset.Table, exprs []minisql.Expr) ([]vecFilter, error) {
	out := make([]vecFilter, len(exprs))
	for i, e := range exprs {
		f, err := compileVec(ct, t, e)
		if err != nil {
			return nil, err
		}
		out[i] = f
	}
	return out, nil
}

// fallbackFilter wraps the row-at-a-time compiled predicate of e.
func fallbackFilter(t *dataset.Table, e minisql.Expr) (vecFilter, error) {
	pred, err := compilePredicate(t, e)
	if err != nil {
		return nil, err
	}
	return predFilter{pred: pred}, nil
}

func numRange(ct *colTable, c *dataset.Column, lo, hi float64) vecFilter {
	return &numRangeFilter{
		ints:   intsOf(c),
		floats: floatsOf(c),
		zone:   ct.zones[c.Field.Name],
		lo:     lo,
		hi:     hi,
	}
}

// intsOf / floatsOf return the raw slice only for the matching kind, so the
// typed filters can branch once instead of per row.
func intsOf(c *dataset.Column) []int64 {
	if c.Field.Kind == dataset.KindInt {
		return c.Ints()
	}
	return nil
}

func floatsOf(c *dataset.Column) []float64 {
	if c.Field.Kind == dataset.KindFloat {
		return c.Floats()
	}
	return nil
}

func compileVecCompare(ct *colTable, t *dataset.Table, x *minisql.Compare) (vecFilter, error) {
	c, err := lookupColumn(t, x.Col)
	if err != nil {
		return nil, err
	}
	if c.Field.Kind == dataset.KindString && x.Val.Kind == dataset.KindString {
		switch x.Op {
		case minisql.CmpEq:
			code := c.CodeOf(x.Val.S)
			if code < 0 {
				return constFilter{match: false}, nil
			}
			return &catEqFilter{codes: c.Codes(), zone: ct.zones[c.Field.Name], code: code}, nil
		case minisql.CmpNe:
			code := c.CodeOf(x.Val.S)
			if code < 0 {
				return constFilter{match: true}, nil
			}
			return &catEqFilter{codes: c.Codes(), zone: ct.zones[c.Field.Name], code: code, neq: true}, nil
		}
		return fallbackFilter(t, x)
	}
	if c.Field.Kind != dataset.KindString && x.Val.Kind != dataset.KindString {
		v := x.Val.Float()
		switch x.Op {
		case minisql.CmpEq:
			return numRange(ct, c, v, v), nil
		case minisql.CmpNe:
			return &numNeFilter{ints: intsOf(c), floats: floatsOf(c), zone: ct.zones[c.Field.Name], val: v}, nil
		case minisql.CmpLt:
			return numRange(ct, c, math.Inf(-1), math.Nextafter(v, math.Inf(-1))), nil
		case minisql.CmpLe:
			return numRange(ct, c, math.Inf(-1), v), nil
		case minisql.CmpGt:
			return numRange(ct, c, math.Nextafter(v, math.Inf(1)), math.Inf(1)), nil
		case minisql.CmpGe:
			return numRange(ct, c, v, math.Inf(1)), nil
		}
	}
	return fallbackFilter(t, x)
}

func compileVecIn(ct *colTable, t *dataset.Table, x *minisql.In) (vecFilter, error) {
	c, err := lookupColumn(t, x.Col)
	if err != nil {
		return nil, err
	}
	if c.Field.Kind == dataset.KindString {
		want := make([]uint64, (c.Cardinality()+63)/64)
		any := false
		for _, v := range x.Vals {
			if code := c.CodeOf(v.String()); code >= 0 {
				want[code>>6] |= 1 << (uint(code) & 63)
				any = true
			}
		}
		if !any {
			return constFilter{match: false}, nil
		}
		return &catSetFilter{codes: c.Codes(), zone: ct.zones[c.Field.Name], want: want}, nil
	}
	f := &numSetFilter{
		ints:   intsOf(c),
		floats: floatsOf(c),
		zone:   ct.zones[c.Field.Name],
		want:   make(map[float64]bool, len(x.Vals)),
		wantLo: math.Inf(1),
		wantHi: math.Inf(-1),
	}
	for _, v := range x.Vals {
		fv := v.Float()
		f.want[fv] = true
		if fv < f.wantLo {
			f.wantLo = fv
		}
		if fv > f.wantHi {
			f.wantHi = fv
		}
	}
	if len(f.want) == 0 {
		return constFilter{match: false}, nil
	}
	return f, nil
}

func compileVecLike(ct *colTable, t *dataset.Table, x *minisql.Like) (vecFilter, error) {
	c, err := lookupColumn(t, x.Col)
	if err != nil {
		return nil, err
	}
	if c.Field.Kind != dataset.KindString {
		return fallbackFilter(t, x)
	}
	// Evaluate the pattern once per dictionary entry; the row loop and the
	// zone test then work on the resulting code set, same as IN.
	m := compileLikeMatcher(x.Pattern)
	want := make([]uint64, (c.Cardinality()+63)/64)
	any := false
	for code, s := range c.Dict() {
		if m(s) {
			want[code>>6] |= 1 << (uint(code) & 63)
			any = true
		}
	}
	if !any {
		return constFilter{match: false}, nil
	}
	return &catSetFilter{codes: c.Codes(), zone: ct.zones[c.Field.Name], want: want}, nil
}
