package engine

import (
	"math"
	"sort"
	"sync/atomic"

	"repro/internal/dataset"
	"repro/internal/minisql"
)

// The greedy conjunct planner. At Prepare time every store reorders a
// query's top-level WHERE conjuncts cheapest/most-selective-first, scored
// from statistics the stores already computed at build time — zone-map
// min/max versus the predicate's range, dictionary cardinality and code
// presence for equality — with live skip provenance as a tie-breaker.
// Planning is statistics-free in the histogram sense: no sampling, no
// per-value frequency tables, just the metadata that exists anyway, so a
// plan costs microseconds and never touches row data.
//
// Reordering is result-invariant: AND is commutative in every store (row
// predicates are pure closures, bitmap intersections and selection-bitmap
// ANDs commute), and the differential fuzzer pins it by executing every
// store variant with shuffled vs. planned conjunct order. The planner never
// mutates the query AST — Plan.SQL() is the result-cache key and must not
// depend on execution strategy — it only reorders the compiled artifacts.

// Planner is implemented by stores whose Prepare runs the greedy conjunct
// planner. SetPlanning(false) pins written conjunct order — the differential
// baseline, also exposed as zserved's -no-planner flag.
type Planner interface {
	SetPlanning(on bool)
}

// planToggle is the store-level planning switch every back-end embeds.
// The zero value is ON.
type planToggle struct {
	noPlan atomic.Bool
}

// SetPlanning enables or disables conjunct reordering at Prepare time.
// Disabling never changes results, only the order compiled predicates run.
func (p *planToggle) SetPlanning(on bool) { p.noPlan.Store(!on) }

func (p *planToggle) planningOn() bool { return !p.noPlan.Load() }

// splitConjuncts returns the AND legs of a predicate in written order,
// flattening nested ANDs (a non-AND predicate is one conjunct; nil means
// none). Flattening matters for generated SQL: the ZQL fetch phase emits
// WHERE z IN (...) AND (<user constraints>), and without it the whole user
// conjunction would score as one opaque composite. AND associativity makes
// the flattened compile result-identical.
func splitConjuncts(e minisql.Expr) []minisql.Expr {
	if e == nil {
		return nil
	}
	if and, ok := e.(*minisql.And); ok {
		var legs []minisql.Expr
		for _, a := range and.Args {
			legs = append(legs, splitConjuncts(a)...)
		}
		return legs
	}
	return []minisql.Expr{e}
}

// numStat is one numeric column's global value envelope, folded from its
// per-segment zone maps.
type numStat struct {
	lo, hi float64
}

// plannerStats is the per-table statistics snapshot a store hands the
// scorer: dictionary cardinalities, numeric envelopes, and the live skip
// provenance accumulated so far.
type plannerStats struct {
	t       *dataset.Table
	card    map[string]int
	numeric map[string]numStat
	prov    map[SkipAttr]int64
}

// newPlannerStats seeds the snapshot with what every store knows for free:
// the categorical dictionary cardinalities.
func newPlannerStats(t *dataset.Table) *plannerStats {
	ps := &plannerStats{
		t:       t,
		card:    make(map[string]int),
		numeric: make(map[string]numStat),
	}
	for _, c := range t.Columns() {
		if c.Field.Kind == dataset.KindString {
			ps.card[c.Field.Name] = c.Cardinality()
		}
	}
	return ps
}

// addZones folds per-segment zone maps into global numeric envelopes and
// integer-dictionary cardinalities. Segments with no rows (or all-NaN rows)
// contribute the +Inf/-Inf identity and fold away; a column whose every
// segment is empty keeps no envelope, so its predicates score by defaults.
func (ps *plannerStats) addZones(zones map[string]*ZoneData, dicts map[string]*IntDict) {
	for _, c := range ps.t.Columns() {
		name := c.Field.Name
		if c.Field.Kind == dataset.KindString {
			continue
		}
		if d := dicts[name]; d != nil {
			ps.card[name] = len(d.Vals)
		}
		z := zones[name]
		if z == nil || len(z.Min) == 0 {
			continue
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for s := range z.Min {
			if z.Min[s] < lo {
				lo = z.Min[s]
			}
			if z.Max[s] > hi {
				hi = z.Max[s]
			}
		}
		if lo <= hi {
			ps.numeric[name] = numStat{lo: lo, hi: hi}
		}
	}
}

// withProv attaches a live skip-provenance snapshot as the tie-breaking
// signal: conjuncts on columns whose metadata has actually proved segments
// empty win ties against equally scored ones.
func (ps *plannerStats) withProv(prov map[SkipAttr]int64) *plannerStats {
	ps.prov = prov
	return ps
}

// provWeight sums the skip counts credited to the columns a conjunct
// constrains.
func (ps *plannerStats) provWeight(e minisql.Expr) int64 {
	if len(ps.prov) == 0 {
		return 0
	}
	var n int64
	for _, col := range exprColumns(e, nil) {
		for attr, c := range ps.prov {
			if attr.Column == col {
				n += c
			}
		}
	}
	return n
}

// Cost tiers: the per-row price of evaluating a conjunct, coarsely. Ties in
// estimated selectivity break toward the cheaper evaluator.
const (
	costConst     = 0 // folded to a constant at compile time
	costCatEq     = 1 // one dictionary-code compare per row
	costNumRange  = 2 // one or two float compares per row
	costSet       = 3 // code-bitset or hash-set membership per row
	costComposite = 4 // nested AND/OR/NOT evaluation
	costFallback  = 5 // row-at-a-time predicate closure, no zone skipping
)

// scoreConjunct estimates a conjunct's selectivity (fraction of rows
// surviving, in [0, 1] — lower runs earlier) and its evaluation cost tier.
func scoreConjunct(ps *plannerStats, e minisql.Expr) (sel float64, cost int) {
	switch x := e.(type) {
	case *minisql.And:
		sel = 1
		for _, a := range x.Args {
			s, _ := scoreConjunct(ps, a)
			sel *= s
		}
		return sel, costComposite
	case *minisql.Or:
		sel = 0
		for _, a := range x.Args {
			s, _ := scoreConjunct(ps, a)
			sel += s
		}
		return math.Min(sel, 1), costComposite
	case *minisql.Not:
		s, _ := scoreConjunct(ps, x.Arg)
		return 1 - s, costComposite
	case *minisql.Compare:
		return scoreCompare(ps, x)
	case *minisql.In:
		return scoreIn(ps, x)
	case *minisql.Like:
		return scoreLike(ps, x)
	case *minisql.Between:
		c := ps.t.Column(x.Col)
		if c == nil || c.Field.Kind == dataset.KindString ||
			x.Lo.Kind == dataset.KindString || x.Hi.Kind == dataset.KindString {
			return 0.5, costFallback
		}
		return rangeSel(ps, x.Col, x.Lo.Float(), x.Hi.Float(), 0.25), costNumRange
	}
	return 0.5, costFallback
}

func scoreCompare(ps *plannerStats, x *minisql.Compare) (float64, int) {
	c := ps.t.Column(x.Col)
	if c == nil {
		return 0.5, costFallback
	}
	if c.Field.Kind == dataset.KindString && x.Val.Kind == dataset.KindString {
		switch x.Op {
		case minisql.CmpEq:
			if c.CodeOf(x.Val.S) < 0 {
				return 0, costConst // folds to constant false
			}
			return 1 / float64(maxInt(ps.card[x.Col], 1)), costCatEq
		case minisql.CmpNe:
			if c.CodeOf(x.Val.S) < 0 {
				return 1, costConst // folds to constant true
			}
			return 1 - 1/float64(maxInt(ps.card[x.Col], 1)), costCatEq
		}
		return 0.5, costFallback
	}
	if c.Field.Kind == dataset.KindString || x.Val.Kind == dataset.KindString {
		return 0.5, costFallback // mixed-kind comparison: predicate closure
	}
	v := x.Val.Float()
	switch x.Op {
	case minisql.CmpEq:
		return pointSel(ps, x.Col, v), costNumRange
	case minisql.CmpNe:
		return 1 - pointSel(ps, x.Col, v), costNumRange
	case minisql.CmpLt:
		return rangeSel(ps, x.Col, math.Inf(-1), math.Nextafter(v, math.Inf(-1)), 1.0/3), costNumRange
	case minisql.CmpLe:
		return rangeSel(ps, x.Col, math.Inf(-1), v, 1.0/3), costNumRange
	case minisql.CmpGt:
		return rangeSel(ps, x.Col, math.Nextafter(v, math.Inf(1)), math.Inf(1), 1.0/3), costNumRange
	case minisql.CmpGe:
		return rangeSel(ps, x.Col, v, math.Inf(1), 1.0/3), costNumRange
	}
	return 0.5, costFallback
}

func scoreIn(ps *plannerStats, x *minisql.In) (float64, int) {
	c := ps.t.Column(x.Col)
	if c == nil {
		return 0.5, costFallback
	}
	if c.Field.Kind == dataset.KindString {
		matched := 0
		for _, v := range x.Vals {
			if c.CodeOf(v.String()) >= 0 {
				matched++
			}
		}
		if matched == 0 {
			return 0, costConst // folds to constant false
		}
		return float64(matched) / float64(maxInt(ps.card[x.Col], 1)), costSet
	}
	if len(x.Vals) == 0 {
		return 0, costConst
	}
	inRange := len(x.Vals)
	if ns, ok := ps.numeric[x.Col]; ok {
		inRange = 0
		for _, v := range x.Vals {
			if fv := v.Float(); fv >= ns.lo && fv <= ns.hi {
				inRange++
			}
		}
	}
	return math.Min(1, float64(inRange)/float64(maxInt(ps.card[x.Col], 20))), costSet
}

func scoreLike(ps *plannerStats, x *minisql.Like) (float64, int) {
	c := ps.t.Column(x.Col)
	if c == nil || c.Field.Kind != dataset.KindString {
		// LIKE over a numeric column stringifies every row — the most
		// expensive conjunct shape the engine has.
		return 0.5, costFallback
	}
	m := compileLikeMatcher(x.Pattern)
	matched := 0
	for _, s := range c.Dict() {
		if m(s) {
			matched++
		}
	}
	if matched == 0 {
		return 0, costConst // folds to constant false
	}
	return float64(matched) / float64(maxInt(ps.card[x.Col], 1)), costSet
}

// pointSel estimates equality against one numeric value: zero when the
// value lies outside the column's global envelope (a zone-certain miss),
// one over the dictionary cardinality when the column is dictionary
// encoded, a small default otherwise.
func pointSel(ps *plannerStats, col string, v float64) float64 {
	if ns, ok := ps.numeric[col]; ok && (v < ns.lo || v > ns.hi) {
		return 0
	}
	return 1 / float64(maxInt(ps.card[col], 20))
}

// rangeSel estimates the fraction of the column's global envelope a range
// predicate overlaps; def is the default when no envelope is known.
func rangeSel(ps *plannerStats, col string, lo, hi float64, def float64) float64 {
	ns, ok := ps.numeric[col]
	if !ok {
		if hi < lo {
			return 0 // inverted range matches nothing regardless of data
		}
		return def
	}
	a := math.Max(lo, ns.lo)
	b := math.Min(hi, ns.hi)
	if b < a {
		return 0
	}
	width := ns.hi - ns.lo
	if width <= 0 {
		return 1 // single-valued column, and the value is inside the range
	}
	f := (b - a) / width
	return math.Max(0, math.Min(f, 1))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// orderConjuncts sorts conjuncts by (selectivity, cost tier, provenance
// weight descending, written position). The written position is the final
// key, so fully tied conjuncts keep their written order — the determinism
// guarantee the planner documents.
func orderConjuncts(ps *plannerStats, conjs []minisql.Expr) (ordered []minisql.Expr, changed bool) {
	ordered, _, changed = orderConjunctsScored(ps, conjs)
	return ordered, changed
}

// orderConjunctsScored is orderConjuncts plus the per-conjunct audit trail:
// the selectivity and cost tier each conjunct was ordered by, in the chosen
// execution order. The scores exist anyway — keeping them is what lets
// EXPLAIN show why the planner picked the order it picked.
func orderConjunctsScored(ps *plannerStats, conjs []minisql.Expr) (ordered []minisql.Expr, info []ConjunctInfo, changed bool) {
	type scored struct {
		e    minisql.Expr
		sel  float64
		cost int
		prov int64
		idx  int
	}
	ss := make([]scored, len(conjs))
	for i, e := range conjs {
		sel, cost := scoreConjunct(ps, e)
		if math.IsNaN(sel) {
			sel = 0.5
		}
		ss[i] = scored{e: e, sel: sel, cost: cost, prov: ps.provWeight(e), idx: i}
	}
	sort.SliceStable(ss, func(i, j int) bool {
		if ss[i].sel != ss[j].sel {
			return ss[i].sel < ss[j].sel
		}
		if ss[i].cost != ss[j].cost {
			return ss[i].cost < ss[j].cost
		}
		if ss[i].prov != ss[j].prov {
			return ss[i].prov > ss[j].prov
		}
		return ss[i].idx < ss[j].idx
	})
	ordered = make([]minisql.Expr, len(ss))
	info = make([]ConjunctInfo, len(ss))
	for k, s := range ss {
		ordered[k] = s.e
		info[k] = ConjunctInfo{SQL: s.e.SQL(), Sel: s.sel, Cost: s.cost}
		if s.idx != k {
			changed = true
		}
	}
	return ordered, info, changed
}

// applyPlanOrder reorders the plan's conjuncts by the greedy score and
// recompiles the row predicate in that order, so short-circuit evaluation
// tests the cheapest, most selective leg first. The query AST — and with it
// Plan.SQL(), the result-cache key — is never touched.
func (p *Plan) applyPlanOrder(ps *plannerStats) error {
	ordered, info, changed := orderConjunctsScored(ps, p.conjs)
	p.conjInfo = info
	if !changed {
		return nil
	}
	pred, err := compilePredicate(p.t, &minisql.And{Args: ordered})
	if err != nil {
		return err
	}
	p.conjs, p.reordered, p.pred = ordered, true, pred
	return nil
}
