package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/dataset"
)

func benchTable(rows, zCard int) *dataset.Table {
	t := dataset.NewTable("b", []dataset.Field{
		{Name: "z", Kind: dataset.KindString},
		{Name: "x", Kind: dataset.KindInt},
		{Name: "p", Kind: dataset.KindString},
		{Name: "y", Kind: dataset.KindFloat},
	})
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < rows; i++ {
		p := "no"
		if rng.Intn(10) == 0 {
			p = "yes"
		}
		t.AppendRow(
			dataset.SV(fmt.Sprintf("z%04d", rng.Intn(zCard))),
			dataset.IV(int64(rng.Intn(10))),
			dataset.SV(p),
			dataset.FV(rng.Float64()*100),
		)
	}
	return t
}

const benchAgg = "SELECT x, SUM(y) AS s, z FROM b WHERE p = 'yes' GROUP BY z, x ORDER BY z, x"

func BenchmarkRowStoreSelectiveAggregate(b *testing.B) {
	db := NewRowStore(benchTable(100000, 100))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.ExecuteSQL(benchAgg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBitmapStoreSelectiveAggregate(b *testing.B) {
	db := NewBitmapStore(benchTable(100000, 100))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.ExecuteSQL(benchAgg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBitmapRangePredicate(b *testing.B) {
	db := NewBitmapStore(benchTable(100000, 100))
	q := "SELECT COUNT(*) FROM b WHERE x BETWEEN 2 AND 4"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.ExecuteSQL(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRowStoreRangePredicate(b *testing.B) {
	db := NewRowStore(benchTable(100000, 100))
	q := "SELECT COUNT(*) FROM b WHERE x BETWEEN 2 AND 4"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.ExecuteSQL(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPredicateCompilation(b *testing.B) {
	t := benchTable(1000, 10)
	db := NewRowStore(t)
	q := "SELECT COUNT(*) FROM b WHERE p = 'yes' AND x > 3 AND z LIKE 'z00%' AND NOT (y BETWEEN 10 AND 20)"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.ExecuteSQL(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGroupByCardinality(b *testing.B) {
	for _, zCard := range []int{10, 1000, 10000} {
		db := NewRowStore(benchTable(100000, zCard))
		q := "SELECT x, SUM(y) AS s, z FROM b GROUP BY z, x ORDER BY z, x"
		b.Run(fmt.Sprintf("groups=%d", zCard*10), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := db.ExecuteSQL(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
