package engine

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/dataset"
	"repro/internal/minisql"
)

// AutoStore routes each prepared plan to the best back-end for its query
// shape: it wraps a RowStore and a ColumnStore (sharded when asked) over the
// same tables and decides per query at Prepare time — the registry's
// backend=auto mode. Routing is pure dispatch: the returned plan is bound to
// the chosen sub-store, so execution, batching, and caching all behave
// exactly as if that store had been registered directly, and results are
// byte-identical whichever way a query routes (the differential fuzzer runs
// the auto store against every fixed backend).
//
// The decision table (documented in docs/ARCHITECTURE.md):
//
//	single segment or empty table        -> row     ("tiny": zone maps can't help)
//	no WHERE clause                      -> column  ("scan-agg": flat sinks win)
//	whole WHERE is one categorical  =    -> column  ("eq-dispatch": code-routed pass)
//	some conjunct zone-estimates <= 25%  -> column  ("selective-range": segments skip)
//	every conjunct is fallback-shaped    -> row     ("no-zones": column store would
//	                                                 row-test everything anyway)
//	otherwise                            -> column  ("default")
type AutoStore struct {
	planToggle
	row    *RowStore
	col    DB // *ColumnStore, or *ShardedStore when sharded
	tables map[string]*dataset.Table
	stats  map[string]*plannerStats // per table, for routing estimates
	nseg   map[string]int

	mu     sync.Mutex
	routes map[string]int64
}

// RouteCounted is implemented by stores that route plans across sub-stores;
// the serving layer surfaces the per-route totals on /stats and /metrics.
type RouteCounted interface {
	// RouteCounts returns cumulative plans routed, keyed by route name.
	RouteCounts() map[string]int64
}

// NewAutoStore builds an auto-routing store over in-memory tables. nshards
// splits the columnar half into contiguous segment shards (<= 1 means an
// unsharded ColumnStore); the row half is always unsharded.
func NewAutoStore(nshards int, tables ...*dataset.Table) *AutoStore {
	s := &AutoStore{
		row:    NewRowStore(tables...),
		tables: make(map[string]*dataset.Table, len(tables)),
		stats:  make(map[string]*plannerStats, len(tables)),
		nseg:   make(map[string]int, len(tables)),
		routes: make(map[string]int64),
	}
	var col DB
	var colOf func(name string) *colTable
	if nshards > 1 {
		sh := NewShardedStore(nshards, tables...)
		colOf = func(name string) *colTable { return sh.shards[name][0].cols[name] }
		col = sh
	} else {
		cs := NewColumnStore(tables...)
		colOf = func(name string) *colTable { return cs.cols[name] }
		col = cs
	}
	s.col = col
	for _, t := range tables {
		s.tables[t.Name] = t
		ct := colOf(t.Name)
		ps := newPlannerStats(t)
		ps.addZones(ct.zones, ct.intCodes)
		s.stats[t.Name] = ps
		s.nseg[t.Name] = (t.NumRows() + SegmentSize - 1) / SegmentSize
	}
	return s
}

// Name identifies the back-end.
func (s *AutoStore) Name() string { return "autostore" }

// Table returns the named base table, or nil.
func (s *AutoStore) Table(name string) *dataset.Table { return s.tables[name] }

// route decides the sub-store for one query and names the decision.
func (s *AutoStore) route(q *minisql.Query) (DB, string) {
	ps := s.stats[q.From]
	if ps == nil {
		return s.row, "unknown-table" // Prepare will fail with the real error
	}
	if s.nseg[q.From] <= 1 {
		// At most one segment there is nothing for zone maps to skip and no
		// scan to vectorize across segments; the row store's single tight
		// loop wins on overhead.
		return s.row, "tiny"
	}
	if q.Where == nil {
		return s.col, "scan-agg"
	}
	conjs := splitConjuncts(q.Where)
	if len(conjs) == 1 {
		if cmp, ok := conjs[0].(*minisql.Compare); ok && cmp.Op == minisql.CmpEq && cmp.Val.Kind == dataset.KindString {
			if c := ps.t.Column(cmp.Col); c != nil && c.Field.Kind == dataset.KindString {
				// Single categorical equality: the column store folds these
				// into one code-routed pass per segment (colEqGroup), with
				// zone maps still skipping per plan.
				return s.col, "eq-dispatch"
			}
		}
	}
	allFallback := true
	for _, c := range conjs {
		sel, cost := scoreConjunct(ps, c)
		if cost != costFallback {
			allFallback = false
		}
		if cost <= costNumRange && sel <= 0.25 {
			// A selective typed conjunct: zone maps prove segments empty and
			// masked evaluation keeps the rest cheap.
			return s.col, "selective-range"
		}
	}
	if allFallback {
		// No conjunct has a vectorized form or a zone test; the column store
		// would run the same row predicates without ever skipping a segment.
		return s.row, "no-zones"
	}
	return s.col, "default"
}

// Prepare routes the query and prepares it on the chosen sub-store; the
// returned plan is bound to that store, so Execute and ExecuteBatch run
// there with no further indirection.
func (s *AutoStore) Prepare(q *minisql.Query) (*Plan, error) {
	db, route := s.route(q)
	p, err := db.Prepare(q)
	if err != nil {
		return nil, err
	}
	p.route = route // observability only: surfaces in EXPLAIN / trace attrs
	s.mu.Lock()
	s.routes[route]++
	s.mu.Unlock()
	return p, nil
}

// RouteCounts returns cumulative plans routed, keyed by route name.
func (s *AutoStore) RouteCounts() map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, len(s.routes))
	for k, v := range s.routes {
		out[k] = v
	}
	return out
}

// SortedRoutes returns route names ordered by count descending then name —
// the stable order /stats emits.
func SortedRoutes(m map[string]int64) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Slice(names, func(i, j int) bool {
		if m[names[i]] != m[names[j]] {
			return m[names[i]] > m[names[j]]
		}
		return names[i] < names[j]
	})
	return names
}

// Execute runs a parsed query on the routed sub-store.
func (s *AutoStore) Execute(q *minisql.Query) (*Result, error) {
	p, err := s.Prepare(q)
	if err != nil {
		return nil, err
	}
	return p.Execute()
}

// ExecuteSQL parses and runs SQL text.
func (s *AutoStore) ExecuteSQL(sql string) (*Result, error) {
	q, err := minisql.Parse(sql)
	if err != nil {
		return nil, err
	}
	return s.Execute(q)
}

// ExecuteBatch forwards each plan to the sub-store that prepared it — one
// sub-batch per store, so cross-plan sharing still happens within each — and
// realigns the results with the input order.
func (s *AutoStore) ExecuteBatch(ctx context.Context, plans []*Plan) ([]*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	byDB := make(map[DB][]int)
	var order []DB
	for i, p := range plans {
		if p == nil {
			return nil, fmt.Errorf("engine: batch plan %d is nil", i)
		}
		if p.db != s.row && p.db != s.col {
			return nil, fmt.Errorf("engine: batch plan %d was prepared by a different back-end", i)
		}
		if _, ok := byDB[p.db]; !ok {
			order = append(order, p.db)
		}
		byDB[p.db] = append(byDB[p.db], i)
	}
	results := make([]*Result, len(plans))
	for _, db := range order {
		idx := byDB[db]
		sub := make([]*Plan, len(idx))
		for k, i := range idx {
			sub[k] = plans[i]
		}
		res, err := db.ExecuteBatch(ctx, sub)
		if err != nil {
			return nil, err
		}
		for k, i := range idx {
			results[i] = res[k]
		}
	}
	return results, nil
}

// Counters returns cumulative execution statistics summed over both
// sub-stores.
func (s *AutoStore) Counters() Counters {
	r, c := s.row.Counters(), s.col.Counters()
	return Counters{
		Queries:         r.Queries + c.Queries,
		RowsScanned:     r.RowsScanned + c.RowsScanned,
		SegmentsScanned: r.SegmentsScanned + c.SegmentsScanned,
		SegmentsSkipped: r.SegmentsSkipped + c.SegmentsSkipped,
		PlansPlanned:    r.PlansPlanned + c.PlansPlanned,
		PlansReordered:  r.PlansReordered + c.PlansReordered,
	}
}

// SetParallelism bounds scan workers on both sub-stores.
func (s *AutoStore) SetParallelism(n int) {
	s.row.SetParallelism(n)
	s.col.(Parallel).SetParallelism(n)
}

// SetPlanning toggles the greedy conjunct planner on both sub-stores.
func (s *AutoStore) SetPlanning(on bool) {
	s.planToggle.SetPlanning(on)
	s.row.SetPlanning(on)
	s.col.(Planner).SetPlanning(on)
}

// SkipProvenance returns the columnar half's skip attribution (the row store
// never skips).
func (s *AutoStore) SkipProvenance() map[SkipAttr]int64 {
	if sp, ok := s.col.(SkipAttributed); ok {
		return sp.SkipProvenance()
	}
	return nil
}

// NumSegments returns the columnar half's segment count for the named table
// (the Segmented interface).
func (s *AutoStore) NumSegments(table string) int {
	if seg, ok := s.col.(Segmented); ok {
		return seg.NumSegments(table)
	}
	return 0
}

// SegmentLoads returns the columnar half's distinct materialized segments.
func (s *AutoStore) SegmentLoads(table string) int64 {
	if sl, ok := s.col.(interface{ SegmentLoads(table string) int64 }); ok {
		return sl.SegmentLoads(table)
	}
	return 0
}

// NumShards returns the columnar half's shard count, or 0 when unsharded.
func (s *AutoStore) NumShards(table string) int {
	if sh, ok := s.col.(interface{ NumShards(table string) int }); ok {
		return sh.NumShards(table)
	}
	return 0
}

// ShardStats returns the columnar half's per-shard counters, or nil when
// unsharded (the ShardedDB interface).
func (s *AutoStore) ShardStats(table string) []ShardCounters {
	if sh, ok := s.col.(ShardedDB); ok {
		return sh.ShardStats(table)
	}
	return nil
}

// PoolStats reports the columnar half's scatter pool saturation, or zeros
// when unsharded.
func (s *AutoStore) PoolStats() (busy, capacity int) {
	if ps, ok := s.col.(interface{ PoolStats() (busy, capacity int) }); ok {
		return ps.PoolStats()
	}
	return 0, 0
}
