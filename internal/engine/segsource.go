package engine

import (
	"math"

	"repro/internal/dataset"
)

// SegmentSize is the fixed row count of one column-store segment: the unit
// of zone-map granularity, of vectorized predicate evaluation, and of the
// on-disk zpack block layout. 4096 rows keeps a segment's selection bitmap
// at 64 words and a segment's worth of one float64 column inside L1/L2.
const SegmentSize = 4096

// MaxIntDictCardinality bounds the distinct-value count an integer column
// may have and still get a build-time dictionary encoding (the same 4096 the
// bitmap store uses for its integer value indexes). Encoded columns let the
// flat group-by accumulator treat integer keys like categorical ones.
const MaxIntDictCardinality = 4096

// ZoneData holds one column's per-segment zone maps. Numeric columns carry
// min/max plus a NaN-presence flag (NaN compares false with everything, so
// it never lands in min/max — but it still matches != predicates);
// categorical columns carry a presence bitset over dictionary codes (Words
// words per segment).
type ZoneData struct {
	Min, Max []float64 // numeric columns: one entry per segment
	NaN      []bool
	Words    int      // categorical columns: bitset words per segment
	Present  []uint64 // categorical columns: nseg * Words presence bits
}

func (z *ZoneData) hasCode(s int, code int32) bool {
	return z.Present[s*z.Words+int(code>>6)]&(1<<(uint(code)&63)) != 0
}

// onlyCode reports whether code is the only dictionary code present in
// segment s.
func (z *ZoneData) onlyCode(s int, code int32) bool {
	base := s * z.Words
	for w := 0; w < z.Words; w++ {
		p := z.Present[base+w]
		if w == int(code>>6) {
			p &^= 1 << (uint(code) & 63)
		}
		if p != 0 {
			return false
		}
	}
	return true
}

// anyCode reports whether any code of the want bitset occurs in segment s.
func (z *ZoneData) anyCode(s int, want []uint64) bool {
	base := s * z.Words
	for w := 0; w < z.Words; w++ {
		if z.Present[base+w]&want[w] != 0 {
			return true
		}
	}
	return false
}

// IntDict is the build-time dictionary encoding of a low-cardinality integer
// column: Codes[i] indexes into the sorted distinct values Vals. For a lazy
// SegmentSource, Codes spans the full table and is filled in segment by
// segment alongside the column data.
type IntDict struct {
	Vals  []int64
	Codes []int32
}

// SegmentSource supplies a segmented table whose column data materializes
// lazily: the schema, dictionaries, zone maps, and integer dictionaries are
// available up front (cheap, footer-sized metadata), while the column data of
// a segment is decoded only when Load is first called for it. This is the
// seam the zpack persistent format plugs into — zone-map skipping works
// without ever deserializing skipped segments.
type SegmentSource interface {
	// Table returns the base table: full schema, dictionaries, and row count,
	// with column data slices preallocated but unfilled until Load.
	Table() *dataset.Table
	// NumSegments returns the segment count, ceil(rows / SegmentSize).
	NumSegments() int
	// Zone returns the named column's zone maps, or nil if unknown.
	Zone(col string) *ZoneData
	// IntDict returns the named integer column's dictionary encoding, or nil
	// when the column is not dictionary-encoded.
	IntDict(col string) *IntDict
	// Load materializes segment seg's rows into the table's column slices
	// (and into IntDict code slices). Load must be safe for concurrent use
	// and idempotent — the column store calls it for every segment a scan
	// visits, on every scan; implementations synchronize and load once.
	Load(seg int) error
}

// memSource adapts a fully in-memory table to the SegmentSource interface:
// everything is already materialized, so Load is a no-op. It is what
// NewColumnStore wraps its tables in, keeping one construction path for the
// eager and lazy cases.
type memSource struct {
	t     *dataset.Table
	nseg  int
	zones map[string]*ZoneData
	dicts map[string]*IntDict
}

// NewMemSource builds an eager SegmentSource over an in-memory table,
// computing its zone maps and integer dictionaries up front.
func NewMemSource(t *dataset.Table) SegmentSource {
	s := &memSource{
		t:     t,
		nseg:  (t.NumRows() + SegmentSize - 1) / SegmentSize,
		zones: ComputeZones(t),
		dicts: make(map[string]*IntDict),
	}
	for _, c := range t.Columns() {
		if c.Field.Kind == dataset.KindInt {
			if d := ComputeIntDict(c); d != nil {
				s.dicts[c.Field.Name] = d
			}
		}
	}
	return s
}

func (s *memSource) Table() *dataset.Table       { return s.t }
func (s *memSource) NumSegments() int            { return s.nseg }
func (s *memSource) Zone(col string) *ZoneData   { return s.zones[col] }
func (s *memSource) IntDict(col string) *IntDict { return s.dicts[col] }
func (s *memSource) Load(int) error              { return nil }

// ComputeZones builds every column's per-segment zone maps over a fully
// materialized table. It is the single definition of zone semantics: the
// in-memory column store uses it at construction and the zpack writer uses
// it at segment-seal time, so the skipping proofs agree byte for byte.
func ComputeZones(t *dataset.Table) map[string]*ZoneData {
	n := t.NumRows()
	nseg := (n + SegmentSize - 1) / SegmentSize
	zones := make(map[string]*ZoneData, t.NumCols())
	for _, c := range t.Columns() {
		z := &ZoneData{}
		if c.Field.Kind == dataset.KindString {
			z.Words = (c.Cardinality() + 63) / 64
			if z.Words == 0 {
				z.Words = 1
			}
			z.Present = make([]uint64, nseg*z.Words)
			for i, code := range c.Codes() {
				z.Present[(i/SegmentSize)*z.Words+int(code>>6)] |= 1 << (uint(code) & 63)
			}
		} else {
			z.Min = make([]float64, nseg)
			z.Max = make([]float64, nseg)
			z.NaN = make([]bool, nseg)
			for s := 0; s < nseg; s++ {
				z.Min[s] = math.Inf(1)
				z.Max[s] = math.Inf(-1)
			}
			update := func(i int, v float64) {
				s := i / SegmentSize
				if v != v {
					z.NaN[s] = true
					return
				}
				if v < z.Min[s] {
					z.Min[s] = v
				}
				if v > z.Max[s] {
					z.Max[s] = v
				}
			}
			if c.Field.Kind == dataset.KindInt {
				for i, v := range c.Ints() {
					update(i, float64(v))
				}
			} else {
				for i, v := range c.Floats() {
					update(i, v)
				}
			}
		}
		zones[c.Field.Name] = z
	}
	return zones
}

// ComputeIntDict builds the dictionary encoding of an integer column, or nil
// when the column has too many distinct values to be worth it.
func ComputeIntDict(c *dataset.Column) *IntDict {
	distinct := c.DistinctSorted()
	if len(distinct) > MaxIntDictCardinality {
		return nil
	}
	d := &IntDict{Vals: make([]int64, len(distinct))}
	codeOf := make(map[int64]int32, len(distinct))
	for i, v := range distinct {
		d.Vals[i] = v.I
		codeOf[v.I] = int32(i)
	}
	ints := c.Ints()
	d.Codes = make([]int32, len(ints))
	for i, v := range ints {
		d.Codes[i] = codeOf[v]
	}
	return d
}

// Segmented is implemented by back-ends that partition tables into zone-map
// segments; the serving layer surfaces the count on GET /datasets.
type Segmented interface {
	// NumSegments returns the segment count of the named table, or 0.
	NumSegments(table string) int
}
