package engine

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync/atomic"

	"repro/internal/dataset"
	"repro/internal/minisql"
)

// Result is the output relation of a query.
type Result struct {
	Cols []string
	Rows []dataset.Row
}

// ColIndex returns the position of an output column, or -1.
func (r *Result) ColIndex(name string) int {
	for i, c := range r.Cols {
		if c == name {
			return i
		}
	}
	return -1
}

// DB is a queryable storage back-end. All four stores implement it.
type DB interface {
	// Name identifies the back-end ("rowstore", "bitmapstore", "columnstore",
	// or "shardedstore").
	Name() string
	// Table returns the named base table, or nil.
	Table(name string) *dataset.Table
	// Prepare validates and column-resolves a parsed query into a reusable
	// plan bound to this back-end.
	Prepare(q *minisql.Query) (*Plan, error)
	// Execute runs a parsed query (Prepare + Plan.Execute).
	Execute(q *minisql.Query) (*Result, error)
	// ExecuteSQL parses and runs SQL text.
	ExecuteSQL(sql string) (*Result, error)
	// ExecuteBatch runs a batch of prepared plans as one request, sharing
	// work across plans over the same table: the row store serves every plan
	// in the batch from shared scans, the bitmap store computes common
	// predicate conjunct bitmaps once, and the column store evaluates common
	// predicate conjuncts segment-at-a-time once per scan worker. Results
	// align with plans.
	//
	// The context bounds the batch: cancellation is observed at store-specific
	// boundaries (segment boundaries for the column and sharded stores, scan
	// blocks for the row store, plan drains for the bitmap store) and the
	// batch returns ctx.Err(). A nil context is treated as context.Background.
	ExecuteBatch(ctx context.Context, plans []*Plan) ([]*Result, error)
	// Counters returns cumulative execution statistics.
	Counters() Counters
}

// Parallel is implemented by back-ends whose ExecuteBatch drains plans
// concurrently; n bounds the worker count (n <= 0 restores the default,
// GOMAXPROCS).
type Parallel interface {
	SetParallelism(n int)
}

// parLimit is the store-level worker bound both back-ends embed. The bound
// applies to every batch the store executes; concurrent callers see the
// last value written.
type parLimit struct {
	par atomic.Int32
}

// SetParallelism bounds the concurrent workers ExecuteBatch uses; n <= 0
// restores the default (GOMAXPROCS).
func (p *parLimit) SetParallelism(n int) { p.par.Store(int32(n)) }

func (p *parLimit) parallelism() int {
	if n := p.par.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// Counters accumulates execution statistics across queries.
//
// RowsScanned counts the rows an executor actually visits to produce a
// plan's matching set, so the number is comparable across back-ends even
// though each produces matches differently: the row store visits every row
// of each shared scan (one table length per scan worker), the bitmap store
// visits the candidate rows of the intersected index bitmaps (plus full
// table lengths when a plan falls back to scanning), and the column store
// visits the rows of every segment its zone maps could not prove empty.
// SegmentsSkipped is column-store only: the number of (plan, segment) pairs
// the zone maps proved empty, each saving a segment's worth of scanning.
// SegmentsScanned is its complement: the number of (worker, segment) pairs a
// scan actually materialized and visited.
// PlansPlanned counts Prepares where the greedy conjunct planner ran (two or
// more top-level conjuncts with planning enabled); PlansReordered counts the
// subset whose execution order actually changed away from written order.
type Counters struct {
	Queries         int64
	RowsScanned     int64
	SegmentsScanned int64
	SegmentsSkipped int64
	PlansPlanned    int64
	PlansReordered  int64
}

type counters struct {
	queries         atomic.Int64
	rowsScanned     atomic.Int64
	segmentsScanned atomic.Int64
	segmentsSkipped atomic.Int64
	plansPlanned    atomic.Int64
	plansReordered  atomic.Int64
}

func (c *counters) snapshot() Counters {
	return Counters{
		Queries:         c.queries.Load(),
		RowsScanned:     c.rowsScanned.Load(),
		SegmentsScanned: c.segmentsScanned.Load(),
		SegmentsSkipped: c.segmentsSkipped.Load(),
		PlansPlanned:    c.plansPlanned.Load(),
		PlansReordered:  c.plansReordered.Load(),
	}
}

// notePlanned records one planner run and whether it changed the order.
func (c *counters) notePlanned(reordered bool) {
	c.plansPlanned.Add(1)
	if reordered {
		c.plansReordered.Add(1)
	}
}

// rowIter produces the matching row indices in ascending order.
type rowIter func(yield func(i int))

func binValue(v float64, width float64) float64 {
	return math.Floor(v/width) * width
}

// cellValue evaluates a non-aggregate select item at row i.
func cellValue(c *dataset.Column, bin float64, i int) dataset.Value {
	if bin > 0 {
		return dataset.FV(binValue(c.Float(i), bin))
	}
	return c.Value(i)
}

// aggState accumulates one aggregate over one group.
type aggState struct {
	sum   float64
	count int64
	min   float64
	max   float64
}

func (a *aggState) add(v float64) {
	if a.count == 0 {
		a.min, a.max = v, v
	} else {
		// NaN is the identity for MIN/MAX: a NaN cell never displaces a real
		// bound AND a real value always displaces a NaN seed. Both directions
		// are needed to keep the fold associative — otherwise a shard whose
		// first matching cell is NaN would swallow its later real values,
		// diverging from the sequential fold.
		if v < a.min || (math.IsNaN(a.min) && !math.IsNaN(v)) {
			a.min = v
		}
		if v > a.max || (math.IsNaN(a.max) && !math.IsNaN(v)) {
			a.max = v
		}
	}
	a.sum += v
	a.count++
}

// merge folds a later partial accumulation into a: a's rows all precede o's
// (shards cover ascending row ranges), so the fold mirrors add's semantics —
// an empty side is the identity, min/max comparisons match add's (NaN is the
// MIN/MAX identity in both directions), and sums add. Summation order
// differs from the sequential fold only at shard boundaries, so SUM/AVG are
// bit-identical whenever the column's values accumulate exactly (integers,
// quarters — true of every fixture this repo ships); COUNT/MIN/MAX always are.
func (a *aggState) merge(o *aggState) {
	if o.count == 0 {
		return
	}
	if a.count == 0 {
		*a = *o
		return
	}
	if o.min < a.min || (math.IsNaN(a.min) && !math.IsNaN(o.min)) {
		a.min = o.min
	}
	if o.max > a.max || (math.IsNaN(a.max) && !math.IsNaN(o.max)) {
		a.max = o.max
	}
	a.sum += o.sum
	a.count += o.count
}

// value emits the aggregate. Over an empty match set COUNT is 0 and every
// other aggregate is NULL (SQL semantics).
func (a *aggState) value(f minisql.AggFunc) dataset.Value {
	switch f {
	case minisql.AggSum:
		if a.count == 0 {
			return dataset.NullValue
		}
		return dataset.FV(a.sum)
	case minisql.AggCount:
		return dataset.IV(a.count)
	case minisql.AggAvg:
		if a.count == 0 {
			return dataset.NullValue
		}
		return dataset.FV(a.sum / float64(a.count))
	case minisql.AggMin:
		if a.count == 0 {
			return dataset.NullValue
		}
		return dataset.FV(a.min)
	case minisql.AggMax:
		if a.count == 0 {
			return dataset.NullValue
		}
		return dataset.FV(a.max)
	}
	return dataset.Value{}
}

type group struct {
	keyVals  []dataset.Value
	aggs     []aggState
	firstRow int
}

// merge folds a later shard's accumulation of the same group into g, which
// keeps its keyVals and firstRow: g comes from the earlier shard, so its
// firstRow is the group's global first-seen representative.
func (g *group) merge(o *group) {
	for a := range g.aggs {
		g.aggs[a].merge(&o.aggs[a])
	}
}

func orderResult(res *Result, order []minisql.OrderItem) error {
	if len(order) == 0 {
		return nil
	}
	idx := make([]int, len(order))
	for i, o := range order {
		j := res.ColIndex(o.Col)
		if j < 0 {
			return fmt.Errorf("engine: ORDER BY column %q is not in the select list", o.Col)
		}
		idx[i] = j
	}
	sort.SliceStable(res.Rows, func(a, b int) bool {
		ra, rb := res.Rows[a], res.Rows[b]
		for i, j := range idx {
			c := ra[j].Compare(rb[j])
			if c == 0 {
				continue
			}
			if order[i].Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	return nil
}
