package engine

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"repro/internal/dataset"
	"repro/internal/minisql"
)

// Result is the output relation of a query.
type Result struct {
	Cols []string
	Rows []dataset.Row
}

// ColIndex returns the position of an output column, or -1.
func (r *Result) ColIndex(name string) int {
	for i, c := range r.Cols {
		if c == name {
			return i
		}
	}
	return -1
}

// DB is a queryable storage back-end. Both stores implement it.
type DB interface {
	// Name identifies the back-end ("rowstore" or "bitmapstore").
	Name() string
	// Table returns the named base table, or nil.
	Table(name string) *dataset.Table
	// Execute runs a parsed query.
	Execute(q *minisql.Query) (*Result, error)
	// ExecuteSQL parses and runs SQL text.
	ExecuteSQL(sql string) (*Result, error)
	// Counters returns cumulative execution statistics.
	Counters() Counters
}

// Counters accumulates execution statistics across queries.
type Counters struct {
	Queries     int64
	RowsScanned int64
}

type counters struct {
	queries     atomic.Int64
	rowsScanned atomic.Int64
}

func (c *counters) snapshot() Counters {
	return Counters{Queries: c.queries.Load(), RowsScanned: c.rowsScanned.Load()}
}

// rowIter produces the matching row indices in ascending order.
type rowIter func(yield func(i int))

// runQuery executes the projection / aggregation / ordering pipeline over
// the matching rows. The two back-ends differ only in how iter is produced.
func runQuery(t *dataset.Table, q *minisql.Query, iter rowIter) (*Result, error) {
	cols := make([]string, len(q.Select))
	hasAgg := false
	for i, s := range q.Select {
		cols[i] = s.OutName()
		if s.Agg != minisql.AggNone {
			hasAgg = true
		}
		if s.Col != "*" && !t.HasColumn(s.Col) {
			return nil, fmt.Errorf("engine: table %q has no column %q", t.Name, s.Col)
		}
	}
	for _, g := range q.GroupBy {
		if !t.HasColumn(g.Col) {
			return nil, fmt.Errorf("engine: table %q has no column %q", t.Name, g.Col)
		}
	}
	res := &Result{Cols: cols}
	if hasAgg || len(q.GroupBy) > 0 {
		if err := runAggregate(t, q, iter, res); err != nil {
			return nil, err
		}
	} else {
		runProject(t, q, iter, res)
	}
	if err := orderResult(res, q.OrderBy); err != nil {
		return nil, err
	}
	if q.Limit >= 0 && len(res.Rows) > q.Limit {
		res.Rows = res.Rows[:q.Limit]
	}
	return res, nil
}

func binValue(v float64, width float64) float64 {
	return math.Floor(v/width) * width
}

// cellValue evaluates a non-aggregate select item at row i.
func cellValue(c *dataset.Column, bin float64, i int) dataset.Value {
	if bin > 0 {
		return dataset.FV(binValue(c.Float(i), bin))
	}
	return c.Value(i)
}

func runProject(t *dataset.Table, q *minisql.Query, iter rowIter, res *Result) {
	colRefs := make([]*dataset.Column, len(q.Select))
	for j, s := range q.Select {
		colRefs[j] = t.Column(s.Col)
	}
	iter(func(i int) {
		row := make(dataset.Row, len(q.Select))
		for j, s := range q.Select {
			row[j] = cellValue(colRefs[j], s.Bin, i)
		}
		res.Rows = append(res.Rows, row)
	})
}

// aggState accumulates one aggregate over one group.
type aggState struct {
	sum   float64
	count int64
	min   float64
	max   float64
}

func (a *aggState) add(v float64) {
	if a.count == 0 {
		a.min, a.max = v, v
	} else {
		if v < a.min {
			a.min = v
		}
		if v > a.max {
			a.max = v
		}
	}
	a.sum += v
	a.count++
}

func (a *aggState) value(f minisql.AggFunc) dataset.Value {
	switch f {
	case minisql.AggSum:
		return dataset.FV(a.sum)
	case minisql.AggCount:
		return dataset.IV(a.count)
	case minisql.AggAvg:
		if a.count == 0 {
			return dataset.FV(0)
		}
		return dataset.FV(a.sum / float64(a.count))
	case minisql.AggMin:
		return dataset.FV(a.min)
	case minisql.AggMax:
		return dataset.FV(a.max)
	}
	return dataset.Value{}
}

type group struct {
	keyVals  []dataset.Value
	aggs     []aggState
	firstRow int
	order    int
}

func runAggregate(t *dataset.Table, q *minisql.Query, iter rowIter, res *Result) error {
	// Resolve group key columns.
	keyCols := make([]*dataset.Column, len(q.GroupBy))
	for i, g := range q.GroupBy {
		keyCols[i] = t.Column(g.Col)
	}
	// Resolve aggregate inputs (nil for COUNT(*)).
	var aggItems []int // indices into q.Select that are aggregates
	aggCols := make([]*dataset.Column, 0, len(q.Select))
	for j, s := range q.Select {
		if s.Agg == minisql.AggNone {
			continue
		}
		aggItems = append(aggItems, j)
		if s.Col == "*" {
			aggCols = append(aggCols, nil)
		} else {
			aggCols = append(aggCols, t.Column(s.Col))
		}
	}
	groups := make(map[string]*group)
	var groupList []*group
	keyBuf := make([]byte, 0, 64)
	iter(func(i int) {
		keyBuf = keyBuf[:0]
		for k, c := range keyCols {
			if c.Field.Kind == dataset.KindString && q.GroupBy[k].Bin == 0 {
				keyBuf = binary.AppendVarint(keyBuf, int64(c.Code(i)))
			} else {
				v := c.Float(i)
				if q.GroupBy[k].Bin > 0 {
					v = binValue(v, q.GroupBy[k].Bin)
				}
				keyBuf = binary.LittleEndian.AppendUint64(keyBuf, math.Float64bits(v))
			}
			keyBuf = append(keyBuf, 0xff)
		}
		g, ok := groups[string(keyBuf)]
		if !ok {
			g = &group{
				keyVals:  make([]dataset.Value, len(keyCols)),
				aggs:     make([]aggState, len(aggItems)),
				firstRow: i,
				order:    len(groupList),
			}
			for k, c := range keyCols {
				g.keyVals[k] = cellValue(c, q.GroupBy[k].Bin, i)
			}
			groups[string(keyBuf)] = g
			groupList = append(groupList, g)
		}
		for a, c := range aggCols {
			if c == nil {
				g.aggs[a].add(0) // COUNT(*): only count matters
			} else {
				g.aggs[a].add(c.Float(i))
			}
		}
	})
	// An aggregate with no GROUP BY always yields exactly one row, even over
	// an empty match set (SQL semantics).
	if len(q.GroupBy) == 0 && len(groupList) == 0 {
		groupList = append(groupList, &group{aggs: make([]aggState, len(aggItems)), firstRow: -1})
	}
	// Emit one output row per group in first-seen order; orderResult sorts.
	groupKeyIx := func(col string, bin float64) int {
		for k, g := range q.GroupBy {
			if g.Col == col && g.Bin == bin {
				return k
			}
		}
		return -1
	}
	for _, g := range groupList {
		row := make(dataset.Row, len(q.Select))
		ai := 0
		for j, s := range q.Select {
			if s.Agg != minisql.AggNone {
				row[j] = g.aggs[ai].value(s.Agg)
				ai++
				continue
			}
			if k := groupKeyIx(s.Col, s.Bin); k >= 0 {
				row[j] = g.keyVals[k]
				continue
			}
			// Non-grouped plain column: representative value from the
			// group's first row (the query author asserts dependence).
			if g.firstRow < 0 {
				row[j] = dataset.NullValue
			} else {
				row[j] = cellValue(t.Column(s.Col), s.Bin, g.firstRow)
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return nil
}

func orderResult(res *Result, order []minisql.OrderItem) error {
	if len(order) == 0 {
		return nil
	}
	idx := make([]int, len(order))
	for i, o := range order {
		j := res.ColIndex(o.Col)
		if j < 0 {
			return fmt.Errorf("engine: ORDER BY column %q is not in the select list", o.Col)
		}
		idx[i] = j
	}
	sort.SliceStable(res.Rows, func(a, b int) bool {
		ra, rb := res.Rows[a], res.Rows[b]
		for i, j := range idx {
			c := ra[j].Compare(rb[j])
			if c == 0 {
				continue
			}
			if order[i].Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	return nil
}
