package engine

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/minisql"
)

// Differential fuzzer: random queries over random datasets, executed on every
// store variant with conjunct order shuffled vs. planner-ordered, asserting
// byte-identical results against a planning-off RowStore oracle. The planner
// reorders compiled conjuncts, the auto store reroutes whole plans, and the
// column store masks late conjunct evaluation — none of it may ever change a
// result byte.

// fuzzTable builds a random table: two categorical columns of random
// cardinality, an int column, and a float column restricted to quarters
// (dyadic rationals accumulate exactly, so sharded SUM/AVG stay bit-identical
// to the sequential fold) with occasional NaN.
func fuzzTable(rng *rand.Rand) *dataset.Table {
	t := dataset.NewTable("t", []dataset.Field{
		{Name: "c0", Kind: dataset.KindString},
		{Name: "c1", Kind: dataset.KindString},
		{Name: "n", Kind: dataset.KindInt},
		{Name: "f", Kind: dataset.KindFloat},
	})
	rowChoices := []int{0, 3, 100, SegmentSize, SegmentSize + 5, 2*SegmentSize + 123}
	rows := rowChoices[rng.Intn(len(rowChoices))]
	card0 := 1 + rng.Intn(12)
	card1 := 1 + rng.Intn(5)
	for i := 0; i < rows; i++ {
		f := float64(rng.Intn(400)-100) / 4
		if rng.Intn(40) == 0 {
			f = math.NaN()
		}
		t.AppendRow(
			dataset.SV(fmt.Sprintf("v%d", rng.Intn(card0))),
			dataset.SV(fmt.Sprintf("w%d", rng.Intn(card1))),
			dataset.IV(int64(rng.Intn(50)-10)),
			dataset.FV(f),
		)
	}
	return t
}

// fuzzLeaf builds one random predicate leaf, mixing hits, guaranteed misses
// (unseen values, inverted ranges), and deliberately mis-typed conjuncts
// (LIKE over a numeric column) that force the fallback path.
func fuzzLeaf(rng *rand.Rand) minisql.Expr {
	catCol := []string{"c0", "c1"}[rng.Intn(2)]
	numCol := []string{"n", "f"}[rng.Intn(2)]
	catVal := func() dataset.Value {
		if rng.Intn(5) == 0 {
			return dataset.SV("zz-unseen")
		}
		return dataset.SV(fmt.Sprintf("%c%d", "vw"[rng.Intn(2)], rng.Intn(13)))
	}
	numVal := func() dataset.Value {
		if rng.Intn(2) == 0 {
			return dataset.IV(int64(rng.Intn(80) - 20))
		}
		return dataset.FV(float64(rng.Intn(500)-150) / 4)
	}
	switch rng.Intn(7) {
	case 0:
		op := []minisql.CmpOp{minisql.CmpEq, minisql.CmpNe}[rng.Intn(2)]
		return &minisql.Compare{Col: catCol, Op: op, Val: catVal()}
	case 1:
		op := minisql.CmpOp(rng.Intn(6))
		return &minisql.Compare{Col: numCol, Op: op, Val: numVal()}
	case 2:
		vals := make([]dataset.Value, 1+rng.Intn(3))
		for i := range vals {
			vals[i] = catVal()
		}
		return &minisql.In{Col: catCol, Vals: vals}
	case 3:
		vals := make([]dataset.Value, 1+rng.Intn(3))
		for i := range vals {
			vals[i] = numVal()
		}
		return &minisql.In{Col: numCol, Vals: vals}
	case 4:
		pats := []string{"v%", "w%", "%1", "%_%", "v_", "zz%"}
		col := catCol
		if rng.Intn(6) == 0 {
			col = numCol // fallback-shaped: LIKE over a numeric column
		}
		return &minisql.Like{Col: col, Pattern: pats[rng.Intn(len(pats))]}
	case 5:
		lo, hi := numVal(), numVal()
		return &minisql.Between{Col: numCol, Lo: lo, Hi: hi}
	default:
		op := minisql.CmpOp(rng.Intn(6))
		return &minisql.Compare{Col: numCol, Op: op, Val: numVal()}
	}
}

// fuzzConjunct wraps leaves into composite shapes occasionally.
func fuzzConjunct(rng *rand.Rand) minisql.Expr {
	switch rng.Intn(6) {
	case 0:
		return &minisql.Or{Args: []minisql.Expr{fuzzLeaf(rng), fuzzLeaf(rng)}}
	case 1:
		return &minisql.Not{Arg: fuzzLeaf(rng)}
	default:
		return fuzzLeaf(rng)
	}
}

// fuzzQuery builds one random query over the fuzz table schema.
func fuzzQuery(rng *rand.Rand) *minisql.Query {
	q := &minisql.Query{From: "t", Limit: -1}
	nconj := rng.Intn(5)
	if nconj == 1 {
		q.Where = fuzzConjunct(rng)
	} else if nconj > 1 {
		args := make([]minisql.Expr, nconj)
		for i := range args {
			args[i] = fuzzConjunct(rng)
		}
		q.Where = &minisql.And{Args: args}
	}
	aggCols := []string{"n", "f", "*"} // "*" means COUNT(*)
	aggFns := []minisql.AggFunc{minisql.AggSum, minisql.AggAvg, minisql.AggCount, minisql.AggMin, minisql.AggMax}
	addAggs := func() {
		for i := 0; i <= rng.Intn(2); i++ {
			col := aggCols[rng.Intn(len(aggCols))]
			if col == "*" {
				q.Select = append(q.Select, minisql.SelectItem{Agg: minisql.AggCount, Col: "*", Alias: fmt.Sprintf("a%d", i)})
			} else {
				q.Select = append(q.Select, minisql.SelectItem{Agg: aggFns[rng.Intn(len(aggFns))], Col: col, Alias: fmt.Sprintf("a%d", i)})
			}
		}
	}
	switch rng.Intn(4) {
	case 0: // plain projection, scan order
		q.Select = []minisql.SelectItem{{Col: "c0"}, {Col: "n"}, {Col: "f"}}
	case 1: // global aggregate
		addAggs()
	default: // grouped aggregate, 1-2 keys, occasionally binned
		nkeys := 1 + rng.Intn(2)
		cols := []string{"c0", "c1"}
		for k := 0; k < nkeys; k++ {
			gk := minisql.GroupKey{Col: cols[k]}
			if rng.Intn(6) == 0 {
				gk = minisql.GroupKey{Col: "f", Bin: 2}
			}
			q.GroupBy = append(q.GroupBy, gk)
			q.Select = append(q.Select, minisql.SelectItem{Col: gk.Col, Bin: gk.Bin})
		}
		addAggs()
	}
	if rng.Intn(3) == 0 {
		q.Limit = rng.Intn(20)
	}
	return q
}

// shuffleWhere returns a copy of q whose top-level AND legs are permuted, or
// nil when there is nothing to shuffle. The copy shares sub-expressions: the
// engine never mutates the AST.
func shuffleWhere(q *minisql.Query, rng *rand.Rand) *minisql.Query {
	and, ok := q.Where.(*minisql.And)
	if !ok || len(and.Args) < 2 {
		return nil
	}
	perm := rng.Perm(len(and.Args))
	args := make([]minisql.Expr, len(and.Args))
	for i, j := range perm {
		args[i] = and.Args[j]
	}
	qq := *q
	qq.Where = &minisql.And{Args: args}
	return &qq
}

// encodeResult renders a result to a canonical string for byte comparison.
// Value.String distinguishes NULL, NaN, ints, and floats exactly.
func encodeResult(res *Result) string {
	var sb strings.Builder
	sb.WriteString(strings.Join(res.Cols, "\x1f"))
	for _, row := range res.Rows {
		sb.WriteByte('\n')
		for j, v := range row {
			if j > 0 {
				sb.WriteByte('\x1f')
			}
			sb.WriteString(v.String())
		}
	}
	return sb.String()
}

type fuzzVariant struct {
	name     string
	db       DB
	planning bool
}

func fuzzVariants(tb *dataset.Table) []fuzzVariant {
	var out []fuzzVariant
	mk := func(name string, db DB) {
		out = append(out, fuzzVariant{name + "/plan", db, true})
		out = append(out, fuzzVariant{name + "/noplan", db, false})
	}
	mk("row", NewRowStore(tb))
	mk("bitmap", NewBitmapStore(tb))
	mk("column", NewColumnStore(tb))
	mk("sharded", NewShardedStore(3, tb))
	mk("auto", NewAutoStore(1, tb))
	mk("auto3", NewAutoStore(3, tb))
	return out
}

// diffOne runs one differential round: one random dataset, a handful of
// random queries, every store variant, written and shuffled conjunct order,
// single and batch execution — all against a planning-off RowStore oracle.
func diffOne(t *testing.T, dataSeed, querySeed int64) {
	t.Helper()
	drng := rand.New(rand.NewSource(dataSeed))
	tb := fuzzTable(drng)

	qrng := rand.New(rand.NewSource(querySeed))
	queries := make([]*minisql.Query, 4)
	for i := range queries {
		queries[i] = fuzzQuery(qrng)
	}

	oracle := NewRowStore(tb)
	oracle.SetPlanning(false)
	want := make([]string, len(queries))
	for i, q := range queries {
		res, err := oracle.Execute(q)
		if err != nil {
			t.Fatalf("oracle %q: %v", q.SQL(), err)
		}
		want[i] = encodeResult(res)
	}

	for _, v := range fuzzVariants(tb) {
		if p, ok := v.db.(Planner); ok {
			p.SetPlanning(v.planning)
		}
		// Single execution, written then shuffled conjunct order.
		for i, q := range queries {
			res, err := v.db.Execute(q)
			if err != nil {
				t.Fatalf("%s %q: %v", v.name, q.SQL(), err)
			}
			if got := encodeResult(res); got != want[i] {
				t.Fatalf("%s mismatch on %q\n got: %s\nwant: %s", v.name, q.SQL(), got, want[i])
			}
			if sq := shuffleWhere(q, qrng); sq != nil {
				res, err := v.db.Execute(sq)
				if err != nil {
					t.Fatalf("%s shuffled %q: %v", v.name, sq.SQL(), err)
				}
				if got := encodeResult(res); got != want[i] {
					t.Fatalf("%s shuffled mismatch on %q\n got: %s\nwant: %s", v.name, sq.SQL(), got, want[i])
				}
			}
		}
		// Batch execution: same plans, shared-scan path.
		plans := make([]*Plan, len(queries))
		var err error
		for i, q := range queries {
			if plans[i], err = v.db.Prepare(q); err != nil {
				t.Fatalf("%s prepare %q: %v", v.name, q.SQL(), err)
			}
		}
		results, err := v.db.ExecuteBatch(context.Background(), plans)
		if err != nil {
			t.Fatalf("%s batch: %v", v.name, err)
		}
		for i, res := range results {
			if got := encodeResult(res); got != want[i] {
				t.Fatalf("%s batch mismatch on %q\n got: %s\nwant: %s", v.name, queries[i].SQL(), got, want[i])
			}
		}
	}
}

// TestDifferentialQueryBounded is the deterministic slice of the fuzzer that
// runs on every `go test` (and under -race in CI): a fixed grid of seed
// pairs, including the committed fuzz corpus seeds.
func TestDifferentialQueryBounded(t *testing.T) {
	iters := 30
	if testing.Short() {
		iters = 8
	}
	for i := 0; i < iters; i++ {
		i := i
		t.Run(fmt.Sprintf("seed%d", i), func(t *testing.T) {
			diffOne(t, int64(i*7+1), int64(i*13+2))
		})
	}
}

// FuzzDifferentialQuery is the open-ended generator: go test -fuzz explores
// seed pairs beyond the committed corpus in testdata/fuzz.
func FuzzDifferentialQuery(f *testing.F) {
	f.Add(int64(1), int64(2))
	f.Add(int64(8), int64(15))
	f.Add(int64(99), int64(3))
	f.Add(int64(4096), int64(4096))
	f.Add(int64(-7), int64(1<<40))
	f.Fuzz(func(t *testing.T, dataSeed, querySeed int64) {
		diffOne(t, dataSeed, querySeed)
	})
}
