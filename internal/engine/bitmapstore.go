package engine

import (
	"context"
	"fmt"
	"math"
	"sync"

	"repro/internal/dataset"
	"repro/internal/minisql"
	"repro/internal/roaring"
	"repro/internal/trace"
)

// BitmapStore is the in-memory "Roaring Bitmap Database" of the paper: a
// column-oriented store where every distinct value of every indexed
// categorical column has a roaring bitmap of the rows holding it. Conjunctive
// equality / IN predicates are answered with bitmap intersections; predicates
// the index cannot answer are post-filtered inside the candidate set.
//
// Beyond the paper's prototype, integer columns with at most
// maxIntIndexCardinality distinct values are also bitmap-indexed, which
// answers range predicates (<, <=, >, >=, BETWEEN) by unioning the value
// bitmaps inside the range — the "multiple range based filters" extension
// named in the paper's future work (Section 10.1).
type BitmapStore struct {
	parLimit
	planToggle
	tables     map[string]*dataset.Table
	indexes    map[string]tableIndex
	intIndexes map[string]map[string]*intIndex
	stats      counters
}

// tableIndex maps column name -> dictionary code -> row bitmap.
type tableIndex map[string][]*roaring.Bitmap

// intIndex is a value-ordered bitmap index over a low-cardinality integer
// column.
type intIndex struct {
	keys []int64 // sorted distinct values
	bms  map[int64]*roaring.Bitmap
}

// maxIntIndexCardinality bounds the distinct-value count an integer column
// may have and still be bitmap-indexed (the same 4096 constant roaring uses
// for the array/bitmap container boundary).
const maxIntIndexCardinality = 4096

// NewBitmapStore builds a bitmap store, indexing all categorical columns of
// every table (the paper's default policy: index categoricals, leave
// measures unindexed) plus low-cardinality integer columns for range
// predicates.
func NewBitmapStore(tables ...*dataset.Table) *BitmapStore {
	s := &BitmapStore{
		tables:     make(map[string]*dataset.Table, len(tables)),
		indexes:    make(map[string]tableIndex, len(tables)),
		intIndexes: make(map[string]map[string]*intIndex, len(tables)),
	}
	for _, t := range tables {
		s.tables[t.Name] = t
		s.indexes[t.Name] = buildIndex(t)
		s.intIndexes[t.Name] = buildIntIndexes(t)
	}
	return s
}

func buildIntIndexes(t *dataset.Table) map[string]*intIndex {
	out := make(map[string]*intIndex)
	for _, c := range t.Columns() {
		if c.Field.Kind != dataset.KindInt {
			continue
		}
		distinct := c.DistinctSorted()
		if len(distinct) > maxIntIndexCardinality {
			continue
		}
		ix := &intIndex{bms: make(map[int64]*roaring.Bitmap, len(distinct))}
		for _, v := range distinct {
			ix.keys = append(ix.keys, v.I)
			ix.bms[v.I] = roaring.New()
		}
		for i, v := range c.Ints() {
			ix.bms[v].Add(uint32(i))
		}
		for _, b := range ix.bms {
			b.RunOptimize()
		}
		out[c.Field.Name] = ix
	}
	return out
}

// rangeUnion returns the union of value bitmaps for keys in [lo, hi]
// (inclusive bounds, math.MinInt64/MaxInt64 for open ends).
func (ix *intIndex) rangeUnion(lo, hi int64) *roaring.Bitmap {
	res := roaring.New()
	for _, k := range ix.keys {
		if k < lo {
			continue
		}
		if k > hi {
			break
		}
		res = res.Or(ix.bms[k])
	}
	return res
}

func buildIndex(t *dataset.Table) tableIndex {
	ix := make(tableIndex)
	for _, name := range t.CategoricalColumns() {
		c := t.Column(name)
		bms := make([]*roaring.Bitmap, c.Cardinality())
		for i := range bms {
			bms[i] = roaring.New()
		}
		for i, code := range c.Codes() {
			bms[code].Add(uint32(i))
		}
		for _, b := range bms {
			b.RunOptimize()
		}
		ix[name] = bms
	}
	return ix
}

// Name identifies the back-end.
func (s *BitmapStore) Name() string { return "bitmapstore" }

// Table returns the named base table, or nil.
func (s *BitmapStore) Table(name string) *dataset.Table { return s.tables[name] }

// Counters returns cumulative execution statistics.
func (s *BitmapStore) Counters() Counters { return s.stats.snapshot() }

// IndexSizeBytes reports the total footprint of the bitmap indexes of a
// table, for diagnostics.
func (s *BitmapStore) IndexSizeBytes(table string) int {
	n := 0
	for _, bms := range s.indexes[table] {
		for _, b := range bms {
			n += b.SizeBytes()
		}
	}
	return n
}

// planBitmap tries to answer a predicate entirely from the index. It returns
// (bitmap, true) on success. total is the number of rows in the table,
// needed to complement for NOT / !=.
func (s *BitmapStore) planBitmap(t *dataset.Table, ix tableIndex, e minisql.Expr, total int) (*roaring.Bitmap, bool) {
	switch x := e.(type) {
	case *minisql.And:
		parts := make([]*roaring.Bitmap, 0, len(x.Args))
		for _, a := range x.Args {
			b, ok := s.planBitmap(t, ix, a, total)
			if !ok {
				return nil, false
			}
			parts = append(parts, b)
		}
		return roaring.AndAll(parts...), true
	case *minisql.Or:
		res := roaring.New()
		for _, a := range x.Args {
			b, ok := s.planBitmap(t, ix, a, total)
			if !ok {
				return nil, false
			}
			res = res.Or(b)
		}
		return res, true
	case *minisql.Not:
		b, ok := s.planBitmap(t, ix, x.Arg, total)
		if !ok {
			return nil, false
		}
		return roaring.FromRange(0, uint32(total)).AndNot(b), true
	case *minisql.Compare:
		if bms, indexed := ix[x.Col]; indexed && x.Val.Kind == dataset.KindString {
			switch x.Op {
			case minisql.CmpEq:
				code := t.Column(x.Col).CodeOf(x.Val.S)
				if code < 0 {
					return roaring.New(), true
				}
				return bms[code], true
			case minisql.CmpNe:
				code := t.Column(x.Col).CodeOf(x.Val.S)
				all := roaring.FromRange(0, uint32(total))
				if code < 0 {
					return all, true
				}
				return all.AndNot(bms[code]), true
			}
			return nil, false
		}
		if ii, ok := s.intIndexes[t.Name][x.Col]; ok && x.Val.Kind != dataset.KindString {
			return planIntCompare(ii, x, total), true
		}
		return nil, false
	case *minisql.In:
		if bms, indexed := ix[x.Col]; indexed {
			res := roaring.New()
			for _, v := range x.Vals {
				if code := t.Column(x.Col).CodeOf(v.String()); code >= 0 {
					res = res.Or(bms[code])
				}
			}
			return res, true
		}
		if ii, ok := s.intIndexes[t.Name][x.Col]; ok {
			res := roaring.New()
			for _, v := range x.Vals {
				// Fractional values can never equal an integer cell; probing
				// the index with a truncated key would match the wrong rows.
				f := v.Float()
				if f != math.Trunc(f) {
					continue
				}
				if b, present := ii.bms[int64(f)]; present {
					res = res.Or(b)
				}
			}
			return res, true
		}
		return nil, false
	case *minisql.Between:
		ii, ok := s.intIndexes[t.Name][x.Col]
		if !ok || x.Lo.Kind == dataset.KindString || x.Hi.Kind == dataset.KindString {
			return nil, false
		}
		lo := int64(math.Ceil(x.Lo.Float()))
		hi := int64(math.Floor(x.Hi.Float()))
		return ii.rangeUnion(lo, hi), true
	}
	return nil, false
}

// planIntCompare answers a numeric comparison from an integer value index.
func planIntCompare(ii *intIndex, x *minisql.Compare, total int) *roaring.Bitmap {
	v := x.Val.Float()
	switch x.Op {
	case minisql.CmpEq:
		if v == math.Trunc(v) {
			if b, ok := ii.bms[int64(v)]; ok {
				return b
			}
		}
		return roaring.New()
	case minisql.CmpNe:
		all := roaring.FromRange(0, uint32(total))
		if v == math.Trunc(v) {
			if b, ok := ii.bms[int64(v)]; ok {
				return all.AndNot(b)
			}
		}
		return all
	case minisql.CmpLt:
		return ii.rangeUnion(math.MinInt64, int64(math.Ceil(v))-1)
	case minisql.CmpLe:
		return ii.rangeUnion(math.MinInt64, int64(math.Floor(v)))
	case minisql.CmpGt:
		return ii.rangeUnion(int64(math.Floor(v))+1, math.MaxInt64)
	case minisql.CmpGe:
		return ii.rangeUnion(int64(math.Ceil(v)), math.MaxInt64)
	}
	return nil
}

// plannerStats builds the scoring snapshot from the store's own metadata:
// categorical dictionary cardinalities plus the integer value indexes, whose
// sorted keys give both cardinality and the column's global envelope.
func (s *BitmapStore) plannerStats(t *dataset.Table) *plannerStats {
	ps := newPlannerStats(t)
	for col, ii := range s.intIndexes[t.Name] {
		if len(ii.keys) == 0 {
			continue
		}
		ps.card[col] = len(ii.keys)
		ps.numeric[col] = numStat{lo: float64(ii.keys[0]), hi: float64(ii.keys[len(ii.keys)-1])}
	}
	return ps
}

// Prepare validates and column-resolves a parsed query into a reusable plan.
// With planning on, the conjuncts planAccess walks (index probes first, then
// the residual) run in the greedy planner's order.
func (s *BitmapStore) Prepare(q *minisql.Query) (*Plan, error) {
	p, err := newPlan(s, s.tables[q.From], q)
	if err != nil {
		return nil, err
	}
	if s.planningOn() && len(p.conjs) > 1 {
		if err := p.applyPlanOrder(s.plannerStats(p.t)); err != nil {
			return nil, err
		}
		s.stats.notePlanned(p.reordered)
	}
	return p, nil
}

// Execute runs a parsed query. Fully indexable predicates iterate only the
// bitmap; partially indexable conjunctions intersect the indexable legs and
// post-filter the rest; everything else falls back to a scan.
func (s *BitmapStore) Execute(q *minisql.Query) (*Result, error) {
	p, err := s.Prepare(q)
	if err != nil {
		return nil, err
	}
	return p.Execute()
}

// runPlan executes one prepared plan without cross-plan sharing.
func (s *BitmapStore) runPlan(p *Plan) (*Result, error) {
	iter, scanned, err := s.planAccess(p, nil)
	if err != nil {
		return nil, err
	}
	s.stats.queries.Add(1)
	s.stats.rowsScanned.Add(scanned)
	return p.run(iter)
}

// bitmapCache memoizes conjunct bitmaps within one batch, keyed by table and
// canonical predicate SQL, so that plans sharing predicate conjuncts (the
// common case for a request batch sliced from one ZQL row) compute each
// shared bitmap intersection exactly once. Entries with ok=false record that
// the index cannot answer the conjunct.
type bitmapCache map[string]cachedBitmap

type cachedBitmap struct {
	bm *roaring.Bitmap
	ok bool
}

// cachedBitmap answers a predicate from the index through the batch cache.
func (s *BitmapStore) cachedBitmap(cache bitmapCache, t *dataset.Table, ix tableIndex, e minisql.Expr, total int) (*roaring.Bitmap, bool) {
	if cache == nil {
		return s.planBitmap(t, ix, e, total)
	}
	key := t.Name + "\x00" + e.SQL()
	if c, hit := cache[key]; hit {
		return c.bm, c.ok
	}
	bm, ok := s.planBitmap(t, ix, e, total)
	cache[key] = cachedBitmap{bm: bm, ok: ok}
	return bm, ok
}

// planAccess produces the matching-row iterator for a plan and the number of
// rows the drain will visit. The WHERE clause is split into top-level
// conjuncts; each conjunct is answered from the index (through the batch
// cache when given) or deferred to a compiled residual predicate evaluated
// inside the candidate set. With no indexable conjunct the plan falls back
// to a full scan, same as RowStore.
func (s *BitmapStore) planAccess(p *Plan, cache bitmapCache) (rowIter, int64, error) {
	t, q := p.t, p.q
	ix := s.indexes[t.Name]
	total := t.NumRows()

	if q.Where == nil {
		return func(yield func(int)) {
			for i := 0; i < total; i++ {
				yield(i)
			}
		}, int64(total), nil
	}

	// p.conjs carries the top-level conjuncts in execution order — the
	// planner's order when the store reordered them at Prepare time.
	var parts []*roaring.Bitmap
	var residual []minisql.Expr
	for _, c := range p.conjs {
		if b, ok := s.cachedBitmap(cache, t, ix, c, total); ok {
			parts = append(parts, b)
		} else {
			residual = append(residual, c)
		}
	}

	if len(parts) == 0 {
		// Fallback: full scan with the plan's compiled predicate.
		return func(yield func(int)) {
			for i := 0; i < total; i++ {
				if p.pred(i) {
					yield(i)
				}
			}
		}, int64(total), nil
	}

	bm := roaring.AndAll(parts...)
	if len(residual) == 0 {
		return func(yield func(int)) {
			bm.Iterate(func(v uint32) { yield(int(v)) })
		}, int64(bm.Cardinality()), nil
	}
	pred, err := compilePredicate(t, &minisql.And{Args: residual})
	if err != nil {
		return nil, 0, err
	}
	return func(yield func(int)) {
		bm.Iterate(func(v uint32) {
			if pred(int(v)) {
				yield(int(v))
			}
		})
	}, int64(bm.Cardinality()), nil
}

// ExecuteBatch runs the plans as one request. Bitmap planning for the whole
// batch happens first, serially, through a shared conjunct cache — predicate
// legs common across plans (constraints repeated on every query of a request
// batch, shared slice attributes) hit the index once. The surviving per-plan
// drains then run concurrently, bounded by Parallelism.
func (s *BitmapStore) ExecuteBatch(ctx context.Context, plans []*Plan) ([]*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := checkBatch(s, plans); err != nil {
		return nil, err
	}
	sp := trace.FromContext(ctx).StartChild("scan")
	sp.SetStr("backend", "bitmap")
	sp.SetInt("plans", int64(len(plans)))
	defer sp.End()
	cache := make(bitmapCache)
	iters := make([]rowIter, len(plans))
	var planned int64
	for i, p := range plans {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		iter, scanned, err := s.planAccess(p, cache)
		if err != nil {
			return nil, fmt.Errorf("engine: batch plan %q: %w", p.SQL(), err)
		}
		iters[i] = iter
		planned += scanned
		s.stats.queries.Add(1)
		s.stats.rowsScanned.Add(scanned)
	}
	sp.SetInt("rows", planned)
	results := make([]*Result, len(plans))
	errs := make([]error, len(plans))
	var wg sync.WaitGroup
	sem := make(chan struct{}, s.parallelism())
	for i, p := range plans {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, p *Plan) {
			defer wg.Done()
			defer func() { <-sem }()
			// Cancellation point: a plan drain is all-or-nothing, so a
			// cancelled batch skips plans not yet drained.
			if err := ctx.Err(); err != nil {
				errs[i] = err
				return
			}
			results[i], errs[i] = p.run(iters[i])
		}(i, p)
	}
	wg.Wait()
	if err := firstError(plans, errs); err != nil {
		return nil, err
	}
	return results, nil
}

// ExecuteSQL parses and runs SQL text.
func (s *BitmapStore) ExecuteSQL(sql string) (*Result, error) {
	q, err := minisql.Parse(sql)
	if err != nil {
		return nil, err
	}
	return s.Execute(q)
}
