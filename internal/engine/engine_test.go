package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/dataset"
)

func salesTable() *dataset.Table {
	t := dataset.NewTable("sales", []dataset.Field{
		{Name: "product", Kind: dataset.KindString},
		{Name: "location", Kind: dataset.KindString},
		{Name: "year", Kind: dataset.KindInt},
		{Name: "sales", Kind: dataset.KindFloat},
		{Name: "profit", Kind: dataset.KindFloat},
	})
	products := []string{"chair", "table", "desk", "stapler"}
	locations := []string{"US", "UK"}
	rng := rand.New(rand.NewSource(7))
	for _, p := range products {
		for _, l := range locations {
			for y := 2010; y <= 2015; y++ {
				for rep := 0; rep < 3; rep++ {
					t.AppendRow(
						dataset.SV(p), dataset.SV(l), dataset.IV(int64(y)),
						dataset.FV(float64(100+rng.Intn(900))),
						dataset.FV(float64(rng.Intn(500))-100),
					)
				}
			}
		}
	}
	return t
}

func allStores(t *dataset.Table) []DB {
	return []DB{NewRowStore(t), NewBitmapStore(t), NewColumnStore(t), NewShardedStore(3, t), NewAutoStore(1, t), NewAutoStore(3, t)}
}

func TestSimpleAggregation(t *testing.T) {
	tb := salesTable()
	for _, db := range allStores(tb) {
		res, err := db.ExecuteSQL("SELECT year, SUM(sales) FROM sales WHERE product='chair' AND location='US' GROUP BY year ORDER BY year")
		if err != nil {
			t.Fatalf("%s: %v", db.Name(), err)
		}
		if len(res.Rows) != 6 {
			t.Fatalf("%s: %d rows, want 6", db.Name(), len(res.Rows))
		}
		// Verify against a manual computation.
		want := make(map[int64]float64)
		prod, loc := tb.Column("product"), tb.Column("location")
		for i := 0; i < tb.NumRows(); i++ {
			if prod.Value(i).S == "chair" && loc.Value(i).S == "US" {
				want[tb.Column("year").Value(i).I] += tb.Column("sales").Float(i)
			}
		}
		for _, row := range res.Rows {
			if got := row[1].Float(); got != want[row[0].Int()] {
				t.Errorf("%s: year %d sum = %v, want %v", db.Name(), row[0].Int(), got, want[row[0].Int()])
			}
		}
		// Sorted ascending by year.
		for i := 1; i < len(res.Rows); i++ {
			if res.Rows[i][0].Int() <= res.Rows[i-1][0].Int() {
				t.Errorf("%s: rows not ordered by year", db.Name())
			}
		}
	}
}

func TestAllAggregates(t *testing.T) {
	tb := dataset.NewTable("t", []dataset.Field{
		{Name: "g", Kind: dataset.KindString},
		{Name: "v", Kind: dataset.KindFloat},
	})
	for i, v := range []float64{1, 2, 3, 10, 20} {
		g := "a"
		if i >= 3 {
			g = "b"
		}
		tb.AppendRow(dataset.SV(g), dataset.FV(v))
	}
	for _, db := range allStores(tb) {
		res, err := db.ExecuteSQL("SELECT g, SUM(v) AS s, AVG(v) AS a, MIN(v) AS lo, MAX(v) AS hi, COUNT(*) AS n FROM t GROUP BY g ORDER BY g")
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 2 {
			t.Fatalf("%d rows", len(res.Rows))
		}
		a := res.Rows[0]
		if a[1].Float() != 6 || a[2].Float() != 2 || a[3].Float() != 1 || a[4].Float() != 3 || a[5].Int() != 3 {
			t.Errorf("%s: group a = %v", db.Name(), a)
		}
		b := res.Rows[1]
		if b[1].Float() != 30 || b[2].Float() != 15 || b[3].Float() != 10 || b[4].Float() != 20 || b[5].Int() != 2 {
			t.Errorf("%s: group b = %v", db.Name(), b)
		}
	}
}

func TestProjectionWithoutAggregation(t *testing.T) {
	tb := salesTable()
	for _, db := range allStores(tb) {
		res, err := db.ExecuteSQL("SELECT product, sales FROM sales WHERE year = 2010 AND location = 'UK' ORDER BY sales DESC LIMIT 5")
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 5 {
			t.Fatalf("%s: %d rows", db.Name(), len(res.Rows))
		}
		for i := 1; i < len(res.Rows); i++ {
			if res.Rows[i][1].Float() > res.Rows[i-1][1].Float() {
				t.Errorf("%s: not descending", db.Name())
			}
		}
	}
}

func TestBinning(t *testing.T) {
	tb := dataset.NewTable("w", []dataset.Field{
		{Name: "weight", Kind: dataset.KindFloat},
		{Name: "sales", Kind: dataset.KindFloat},
	})
	for i := 0; i < 100; i++ {
		tb.AppendRow(dataset.FV(float64(i)), dataset.FV(1))
	}
	for _, db := range allStores(tb) {
		res, err := db.ExecuteSQL("SELECT BIN(weight, 20) AS w, SUM(sales) AS s FROM w GROUP BY BIN(weight, 20) ORDER BY w")
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 5 {
			t.Fatalf("%s: %d bins, want 5", db.Name(), len(res.Rows))
		}
		for i, row := range res.Rows {
			if row[0].Float() != float64(i*20) || row[1].Float() != 20 {
				t.Errorf("%s: bin %d = %v", db.Name(), i, row)
			}
		}
	}
}

func TestLikePredicate(t *testing.T) {
	tb := dataset.NewTable("z", []dataset.Field{
		{Name: "zip", Kind: dataset.KindString},
	})
	for _, z := range []string{"02134", "02999", "03000", "12999", "0213"} {
		tb.AppendRow(dataset.SV(z))
	}
	for _, db := range allStores(tb) {
		res, err := db.ExecuteSQL("SELECT zip FROM z WHERE zip LIKE '02___'")
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 2 {
			t.Errorf("%s: LIKE '02___' matched %d, want 2", db.Name(), len(res.Rows))
		}
		res, err = db.ExecuteSQL("SELECT zip FROM z WHERE zip LIKE '0%9'")
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 1 || res.Rows[0][0].S != "02999" {
			t.Errorf("%s: LIKE '0%%9' = %v", db.Name(), res.Rows)
		}
	}
}

func TestLikeMatcher(t *testing.T) {
	cases := []struct {
		pattern string
		s       string
		want    bool
	}{
		{"abc", "abc", true},
		{"abc", "abcd", false},
		{"a_c", "abc", true},
		{"a_c", "ac", false},
		{"%", "", true},
		{"%", "anything", true},
		{"a%", "abc", true},
		{"a%", "ba", false},
		{"%c", "abc", true},
		{"%b%", "abc", true},
		{"%b%", "ac", false},
		{"a%c%e", "abcde", true},
		{"a%c%e", "ace", true},
		{"a%c%e", "aec", false},
		{"02%", "02134", true},
		{"", "", true},
		{"", "x", false},
	}
	for _, c := range cases {
		if got := compileLikeMatcher(c.pattern)(c.s); got != c.want {
			t.Errorf("LIKE %q on %q = %v, want %v", c.pattern, c.s, got, c.want)
		}
	}
}

func TestInAndBetween(t *testing.T) {
	tb := salesTable()
	for _, db := range allStores(tb) {
		res, err := db.ExecuteSQL("SELECT product, SUM(sales) FROM sales WHERE product IN ('chair','desk') AND year BETWEEN 2011 AND 2012 GROUP BY product ORDER BY product")
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 2 || res.Rows[0][0].S != "chair" || res.Rows[1][0].S != "desk" {
			t.Errorf("%s: rows = %v", db.Name(), res.Rows)
		}
	}
}

func TestOrNotPredicates(t *testing.T) {
	tb := salesTable()
	for _, db := range allStores(tb) {
		res, err := db.ExecuteSQL("SELECT COUNT(*) FROM sales WHERE product = 'chair' OR product = 'desk'")
		if err != nil {
			t.Fatal(err)
		}
		if res.Rows[0][0].Int() != 2*2*6*3 {
			t.Errorf("%s: OR count = %v", db.Name(), res.Rows[0][0])
		}
		res, err = db.ExecuteSQL("SELECT COUNT(*) FROM sales WHERE NOT (product = 'chair')")
		if err != nil {
			t.Fatal(err)
		}
		if res.Rows[0][0].Int() != 3*2*6*3 {
			t.Errorf("%s: NOT count = %v", db.Name(), res.Rows[0][0])
		}
		res, err = db.ExecuteSQL("SELECT COUNT(*) FROM sales WHERE product != 'chair'")
		if err != nil {
			t.Fatal(err)
		}
		if res.Rows[0][0].Int() != 3*2*6*3 {
			t.Errorf("%s: != count = %v", db.Name(), res.Rows[0][0])
		}
	}
}

func TestMissingTableAndColumn(t *testing.T) {
	tb := salesTable()
	for _, db := range allStores(tb) {
		if _, err := db.ExecuteSQL("SELECT a FROM nope"); err == nil {
			t.Errorf("%s: missing table should error", db.Name())
		}
		if _, err := db.ExecuteSQL("SELECT nope FROM sales"); err == nil {
			t.Errorf("%s: missing select column should error", db.Name())
		}
		if _, err := db.ExecuteSQL("SELECT product FROM sales WHERE nope = 1"); err == nil {
			t.Errorf("%s: missing predicate column should error", db.Name())
		}
		if _, err := db.ExecuteSQL("SELECT product FROM sales GROUP BY nope"); err == nil {
			t.Errorf("%s: missing group column should error", db.Name())
		}
		if _, err := db.ExecuteSQL("SELECT product FROM sales ORDER BY other"); err == nil {
			t.Errorf("%s: unknown order column should error", db.Name())
		}
	}
}

func TestEqualityOnUnseenValue(t *testing.T) {
	tb := salesTable()
	for _, db := range allStores(tb) {
		res, err := db.ExecuteSQL("SELECT COUNT(*) FROM sales WHERE product = 'widget'")
		if err != nil {
			t.Fatal(err)
		}
		// COUNT over an empty group set yields no rows.
		if len(res.Rows) != 1 || res.Rows[0][0].Int() != 0 {
			t.Errorf("%s: unseen equality = %v", db.Name(), res.Rows)
		}
	}
}

func TestCountersAdvance(t *testing.T) {
	tb := salesTable()
	for _, db := range allStores(tb) {
		before := db.Counters()
		if _, err := db.ExecuteSQL("SELECT COUNT(*) FROM sales"); err != nil {
			t.Fatal(err)
		}
		after := db.Counters()
		if after.Queries != before.Queries+1 {
			t.Errorf("%s: queries %d -> %d", db.Name(), before.Queries, after.Queries)
		}
		if after.RowsScanned <= before.RowsScanned {
			t.Errorf("%s: rows scanned did not advance", db.Name())
		}
	}
}

func TestBitmapScansFewerRowsOnSelectivePredicates(t *testing.T) {
	tb := salesTable()
	row, bit := NewRowStore(tb), NewBitmapStore(tb)
	q := "SELECT year, SUM(sales) FROM sales WHERE product='chair' AND location='US' GROUP BY year ORDER BY year"
	if _, err := row.ExecuteSQL(q); err != nil {
		t.Fatal(err)
	}
	if _, err := bit.ExecuteSQL(q); err != nil {
		t.Fatal(err)
	}
	if bit.Counters().RowsScanned >= row.Counters().RowsScanned {
		t.Errorf("bitmap store scanned %d rows, row store %d; bitmap should scan fewer",
			bit.Counters().RowsScanned, row.Counters().RowsScanned)
	}
}

func TestIndexSizeReporting(t *testing.T) {
	tb := salesTable()
	s := NewBitmapStore(tb)
	if s.IndexSizeBytes("sales") <= 0 {
		t.Error("index size should be positive")
	}
	if s.IndexSizeBytes("nope") != 0 {
		t.Error("unknown table index size should be zero")
	}
}

// TestDifferentialRandomQueries cross-checks the two back-ends on randomly
// generated queries: they must return identical results.
func TestDifferentialRandomQueries(t *testing.T) {
	tb := salesTable()
	row, bit := NewRowStore(tb), NewBitmapStore(tb)
	rng := rand.New(rand.NewSource(11))
	products := []string{"chair", "table", "desk", "stapler", "widget"}
	locations := []string{"US", "UK", "FR"}
	preds := func() string {
		var opts []string
		opts = append(opts, fmt.Sprintf("product = '%s'", products[rng.Intn(len(products))]))
		opts = append(opts, fmt.Sprintf("location != '%s'", locations[rng.Intn(len(locations))]))
		opts = append(opts, fmt.Sprintf("year >= %d", 2010+rng.Intn(6)))
		opts = append(opts, fmt.Sprintf("sales < %d", 200+rng.Intn(800)))
		opts = append(opts, fmt.Sprintf("product IN ('%s', '%s')", products[rng.Intn(len(products))], products[rng.Intn(len(products))]))
		n := 1 + rng.Intn(3)
		out := opts[rng.Intn(len(opts))]
		for i := 1; i < n; i++ {
			conj := " AND "
			if rng.Intn(2) == 0 {
				conj = " OR "
			}
			out += conj + opts[rng.Intn(len(opts))]
		}
		return out
	}
	for trial := 0; trial < 60; trial++ {
		q := fmt.Sprintf("SELECT year, SUM(sales) AS s, COUNT(*) AS n FROM sales WHERE %s GROUP BY year ORDER BY year", preds())
		r1, err1 := row.ExecuteSQL(q)
		r2, err2 := bit.ExecuteSQL(q)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("error divergence on %q: %v vs %v", q, err1, err2)
		}
		if err1 != nil {
			continue
		}
		if len(r1.Rows) != len(r2.Rows) {
			t.Fatalf("row count divergence on %q: %d vs %d", q, len(r1.Rows), len(r2.Rows))
		}
		for i := range r1.Rows {
			for j := range r1.Rows[i] {
				if !r1.Rows[i][j].Equal(r2.Rows[i][j]) {
					t.Fatalf("value divergence on %q at (%d,%d): %v vs %v", q, i, j, r1.Rows[i][j], r2.Rows[i][j])
				}
			}
		}
	}
}

func TestResultColIndex(t *testing.T) {
	r := &Result{Cols: []string{"a", "b"}}
	if r.ColIndex("b") != 1 || r.ColIndex("z") != -1 {
		t.Error("ColIndex broken")
	}
}

func TestNonGroupedPlainColumnTakesRepresentative(t *testing.T) {
	tb := salesTable()
	for _, db := range allStores(tb) {
		// location is not grouped; executor takes the group's first row value.
		res, err := db.ExecuteSQL("SELECT year, location, SUM(sales) FROM sales WHERE location='US' GROUP BY year ORDER BY year")
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range res.Rows {
			if row[1].S != "US" {
				t.Errorf("%s: representative = %v", db.Name(), row[1])
			}
		}
	}
}
