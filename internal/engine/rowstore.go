package engine

import (
	"context"
	"sync"

	"repro/internal/dataset"
	"repro/internal/minisql"
	"repro/internal/trace"
)

// RowStore is a full-scan executor: every query visits every row and
// evaluates the compiled predicate. It models the behaviour of the paper's
// PostgreSQL back-end at the granularity the experiments care about (a fixed
// per-query cost plus a per-row scan cost, unaffected by selectivity).
//
// ExecuteBatch amortizes that scan cost: plans over the same table are
// served from shared scans — each scanned row visits every plan's predicate
// and aggregation state — with the plans dealt across at most Parallelism
// concurrent scan workers.
type RowStore struct {
	parLimit
	planToggle
	tables map[string]*dataset.Table
	stats  counters
}

// NewRowStore builds a row store over the given base tables.
func NewRowStore(tables ...*dataset.Table) *RowStore {
	s := &RowStore{tables: make(map[string]*dataset.Table, len(tables))}
	for _, t := range tables {
		s.tables[t.Name] = t
	}
	return s
}

// Name identifies the back-end.
func (s *RowStore) Name() string { return "rowstore" }

// Table returns the named base table, or nil.
func (s *RowStore) Table(name string) *dataset.Table { return s.tables[name] }

// Counters returns cumulative execution statistics.
func (s *RowStore) Counters() Counters { return s.stats.snapshot() }

// Prepare validates and column-resolves a parsed query into a reusable plan.
// With planning on, multi-conjunct predicates are recompiled in the greedy
// planner's order so the short-circuiting AND closure tests the cheapest,
// most selective leg first. The row store has no zone maps, so scoring uses
// dictionary cardinalities and shape defaults only.
func (s *RowStore) Prepare(q *minisql.Query) (*Plan, error) {
	p, err := newPlan(s, s.tables[q.From], q)
	if err != nil {
		return nil, err
	}
	if s.planningOn() && len(p.conjs) > 1 {
		if err := p.applyPlanOrder(newPlannerStats(p.t)); err != nil {
			return nil, err
		}
		s.stats.notePlanned(p.reordered)
	}
	return p, nil
}

// Execute runs a parsed query by scanning the base table.
func (s *RowStore) Execute(q *minisql.Query) (*Result, error) {
	p, err := s.Prepare(q)
	if err != nil {
		return nil, err
	}
	return p.Execute()
}

// runPlan executes one prepared plan with a private full scan.
func (s *RowStore) runPlan(p *Plan) (*Result, error) {
	t := p.t
	s.stats.queries.Add(1)
	s.stats.rowsScanned.Add(int64(t.NumRows()))
	return p.run(func(yield func(int)) {
		for i, n := 0, t.NumRows(); i < n; i++ {
			if p.pred(i) {
				yield(i)
			}
		}
	})
}

// ExecuteBatch runs the plans as one request. Plans are grouped by base
// table; each group is dealt round-robin across at most Parallelism workers,
// and every worker performs ONE scan of the table for all of its plans: each
// row visits every plan's predicate and aggregation state. For a batch of n
// plans this performs min(n, Parallelism) scans instead of n.
func (s *RowStore) ExecuteBatch(ctx context.Context, plans []*Plan) ([]*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := checkBatch(s, plans); err != nil {
		return nil, err
	}
	results := make([]*Result, len(plans))
	errs := make([]error, len(plans))
	parent := trace.FromContext(ctx)
	var wg sync.WaitGroup
	// The semaphore bounds workers across the whole batch, so a multi-table
	// batch still respects the Parallelism contract.
	sem := make(chan struct{}, s.parallelism())
	for _, grp := range groupPlansByTable(plans) {
		t := grp.t
		shards := shardIndices(grp.idx, s.parallelism())
		s.stats.queries.Add(int64(len(grp.idx)))
		s.stats.rowsScanned.Add(int64(len(shards)) * int64(t.NumRows()))
		for _, shard := range shards {
			wg.Add(1)
			sem <- struct{}{}
			go func(shard []int) {
				defer wg.Done()
				defer func() { <-sem }()
				sp := parent.StartChild("scan")
				sp.SetStr("backend", "row")
				sp.SetStr("table", t.Name)
				sp.SetInt("plans", int64(len(shard)))
				sp.SetInt("rows", int64(t.NumRows()))
				scanShard(ctx, t, plans, shard, results, errs)
				sp.End()
			}(shard)
		}
	}
	wg.Wait()
	if err := firstError(plans, errs); err != nil {
		return nil, err
	}
	return results, nil
}

// scanBlock is the number of rows a shared scan processes per plan before
// moving on: large enough to keep per-plan loops tight, small enough that a
// block's column data stays cache-resident while every plan visits it.
const scanBlock = 4096

// eqDispatch serves all plans of a shard whose whole predicate is a single
// equality on one categorical column. One code lookup per row routes the row
// to the interested plans' sinks, replacing a predicate call per plan — the
// dominant case for a batch of per-slice queries (WHERE z = '...').
type eqDispatch struct {
	codes []int32
	route [][]*planSink // dictionary code -> sinks that want the row
}

// scanShard executes one shared scan of t serving every plan in the shard.
// The context is checked once per scan block: a cancelled scan stops at the
// next block boundary and poisons every plan in the shard with ctx.Err().
func scanShard(ctx context.Context, t *dataset.Table, plans []*Plan, shard []int, results []*Result, errs []error) {
	sinks := make([]*planSink, len(shard))
	for k, pi := range shard {
		sinks[k] = plans[pi].newSink()
	}
	// Factor single-equality plans into per-column dispatch tables; the rest
	// keep their compiled predicates.
	var dispatches []*eqDispatch
	byCol := make(map[string]*eqDispatch)
	var restPreds []rowPredicate
	var restSinks []*planSink
	for k, pi := range shard {
		p := plans[pi]
		if cmp, ok := p.q.Where.(*minisql.Compare); ok && cmp.Op == minisql.CmpEq && cmp.Val.Kind == dataset.KindString {
			if c := t.Column(cmp.Col); c != nil && c.Field.Kind == dataset.KindString {
				d := byCol[cmp.Col]
				if d == nil {
					d = &eqDispatch{codes: c.Codes(), route: make([][]*planSink, c.Cardinality())}
					byCol[cmp.Col] = d
					dispatches = append(dispatches, d)
				}
				// An unseen value matches no rows; the sink still finishes.
				if code := c.CodeOf(cmp.Val.S); code >= 0 {
					d.route[code] = append(d.route[code], sinks[k])
				}
				continue
			}
		}
		restPreds = append(restPreds, p.pred)
		restSinks = append(restSinks, sinks[k])
	}
	n := t.NumRows()
	for lo := 0; lo < n; lo += scanBlock {
		if err := ctx.Err(); err != nil {
			for _, pi := range shard {
				errs[pi] = err
			}
			return
		}
		hi := lo + scanBlock
		if hi > n {
			hi = n
		}
		for _, d := range dispatches {
			codes := d.codes
			for i := lo; i < hi; i++ {
				for _, sink := range d.route[codes[i]] {
					sink.add(i)
				}
			}
		}
		for k, pred := range restPreds {
			sink := restSinks[k]
			for i := lo; i < hi; i++ {
				if pred(i) {
					sink.add(i)
				}
			}
		}
	}
	for k, pi := range shard {
		results[pi], errs[pi] = sinks[k].finish()
	}
}

// ExecuteSQL parses and runs SQL text.
func (s *RowStore) ExecuteSQL(sql string) (*Result, error) {
	q, err := minisql.Parse(sql)
	if err != nil {
		return nil, err
	}
	return s.Execute(q)
}
