package engine

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/minisql"
)

// RowStore is a full-scan executor: every query visits every row and
// evaluates the compiled predicate. It models the behaviour of the paper's
// PostgreSQL back-end at the granularity the experiments care about (a fixed
// per-query cost plus a per-row scan cost, unaffected by selectivity).
type RowStore struct {
	tables map[string]*dataset.Table
	stats  counters
}

// NewRowStore builds a row store over the given base tables.
func NewRowStore(tables ...*dataset.Table) *RowStore {
	s := &RowStore{tables: make(map[string]*dataset.Table, len(tables))}
	for _, t := range tables {
		s.tables[t.Name] = t
	}
	return s
}

// Name identifies the back-end.
func (s *RowStore) Name() string { return "rowstore" }

// Table returns the named base table, or nil.
func (s *RowStore) Table(name string) *dataset.Table { return s.tables[name] }

// Counters returns cumulative execution statistics.
func (s *RowStore) Counters() Counters { return s.stats.snapshot() }

// Execute runs a parsed query by scanning the base table.
func (s *RowStore) Execute(q *minisql.Query) (*Result, error) {
	t := s.tables[q.From]
	if t == nil {
		return nil, fmt.Errorf("engine: no table %q", q.From)
	}
	pred, err := compilePredicate(t, q.Where)
	if err != nil {
		return nil, err
	}
	s.stats.queries.Add(1)
	s.stats.rowsScanned.Add(int64(t.NumRows()))
	iter := func(yield func(int)) {
		for i, n := 0, t.NumRows(); i < n; i++ {
			if pred(i) {
				yield(i)
			}
		}
	}
	return runQuery(t, q, iter)
}

// ExecuteSQL parses and runs SQL text.
func (s *RowStore) ExecuteSQL(sql string) (*Result, error) {
	q, err := minisql.Parse(sql)
	if err != nil {
		return nil, err
	}
	return s.Execute(q)
}
