package engine

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/dataset"
	"repro/internal/minisql"
	"repro/internal/trace"
)

// Sharded scatter-gather execution. A ShardedStore splits each table's
// segments into N contiguous shards — every shard a full ColumnStore over a
// rangeSource view of one shared SegmentSource — and ExecuteBatch scatters a
// prepared-plan batch across the shards on a bounded worker pool, then
// gathers: partial group-by accumulators merge in shard order (preserving
// global first-seen group order), projection rows concatenate, and per-shard
// counters sum. Because shards cover contiguous, ascending row ranges of the
// SAME table (rows, dictionaries, zone maps all globally indexed), the
// gathered result is identical to the unsharded single-walk scan.

// SegmentRanged is implemented by segment sources that own a contiguous
// sub-range of a parent table's segments. The column store then scans exactly
// [lo, hi) — in global segment ids — instead of [0, NumSegments()).
type SegmentRanged interface {
	// SegRange returns the owned global segment range [lo, hi).
	SegRange() (lo, hi int)
}

// rangeSource is a contiguous segment-range view of a parent source: the cut
// point sharding uses. Table, zone maps, and dictionaries are the parent's,
// globally indexed — only the owned segment range differs — so a shard built
// over the view scans its own segments while sharing every byte of metadata
// and column storage with its siblings. The view also counts the distinct
// segments materialized through it: the per-shard load observability the
// parent's global counter can't provide.
type rangeSource struct {
	src    SegmentSource
	lo, hi int
	loaded []atomic.Bool // owned segments this view has materialized
	loads  atomic.Int64
}

func (r *rangeSource) Table() *dataset.Table       { return r.src.Table() }
func (r *rangeSource) NumSegments() int            { return r.hi - r.lo }
func (r *rangeSource) SegRange() (lo, hi int)      { return r.lo, r.hi }
func (r *rangeSource) Zone(col string) *ZoneData   { return r.src.Zone(col) }
func (r *rangeSource) IntDict(col string) *IntDict { return r.src.IntDict(col) }

// Load delegates to the parent (which synchronizes and loads once), counting
// the first successful materialization of each owned segment.
func (r *rangeSource) Load(seg int) error {
	if err := r.src.Load(seg); err != nil {
		return err
	}
	if seg >= r.lo && seg < r.hi && !r.loaded[seg-r.lo].Swap(true) {
		r.loads.Add(1)
	}
	return nil
}

// SegmentLoads returns how many of the view's segments have been materialized
// through it — for zpack-backed shards, segments actually read from disk for
// this shard's scans.
func (r *rangeSource) SegmentLoads() int64 { return r.loads.Load() }

// SplitSource cuts a source's segments into n contiguous range views of as
// equal size as integer division allows (n is capped at the segment count,
// and an empty table yields one empty shard). The views share the parent's
// table, zone maps, and dictionaries; only segment ownership is partitioned.
func SplitSource(src SegmentSource, n int) []SegmentSource {
	nseg := src.NumSegments()
	if n > nseg {
		n = nseg
	}
	if n < 1 {
		n = 1
	}
	cuts := make([]int, 0, n-1)
	for i := 1; i < n; i++ {
		cuts = append(cuts, i*nseg/n)
	}
	return SplitSourceAt(src, cuts)
}

// SplitSourceAt cuts a source at explicit interior segment boundaries:
// len(cuts)+1 contiguous range views, shard i owning [cuts[i-1], cuts[i]).
// Cuts must be ascending within [0, NumSegments()]; empty shards are legal
// (they scan nothing and merge as identities), which is what lets a fixed
// shard count serve tables smaller than the shard count.
func SplitSourceAt(src SegmentSource, cuts []int) []SegmentSource {
	nseg := src.NumSegments()
	out := make([]SegmentSource, 0, len(cuts)+1)
	lo := 0
	for _, c := range append(append(make([]int, 0, len(cuts)+1), cuts...), nseg) {
		if c < lo || c > nseg {
			panic(fmt.Sprintf("engine: shard cut %d outside [%d, %d]", c, lo, nseg))
		}
		out = append(out, &rangeSource{src: src, lo: lo, hi: c, loaded: make([]atomic.Bool, c-lo)})
		lo = c
	}
	return out
}

// ShardedStore is the scatter-gather batch executor: a column-store DB whose
// tables are split into contiguous segment shards scanned in parallel. It
// implements the same DB contract as the stores it is built from — results
// are identical to an unsharded ColumnStore over the same data — and
// multiplies the columnar batch wins across cores: each shard's worker walks
// its own segments once for every plan in the batch, and the gather point
// merges partial accumulators instead of rows.
type ShardedStore struct {
	parLimit
	planToggle
	tables map[string]*dataset.Table
	shards map[string][]*ColumnStore
	stats  counters     // Queries and planner counters; scan counters live in the shard stores
	busy   atomic.Int64 // scatter workers currently running (pool saturation)
}

// NewShardedStore builds a sharded store over in-memory tables, splitting
// each into nshards contiguous segment shards.
func NewShardedStore(nshards int, tables ...*dataset.Table) *ShardedStore {
	sets := make([][]SegmentSource, len(tables))
	for i, t := range tables {
		sets[i] = SplitSource(NewMemSource(t), nshards)
	}
	return NewShardedStoreFromShards(sets...)
}

// NewShardedStoreFromSource builds a sharded store over lazy segment sources
// (one table each), splitting each into nshards contiguous shards. A zpack
// Reader shards this way without rewriting a byte: each shard is a range view
// over the same footer index, and zone-map-skipped segments are still never
// read from disk.
func NewShardedStoreFromSource(nshards int, sources ...SegmentSource) *ShardedStore {
	sets := make([][]SegmentSource, len(sources))
	for i, src := range sources {
		sets[i] = SplitSource(src, nshards)
	}
	return NewShardedStoreFromShards(sets...)
}

// NewShardedStoreFromShards builds the store from explicit shard sets: each
// set is one table's ordered, contiguous shard views, as produced by
// SplitSource or SplitSourceAt (which is how callers control uneven splits).
// Every view in a set must share one parent table.
func NewShardedStoreFromShards(shardSets ...[]SegmentSource) *ShardedStore {
	s := &ShardedStore{
		tables: make(map[string]*dataset.Table, len(shardSets)),
		shards: make(map[string][]*ColumnStore, len(shardSets)),
	}
	for _, set := range shardSets {
		if len(set) == 0 {
			panic("engine: empty shard set")
		}
		t := set[0].Table()
		s.tables[t.Name] = t
		stores := make([]*ColumnStore, len(set))
		for i, src := range set {
			if src.Table() != t {
				panic(fmt.Sprintf("engine: shard %d of table %q is a view of a different table", i, t.Name))
			}
			stores[i] = NewColumnStoreFromSource(src)
		}
		s.shards[t.Name] = stores
	}
	return s
}

// Name identifies the back-end.
func (s *ShardedStore) Name() string { return "shardedstore" }

// Table returns the named base table, or nil.
func (s *ShardedStore) Table(name string) *dataset.Table { return s.tables[name] }

// NumShards returns the shard count of the named table, or 0.
func (s *ShardedStore) NumShards(table string) int { return len(s.shards[table]) }

// NumSegments returns the total segment count of the named table across its
// shards, or 0 (the Segmented interface).
func (s *ShardedStore) NumSegments(table string) int {
	n := 0
	for _, st := range s.shards[table] {
		n += st.NumSegments(table)
	}
	return n
}

// Counters returns cumulative execution statistics, summed across shards.
// Planner counters live at the sharded store itself: it plans once over the
// global metadata and every shard adopts the order.
func (s *ShardedStore) Counters() Counters {
	c := Counters{
		Queries:        s.stats.queries.Load(),
		PlansPlanned:   s.stats.plansPlanned.Load(),
		PlansReordered: s.stats.plansReordered.Load(),
	}
	for _, stores := range s.shards {
		for _, st := range stores {
			sc := st.Counters()
			c.RowsScanned += sc.RowsScanned
			c.SegmentsScanned += sc.SegmentsScanned
			c.SegmentsSkipped += sc.SegmentsSkipped
		}
	}
	return c
}

// SkipProvenance returns cumulative skip attribution, summed across shards.
func (s *ShardedStore) SkipProvenance() map[SkipAttr]int64 {
	var out map[SkipAttr]int64
	for _, stores := range s.shards {
		for _, st := range stores {
			out = mergeSkipProv(out, st.SkipProvenance())
		}
	}
	if out == nil {
		out = make(map[SkipAttr]int64)
	}
	return out
}

// SegmentLoads returns how many distinct segments of the named table have
// been materialized, summed across shards.
func (s *ShardedStore) SegmentLoads(table string) int64 {
	var n int64
	for _, c := range s.ShardStats(table) {
		n += c.SegmentLoads
	}
	return n
}

// PoolStats reports the scatter pool's saturation: workers currently running
// and the pool's capacity bound.
func (s *ShardedStore) PoolStats() (busy, capacity int) {
	return int(s.busy.Load()), s.parallelism()
}

// ShardCounters reports one shard's cumulative share of the scan work.
type ShardCounters struct {
	// Segments is the shard's owned segment count.
	Segments int
	// RowsScanned and SegmentsSkipped are the Counters semantics, restricted
	// to this shard's segment range.
	RowsScanned     int64
	SegmentsSkipped int64
	// SegmentLoads counts distinct owned segments materialized through the
	// shard's source — for zpack-backed shards, segments this shard actually
	// read from disk. Skip-heavy shards stay near zero.
	SegmentLoads int64
}

// ShardedDB is implemented by stores that scatter batches across segment
// shards; the serving layer surfaces per-shard totals on /stats.
type ShardedDB interface {
	// ShardStats returns per-shard counters for the named table in shard
	// order, or nil when the table is unknown.
	ShardStats(table string) []ShardCounters
}

// ShardStats returns per-shard counters for the named table in shard order.
func (s *ShardedStore) ShardStats(table string) []ShardCounters {
	stores := s.shards[table]
	if stores == nil {
		return nil
	}
	out := make([]ShardCounters, len(stores))
	for i, st := range stores {
		c := st.Counters()
		out[i] = ShardCounters{
			Segments:        st.NumSegments(table),
			RowsScanned:     c.RowsScanned,
			SegmentsSkipped: c.SegmentsSkipped,
		}
		if ct := st.cols[table]; ct != nil {
			if l, ok := ct.src.(interface{ SegmentLoads() int64 }); ok {
				out[i].SegmentLoads = l.SegmentLoads()
			}
		}
	}
	return out
}

// Prepare validates and column-resolves a parsed query against the shared
// table, then prepares one sub-plan per shard (each carrying the shard's
// vectorized compilation). The sub-plans are what the scatter executes; the
// returned plan is what callers hold and batch.
//
// With planning on, the conjunct order is decided ONCE here — over the
// table's global zone maps (shards share them) and the provenance merged
// across shards — and every shard sub-plan adopts it, so the scatter
// evaluates one consistent order instead of letting per-shard provenance
// drift the shards apart.
func (s *ShardedStore) Prepare(q *minisql.Query) (*Plan, error) {
	p, err := newPlan(s, s.tables[q.From], q)
	if err != nil {
		return nil, err
	}
	shards := s.shards[q.From]
	if s.planningOn() && len(p.conjs) > 1 && len(shards) > 0 {
		ct := shards[0].cols[q.From] // zone/dict arrays are global, any shard's view works
		ps := newPlannerStats(p.t)
		ps.addZones(ct.zones, ct.intCodes)
		if err := p.applyPlanOrder(ps.withProv(s.SkipProvenance())); err != nil {
			return nil, err
		}
		s.stats.notePlanned(p.reordered)
	}
	p.sub = make([]*Plan, len(shards))
	for i, shard := range shards {
		sp, err := shard.prepareOrdered(q, p.conjs, p.reordered)
		if err != nil {
			return nil, err
		}
		p.sub[i] = sp
	}
	return p, nil
}

// Execute runs a parsed query (Prepare + Plan.Execute, which routes through
// ExecuteBatch — the scatter path serves single plans too).
func (s *ShardedStore) Execute(q *minisql.Query) (*Result, error) {
	p, err := s.Prepare(q)
	if err != nil {
		return nil, err
	}
	return p.Execute()
}

// ExecuteSQL parses and runs SQL text.
func (s *ShardedStore) ExecuteSQL(sql string) (*Result, error) {
	q, err := minisql.Parse(sql)
	if err != nil {
		return nil, err
	}
	return s.Execute(q)
}

// ExecuteBatch scatters the batch across each table's shards on a worker pool
// bounded by Parallelism, then gathers. One scatter job is (table, shard):
// the shard's worker walks its owned segments once for EVERY plan of the
// batch over that table — batch-wide conjunct sharing within the shard — and
// returns raw, unfinished sinks. The gather merges each plan's per-shard
// sinks in shard order and finishes once (ordering and LIMIT applied at the
// gather point only). Error selection mirrors the process pool's convention:
// every shard runs to completion (no partial-batch aborts), panics are
// contained per shard job, and the error of the lowest failing shard index
// wins deterministically.
func (s *ShardedStore) ExecuteBatch(ctx context.Context, plans []*Plan) ([]*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := checkBatch(s, plans); err != nil {
		return nil, err
	}
	results := make([]*Result, len(plans))
	errs := make([]error, len(plans))
	type scatterJob struct {
		grp       *planGroup
		parts     [][]rowSink // shard index -> plan-aligned sinks
		shardErrs []error
	}
	var jobs []*scatterJob
	parent := trace.FromContext(ctx)
	var wg sync.WaitGroup
	sem := make(chan struct{}, s.parallelism())
	for _, grp := range groupPlansByTable(plans) {
		shards := s.shards[grp.t.Name]
		tname := grp.t.Name
		s.stats.queries.Add(int64(len(grp.idx)))
		job := &scatterJob{
			grp:       grp,
			parts:     make([][]rowSink, len(shards)),
			shardErrs: make([]error, len(shards)),
		}
		jobs = append(jobs, job)
		for si, shard := range shards {
			sub := make([]*Plan, len(grp.idx))
			for k, pi := range grp.idx {
				sub[k] = plans[pi].sub[si]
			}
			wg.Add(1)
			sem <- struct{}{}
			go func(si int, shard *ColumnStore, sub []*Plan) {
				defer wg.Done()
				defer func() { <-sem }()
				s.busy.Add(1)
				defer s.busy.Add(-1)
				// One scan span per (table, shard) scatter job; scanPartial
				// picks it out of the context and annotates it with the
				// shard's row/segment counts.
				sp := parent.StartChild("scan")
				sp.SetStr("backend", "sharded")
				sp.SetStr("table", tname)
				sp.SetInt("shard", int64(si))
				sp.SetInt("plans", int64(len(sub)))
				job.parts[si], job.shardErrs[si] = runShardContained(trace.WithSpan(ctx, sp), shard, sub)
				sp.End()
			}(si, shard, sub)
		}
	}
	wg.Wait()
	gsp := parent.StartChild("gather")
	gsp.SetInt("plans", int64(len(plans)))
	defer gsp.End()
	for _, job := range jobs {
		// Lowest-shard-index error wins; it poisons every plan of the table
		// group, exactly as a failed segment load poisons every plan of an
		// unsharded scan worker.
		var shardErr error
		for _, e := range job.shardErrs {
			if e != nil {
				shardErr = e
				break
			}
		}
		for k, pi := range job.grp.idx {
			if shardErr != nil {
				errs[pi] = shardErr
				continue
			}
			parts := make([]rowSink, len(job.parts))
			for si := range job.parts {
				parts[si] = job.parts[si][k]
			}
			results[pi], errs[pi] = gatherPartials(parts)
		}
	}
	if err := firstError(plans, errs); err != nil {
		return nil, err
	}
	return results, nil
}

// runShardContained executes one shard's scan, containing panics as errors:
// an unrecovered panic on a scatter goroutine would kill the whole process
// (cf. the process pool's runContained and the server batcher's drain).
func runShardContained(ctx context.Context, shard *ColumnStore, plans []*Plan) (sinks []rowSink, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("engine: shard panic: %v", r)
		}
	}()
	return shard.scanPartial(ctx, plans)
}

// gatherPartials merges one plan's per-shard sinks in shard order and
// finishes the first. Shards cover contiguous ascending row ranges, so
// merging in shard order reproduces the unsharded scan exactly: projection
// rows concatenate into ascending row order, and a group's global first-seen
// position is its position in the lowest shard that saw it.
func gatherPartials(parts []rowSink) (*Result, error) {
	base := parts[0]
	for _, part := range parts[1:] {
		switch b := base.(type) {
		case *planSink:
			o, ok := part.(*planSink)
			if !ok {
				return nil, fmt.Errorf("engine: shard sink mismatch: %T vs %T", base, part)
			}
			b.mergeFrom(o)
		case *flatSink:
			o, ok := part.(*flatSink)
			if !ok {
				return nil, fmt.Errorf("engine: shard sink mismatch: %T vs %T", base, part)
			}
			b.mergeFrom(o)
		default:
			return nil, fmt.Errorf("engine: shard sink %T cannot gather", base)
		}
	}
	return base.finish()
}
