// Package engine executes minisql queries against dataset tables. It
// provides three storage back-ends behind one DB interface:
//
//   - RowStore: a full-scan executor with hash aggregation, standing in for
//     the PostgreSQL back-end of the paper,
//   - BitmapStore: a store with one roaring bitmap per distinct value of
//     each indexed categorical column, standing in for zenvisage's "Roaring
//     Bitmap Database",
//   - ColumnStore: a segmented columnar executor that evaluates predicates
//     vectorized over selection bitmaps, skips segments its zone maps prove
//     empty, and aggregates through flat dictionary-code accumulators.
//
// All back-ends share the projection / grouping / aggregation / ordering
// pipeline; they differ only in how they produce the set of matching rows,
// which is exactly the axis the paper's Figure 7.5 experiment measures.
// Results are byte-identical across back-ends — the golden corpus under
// internal/zexec/testdata pins it. See docs/ARCHITECTURE.md for the
// store-by-store comparison and counter semantics.
package engine

import (
	"fmt"
	"strings"

	"repro/internal/dataset"
	"repro/internal/minisql"
)

// rowPredicate tests whether table row i satisfies a predicate.
type rowPredicate func(i int) bool

// compilePredicate resolves column references once and returns a closure
// evaluated per row. A nil expr compiles to an always-true predicate.
func compilePredicate(t *dataset.Table, e minisql.Expr) (rowPredicate, error) {
	if e == nil {
		return func(int) bool { return true }, nil
	}
	switch x := e.(type) {
	case *minisql.And:
		preds := make([]rowPredicate, len(x.Args))
		for i, a := range x.Args {
			p, err := compilePredicate(t, a)
			if err != nil {
				return nil, err
			}
			preds[i] = p
		}
		return func(i int) bool {
			for _, p := range preds {
				if !p(i) {
					return false
				}
			}
			return true
		}, nil
	case *minisql.Or:
		preds := make([]rowPredicate, len(x.Args))
		for i, a := range x.Args {
			p, err := compilePredicate(t, a)
			if err != nil {
				return nil, err
			}
			preds[i] = p
		}
		return func(i int) bool {
			for _, p := range preds {
				if p(i) {
					return true
				}
			}
			return false
		}, nil
	case *minisql.Not:
		p, err := compilePredicate(t, x.Arg)
		if err != nil {
			return nil, err
		}
		return func(i int) bool { return !p(i) }, nil
	case *minisql.Compare:
		return compileCompare(t, x)
	case *minisql.In:
		return compileIn(t, x)
	case *minisql.Like:
		return compileLike(t, x)
	case *minisql.Between:
		return compileBetween(t, x)
	}
	return nil, fmt.Errorf("engine: unsupported predicate %T", e)
}

func lookupColumn(t *dataset.Table, name string) (*dataset.Column, error) {
	c := t.Column(name)
	if c == nil {
		return nil, fmt.Errorf("engine: table %q has no column %q", t.Name, name)
	}
	return c, nil
}

func compileCompare(t *dataset.Table, x *minisql.Compare) (rowPredicate, error) {
	c, err := lookupColumn(t, x.Col)
	if err != nil {
		return nil, err
	}
	if c.Field.Kind == dataset.KindString && x.Val.Kind == dataset.KindString {
		// Dictionary fast path for equality on categorical columns.
		switch x.Op {
		case minisql.CmpEq:
			code := c.CodeOf(x.Val.S)
			if code < 0 {
				return func(int) bool { return false }, nil
			}
			codes := c.Codes()
			return func(i int) bool { return codes[i] == code }, nil
		case minisql.CmpNe:
			code := c.CodeOf(x.Val.S)
			codes := c.Codes()
			return func(i int) bool { return codes[i] != code }, nil
		}
	}
	if c.Field.Kind != dataset.KindString && x.Val.Kind != dataset.KindString {
		want := x.Val.Float()
		op := x.Op
		return func(i int) bool { return cmpFloat(c.Float(i), want, op) }, nil
	}
	// General path: Value comparison.
	op := x.Op
	val := x.Val
	return func(i int) bool {
		cmp := c.Value(i).Compare(val)
		switch op {
		case minisql.CmpEq:
			return cmp == 0 && c.Value(i).Equal(val)
		case minisql.CmpNe:
			return !c.Value(i).Equal(val)
		case minisql.CmpLt:
			return cmp < 0
		case minisql.CmpLe:
			return cmp <= 0
		case minisql.CmpGt:
			return cmp > 0
		case minisql.CmpGe:
			return cmp >= 0
		}
		return false
	}, nil
}

func cmpFloat(a, b float64, op minisql.CmpOp) bool {
	switch op {
	case minisql.CmpEq:
		return a == b
	case minisql.CmpNe:
		return a != b
	case minisql.CmpLt:
		return a < b
	case minisql.CmpLe:
		return a <= b
	case minisql.CmpGt:
		return a > b
	case minisql.CmpGe:
		return a >= b
	}
	return false
}

func compileIn(t *dataset.Table, x *minisql.In) (rowPredicate, error) {
	c, err := lookupColumn(t, x.Col)
	if err != nil {
		return nil, err
	}
	if c.Field.Kind == dataset.KindString {
		want := make(map[int32]bool, len(x.Vals))
		for _, v := range x.Vals {
			if code := c.CodeOf(v.String()); code >= 0 {
				want[code] = true
			}
		}
		codes := c.Codes()
		return func(i int) bool { return want[codes[i]] }, nil
	}
	want := make(map[float64]bool, len(x.Vals))
	for _, v := range x.Vals {
		want[v.Float()] = true
	}
	return func(i int) bool { return want[c.Float(i)] }, nil
}

func compileBetween(t *dataset.Table, x *minisql.Between) (rowPredicate, error) {
	c, err := lookupColumn(t, x.Col)
	if err != nil {
		return nil, err
	}
	if c.Field.Kind != dataset.KindString {
		lo, hi := x.Lo.Float(), x.Hi.Float()
		return func(i int) bool {
			v := c.Float(i)
			return v >= lo && v <= hi
		}, nil
	}
	lo, hi := x.Lo, x.Hi
	return func(i int) bool {
		v := c.Value(i)
		return v.Compare(lo) >= 0 && v.Compare(hi) <= 0
	}, nil
}

func compileLike(t *dataset.Table, x *minisql.Like) (rowPredicate, error) {
	c, err := lookupColumn(t, x.Col)
	if err != nil {
		return nil, err
	}
	m := compileLikeMatcher(x.Pattern)
	if c.Field.Kind == dataset.KindString {
		// Evaluate the pattern once per dictionary entry, not per row.
		dict := c.Dict()
		match := make([]bool, len(dict))
		for i, s := range dict {
			match[i] = m(s)
		}
		codes := c.Codes()
		return func(i int) bool { return match[codes[i]] }, nil
	}
	return func(i int) bool { return m(c.Value(i).String()) }, nil
}

// compileLikeMatcher builds a matcher for a SQL LIKE pattern, where %
// matches any run of characters and _ matches exactly one.
func compileLikeMatcher(pattern string) func(string) bool {
	// Split on % into literal/underscore segments, then greedy match.
	segs := strings.Split(pattern, "%")
	return func(s string) bool { return likeMatch(s, segs, len(segs) == 1) }
}

// likeMatch matches s against segments separated by % wildcards. exact means
// the pattern had no %, so the whole string must be consumed by segs[0].
func likeMatch(s string, segs []string, exact bool) bool {
	if exact {
		return matchSegment(s, segs[0]) && len(s) == len(segs[0])
	}
	// First segment is anchored at the start.
	first := segs[0]
	if len(s) < len(first) || !matchSegment(s[:len(first)], first) {
		return false
	}
	s = s[len(first):]
	// Last segment is anchored at the end.
	last := segs[len(segs)-1]
	if len(s) < len(last) || !matchSegment(s[len(s)-len(last):], last) {
		return false
	}
	rest := s[:len(s)-len(last)]
	// Middle segments float: find each in order.
	for _, seg := range segs[1 : len(segs)-1] {
		idx := findSegment(rest, seg)
		if idx < 0 {
			return false
		}
		rest = rest[idx+len(seg):]
	}
	return true
}

// matchSegment matches a pattern segment (literals and _) against an
// equal-length prefix of s.
func matchSegment(s, seg string) bool {
	if len(s) < len(seg) {
		return false
	}
	for i := 0; i < len(seg); i++ {
		if seg[i] != '_' && seg[i] != s[i] {
			return false
		}
	}
	return true
}

// findSegment returns the first index where seg matches within s, or -1.
func findSegment(s, seg string) int {
	if seg == "" {
		return 0
	}
	for i := 0; i+len(seg) <= len(s); i++ {
		if matchSegment(s[i:], seg) {
			return i
		}
	}
	return -1
}
