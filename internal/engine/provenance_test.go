package engine

import (
	"context"
	"errors"
	"testing"

	"repro/internal/dataset"
)

// provTable builds a table where both numeric zones and categorical
// dictionary bitsets can prove segments empty: day ascends (clusters into
// segments) and region is "early" for the first half of the rows, "late" for
// the second half.
func provTable(nseg int) *dataset.Table {
	t := dataset.NewTable("events", []dataset.Field{
		{Name: "region", Kind: dataset.KindString},
		{Name: "day", Kind: dataset.KindInt},
		{Name: "value", Kind: dataset.KindFloat},
	})
	rows := nseg * segmentSize
	for i := 0; i < rows; i++ {
		region := "early"
		if i >= rows/2 {
			region = "late"
		}
		t.AppendRow(dataset.SV(region), dataset.IV(int64(i/100)), dataset.FV(float64(i%977)))
	}
	return t
}

// TestSkipProvenanceAttribution pins the per-column attribution of zone-map
// skips: each skipped segment is credited to the conjunct (column and
// metadata kind) that proved it empty.
func TestSkipProvenanceAttribution(t *testing.T) {
	const nseg = 4
	col := NewColumnStore(provTable(nseg))
	run := func(sql string) {
		t.Helper()
		if _, err := col.ExecuteSQL(sql); err != nil {
			t.Fatal(err)
		}
	}
	// day = 7 lives inside segment 0: 3 skips via the day zone map.
	run("SELECT COUNT(*) AS n FROM events WHERE day = 7")
	// region = 'late' covers segments 2..3: 2 skips via the region dictionary.
	run("SELECT COUNT(*) AS n FROM events WHERE region = 'late'")
	// A value the dictionary never saw folds to a constant-false filter:
	// 4 skips attributed to region via "const".
	run("SELECT COUNT(*) AS n FROM events WHERE region = 'nope'")
	// A disjunction needs every leg to prove a segment empty; the composite
	// proof is attributed to "(multi)" via "expr".
	run("SELECT COUNT(*) AS n FROM events WHERE day = -1 OR region = 'nope'")

	want := map[SkipAttr]int64{
		{Column: "day", Via: "zonemap"}:  nseg - 1,
		{Column: "region", Via: "dict"}:  nseg / 2,
		{Column: "region", Via: "const"}: nseg,
		{Column: "(multi)", Via: "expr"}: nseg,
	}
	got := col.SkipProvenance()
	if len(got) != len(want) {
		t.Fatalf("provenance = %v, want %v", got, want)
	}
	for a, n := range want {
		if got[a] != n {
			t.Errorf("provenance[%+v] = %d, want %d", a, got[a], n)
		}
	}
	// Total attributed skips must equal the store's skip counter: every skip
	// is attributed, and nothing is attributed twice.
	var attributed int64
	for _, n := range got {
		attributed += n
	}
	if skipped := col.Counters().SegmentsSkipped; attributed != skipped {
		t.Errorf("attributed %d skips, counter says %d", attributed, skipped)
	}
	// SortedSkipAttrs orders by count descending with a deterministic tie
	// break, so /stats and /metrics emit stably.
	sorted := SortedSkipAttrs(got)
	for i := 1; i < len(sorted); i++ {
		if got[sorted[i-1]] < got[sorted[i]] {
			t.Errorf("sorted attrs out of order at %d: %v", i, sorted)
		}
	}
}

// TestSkipProvenanceMergesAcrossShards pins that a sharded store's gathered
// attribution equals the sum of its shards: shard boundaries must not lose
// or double-count skips.
func TestSkipProvenanceMergesAcrossShards(t *testing.T) {
	const nseg = 4
	tb := provTable(nseg)
	col := NewColumnStore(tb)
	sh := NewShardedStore(2, tb)
	sqls := []string{
		"SELECT COUNT(*) AS n FROM events WHERE day = 7",
		"SELECT COUNT(*) AS n FROM events WHERE region = 'late'",
	}
	for _, sql := range sqls {
		if _, err := col.ExecuteSQL(sql); err != nil {
			t.Fatal(err)
		}
		if _, err := sh.ExecuteSQL(sql); err != nil {
			t.Fatal(err)
		}
	}
	want, got := col.SkipProvenance(), sh.SkipProvenance()
	if len(got) != len(want) {
		t.Fatalf("sharded provenance = %v, want %v", got, want)
	}
	for a, n := range want {
		if got[a] != n {
			t.Errorf("sharded provenance[%+v] = %d, want %d", a, got[a], n)
		}
	}
}

// TestExecuteBatchHonorsCanceledContext pins the cancellation boundary for
// every back-end: a canceled context fails the batch with an error that
// still satisfies errors.Is(context.Canceled) after wrapping.
func TestExecuteBatchHonorsCanceledContext(t *testing.T) {
	tb := provTable(2)
	stores := map[string]DB{
		"row":     NewRowStore(tb),
		"bitmap":  NewBitmapStore(tb),
		"column":  NewColumnStore(tb),
		"sharded": NewShardedStore(2, tb),
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for name, db := range stores {
		plans := mustPrepareAll(t, db, []string{"SELECT COUNT(*) AS n FROM events WHERE day = 7"})
		if _, err := db.ExecuteBatch(ctx, plans); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want errors.Is(context.Canceled)", name, err)
		}
		// The store must remain serviceable after a canceled batch.
		if _, err := db.ExecuteBatch(context.Background(), plans); err != nil {
			t.Errorf("%s: batch after cancellation failed: %v", name, err)
		}
	}
}
