package engine

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/minisql"
)

// twoColTable builds a table with two float columns holding identical
// ascending values across nseg segments, plus a categorical column.
func twoColTable(nseg int) *dataset.Table {
	t := dataset.NewTable("p", []dataset.Field{
		{Name: "c", Kind: dataset.KindString},
		{Name: "f", Kind: dataset.KindFloat},
		{Name: "g", Kind: dataset.KindFloat},
	})
	for i := 0; i < nseg*SegmentSize; i++ {
		t.AppendRow(dataset.SV([]string{"a", "b"}[i%2]), dataset.FV(float64(i)), dataset.FV(float64(i)))
	}
	return t
}

// TestPlannerReordersSelectiveFirst pins the core behavior: the most
// selective conjunct is compiled first, and the plan reports the reorder.
func TestPlannerReordersSelectiveFirst(t *testing.T) {
	tb := twoColTable(3)
	cs := NewColumnStore(tb)
	q, err := minisql.Parse("SELECT COUNT(*) AS n FROM p WHERE g < 4096 AND f < 100")
	if err != nil {
		t.Fatal(err)
	}
	p, err := cs.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Reordered() {
		t.Fatal("plan not reordered")
	}
	conjs := p.Conjuncts()
	if len(conjs) != 2 || conjs[0].SQL() != "f < 100" {
		t.Fatalf("planned order = [%s, %s], want f < 100 first", conjs[0].SQL(), conjs[1].SQL())
	}
	if q.Where.SQL() != "g < 4096 AND f < 100" {
		t.Fatalf("planner mutated the AST: %s", q.Where.SQL())
	}
	c := cs.Counters()
	if c.PlansPlanned != 1 || c.PlansReordered != 1 {
		t.Fatalf("planner counters = %d/%d, want 1/1", c.PlansPlanned, c.PlansReordered)
	}
}

// TestSkipProvenancePostReorder is the satellite regression: after the
// planner reorders conjuncts, a segment both conjuncts could prove empty must
// be credited to the conjunct that actually ran first — the planner's pick,
// not the written-first one.
func TestSkipProvenancePostReorder(t *testing.T) {
	// f and g hold identical values, so segments 2 and 3 (values >= 4096) are
	// provably empty under BOTH "g < 4096" (written first) and "f < 100"
	// (planner first). The first prover in evaluation order gets the credit.
	sql := "SELECT COUNT(*) AS n FROM p WHERE g < 4096 AND f < 100"
	run := func(planning bool) map[SkipAttr]int64 {
		cs := NewColumnStore(twoColTable(3))
		cs.SetPlanning(planning)
		if _, err := cs.ExecuteSQL(sql); err != nil {
			t.Fatal(err)
		}
		return cs.SkipProvenance()
	}
	off := run(false)
	if off[SkipAttr{Column: "g", Via: "zonemap"}] != 2 {
		t.Fatalf("planning off: want 2 skips credited to g, got %v", off)
	}
	on := run(true)
	if on[SkipAttr{Column: "f", Via: "zonemap"}] != 2 {
		t.Fatalf("planning on: want 2 skips credited to planner-first f, got %v", on)
	}
	if on[SkipAttr{Column: "g", Via: "zonemap"}] != 0 {
		t.Fatalf("planning on: g still credited: %v", on)
	}
}

// TestPlannerTieKeepsWrittenOrder: fully tied conjuncts (same selectivity,
// cost, provenance) keep written order — the determinism guarantee.
func TestPlannerTieKeepsWrittenOrder(t *testing.T) {
	tb := twoColTable(2)
	ps := newPlannerStats(tb)
	ps.numeric["f"] = numStat{lo: 0, hi: 8191}
	ps.numeric["g"] = numStat{lo: 0, hi: 8191}
	conjs := []minisql.Expr{
		&minisql.Compare{Col: "f", Op: minisql.CmpGt, Val: dataset.FV(100)},
		&minisql.Compare{Col: "g", Op: minisql.CmpGt, Val: dataset.FV(100)},
	}
	ordered, changed := orderConjuncts(ps, conjs)
	if changed {
		t.Fatal("tied conjuncts must not report a reorder")
	}
	if ordered[0].SQL() != "f > 100" || ordered[1].SQL() != "g > 100" {
		t.Fatalf("tied order changed: [%s, %s]", ordered[0].SQL(), ordered[1].SQL())
	}
}

// TestPlannerProvenanceTieBreak: equal scores break toward the conjunct whose
// column has live skip provenance.
func TestPlannerProvenanceTieBreak(t *testing.T) {
	tb := twoColTable(2)
	ps := newPlannerStats(tb)
	ps.numeric["f"] = numStat{lo: 0, hi: 8191}
	ps.numeric["g"] = numStat{lo: 0, hi: 8191}
	ps.withProv(map[SkipAttr]int64{{Column: "g", Via: "zonemap"}: 7})
	conjs := []minisql.Expr{
		&minisql.Compare{Col: "f", Op: minisql.CmpGt, Val: dataset.FV(100)},
		&minisql.Compare{Col: "g", Op: minisql.CmpGt, Val: dataset.FV(100)},
	}
	ordered, changed := orderConjuncts(ps, conjs)
	if !changed || ordered[0].SQL() != "g > 100" {
		t.Fatalf("provenance tie-break failed: first = %s, changed = %v", ordered[0].SQL(), changed)
	}
}

// TestPlannerAllNaNZones: a float column holding only NaN yields no zone
// envelope (its per-segment min/max fold to the +Inf/-Inf identity); its
// conjuncts score by defaults and execution stays correct.
func TestPlannerAllNaNZones(t *testing.T) {
	tb := dataset.NewTable("t", []dataset.Field{
		{Name: "f", Kind: dataset.KindFloat},
		{Name: "g", Kind: dataset.KindFloat},
	})
	for i := 0; i < 2*SegmentSize; i++ {
		tb.AppendRow(dataset.FV(math.NaN()), dataset.FV(float64(i)))
	}
	cs := NewColumnStore(tb)
	ps := cs.plannerStats(cs.cols["t"])
	if _, ok := ps.numeric["f"]; ok {
		t.Fatal("all-NaN column must not report a numeric envelope")
	}
	if _, ok := ps.numeric["g"]; !ok {
		t.Fatal("normal column lost its envelope")
	}
	res, err := cs.ExecuteSQL("SELECT COUNT(*) AS n FROM t WHERE f > 0 AND g < 10")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 0 {
		t.Fatalf("NaN comparisons must match nothing, got %v", res.Rows[0][0])
	}
}

// TestPlannerSingleSegmentAndEmpty: the planner must behave on tables too
// small for zone maps to matter, and on entirely empty tables.
func TestPlannerSingleSegmentAndEmpty(t *testing.T) {
	for _, rows := range []int{0, 5} {
		tb := dataset.NewTable("t", []dataset.Field{
			{Name: "c", Kind: dataset.KindString},
			{Name: "f", Kind: dataset.KindFloat},
		})
		for i := 0; i < rows; i++ {
			tb.AppendRow(dataset.SV("x"), dataset.FV(float64(i)))
		}
		for _, db := range []DB{NewRowStore(tb), NewColumnStore(tb), NewAutoStore(1, tb)} {
			res, err := db.ExecuteSQL("SELECT COUNT(*) AS n FROM t WHERE f >= 1 AND c = 'x'")
			if err != nil {
				t.Fatalf("rows=%d %s: %v", rows, db.Name(), err)
			}
			want := int64(0)
			if rows == 5 {
				want = 4
			}
			if res.Rows[0][0].Int() != want {
				t.Fatalf("rows=%d %s: count = %v, want %d", rows, db.Name(), res.Rows[0][0], want)
			}
		}
	}
}

// TestPlannerUnknownColumnStats: conjuncts on columns absent from every
// dictionary and zone map score by defaults without panicking, and unknown
// column names surface the usual Prepare error.
func TestPlannerUnknownColumnStats(t *testing.T) {
	tb := twoColTable(2)
	ps := newPlannerStats(tb)
	// No addZones: numeric map empty, so every conjunct uses default scores.
	conjs := []minisql.Expr{
		&minisql.Compare{Col: "f", Op: minisql.CmpGt, Val: dataset.FV(1)},
		&minisql.Compare{Col: "c", Op: minisql.CmpEq, Val: dataset.SV("a")},
	}
	ordered, _ := orderConjuncts(ps, conjs)
	// Categorical equality (1/card = 1/2) beats the range default (1/3)?
	// No: 1/3 < 1/2, the range keeps first place. The point is determinism.
	if len(ordered) != 2 {
		t.Fatal("lost a conjunct")
	}
	cs := NewColumnStore(tb)
	if _, err := cs.ExecuteSQL("SELECT COUNT(*) AS n FROM p WHERE nope = 1 AND f > 0"); err == nil {
		t.Fatal("unknown column must fail Prepare")
	}
}

// TestPlannerConstFoldsFirst: conjuncts that fold to constant false (values
// the dictionary never saw, empty IN lists) sort ahead of everything.
func TestPlannerConstFoldsFirst(t *testing.T) {
	tb := twoColTable(2)
	cs := NewColumnStore(tb)
	ps := cs.plannerStats(cs.cols["p"])
	conjs := []minisql.Expr{
		&minisql.Compare{Col: "f", Op: minisql.CmpLt, Val: dataset.FV(10)},
		&minisql.Compare{Col: "c", Op: minisql.CmpEq, Val: dataset.SV("unseen")},
	}
	ordered, changed := orderConjuncts(ps, conjs)
	if !changed || ordered[0].SQL() != "c = 'unseen'" {
		t.Fatalf("constant-false conjunct must run first, got %s", ordered[0].SQL())
	}
	sel, cost := scoreConjunct(ps, conjs[1])
	if sel != 0 || cost != costConst {
		t.Fatalf("dict-miss equality scored (%v, %d), want (0, %d)", sel, cost, costConst)
	}
}

// TestAutoStoreRouting pins the decision table route by route.
func TestAutoStoreRouting(t *testing.T) {
	big := twoColTable(3)
	small := dataset.NewTable("s", []dataset.Field{{Name: "f", Kind: dataset.KindFloat}})
	for i := 0; i < 10; i++ {
		small.AppendRow(dataset.FV(float64(i)))
	}
	as := NewAutoStore(1, big, small)
	cases := []struct {
		sql   string
		route string
	}{
		{"SELECT COUNT(*) AS n FROM s", "tiny"},
		{"SELECT SUM(f) AS s FROM p", "scan-agg"},
		{"SELECT COUNT(*) AS n FROM p WHERE c = 'a'", "eq-dispatch"},
		{"SELECT COUNT(*) AS n FROM p WHERE f < 100 AND c = 'a'", "selective-range"},
		{"SELECT COUNT(*) AS n FROM p WHERE f LIKE '%1%'", "no-zones"},
		{"SELECT COUNT(*) AS n FROM p WHERE f > 1 AND c != 'a'", "default"},
	}
	for _, tc := range cases {
		before := as.RouteCounts()[tc.route]
		res, err := as.ExecuteSQL(tc.sql)
		if err != nil {
			t.Fatalf("%s: %v", tc.sql, err)
		}
		if res == nil || len(res.Rows) == 0 {
			t.Fatalf("%s: empty result", tc.sql)
		}
		if got := as.RouteCounts()[tc.route]; got != before+1 {
			t.Fatalf("%s: route %q count %d -> %d, want +1 (all routes: %v)",
				tc.sql, tc.route, before, got, as.RouteCounts())
		}
	}
	if n := len(SortedRoutes(as.RouteCounts())); n != len(cases) {
		t.Fatalf("%d distinct routes, want %d", n, len(cases))
	}
}

// TestAutoStoreBatchSplitsAcrossSubStores: a batch holding plans routed to
// both halves executes each on its own store and realigns results.
func TestAutoStoreBatchSplitsAcrossSubStores(t *testing.T) {
	big := twoColTable(3)
	small := dataset.NewTable("s", []dataset.Field{{Name: "f", Kind: dataset.KindFloat}})
	for i := 0; i < 10; i++ {
		small.AppendRow(dataset.FV(float64(i)))
	}
	as := NewAutoStore(3, big, small)
	sqls := []string{
		"SELECT COUNT(*) AS n FROM s",               // row half
		"SELECT COUNT(*) AS n FROM p",               // column half
		"SELECT COUNT(*) AS n FROM s WHERE f < 5",   // row half
		"SELECT COUNT(*) AS n FROM p WHERE f < 100", // column half
	}
	plans := make([]*Plan, len(sqls))
	for i, sql := range sqls {
		q, err := minisql.Parse(sql)
		if err != nil {
			t.Fatal(err)
		}
		if plans[i], err = as.Prepare(q); err != nil {
			t.Fatal(err)
		}
	}
	results, err := as.ExecuteBatch(nil, plans)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{10, 3 * SegmentSize, 5, 100}
	for i, res := range results {
		if got := res.Rows[0][0].Int(); got != want[i] {
			t.Fatalf("batch[%d] (%s) = %d, want %d", i, sqls[i], got, want[i])
		}
	}
	// A foreign plan is rejected, not silently misrouted.
	other := NewRowStore(twoColTable(1))
	q, _ := minisql.Parse("SELECT COUNT(*) AS n FROM p")
	fp, err := other.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := as.ExecuteBatch(nil, []*Plan{fp}); err == nil {
		t.Fatal("foreign plan must be rejected")
	}
}

// TestPlanningToggleNeverChangesResults sweeps a fixed query set across every
// store with planning on and off — cheap insurance on top of the fuzzer.
func TestPlanningToggleNeverChangesResults(t *testing.T) {
	tb := twoColTable(2)
	sqls := []string{
		"SELECT c, COUNT(*) AS n FROM p WHERE g < 4096 AND f < 100 GROUP BY c",
		"SELECT SUM(f) AS s FROM p WHERE c = 'a' AND f >= 10 AND g <= 8000",
		"SELECT COUNT(*) AS n FROM p WHERE f BETWEEN 5 AND 4 AND c != 'b'",
	}
	for _, sql := range sqls {
		var want string
		for i, db := range allStores(tb) {
			for _, planning := range []bool{true, false} {
				db.(Planner).SetPlanning(planning)
				res, err := db.ExecuteSQL(sql)
				if err != nil {
					t.Fatalf("%s planning=%v: %v", db.Name(), planning, err)
				}
				got := encodeResult(res)
				if i == 0 && planning {
					want = got
					continue
				}
				if got != want {
					t.Fatalf("%s planning=%v diverged on %q:\n got: %s\nwant: %s",
						db.Name(), planning, sql, got, want)
				}
			}
		}
	}
}

var _ = fmt.Sprintf // keep fmt imported if cases above change
