package engine

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/dataset"
	"repro/internal/minisql"
)

func mustParse(t *testing.T, sql string) *minisql.Query {
	t.Helper()
	q, err := minisql.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// countingSource wraps the eager in-memory source with per-segment load
// counters, the oracle for "a zone-map-skipped segment is never touched".
type countingSource struct {
	SegmentSource
	loads  []atomic.Int64
	failAt int // segment whose load errors, -1 for none
}

func newCountingSource(t *dataset.Table) *countingSource {
	inner := NewMemSource(t)
	return &countingSource{
		SegmentSource: inner,
		loads:         make([]atomic.Int64, inner.NumSegments()),
		failAt:        -1,
	}
}

func (s *countingSource) Load(seg int) error {
	s.loads[seg].Add(1)
	if seg == s.failAt {
		return fmt.Errorf("synthetic load failure on segment %d", seg)
	}
	return s.SegmentSource.Load(seg)
}

// clusteredTable maps segment index to value range: segment s holds ids
// [s*SegmentSize, (s+1)*SegmentSize), so range predicates prune exactly.
func segClusteredTable(nseg int) *dataset.Table {
	t := dataset.NewTable("clustered", []dataset.Field{
		{Name: "id", Kind: dataset.KindInt},
		{Name: "tag", Kind: dataset.KindString},
		{Name: "v", Kind: dataset.KindFloat},
	})
	for i := 0; i < nseg*SegmentSize; i++ {
		t.AppendRow(dataset.IV(int64(i)), dataset.SV(fmt.Sprintf("seg%d", i/SegmentSize)), dataset.FV(float64(i%50)))
	}
	return t
}

func TestLazySourceSkippedSegmentsNotLoaded(t *testing.T) {
	src := newCountingSource(segClusteredTable(6))
	db := NewColumnStoreFromSource(src)

	// A numeric range hitting segment 3 only.
	lo, hi := 3*SegmentSize+10, 3*SegmentSize+20
	res, err := db.ExecuteSQL(fmt.Sprintf("SELECT id FROM clustered WHERE id >= %d AND id < %d", lo, hi))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("rows = %d, want 10", len(res.Rows))
	}
	for s := range src.loads {
		want := int64(0)
		if s == 3 {
			want = 1
		}
		if got := src.loads[s].Load(); got != want {
			t.Errorf("segment %d loaded %d times, want %d", s, got, want)
		}
	}

	// A categorical equality hitting segment 1 only — and rerunning it must
	// not reload (idempotent sources do the work once; the engine still calls
	// Load per visit, so the counting source sees the visits).
	if _, err := db.ExecuteSQL("SELECT COUNT(*) AS n FROM clustered WHERE tag = 'seg1'"); err != nil {
		t.Fatal(err)
	}
	if got := src.loads[0].Load() + src.loads[2].Load() + src.loads[4].Load() + src.loads[5].Load(); got != 0 {
		t.Errorf("categorical query touched skipped segments %d times", got)
	}
	if got := src.loads[1].Load(); got != 1 {
		t.Errorf("segment 1 loads = %d, want 1", got)
	}
}

func TestLazySourceLoadErrorPropagates(t *testing.T) {
	src := newCountingSource(segClusteredTable(3))
	src.failAt = 2
	db := NewColumnStoreFromSource(src)

	// Prunable query avoiding segment 2: runs clean.
	if _, err := db.ExecuteSQL(fmt.Sprintf("SELECT v FROM clustered WHERE id < %d", SegmentSize)); err != nil {
		t.Fatalf("query avoiding the bad segment failed: %v", err)
	}
	// Full scan visits segment 2: the load error must surface, not panic.
	_, err := db.ExecuteSQL("SELECT tag, SUM(v) AS s FROM clustered GROUP BY tag")
	if err == nil || !strings.Contains(err.Error(), "synthetic load failure") {
		t.Fatalf("err = %v, want the synthetic load failure", err)
	}
	// And batches over the poisoned table fail as a unit rather than
	// returning partial results.
	p1, err := db.Prepare(mustParse(t, "SELECT COUNT(*) AS n FROM clustered"))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := db.Prepare(mustParse(t, fmt.Sprintf("SELECT id FROM clustered WHERE id = %d", 2*SegmentSize+1)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.ExecuteBatch(context.Background(), []*Plan{p1, p2}); err == nil {
		t.Fatal("batch touching the bad segment should fail")
	}
}

func TestMemSourceMatchesEagerStore(t *testing.T) {
	tb := segClusteredTable(2)
	eager := NewColumnStore(tb)
	viaSource := NewColumnStoreFromSource(NewMemSource(tb))
	for _, sql := range []string{
		"SELECT tag, COUNT(*) AS n, AVG(v) AS a FROM clustered GROUP BY tag",
		"SELECT id FROM clustered WHERE v = 7 AND id < 100",
	} {
		want, err := eager.ExecuteSQL(sql)
		if err != nil {
			t.Fatal(err)
		}
		got, err := viaSource.ExecuteSQL(sql)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprintf("%v", got) != fmt.Sprintf("%v", want) {
			t.Errorf("%s diverged:\n got %v\nwant %v", sql, got, want)
		}
	}
	if n := eager.NumSegments("clustered"); n != 2 {
		t.Errorf("NumSegments = %d, want 2", n)
	}
	if n := eager.NumSegments("nope"); n != 0 {
		t.Errorf("NumSegments(unknown) = %d, want 0", n)
	}
}
