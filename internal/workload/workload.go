// Package workload generates the synthetic datasets the experiments run on,
// standing in for the paper's data: the 10M-row synthetic sales table, the
// census-income dataset (300k × 40), the airline dataset (15M × 29), and the
// Zillow housing dataset (245k × 15) used in the user study. Generators are
// deterministic in their seed and expose the knobs the experiments sweep:
// row count, group count (distinct Z values × distinct X values), and
// selectivity structure.
//
// Each generator plants per-group trend structure (rising / falling / flat /
// spiked series) so that similarity, representative, and outlier tasks have
// real signal to find, not just noise.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dataset"
)

// SalesConfig parameterizes the synthetic sales dataset of Chapter 7
// (product, size, weight, city, country, category, month, year, profit,
// revenue).
type SalesConfig struct {
	Rows     int
	Products int // distinct 'product' values: the Z cardinality experiments sweep
	Years    int // distinct 'year' values: the X cardinality
	Cities   int
	Seed     int64
}

// DefaultSales is a laptop-scale stand-in for the paper's 10M-row table.
func DefaultSales() SalesConfig {
	return SalesConfig{Rows: 200000, Products: 100, Years: 10, Cities: 20, Seed: 1}
}

// trendShape deterministically assigns each group one of four shapes so task
// processors have structure to discover.
func trendShape(group int) (slope float64, spike bool) {
	switch group % 4 {
	case 0:
		return 1, false // rising
	case 1:
		return -1, false // falling
	case 2:
		return 0, false // flat
	default:
		return 0, true // flat with a spike
	}
}

// Sales generates the synthetic sales table.
func Sales(cfg SalesConfig) *dataset.Table {
	if cfg.Products <= 0 || cfg.Years <= 0 || cfg.Cities <= 0 {
		panic(fmt.Sprintf("workload: bad sales config %+v", cfg))
	}
	t := dataset.NewTable("sales", []dataset.Field{
		{Name: "product", Kind: dataset.KindString},
		{Name: "category", Kind: dataset.KindString},
		{Name: "city", Kind: dataset.KindString},
		{Name: "country", Kind: dataset.KindString},
		{Name: "year", Kind: dataset.KindInt},
		{Name: "month", Kind: dataset.KindInt},
		{Name: "size", Kind: dataset.KindFloat},
		{Name: "weight", Kind: dataset.KindFloat},
		{Name: "profit", Kind: dataset.KindFloat},
		{Name: "revenue", Kind: dataset.KindFloat},
	})
	rng := rand.New(rand.NewSource(cfg.Seed))
	countries := []string{"US", "UK", "DE", "FR", "IN", "CN", "BR", "JP"}
	for i := 0; i < cfg.Rows; i++ {
		p := rng.Intn(cfg.Products)
		year := rng.Intn(cfg.Years)
		month := 1 + rng.Intn(12)
		slope, spike := trendShape(p)
		base := 100 + float64(p%17)*10
		dy := float64(year) / float64(cfg.Years)
		rev := base + slope*dy*100 + rng.Float64()*10
		if spike && year == cfg.Years/2 {
			rev += 150
		}
		profit := rev*0.3 - slope*dy*20 + rng.Float64()*5
		t.AppendRow(
			dataset.SV(fmt.Sprintf("product%04d", p)),
			dataset.SV(fmt.Sprintf("category%d", p%10)),
			dataset.SV(fmt.Sprintf("city%03d", rng.Intn(cfg.Cities))),
			dataset.SV(countries[p%len(countries)]),
			dataset.IV(int64(2006+year)),
			dataset.IV(int64(month)),
			dataset.FV(float64(rng.Intn(100))),
			dataset.FV(float64(rng.Intn(200))),
			dataset.FV(profit),
			dataset.FV(rev),
		)
	}
	return t
}

// AirlineConfig parameterizes the airline-like dataset.
type AirlineConfig struct {
	Rows     int
	Airports int
	Years    int
	Seed     int64
}

// DefaultAirline is a laptop-scale stand-in for the 15M-row airline data.
func DefaultAirline() AirlineConfig {
	return AirlineConfig{Rows: 200000, Airports: 50, Years: 10, Seed: 2}
}

// Airline generates the airline-like delays table.
func Airline(cfg AirlineConfig) *dataset.Table {
	t := dataset.NewTable("airline", []dataset.Field{
		{Name: "airport", Kind: dataset.KindString},
		{Name: "carrier", Kind: dataset.KindString},
		{Name: "origin_state", Kind: dataset.KindString},
		{Name: "year", Kind: dataset.KindInt},
		{Name: "Month", Kind: dataset.KindString},
		{Name: "Day", Kind: dataset.KindInt},
		{Name: "ArrDelay", Kind: dataset.KindFloat},
		{Name: "DepDelay", Kind: dataset.KindFloat},
		{Name: "WeatherDelay", Kind: dataset.KindFloat},
		{Name: "Distance", Kind: dataset.KindFloat},
	})
	rng := rand.New(rand.NewSource(cfg.Seed))
	carriers := []string{"AA", "UA", "DL", "WN", "B6"}
	names := airportNames(cfg.Airports)
	for i := 0; i < cfg.Rows; i++ {
		a := rng.Intn(cfg.Airports)
		year := rng.Intn(cfg.Years)
		month := 1 + rng.Intn(12)
		slope, spike := trendShape(a)
		dy := float64(year) / float64(cfg.Years)
		dep := 20 + slope*dy*30 + rng.Float64()*8
		arr := dep + rng.Float64()*10 - 3
		weather := 5 + slope*dy*8 + rng.Float64()*4
		if spike && month == 12 {
			weather += 25
		}
		t.AppendRow(
			dataset.SV(names[a]),
			dataset.SV(carriers[a%len(carriers)]),
			dataset.SV(fmt.Sprintf("state%02d", a%20)),
			dataset.IV(int64(2005+year)),
			dataset.SV(fmt.Sprintf("%02d", month)),
			dataset.IV(int64(1+rng.Intn(28))),
			dataset.FV(arr),
			dataset.FV(dep),
			dataset.FV(weather),
			dataset.FV(100+rng.Float64()*2500),
		)
	}
	return t
}

func airportNames(n int) []string {
	known := []string{"JFK", "SFO", "ORD", "LAX", "ATL", "DFW", "DEN", "SEA", "BOS", "MIA"}
	out := make([]string, n)
	for i := range out {
		if i < len(known) {
			out[i] = known[i]
		} else {
			out[i] = fmt.Sprintf("AP%03d", i)
		}
	}
	return out
}

// CensusConfig parameterizes the census-income-like dataset: wide, mostly
// categorical, used by the back-end comparison of Figure 7.5(c).
type CensusConfig struct {
	Rows int
	Seed int64
}

// DefaultCensus is a laptop-scale stand-in for the 300k-row census data.
func DefaultCensus() CensusConfig { return CensusConfig{Rows: 100000, Seed: 3} }

// Census generates the census-like table.
func Census(cfg CensusConfig) *dataset.Table {
	fields := []dataset.Field{
		{Name: "age", Kind: dataset.KindInt},
		{Name: "workclass", Kind: dataset.KindString},
		{Name: "education", Kind: dataset.KindString},
		{Name: "marital_status", Kind: dataset.KindString},
		{Name: "occupation", Kind: dataset.KindString},
		{Name: "relationship", Kind: dataset.KindString},
		{Name: "race", Kind: dataset.KindString},
		{Name: "sex", Kind: dataset.KindString},
		{Name: "native_country", Kind: dataset.KindString},
		{Name: "income_class", Kind: dataset.KindString},
		{Name: "hours_per_week", Kind: dataset.KindInt},
		{Name: "capital_gain", Kind: dataset.KindFloat},
		{Name: "capital_loss", Kind: dataset.KindFloat},
		{Name: "wage_per_hour", Kind: dataset.KindFloat},
	}
	t := dataset.NewTable("census", fields)
	rng := rand.New(rand.NewSource(cfg.Seed))
	workclasses := []string{"Private", "SelfEmp", "Federal", "State", "Local", "Unpaid"}
	educations := []string{"HS", "College", "Bachelors", "Masters", "Doctorate", "Some-college", "11th", "9th"}
	maritals := []string{"Married", "Single", "Divorced", "Widowed"}
	occupations := make([]string, 15)
	for i := range occupations {
		occupations[i] = fmt.Sprintf("occ%02d", i)
	}
	relationships := []string{"Husband", "Wife", "Own-child", "Unmarried", "Other"}
	races := []string{"White", "Black", "Asian", "Other"}
	sexes := []string{"Male", "Female"}
	countries := make([]string, 40)
	for i := range countries {
		countries[i] = fmt.Sprintf("country%02d", i)
	}
	for i := 0; i < cfg.Rows; i++ {
		edu := rng.Intn(len(educations))
		wage := 8 + float64(edu)*4 + rng.Float64()*6
		income := "<=50K"
		if wage > 25 {
			income = ">50K"
		}
		t.AppendRow(
			dataset.IV(int64(17+rng.Intn(70))),
			dataset.SV(workclasses[rng.Intn(len(workclasses))]),
			dataset.SV(educations[edu]),
			dataset.SV(maritals[rng.Intn(len(maritals))]),
			dataset.SV(occupations[rng.Intn(len(occupations))]),
			dataset.SV(relationships[rng.Intn(len(relationships))]),
			dataset.SV(races[rng.Intn(len(races))]),
			dataset.SV(sexes[rng.Intn(2)]),
			dataset.SV(countries[rng.Intn(len(countries))]),
			dataset.SV(income),
			dataset.IV(int64(10+rng.Intn(60))),
			dataset.FV(math.Max(0, rng.NormFloat64()*500)),
			dataset.FV(math.Max(0, rng.NormFloat64()*100)),
			dataset.FV(wage),
		)
	}
	return t
}

// HousingConfig parameterizes the Zillow-like housing dataset of the user
// study (city, county, state, year, quarter, month, prices, turnover).
type HousingConfig struct {
	Cities int
	States int
	Years  int
	Seed   int64
}

// DefaultHousing approximates the study's 245k-row table at laptop scale.
func DefaultHousing() HousingConfig {
	return HousingConfig{Cities: 200, States: 20, Years: 12, Seed: 4}
}

// Housing generates the housing table: one row per city per month.
func Housing(cfg HousingConfig) *dataset.Table {
	t := dataset.NewTable("housing", []dataset.Field{
		{Name: "city", Kind: dataset.KindString},
		{Name: "county", Kind: dataset.KindString},
		{Name: "state", Kind: dataset.KindString},
		{Name: "year", Kind: dataset.KindInt},
		{Name: "quarter", Kind: dataset.KindInt},
		{Name: "month", Kind: dataset.KindInt},
		{Name: "SoldPrice", Kind: dataset.KindFloat},
		{Name: "ListingPrice", Kind: dataset.KindFloat},
		{Name: "Turnover_rate", Kind: dataset.KindFloat},
		{Name: "foreclosures", Kind: dataset.KindFloat},
	})
	rng := rand.New(rand.NewSource(cfg.Seed))
	for c := 0; c < cfg.Cities; c++ {
		stateIdx := c % cfg.States
		state := fmt.Sprintf("state%02d", stateIdx)
		county := fmt.Sprintf("county%03d", c%(cfg.Cities/2+1))
		slope, spike := trendShape(c)
		// Even-indexed states have turnover moving against price — the
		// anomaly the Figure 6.5 scenario hunts; odd states co-move.
		turnSlope := slope
		if stateIdx%2 == 0 {
			turnSlope = -slope
		}
		base := 150000 + float64(c%37)*5000
		for y := 0; y < cfg.Years; y++ {
			for m := 1; m <= 12; m++ {
				dy := float64(y) + float64(m-1)/12
				price := base + slope*dy*8000 + rng.Float64()*3000
				if spike && y == cfg.Years/2 {
					// The 2008-2012-style bubble the study's Figure 6.2 hunts.
					price += 60000 * math.Sin(float64(m)/12*math.Pi)
				}
				turnover := 0.05 + 0.002*turnSlope*dy + rng.Float64()*0.002
				foreclosures := math.Max(0, 50-slope*dy*4+rng.Float64()*10)
				t.AppendRow(
					dataset.SV(fmt.Sprintf("city%03d", c)),
					dataset.SV(county),
					dataset.SV(state),
					dataset.IV(int64(2004+y)),
					dataset.IV(int64((m-1)/3+1)),
					dataset.IV(int64(m)),
					dataset.FV(price),
					dataset.FV(price*1.05),
					dataset.FV(turnover),
					dataset.FV(foreclosures),
				)
			}
		}
	}
	return t
}

// GroupSweepClustered builds the same schema and value distributions as
// GroupSweep but with rows arriving ordered by z — the layout of data loaded
// per tenant, per partition, or in time order, where each slice occupies a
// contiguous run of rows. Clustered layouts are what make column-store zone
// maps effective: a per-slice predicate can prove most segments empty.
func GroupSweepClustered(rows, zCard, xCard int, seed int64) *dataset.Table {
	return groupSweep(rows, zCard, xCard, seed, func(i int, _ *rand.Rand) int {
		return i * zCard / rows // contiguous run per z value
	})
}

// GroupSweep builds a sales-like table with exactly the requested number of
// groups = zCard × xCard, the knob Figures 7.4 and 7.5 sweep, holding row
// count fixed.
func GroupSweep(rows, zCard, xCard int, seed int64) *dataset.Table {
	return groupSweep(rows, zCard, xCard, seed, func(_ int, rng *rand.Rand) int {
		return rng.Intn(zCard)
	})
}

// groupSweep is the shared generator; zOf decides each row's z group, which
// is the only thing the clustered and shuffled variants differ in.
func groupSweep(rows, zCard, xCard int, seed int64, zOf func(i int, rng *rand.Rand) int) *dataset.Table {
	t := dataset.NewTable("sweep", []dataset.Field{
		{Name: "z", Kind: dataset.KindString},
		{Name: "x", Kind: dataset.KindInt},
		{Name: "p1", Kind: dataset.KindString},
		{Name: "p2", Kind: dataset.KindString},
		{Name: "y", Kind: dataset.KindFloat},
	})
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < rows; i++ {
		z := zOf(i, rng)
		x := rng.Intn(xCard)
		slope, spike := trendShape(z)
		y := 100 + slope*float64(x)/float64(xCard)*100 + rng.Float64()*10
		if spike && x == xCard/2 {
			y += 120
		}
		// p1 selects ~10% of rows, p2 ~50%: the selectivity predicates of
		// Figure 7.5.
		p1 := "no"
		if rng.Intn(10) == 0 {
			p1 = "yes"
		}
		p2 := "no"
		if rng.Intn(2) == 0 {
			p2 = "yes"
		}
		t.AppendRow(
			dataset.SV(fmt.Sprintf("z%05d", z)),
			dataset.IV(int64(x)),
			dataset.SV(p1),
			dataset.SV(p2),
			dataset.FV(y),
		)
	}
	return t
}
