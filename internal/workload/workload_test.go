package workload

import (
	"testing"

	"repro/internal/dataset"
)

func TestSalesShapeAndDeterminism(t *testing.T) {
	cfg := SalesConfig{Rows: 5000, Products: 20, Years: 8, Cities: 5, Seed: 9}
	a := Sales(cfg)
	b := Sales(cfg)
	if a.NumRows() != 5000 || a.NumCols() != 10 {
		t.Fatalf("shape = %dx%d", a.NumRows(), a.NumCols())
	}
	for i := 0; i < 100; i++ {
		ra, rb := a.Row(i), b.Row(i)
		for j := range ra {
			if !ra[j].Equal(rb[j]) {
				t.Fatalf("not deterministic at row %d", i)
			}
		}
	}
	if got := a.Column("product").Cardinality(); got > 20 {
		t.Errorf("product cardinality = %d", got)
	}
	if got := a.Column("year").DistinctSorted(); len(got) > 8 {
		t.Errorf("years = %d", len(got))
	}
}

func TestSalesPlantedTrends(t *testing.T) {
	tb := Sales(SalesConfig{Rows: 50000, Products: 8, Years: 10, Cities: 5, Seed: 9})
	// product0000 rises, product0001 falls: compare mean revenue in first vs
	// last year.
	meanRev := func(product string, year int64) float64 {
		var sum float64
		var n int
		pc, yc, rc := tb.Column("product"), tb.Column("year"), tb.Column("revenue")
		for i := 0; i < tb.NumRows(); i++ {
			if pc.Value(i).S == product && yc.Value(i).I == year {
				sum += rc.Float(i)
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}
	if meanRev("product0000", 2015) <= meanRev("product0000", 2006) {
		t.Error("product0000 should rise")
	}
	if meanRev("product0001", 2015) >= meanRev("product0001", 2006) {
		t.Error("product0001 should fall")
	}
}

func TestAirlineShape(t *testing.T) {
	tb := Airline(AirlineConfig{Rows: 3000, Airports: 12, Years: 5, Seed: 1})
	if tb.NumRows() != 3000 || tb.NumCols() != 10 {
		t.Fatalf("shape = %dx%d", tb.NumRows(), tb.NumCols())
	}
	if tb.Column("airport").CodeOf("JFK") < 0 {
		t.Error("known airports should appear")
	}
	if tb.Column("Month").Field.Kind != dataset.KindString {
		t.Error("Month must be a string column (the corpus compares Month='06')")
	}
}

func TestCensusShape(t *testing.T) {
	tb := Census(CensusConfig{Rows: 2000, Seed: 1})
	if tb.NumRows() != 2000 || tb.NumCols() != 14 {
		t.Fatalf("shape = %dx%d", tb.NumRows(), tb.NumCols())
	}
	if len(tb.CategoricalColumns()) < 8 {
		t.Error("census should be categorical-heavy")
	}
	// Education correlates with wage by construction.
	var hsSum, phdSum float64
	var hsN, phdN int
	ec, wc := tb.Column("education"), tb.Column("wage_per_hour")
	for i := 0; i < tb.NumRows(); i++ {
		switch ec.Value(i).S {
		case "HS":
			hsSum += wc.Float(i)
			hsN++
		case "Doctorate":
			phdSum += wc.Float(i)
			phdN++
		}
	}
	if hsN == 0 || phdN == 0 || phdSum/float64(phdN) <= hsSum/float64(hsN) {
		t.Error("doctorate wages should exceed HS wages")
	}
}

func TestHousingShape(t *testing.T) {
	cfg := HousingConfig{Cities: 10, States: 3, Years: 4, Seed: 1}
	tb := Housing(cfg)
	if tb.NumRows() != 10*4*12 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	if tb.Column("state").Cardinality() != 3 {
		t.Errorf("states = %d", tb.Column("state").Cardinality())
	}
}

func TestGroupSweepCardinalities(t *testing.T) {
	tb := GroupSweep(20000, 100, 10, 5)
	if got := tb.Column("z").Cardinality(); got > 100 {
		t.Errorf("z cardinality = %d", got)
	}
	if got := len(tb.Column("x").DistinctSorted()); got > 10 {
		t.Errorf("x cardinality = %d", got)
	}
	// p1 selects roughly 10%.
	p1 := tb.Column("p1")
	yes := 0
	for i := 0; i < tb.NumRows(); i++ {
		if p1.Value(i).S == "yes" {
			yes++
		}
	}
	frac := float64(yes) / float64(tb.NumRows())
	if frac < 0.07 || frac > 0.13 {
		t.Errorf("p1 selectivity = %v, want ~0.10", frac)
	}
}

func TestSalesBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Sales(SalesConfig{Rows: 10})
}
