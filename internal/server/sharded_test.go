package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"repro/internal/dataset"
	"repro/internal/zpack"
)

// exactSalesTable is the sharding fixture: multi-segment (12788 rows = 4
// segments), product clustered so zone maps prune whole shards, and every
// measure integer-valued so partial-sum merging is exact and sharded
// responses must be byte-identical to unsharded ones. (workload.Sales has
// fractional measures, whose partial sums are not associative at the ULP —
// fine for serving, wrong for a byte-identity differential.)
func exactSalesTable() *dataset.Table {
	t := dataset.NewTable("sales", []dataset.Field{
		{Name: "product", Kind: dataset.KindString},
		{Name: "year", Kind: dataset.KindInt},
		{Name: "revenue", Kind: dataset.KindFloat},
	})
	const rows, products = 12788, 16
	for i := 0; i < rows; i++ {
		p := i * products / rows
		year := 2006 + i%10
		rev := 100 + (i*37+p*13)%900
		t.AppendRow(
			dataset.SV("product"+string(rune('a'+p%26))),
			dataset.IV(int64(year)),
			dataset.FV(float64(rev)),
		)
	}
	return t
}

const shardedZQL = `
NAME | X      | Y         | Z                 | PROCESS
f1   | 'year' | 'revenue' | v1 <- 'product'.* | v2 <- argmax(v1)[k=3] T(f1)
*f2  | 'year' | 'revenue' | v2                |`

const shardedFilterZQL = `
NAME | X      | Y         | Z
*f1  | 'year' | 'revenue' | 'product'.'producta'`

// TestShardedServerMatchesUnsharded serves the same table sharded and
// unsharded and requires byte-identical query responses, plus the new
// observability: per-shard totals on /stats and the shard count on
// /datasets.
func TestShardedServerMatchesUnsharded(t *testing.T) {
	newSrv := func(shards int) (*httptest.Server, *Registry) {
		reg := NewRegistry()
		if _, err := reg.AddTable(exactSalesTable(), Config{Backend: "column", Shards: shards, Seed: 7}); err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(New(reg))
		t.Cleanup(ts.Close)
		return ts, reg
	}
	plain, _ := newSrv(0)
	sharded, reg := newSrv(3)

	for _, zql := range []string{shardedZQL, shardedFilterZQL} {
		want := postQuery(t, plain.URL+"/query", QueryRequest{Dataset: "sales", ZQL: zql})
		got := postQuery(t, sharded.URL+"/query", QueryRequest{Dataset: "sales", ZQL: zql})
		if !bytes.Equal(got.Result, want.Result) {
			t.Errorf("sharded result differs from unsharded:\nsharded:   %.200s\nunsharded: %.200s", got.Result, want.Result)
		}
	}

	d := reg.Get("sales")
	if d.ShardCount() != 3 {
		t.Fatalf("ShardCount = %d, want 3", d.ShardCount())
	}
	st := d.Stats()
	if len(st.Shards) != 3 {
		t.Fatalf("/stats shards = %d entries, want 3", len(st.Shards))
	}
	var segs int
	var rows, skipped int64
	for _, sc := range st.Shards {
		segs += sc.Segments
		rows += sc.RowsScanned
		skipped += sc.SegmentsSkipped
	}
	if segs != d.Segments() {
		t.Errorf("shard segments sum to %d, dataset has %d", segs, d.Segments())
	}
	if rows != st.RowsScanned || skipped != st.SegmentsSkipped {
		t.Errorf("shard totals (%d rows, %d skipped) disagree with store counters (%d, %d)",
			rows, skipped, st.RowsScanned, st.SegmentsSkipped)
	}

	// Unsharded datasets must not grow a shards array or count.
	preg := NewRegistry()
	if _, err := preg.AddTable(exactSalesTable(), Config{Backend: "column", Seed: 7}); err != nil {
		t.Fatal(err)
	}
	if pd := preg.Get("sales"); pd.ShardCount() != 0 || pd.Stats().Shards != nil {
		t.Errorf("unsharded dataset reports shards: count=%d stats=%v", pd.ShardCount(), pd.Stats().Shards)
	}

	// /datasets carries the shard count.
	resp, raw := get(t, sharded.URL+"/datasets")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("datasets status %d", resp.StatusCode)
	}
	var listing struct {
		Datasets []DatasetInfo `json:"datasets"`
	}
	if err := json.Unmarshal(raw, &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Datasets) != 1 || listing.Datasets[0].Shards != 3 {
		t.Errorf("datasets listing = %+v, want shards 3", listing.Datasets)
	}
}

// TestShardedRowBackendIgnoresShards pins that Shards is a no-op for
// non-columnar back-ends rather than an error.
func TestShardedRowBackendIgnoresShards(t *testing.T) {
	reg := NewRegistry()
	d, err := reg.AddTable(exactSalesTable(), Config{Backend: "row", Shards: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if d.ShardCount() != 0 {
		t.Errorf("row backend ShardCount = %d, want 0", d.ShardCount())
	}
}

// TestShardedZpackAppend covers the shard-aware snapshot swap: a sharded
// zpack dataset accepts appends, the successor is re-split (appended
// segments land in the tail shard's range), and post-append responses match
// an unsharded server over the same extended file byte for byte.
func TestShardedZpackAppend(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sales.zpack")
	if err := zpack.Build(path, exactSalesTable()); err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	d, err := reg.AddZpack("sales", path, Config{Shards: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if d.ShardCount() != 3 {
		t.Fatalf("zpack ShardCount = %d, want 3", d.ShardCount())
	}
	ts := httptest.NewServer(New(reg))
	t.Cleanup(ts.Close)

	before := postQuery(t, ts.URL+"/query", QueryRequest{Dataset: "sales", ZQL: shardedFilterZQL})

	// 600 exact-valued rows for the filtered product: crosses into a new
	// tail segment (12788 + 600 = 13388 -> still 4 segments? 4*4096 = 16384;
	// the tail segment just grows) and must invalidate the cached result.
	rows := make([][]any, 600)
	for i := range rows {
		rows[i] = []any{"producta", float64(2006 + i%10), float64(500 + i%100)}
	}
	out, resp, raw := appendRows(t, ts.URL, "sales", rows)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("append status %d: %s", resp.StatusCode, raw)
	}
	if out.Rows != 12788+600 {
		t.Fatalf("append response rows = %d", out.Rows)
	}
	nd := reg.Get("sales")
	if nd == d {
		t.Fatal("append did not swap the dataset")
	}
	if nd.ShardCount() != 3 {
		t.Errorf("successor ShardCount = %d, want 3 (config survives the swap)", nd.ShardCount())
	}

	after := postQuery(t, ts.URL+"/query", QueryRequest{Dataset: "sales", ZQL: shardedFilterZQL})
	if bytes.Equal(before.Result, after.Result) {
		t.Error("append did not change the filtered query result")
	}

	// Ground truth: an unsharded server over the same extended file.
	preg := NewRegistry()
	if _, err := preg.AddZpack("sales", path, Config{Shards: 1, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	pts := httptest.NewServer(New(preg))
	t.Cleanup(pts.Close)
	want := postQuery(t, pts.URL+"/query", QueryRequest{Dataset: "sales", ZQL: shardedFilterZQL})
	if !bytes.Equal(after.Result, want.Result) {
		t.Errorf("post-append sharded result differs from unsharded reader:\nsharded:   %.200s\nunsharded: %.200s", after.Result, want.Result)
	}
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}
