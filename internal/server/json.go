package server

import (
	"math"
	"strconv"

	"repro/internal/dataset"
	"repro/internal/recommend"
	"repro/internal/vis"
	"repro/internal/zexec"
)

// The wire format. Result payloads are a pure function of the zexec result,
// so a server response is byte-identical to an in-process client.Session run
// encoded through the same functions — volatile run statistics travel in a
// separate field.

// PointJSON is one (x, y) pair; x keeps its dynamic type (number or string),
// and y degrades to a string for non-finite values, which JSON numbers cannot
// carry (and which would otherwise abort encoding mid-response).
type PointJSON struct {
	X any `json:"x"`
	Y any `json:"y"`
}

// SliceJSON is one Z-column selection.
type SliceJSON struct {
	Attr  string `json:"attr"`
	Value string `json:"value"`
}

// VisualizationJSON is the wire form of one chart.
type VisualizationJSON struct {
	XAttr   string      `json:"xAttr"`
	YAttr   string      `json:"yAttr"`
	Slices  []SliceJSON `json:"slices,omitempty"`
	VizType string      `json:"vizType,omitempty"`
	Label   string      `json:"label"`
	Points  []PointJSON `json:"points"`
}

// CollectionJSON is an ordered collection of visualizations.
type CollectionJSON struct {
	Visualizations []VisualizationJSON `json:"visualizations"`
}

// ResultJSON is the deterministic payload of a query execution.
type ResultJSON struct {
	Outputs  []CollectionJSON    `json:"outputs"`
	Bindings map[string][]string `json:"bindings,omitempty"`
	SQLLog   []string            `json:"sqlLog,omitempty"`
}

// RunStatsJSON reports what one execution cost. RowsScanned is measured as a
// delta of the dataset's cumulative engine counter over the request, so under
// concurrent traffic it also includes rows scanned for overlapping requests —
// and a coalesced shared scan's cost is inherently joint. Treat it as an
// indicator per request; the per-dataset counters on /stats are exact.
type RunStatsJSON struct {
	SQLQueries  int   `json:"sqlQueries"`
	Requests    int   `json:"requests"`
	RowsScanned int64 `json:"rowsScanned"`
	// SegmentsSkipped is nonzero only on the column backend: segments the
	// zone maps proved empty for this request's plans.
	SegmentsSkipped int64   `json:"segmentsSkipped"`
	QueryTimeMs     float64 `json:"queryTimeMs"`
	ProcessTimeMs   float64 `json:"processTimeMs"`
	// Process-phase work: tuples scored and distance calls made for this
	// execution, with the subset the top-k pruning kernels abandoned early.
	TuplesEvaluated int64 `json:"tuplesEvaluated"`
	DistCalls       int64 `json:"distCalls"`
	DistAbandoned   int64 `json:"distAbandoned"`
}

// RecommendationJSON is one recommended trend.
type RecommendationJSON struct {
	Visualization VisualizationJSON `json:"visualization"`
	ClusterSize   int               `json:"clusterSize"`
}

// valueJSON renders a dataset value for JSON: numerics stay numeric, strings
// stay strings, NULL and non-finite floats degrade to their string rendering.
func valueJSON(v dataset.Value) any {
	switch v.Kind {
	case dataset.KindInt:
		return v.I
	case dataset.KindFloat:
		return floatJSON(v.F)
	default:
		return v.String()
	}
}

// floatJSON keeps finite floats numeric and renders NaN/Inf as strings.
func floatJSON(f float64) any {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return strconv.FormatFloat(f, 'g', -1, 64)
	}
	return f
}

// EncodeVisualization converts one visualization to its wire form.
func EncodeVisualization(v *vis.Visualization) VisualizationJSON {
	out := VisualizationJSON{
		XAttr:   v.XAttr,
		YAttr:   v.YAttr,
		VizType: v.VizType,
		Label:   v.Label(),
		Points:  make([]PointJSON, len(v.Points)),
	}
	for _, s := range v.Slices {
		out.Slices = append(out.Slices, SliceJSON{Attr: s.Attr, Value: s.Value})
	}
	for i, p := range v.Points {
		out.Points[i] = PointJSON{X: valueJSON(p.X), Y: floatJSON(p.Y)}
	}
	return out
}

// EncodeResult converts a zexec result to the deterministic wire payload.
func EncodeResult(res *zexec.Result) ResultJSON {
	out := ResultJSON{
		Outputs:  make([]CollectionJSON, len(res.Outputs)),
		Bindings: res.Bindings,
		SQLLog:   res.SQLLog,
	}
	for i, coll := range res.Outputs {
		c := CollectionJSON{Visualizations: make([]VisualizationJSON, len(coll.Vis))}
		for j, v := range coll.Vis {
			c.Visualizations[j] = EncodeVisualization(v)
		}
		out.Outputs[i] = c
	}
	return out
}

// EncodeStats converts run statistics to their wire form.
func EncodeStats(s zexec.Stats) RunStatsJSON {
	return RunStatsJSON{
		SQLQueries:      s.SQLQueries,
		Requests:        s.Requests,
		RowsScanned:     s.RowsScanned,
		SegmentsSkipped: s.SegmentsSkipped,
		QueryTimeMs:     float64(s.QueryTime.Microseconds()) / 1000,
		ProcessTimeMs:   float64(s.ProcessTime.Microseconds()) / 1000,
		TuplesEvaluated: s.Process.Tuples,
		DistCalls:       s.Process.DistCalls,
		DistAbandoned:   s.Process.DistAbandoned,
	}
}

// EncodeRecommendations converts recommendations to their wire form.
func EncodeRecommendations(recs []recommend.Recommendation) []RecommendationJSON {
	out := make([]RecommendationJSON, len(recs))
	for i, r := range recs {
		out[i] = RecommendationJSON{Visualization: EncodeVisualization(r.Vis), ClusterSize: r.ClusterSize}
	}
	return out
}
