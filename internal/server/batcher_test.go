package server

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/minisql"
	"repro/internal/workload"
)

// slowDB wraps a real store, counting ExecuteBatch calls and holding each one
// open long enough for concurrent submissions to pile up behind it. A batch
// containing a plan whose SQL matches poison fails, modeling a store-side
// execution error.
type slowDB struct {
	engine.DB
	delay  time.Duration
	poison string
	calls  atomic.Int64
}

func (d *slowDB) ExecuteBatch(ctx context.Context, plans []*engine.Plan) ([]*engine.Result, error) {
	d.calls.Add(1)
	time.Sleep(d.delay)
	if d.poison != "" {
		for _, p := range plans {
			if strings.Contains(p.SQL(), d.poison) {
				return nil, errors.New("poisoned batch")
			}
		}
	}
	return d.DB.ExecuteBatch(ctx, plans)
}

func batcherFixture(t *testing.T, delay time.Duration, poison string) (*slowDB, *batcher, []*engine.Plan) {
	t.Helper()
	tbl := workload.Sales(workload.SalesConfig{Rows: 2000, Products: 4, Years: 5, Cities: 2, Seed: 2})
	db := &slowDB{DB: engine.NewRowStore(tbl), delay: delay, poison: poison}
	bat := newBatcher(db, 1, 0)
	sqls := []string{
		"SELECT year, SUM(revenue) FROM sales GROUP BY year ORDER BY year",
		"SELECT product, COUNT(*) FROM sales GROUP BY product ORDER BY product",
		"SELECT year, AVG(profit) FROM sales WHERE product='product0000' GROUP BY year ORDER BY year",
	}
	plans := make([]*engine.Plan, len(sqls))
	for i, sql := range sqls {
		q, err := minisql.Parse(sql)
		if err != nil {
			t.Fatal(err)
		}
		if plans[i], err = db.Prepare(q); err != nil {
			t.Fatal(err)
		}
	}
	return db, bat, plans
}

func TestBatcherCoalescesConcurrentSubmissions(t *testing.T) {
	db, bat, plans := batcherFixture(t, 30*time.Millisecond, "")
	// Sequential baselines for correctness comparison.
	want := make([]*engine.Result, len(plans))
	for i, p := range plans {
		r, err := p.Execute()
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}
	const submitters = 12
	var wg sync.WaitGroup
	errs := make(chan error, submitters)
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			pi := g % len(plans)
			results, err := bat.submit(context.Background(), []*engine.Plan{plans[pi]})
			if err != nil {
				errs <- err
				return
			}
			if err := sameResult(results[0], want[pi]); err != nil {
				errs <- err
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	calls := db.calls.Load()
	if calls >= submitters {
		t.Errorf("engine saw %d batches for %d submissions; expected coalescing", calls, submitters)
	}
	s := bat.stats()
	if s.Submissions != submitters || s.Batches != calls || s.Coalesced == 0 {
		t.Errorf("stats = %+v (engine calls %d)", s, calls)
	}
}

func TestBatcherIsolatesErrorsToTheFailingSubmission(t *testing.T) {
	db, bat, plans := batcherFixture(t, 30*time.Millisecond, "product0000")
	// Occupy the single worker so the next submissions coalesce into one
	// batch containing both the poisoned and a healthy plan.
	blocker := make(chan error, 1)
	go func() {
		_, err := bat.submit(context.Background(), []*engine.Plan{plans[0]})
		blocker <- err
	}()
	time.Sleep(10 * time.Millisecond)
	var wg sync.WaitGroup
	var poisonErr, goodErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, poisonErr = bat.submit(context.Background(), []*engine.Plan{plans[2]}) // matches poison
	}()
	go func() {
		defer wg.Done()
		_, goodErr = bat.submit(context.Background(), []*engine.Plan{plans[1]})
	}()
	wg.Wait()
	if err := <-blocker; err != nil {
		t.Fatalf("blocker failed: %v", err)
	}
	if poisonErr == nil {
		t.Error("poisoned submission should fail")
	}
	if goodErr != nil {
		t.Errorf("healthy submission failed alongside the poisoned one: %v", goodErr)
	}
	if db.calls.Load() < 3 {
		t.Errorf("expected a fallback re-execution, saw %d engine calls", db.calls.Load())
	}
	// Accounting stays consistent through the fallback: the failed shared
	// attempt is replaced by its per-submission executions, so the "scans
	// saved" gap never goes negative and nothing counts as coalesced.
	s := bat.stats()
	if s.Batches > s.Submissions {
		t.Errorf("Batches %d > Submissions %d after fallback", s.Batches, s.Submissions)
	}
	if s.Coalesced != 0 {
		t.Errorf("Coalesced = %d, want 0 (shared batch failed)", s.Coalesced)
	}
}

// panicDB panics on any batch containing a plan whose SQL matches trigger,
// modeling a latent engine bug.
type panicDB struct {
	engine.DB
	trigger string
}

func (d *panicDB) ExecuteBatch(ctx context.Context, plans []*engine.Plan) ([]*engine.Result, error) {
	for _, p := range plans {
		if strings.Contains(p.SQL(), d.trigger) {
			panic("latent engine bug")
		}
	}
	return d.DB.ExecuteBatch(ctx, plans)
}

func TestBatcherContainsEnginePanics(t *testing.T) {
	tbl := workload.Sales(workload.SalesConfig{Rows: 1000, Products: 4, Years: 5, Cities: 2, Seed: 2})
	db := &panicDB{DB: engine.NewRowStore(tbl), trigger: "product0000"}
	bat := newBatcher(db, 1, 0)
	prep := func(sql string) *engine.Plan {
		q, err := minisql.Parse(sql)
		if err != nil {
			t.Fatal(err)
		}
		p, err := db.Prepare(q)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	bad := prep("SELECT COUNT(*) FROM sales WHERE product='product0000'")
	good := prep("SELECT COUNT(*) FROM sales")
	if _, err := bat.submit(context.Background(), []*engine.Plan{bad}); err == nil || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("panicking submission: err = %v, want contained panic", err)
	}
	// The batcher (and its worker accounting) must survive to serve the next
	// submission.
	results, err := bat.submit(context.Background(), []*engine.Plan{good})
	if err != nil {
		t.Fatalf("healthy submission after panic: %v", err)
	}
	if len(results) != 1 || len(results[0].Rows) != 1 {
		t.Fatalf("results = %+v", results)
	}
}

// sameResult compares two engine results cell by cell.
func sameResult(got, want *engine.Result) error {
	if len(got.Rows) != len(want.Rows) {
		return fmt.Errorf("%d rows, want %d", len(got.Rows), len(want.Rows))
	}
	for i := range got.Rows {
		for j := range got.Rows[i] {
			if !got.Rows[i][j].Equal(want.Rows[i][j]) {
				return fmt.Errorf("row %d col %d = %v, want %v", i, j, got.Rows[i][j], want.Rows[i][j])
			}
		}
	}
	return nil
}
