package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"

	"repro/internal/dataset"
	"repro/internal/frontend"
	"repro/internal/zexec"
)

// maxBodyBytes bounds request bodies; ZQL text and drawn trends are tiny.
const maxBodyBytes = 1 << 20

// maxAppendBodyBytes bounds POST /datasets/{name}/append bodies, which carry
// row data rather than query text.
const maxAppendBodyBytes = 16 << 20

// Server is the HTTP query server: a mux over a dataset registry.
//
// Endpoints:
//
//	POST /query                   raw ZQL -> executed result
//	POST /spec                    drag-and-drop spec -> ZQL -> executed result
//	POST /recommend               diverse-trend recommendations for an axis triple
//	POST /datasets/{name}/append  extend a zpack-backed dataset with rows
//	GET  /datasets                registered datasets with schemas
//	GET  /stats                   engine / cache / coalescing / HTTP counters
//	GET  /healthz                 liveness probe
type Server struct {
	reg *Registry
	mux *http.ServeMux
}

// New builds a server over the registry.
func New(reg *Registry) *Server {
	s := &Server{reg: reg, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /query", s.handleQuery)
	s.mux.HandleFunc("POST /spec", s.handleSpec)
	s.mux.HandleFunc("POST /recommend", s.handleRecommend)
	s.mux.HandleFunc("POST /datasets/{name}/append", s.handleAppend)
	s.mux.HandleFunc("GET /datasets", s.handleDatasets)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return s
}

// ServeHTTP dispatches to the endpoint handlers.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// errorJSON is the uniform error envelope.
type errorJSON struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorJSON{Error: err.Error()})
}

// decodeBody decodes a bounded JSON request body, rejecting unknown fields so
// typos in hand-written curl payloads fail loudly.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

// dataset resolves the request's dataset or writes a 404.
func (s *Server) dataset(w http.ResponseWriter, name string) *Dataset {
	if name == "" {
		writeError(w, http.StatusBadRequest, errors.New("missing \"dataset\""))
		return nil
	}
	d := s.reg.Get(name)
	if d == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("no dataset %q", name))
	}
	return d
}

// optLevel resolves a request's optional "opt" field against the dataset
// default.
func optLevel(d *Dataset, name string) (zexec.OptLevel, error) {
	if name == "" {
		return d.Opt(), nil
	}
	return zexec.OptLevelByName(name)
}

// QueryRequest is the body of POST /query.
type QueryRequest struct {
	Dataset string               `json:"dataset"`
	ZQL     string               `json:"zql"`
	Inputs  map[string][]float64 `json:"inputs,omitempty"`
	Opt     string               `json:"opt,omitempty"`
}

// QueryResponse is the body of POST /query and POST /spec responses. Result
// is deterministic for a given dataset and query; Stats varies run to run.
type QueryResponse struct {
	Dataset string       `json:"dataset"`
	ZQL     string       `json:"zql,omitempty"`
	Result  ResultJSON   `json:"result"`
	Stats   RunStatsJSON `json:"stats"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	d := s.dataset(w, req.Dataset)
	if d == nil {
		return
	}
	d.ctr.queries.Add(1)
	s.execute(w, d, req.ZQL, req.Inputs, req.Opt, "")
}

// SpecJSON is the wire form of the drag-and-drop interface state
// (frontend.Spec with the task named instead of enumerated).
type SpecJSON struct {
	X       string       `json:"x"`
	Y       string       `json:"y"`
	Z       string       `json:"z,omitempty"`
	ZValue  string       `json:"zValue,omitempty"`
	Filters []FilterJSON `json:"filters,omitempty"`
	VizType string       `json:"vizType,omitempty"`
	Agg     string       `json:"agg,omitempty"`
	Task    string       `json:"task,omitempty"`
	K       int          `json:"k,omitempty"`
	Drawn   []float64    `json:"drawn,omitempty"`
}

// FilterJSON is one row of the filters panel.
type FilterJSON struct {
	Attr  string `json:"attr"`
	Op    string `json:"op,omitempty"`
	Value string `json:"value"`
}

// toSpec maps the wire spec onto the front-end translation input.
func (sj *SpecJSON) toSpec() (frontend.Spec, error) {
	task, err := frontend.TaskByName(sj.Task)
	if err != nil {
		return frontend.Spec{}, err
	}
	spec := frontend.Spec{
		X: sj.X, Y: sj.Y, Z: sj.Z, ZValue: sj.ZValue,
		VizType: sj.VizType, Agg: sj.Agg,
		Task: task, K: sj.K, Drawn: sj.Drawn,
	}
	for _, f := range sj.Filters {
		spec.Filters = append(spec.Filters, frontend.Filter{Attr: f.Attr, Op: f.Op, Value: f.Value})
	}
	return spec, nil
}

// SpecRequest is the body of POST /spec.
type SpecRequest struct {
	Dataset string   `json:"dataset"`
	Spec    SpecJSON `json:"spec"`
	Opt     string   `json:"opt,omitempty"`
}

func (s *Server) handleSpec(w http.ResponseWriter, r *http.Request) {
	var req SpecRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	d := s.dataset(w, req.Dataset)
	if d == nil {
		return
	}
	d.ctr.specs.Add(1)
	spec, err := req.Spec.toSpec()
	if err != nil {
		d.ctr.errors.Add(1)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	zqlText, inputs, err := spec.ToZQL()
	if err != nil {
		d.ctr.errors.Add(1)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.execute(w, d, zqlText, inputs, req.Opt, zqlText)
}

// execute runs ZQL text through the dataset's session and writes the
// response; echoZQL, when non-empty, is included so /spec callers can see the
// translation.
func (s *Server) execute(w http.ResponseWriter, d *Dataset, zqlText string, inputs map[string][]float64, optName, echoZQL string) {
	opt, err := optLevel(d, optName)
	if err != nil {
		d.ctr.errors.Add(1)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	res, err := d.session.QueryAt(zqlText, inputs, opt)
	if err != nil {
		d.ctr.errors.Add(1)
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	d.recordProcess(res.Stats.Process)
	writeJSON(w, http.StatusOK, QueryResponse{
		Dataset: d.name,
		ZQL:     echoZQL,
		Result:  EncodeResult(res),
		Stats:   EncodeStats(res.Stats),
	})
}

// RecommendRequest is the body of POST /recommend.
type RecommendRequest struct {
	Dataset string `json:"dataset"`
	X       string `json:"x"`
	Y       string `json:"y"`
	Z       string `json:"z"`
	K       int    `json:"k,omitempty"`
}

// RecommendResponse is the body of POST /recommend responses.
type RecommendResponse struct {
	Dataset         string               `json:"dataset"`
	Recommendations []RecommendationJSON `json:"recommendations"`
}

func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	var req RecommendRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	d := s.dataset(w, req.Dataset)
	if d == nil {
		return
	}
	d.ctr.recommends.Add(1)
	recs, err := d.session.Recommend(req.X, req.Y, req.Z, req.K)
	if err != nil {
		d.ctr.errors.Add(1)
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, RecommendResponse{
		Dataset:         d.name,
		Recommendations: EncodeRecommendations(recs),
	})
}

// ColumnInfo describes one column of a served dataset.
type ColumnInfo struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
}

// DatasetInfo describes one served dataset: what's loaded (backend, rows,
// zone-map segments, persistence) and its schema.
type DatasetInfo struct {
	Name       string       `json:"name"`
	Backend    string       `json:"backend"`
	Rows       int          `json:"rows"`
	Segments   int          `json:"segments"`
	Shards     int          `json:"shards,omitempty"`
	Appendable bool         `json:"appendable"`
	Opt        string       `json:"opt"`
	Columns    []ColumnInfo `json:"columns"`
}

func (s *Server) handleDatasets(w http.ResponseWriter, _ *http.Request) {
	list := s.reg.List()
	out := struct {
		Datasets []DatasetInfo `json:"datasets"`
	}{Datasets: make([]DatasetInfo, len(list))}
	for i, d := range list {
		info := DatasetInfo{
			Name:       d.name,
			Backend:    d.backend,
			Rows:       d.table.NumRows(),
			Segments:   d.Segments(),
			Shards:     d.ShardCount(),
			Appendable: d.Appendable(),
			Opt:        d.Opt().String(),
		}
		for _, c := range d.table.Columns() {
			info.Columns = append(info.Columns, ColumnInfo{Name: c.Field.Name, Kind: c.Field.Kind.String()})
		}
		out.Datasets[i] = info
	}
	writeJSON(w, http.StatusOK, out)
}

// AppendRequest is the body of POST /datasets/{name}/append: rows as arrays
// of cells in schema column order — strings for categorical columns, JSON
// numbers for numeric ones (integer columns reject fractional values).
type AppendRequest struct {
	Rows [][]any `json:"rows"`
}

// AppendResponse reports the extended dataset after a successful append.
type AppendResponse struct {
	Dataset  string `json:"dataset"`
	Appended int    `json:"appended"`
	Rows     int    `json:"rows"`
	Segments int    `json:"segments"`
}

func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req AppendRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxAppendBodyBytes))
	dec.DisallowUnknownFields()
	// Numbers decode as json.Number, not float64: int64 values above 2^53
	// would silently lose precision through a float64 round trip.
	dec.UseNumber()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	d := s.dataset(w, name)
	if d == nil {
		return
	}
	rows, err := coerceRows(d.Table(), req.Rows)
	if err != nil {
		d.ctr.errors.Add(1)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	nd, err := s.reg.Append(name, rows)
	if err != nil {
		d.ctr.errors.Add(1)
		status := http.StatusInternalServerError
		if errors.Is(err, ErrNotAppendable) {
			status = http.StatusConflict
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, AppendResponse{
		Dataset:  name,
		Appended: len(rows),
		Rows:     nd.Table().NumRows(),
		Segments: nd.Segments(),
	})
}

// coerceNumber converts one JSON number onto a numeric column kind. Integer
// columns parse the literal as int64 directly (full 64-bit precision — no
// float64 round trip) and accept float-formatted values only when they are
// integral and below the float64 exact-integer bound.
func coerceNumber(f dataset.Field, v json.Number) (dataset.Value, error) {
	switch f.Kind {
	case dataset.KindInt:
		if i, err := v.Int64(); err == nil {
			return dataset.IV(i), nil
		}
		fv, err := v.Float64()
		if err != nil || fv != math.Trunc(fv) || math.Abs(fv) > 1<<53 {
			return dataset.Value{}, fmt.Errorf("column %q is int, got %v", f.Name, v)
		}
		return dataset.IV(int64(fv)), nil
	case dataset.KindFloat:
		fv, err := v.Float64()
		if err != nil {
			return dataset.Value{}, fmt.Errorf("column %q: bad number %v: %w", f.Name, v, err)
		}
		return dataset.FV(fv), nil
	default:
		return dataset.Value{}, fmt.Errorf("column %q is string, got number %v", f.Name, v)
	}
}

// coerceRows converts wire cells onto the dataset schema, strictly: string
// columns take JSON strings, numeric columns take JSON numbers, and integer
// columns additionally require integral values.
func coerceRows(t *dataset.Table, raw [][]any) ([]dataset.Row, error) {
	cols := t.Columns()
	rows := make([]dataset.Row, len(raw))
	for ri, rec := range raw {
		if len(rec) != len(cols) {
			return nil, fmt.Errorf("row %d has %d cells, schema has %d columns", ri, len(rec), len(cols))
		}
		row := make(dataset.Row, len(cols))
		for j, cell := range rec {
			f := cols[j].Field
			switch v := cell.(type) {
			case string:
				if f.Kind != dataset.KindString {
					return nil, fmt.Errorf("row %d: column %q is %s, got string %q", ri, f.Name, f.Kind, v)
				}
				row[j] = dataset.SV(v)
			case json.Number:
				val, err := coerceNumber(f, v)
				if err != nil {
					return nil, fmt.Errorf("row %d: %w", ri, err)
				}
				row[j] = val
			default:
				return nil, fmt.Errorf("row %d: column %q: unsupported cell %T", ri, f.Name, cell)
			}
		}
		rows[ri] = row
	}
	return rows, nil
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	out := struct {
		Datasets map[string]DatasetStats `json:"datasets"`
	}{Datasets: make(map[string]DatasetStats)}
	for _, d := range s.reg.List() {
		out.Datasets[d.name] = d.Stats()
	}
	writeJSON(w, http.StatusOK, out)
}
