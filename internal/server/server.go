package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"time"

	"repro/internal/dataset"
	"repro/internal/frontend"
	"repro/internal/trace"
	"repro/internal/zexec"
)

// maxBodyBytes bounds request bodies; ZQL text and drawn trends are tiny.
const maxBodyBytes = 1 << 20

// maxAppendBodyBytes bounds POST /datasets/{name}/append bodies, which carry
// row data rather than query text.
const maxAppendBodyBytes = 16 << 20

// Server is the HTTP query server: a mux over a dataset registry.
//
// Endpoints:
//
//	POST /query                   raw ZQL -> executed result
//	POST /spec                    drag-and-drop spec -> ZQL -> executed result
//	POST /recommend               diverse-trend recommendations for an axis triple
//	POST /datasets/{name}/append  extend a zpack-backed dataset with rows
//	GET  /datasets                registered datasets with schemas
//	GET  /stats                   engine / cache / coalescing / HTTP counters
//	GET  /metrics                 Prometheus text exposition of the same counters
//	GET  /healthz                 liveness probe (process is up)
//	GET  /readyz                  readiness probe (datasets loaded, no swap in flight)
//
// Every response carries an X-Request-ID (inbound IDs are honored). Query
// execution runs under the request's context: the server default deadline
// (WithTimeout) or a per-request X-Timeout header bounds it, and a request
// that exceeds its deadline gets 504 with the partial execution statistics.
type Server struct {
	reg     *Registry
	mux     *http.ServeMux
	handler http.Handler // mux wrapped in request instrumentation
	metrics *metrics
	access  *accessLogger
	timeout time.Duration
	// slowThreshold gates the slow-query log: a traced request slower than
	// it is captured into slow (nil when disabled by a negative threshold).
	slowThreshold time.Duration
	slow          *slowLog
	slowKeep      int
}

// Option configures a Server.
type Option func(*Server)

// WithTimeout sets the default per-request execution deadline; 0 (the
// default) means no deadline. A request's X-Timeout header overrides it.
func WithTimeout(d time.Duration) Option {
	return func(s *Server) { s.timeout = d }
}

// WithAccessLog enables one structured JSON access-log line per request,
// written to w (typically os.Stderr or a rotated file).
func WithAccessLog(w io.Writer) Option {
	return func(s *Server) { s.access = newAccessLogger(w) }
}

// WithSlowQueryLog configures the slow-query ring buffer: requests slower
// than threshold are captured with their full span tree and served at
// GET /debug/slowlog. A negative threshold disables capture (tracing itself
// stays on — it also feeds EXPLAIN and the stage histograms). keep <= 0
// retains DefaultSlowLogKeep entries.
func WithSlowQueryLog(threshold time.Duration, keep int) Option {
	return func(s *Server) {
		s.slowThreshold = threshold
		s.slowKeep = keep
	}
}

// New builds a server over the registry.
func New(reg *Registry, opts ...Option) *Server {
	s := &Server{reg: reg, mux: http.NewServeMux(), slowThreshold: DefaultSlowQueryThreshold}
	for _, o := range opts {
		o(s)
	}
	if s.slowThreshold >= 0 {
		s.slow = newSlowLog(s.slowKeep)
	}
	s.metrics = newMetrics(reg)
	s.mux.HandleFunc("POST /query", s.handleQuery)
	s.mux.HandleFunc("POST /spec", s.handleSpec)
	s.mux.HandleFunc("POST /recommend", s.handleRecommend)
	s.mux.HandleFunc("POST /datasets/{name}/append", s.handleAppend)
	s.mux.HandleFunc("POST /datasets/{name}/compact", s.handleCompact)
	s.mux.HandleFunc("GET /datasets", s.handleDatasets)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /debug/slowlog", s.handleSlowLog)
	s.mux.Handle("GET /metrics", s.metrics.obsv)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "ok %s\n", Version())
	})
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	s.handler = s.instrument(s.mux)
	return s
}

// ServeHTTP dispatches through the instrumentation middleware to the
// endpoint handlers.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.handler.ServeHTTP(w, r) }

// handleReady is the readiness probe: 200 once startup loading completed and
// no dataset snapshot swap is in flight, else 503. Load balancers and CI wait
// loops should gate on this, not /healthz (which only proves the process is
// up and never goes unready).
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !s.reg.Ready() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "not ready")
		return
	}
	fmt.Fprintln(w, "ready")
}

// StatusClientClosedRequest is the non-standard (nginx-convention) status
// logged when the client went away before its query finished.
const StatusClientClosedRequest = 499

// statusFromError maps well-known execution errors onto their HTTP statuses,
// falling back to the handler's default. Every handler writes errors through
// writeError, so the mapping is uniform across endpoints.
func statusFromError(err error, fallback int) int {
	switch {
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return StatusClientClosedRequest
	}
	return fallback
}

// errorJSON is the uniform error envelope. PartialStats is present on
// deadline (504) and disconnect (499) responses: the execution statistics
// accumulated before the context cut the run short, so a caller can see how
// much work its budget bought.
type errorJSON struct {
	Error        string        `json:"error"`
	PartialStats *RunStatsJSON `json:"partialStats,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// writeError writes the uniform error envelope, remapping overload and
// context errors onto their statuses (429 with Retry-After, 504, 499) and
// attaching partial execution stats when the engine reported them.
func writeError(w http.ResponseWriter, status int, err error) {
	status = statusFromError(err, status)
	body := errorJSON{Error: err.Error()}
	var pe *zexec.PartialError
	if errors.As(err, &pe) {
		stats := EncodeStats(pe.Stats)
		body.PartialStats = &stats
	}
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, body)
}

// decodeBody decodes a bounded JSON request body, rejecting unknown fields so
// typos in hand-written curl payloads fail loudly.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

// dataset resolves the request's dataset or writes a 404.
func (s *Server) dataset(w http.ResponseWriter, name string) *Dataset {
	if name == "" {
		writeError(w, http.StatusBadRequest, errors.New("missing \"dataset\""))
		return nil
	}
	d := s.reg.Get(name)
	if d == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("no dataset %q", name))
	}
	return d
}

// optLevel resolves a request's optional "opt" field against the dataset
// default.
func optLevel(d *Dataset, name string) (zexec.OptLevel, error) {
	if name == "" {
		return d.Opt(), nil
	}
	return zexec.OptLevelByName(name)
}

// QueryRequest is the body of POST /query.
type QueryRequest struct {
	Dataset string               `json:"dataset"`
	ZQL     string               `json:"zql"`
	Inputs  map[string][]float64 `json:"inputs,omitempty"`
	Opt     string               `json:"opt,omitempty"`
	// Explain selects EXPLAIN mode: "plan" prepares everything (canonical
	// SQL, conjunct order, route) but executes nothing and returns the span
	// tree with an empty result; "analyze" executes normally and returns the
	// span tree alongside the result. Empty means a normal query.
	Explain string `json:"explain,omitempty"`
}

// QueryResponse is the body of POST /query and POST /spec responses. Result
// is deterministic for a given dataset and query; Stats varies run to run.
// Trace is present only on explain requests.
type QueryResponse struct {
	Dataset string       `json:"dataset"`
	ZQL     string       `json:"zql,omitempty"`
	Result  ResultJSON   `json:"result"`
	Stats   RunStatsJSON `json:"stats"`
	Trace   *trace.Tree  `json:"trace,omitempty"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	d := s.dataset(w, req.Dataset)
	if d == nil {
		return
	}
	d.ctr.queries.Add(1)
	s.execute(w, r, d, "/query", req.ZQL, req.Inputs, req.Opt, "", req.Explain)
}

// SpecJSON is the wire form of the drag-and-drop interface state
// (frontend.Spec with the task named instead of enumerated).
type SpecJSON struct {
	X       string       `json:"x"`
	Y       string       `json:"y"`
	Z       string       `json:"z,omitempty"`
	ZValue  string       `json:"zValue,omitempty"`
	Filters []FilterJSON `json:"filters,omitempty"`
	VizType string       `json:"vizType,omitempty"`
	Agg     string       `json:"agg,omitempty"`
	Task    string       `json:"task,omitempty"`
	K       int          `json:"k,omitempty"`
	Drawn   []float64    `json:"drawn,omitempty"`
}

// FilterJSON is one row of the filters panel.
type FilterJSON struct {
	Attr  string `json:"attr"`
	Op    string `json:"op,omitempty"`
	Value string `json:"value"`
}

// toSpec maps the wire spec onto the front-end translation input.
func (sj *SpecJSON) toSpec() (frontend.Spec, error) {
	task, err := frontend.TaskByName(sj.Task)
	if err != nil {
		return frontend.Spec{}, err
	}
	spec := frontend.Spec{
		X: sj.X, Y: sj.Y, Z: sj.Z, ZValue: sj.ZValue,
		VizType: sj.VizType, Agg: sj.Agg,
		Task: task, K: sj.K, Drawn: sj.Drawn,
	}
	for _, f := range sj.Filters {
		spec.Filters = append(spec.Filters, frontend.Filter{Attr: f.Attr, Op: f.Op, Value: f.Value})
	}
	return spec, nil
}

// SpecRequest is the body of POST /spec.
type SpecRequest struct {
	Dataset string   `json:"dataset"`
	Spec    SpecJSON `json:"spec"`
	Opt     string   `json:"opt,omitempty"`
}

func (s *Server) handleSpec(w http.ResponseWriter, r *http.Request) {
	var req SpecRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	d := s.dataset(w, req.Dataset)
	if d == nil {
		return
	}
	d.ctr.specs.Add(1)
	spec, err := req.Spec.toSpec()
	if err != nil {
		d.ctr.errors.Add(1)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	zqlText, inputs, err := spec.ToZQL()
	if err != nil {
		d.ctr.errors.Add(1)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.execute(w, r, d, "/spec", zqlText, inputs, req.Opt, zqlText, "")
}

// requestContext derives the execution context for one request: the client's
// connection context, bounded by the per-request X-Timeout header when
// present (a positive Go duration like "250ms") or the server default
// deadline otherwise.
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc, error) {
	timeout := s.timeout
	if h := r.Header.Get("X-Timeout"); h != "" {
		d, err := time.ParseDuration(h)
		if err != nil || d <= 0 {
			return nil, nil, fmt.Errorf("bad X-Timeout %q: want a positive Go duration like \"250ms\"", h)
		}
		timeout = d
	}
	if timeout > 0 {
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		return ctx, cancel, nil
	}
	return r.Context(), func() {}, nil
}

// execute runs ZQL text through the dataset's session under the request's
// deadline and writes the response; echoZQL, when non-empty, is included so
// /spec callers can see the translation. A deadline or client disconnect cuts
// the run at the engine's next cancellation point; the 504/499 response then
// carries the partial execution statistics.
func (s *Server) execute(w http.ResponseWriter, r *http.Request, d *Dataset, endpoint, zqlText string, inputs map[string][]float64, optName, echoZQL, explain string) {
	if explain != "" && explain != "plan" && explain != "analyze" {
		d.ctr.errors.Add(1)
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad explain %q: want \"plan\" or \"analyze\"", explain))
		return
	}
	opt, err := optLevel(d, optName)
	if err != nil {
		d.ctr.errors.Add(1)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ctx, cancel, err := s.requestContext(r)
	if err != nil {
		d.ctr.errors.Add(1)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	defer cancel()
	start := time.Now()
	var res *zexec.Result
	if explain == "plan" {
		res, err = d.session.PlanContext(ctx, zqlText, inputs, opt)
	} else {
		res, err = d.session.QueryContext(ctx, zqlText, inputs, opt)
	}
	s.metrics.observeQuery(endpoint, opt.String(), time.Since(start).Seconds())
	if err != nil {
		d.ctr.errors.Add(1)
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			d.ctr.timeouts.Add(1)
		}
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	d.recordProcess(res.Stats.Process)
	resp := QueryResponse{
		Dataset: d.name,
		ZQL:     echoZQL,
		Result:  EncodeResult(res),
		Stats:   EncodeStats(res.Stats),
	}
	if explain != "" {
		// Snapshot the request's live trace (the middleware owns and ends
		// the root; unended spans report elapsed-so-far). The middleware
		// always traces /query, so the trace is only missing if execute is
		// ever reached some other way — then explain simply returns no tree.
		if tr := trace.FromContext(r.Context()).Trace(); tr != nil {
			resp.Trace = tr.Tree()
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// RecommendRequest is the body of POST /recommend.
type RecommendRequest struct {
	Dataset string `json:"dataset"`
	X       string `json:"x"`
	Y       string `json:"y"`
	Z       string `json:"z"`
	K       int    `json:"k,omitempty"`
}

// RecommendResponse is the body of POST /recommend responses.
type RecommendResponse struct {
	Dataset         string               `json:"dataset"`
	Recommendations []RecommendationJSON `json:"recommendations"`
}

func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	var req RecommendRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	d := s.dataset(w, req.Dataset)
	if d == nil {
		return
	}
	d.ctr.recommends.Add(1)
	recs, err := d.session.Recommend(req.X, req.Y, req.Z, req.K)
	if err != nil {
		d.ctr.errors.Add(1)
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, RecommendResponse{
		Dataset:         d.name,
		Recommendations: EncodeRecommendations(recs),
	})
}

// ColumnInfo describes one column of a served dataset.
type ColumnInfo struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
}

// DatasetInfo describes one served dataset: what's loaded (backend, rows,
// zone-map segments, persistence) and its schema.
type DatasetInfo struct {
	Name       string       `json:"name"`
	Backend    string       `json:"backend"`
	Rows       int          `json:"rows"`
	Segments   int          `json:"segments"`
	Shards     int          `json:"shards,omitempty"`
	Appendable bool         `json:"appendable"`
	Opt        string       `json:"opt"`
	Columns    []ColumnInfo `json:"columns"`
}

func (s *Server) handleDatasets(w http.ResponseWriter, _ *http.Request) {
	list := s.reg.List()
	out := struct {
		Datasets []DatasetInfo `json:"datasets"`
	}{Datasets: make([]DatasetInfo, len(list))}
	for i, d := range list {
		info := DatasetInfo{
			Name:       d.name,
			Backend:    d.backend,
			Rows:       d.table.NumRows(),
			Segments:   d.Segments(),
			Shards:     d.ShardCount(),
			Appendable: d.Appendable(),
			Opt:        d.Opt().String(),
		}
		for _, c := range d.table.Columns() {
			info.Columns = append(info.Columns, ColumnInfo{Name: c.Field.Name, Kind: c.Field.Kind.String()})
		}
		out.Datasets[i] = info
	}
	writeJSON(w, http.StatusOK, out)
}

// AppendRequest is the body of POST /datasets/{name}/append: rows as arrays
// of cells in schema column order — strings for categorical columns, JSON
// numbers for numeric ones (integer columns reject fractional values).
type AppendRequest struct {
	Rows [][]any `json:"rows"`
}

// AppendResponse reports the extended dataset after a successful append.
type AppendResponse struct {
	Dataset  string `json:"dataset"`
	Appended int    `json:"appended"`
	Rows     int    `json:"rows"`
	Segments int    `json:"segments"`
}

func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req AppendRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxAppendBodyBytes))
	dec.DisallowUnknownFields()
	// Numbers decode as json.Number, not float64: int64 values above 2^53
	// would silently lose precision through a float64 round trip.
	dec.UseNumber()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	d := s.dataset(w, name)
	if d == nil {
		return
	}
	rows, err := coerceRows(d.Table(), req.Rows)
	if err != nil {
		d.ctr.errors.Add(1)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	nd, err := s.reg.Append(name, rows)
	if err != nil {
		d.ctr.errors.Add(1)
		status := http.StatusInternalServerError
		if errors.Is(err, ErrNotAppendable) {
			status = http.StatusConflict
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, AppendResponse{
		Dataset:  name,
		Appended: len(rows),
		Rows:     nd.Table().NumRows(),
		Segments: nd.Segments(),
	})
}

// CompactRequest is the (optional) body of POST /datasets/{name}/compact:
// cluster columns in significance order. An empty body (or empty cols) lets
// the server pick from live skip provenance and dictionary statistics.
type CompactRequest struct {
	Cols []string `json:"cols,omitempty"`
}

// CompactResponse reports one completed compaction.
type CompactResponse struct {
	Dataset string `json:"dataset"`
	// Cols are the cluster columns used (echoed or auto-picked).
	Cols []string `json:"cols"`
	// Rows and Segments describe the rewritten generation; UnsortedBefore is
	// how many segments were out of cluster order before the rewrite.
	Rows           int   `json:"rows"`
	Segments       int   `json:"segments"`
	UnsortedBefore int   `json:"unsortedBefore"`
	Generation     int64 `json:"generation"`
	DurationMs     int64 `json:"durationMs"`
}

func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req CompactRequest
	// The trigger needs no parameters, so tolerate an empty body; a non-empty
	// body must decode strictly like every other endpoint.
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if len(body) > 0 {
		dec := json.NewDecoder(bytes.NewReader(body))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
			return
		}
	}
	d := s.dataset(w, name)
	if d == nil {
		return
	}
	for _, col := range req.Cols {
		if d.Table().Column(col) == nil {
			d.ctr.errors.Add(1)
			writeError(w, http.StatusBadRequest, fmt.Errorf("no column %q in dataset %q", col, name))
			return
		}
	}
	start := time.Now()
	nd, res, err := s.reg.Compact(name, req.Cols)
	if err != nil {
		d.ctr.errors.Add(1)
		status := http.StatusInternalServerError
		if errors.Is(err, ErrNotCompactable) {
			status = http.StatusConflict
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, CompactResponse{
		Dataset:        name,
		Cols:           res.Cols,
		Rows:           res.Rows,
		Segments:       res.Segments,
		UnsortedBefore: res.UnsortedBefore,
		Generation:     nd.ctr.generation.Load(),
		DurationMs:     time.Since(start).Milliseconds(),
	})
}

// coerceNumber converts one JSON number onto a numeric column kind. Integer
// columns parse the literal as int64 directly (full 64-bit precision — no
// float64 round trip) and accept float-formatted values only when they are
// integral and below the float64 exact-integer bound.
func coerceNumber(f dataset.Field, v json.Number) (dataset.Value, error) {
	switch f.Kind {
	case dataset.KindInt:
		if i, err := v.Int64(); err == nil {
			return dataset.IV(i), nil
		}
		fv, err := v.Float64()
		if err != nil || fv != math.Trunc(fv) || math.Abs(fv) > 1<<53 {
			return dataset.Value{}, fmt.Errorf("column %q is int, got %v", f.Name, v)
		}
		return dataset.IV(int64(fv)), nil
	case dataset.KindFloat:
		fv, err := v.Float64()
		if err != nil {
			return dataset.Value{}, fmt.Errorf("column %q: bad number %v: %w", f.Name, v, err)
		}
		return dataset.FV(fv), nil
	default:
		return dataset.Value{}, fmt.Errorf("column %q is string, got number %v", f.Name, v)
	}
}

// coerceRows converts wire cells onto the dataset schema, strictly: string
// columns take JSON strings, numeric columns take JSON numbers, and integer
// columns additionally require integral values.
func coerceRows(t *dataset.Table, raw [][]any) ([]dataset.Row, error) {
	cols := t.Columns()
	rows := make([]dataset.Row, len(raw))
	for ri, rec := range raw {
		if len(rec) != len(cols) {
			return nil, fmt.Errorf("row %d has %d cells, schema has %d columns", ri, len(rec), len(cols))
		}
		row := make(dataset.Row, len(cols))
		for j, cell := range rec {
			f := cols[j].Field
			switch v := cell.(type) {
			case string:
				if f.Kind != dataset.KindString {
					return nil, fmt.Errorf("row %d: column %q is %s, got string %q", ri, f.Name, f.Kind, v)
				}
				row[j] = dataset.SV(v)
			case json.Number:
				val, err := coerceNumber(f, v)
				if err != nil {
					return nil, fmt.Errorf("row %d: %w", ri, err)
				}
				row[j] = val
			default:
				return nil, fmt.Errorf("row %d: column %q: unsupported cell %T", ri, f.Name, cell)
			}
		}
		rows[ri] = row
	}
	return rows, nil
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	out := struct {
		Datasets map[string]DatasetStats `json:"datasets"`
	}{Datasets: make(map[string]DatasetStats)}
	for _, d := range s.reg.List() {
		out.Datasets[d.name] = d.Stats()
	}
	writeJSON(w, http.StatusOK, out)
}
