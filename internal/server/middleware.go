package server

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/trace"
)

// statusWriter captures the response status code (and whether a header was
// written at all) so the access log and metrics see what the client saw.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

// requestID returns the request's correlation ID: an inbound X-Request-ID is
// honored (so a proxy's ID flows through), otherwise a fresh 16-hex-digit ID
// is generated. The ID is echoed on the response either way.
func requestID(r *http.Request) string {
	if id := r.Header.Get("X-Request-ID"); id != "" && len(id) <= 128 {
		return id
	}
	var buf [8]byte
	if _, err := rand.Read(buf[:]); err != nil {
		return "unknown"
	}
	return hex.EncodeToString(buf[:])
}

// accessEntry is one JSON access-log line. Fields are flat and stable so the
// log is grep- and jq-friendly. Traced requests (/query, /spec) additionally
// split total latency into queue wait vs. execution, and carry the trace ID
// and slow marker so log lines join against /debug/slowlog entries.
type accessEntry struct {
	Time      string  `json:"time"`
	RequestID string  `json:"requestId"`
	Method    string  `json:"method"`
	Path      string  `json:"path"`
	Status    int     `json:"status"`
	LatencyMs float64 `json:"latencyMs"`
	// QueueWaitMs is time parked at the admission queue (summed over the
	// request's queue.wait spans); ExecMs is everything else — actual
	// planning, scanning, and processing. Zero/absent on untraced endpoints.
	QueueWaitMs float64 `json:"queueWaitMs,omitempty"`
	ExecMs      float64 `json:"execMs,omitempty"`
	TraceID     string  `json:"traceId,omitempty"`
	Slow        bool    `json:"slow,omitempty"`
	Remote      string  `json:"remote,omitempty"`
}

// accessLogger serializes JSON access-log lines to one writer.
type accessLogger struct {
	mu  sync.Mutex
	w   io.Writer
	enc *json.Encoder
}

func newAccessLogger(w io.Writer) *accessLogger {
	return &accessLogger{w: w, enc: json.NewEncoder(w)}
}

func (l *accessLogger) log(e accessEntry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	_ = l.enc.Encode(e)
}

// traced reports whether this request gets a span tree: the execution
// endpoints, where per-stage timing actually means something.
func traced(r *http.Request) bool {
	return r.Method == http.MethodPost && (r.URL.Path == "/query" || r.URL.Path == "/spec")
}

// instrument wraps the mux with the outermost request middleware: assign the
// X-Request-ID, mint the trace root for execution endpoints (honoring an
// inbound W3C traceparent so the server joins an upstream trace), capture the
// status, time the request, then feed the per-request metrics, the stage
// histograms, the slow-query log, and (when enabled) the JSON access log.
// Probe and scrape endpoints flow through too — their request counts are
// often the first sign of a misconfigured load balancer.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := requestID(r)
		w.Header().Set("X-Request-ID", id)

		var tr *trace.Trace
		if traced(r) {
			traceID := ""
			if tid, ok := trace.ParseTraceparent(r.Header.Get("traceparent")); ok {
				traceID = tid
			}
			tr = trace.New("request", traceID)
			tr.RequestID = id
			tr.Root.SetStr("endpoint", r.URL.Path)
			r = r.WithContext(trace.WithSpan(r.Context(), tr.Root))
		}

		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r)
		elapsed := time.Since(start)
		status := sw.status
		if status == 0 {
			status = http.StatusOK // handler wrote nothing at all
		}
		s.metrics.observeRequest(endpointLabel(r), status)

		entry := accessEntry{
			Time:      start.UTC().Format(time.RFC3339Nano),
			RequestID: id,
			Method:    r.Method,
			Path:      r.URL.Path,
			Status:    status,
			LatencyMs: float64(elapsed.Microseconds()) / 1000,
			Remote:    r.RemoteAddr,
		}
		if tr != nil {
			tr.Root.End()
			tree := tr.Tree()
			s.metrics.observeStages(tree)
			var queueUs int64
			trace.Walk(tree.Root, func(n *trace.Node) {
				if n.Name == "queue.wait" {
					queueUs += n.DurUs
				}
			})
			entry.TraceID = tree.TraceID
			entry.QueueWaitMs = float64(queueUs) / 1000
			entry.ExecMs = entry.LatencyMs - entry.QueueWaitMs
			if entry.ExecMs < 0 {
				entry.ExecMs = 0
			}
			if s.slow != nil && elapsed >= s.slowThreshold {
				entry.Slow = true
				s.slow.add(slowEntryFrom(tree, r.URL.Path, status, start, elapsed))
			}
		}
		if s.access != nil {
			s.access.log(entry)
		}
	})
}

// endpointLabel collapses the request path onto a bounded label set so the
// metrics cardinality cannot grow with traffic (append paths embed dataset
// names; unknown paths collapse to "other").
func endpointLabel(r *http.Request) string {
	switch p := r.URL.Path; p {
	case "/query", "/spec", "/recommend", "/datasets", "/stats",
		"/healthz", "/readyz", "/metrics", "/debug/slowlog":
		return p
	default:
		if len(p) > len("/datasets/") && p[:len("/datasets/")] == "/datasets/" {
			return "/datasets/{name}/append"
		}
		return "other"
	}
}
