package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"context"

	"repro/internal/engine"
	"repro/internal/minisql"
	"repro/internal/workload"
)

// pointQuery is the cheapest useful ZQL: one fixed trend, exactly one SQL
// query, so each request maps to exactly one coalescer submission.
const pointQuery = `
NAME | X      | Y         | Z
*f1  | 'year' | 'revenue' | 'product'.'product0000'`

// blockingDB wraps a real store, holding every ExecuteBatch open until
// release is closed. entered signals (capacity permitting) that a batch has
// reached the store, so tests can flood the queue while the worker is
// provably busy.
type blockingDB struct {
	engine.DB
	entered chan struct{}
	release chan struct{}
}

func newBlockingDB(inner engine.DB) *blockingDB {
	return &blockingDB{DB: inner, entered: make(chan struct{}, 1), release: make(chan struct{})}
}

func (d *blockingDB) ExecuteBatch(ctx context.Context, plans []*engine.Plan) ([]*engine.Result, error) {
	select {
	case d.entered <- struct{}{}:
	default:
	}
	select {
	case <-d.release:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return d.DB.ExecuteBatch(ctx, plans)
}

// stallDB wraps a real store, delaying every ExecuteBatch but honoring the
// context, so a short request deadline reliably expires mid-execution.
type stallDB struct {
	engine.DB
	delay time.Duration
}

func (d *stallDB) ExecuteBatch(ctx context.Context, plans []*engine.Plan) ([]*engine.Result, error) {
	select {
	case <-time.After(d.delay):
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return d.DB.ExecuteBatch(ctx, plans)
}

// newWrappedServer builds a registry+server whose single "sales" dataset runs
// over the given store wrapper, bypassing AddTable so the test controls the
// engine.DB. The cache is disabled so every request reaches the coalescer.
func newWrappedServer(t *testing.T, store engine.DB, cfg Config, opts ...Option) (*httptest.Server, *Registry, *Dataset) {
	t.Helper()
	cfg.Seed = 7
	cfg.CacheEntries = -1
	d, err := newDataset(testTable(), store, "row", cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	if _, err := reg.add(d); err != nil {
		t.Fatal(err)
	}
	reg.SetReady(true)
	ts := httptest.NewServer(New(reg, opts...))
	t.Cleanup(ts.Close)
	return ts, reg, d
}

// TestAdmissionControlShedsWithBoundedQueue pins the overload contract: with
// the single worker blocked and the admission queue full, further requests
// are shed immediately with 429 + Retry-After while every admitted request
// still completes once the store frees up.
func TestAdmissionControlShedsWithBoundedQueue(t *testing.T) {
	db := newBlockingDB(engine.NewRowStore(testTable()))
	ts, _, d := newWrappedServer(t, db, Config{Workers: 1, MaxQueue: 2})

	type outcome struct {
		status     int
		retryAfter string
		body       []byte
	}
	results := make(chan outcome, 7)
	do := func() {
		b, _ := json.Marshal(QueryRequest{Dataset: "sales", ZQL: pointQuery})
		resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(b))
		if err != nil {
			results <- outcome{status: -1}
			return
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		results <- outcome{resp.StatusCode, resp.Header.Get("Retry-After"), buf.Bytes()}
	}

	// One request occupies the single drain worker inside the store...
	go do()
	select {
	case <-db.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("blocker never reached the store")
	}
	// ...then a flood arrives: with MaxQueue=2, exactly 2 park and 4 shed.
	for i := 0; i < 6; i++ {
		go do()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		s := d.bat.stats()
		if s.Shed == 4 && s.QueueDepth == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue never saturated: %+v", s)
		}
		time.Sleep(time.Millisecond)
	}
	close(db.release)

	counts := map[int]int{}
	for i := 0; i < 7; i++ {
		o := <-results
		counts[o.status]++
		if o.status == http.StatusTooManyRequests {
			if o.retryAfter != "1" {
				t.Errorf("429 Retry-After = %q, want \"1\"", o.retryAfter)
			}
			if !bytes.Contains(o.body, []byte("overloaded")) {
				t.Errorf("429 body = %s, want mention of overload", o.body)
			}
		}
	}
	if counts[http.StatusOK] != 3 || counts[http.StatusTooManyRequests] != 4 {
		t.Fatalf("status counts = %v, want 3x200 and 4x429", counts)
	}

	// The shed count is visible on /stats (and therefore /metrics).
	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var raw bytes.Buffer
	if _, err := raw.ReadFrom(sresp.Body); err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Datasets map[string]DatasetStats `json:"datasets"`
	}
	if err := json.Unmarshal(raw.Bytes(), &stats); err != nil {
		t.Fatalf("bad /stats body %s: %v", raw.Bytes(), err)
	}
	ds := stats.Datasets["sales"]
	if ds.Coalesce.Shed != 4 {
		t.Errorf("/stats shed = %d, want 4", ds.Coalesce.Shed)
	}
	if ds.Coalesce.QueueDepth != 0 {
		t.Errorf("/stats queueDepth = %d, want 0 after drain", ds.Coalesce.QueueDepth)
	}
}

// TestRequestDeadlineReturns504WithPartialStats pins the deadline contract:
// X-Timeout bounds the execution, the 504 response carries the partial
// execution statistics, the timeout counter moves, and — measured across the
// whole request path, including the coalescer's merged-context machinery —
// no goroutines are left behind.
func TestRequestDeadlineReturns504WithPartialStats(t *testing.T) {
	db := &stallDB{DB: engine.NewRowStore(testTable()), delay: 300 * time.Millisecond}
	ts, _, d := newWrappedServer(t, db, Config{Workers: 1}, WithTimeout(2*time.Second))

	// Warm up: establish the keep-alive connection (whose read/write loop
	// goroutines persist by design) and let the first drain worker retire, so
	// the baseline below counts only steady-state goroutines.
	postQuery(t, ts.URL+"/query", QueryRequest{Dataset: "sales", ZQL: pointQuery})
	baseline := runtime.NumGoroutine()
	for settle := time.Now().Add(time.Second); time.Now().Before(settle); {
		if n := runtime.NumGoroutine(); n < baseline {
			baseline = n
		}
		time.Sleep(5 * time.Millisecond)
	}
	b, _ := json.Marshal(QueryRequest{Dataset: "sales", ZQL: pointQuery})
	req, err := http.NewRequest("POST", ts.URL+"/query", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Timeout", "30ms")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504; body %s", resp.StatusCode, buf.Bytes())
	}
	var ej struct {
		Error        string          `json:"error"`
		PartialStats json.RawMessage `json:"partialStats"`
	}
	if err := json.Unmarshal(buf.Bytes(), &ej); err != nil {
		t.Fatalf("bad 504 body %s: %v", buf.Bytes(), err)
	}
	if ej.Error == "" || len(ej.PartialStats) == 0 {
		t.Errorf("504 body missing error/partialStats: %s", buf.Bytes())
	}
	if got := d.Stats().HTTP.Timeouts; got != 1 {
		t.Errorf("timeout counter = %d, want 1", got)
	}

	// The store is still stalled for up to delay; wait for every goroutine the
	// request spawned (handler, drain worker, AfterFunc watchers) to exit.
	leakDeadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > baseline+2 {
		if time.Now().After(leakDeadline) {
			t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The same dataset still serves once the deadline pressure is gone.
	env := postQuery(t, ts.URL+"/query", QueryRequest{Dataset: "sales", ZQL: pointQuery})
	if len(env.Result) == 0 {
		t.Error("query after a timeout returned no result")
	}
}

// TestBadTimeoutHeaderIsRejected pins that a malformed X-Timeout is a client
// error, not a silently ignored header.
func TestBadTimeoutHeaderIsRejected(t *testing.T) {
	ts, _ := newTestServer(t, Config{})
	b, _ := json.Marshal(QueryRequest{Dataset: "sales", ZQL: pointQuery})
	req, err := http.NewRequest("POST", ts.URL+"/query", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Timeout", "banana")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

// TestRequestIDPropagation pins the correlation-ID contract: inbound IDs are
// echoed, absent IDs are minted as 16 hex digits.
func TestRequestIDPropagation(t *testing.T) {
	ts, _ := newTestServer(t, Config{})
	req, _ := http.NewRequest("GET", ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-ID", "proxy-abc-123")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "proxy-abc-123" {
		t.Errorf("inbound ID not honored: got %q", got)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	id := resp.Header.Get("X-Request-ID")
	if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(id) {
		t.Errorf("generated ID = %q, want 16 hex digits", id)
	}
}

// TestAccessLogEmitsOneJSONLinePerRequest pins the access-log format: flat
// JSON with the request ID that was echoed to the client.
func TestAccessLogEmitsOneJSONLinePerRequest(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	reg := NewRegistry()
	if _, err := reg.AddTable(testTable(), Config{Seed: 7}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(reg, WithAccessLog(w)))
	defer ts.Close()

	req, _ := http.NewRequest("GET", ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-ID", "log-me")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	mu.Lock()
	line := strings.TrimSpace(buf.String())
	mu.Unlock()
	var e accessEntry
	if err := json.Unmarshal([]byte(line), &e); err != nil {
		t.Fatalf("access log line %q: %v", line, err)
	}
	if e.RequestID != "log-me" || e.Method != "GET" || e.Path != "/healthz" || e.Status != 200 {
		t.Errorf("access entry = %+v", e)
	}
	if e.LatencyMs < 0 || e.Time == "" {
		t.Errorf("access entry missing timing: %+v", e)
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// TestReadyzTracksRegistryState pins the liveness/readiness split: /healthz
// is always 200, /readyz follows SetReady and goes unready while a snapshot
// swap is in flight.
func TestReadyzTracksRegistryState(t *testing.T) {
	reg := NewRegistry()
	if _, err := reg.AddTable(testTable(), Config{Seed: 7}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(reg))
	defer ts.Close()

	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get("/healthz"); got != 200 {
		t.Errorf("/healthz before ready = %d, want 200 (liveness never gates on load)", got)
	}
	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Errorf("/readyz before SetReady = %d, want 503", got)
	}
	reg.SetReady(true)
	if got := get("/readyz"); got != 200 {
		t.Errorf("/readyz after SetReady = %d, want 200", got)
	}
	// A snapshot swap in flight flips readiness off, and back on when done.
	reg.swaps.Add(1)
	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Errorf("/readyz during swap = %d, want 503", got)
	}
	reg.swaps.Add(-1)
	if got := get("/readyz"); got != 200 {
		t.Errorf("/readyz after swap = %d, want 200", got)
	}
}

// sampleLine matches one Prometheus text-format sample: name, optional
// labels, and a float value.
var sampleLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (NaN|[-+]?Inf|[-+]?[0-9.eE+-]+)$`)

// TestMetricsScrapeFormat pins the /metrics contract with a minimal
// exposition-format parser: correct content type, every sample preceded by
// its family's TYPE header, and the key series present with sane values
// after one query.
func TestMetricsScrapeFormat(t *testing.T) {
	ts, reg := newTestServer(t, Config{})
	reg.SetReady(true)
	postQuery(t, ts.URL+"/query", QueryRequest{Dataset: "sales", ZQL: pointQuery})

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want the 0.0.4 text exposition format", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}

	typed := map[string]bool{}
	values := map[string]float64{} // "name{labels}" -> value
	for _, line := range strings.Split(buf.String(), "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 3 && fields[1] == "TYPE" {
				typed[fields[2]] = true
			}
			continue
		}
		m := sampleLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed sample line: %q", line)
		}
		family := m[1]
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(family, suffix); base != family && typed[base] {
				family = base
				break
			}
		}
		if !typed[family] {
			t.Errorf("sample %q has no preceding # TYPE for %q", line, family)
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			t.Fatalf("bad sample value in %q: %v", line, err)
		}
		values[m[1]+m[2]] = v
	}

	assertAtLeast := func(series string, min float64) {
		t.Helper()
		v, ok := values[series]
		if !ok {
			t.Errorf("series %s missing from scrape", series)
			return
		}
		if v < min {
			t.Errorf("%s = %v, want >= %v", series, v, min)
		}
	}
	assertAtLeast(`zen_http_requests_total{endpoint="/query",code="200"}`, 1)
	assertAtLeast(`zen_query_duration_seconds_count{endpoint="/query",opt="Inter-Task"}`, 1)
	assertAtLeast(`zen_rows_scanned_total{dataset="sales"}`, 1)
	assertAtLeast(`zen_ready`, 1)
	assertAtLeast(`zen_queue_depth{dataset="sales"}`, 0)
	assertAtLeast(`zen_requests_shed_total{dataset="sales"}`, 0)
	assertAtLeast(`zen_coalesce_submissions_total{dataset="sales"}`, 1)
}

// opPlan prepares the single SQL used by the direct batcher tests.
func opPlan(t *testing.T, db engine.DB) *engine.Plan {
	t.Helper()
	q, err := minisql.Parse("SELECT year, SUM(revenue) FROM sales GROUP BY year ORDER BY year")
	if err != nil {
		t.Fatal(err)
	}
	p, err := db.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestBatcherShedsAtQueueBound pins the queue-bound unit behavior, below the
// HTTP layer: with the worker busy and one submission parked, the next
// arrival is shed synchronously.
func TestBatcherShedsAtQueueBound(t *testing.T) {
	tbl := workload.Sales(workload.SalesConfig{Rows: 1000, Products: 4, Years: 5, Cities: 2, Seed: 2})
	db := newBlockingDB(engine.NewRowStore(tbl))
	bat := newBatcher(db, 1, 1)
	plan := opPlan(t, db)

	blocker := make(chan error, 1)
	go func() {
		_, err := bat.submit(context.Background(), []*engine.Plan{plan})
		blocker <- err
	}()
	<-db.entered
	parked := make(chan error, 1)
	go func() {
		_, err := bat.submit(context.Background(), []*engine.Plan{plan})
		parked <- err
	}()
	for bat.queueDepth() != 1 {
		time.Sleep(time.Millisecond)
	}
	if _, err := bat.submit(context.Background(), []*engine.Plan{plan}); err != ErrOverloaded {
		t.Fatalf("submit over bound: err = %v, want ErrOverloaded", err)
	}
	close(db.release)
	if err := <-blocker; err != nil {
		t.Fatalf("blocker: %v", err)
	}
	if err := <-parked; err != nil {
		t.Fatalf("parked: %v", err)
	}
	if s := bat.stats(); s.Shed != 1 || s.Submissions != 2 {
		t.Errorf("stats = %+v, want 2 admitted and 1 shed", s)
	}
}

// TestBatcherUnparksAbandonedSubmission pins that a caller whose context dies
// while parked is removed from the queue — its slot frees immediately for
// admission control, and no future batch executes its plans.
func TestBatcherUnparksAbandonedSubmission(t *testing.T) {
	tbl := workload.Sales(workload.SalesConfig{Rows: 1000, Products: 4, Years: 5, Cities: 2, Seed: 2})
	db := newBlockingDB(engine.NewRowStore(tbl))
	bat := newBatcher(db, 1, 0)
	plan := opPlan(t, db)

	blocker := make(chan error, 1)
	go func() {
		_, err := bat.submit(context.Background(), []*engine.Plan{plan})
		blocker <- err
	}()
	<-db.entered
	ctx, cancel := context.WithCancel(context.Background())
	abandoned := make(chan error, 1)
	go func() {
		_, err := bat.submit(ctx, []*engine.Plan{plan})
		abandoned <- err
	}()
	for bat.queueDepth() != 1 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-abandoned; err != context.Canceled {
		t.Fatalf("abandoned submit: err = %v, want context.Canceled", err)
	}
	if d := bat.queueDepth(); d != 0 {
		t.Fatalf("queue depth after abandonment = %d, want 0", d)
	}
	close(db.release)
	if err := <-blocker; err != nil {
		t.Fatalf("blocker: %v", err)
	}
}

// TestMergedContextCancelsOnlyWhenAllRidersGone pins the shared-batch
// cancellation rule: one rider giving up must not cancel its neighbors'
// batch; the batch dies only when every rider is gone.
func TestMergedContextCancelsOnlyWhenAllRidersGone(t *testing.T) {
	ctx1, cancel1 := context.WithCancel(context.Background())
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	merged, release := mergedContext([]*submission{{ctx: ctx1}, {ctx: ctx2}})
	defer release()

	cancel1()
	select {
	case <-merged.Done():
		t.Fatal("merged context canceled while a rider was still live")
	case <-time.After(20 * time.Millisecond):
	}
	cancel2()
	select {
	case <-merged.Done():
	case <-time.After(time.Second):
		t.Fatal("merged context not canceled after every rider gave up")
	}

	// A single-rider batch runs directly under that rider's context.
	ctx3, cancel3 := context.WithCancel(context.Background())
	defer cancel3()
	single, release3 := mergedContext([]*submission{{ctx: ctx3}})
	defer release3()
	if single != ctx3 {
		t.Error("single-rider batch should reuse the rider's context")
	}
}
