package server

import (
	"fmt"
	"testing"

	"repro/internal/dataset"
	"repro/internal/engine"
)

func fakeResult(tag string) *engine.Result {
	return &engine.Result{Cols: []string{tag}}
}

func TestResultCacheLRU(t *testing.T) {
	c := NewResultCache(2)
	c.Put("a", fakeResult("a"))
	c.Put("b", fakeResult("b"))
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a should be cached")
	}
	// a was just used, so inserting c must evict b.
	c.Put("c", fakeResult("c"))
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted (LRU)")
	}
	if r, ok := c.Get("a"); !ok || r.Cols[0] != "a" {
		t.Error("a should have survived")
	}
	if r, ok := c.Get("c"); !ok || r.Cols[0] != "c" {
		t.Error("c should be cached")
	}
	s := c.Stats()
	if s.Entries != 2 || s.Capacity != 2 {
		t.Errorf("stats = %+v", s)
	}
	if s.Hits != 3 || s.Misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 3/1", s.Hits, s.Misses)
	}
	// Overwriting a key updates in place without eviction.
	c.Put("a", fakeResult("a2"))
	if r, _ := c.Get("a"); r.Cols[0] != "a2" {
		t.Error("Put should overwrite")
	}
	if c.Stats().Entries != 2 {
		t.Error("overwrite must not grow the cache")
	}
}

func TestResultCacheRowBudget(t *testing.T) {
	// Capacity 4 → row budget 4*cacheRowsPerEntry. Entries of half a budget
	// each: the third must evict the first even though entry count is fine.
	c := NewResultCache(4)
	big := func(tag string, rows int64) *engine.Result {
		r := fakeResult(tag)
		r.Rows = make([]dataset.Row, rows)
		return r
	}
	half := int64(2 * cacheRowsPerEntry)
	c.Put("a", big("a", half))
	c.Put("b", big("b", half))
	c.Put("c", big("c", half))
	if _, ok := c.Get("a"); ok {
		t.Error("a should have been evicted by the row budget")
	}
	if _, ok := c.Get("c"); !ok {
		t.Error("c should be cached")
	}
	if s := c.Stats(); s.Rows > 4*cacheRowsPerEntry {
		t.Errorf("rows = %d over budget", s.Rows)
	}
	// A single result over the whole budget is not cached at all.
	c.Put("huge", big("huge", 5*cacheRowsPerEntry))
	if _, ok := c.Get("huge"); ok {
		t.Error("oversized result must not be cached")
	}
	// Overwriting with a different size keeps the accounting consistent.
	c.Put("c", big("c2", 1))
	wantRows := half + 1 // b (half) + c (1)
	if s := c.Stats(); s.Rows != wantRows {
		t.Errorf("rows = %d, want %d", s.Rows, wantRows)
	}
}

func TestResultCacheDisabled(t *testing.T) {
	c := NewResultCache(-1)
	c.Put("a", fakeResult("a"))
	if _, ok := c.Get("a"); ok {
		t.Error("disabled cache must not store")
	}
	if s := c.Stats(); s.Entries != 0 || s.Misses != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestResultCacheConcurrent(t *testing.T) {
	c := NewResultCache(8)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				key := fmt.Sprint("k", (g+i)%16)
				if _, ok := c.Get(key); !ok {
					c.Put(key, fakeResult(key))
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if s := c.Stats(); s.Entries > 8 {
		t.Errorf("cache grew past capacity: %+v", s)
	}
}
