package server

import (
	"fmt"
	"sync"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/minisql"
)

// batcher coalesces concurrent ExecuteBatch requests over one dataset into
// shared engine batches. Each submission parks on a queue; a bounded pool of
// drain workers repeatedly takes EVERYTHING queued and executes it as one
// engine.DB.ExecuteBatch call, so N requests arriving while a scan is in
// flight ride the next scan together instead of triggering N scans. This is
// the serving-layer analog of the paper's inter-task batching: the batch
// boundary is "whatever the server has queued right now" instead of one ZQL
// query.
type batcher struct {
	db         engine.DB
	maxWorkers int

	mu      sync.Mutex
	pending []*submission
	workers int

	// Stats, guarded by mu.
	submissions int64 // ExecuteBatch calls coalesced through the queue
	batches     int64 // engine batches actually issued
	coalesced   int64 // submissions that shared an engine batch with another
}

// submission is one caller's batch waiting to be folded into an engine batch.
type submission struct {
	plans   []*engine.Plan
	results []*engine.Result
	err     error
	done    chan struct{}
}

// newBatcher builds a coalescer over db with at most workers concurrent
// engine batches in flight (<= 0 means 1).
func newBatcher(db engine.DB, workers int) *batcher {
	if workers < 1 {
		workers = 1
	}
	return &batcher{db: db, maxWorkers: workers}
}

// submit runs plans through the coalescing queue and blocks until results are
// available. Results align with plans.
func (b *batcher) submit(plans []*engine.Plan) ([]*engine.Result, error) {
	s := &submission{plans: plans, done: make(chan struct{})}
	b.mu.Lock()
	b.pending = append(b.pending, s)
	b.submissions++
	if b.workers < b.maxWorkers {
		b.workers++
		go b.drain()
	}
	b.mu.Unlock()
	<-s.done
	return s.results, s.err
}

// drain serves queued submissions until the queue is empty, then exits. The
// worker count is adjusted under the same lock that guards the queue, so a
// submission is never left behind: either an active worker sees it, or its
// submitter sees a free worker slot and spawns one.
func (b *batcher) drain() {
	for {
		b.mu.Lock()
		if len(b.pending) == 0 {
			b.workers--
			b.mu.Unlock()
			return
		}
		batch := b.pending
		b.pending = nil
		b.mu.Unlock()
		b.runBatch(batch)
	}
}

// runBatch executes the coalesced submissions as one engine batch and deals
// the results back out. The engine reports a single error for a whole batch;
// to keep one request's bad plan from failing its neighbors, an error on a
// coalesced batch falls back to executing each submission separately.
func (b *batcher) runBatch(subs []*submission) {
	total := 0
	for _, s := range subs {
		total += len(s.plans)
	}
	all := make([]*engine.Plan, 0, total)
	for _, s := range subs {
		all = append(all, s.plans...)
	}
	results, err := b.execute(all)
	if err != nil && len(subs) > 1 {
		// Accounting: the failed shared attempt saved nothing; what the
		// engine effectively served is one batch per submission.
		b.mu.Lock()
		b.batches += int64(len(subs))
		b.mu.Unlock()
		for _, s := range subs {
			s.results, s.err = b.execute(s.plans)
			close(s.done)
		}
		return
	}
	b.mu.Lock()
	b.batches++
	if len(subs) > 1 {
		b.coalesced += int64(len(subs))
	}
	b.mu.Unlock()
	off := 0
	for _, s := range subs {
		if err != nil {
			s.err = err
		} else {
			s.results = results[off : off+len(s.plans) : off+len(s.plans)]
		}
		off += len(s.plans)
		close(s.done)
	}
}

// execute calls the engine, containing any panic as an error. Execution runs
// on the batcher's drain goroutine, outside net/http's per-connection
// recover: an unrecovered panic here would kill the whole server, and the
// parked submitters — blocked on their done channels — would hang forever.
func (b *batcher) execute(plans []*engine.Plan) (results []*engine.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("server: engine panic: %v", r)
		}
	}()
	return b.db.ExecuteBatch(plans)
}

// BatchStats is a point-in-time snapshot of coalescing effectiveness.
type BatchStats struct {
	// Submissions is the number of ExecuteBatch calls routed through the
	// queue.
	Submissions int64 `json:"submissions"`
	// Batches is the number of engine batches that effectively served the
	// submissions (a failed shared attempt counts as its per-submission
	// fallback executions); Submissions - Batches is scans saved by
	// coalescing, and is never negative.
	Batches int64 `json:"batches"`
	// Coalesced is the number of submissions that successfully shared an
	// engine batch with at least one other submission.
	Coalesced int64 `json:"coalesced"`
}

// stats snapshots the coalescing counters.
func (b *batcher) stats() BatchStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BatchStats{Submissions: b.submissions, Batches: b.batches, Coalesced: b.coalesced}
}

// coalescingDB adapts a batcher to engine.DB so it can sit under the result
// cache and over the real store. Prepare goes straight to the store (plans
// must be bound to the back-end that executes them); every execution path
// funnels through the coalescing queue.
//
// Like cachingDB it does not implement engine.Parallel; the store's bound is
// fixed server-side.
type coalescingDB struct {
	store engine.DB
	bat   *batcher
}

func (d *coalescingDB) Name() string                     { return d.store.Name() }
func (d *coalescingDB) Table(name string) *dataset.Table { return d.store.Table(name) }
func (d *coalescingDB) Counters() engine.Counters        { return d.store.Counters() }
func (d *coalescingDB) Prepare(q *minisql.Query) (*engine.Plan, error) {
	return d.store.Prepare(q)
}

func (d *coalescingDB) Execute(q *minisql.Query) (*engine.Result, error) {
	p, err := d.Prepare(q)
	if err != nil {
		return nil, err
	}
	results, err := d.bat.submit([]*engine.Plan{p})
	if err != nil {
		return nil, err
	}
	return results[0], nil
}

func (d *coalescingDB) ExecuteSQL(sql string) (*engine.Result, error) {
	q, err := minisql.Parse(sql)
	if err != nil {
		return nil, err
	}
	return d.Execute(q)
}

func (d *coalescingDB) ExecuteBatch(plans []*engine.Plan) ([]*engine.Result, error) {
	return d.bat.submit(plans)
}
