package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/minisql"
	"repro/internal/trace"
)

// ErrOverloaded is returned when a dataset's admission queue is full: the
// submission is shed instead of queued, so admitted requests keep bounded
// latency under overload. The HTTP layer maps it to 429 + Retry-After.
var ErrOverloaded = errors.New("server: dataset is overloaded (admission queue full)")

// batcher coalesces concurrent ExecuteBatch requests over one dataset into
// shared engine batches. Each submission parks on a queue; a bounded pool of
// drain workers repeatedly takes EVERYTHING queued and executes it as one
// engine.DB.ExecuteBatch call, so N requests arriving while a scan is in
// flight ride the next scan together instead of triggering N scans. This is
// the serving-layer analog of the paper's inter-task batching: the batch
// boundary is "whatever the server has queued right now" instead of one ZQL
// query.
//
// The queue doubles as the admission-control point: when more than maxQueue
// submissions are already parked, new arrivals are shed with ErrOverloaded
// rather than queued. Shedding here (not at HTTP ingress) means cache hits —
// which never reach the batcher — are always admitted.
type batcher struct {
	db         engine.DB
	maxWorkers int
	maxQueue   int // parked-submission bound; <= 0 is unbounded

	mu      sync.Mutex
	pending []*submission
	workers int

	// Stats, guarded by mu.
	submissions int64 // ExecuteBatch calls admitted through the queue
	batches     int64 // engine batches actually issued
	coalesced   int64 // submissions that shared an engine batch with another
	shed        int64 // submissions rejected because the queue was full
}

// submission is one caller's batch waiting to be folded into an engine batch.
type submission struct {
	ctx     context.Context
	plans   []*engine.Plan
	wait    *trace.Span // queue.wait span: park time until a drain takes it
	results []*engine.Result
	err     error
	done    chan struct{}
}

// newBatcher builds a coalescer over db with at most workers concurrent
// engine batches in flight (<= 0 means 1) and at most maxQueue submissions
// parked (<= 0 means unbounded).
func newBatcher(db engine.DB, workers, maxQueue int) *batcher {
	if workers < 1 {
		workers = 1
	}
	return &batcher{db: db, maxWorkers: workers, maxQueue: maxQueue}
}

// submit runs plans through the coalescing queue and blocks until results
// are available (results align with plans), the queue sheds the submission
// (ErrOverloaded), or ctx is done. A submitter that gives up while parked is
// removed from the queue; one that gives up mid-flight returns immediately
// while the shared batch keeps serving its other riders — the batch's merged
// context observes the abandonment, so a batch whose every rider is gone is
// cancelled at the engine's next cancellation point.
func (b *batcher) submit(ctx context.Context, plans []*engine.Plan) ([]*engine.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s := &submission{ctx: ctx, plans: plans, done: make(chan struct{})}
	// queue.wait measures park time: from admission until a drain worker takes
	// the submission. The access log subtracts its total from request latency
	// to split queue wait from execution.
	s.wait = trace.FromContext(ctx).StartChild("queue.wait")
	b.mu.Lock()
	if b.maxQueue > 0 && len(b.pending) >= b.maxQueue {
		b.shed++
		b.mu.Unlock()
		s.wait.SetBool("shed", true)
		s.wait.End()
		return nil, ErrOverloaded
	}
	b.pending = append(b.pending, s)
	b.submissions++
	if b.workers < b.maxWorkers {
		b.workers++
		go b.drain()
	}
	b.mu.Unlock()
	select {
	case <-s.done:
		return s.results, s.err
	case <-ctx.Done():
		// Still parked? Unpark it so a dead submission can't occupy queue
		// bound or ride a future batch. If a drain already took it, the
		// batch's close(done) on the abandoned submission is harmless.
		b.mu.Lock()
		for i, q := range b.pending {
			if q == s {
				b.pending = append(b.pending[:i], b.pending[i+1:]...)
				break
			}
		}
		b.mu.Unlock()
		s.wait.End()
		return nil, ctx.Err()
	}
}

// queueDepth reports the submissions currently parked — the /metrics queue
// gauge.
func (b *batcher) queueDepth() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.pending)
}

// drain serves queued submissions until the queue is empty, then exits. The
// worker count is adjusted under the same lock that guards the queue, so a
// submission is never left behind: either an active worker sees it, or its
// submitter sees a free worker slot and spawns one.
func (b *batcher) drain() {
	for {
		b.mu.Lock()
		if len(b.pending) == 0 {
			b.workers--
			b.mu.Unlock()
			return
		}
		batch := b.pending
		b.pending = nil
		b.mu.Unlock()
		b.runBatch(batch)
	}
}

// mergedContext derives the context a coalesced engine batch runs under:
// done only when EVERY rider's context is done. Cancelling the shared batch
// because ONE rider gave up would poison its innocent neighbors; conversely
// a batch all of whose riders are gone is pure waste and stops at the
// engine's next cancellation point. The returned release func must be called
// after the batch executes: it detaches the AfterFunc watchers from
// long-lived rider contexts so a batch leaves no goroutines or callbacks
// behind (the deadline test counts goroutines across exactly this path).
func mergedContext(subs []*submission) (context.Context, func()) {
	if len(subs) == 1 {
		return subs[0].ctx, func() {}
	}
	ctx, cancel := context.WithCancel(context.Background())
	var remaining atomic.Int64
	remaining.Store(int64(len(subs)))
	stops := make([]func() bool, 0, len(subs))
	for _, s := range subs {
		stops = append(stops, context.AfterFunc(s.ctx, func() {
			if remaining.Add(-1) == 0 {
				cancel()
			}
		}))
	}
	return ctx, func() {
		for _, stop := range stops {
			stop()
		}
		cancel()
	}
}

// runBatch executes the coalesced submissions as one engine batch and deals
// the results back out. The engine reports a single error for a whole batch;
// to keep one request's bad plan from failing its neighbors, an error on a
// coalesced batch falls back to executing each submission separately under
// its own context.
func (b *batcher) runBatch(subs []*submission) {
	total := 0
	for _, s := range subs {
		total += len(s.plans)
	}
	all := make([]*engine.Plan, 0, total)
	for _, s := range subs {
		all = append(all, s.plans...)
		// The submission stops waiting the moment a drain takes it; how many
		// neighbors it rode with tells the trace reader whether coalescing
		// helped or a lone request just queued behind a busy pool.
		s.wait.SetInt("riders", int64(len(subs)))
		s.wait.SetBool("coalesced", len(subs) > 1)
		s.wait.End()
	}
	ctx, release := mergedContext(subs)
	if len(subs) > 1 {
		// The merged context is rooted at Background; re-attach the first
		// rider's span so engine scan spans still land in a trace. Riders
		// other than the first see the shared batch's cost only as wall time —
		// attributing one shared scan to N trees would double-count.
		ctx = trace.WithSpan(ctx, trace.FromContext(subs[0].ctx))
	}
	results, err := b.execute(ctx, all)
	release()
	if err != nil && len(subs) > 1 {
		// Accounting: the failed shared attempt saved nothing; what the
		// engine effectively served is one batch per submission.
		b.mu.Lock()
		b.batches += int64(len(subs))
		b.mu.Unlock()
		for _, s := range subs {
			s.results, s.err = b.execute(s.ctx, s.plans)
			close(s.done)
		}
		return
	}
	b.mu.Lock()
	b.batches++
	if len(subs) > 1 {
		b.coalesced += int64(len(subs))
	}
	b.mu.Unlock()
	off := 0
	for _, s := range subs {
		if err != nil {
			s.err = err
		} else {
			s.results = results[off : off+len(s.plans) : off+len(s.plans)]
		}
		off += len(s.plans)
		close(s.done)
	}
}

// execute calls the engine, containing any panic as an error. Execution runs
// on the batcher's drain goroutine, outside net/http's per-connection
// recover: an unrecovered panic here would kill the whole server, and the
// parked submitters — blocked on their done channels — would hang forever.
func (b *batcher) execute(ctx context.Context, plans []*engine.Plan) (results []*engine.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("server: engine panic: %v", r)
		}
	}()
	return b.db.ExecuteBatch(ctx, plans)
}

// BatchStats is a point-in-time snapshot of coalescing effectiveness and
// admission-control pressure.
type BatchStats struct {
	// Submissions is the number of ExecuteBatch calls admitted through the
	// queue.
	Submissions int64 `json:"submissions"`
	// Batches is the number of engine batches that effectively served the
	// submissions (a failed shared attempt counts as its per-submission
	// fallback executions); Submissions - Batches is scans saved by
	// coalescing, and is never negative.
	Batches int64 `json:"batches"`
	// Coalesced is the number of submissions that successfully shared an
	// engine batch with at least one other submission.
	Coalesced int64 `json:"coalesced"`
	// Shed is the number of submissions rejected with ErrOverloaded because
	// the admission queue was at its bound.
	Shed int64 `json:"shed"`
	// QueueDepth is the number of submissions parked right now.
	QueueDepth int `json:"queueDepth"`
}

// stats snapshots the coalescing counters.
func (b *batcher) stats() BatchStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BatchStats{
		Submissions: b.submissions,
		Batches:     b.batches,
		Coalesced:   b.coalesced,
		Shed:        b.shed,
		QueueDepth:  len(b.pending),
	}
}

// coalescingDB adapts a batcher to engine.DB so it can sit under the result
// cache and over the real store. Prepare goes straight to the store (plans
// must be bound to the back-end that executes them); every execution path
// funnels through the coalescing queue.
//
// Like cachingDB it does not implement engine.Parallel; the store's bound is
// fixed server-side.
type coalescingDB struct {
	store engine.DB
	bat   *batcher
}

func (d *coalescingDB) Name() string                     { return d.store.Name() }
func (d *coalescingDB) Table(name string) *dataset.Table { return d.store.Table(name) }
func (d *coalescingDB) Counters() engine.Counters        { return d.store.Counters() }
func (d *coalescingDB) Prepare(q *minisql.Query) (*engine.Plan, error) {
	return d.store.Prepare(q)
}

func (d *coalescingDB) Execute(q *minisql.Query) (*engine.Result, error) {
	p, err := d.Prepare(q)
	if err != nil {
		return nil, err
	}
	results, err := d.bat.submit(context.Background(), []*engine.Plan{p})
	if err != nil {
		return nil, err
	}
	return results[0], nil
}

func (d *coalescingDB) ExecuteSQL(sql string) (*engine.Result, error) {
	q, err := minisql.Parse(sql)
	if err != nil {
		return nil, err
	}
	return d.Execute(q)
}

func (d *coalescingDB) ExecuteBatch(ctx context.Context, plans []*engine.Plan) ([]*engine.Result, error) {
	return d.bat.submit(ctx, plans)
}
