package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"repro/internal/workload"
)

// BenchmarkServerConcurrentQueries drives parallel HTTP clients through
// POST /query over one shared dataset, cold (cache disabled: every request
// re-executes) versus warm (default cache: repeated plans are served from
// memory). Reported metrics make the reuse visible: rows scanned per request
// and the cache hit rate from the dataset's Stats.
func BenchmarkServerConcurrentQueries(b *testing.B) {
	// A rotating workload of per-slice trend queries: the skewed interactive
	// traffic shape the result cache exists for.
	queries := make([]string, 8)
	for i := range queries {
		queries[i] = fmt.Sprintf(`
NAME | X      | Y         | Z                            | VIZ
*f1  | 'year' | 'revenue' | 'product'.'product%04d'      | line.(y=agg('avg'))`, i)
	}
	for _, mode := range []struct {
		name  string
		cache int
	}{
		{"cold", -1}, // cache disabled
		{"warm", 0},  // default cache
	} {
		b.Run(mode.name, func(b *testing.B) {
			reg := NewRegistry()
			tbl := workload.Sales(workload.SalesConfig{Rows: 20000, Products: 12, Years: 8, Cities: 6, Seed: 1})
			ds, err := reg.AddTable(tbl, Config{Seed: 7, CacheEntries: mode.cache})
			if err != nil {
				b.Fatal(err)
			}
			ts := httptest.NewServer(New(reg))
			defer ts.Close()

			bodies := make([][]byte, len(queries))
			for i, q := range queries {
				bodies[i], err = json.Marshal(QueryRequest{Dataset: "sales", ZQL: q})
				if err != nil {
					b.Fatal(err)
				}
			}
			scannedBefore := ds.Stats().RowsScanned
			var seq atomic.Int64
			// Several clients per core: coalescing only shows when requests
			// actually overlap, even on a single-core runner.
			b.SetParallelism(4)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				client := ts.Client()
				for pb.Next() {
					body := bodies[int(seq.Add(1))%len(bodies)]
					resp, err := client.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
					if err != nil {
						b.Error(err)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						b.Errorf("status %d", resp.StatusCode)
						return
					}
				}
			})
			b.StopTimer()
			st := ds.Stats()
			b.ReportMetric(float64(st.RowsScanned-scannedBefore)/float64(b.N), "rows_scanned/op")
			if total := st.Cache.Hits + st.Cache.Misses; total > 0 {
				b.ReportMetric(100*float64(st.Cache.Hits)/float64(total), "cache_hit_%")
			}
			if st.Coalesce.Submissions > 0 {
				b.ReportMetric(float64(st.Coalesce.Coalesced)/float64(st.Coalesce.Submissions)*100, "coalesced_%")
			}
		})
	}
}
