package server

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/compact"
	"repro/internal/engine"
	"repro/internal/zpack"
)

// ErrNotCompactable marks a compaction request against a dataset without a
// zpack backing; the HTTP layer maps it to 409 Conflict.
var ErrNotCompactable = errors.New("server: dataset is not compactable (only zpack-backed datasets can be re-clustered)")

func nowNano() int64 { return time.Now().UnixNano() }

// refreshUnsorted recomputes the unsorted-segments gauge from the current
// generation's zone maps: segments out of primary-cluster-column order. The
// reference column is the last compaction's primary column when one exists,
// otherwise the automatic pick over current provenance — so the gauge answers
// "how much would the compactor help right now" from the first append on.
// Metadata-only: zone maps and dictionaries live in the footer, no segment is
// read from disk.
func (d *Dataset) refreshUnsorted() {
	if d.packR == nil {
		return
	}
	var col string
	if cols := d.ctr.lastCols.Load(); cols != nil && len(*cols) > 0 {
		col = (*cols)[0]
	} else {
		var prov map[engine.SkipAttr]int64
		if sp, ok := d.store.(engine.SkipAttributed); ok {
			prov = sp.SkipProvenance()
		}
		if cols := compact.PickCols(d.packR, prov, 1); len(cols) > 0 {
			col = cols[0]
		}
	}
	if col == "" {
		d.ctr.unsortedSegs.Store(0)
		return
	}
	d.ctr.clusterCol.Store(&col)
	if n, err := compact.Unsorted(d.packR, col); err == nil {
		d.ctr.unsortedSegs.Store(int64(n))
	}
}

// Compact rewrites a zpack-backed dataset re-clustered on cols (empty = pick
// from live skip provenance and dictionary statistics) and swaps the new
// generation into the registry. It holds the append lock end to end — the
// file cannot grow between the snapshot the rewrite sorts and the rename that
// replaces it, so no appended row is ever lost to a concurrent compaction.
//
// The cutover extends the append swap recipe across the inode boundary:
//
//  1. compact.File commits the re-clustered generation under the same path
//     (temp + fsync + atomic rename + directory sync); the old generation's
//     committed bytes were never touched, so in-flight queries keep reading
//     their snapshot through the descriptors they already hold;
//  2. the old writer's descriptor now points at the unlinked old inode and is
//     closed immediately — leaving it appendable would lose rows silently;
//     until the new writer opens, the dataset reports not-appendable;
//  3. a fresh reader (Reopen detects the new inode and opens its own
//     descriptor) and writer open over the new generation, and the successor
//     stack swaps into the registry exactly like an append swap;
//  4. the generation before the one just superseded is closed: compactions
//     are minutes apart, so every query that started against it is long
//     finished — bounding retained descriptors (and unlinked-inode disk) to
//     one superseded generation per dataset.
//
// On any error after the rename the registry keeps serving the old snapshot
// read-only (packW nil); reads stay correct, and the next successful append
// or compaction restores writability.
func (r *Registry) Compact(name string, cols []string) (*Dataset, compact.Result, error) {
	r.appendMu.Lock()
	defer r.appendMu.Unlock()
	d := r.Get(name)
	if d == nil {
		return nil, compact.Result{}, fmt.Errorf("server: no dataset %q", name)
	}
	if d.packPath == "" {
		return nil, compact.Result{}, fmt.Errorf("%w: %q has backend %q", ErrNotCompactable, name, d.backend)
	}
	var prov map[engine.SkipAttr]int64
	if sp, ok := d.store.(engine.SkipAttributed); ok {
		prov = sp.SkipProvenance()
	}
	start := time.Now()
	res, err := compact.File(d.packPath, compact.Options{Cols: cols, Provenance: prov})
	if err != nil {
		d.ctr.compactFails.Add(1)
		return nil, res, err
	}
	// The path names a new inode from here on. Readiness gates the swap
	// window like an append does.
	r.swaps.Add(1)
	defer r.swaps.Add(-1)
	if w := d.packW.Swap(nil); w != nil {
		w.Discard() // descriptor of the unlinked old generation
	}
	fresh, err := d.packR.Reopen() // detects the new inode; owns a new descriptor
	if err != nil {
		d.ctr.compactFails.Add(1)
		return nil, res, err
	}
	w, err := zpack.OpenAppend(d.packPath)
	if err != nil {
		fresh.Close()
		d.ctr.compactFails.Add(1)
		return nil, res, err
	}
	t := fresh.Table()
	t.Name = name
	nd, err := newDataset(t, zpackStore(fresh, d.cfg), "column", d.cfg)
	if err != nil {
		fresh.Close()
		w.Discard()
		d.ctr.compactFails.Add(1)
		return nil, res, err
	}
	nd.packPath, nd.packR, nd.packOwner = d.packPath, fresh, fresh
	nd.packW.Store(w)
	nd.ctr = d.ctr
	nd.cache.InheritStats(d.cache)
	nd.ctr.compactions.Add(1)
	nd.ctr.generation.Add(1)
	nd.ctr.rowsRewritten.Add(int64(res.Rows))
	nd.ctr.lastCompactNs.Store(time.Since(start).Nanoseconds())
	resCols := append([]string(nil), res.Cols...)
	nd.ctr.lastCols.Store(&resCols)
	nd.refreshUnsorted()
	if d.packRetired != nil {
		d.packRetired.Close()
	}
	nd.packRetired = d.packOwner
	r.mu.Lock()
	r.datasets[name] = nd
	r.mu.Unlock()
	return nd, res, nil
}

// CompactorConfig tunes the background compactor.
type CompactorConfig struct {
	// Interval is the sweep cadence.
	Interval time.Duration
	// Threshold is the minimum unsorted-segments gauge that triggers a
	// rewrite (<= 0 means 1: any disorder at all).
	Threshold int
	// Cols pins the cluster columns for every dataset; empty picks per
	// dataset from live provenance and dictionary statistics.
	Cols []string
	// Quiesce is the pause-during-append debounce: a dataset whose last
	// append is more recent than this is skipped, so compaction (which holds
	// the append lock for the whole rewrite) never lands in the middle of an
	// ingest burst. 0 means Interval.
	Quiesce time.Duration
	// Logf, when set, receives one line per compaction and per failure.
	Logf func(format string, args ...any)
}

// Compactor periodically rewrites zpack-backed datasets whose appended tails
// have accumulated disorder. One Sweep examines every dataset: zpack-backed,
// quiesced (no append within Quiesce), and at or above the unsorted-segments
// threshold — then compacts each such dataset through Registry.Compact.
type Compactor struct {
	reg *Registry
	cfg CompactorConfig
}

// NewCompactor builds a compactor over the registry; Run starts it.
func NewCompactor(reg *Registry, cfg CompactorConfig) *Compactor {
	if cfg.Threshold <= 0 {
		cfg.Threshold = 1
	}
	if cfg.Quiesce == 0 {
		cfg.Quiesce = cfg.Interval
	}
	return &Compactor{reg: reg, cfg: cfg}
}

// Run sweeps every Interval until ctx is canceled.
func (c *Compactor) Run(ctx context.Context) {
	ticker := time.NewTicker(c.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			c.Sweep()
		}
	}
}

// Sweep examines every dataset once and compacts the eligible ones,
// returning the names compacted. Exported so tests (and one-shot callers)
// can drive the policy without the ticker.
func (c *Compactor) Sweep() []string {
	var compacted []string
	for _, d := range c.reg.List() {
		if d.packPath == "" {
			continue
		}
		if last := d.ctr.lastAppendNano.Load(); last != 0 && nowNano()-last < int64(c.cfg.Quiesce) {
			continue // ingest still hot; let it settle
		}
		if d.ctr.unsortedSegs.Load() < int64(c.cfg.Threshold) {
			continue
		}
		name := d.Name()
		nd, res, err := c.reg.Compact(name, c.cfg.Cols)
		if err != nil {
			if c.cfg.Logf != nil {
				c.cfg.Logf("compact %s: %v", name, err)
			}
			continue
		}
		if c.cfg.Logf != nil {
			c.cfg.Logf("compacted %s: %d rows, %d segments re-clustered on %v (%d segments were unsorted), generation %d",
				name, res.Rows, res.Segments, res.Cols, res.UnsortedBefore, nd.ctr.generation.Load())
		}
		compacted = append(compacted, name)
	}
	return compacted
}
