// Package server is the serving layer of zenvisage: the HTTP JSON API the
// paper's architecture diagram (Figure 6.1) puts between the browser
// front-end and the ZQL engine. It holds a registry of named, CSV- or
// generator-backed datasets, each wrapped in a per-dataset result cache and a
// request coalescer so that concurrent interactive traffic over one dataset
// shares scans and reuses prior work instead of multiplying cold scans.
//
// Stacking, per dataset, bottom to top:
//
//	engine.DB (row | bitmap | column)   one immutable store, shared read-only
//	  coalescingDB                      queued submissions fold into one ExecuteBatch
//	    cachingDB                       LRU results keyed by canonical plan SQL
//	      client.Session                ZQL parse/execute + bounded history
//	        HTTP handlers               /query /spec /recommend /datasets /stats
//
// docs/OPERATIONS.md is the operator-facing reference for the endpoints,
// counters, and tuning knobs this package exposes.
package server

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/client"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/zexec"
)

// DefaultCacheEntries is the per-dataset result cache capacity when the
// config does not set one.
const DefaultCacheEntries = 1024

// Config tunes one registered dataset.
type Config struct {
	// Backend selects the store: "row" (default), "bitmap", or "column".
	Backend string
	// Opt names the default ZQL batching level for requests that do not
	// carry one: "noopt", "intraline", "intratask", or "intertask"
	// ("" = intertask, the strongest).
	Opt string
	// Metric names the distance metric D ("" = z-normalized Euclidean).
	Metric string
	// Seed makes R (k-means) and recommendations deterministic (0 = 1).
	Seed int64
	// CacheEntries bounds the result cache: 0 means DefaultCacheEntries,
	// negative disables caching.
	CacheEntries int
	// Workers bounds concurrent engine batches issued by the coalescer
	// (<= 0 = 1 per dataset, which maximizes coalescing; the engine still
	// parallelizes inside each batch).
	Workers int
	// Parallelism bounds the store's scan workers per batch (<= 0 =
	// GOMAXPROCS). Applied once at registration; never per request.
	Parallelism int
	// ProcessParallelism bounds the process-phase worker goroutines per query
	// (0 = automatic: GOMAXPROCS at optimized levels). Results are identical
	// at every setting; a server packing many datasets onto one machine may
	// want 1 so one request's top-k search doesn't monopolize the cores.
	ProcessParallelism int
	// HistoryLimit bounds the session query history (0 = client default).
	HistoryLimit int
}

// Dataset is one registered table with its store, cache, coalescer, and
// session. All fields are fixed at registration; every method is safe for
// concurrent use.
type Dataset struct {
	name    string
	backend string
	table   *dataset.Table

	opt     zexec.OptLevel
	store   engine.DB // the real back-end; counters live here
	cache   *ResultCache
	bat     *batcher
	session *client.Session

	queries    atomic.Int64
	specs      atomic.Int64
	recommends atomic.Int64
	errors     atomic.Int64

	// Process-phase totals accumulated over every query served. The result
	// cache sits below the ZQL layer (it caches engine results, not zexec
	// results), so the process phase runs per request and these are exact.
	procTuples    atomic.Int64
	procDist      atomic.Int64
	procAbandoned atomic.Int64
}

// recordProcess folds one execution's process-phase counters into the
// dataset totals.
func (d *Dataset) recordProcess(s zexec.ProcessStats) {
	d.procTuples.Add(s.Tuples)
	d.procDist.Add(s.DistCalls)
	d.procAbandoned.Add(s.DistAbandoned)
}

// Name returns the registry name of the dataset.
func (d *Dataset) Name() string { return d.name }

// Backend returns the store kind: "row", "bitmap", or "column".
func (d *Dataset) Backend() string { return d.backend }

// Table returns the immutable base table.
func (d *Dataset) Table() *dataset.Table { return d.table }

// Session returns the shared session over the cached, coalescing back-end.
func (d *Dataset) Session() *client.Session { return d.session }

// Opt returns the dataset's default optimization level.
func (d *Dataset) Opt() zexec.OptLevel { return d.opt }

// DatasetStats aggregates every per-dataset counter for /stats.
type DatasetStats struct {
	Backend string `json:"backend"`
	Rows    int    `json:"rows"`
	// Engine counters are cumulative over the real store, so cache hits
	// leave RowsScanned untouched — the visible win of the cache.
	// SegmentsSkipped is nonzero only on the column backend: segments its
	// zone maps proved empty and never scanned.
	Queries         int64         `json:"queries"`
	RowsScanned     int64         `json:"rowsScanned"`
	SegmentsSkipped int64         `json:"segmentsSkipped"`
	Cache           CacheStats    `json:"cache"`
	Coalesce        BatchStats    `json:"coalesce"`
	Process         ProcessTotals `json:"process"`
	HTTP            HTTPStats     `json:"http"`
	History         int           `json:"historyEntries"`
}

// ProcessTotals aggregates process-phase work over every query the dataset
// served: tuples scored, distance calls made, and distance calls the pruning
// kernels abandoned early (work saved without changing results).
type ProcessTotals struct {
	Tuples        int64 `json:"tuples"`
	DistCalls     int64 `json:"distCalls"`
	DistAbandoned int64 `json:"distAbandoned"`
}

// HTTPStats counts requests served per endpoint kind.
type HTTPStats struct {
	Queries    int64 `json:"queries"`
	Specs      int64 `json:"specs"`
	Recommends int64 `json:"recommends"`
	Errors     int64 `json:"errors"`
}

// Stats snapshots the dataset's counters.
func (d *Dataset) Stats() DatasetStats {
	c := d.store.Counters()
	return DatasetStats{
		Backend:         d.backend,
		Rows:            d.table.NumRows(),
		Queries:         c.Queries,
		RowsScanned:     c.RowsScanned,
		SegmentsSkipped: c.SegmentsSkipped,
		Cache:           d.cache.Stats(),
		Coalesce:        d.bat.stats(),
		Process: ProcessTotals{
			Tuples:        d.procTuples.Load(),
			DistCalls:     d.procDist.Load(),
			DistAbandoned: d.procAbandoned.Load(),
		},
		HTTP: HTTPStats{
			Queries:    d.queries.Load(),
			Specs:      d.specs.Load(),
			Recommends: d.recommends.Load(),
			Errors:     d.errors.Load(),
		},
		History: d.session.HistoryLen(),
	}
}

// Registry names and owns the served datasets. Registration is expected at
// startup but is safe at any time; lookups are lock-cheap reads.
type Registry struct {
	mu       sync.RWMutex
	datasets map[string]*Dataset
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{datasets: make(map[string]*Dataset)}
}

// AddTable registers an in-memory table under its own name, building the
// store, cache, coalescer, and session stack around it.
func (r *Registry) AddTable(t *dataset.Table, cfg Config) (*Dataset, error) {
	if t == nil || t.Name == "" {
		return nil, fmt.Errorf("server: dataset needs a named table")
	}
	// Fail on a taken name before building the stack — a bitmap store indexes
	// the whole table, too expensive to throw away. The authoritative check
	// below still guards against a racing registration of the same name.
	r.mu.RLock()
	_, exists := r.datasets[t.Name]
	r.mu.RUnlock()
	if exists {
		return nil, fmt.Errorf("server: dataset %q already registered", t.Name)
	}
	var store engine.DB
	backend := cfg.Backend
	switch backend {
	case "", "row":
		backend = "row"
		store = engine.NewRowStore(t)
	case "bitmap":
		store = engine.NewBitmapStore(t)
	case "column":
		store = engine.NewColumnStore(t)
	default:
		return nil, fmt.Errorf("server: unknown backend %q (want row, bitmap, or column)", cfg.Backend)
	}
	if cfg.Parallelism > 0 {
		store.(engine.Parallel).SetParallelism(cfg.Parallelism)
	}
	opt := zexec.InterTask
	if cfg.Opt != "" {
		var err error
		if opt, err = zexec.OptLevelByName(cfg.Opt); err != nil {
			return nil, err
		}
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	entries := cfg.CacheEntries
	if entries == 0 {
		entries = DefaultCacheEntries
	}
	cache := NewResultCache(entries)
	bat := newBatcher(store, cfg.Workers)
	db := &cachingDB{inner: &coalescingDB{store: store, bat: bat}, cache: cache}

	sessOpts := []client.Option{
		client.WithOptLevel(opt),
		client.WithSeed(cfg.Seed),
	}
	if cfg.ProcessParallelism != 0 {
		sessOpts = append(sessOpts, client.WithProcessParallelism(cfg.ProcessParallelism))
	}
	if cfg.Metric != "" {
		sessOpts = append(sessOpts, client.WithMetric(cfg.Metric))
	}
	if cfg.HistoryLimit != 0 {
		sessOpts = append(sessOpts, client.WithHistoryLimit(cfg.HistoryLimit))
	}
	sess, err := client.OpenDB(db, t.Name, sessOpts...)
	if err != nil {
		return nil, err
	}
	d := &Dataset{
		name:    t.Name,
		backend: backend,
		table:   t,
		opt:     opt,
		store:   store,
		cache:   cache,
		bat:     bat,
		session: sess,
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, exists := r.datasets[d.name]; exists {
		return nil, fmt.Errorf("server: dataset %q already registered", d.name)
	}
	r.datasets[d.name] = d
	return d, nil
}

// LoadCSV registers a CSV file under name.
func (r *Registry) LoadCSV(name, path string, cfg Config) (*Dataset, error) {
	t, err := dataset.ReadCSVFile(name, path)
	if err != nil {
		return nil, err
	}
	return r.AddTable(t, cfg)
}

// Get returns the named dataset, or nil.
func (r *Registry) Get(name string) *Dataset {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.datasets[name]
}

// List returns the datasets sorted by name.
func (r *Registry) List() []*Dataset {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Dataset, 0, len(r.datasets))
	for _, d := range r.datasets {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
