// Package server is the serving layer of zenvisage: the HTTP JSON API the
// paper's architecture diagram (Figure 6.1) puts between the browser
// front-end and the ZQL engine. It holds a registry of named, CSV- or
// generator-backed datasets, each wrapped in a per-dataset result cache and a
// request coalescer so that concurrent interactive traffic over one dataset
// shares scans and reuses prior work instead of multiplying cold scans.
//
// Stacking, per dataset, bottom to top:
//
//	engine.DB (row | bitmap | column,   one immutable store, shared read-only;
//	           optionally sharded)      column/zpack stores can split into
//	                                    segment shards scanned in parallel
//	  coalescingDB                      queued submissions fold into one ExecuteBatch
//	    cachingDB                       LRU results keyed by canonical plan SQL
//	      client.Session                ZQL parse/execute + bounded history
//	        HTTP handlers               /query /spec /recommend /datasets /stats
//
// docs/OPERATIONS.md is the operator-facing reference for the endpoints,
// counters, and tuning knobs this package exposes.
package server

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/client"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/zexec"
	"repro/internal/zpack"
)

// DefaultCacheEntries is the per-dataset result cache capacity when the
// config does not set one.
const DefaultCacheEntries = 1024

// DefaultMaxQueue is the per-dataset admission-queue bound when the config
// does not set one: the most submissions that may be parked at the coalescer
// before new arrivals are shed with 429. Cache hits bypass the queue, so the
// bound only gates work that would actually reach the engine.
const DefaultMaxQueue = 256

// Config tunes one registered dataset.
type Config struct {
	// Backend selects the store: "row" (default), "bitmap", "column", or
	// "auto" (routes each prepared plan to a row or column sub-store by query
	// shape; docs/ARCHITECTURE.md, "The conjunct planner and auto routing").
	Backend string
	// Opt names the default ZQL batching level for requests that do not
	// carry one: "noopt", "intraline", "intratask", or "intertask"
	// ("" = intertask, the strongest).
	Opt string
	// Metric names the distance metric D ("" = z-normalized Euclidean).
	Metric string
	// Seed makes R (k-means) and recommendations deterministic (0 = 1).
	Seed int64
	// CacheEntries bounds the result cache: 0 means DefaultCacheEntries,
	// negative disables caching.
	CacheEntries int
	// Workers bounds concurrent engine batches issued by the coalescer
	// (<= 0 = 1 per dataset, which maximizes coalescing; the engine still
	// parallelizes inside each batch).
	Workers int
	// MaxQueue bounds the submissions parked at the coalescer before new
	// arrivals are shed with 429: 0 means DefaultMaxQueue, negative disables
	// shedding (unbounded queue).
	MaxQueue int
	// Parallelism bounds the store's scan workers per batch (<= 0 =
	// GOMAXPROCS). Applied once at registration; never per request.
	Parallelism int
	// NoPlanner pins WHERE conjuncts to their written order instead of the
	// greedy cheapest-first reorder the planner applies at Prepare time.
	// Results are identical either way; this is the A/B baseline knob.
	NoPlanner bool
	// Shards splits a column or zpack dataset into N contiguous segment
	// shards whose scans scatter across the worker pool and merge at a
	// gather point, results unchanged (docs/ARCHITECTURE.md, "Sharded
	// scatter-gather"). <= 1 means unsharded; the row and bitmap back-ends
	// ignore it. Effective shard count is capped by the segment count.
	Shards int
	// ProcessParallelism bounds the process-phase worker goroutines per query
	// (0 = automatic: GOMAXPROCS at optimized levels). Results are identical
	// at every setting; a server packing many datasets onto one machine may
	// want 1 so one request's top-k search doesn't monopolize the cores.
	ProcessParallelism int
	// HistoryLimit bounds the session query history (0 = client default).
	HistoryLimit int
}

// Dataset is one registered table with its store, cache, coalescer, and
// session. All fields are fixed at registration; every method is safe for
// concurrent use. An append does not mutate a Dataset — it builds a
// successor around the extended zpack snapshot and swaps it into the
// registry, so requests already executing against this Dataset finish on
// the view they started with.
type Dataset struct {
	name    string
	backend string
	table   *dataset.Table
	cfg     Config // as registered; appends rebuild the stack from it

	opt     zexec.OptLevel
	store   engine.DB // the real back-end; counters live here
	cache   *ResultCache
	bat     *batcher
	session *client.Session

	// zpack backing; nil for in-memory datasets. packW is atomic because
	// Appendable() reads it from request handlers while recoverWriter may
	// replace it on a failed append; all writer USE is serialized by the
	// registry's appendMu.
	packPath string
	packR    *zpack.Reader
	packW    atomic.Pointer[zpack.Writer]

	// packOwner is the descriptor-owning Reader of the current generation's
	// file: Append's Reopen shares its descriptor, so the whole append lineage
	// of one inode hangs off this one fd. A compaction replaces the inode and
	// so must open a new owner; the superseded one moves to packRetired and is
	// closed one compaction later, when every query that could still hold the
	// old snapshot is long finished (see Registry.Compact).
	packOwner   *zpack.Reader
	packRetired *zpack.Reader

	// ctr is SHARED across a dataset's generations: an append swaps in a
	// successor Dataset that points at the same counter cell, so increments
	// from requests still running on the old view land in the totals /stats
	// reports — the counters stay exact and monotonic across swaps.
	ctr *dsCounters
}

// dsCounters holds the per-dataset HTTP and process-phase totals that
// survive snapshot swaps.
type dsCounters struct {
	queries    atomic.Int64
	specs      atomic.Int64
	recommends atomic.Int64
	errors     atomic.Int64

	// Process-phase totals accumulated over every query served. The result
	// cache sits below the ZQL layer (it caches engine results, not zexec
	// results), so the process phase runs per request and these are exact.
	procTuples    atomic.Int64
	procDist      atomic.Int64
	procAbandoned atomic.Int64

	// timeouts counts requests that hit their deadline (504) or whose client
	// went away mid-execution (499) — both are executions the context cut
	// short at an engine cancellation point.
	timeouts atomic.Int64

	// Compaction state, shared across generations like everything else in this
	// struct. generation counts successful compactions (0 = as loaded);
	// unsortedSegs is a gauge over the current file, refreshed at registration,
	// after every append, and after every compaction — not at scrape time,
	// because /metrics reads Stats() once per series. lastAppendNano is what
	// the background compactor's pause-during-append debounce checks.
	compactions    atomic.Int64
	compactFails   atomic.Int64
	rowsRewritten  atomic.Int64
	generation     atomic.Int64
	lastCompactNs  atomic.Int64
	lastCols       atomic.Pointer[[]string]
	clusterCol     atomic.Pointer[string]
	unsortedSegs   atomic.Int64
	lastAppendNano atomic.Int64
}

// recordProcess folds one execution's process-phase counters into the
// dataset totals.
func (d *Dataset) recordProcess(s zexec.ProcessStats) {
	d.ctr.procTuples.Add(s.Tuples)
	d.ctr.procDist.Add(s.DistCalls)
	d.ctr.procAbandoned.Add(s.DistAbandoned)
}

// Name returns the registry name of the dataset.
func (d *Dataset) Name() string { return d.name }

// Backend returns the store kind: "row", "bitmap", or "column".
func (d *Dataset) Backend() string { return d.backend }

// Table returns the immutable base table.
func (d *Dataset) Table() *dataset.Table { return d.table }

// Session returns the shared session over the cached, coalescing back-end.
func (d *Dataset) Session() *client.Session { return d.session }

// Opt returns the dataset's default optimization level.
func (d *Dataset) Opt() zexec.OptLevel { return d.opt }

// Segments returns the zone-map segment count of the dataset's store, or 0
// for back-ends that don't segment (row, bitmap).
func (d *Dataset) Segments() int {
	if s, ok := d.store.(engine.Segmented); ok {
		return s.NumSegments(d.table.Name)
	}
	return 0
}

// ShardCount returns the store's segment shard count for this dataset, or 0
// when the store is unsharded.
func (d *Dataset) ShardCount() int {
	if s, ok := d.store.(interface{ NumShards(table string) int }); ok {
		return s.NumShards(d.table.Name)
	}
	return 0
}

// Appendable reports whether POST /datasets/{name}/append can extend this
// dataset (zpack-backed datasets only).
func (d *Dataset) Appendable() bool { return d.packW.Load() != nil }

// DatasetStats aggregates every per-dataset counter for /stats.
type DatasetStats struct {
	Backend string `json:"backend"`
	Rows    int    `json:"rows"`
	// Engine counters are cumulative over the real store, so cache hits
	// leave RowsScanned untouched — the visible win of the cache.
	// SegmentsSkipped is nonzero only on the column backend: segments its
	// zone maps proved empty and never scanned; SegmentsScanned are the ones
	// that were actually visited, and SegmentLoads the distinct segments ever
	// materialized (for zpack, read from disk).
	Queries         int64         `json:"queries"`
	RowsScanned     int64         `json:"rowsScanned"`
	SegmentsScanned int64         `json:"segmentsScanned"`
	SegmentsSkipped int64         `json:"segmentsSkipped"`
	SegmentLoads    int64         `json:"segmentLoads,omitempty"`
	Cache           CacheStats    `json:"cache"`
	Coalesce        BatchStats    `json:"coalesce"`
	Process         ProcessTotals `json:"process"`
	HTTP            HTTPStats     `json:"http"`
	History         int           `json:"historyEntries"`
	// SkipProvenance attributes zone-map skips to the (column, metadata kind)
	// that proved each skipped segment empty — highest count first. Only the
	// column backend produces attributions.
	SkipProvenance []SkipProvEntry `json:"skipProvenance,omitempty"`
	// Planner reports the conjunct planner's activity: plans that went
	// through scoring, plans whose conjunct order actually changed, and — on
	// the auto backend only — how prepared plans routed across sub-stores.
	Planner *PlannerStats `json:"planner,omitempty"`
	// Pool is present only on sharded datasets: the scatter pool's in-flight
	// shard scans against its capacity.
	Pool *PoolStats `json:"pool,omitempty"`
	// Shards is present only on sharded datasets: each shard's share of the
	// scan work, in shard order. The store-wide counters above are the sums.
	Shards []ShardStats `json:"shards,omitempty"`
	// Compaction is present only on zpack-backed datasets: the re-clustering
	// lifecycle counters (docs/OPERATIONS.md, "Compaction").
	Compaction *CompactionStats `json:"compaction,omitempty"`
}

// CompactionStats is the compaction lifecycle of one zpack-backed dataset.
type CompactionStats struct {
	// Generation counts successful compactions since the dataset registered
	// (0 = serving the file as loaded).
	Generation int64 `json:"generation"`
	// Compactions / Failures / RowsRewritten are cumulative across
	// generations; a failure leaves the old generation serving.
	Compactions   int64 `json:"compactions"`
	Failures      int64 `json:"failures"`
	RowsRewritten int64 `json:"rowsRewritten"`
	// LastDurationMs and LastCols describe the most recent successful
	// compaction: wall time and the cluster columns used.
	LastDurationMs int64    `json:"lastDurationMs,omitempty"`
	LastCols       []string `json:"lastCols,omitempty"`
	// ClusterCol is the primary cluster column the UnsortedSegments gauge is
	// measured against; UnsortedSegments counts segments out of order on it —
	// the disorder appends accumulate and the background compactor thresholds
	// on. Zero right after a compaction, by construction.
	ClusterCol       string `json:"clusterCol,omitempty"`
	UnsortedSegments int64  `json:"unsortedSegments"`
}

// SkipProvEntry is one skip-attribution bucket: segments proved empty for
// this dataset by the named column's metadata, via "dict" (categorical
// dictionary bitset), "zonemap" (numeric min/max), "const" (constant-false
// predicate), or "expr" (composite AND/OR proof).
type SkipProvEntry struct {
	Column string `json:"column"`
	Via    string `json:"via"`
	Count  int64  `json:"count"`
}

// PlannerStats is the conjunct planner's activity for one dataset.
type PlannerStats struct {
	// PlansPlanned counts multi-conjunct plans the greedy scorer examined;
	// PlansReordered the subset whose evaluation order actually changed.
	PlansPlanned   int64 `json:"plansPlanned"`
	PlansReordered int64 `json:"plansReordered"`
	// Routes is present only on the auto backend: plans routed per decision,
	// highest count first.
	Routes []RouteEntry `json:"routes,omitempty"`
}

// RouteEntry is one auto-backend routing bucket.
type RouteEntry struct {
	Route string `json:"route"`
	Count int64  `json:"count"`
}

// PoolStats is the sharded scatter pool's instantaneous saturation.
type PoolStats struct {
	Busy     int `json:"busy"`
	Capacity int `json:"capacity"`
}

// ShardStats is one segment shard's share of the scan work.
type ShardStats struct {
	Segments        int   `json:"segments"`
	RowsScanned     int64 `json:"rowsScanned"`
	SegmentsSkipped int64 `json:"segmentsSkipped"`
	// SegmentLoads counts distinct segments the shard has materialized — for
	// zpack datasets, segments actually read from disk. A shard whose zone
	// maps keep proving its segments empty stays at zero.
	SegmentLoads int64 `json:"segmentLoads"`
}

// ProcessTotals aggregates process-phase work over every query the dataset
// served: tuples scored, distance calls made, and distance calls the pruning
// kernels abandoned early (work saved without changing results).
type ProcessTotals struct {
	Tuples        int64 `json:"tuples"`
	DistCalls     int64 `json:"distCalls"`
	DistAbandoned int64 `json:"distAbandoned"`
}

// HTTPStats counts requests served per endpoint kind. Timeouts counts
// executions cut short by their request context — deadline exceeded (504) or
// client disconnect (499); both also count under Errors.
type HTTPStats struct {
	Queries    int64 `json:"queries"`
	Specs      int64 `json:"specs"`
	Recommends int64 `json:"recommends"`
	Errors     int64 `json:"errors"`
	Timeouts   int64 `json:"timeouts"`
}

// skipProvenance snapshots the store's skip attribution in emit order, or
// nil for back-ends that don't attribute.
func (d *Dataset) skipProvenance() []SkipProvEntry {
	sp, ok := d.store.(engine.SkipAttributed)
	if !ok {
		return nil
	}
	m := sp.SkipProvenance()
	if len(m) == 0 {
		return nil
	}
	out := make([]SkipProvEntry, 0, len(m))
	for _, a := range engine.SortedSkipAttrs(m) {
		out = append(out, SkipProvEntry{Column: a.Column, Via: a.Via, Count: m[a]})
	}
	return out
}

// plannerStats snapshots the planner counters and, for auto-routing stores,
// the per-route totals in emit order.
func (d *Dataset) plannerStats(c engine.Counters) *PlannerStats {
	ps := &PlannerStats{PlansPlanned: c.PlansPlanned, PlansReordered: c.PlansReordered}
	if rc, ok := d.store.(engine.RouteCounted); ok {
		m := rc.RouteCounts()
		for _, route := range engine.SortedRoutes(m) {
			ps.Routes = append(ps.Routes, RouteEntry{Route: route, Count: m[route]})
		}
	}
	return ps
}

// Stats snapshots the dataset's counters.
func (d *Dataset) Stats() DatasetStats {
	c := d.store.Counters()
	var shards []ShardStats
	if sh, ok := d.store.(engine.ShardedDB); ok {
		for _, sc := range sh.ShardStats(d.table.Name) {
			shards = append(shards, ShardStats{
				Segments:        sc.Segments,
				RowsScanned:     sc.RowsScanned,
				SegmentsSkipped: sc.SegmentsSkipped,
				SegmentLoads:    sc.SegmentLoads,
			})
		}
	}
	var loads int64
	if sl, ok := d.store.(interface{ SegmentLoads(table string) int64 }); ok {
		loads = sl.SegmentLoads(d.table.Name)
	}
	var pool *PoolStats
	if ps, ok := d.store.(interface{ PoolStats() (busy, capacity int) }); ok {
		busy, capacity := ps.PoolStats()
		pool = &PoolStats{Busy: busy, Capacity: capacity}
	}
	var compaction *CompactionStats
	if d.packPath != "" {
		compaction = &CompactionStats{
			Generation:       d.ctr.generation.Load(),
			Compactions:      d.ctr.compactions.Load(),
			Failures:         d.ctr.compactFails.Load(),
			RowsRewritten:    d.ctr.rowsRewritten.Load(),
			LastDurationMs:   d.ctr.lastCompactNs.Load() / 1e6,
			UnsortedSegments: d.ctr.unsortedSegs.Load(),
		}
		if cols := d.ctr.lastCols.Load(); cols != nil {
			compaction.LastCols = *cols
		}
		if col := d.ctr.clusterCol.Load(); col != nil {
			compaction.ClusterCol = *col
		}
	}
	return DatasetStats{
		Shards:          shards,
		Compaction:      compaction,
		Backend:         d.backend,
		Rows:            d.table.NumRows(),
		Queries:         c.Queries,
		RowsScanned:     c.RowsScanned,
		SegmentsScanned: c.SegmentsScanned,
		SegmentsSkipped: c.SegmentsSkipped,
		SegmentLoads:    loads,
		Cache:           d.cache.Stats(),
		Coalesce:        d.bat.stats(),
		SkipProvenance:  d.skipProvenance(),
		Planner:         d.plannerStats(c),
		Pool:            pool,
		Process: ProcessTotals{
			Tuples:        d.ctr.procTuples.Load(),
			DistCalls:     d.ctr.procDist.Load(),
			DistAbandoned: d.ctr.procAbandoned.Load(),
		},
		HTTP: HTTPStats{
			Queries:    d.ctr.queries.Load(),
			Specs:      d.ctr.specs.Load(),
			Recommends: d.ctr.recommends.Load(),
			Errors:     d.ctr.errors.Load(),
			Timeouts:   d.ctr.timeouts.Load(),
		},
		History: d.session.HistoryLen(),
	}
}

// Registry names and owns the served datasets. Registration is expected at
// startup but is safe at any time; lookups are lock-cheap reads. Appends
// serialize on their own lock so a slow append never blocks queries.
type Registry struct {
	mu       sync.RWMutex
	datasets map[string]*Dataset
	appendMu sync.Mutex

	// Readiness for /readyz: ready flips true once startup loading completes
	// (zserved calls SetReady after the last dataset registers), and swaps
	// counts snapshot-swap windows in flight — an append rebuilding and
	// swapping a dataset stack briefly reports not-ready so rolling deploys
	// and probes don't route traffic into the swap.
	ready atomic.Bool
	swaps atomic.Int64
}

// SetReady marks the registry ready (or not) for /readyz. Call with true
// once startup loading is complete.
func (r *Registry) SetReady(ready bool) { r.ready.Store(ready) }

// Ready reports whether the registry should pass readiness probes: marked
// ready and no dataset snapshot swap in flight.
func (r *Registry) Ready() bool { return r.ready.Load() && r.swaps.Load() == 0 }

// ErrNotAppendable marks an append against a dataset without a zpack
// backing; the HTTP layer maps it to 409 Conflict.
var ErrNotAppendable = errors.New("server: dataset is not appendable (only zpack-backed datasets accept appends)")

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{datasets: make(map[string]*Dataset)}
}

// AddTable registers an in-memory table under its own name, building the
// store, cache, coalescer, and session stack around it.
func (r *Registry) AddTable(t *dataset.Table, cfg Config) (*Dataset, error) {
	if t == nil || t.Name == "" {
		return nil, fmt.Errorf("server: dataset needs a named table")
	}
	// Fail on a taken name before building the stack — a bitmap store indexes
	// the whole table, too expensive to throw away. The authoritative check
	// below still guards against a racing registration of the same name.
	r.mu.RLock()
	_, exists := r.datasets[t.Name]
	r.mu.RUnlock()
	if exists {
		return nil, fmt.Errorf("server: dataset %q already registered", t.Name)
	}
	var store engine.DB
	backend := cfg.Backend
	switch backend {
	case "", "row":
		backend = "row"
		store = engine.NewRowStore(t)
	case "bitmap":
		store = engine.NewBitmapStore(t)
	case "column":
		if cfg.Shards > 1 {
			store = engine.NewShardedStore(cfg.Shards, t)
		} else {
			store = engine.NewColumnStore(t)
		}
	case "auto":
		store = engine.NewAutoStore(cfg.Shards, t)
	default:
		return nil, fmt.Errorf("server: unknown backend %q (want row, bitmap, column, or auto)", cfg.Backend)
	}
	d, err := newDataset(t, store, backend, cfg)
	if err != nil {
		return nil, err
	}
	return r.add(d)
}

// AddZpack registers a persistent zpack dataset under name: the file's
// footer is read, the table opens lazily, and the store is the column
// back-end over the reader's segment source — warm start, no CSV parse, no
// data deserialized until queries touch it. The file also opens for append,
// backing POST /datasets/{name}/append. cfg.Backend must be empty or
// "column"; zone-map-driven lazy loading only exists there.
func (r *Registry) AddZpack(name, path string, cfg Config) (*Dataset, error) {
	if name == "" {
		return nil, fmt.Errorf("server: dataset needs a name")
	}
	if cfg.Backend != "" && cfg.Backend != "column" {
		return nil, fmt.Errorf("server: zpack datasets require the column backend, not %q", cfg.Backend)
	}
	cfg.Backend = "column"
	reader, err := zpack.Open(path)
	if err != nil {
		return nil, err
	}
	writer, err := zpack.OpenAppend(path)
	if err != nil {
		reader.Close()
		return nil, err
	}
	t := reader.Table()
	t.Name = name
	d, err := newDataset(t, zpackStore(reader, cfg), "column", cfg)
	if err != nil {
		reader.Close()
		return nil, err
	}
	d.packPath, d.packR, d.packOwner = path, reader, reader
	d.packW.Store(writer)
	d.refreshUnsorted()
	return r.add(d)
}

// zpackStore builds the column back-end over a zpack reader, sharded when
// the config asks for it: shards are range views over the same footer index,
// so the file is never rewritten and lazily-skipped segments are still never
// read from disk. Append rebuilds through this same helper, so appended
// segments land in the re-split tail shard's range.
func zpackStore(r *zpack.Reader, cfg Config) engine.DB {
	if cfg.Shards > 1 {
		return engine.NewShardedStoreFromSource(cfg.Shards, r)
	}
	return engine.NewColumnStoreFromSource(r)
}

// newDataset assembles the serving stack — store, cache, coalescer, session
// — around a table whose store is already built.
func newDataset(t *dataset.Table, store engine.DB, backend string, cfg Config) (*Dataset, error) {
	if cfg.Parallelism > 0 {
		store.(engine.Parallel).SetParallelism(cfg.Parallelism)
	}
	if cfg.NoPlanner {
		store.(engine.Planner).SetPlanning(false)
	}
	opt := zexec.InterTask
	if cfg.Opt != "" {
		var err error
		if opt, err = zexec.OptLevelByName(cfg.Opt); err != nil {
			return nil, err
		}
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	entries := cfg.CacheEntries
	if entries == 0 {
		entries = DefaultCacheEntries
	}
	cache := NewResultCache(entries)
	maxQueue := cfg.MaxQueue
	if maxQueue == 0 {
		maxQueue = DefaultMaxQueue
	}
	bat := newBatcher(store, cfg.Workers, maxQueue)
	db := &cachingDB{inner: &coalescingDB{store: store, bat: bat}, cache: cache}

	sessOpts := []client.Option{
		client.WithOptLevel(opt),
		client.WithSeed(cfg.Seed),
	}
	if cfg.ProcessParallelism != 0 {
		sessOpts = append(sessOpts, client.WithProcessParallelism(cfg.ProcessParallelism))
	}
	if cfg.Metric != "" {
		sessOpts = append(sessOpts, client.WithMetric(cfg.Metric))
	}
	if cfg.HistoryLimit != 0 {
		sessOpts = append(sessOpts, client.WithHistoryLimit(cfg.HistoryLimit))
	}
	sess, err := client.OpenDB(db, t.Name, sessOpts...)
	if err != nil {
		return nil, err
	}
	return &Dataset{
		name:    t.Name,
		backend: backend,
		table:   t,
		cfg:     cfg,
		opt:     opt,
		store:   store,
		cache:   cache,
		bat:     bat,
		session: sess,
		ctr:     &dsCounters{},
	}, nil
}

// add installs a built dataset, failing on a taken name.
func (r *Registry) add(d *Dataset) (*Dataset, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, exists := r.datasets[d.name]; exists {
		return nil, fmt.Errorf("server: dataset %q already registered", d.name)
	}
	r.datasets[d.name] = d
	return d, nil
}

// LoadCSV registers a CSV file under name.
func (r *Registry) LoadCSV(name, path string, cfg Config) (*Dataset, error) {
	t, err := dataset.ReadCSVFile(name, path)
	if err != nil {
		return nil, err
	}
	return r.AddTable(t, cfg)
}

// Append extends a zpack-backed dataset with rows and swaps the successor
// snapshot into the registry. The commit order is what makes the swap
// snapshot-consistent:
//
//  1. rows are appended and flushed to the file (durable before visible);
//  2. the reader reopens over the extended footer (sharing the descriptor —
//     committed blocks are append-only, so the old reader stays valid);
//  3. a fresh stack (store, cache, coalescer, session) is built around the
//     new snapshot, inheriting the predecessor's cumulative counters, with
//     the old cache's entries counted as evicted;
//  4. the registry entry is swapped; in-flight queries finish on the old
//     view, new requests see the extended one.
//
// It returns the successor dataset.
func (r *Registry) Append(name string, rows []dataset.Row) (*Dataset, error) {
	r.appendMu.Lock()
	defer r.appendMu.Unlock()
	d := r.Get(name)
	if d == nil {
		return nil, fmt.Errorf("server: no dataset %q", name)
	}
	if !d.Appendable() {
		return nil, fmt.Errorf("%w: %q has backend %q with no usable zpack file", ErrNotAppendable, name, d.backend)
	}
	// Validate arity up front so a bad row cannot leave half a batch
	// buffered in the writer's tail.
	for i, row := range rows {
		if len(row) != d.table.NumCols() {
			return nil, fmt.Errorf("server: append row %d has %d values, schema has %d columns", i, len(row), d.table.NumCols())
		}
	}
	if len(rows) == 0 {
		return d, nil
	}
	w := d.packW.Load()
	if err := w.Append(rows); err != nil {
		d.recoverWriter(w)
		return nil, err
	}
	if err := w.Flush(); err != nil {
		// The batch may be half-buffered in the writer's tail; a client
		// retry against that state would commit the rows twice. Rebuild the
		// writer from the last committed footer so a retry starts clean.
		d.recoverWriter(w)
		return nil, err
	}
	// Readiness gate: from here to the registry swap the dataset's serving
	// stack is being replaced; /readyz reports 503 for the window.
	r.swaps.Add(1)
	defer r.swaps.Add(-1)
	fresh, err := d.packR.Reopen()
	if err != nil {
		// The flush committed; the writer is consistent. The caller sees an
		// error for durable rows — at-least-once, like any non-idempotent
		// append API without client-supplied request IDs.
		return nil, err
	}
	t := fresh.Table()
	t.Name = name
	nd, err := newDataset(t, zpackStore(fresh, d.cfg), "column", d.cfg)
	if err != nil {
		return nil, err
	}
	nd.packPath, nd.packR = d.packPath, fresh
	nd.packOwner, nd.packRetired = d.packOwner, d.packRetired
	nd.packW.Store(w)
	// Counter continuity: /stats stays exact and monotonic across the swap.
	// HTTP and process counters are a shared cell (nd adopts d's), the
	// cache counters are inherited with the dropped entries counted as
	// evictions, and engine counters live in the store and restart with it
	// (documented in OPERATIONS.md).
	nd.ctr = d.ctr
	nd.cache.InheritStats(d.cache)
	nd.ctr.lastAppendNano.Store(nowNano())
	nd.refreshUnsorted()
	r.mu.Lock()
	r.datasets[name] = nd
	r.mu.Unlock()
	return nd, nil
}

// recoverWriter discards a zpack writer whose in-memory state may have
// diverged from the file (a failed append or flush) and reopens it from the
// last committed footer. If even that fails the dataset stops accepting
// appends rather than risking duplicate or torn commits; queries are
// unaffected either way. Callers hold appendMu, which is what serializes
// every packW access.
func (d *Dataset) recoverWriter(w *zpack.Writer) {
	w.Discard()
	fresh, err := zpack.OpenAppend(d.packPath)
	if err != nil {
		d.packW.Store(nil)
		return
	}
	d.packW.Store(fresh)
}

// Get returns the named dataset, or nil.
func (r *Registry) Get(name string) *Dataset {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.datasets[name]
}

// List returns the datasets sorted by name.
func (r *Registry) List() []*Dataset {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Dataset, 0, len(r.datasets))
	for _, d := range r.datasets {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
