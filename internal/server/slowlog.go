package server

import (
	"net/http"
	"sync"
	"time"

	"repro/internal/trace"
)

// DefaultSlowQueryThreshold is the slow-query log's default capture
// threshold (zserved's -slow-query-ms default).
const DefaultSlowQueryThreshold = 200 * time.Millisecond

// DefaultSlowLogKeep is how many slow-query entries the ring buffer retains.
const DefaultSlowLogKeep = 64

// SlowEntry is one captured slow request: identity (request + trace IDs, the
// join keys against access-log lines), what ran (canonical SQL and the
// auto-router's decision, lifted from the span tree's plan spans), and the
// full span tree for stage-level drill-down.
type SlowEntry struct {
	Time       string      `json:"time"`
	RequestID  string      `json:"requestId"`
	TraceID    string      `json:"traceId"`
	Path       string      `json:"path"`
	Status     int         `json:"status"`
	DurationMs float64     `json:"durationMs"`
	SQL        []string    `json:"sql,omitempty"`
	Route      string      `json:"route,omitempty"`
	Trace      *trace.Tree `json:"trace"`
}

// slowLog is a bounded ring of the most recent slow requests. Writes are one
// mutex acquisition; the ring never allocates after warm-up beyond the
// entries themselves.
type slowLog struct {
	mu      sync.Mutex
	entries []SlowEntry
	next    int
	full    bool
}

func newSlowLog(keep int) *slowLog {
	if keep <= 0 {
		keep = DefaultSlowLogKeep
	}
	return &slowLog{entries: make([]SlowEntry, keep)}
}

func (l *slowLog) add(e SlowEntry) {
	l.mu.Lock()
	l.entries[l.next] = e
	l.next++
	if l.next == len(l.entries) {
		l.next, l.full = 0, true
	}
	l.mu.Unlock()
}

// snapshot returns the retained entries, newest first.
func (l *slowLog) snapshot() []SlowEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.next
	if l.full {
		n = len(l.entries)
	}
	out := make([]SlowEntry, 0, n)
	for i := 0; i < n; i++ {
		idx := l.next - 1 - i
		if idx < 0 {
			idx += len(l.entries)
		}
		out = append(out, l.entries[idx])
	}
	return out
}

// slowEntryFrom assembles a slow-log entry from a finished request's span
// tree, lifting each plan span's canonical SQL (bounded) and the first route
// decision seen.
func slowEntryFrom(tree *trace.Tree, path string, status int, start time.Time, elapsed time.Duration) SlowEntry {
	e := SlowEntry{
		Time:       start.UTC().Format(time.RFC3339Nano),
		RequestID:  tree.RequestID,
		TraceID:    tree.TraceID,
		Path:       path,
		Status:     status,
		DurationMs: float64(elapsed.Microseconds()) / 1000,
		Trace:      tree,
	}
	const maxSQL = 8
	trace.Walk(tree.Root, func(n *trace.Node) {
		if n.Name != "plan" {
			return
		}
		if sql, ok := n.Attrs["sql"].(string); ok && len(e.SQL) < maxSQL {
			e.SQL = append(e.SQL, sql)
		}
		if route, ok := n.Attrs["route"].(string); ok && e.Route == "" {
			e.Route = route
		}
	})
	return e
}

// handleSlowLog serves GET /debug/slowlog: the capture threshold and the
// retained entries, newest first.
func (s *Server) handleSlowLog(w http.ResponseWriter, _ *http.Request) {
	out := struct {
		ThresholdMs int64       `json:"thresholdMs"`
		Entries     []SlowEntry `json:"entries"`
	}{ThresholdMs: s.slowThreshold.Milliseconds()}
	if s.slow != nil {
		out.Entries = s.slow.snapshot()
	}
	if out.Entries == nil {
		out.Entries = []SlowEntry{}
	}
	writeJSON(w, http.StatusOK, out)
}
