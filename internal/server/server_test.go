package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/client"
	"repro/internal/dataset"
	"repro/internal/workload"
	"repro/internal/zexec"
)

// testTable builds the seed dataset; server and reference sessions each get
// their own instance so their engine counters stay independent.
func testTable() *dataset.Table {
	return workload.Sales(workload.SalesConfig{Rows: 10000, Products: 8, Years: 8, Cities: 4, Seed: 2})
}

func newTestServer(t *testing.T, cfg Config) (*httptest.Server, *Registry) {
	t.Helper()
	reg := NewRegistry()
	if cfg.Seed == 0 {
		cfg.Seed = 7
	}
	if _, err := reg.AddTable(testTable(), cfg); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(reg))
	t.Cleanup(ts.Close)
	return ts, reg
}

// referenceSession is the in-process ground truth the server must match byte
// for byte.
func referenceSession(t *testing.T) *client.Session {
	t.Helper()
	s, err := client.Open(testTable(), client.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// encodePayload renders a wire value exactly the way the server does
// (compact, no HTML escaping).
func encodePayload(t *testing.T, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		t.Fatal(err)
	}
	return bytes.TrimSuffix(buf.Bytes(), []byte("\n"))
}

// queryEnvelope decodes a query/spec response keeping the result's raw bytes.
type queryEnvelope struct {
	Dataset string          `json:"dataset"`
	ZQL     string          `json:"zql"`
	Result  json.RawMessage `json:"result"`
	Stats   RunStatsJSON    `json:"stats"`
}

func post(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func postQuery(t *testing.T, url string, body any) queryEnvelope {
	t.Helper()
	resp, raw := post(t, url, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var env queryEnvelope
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatal(err)
	}
	return env
}

const risingQuery = `
NAME | X      | Y         | Z                 | PROCESS
f1   | 'year' | 'revenue' | v1 <- 'product'.* | v2 <- argmax(v1)[k=2] T(f1)
*f2  | 'year' | 'revenue' | v2                |`

func TestQueryMatchesSessionByteForByte(t *testing.T) {
	ts, _ := newTestServer(t, Config{})
	ref := referenceSession(t)

	env := postQuery(t, ts.URL+"/query", QueryRequest{Dataset: "sales", ZQL: risingQuery})
	want, err := ref.Query(risingQuery)
	if err != nil {
		t.Fatal(err)
	}
	wantBytes := encodePayload(t, EncodeResult(want))
	if !bytes.Equal(env.Result, wantBytes) {
		t.Errorf("server result differs from session result:\nserver: %.200s\nlocal:  %.200s", env.Result, wantBytes)
	}
	if env.Stats.SQLQueries != want.Stats.SQLQueries {
		t.Errorf("sql queries = %d, want %d", env.Stats.SQLQueries, want.Stats.SQLQueries)
	}
}

// TestColumnBackendMatchesSession pins the column backend into the serving
// stack: responses must be byte-identical to an in-process row-store session
// (results are back-end independent), and /stats must carry the zone-map
// counter.
func TestColumnBackendMatchesSession(t *testing.T) {
	ts, reg := newTestServer(t, Config{Backend: "column"})
	ref := referenceSession(t)

	env := postQuery(t, ts.URL+"/query", QueryRequest{Dataset: "sales", ZQL: risingQuery})
	want, err := ref.Query(risingQuery)
	if err != nil {
		t.Fatal(err)
	}
	wantBytes := encodePayload(t, EncodeResult(want))
	if !bytes.Equal(env.Result, wantBytes) {
		t.Errorf("column-backend result differs from row-store session:\nserver: %.200s\nlocal:  %.200s", env.Result, wantBytes)
	}
	st := reg.Get("sales").Stats()
	if st.Backend != "column" {
		t.Errorf("backend = %q, want column", st.Backend)
	}
	if st.RowsScanned == 0 {
		t.Error("column backend reported zero rows scanned after a cold query")
	}

	// A constraint on a value absent from the table lets the zone maps
	// prove every segment empty, which must surface on /stats.
	skipQuery := `
NAME | X      | Y         | Z                 | CONSTRAINTS
*f1  | 'year' | 'revenue' | v1 <- 'product'.* | country='nowhere'`
	postQuery(t, ts.URL+"/query", QueryRequest{Dataset: "sales", ZQL: skipQuery})
	if st = reg.Get("sales").Stats(); st.SegmentsSkipped == 0 {
		t.Error("impossible constraint skipped no segments on /stats")
	}
}

func TestQueryWithInputsMatchesSession(t *testing.T) {
	ts, _ := newTestServer(t, Config{})
	ref := referenceSession(t)
	src := `
NAME | X      | Y         | Z                 | PROCESS
-f1  |        |           |                   |
f2   | 'year' | 'revenue' | v1 <- 'product'.* | v2 <- argmin(v1)[k=1] D(f1, f2)
*f3  | 'year' | 'revenue' | v2                |`
	drawn := []float64{1, 2, 3, 4, 5, 6, 7, 8}

	env := postQuery(t, ts.URL+"/query", QueryRequest{
		Dataset: "sales", ZQL: src, Inputs: map[string][]float64{"f1": drawn},
	})
	want, err := ref.QueryWithInputs(src, map[string][]float64{"f1": drawn})
	if err != nil {
		t.Fatal(err)
	}
	if got, wantB := env.Result, encodePayload(t, EncodeResult(want)); !bytes.Equal(got, wantB) {
		t.Errorf("input-query result differs:\nserver: %.200s\nlocal:  %.200s", got, wantB)
	}
}

func TestSpecMatchesSessionByteForByte(t *testing.T) {
	ts, _ := newTestServer(t, Config{})
	ref := referenceSession(t)
	spec := SpecJSON{
		X: "year", Y: "revenue", Z: "product",
		Task: "similar", K: 2,
		Drawn: []float64{10, 20, 30, 40, 50, 60, 70, 80},
	}
	env := postQuery(t, ts.URL+"/spec", SpecRequest{Dataset: "sales", Spec: spec})
	if env.ZQL == "" {
		t.Error("/spec should echo the generated ZQL")
	}

	fspec, err := spec.toSpec()
	if err != nil {
		t.Fatal(err)
	}
	zqlText, inputs, err := fspec.ToZQL()
	if err != nil {
		t.Fatal(err)
	}
	if zqlText != env.ZQL {
		t.Errorf("echoed ZQL differs:\n%s\nvs\n%s", env.ZQL, zqlText)
	}
	want, err := ref.QueryWithInputs(zqlText, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if got, wantB := env.Result, encodePayload(t, EncodeResult(want)); !bytes.Equal(got, wantB) {
		t.Errorf("spec result differs:\nserver: %.200s\nlocal:  %.200s", got, wantB)
	}
}

func TestRecommendMatchesSession(t *testing.T) {
	ts, _ := newTestServer(t, Config{})
	ref := referenceSession(t)

	resp, raw := post(t, ts.URL+"/recommend", RecommendRequest{Dataset: "sales", X: "year", Y: "revenue", Z: "product", K: 3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var env struct {
		Recommendations json.RawMessage `json:"recommendations"`
	}
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatal(err)
	}
	recs, err := ref.Recommend("year", "revenue", "product", 3)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := env.Recommendations, encodePayload(t, EncodeRecommendations(recs)); !bytes.Equal(got, want) {
		t.Errorf("recommendations differ:\nserver: %.200s\nlocal:  %.200s", got, want)
	}
}

func TestWarmCacheServesIdenticalBytesWithoutScanning(t *testing.T) {
	ts, reg := newTestServer(t, Config{})
	req := QueryRequest{Dataset: "sales", ZQL: risingQuery}

	cold := postQuery(t, ts.URL+"/query", req)
	if cold.Stats.RowsScanned == 0 {
		t.Fatal("cold run should scan rows")
	}
	warm := postQuery(t, ts.URL+"/query", req)
	if !bytes.Equal(cold.Result, warm.Result) {
		t.Error("warm result must be byte-identical to cold")
	}
	if warm.Stats.RowsScanned != 0 {
		t.Errorf("warm run scanned %d rows, want 0 (all plans cached)", warm.Stats.RowsScanned)
	}
	ds := reg.Get("sales").Stats()
	if ds.Cache.Hits == 0 || ds.Cache.Misses == 0 {
		t.Errorf("cache stats = %+v", ds.Cache)
	}
	if ds.HTTP.Queries != 2 {
		t.Errorf("http query count = %d", ds.HTTP.Queries)
	}
}

func TestConcurrentQueriesStayByteIdentical(t *testing.T) {
	ts, _ := newTestServer(t, Config{})
	ref := referenceSession(t)
	queries := []string{
		risingQuery,
		`
NAME | X      | Y        | Z                 | PROCESS
f1   | 'year' | 'profit' | v1 <- 'product'.* | v2 <- argany(v1)[t>0] T(f1)
*f2  | 'year' | 'profit' | v2                |`,
		`
NAME | X      | Y         | Z               | CONSTRAINTS | VIZ
*f1  | 'year' | 'revenue' | v1 <- 'city'.*  |             | bar.(y=agg('sum'))`,
	}
	want := make([][]byte, len(queries))
	for i, src := range queries {
		res, err := ref.Query(src)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		want[i] = encodePayload(t, EncodeResult(res))
	}
	const goroutines = 12
	const rounds = 6
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				qi := (g + r) % len(queries)
				b, err := json.Marshal(QueryRequest{Dataset: "sales", ZQL: queries[qi]})
				if err != nil {
					errs <- err.Error()
					return
				}
				resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(b))
				if err != nil {
					errs <- err.Error()
					return
				}
				var env queryEnvelope
				err = json.NewDecoder(resp.Body).Decode(&env)
				resp.Body.Close()
				if err != nil {
					errs <- err.Error()
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- resp.Status
					return
				}
				if !bytes.Equal(env.Result, want[qi]) {
					errs <- "query " + queries[qi] + " diverged under concurrency"
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

func TestDatasetsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, Config{Backend: "bitmap"})
	resp, err := http.Get(ts.URL + "/datasets")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Datasets []DatasetInfo `json:"datasets"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Datasets) != 1 {
		t.Fatalf("datasets = %+v", out.Datasets)
	}
	d := out.Datasets[0]
	if d.Name != "sales" || d.Backend != "bitmap" || d.Rows != 10000 || len(d.Columns) == 0 {
		t.Errorf("dataset info = %+v", d)
	}
	// Unsegmented back-ends report zero segments and no append support.
	if d.Segments != 0 || d.Appendable {
		t.Errorf("bitmap dataset info = %+v, want segments=0 appendable=false", d)
	}
}

// TestDatasetsEndpointColumnSegments pins the operator-facing segment count:
// a 10000-row column dataset partitions into ceil(10000/4096) = 3 segments.
func TestDatasetsEndpointColumnSegments(t *testing.T) {
	ts, _ := newTestServer(t, Config{Backend: "column"})
	resp, err := http.Get(ts.URL + "/datasets")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Datasets []DatasetInfo `json:"datasets"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	d := out.Datasets[0]
	if d.Backend != "column" || d.Rows != 10000 || d.Segments != 3 {
		t.Errorf("dataset info = %+v, want column/10000 rows/3 segments", d)
	}
	if d.Appendable {
		t.Error("in-memory column dataset must not report appendable")
	}
}

func TestErrorPaths(t *testing.T) {
	ts, _ := newTestServer(t, Config{})
	cases := []struct {
		name   string
		path   string
		body   any
		status int
		substr string
	}{
		{"unknown dataset", "/query", QueryRequest{Dataset: "nope", ZQL: risingQuery}, http.StatusNotFound, "no dataset"},
		{"missing dataset", "/query", QueryRequest{ZQL: risingQuery}, http.StatusBadRequest, "missing"},
		{"bad zql", "/query", QueryRequest{Dataset: "sales", ZQL: "garbage ~~~"}, http.StatusUnprocessableEntity, ""},
		{"bad opt", "/query", QueryRequest{Dataset: "sales", ZQL: risingQuery, Opt: "warp9"}, http.StatusBadRequest, "optimization level"},
		{"bad task", "/spec", SpecRequest{Dataset: "sales", Spec: SpecJSON{X: "year", Y: "revenue", Task: "teleport"}}, http.StatusBadRequest, "unknown task"},
		{"spec missing axes", "/spec", SpecRequest{Dataset: "sales", Spec: SpecJSON{Task: "similar"}}, http.StatusBadRequest, ""},
		{"bad recommend column", "/recommend", RecommendRequest{Dataset: "sales", X: "no_such", Y: "revenue", Z: "product"}, http.StatusUnprocessableEntity, "no column"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, raw := post(t, ts.URL+tc.path, tc.body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status = %d, want %d (%s)", resp.StatusCode, tc.status, raw)
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(raw, &e); err != nil || e.Error == "" {
				t.Fatalf("error envelope missing: %s", raw)
			}
			if tc.substr != "" && !strings.Contains(e.Error, tc.substr) {
				t.Errorf("error %q missing %q", e.Error, tc.substr)
			}
		})
	}
	// Unknown-field typos in the body fail loudly.
	resp, raw := post(t, ts.URL+"/query", map[string]any{"dataset": "sales", "zqll": "typo"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: status = %d (%s)", resp.StatusCode, raw)
	}
	// Method mismatches are rejected by the mux.
	getResp, err := http.Get(ts.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /query status = %d", getResp.StatusCode)
	}
}

func TestHealthz(t *testing.T) {
	ts, _ := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status = %d", resp.StatusCode)
	}
}

func TestRegistryRejectsDuplicatesAndUnknownBackends(t *testing.T) {
	reg := NewRegistry()
	if _, err := reg.AddTable(testTable(), Config{}); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.AddTable(testTable(), Config{}); err == nil {
		t.Error("duplicate registration should error")
	}
	if _, err := reg.AddTable(workload.Sales(workload.SalesConfig{Rows: 100, Products: 2, Years: 2, Cities: 2, Seed: 1}), Config{Backend: "quantum"}); err == nil {
		t.Error("unknown backend should error")
	}
	if reg.Get("missing") != nil {
		t.Error("Get on unknown name should be nil")
	}
	if got := len(reg.List()); got != 1 {
		t.Errorf("List = %d datasets", got)
	}
}

func TestRegistryOptConfig(t *testing.T) {
	small := func(name string) *dataset.Table {
		tb := workload.Sales(workload.SalesConfig{Rows: 100, Products: 2, Years: 2, Cities: 2, Seed: 1})
		tb.Name = name
		return tb
	}
	reg := NewRegistry()
	// An explicit "noopt" must survive — NoOpt being the zero OptLevel made
	// this easy to swallow silently.
	d, err := reg.AddTable(small("a"), Config{Opt: "noopt"})
	if err != nil {
		t.Fatal(err)
	}
	if d.Opt() != zexec.NoOpt {
		t.Errorf("opt = %v, want NoOpt", d.Opt())
	}
	// Empty defaults to the strongest level.
	if d, err = reg.AddTable(small("b"), Config{}); err != nil {
		t.Fatal(err)
	}
	if d.Opt() != zexec.InterTask {
		t.Errorf("default opt = %v, want InterTask", d.Opt())
	}
	if _, err := reg.AddTable(small("c"), Config{Opt: "warp9"}); err == nil {
		t.Error("bad opt name should error")
	}
}

// TestProcessStatsFlowThroughServer pins the process-phase counters on both
// surfaces: the per-request stats of a query response and the accumulated
// per-dataset totals on /stats. The similarity query below runs a pruned
// top-k search at the dataset's default (Inter-Task) level, so the response
// must show tuples scored and distance calls made, and the totals must grow
// with every request served.
func TestProcessStatsFlowThroughServer(t *testing.T) {
	// One process worker keeps the abandoned count deterministic (with a
	// pool, how many calls abandon depends on how fast the bound tightens
	// across workers); pruning itself is orthogonal to parallelism.
	ts, reg := newTestServer(t, Config{ProcessParallelism: 1})
	req := QueryRequest{
		Dataset: "sales",
		ZQL: `
NAME | X      | Y         | Z                 | PROCESS
-f1  |        |           |                   |
f2   | 'year' | 'revenue' | v1 <- 'product'.* | v2 <- argmin(v1)[k=2] D(f1, f2)
*f3  | 'year' | 'revenue' | v2                |`,
		Inputs: map[string][]float64{"f1": {1, 2, 3, 4, 5, 6, 7, 8}},
	}
	env := postQuery(t, ts.URL+"/query", req)
	if env.Stats.TuplesEvaluated == 0 || env.Stats.DistCalls == 0 {
		t.Fatalf("response stats carry no process work: %+v", env.Stats)
	}
	if env.Stats.DistAbandoned == 0 {
		t.Errorf("top-k search at Inter-Task pruned nothing: %+v", env.Stats)
	}
	first := reg.Get("sales").Stats().Process
	if first.Tuples != env.Stats.TuplesEvaluated || first.DistCalls != env.Stats.DistCalls {
		t.Errorf("/stats totals %+v do not match the served request %+v", first, env.Stats)
	}
	postQuery(t, ts.URL+"/query", req)
	second := reg.Get("sales").Stats().Process
	if second.Tuples != 2*first.Tuples || second.DistCalls != 2*first.DistCalls {
		t.Errorf("totals after two requests = %+v, want double %+v", second, first)
	}
	// The O0 override must keep the oracle unpruned.
	req.Opt = "o0"
	oracle := postQuery(t, ts.URL+"/query", req)
	if oracle.Stats.DistAbandoned != 0 {
		t.Errorf("NoOpt run abandoned %d distance calls, want 0", oracle.Stats.DistAbandoned)
	}
}
