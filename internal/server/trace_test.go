package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/trace"
)

// traceEnvelope decodes a /query response that asked for explain output.
type traceEnvelope struct {
	Dataset string          `json:"dataset"`
	Result  json.RawMessage `json:"result"`
	Trace   *trace.Tree     `json:"trace"`
}

func postTraced(t *testing.T, url string, body any) traceEnvelope {
	t.Helper()
	resp, raw := post(t, url, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var env traceEnvelope
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatal(err)
	}
	return env
}

// collectNodes returns every node in the tree with the given span name.
func collectNodes(tree *trace.Tree, name string) []*trace.Node {
	var out []*trace.Node
	trace.Walk(tree.Root, func(n *trace.Node) {
		if n.Name == name {
			out = append(out, n)
		}
	})
	return out
}

// TestExplainAnalyze runs a process-bearing query on a sharded auto dataset
// and asserts the span tree carries what EXPLAIN ANALYZE promises: planner
// attrs (conjunct order, route), per-shard scan spans, and process kernel
// counts — alongside the normal result payload.
func TestExplainAnalyze(t *testing.T) {
	reg := NewRegistry()
	if _, err := reg.AddTable(testTable(), Config{Backend: "auto", Shards: 3, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(reg))
	defer ts.Close()

	const q = `
NAME | X      | Y         | Z                 | CONSTRAINTS | PROCESS
f1   | 'year' | 'revenue' | v1 <- 'product'.* | city='C1'   | v2 <- argmax(v1)[k=2] T(f1)
*f2  | 'year' | 'revenue' | v2                |             |`
	env := postTraced(t, ts.URL+"/query", QueryRequest{Dataset: "sales", ZQL: q, Explain: "analyze"})
	if env.Trace == nil {
		t.Fatal("explain=analyze returned no trace")
	}
	if len(env.Result) == 0 || string(env.Result) == "null" {
		t.Fatal("explain=analyze dropped the result payload")
	}
	tree := env.Trace
	if tree.Root == nil || tree.Root.Name != "request" {
		t.Fatalf("root = %+v, want a request span", tree.Root)
	}
	if tree.TraceID == "" || tree.RequestID == "" {
		t.Fatalf("missing identity: traceID=%q requestID=%q", tree.TraceID, tree.RequestID)
	}

	plans := collectNodes(tree, "plan")
	if len(plans) == 0 {
		t.Fatal("no plan spans")
	}
	sawRoute, sawConjuncts := false, false
	for _, p := range plans {
		if _, ok := p.Attrs["sql"].(string); !ok {
			t.Errorf("plan span without sql attr: %v", p.Attrs)
		}
		if r, ok := p.Attrs["route"].(string); ok && r != "" {
			sawRoute = true
		}
		if c, ok := p.Attrs["conjuncts"].(string); ok && strings.Contains(c, "city = 'C1'") {
			sawConjuncts = true
		}
	}
	if !sawRoute {
		t.Error("no plan span carries the auto-router's route decision")
	}
	if !sawConjuncts {
		t.Error("no plan span lists the conjunct evaluation order")
	}

	scans := collectNodes(tree, "scan")
	if len(scans) < 3 {
		t.Fatalf("got %d scan spans, want >= 3 (one per shard)", len(scans))
	}
	shardSeen := map[string]bool{}
	for _, s := range scans {
		if b, _ := s.Attrs["backend"].(string); b == "sharded" {
			if sh, ok := s.Attrs["shard"]; ok {
				shardSeen[jsonNum(sh)] = true
			}
		}
	}
	if len(shardSeen) < 3 {
		t.Errorf("per-shard scan spans cover %d shards, want 3 (%v)", len(shardSeen), shardSeen)
	}

	procs := collectNodes(tree, "process")
	if len(procs) == 0 {
		t.Fatal("no process span")
	}
	foundTuples := false
	for _, p := range procs {
		if n, ok := p.Attrs["tuples"]; ok && jsonNum(n) != "0" {
			foundTuples = true
		}
	}
	if !foundTuples {
		t.Error("process spans carry no nonzero tuple counts")
	}

	// Stage durations must roughly account for the request: the execute +
	// prepare + process phases happen inside the root's window.
	trace.Walk(tree.Root, func(n *trace.Node) {
		if end := n.StartUs + n.DurUs; end > tree.Root.DurUs+tree.Root.StartUs+1000 {
			t.Errorf("span %s ends at +%dµs, after the root's %dµs", n.Name, end, tree.Root.DurUs)
		}
	})
}

// jsonNum renders an attr that may arrive as int64 (in-process tree) or
// float64 (round-tripped through JSON).
func jsonNum(v any) string {
	b, _ := json.Marshal(v)
	return string(b)
}

// TestExplainPlanSkipsExecution asserts explain=plan returns planner spans
// but no scan work, with empty visualizations standing in for results.
func TestExplainPlanSkipsExecution(t *testing.T) {
	ts, reg := newTestServer(t, Config{Backend: "column"})
	env := postTraced(t, ts.URL+"/query", QueryRequest{Dataset: "sales", ZQL: risingQuery, Explain: "plan"})
	if env.Trace == nil {
		t.Fatal("explain=plan returned no trace")
	}
	if got := collectNodes(env.Trace, "plan"); len(got) == 0 {
		t.Fatal("no plan spans in plan-only trace")
	}
	if got := collectNodes(env.Trace, "scan"); len(got) != 0 {
		t.Fatalf("plan-only trace has %d scan spans, want 0", len(got))
	}
	if rows := reg.Get("sales").Stats().RowsScanned; rows != 0 {
		t.Errorf("plan-only query scanned %d rows", rows)
	}
}

// TestExplainValidation pins the 400 on a bad explain value.
func TestExplainValidation(t *testing.T) {
	ts, _ := newTestServer(t, Config{})
	resp, raw := post(t, ts.URL+"/query", QueryRequest{Dataset: "sales", ZQL: risingQuery, Explain: "verbose"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d (%s), want 400", resp.StatusCode, raw)
	}
}

// TestNoExplainNoTrace asserts the default response shape is unchanged: no
// trace key at all when explain wasn't requested.
func TestNoExplainNoTrace(t *testing.T) {
	ts, _ := newTestServer(t, Config{})
	_, raw := post(t, ts.URL+"/query", QueryRequest{Dataset: "sales", ZQL: risingQuery})
	if bytes.Contains(raw, []byte(`"trace"`)) {
		t.Fatalf("untraced response contains a trace key: %.200s", raw)
	}
}

// TestSlowQueryLog sets the threshold to zero so every query is "slow" and
// asserts the captured entry joins back to the request by ID and carries the
// canonical SQL and span tree.
func TestSlowQueryLog(t *testing.T) {
	reg := NewRegistry()
	if _, err := reg.AddTable(testTable(), Config{Backend: "auto", Seed: 7}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(reg, WithSlowQueryLog(0, 8)))
	defer ts.Close()

	req, err := http.NewRequest("POST", ts.URL+"/query",
		bytes.NewReader(encodePayload(t, QueryRequest{Dataset: "sales", ZQL: risingQuery})))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "slow-req-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d", resp.StatusCode)
	}

	r2, err := http.Get(ts.URL + "/debug/slowlog")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	var out struct {
		ThresholdMs int64       `json:"thresholdMs"`
		Entries     []SlowEntry `json:"entries"`
	}
	if err := json.NewDecoder(r2.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Entries) == 0 {
		t.Fatal("slow log is empty at threshold 0")
	}
	e := out.Entries[0]
	if e.RequestID != "slow-req-1" {
		t.Errorf("entry requestId = %q, want slow-req-1", e.RequestID)
	}
	if e.TraceID == "" || e.Path != "/query" || e.Status != http.StatusOK {
		t.Errorf("entry identity wrong: %+v", e)
	}
	if len(e.SQL) == 0 || !strings.Contains(e.SQL[0], "SELECT") {
		t.Errorf("entry sql = %v, want canonical SELECTs", e.SQL)
	}
	if e.Route == "" {
		t.Error("entry route empty on an auto dataset")
	}
	if e.Trace == nil || e.Trace.Root == nil {
		t.Error("entry has no span tree")
	}
}

// TestSlowLogRingBound asserts the ring keeps only the newest entries.
func TestSlowLogRingBound(t *testing.T) {
	l := newSlowLog(2)
	for i := 0; i < 5; i++ {
		l.add(SlowEntry{RequestID: string(rune('a' + i))})
	}
	got := l.snapshot()
	if len(got) != 2 || got[0].RequestID != "e" || got[1].RequestID != "d" {
		t.Fatalf("snapshot = %+v, want newest-first [e d]", got)
	}
}

// TestSlowLogDisabled asserts a negative threshold disables capture but keeps
// the endpoint and tracing alive.
func TestSlowLogDisabled(t *testing.T) {
	reg := NewRegistry()
	if _, err := reg.AddTable(testTable(), Config{Seed: 7}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(reg, WithSlowQueryLog(-1, 8)))
	defer ts.Close()

	env := postTraced(t, ts.URL+"/query", QueryRequest{Dataset: "sales", ZQL: risingQuery, Explain: "analyze"})
	if env.Trace == nil {
		t.Fatal("tracing must stay on when slowlog capture is disabled")
	}
	r, err := http.Get(ts.URL + "/debug/slowlog")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var out struct {
		Entries []SlowEntry `json:"entries"`
	}
	if err := json.NewDecoder(r.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Entries) != 0 {
		t.Fatalf("capture disabled but %d entries recorded", len(out.Entries))
	}
}

// TestAccessLogTraceFields asserts traced requests log the queue-wait /
// execution split plus the trace ID, and that the fields join against the
// response's X-Request-ID.
func TestAccessLogTraceFields(t *testing.T) {
	reg := NewRegistry()
	if _, err := reg.AddTable(testTable(), Config{Seed: 7}); err != nil {
		t.Fatal(err)
	}
	var buf syncBuffer
	ts := httptest.NewServer(New(reg, WithAccessLog(&buf)))
	defer ts.Close()

	postQuery(t, ts.URL+"/query", QueryRequest{Dataset: "sales", ZQL: risingQuery})

	var entry accessEntry
	dec := json.NewDecoder(strings.NewReader(buf.String()))
	found := false
	for dec.More() {
		if err := dec.Decode(&entry); err != nil {
			t.Fatal(err)
		}
		if entry.Path == "/query" {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no /query access-log line in %q", buf.String())
	}
	if entry.TraceID == "" {
		t.Error("traced request logged no traceId")
	}
	if entry.ExecMs <= 0 {
		t.Errorf("execMs = %v, want > 0", entry.ExecMs)
	}
	if entry.QueueWaitMs < 0 || entry.QueueWaitMs > entry.LatencyMs {
		t.Errorf("queueWaitMs = %v outside [0, %v]", entry.QueueWaitMs, entry.LatencyMs)
	}
	if entry.ExecMs+entry.QueueWaitMs > entry.LatencyMs+0.001 {
		t.Errorf("exec %v + queue %v exceeds total %v", entry.ExecMs, entry.QueueWaitMs, entry.LatencyMs)
	}
}

// TestTraceparentPropagation asserts an inbound W3C traceparent's trace ID is
// adopted, and a malformed one is ignored in favor of a fresh ID.
func TestTraceparentPropagation(t *testing.T) {
	ts, _ := newTestServer(t, Config{})

	send := func(header string) *trace.Tree {
		t.Helper()
		req, err := http.NewRequest("POST", ts.URL+"/query",
			bytes.NewReader(encodePayload(t, QueryRequest{Dataset: "sales", ZQL: risingQuery, Explain: "analyze"})))
		if err != nil {
			t.Fatal(err)
		}
		if header != "" {
			req.Header.Set("traceparent", header)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var env traceEnvelope
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			t.Fatal(err)
		}
		if env.Trace == nil {
			t.Fatal("no trace in explain response")
		}
		return env.Trace
	}

	const upstream = "4bf92f3577b34da6a3ce929d0e0e4736"
	if got := send("00-" + upstream + "-00f067aa0ba902b7-01"); got.TraceID != upstream {
		t.Errorf("traceID = %q, want upstream %q", got.TraceID, upstream)
	}
	if got := send("not-a-traceparent"); got.TraceID == upstream || len(got.TraceID) != 32 {
		t.Errorf("malformed traceparent: traceID = %q, want a fresh 32-hex ID", got.TraceID)
	}
}

// TestStageMetrics asserts the span trees feed zen_stage_duration_seconds and
// that zen_build_info is exported.
func TestStageMetrics(t *testing.T) {
	ts, _ := newTestServer(t, Config{})
	postQuery(t, ts.URL+"/query", QueryRequest{Dataset: "sales", ZQL: risingQuery})

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`zen_stage_duration_seconds_count{stage="request"} 1`,
		`zen_stage_duration_seconds_count{stage="prepare"}`,
		`zen_stage_duration_seconds_count{stage="scan"}`,
		`zen_stage_duration_seconds_count{stage="process"}`,
		`zen_stage_duration_seconds_count{stage="queue.wait"}`,
		`zen_build_info{`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if !strings.Contains(text, `go_version="`+goVersionLabel()+`"`) {
		t.Errorf("zen_build_info go_version label missing %q", goVersionLabel())
	}
}

func goVersionLabel() string { return GoVersion() }

// TestHealthzVersion asserts /healthz reports the same version string as the
// build-info metric.
func TestHealthzVersion(t *testing.T) {
	ts, _ := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	want := "ok " + Version() + "\n"
	if buf.String() != want {
		t.Errorf("/healthz = %q, want %q", buf.String(), want)
	}
}

// TestTracingDoesNotChangeResults runs the same query with and without
// explain=analyze and asserts the result payloads are byte-identical.
func TestTracingDoesNotChangeResults(t *testing.T) {
	ts, _ := newTestServer(t, Config{Backend: "auto"})
	plain := postQuery(t, ts.URL+"/query", QueryRequest{Dataset: "sales", ZQL: risingQuery})
	traced := postTraced(t, ts.URL+"/query", QueryRequest{Dataset: "sales", ZQL: risingQuery, Explain: "analyze"})
	if !bytes.Equal(plain.Result, traced.Result) {
		t.Errorf("tracing changed the result:\nplain:  %.200s\ntraced: %.200s", plain.Result, traced.Result)
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for the access-log writer.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
