package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"

	"repro/client"
	"repro/internal/zpack"
)

// newZpackServer serves the standard 10000-row sales fixture from a zpack
// file in a temp dir — the persistent, appendable serving path.
func newZpackServer(t *testing.T, cfg Config) (*httptest.Server, *Registry, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "sales.zpack")
	if err := zpack.Build(path, testTable()); err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	if cfg.Seed == 0 {
		cfg.Seed = 7
	}
	if _, err := reg.AddZpack("sales", path, cfg); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(reg))
	t.Cleanup(ts.Close)
	return ts, reg, path
}

// TestZpackBackendMatchesSession pins the full warm-restart serving path:
// responses over a zpack file must be byte-identical to an in-process
// session over the in-memory table the file was built from.
func TestZpackBackendMatchesSession(t *testing.T) {
	ts, reg, _ := newZpackServer(t, Config{})
	ref := referenceSession(t)

	env := postQuery(t, ts.URL+"/query", QueryRequest{Dataset: "sales", ZQL: risingQuery})
	want, err := ref.Query(risingQuery)
	if err != nil {
		t.Fatal(err)
	}
	wantBytes := encodePayload(t, EncodeResult(want))
	if !bytes.Equal(env.Result, wantBytes) {
		t.Errorf("zpack-backed result differs from session result:\nserver: %.200s\nlocal:  %.200s", env.Result, wantBytes)
	}
	d := reg.Get("sales")
	if d.Backend() != "column" || !d.Appendable() || d.Segments() != 3 {
		t.Errorf("dataset = backend %q appendable %v segments %d", d.Backend(), d.Appendable(), d.Segments())
	}
}

// salesRow builds one wire-format row for the 10-column sales schema
// (product, category, city, country, year, month, size, weight, profit,
// revenue).
func salesRow(product string, year int, revenue float64) []any {
	return []any{product, "cat_x", "city_1", "country_1", float64(year), float64(6), 1.5, 2.5, revenue / 2, revenue}
}

func appendRows(t *testing.T, url, name string, rows [][]any) (AppendResponse, *http.Response, []byte) {
	t.Helper()
	resp, raw := post(t, url+"/datasets/"+name+"/append", AppendRequest{Rows: rows})
	var out AppendResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatal(err)
		}
	}
	return out, resp, raw
}

func TestAppendEndpointExtendsAndInvalidates(t *testing.T) {
	ts, reg, path := newZpackServer(t, Config{})

	countQuery := `
NAME | X      | Y         | Z
*f1  | 'year' | 'revenue' | 'product'.'product_appended'`
	// Baseline: no rows for the yet-unseen product; result caches warm.
	before := postQuery(t, ts.URL+"/query", QueryRequest{Dataset: "sales", ZQL: countQuery})
	st := reg.Get("sales").Stats()
	if st.Cache.Entries == 0 {
		t.Fatal("expected warm cache entries before append")
	}
	if st.Cache.Evictions != 0 {
		t.Fatalf("evictions = %d before any append", st.Cache.Evictions)
	}
	preEntries := st.Cache.Entries

	rows := [][]any{
		salesRow("product_appended", 2015, 111.5),
		salesRow("product_appended", 2016, 222.5),
	}
	if cols := reg.Get("sales").Table().ColumnNames(); len(cols) != 10 {
		t.Fatalf("fixture schema changed: %v", cols)
	}
	out, resp, raw := appendRows(t, ts.URL, "sales", rows)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("append status %d: %s", resp.StatusCode, raw)
	}
	if out.Appended != 2 || out.Rows != 10002 || out.Segments != 3 {
		t.Errorf("append response = %+v, want 2 appended, 10002 rows, 3 segments", out)
	}

	// The swapped-in dataset serves the new rows...
	after := postQuery(t, ts.URL+"/query", QueryRequest{Dataset: "sales", ZQL: countQuery})
	if bytes.Equal(before.Result, after.Result) {
		t.Error("append did not change the query result (stale cache?)")
	}
	// ...and matches a fresh in-process session over the extended file.
	freshReader, err := zpack.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer freshReader.Close()
	sess, err := client.OpenZpack(path, client.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	want, err := sess.Query(countQuery)
	if err != nil {
		t.Fatal(err)
	}
	if wantBytes := encodePayload(t, EncodeResult(want)); !bytes.Equal(after.Result, wantBytes) {
		t.Errorf("post-append result differs from fresh session:\nserver: %.200s\nlocal:  %.200s", after.Result, wantBytes)
	}

	// Cache invalidation is visible on /stats: the pre-append entries were
	// evicted wholesale, and hit/miss counters carried over.
	st = reg.Get("sales").Stats()
	if st.Cache.Evictions < int64(preEntries) {
		t.Errorf("evictions = %d after replacement, want >= %d", st.Cache.Evictions, preEntries)
	}
	if st.HTTP.Queries != 2 {
		t.Errorf("http query counter = %d after swap, want 2 (carried)", st.HTTP.Queries)
	}
	if st.Rows != 10002 {
		t.Errorf("/stats rows = %d, want 10002", st.Rows)
	}
}

func TestAppendSealsSegmentsAndSurvivesRestart(t *testing.T) {
	ts, reg, path := newZpackServer(t, Config{})
	// 10000 committed rows: appending 2300 crosses the 3rd segment's 4096
	// boundary (10000+2300 = 12300 -> 4 segments, tail of 12 rows).
	batch := make([][]any, 2300)
	for i := range batch {
		batch[i] = salesRow("bulk", 2020, float64(i))
	}
	out, resp, raw := appendRows(t, ts.URL, "sales", batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("append status %d: %s", resp.StatusCode, raw)
	}
	if out.Rows != 12300 || out.Segments != 4 {
		t.Errorf("append response = %+v, want 12300 rows in 4 segments", out)
	}
	if got := reg.Get("sales").Segments(); got != 4 {
		t.Errorf("registry segments = %d, want 4", got)
	}

	// Warm restart: a brand-new registry over the same file sees everything
	// without any CSV in sight, and zone maps still prune for a selective
	// predicate (the counting reader proves segments loaded < total).
	reg2 := NewRegistry()
	d2, err := reg2.AddZpack("sales", path, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if d2.Table().NumRows() != 12300 || d2.Segments() != 4 {
		t.Fatalf("restarted dataset = %d rows, %d segments", d2.Table().NumRows(), d2.Segments())
	}
	res, err := d2.Session().Query(`
NAME | X      | Y         | Z
*f1  | 'year' | 'revenue' | 'product'.'bulk'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) == 0 || res.Outputs[0].Len() == 0 {
		t.Fatal("restarted server cannot see appended rows")
	}
}

// TestAppendPreservesInt64Precision pins the json.Number decode path: int64
// values above 2^53 must survive the append byte-exactly (a float64 round
// trip would silently round them).
func TestAppendPreservesInt64Precision(t *testing.T) {
	ts, _, path := newZpackServer(t, Config{})
	big := int64(1)<<53 + 1 // 9007199254740993, not representable as float64
	row := salesRow("p_big", 2015, 1)
	row[4] = json.Number("9007199254740993")
	_, resp, raw := appendRows(t, ts.URL, "sales", [][]any{row})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("append status %d: %s", resp.StatusCode, raw)
	}
	// Read the committed file back fully materialized — the served table is
	// lazy, and what matters is the durable value.
	r, err := zpack.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.LoadAll(); err != nil {
		t.Fatal(err)
	}
	tb := r.Table()
	got := tb.Column("year").Value(tb.NumRows() - 1).Int()
	if got != big {
		t.Errorf("stored year = %d, want %d (precision lost)", got, big)
	}
}

func TestAppendErrorPaths(t *testing.T) {
	ts, _, _ := newZpackServer(t, Config{})
	t.Run("unknown dataset", func(t *testing.T) {
		_, resp, _ := appendRows(t, ts.URL, "nope", [][]any{{"a"}})
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("status = %d", resp.StatusCode)
		}
	})
	t.Run("wrong arity", func(t *testing.T) {
		_, resp, raw := appendRows(t, ts.URL, "sales", [][]any{{"only-one-cell"}})
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("status = %d: %s", resp.StatusCode, raw)
		}
	})
	t.Run("kind mismatch", func(t *testing.T) {
		bad := salesRow("p", 2015, 1)
		bad[0] = float64(3) // product is a string column
		_, resp, raw := appendRows(t, ts.URL, "sales", [][]any{bad})
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("status = %d: %s", resp.StatusCode, raw)
		}
	})
	t.Run("fractional int", func(t *testing.T) {
		bad := salesRow("p", 2015, 1)
		bad[4] = 2015.5 // year is an int column
		_, resp, raw := appendRows(t, ts.URL, "sales", [][]any{bad})
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("status = %d: %s", resp.StatusCode, raw)
		}
	})
	t.Run("not appendable", func(t *testing.T) {
		reg := NewRegistry()
		if _, err := reg.AddTable(testTable(), Config{}); err != nil {
			t.Fatal(err)
		}
		ts2 := httptest.NewServer(New(reg))
		defer ts2.Close()
		_, resp, raw := appendRows(t, ts2.URL, "sales", [][]any{salesRow("p", 2015, 1)})
		if resp.StatusCode != http.StatusConflict {
			t.Errorf("status = %d: %s", resp.StatusCode, raw)
		}
	})
}

// TestAppendUnderConcurrentQueries races appends against queries: every
// response must be internally consistent (either the old or the new
// snapshot, never a torn mix), and nothing may error.
func TestAppendUnderConcurrentQueries(t *testing.T) {
	ts, _, _ := newZpackServer(t, Config{})
	query := `
NAME | X      | Y         | Z
*f1  | 'year' | 'revenue' | v1 <- 'product'.*`
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				b, _ := json.Marshal(QueryRequest{Dataset: "sales", ZQL: query})
				resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(b))
				if err != nil {
					errs <- err.Error()
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Sprintf("query status %d", resp.StatusCode)
					return
				}
			}
		}()
	}
	for i := 0; i < 8; i++ {
		rows := [][]any{salesRow(fmt.Sprintf("product_live_%d", i), 2015+i, float64(i))}
		_, resp, raw := appendRows(t, ts.URL, "sales", rows)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("append %d status %d: %s", i, resp.StatusCode, raw)
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	// Final state: all appended products visible.
	out, resp, _ := appendRows(t, ts.URL, "sales", nil)
	if resp.StatusCode != http.StatusOK || out.Rows != 10008 {
		t.Fatalf("final rows = %d (status %d), want 10008", out.Rows, resp.StatusCode)
	}
}
