package server

import (
	"runtime"
	"runtime/debug"
	"sync"
)

// Version returns the server's build version string, resolved once from the
// binary's embedded build info: the module version when built from a tagged
// module, else the VCS revision (short), else "dev". The same string appears
// in /healthz, the zserved startup log line, and the zen_build_info metric,
// so every surface agrees about what is running.
func Version() string {
	versionOnce.Do(func() {
		versionStr = resolveVersion()
	})
	return versionStr
}

var (
	versionOnce sync.Once
	versionStr  string
)

func resolveVersion() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "dev"
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	var rev string
	dirty := false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev == "" {
		return "dev"
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if dirty {
		rev += "-dirty"
	}
	return rev
}

// GoVersion returns the running toolchain version (the go_version label of
// zen_build_info).
func GoVersion() string { return runtime.Version() }
