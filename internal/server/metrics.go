package server

import (
	"strconv"

	"repro/internal/obsv"
	"repro/internal/trace"
)

// metrics is the server's Prometheus-format instrumentation (GET /metrics),
// built on the dependency-free internal/obsv library. Two kinds of series
// coexist:
//
//   - request-path instruments (the http vec, the latency histogram) updated
//     inline as requests are served;
//   - scrape-time collectors that read the per-dataset counters the serving
//     stack already keeps (store counters, cache stats, coalescer stats, skip
//     provenance), so /metrics and /stats can never disagree.
//
// Every series carries the zen_ prefix; per-dataset series carry a dataset
// label, so one scrape covers the whole registry.
type metrics struct {
	obsv *obsv.Registry

	// requests counts finished HTTP requests by endpoint and status code.
	requests *obsv.CounterVec
	// latency observes query execution seconds by endpoint and effective
	// optimization level.
	latency *obsv.HistogramVec
	// stages observes per-stage seconds, fed from the same span trees that
	// back EXPLAIN ANALYZE and the slow-query log — so a histogram spike and
	// a slow-log entry always tell the same story. Span names are a small
	// fixed set, keeping label cardinality bounded.
	stages *obsv.HistogramVec
}

// newMetrics builds the registry's metric families over reg. reg's dataset
// list is consulted at scrape time, so datasets registered (or swapped by an
// append) after startup are covered automatically.
func newMetrics(reg *Registry) *metrics {
	o := obsv.NewRegistry()
	m := &metrics{
		obsv: o,
		requests: o.NewCounterVec("zen_http_requests_total",
			"HTTP requests finished, by endpoint and status code.",
			[]string{"endpoint", "code"}),
		latency: o.NewHistogramVec("zen_query_duration_seconds",
			"ZQL execution latency by endpoint and optimization level.",
			[]string{"endpoint", "opt"}, nil),
		stages: o.NewHistogramVec("zen_stage_duration_seconds",
			"Per-stage request time from span trees (queue.wait, prepare, scan, process, ...).",
			[]string{"stage"}, nil),
	}
	o.NewCollector("zen_build_info",
		"Build metadata; the value is always 1.", "gauge",
		func(emit func(obsv.Sample)) {
			emit(obsv.Sample{Labels: []obsv.Label{
				{Key: "version", Value: Version()},
				{Key: "go_version", Value: GoVersion()},
			}, Value: 1})
		})
	o.NewGaugeFunc("zen_ready",
		"1 when the registry passes readiness (/readyz), else 0.",
		func() float64 {
			if reg.Ready() {
				return 1
			}
			return 0
		})
	perDataset := func(name, help, typ string, fn func(d *Dataset, s DatasetStats, emit func(v float64, labels ...obsv.Label))) {
		o.NewCollector(name, help, typ, func(emit func(obsv.Sample)) {
			for _, d := range reg.List() {
				base := obsv.Label{Key: "dataset", Value: d.Name()}
				fn(d, d.Stats(), func(v float64, labels ...obsv.Label) {
					emit(obsv.Sample{Labels: append([]obsv.Label{base}, labels...), Value: v})
				})
			}
		})
	}
	perDataset("zen_rows_scanned_total",
		"Rows the store scanned (cache hits scan nothing).", "counter",
		func(_ *Dataset, s DatasetStats, emit func(float64, ...obsv.Label)) {
			emit(float64(s.RowsScanned))
		})
	perDataset("zen_segments_scanned_total",
		"Zone-map segments the column store visited.", "counter",
		func(_ *Dataset, s DatasetStats, emit func(float64, ...obsv.Label)) {
			emit(float64(s.SegmentsScanned))
		})
	perDataset("zen_segments_skipped_total",
		"Zone-map segments proved empty and never scanned.", "counter",
		func(_ *Dataset, s DatasetStats, emit func(float64, ...obsv.Label)) {
			emit(float64(s.SegmentsSkipped))
		})
	perDataset("zen_segments_loaded_total",
		"Distinct segments ever materialized (zpack: read from disk).", "counter",
		func(_ *Dataset, s DatasetStats, emit func(float64, ...obsv.Label)) {
			emit(float64(s.SegmentLoads))
		})
	perDataset("zen_segment_skip_provenance_total",
		"Segment skips attributed to the (column, metadata kind) that proved them empty.", "counter",
		func(_ *Dataset, s DatasetStats, emit func(float64, ...obsv.Label)) {
			for _, e := range s.SkipProvenance {
				emit(float64(e.Count),
					obsv.Label{Key: "column", Value: e.Column},
					obsv.Label{Key: "via", Value: e.Via})
			}
		})
	perDataset("zen_cache_hits_total",
		"Result-cache hits.", "counter",
		func(_ *Dataset, s DatasetStats, emit func(float64, ...obsv.Label)) {
			emit(float64(s.Cache.Hits))
		})
	perDataset("zen_cache_misses_total",
		"Result-cache misses.", "counter",
		func(_ *Dataset, s DatasetStats, emit func(float64, ...obsv.Label)) {
			emit(float64(s.Cache.Misses))
		})
	perDataset("zen_cache_evictions_total",
		"Result-cache evictions, including wholesale invalidation on append.", "counter",
		func(_ *Dataset, s DatasetStats, emit func(float64, ...obsv.Label)) {
			emit(float64(s.Cache.Evictions))
		})
	perDataset("zen_cache_entries",
		"Result-cache entries currently held.", "gauge",
		func(_ *Dataset, s DatasetStats, emit func(float64, ...obsv.Label)) {
			emit(float64(s.Cache.Entries))
		})
	perDataset("zen_coalesce_submissions_total",
		"Engine submissions admitted through the coalescing queue.", "counter",
		func(_ *Dataset, s DatasetStats, emit func(float64, ...obsv.Label)) {
			emit(float64(s.Coalesce.Submissions))
		})
	perDataset("zen_coalesce_batches_total",
		"Engine batches that served the submissions.", "counter",
		func(_ *Dataset, s DatasetStats, emit func(float64, ...obsv.Label)) {
			emit(float64(s.Coalesce.Batches))
		})
	perDataset("zen_coalesce_coalesced_total",
		"Submissions that shared an engine batch with at least one other.", "counter",
		func(_ *Dataset, s DatasetStats, emit func(float64, ...obsv.Label)) {
			emit(float64(s.Coalesce.Coalesced))
		})
	perDataset("zen_queue_depth",
		"Submissions parked at the admission queue right now.", "gauge",
		func(_ *Dataset, s DatasetStats, emit func(float64, ...obsv.Label)) {
			emit(float64(s.Coalesce.QueueDepth))
		})
	perDataset("zen_requests_shed_total",
		"Submissions rejected with 429 because the admission queue was full.", "counter",
		func(_ *Dataset, s DatasetStats, emit func(float64, ...obsv.Label)) {
			emit(float64(s.Coalesce.Shed))
		})
	perDataset("zen_request_timeouts_total",
		"Executions cut short by their request context (504 or 499).", "counter",
		func(_ *Dataset, s DatasetStats, emit func(float64, ...obsv.Label)) {
			emit(float64(s.HTTP.Timeouts))
		})
	perDataset("zen_shard_pool_busy",
		"Shard scans in flight on the scatter pool (sharded datasets).", "gauge",
		func(_ *Dataset, s DatasetStats, emit func(float64, ...obsv.Label)) {
			if s.Pool != nil {
				emit(float64(s.Pool.Busy))
			}
		})
	perDataset("zen_shard_pool_capacity",
		"Scatter pool capacity (sharded datasets).", "gauge",
		func(_ *Dataset, s DatasetStats, emit func(float64, ...obsv.Label)) {
			if s.Pool != nil {
				emit(float64(s.Pool.Capacity))
			}
		})
	perDataset("zen_shard_rows_scanned_total",
		"Rows scanned per segment shard (sharded datasets).", "counter",
		func(_ *Dataset, s DatasetStats, emit func(float64, ...obsv.Label)) {
			for i, sh := range s.Shards {
				emit(float64(sh.RowsScanned), obsv.Label{Key: "shard", Value: strconv.Itoa(i)})
			}
		})
	perDataset("zen_plans_planned_total",
		"Multi-conjunct plans the greedy conjunct planner scored.", "counter",
		func(_ *Dataset, s DatasetStats, emit func(float64, ...obsv.Label)) {
			if s.Planner != nil {
				emit(float64(s.Planner.PlansPlanned))
			}
		})
	perDataset("zen_plans_reordered_total",
		"Planned plans whose conjunct evaluation order actually changed.", "counter",
		func(_ *Dataset, s DatasetStats, emit func(float64, ...obsv.Label)) {
			if s.Planner != nil {
				emit(float64(s.Planner.PlansReordered))
			}
		})
	perDataset("zen_plan_route_total",
		"Prepared plans per auto-backend routing decision.", "counter",
		func(_ *Dataset, s DatasetStats, emit func(float64, ...obsv.Label)) {
			if s.Planner == nil {
				return
			}
			for _, e := range s.Planner.Routes {
				emit(float64(e.Count), obsv.Label{Key: "route", Value: e.Route})
			}
		})
	perDataset("zen_compactions_total",
		"Successful background/manual compactions (zpack datasets).", "counter",
		func(_ *Dataset, s DatasetStats, emit func(float64, ...obsv.Label)) {
			if s.Compaction != nil {
				emit(float64(s.Compaction.Compactions))
			}
		})
	perDataset("zen_compaction_failures_total",
		"Compactions that failed; the old generation kept serving.", "counter",
		func(_ *Dataset, s DatasetStats, emit func(float64, ...obsv.Label)) {
			if s.Compaction != nil {
				emit(float64(s.Compaction.Failures))
			}
		})
	perDataset("zen_compaction_rows_rewritten_total",
		"Rows rewritten into re-clustered generations.", "counter",
		func(_ *Dataset, s DatasetStats, emit func(float64, ...obsv.Label)) {
			if s.Compaction != nil {
				emit(float64(s.Compaction.RowsRewritten))
			}
		})
	perDataset("zen_compaction_generation",
		"Compacted generation serving now (0 = file as loaded).", "gauge",
		func(_ *Dataset, s DatasetStats, emit func(float64, ...obsv.Label)) {
			if s.Compaction != nil {
				emit(float64(s.Compaction.Generation))
			}
		})
	perDataset("zen_compaction_unsorted_segments",
		"Segments out of primary-cluster-column order (what the compactor thresholds on).", "gauge",
		func(_ *Dataset, s DatasetStats, emit func(float64, ...obsv.Label)) {
			if s.Compaction != nil {
				emit(float64(s.Compaction.UnsortedSegments))
			}
		})
	perDataset("zen_compaction_last_duration_seconds",
		"Wall time of the most recent successful compaction.", "gauge",
		func(_ *Dataset, s DatasetStats, emit func(float64, ...obsv.Label)) {
			if s.Compaction != nil {
				emit(float64(s.Compaction.LastDurationMs) / 1e3)
			}
		})
	perDataset("zen_process_tuples_total",
		"Process-phase tuples scored.", "counter",
		func(_ *Dataset, s DatasetStats, emit func(float64, ...obsv.Label)) {
			emit(float64(s.Process.Tuples))
		})
	perDataset("zen_process_dist_abandoned_total",
		"Distance calls the pruning kernels abandoned early.", "counter",
		func(_ *Dataset, s DatasetStats, emit func(float64, ...obsv.Label)) {
			emit(float64(s.Process.DistAbandoned))
		})
	return m
}

// observeRequest records one finished HTTP request.
func (m *metrics) observeRequest(endpoint string, code int) {
	m.requests.With(endpoint, strconv.Itoa(code)).Inc()
}

// observeQuery records one ZQL execution's wall time.
func (m *metrics) observeQuery(endpoint, opt string, seconds float64) {
	m.latency.With(endpoint, opt).Observe(seconds)
}

// observeStages feeds the stage histogram from a finished request's span
// tree. Each span (including the root "request") contributes one observation
// under its name; names are a small fixed vocabulary, so cardinality stays
// bounded no matter what queries run.
func (m *metrics) observeStages(tree *trace.Tree) {
	if tree == nil || tree.Root == nil {
		return
	}
	trace.Walk(tree.Root, func(n *trace.Node) {
		m.stages.With(n.Name).Observe(float64(n.DurUs) / 1e6)
	})
}
