package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/client"
	"repro/internal/zpack"
)

// postCompact triggers POST /datasets/{name}/compact with the given body.
func postCompact(t *testing.T, url, name string, body any) (CompactResponse, *http.Response, []byte) {
	t.Helper()
	var buf io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		buf = bytes.NewReader(b)
	} else {
		buf = bytes.NewReader(nil)
	}
	resp, err := http.Post(url+"/datasets/"+name+"/compact", "application/json", buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var out CompactResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("bad compact response %s: %v", raw, err)
		}
	}
	return out, resp, raw
}

// disorderedRow is a row below the fixture's value range on every plausible
// cluster column (product sorts first, 1999 predates every fixture year,
// negative revenue), so appending a segment of them makes the file unsorted
// no matter which column the automatic pick lands on.
func disorderedRow(i int) []any {
	return salesRow(fmt.Sprintf("aaa_tail_%d", i%3), 1999, -float64(i+1))
}

func TestCompactEndpointReclusters(t *testing.T) {
	ts, reg, path := newZpackServer(t, Config{})
	// Dirty the file: 4500 appended rows cross a segment boundary, so at
	// least one sealed segment holds only out-of-range values.
	batch := make([][]any, 4500)
	for i := range batch {
		batch[i] = disorderedRow(i)
	}
	if _, resp, raw := appendRows(t, ts.URL, "sales", batch); resp.StatusCode != http.StatusOK {
		t.Fatalf("append status %d: %s", resp.StatusCode, raw)
	}
	if got := reg.Get("sales").ctr.unsortedSegs.Load(); got == 0 {
		t.Fatal("append left the unsorted-segments gauge at 0; the fixture no longer disorders the file")
	}

	query := `
NAME | X      | Y         | Z
*f1  | 'year' | 'revenue' | 'product'.'aaa_tail_0'`
	before := postQuery(t, ts.URL+"/query", QueryRequest{Dataset: "sales", ZQL: query})

	out, resp, raw := postCompact(t, ts.URL, "sales", CompactRequest{Cols: []string{"product", "year"}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compact status %d: %s", resp.StatusCode, raw)
	}
	if out.Rows != 14500 || out.Generation != 1 || out.UnsortedBefore == 0 {
		t.Errorf("compact response = %+v, want 14500 rows, generation 1, unsorted > 0", out)
	}
	if strings.Join(out.Cols, ",") != "product,year" {
		t.Errorf("compact cols = %v, want the pinned [product year]", out.Cols)
	}

	// Results must not move: same bytes as before the rewrite, and same
	// bytes as a cold session over the compacted file.
	after := postQuery(t, ts.URL+"/query", QueryRequest{Dataset: "sales", ZQL: query})
	if !bytes.Equal(before.Result, after.Result) {
		t.Errorf("compaction changed a query result:\nbefore: %.200s\nafter:  %.200s", before.Result, after.Result)
	}
	sess, err := client.OpenZpack(path, client.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	want, err := sess.Query(query)
	if err != nil {
		t.Fatal(err)
	}
	if wantBytes := encodePayload(t, EncodeResult(want)); !bytes.Equal(after.Result, wantBytes) {
		t.Errorf("post-compact result differs from fresh session:\nserver: %.200s\nlocal:  %.200s", after.Result, wantBytes)
	}

	// The lifecycle is visible on /stats...
	st := reg.Get("sales").Stats()
	if st.Compaction == nil {
		t.Fatal("no compaction block on /stats for a zpack dataset")
	}
	if st.Compaction.Generation != 1 || st.Compaction.Compactions != 1 || st.Compaction.Failures != 0 {
		t.Errorf("compaction stats = %+v", st.Compaction)
	}
	if st.Compaction.UnsortedSegments != 0 || st.Compaction.ClusterCol != "product" {
		t.Errorf("post-compact gauge = %d on %q, want 0 on product",
			st.Compaction.UnsortedSegments, st.Compaction.ClusterCol)
	}
	if st.Compaction.RowsRewritten != 14500 {
		t.Errorf("rowsRewritten = %d, want 14500", st.Compaction.RowsRewritten)
	}
	// ...and on /metrics.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		`zen_compactions_total{dataset="sales"} 1`,
		`zen_compaction_generation{dataset="sales"} 1`,
		`zen_compaction_unsorted_segments{dataset="sales"} 0`,
		`zen_compaction_rows_rewritten_total{dataset="sales"} 14500`,
	} {
		if !strings.Contains(string(mbody), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// The dataset stays live: appendable over the new generation, and a
	// second compaction (auto-picked columns this time) advances it again.
	if _, resp, raw := appendRows(t, ts.URL, "sales", [][]any{disorderedRow(0)}); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-compact append status %d: %s", resp.StatusCode, raw)
	}
	out2, resp, raw := postCompact(t, ts.URL, "sales", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second compact status %d: %s", resp.StatusCode, raw)
	}
	if out2.Generation != 2 || out2.Rows != 14501 {
		t.Errorf("second compact = %+v, want generation 2 over 14501 rows", out2)
	}
	r, err := zpack.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Verify(); err != nil {
		t.Fatalf("generation 2 fails verification: %v", err)
	}
}

func TestCompactEndpointErrors(t *testing.T) {
	t.Run("unknown dataset", func(t *testing.T) {
		ts, _, _ := newZpackServer(t, Config{})
		_, resp, _ := postCompact(t, ts.URL, "nope", nil)
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("status = %d", resp.StatusCode)
		}
	})
	t.Run("unknown column", func(t *testing.T) {
		ts, _, _ := newZpackServer(t, Config{})
		_, resp, raw := postCompact(t, ts.URL, "sales", CompactRequest{Cols: []string{"nope"}})
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("status = %d: %s", resp.StatusCode, raw)
		}
	})
	t.Run("bad body", func(t *testing.T) {
		ts, _, _ := newZpackServer(t, Config{})
		resp, err := http.Post(ts.URL+"/datasets/sales/compact", "application/json",
			strings.NewReader(`{"cols": ["product"], "unknown": 1}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("status = %d", resp.StatusCode)
		}
	})
	t.Run("not compactable", func(t *testing.T) {
		ts, _ := newTestServer(t, Config{}) // in-memory table, no zpack backing
		_, resp, raw := postCompact(t, ts.URL, "sales", nil)
		if resp.StatusCode != http.StatusConflict {
			t.Errorf("status = %d: %s", resp.StatusCode, raw)
		}
	})
}

// TestCompactorSweepPolicy drives the background policy without the ticker:
// threshold gating, the pause-during-append quiesce, and convergence (a
// compacted dataset stops triggering).
func TestCompactorSweepPolicy(t *testing.T) {
	ts, reg, _ := newZpackServer(t, Config{})
	d := reg.Get("sales")

	// Far-above-threshold compactor never fires on this file.
	tall := NewCompactor(reg, CompactorConfig{Interval: time.Hour, Threshold: 10000, Quiesce: time.Nanosecond})
	if got := tall.Sweep(); len(got) != 0 {
		t.Fatalf("threshold 10000 compacted %v", got)
	}

	// Disorder the file past any threshold of 1.
	batch := make([][]any, 4500)
	for i := range batch {
		batch[i] = disorderedRow(i)
	}
	if _, resp, raw := appendRows(t, ts.URL, "sales", batch); resp.StatusCode != http.StatusOK {
		t.Fatalf("append status %d: %s", resp.StatusCode, raw)
	}
	if reg.Get("sales").ctr.unsortedSegs.Load() == 0 {
		t.Fatal("append left the gauge at 0")
	}

	// Quiesce: the append just happened, so a compactor with a long debounce
	// must hold off even though the threshold is met.
	patient := NewCompactor(reg, CompactorConfig{Interval: time.Hour, Threshold: 1, Quiesce: time.Hour})
	if got := patient.Sweep(); len(got) != 0 {
		t.Fatalf("quiescing compactor fired %v during an ingest burst", got)
	}
	if n := reg.Get("sales").ctr.compactions.Load(); n != 0 {
		t.Fatalf("compactions = %d while quiesced", n)
	}

	// With the debounce elapsed (1ns), the same state triggers a rewrite.
	eager := NewCompactor(reg, CompactorConfig{Interval: time.Hour, Threshold: 1, Quiesce: time.Nanosecond})
	if got := eager.Sweep(); len(got) != 1 || got[0] != "sales" {
		t.Fatalf("Sweep = %v, want [sales]", got)
	}
	nd := reg.Get("sales")
	if nd.ctr.generation.Load() != 1 || nd.ctr.unsortedSegs.Load() != 0 {
		t.Fatalf("after sweep: generation %d, gauge %d", nd.ctr.generation.Load(), nd.ctr.unsortedSegs.Load())
	}
	if nd == d {
		t.Fatal("sweep did not swap a new dataset snapshot in")
	}

	// Converged: nothing left to do.
	if got := eager.Sweep(); len(got) != 0 {
		t.Fatalf("second sweep recompacted %v (policy does not converge)", got)
	}
}

// TestIngestUnderCompactionLoad is the ingest-under-load tier: queries race
// appends AND full compaction cutovers. Every response must succeed — no
// torn reads, no stale-descriptor errors, no lost rows — and the final file
// must verify and serve exactly what a cold session serves.
func TestIngestUnderCompactionLoad(t *testing.T) {
	ts, reg, path := newZpackServer(t, Config{})
	query := `
NAME | X      | Y         | Z
*f1  | 'year' | 'revenue' | v1 <- 'product'.*`
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	stop := make(chan struct{})
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				b, _ := json.Marshal(QueryRequest{Dataset: "sales", ZQL: query})
				resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(b))
				if err != nil {
					errs <- err.Error()
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Sprintf("query status %d: %.200s", resp.StatusCode, body)
					return
				}
			}
		}()
	}

	const rounds, perRound = 5, 600
	for i := 0; i < rounds; i++ {
		batch := make([][]any, perRound)
		for j := range batch {
			batch[j] = salesRow(fmt.Sprintf("live_%d", i), 2016+i, float64(j))
		}
		if _, resp, raw := appendRows(t, ts.URL, "sales", batch); resp.StatusCode != http.StatusOK {
			t.Errorf("append %d status %d: %s", i, resp.StatusCode, raw)
		}
		out, resp, raw := postCompact(t, ts.URL, "sales", CompactRequest{Cols: []string{"product", "year"}})
		if resp.StatusCode != http.StatusOK {
			t.Errorf("compact %d status %d: %s", i, resp.StatusCode, raw)
		} else if out.Rows != 10000+(i+1)*perRound {
			t.Errorf("compact %d rewrote %d rows, want %d", i, out.Rows, 10000+(i+1)*perRound)
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}

	st := reg.Get("sales").Stats()
	if st.Rows != 10000+rounds*perRound {
		t.Fatalf("final rows = %d, want %d", st.Rows, 10000+rounds*perRound)
	}
	if st.Compaction == nil || st.Compaction.Compactions != rounds || st.Compaction.Failures != 0 {
		t.Fatalf("compaction stats = %+v, want %d clean compactions", st.Compaction, rounds)
	}
	if st.Coalesce.Shed != 0 {
		t.Errorf("shed = %d under default queue bounds", st.Coalesce.Shed)
	}

	// The durable file is complete, verified, and serves the same bytes the
	// live server does.
	r, err := zpack.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Verify(); err != nil {
		t.Fatalf("final generation fails verification: %v", err)
	}
	if r.Rows() != 10000+rounds*perRound {
		t.Fatalf("durable rows = %d", r.Rows())
	}
	live := postQuery(t, ts.URL+"/query", QueryRequest{Dataset: "sales", ZQL: query})
	sess, err := client.OpenZpack(path, client.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	want, err := sess.Query(query)
	if err != nil {
		t.Fatal(err)
	}
	if wantBytes := encodePayload(t, EncodeResult(want)); !bytes.Equal(live.Result, wantBytes) {
		t.Errorf("live result differs from cold session over the final file:\nserver: %.200s\nlocal:  %.200s", live.Result, wantBytes)
	}
}
