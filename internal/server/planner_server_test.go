package server

import (
	"bytes"
	"net/http"
	"strings"
	"testing"
)

// plannerQuery carries a deliberately mis-ordered conjunction: the
// stringify-every-float LIKE is written first, the cheap categorical equality
// and the selective range last. The planner must still produce the same bytes
// as the written order, and the reorder must show up on the counters.
const plannerQuery = `
NAME | X      | Y         | Z                 | CONSTRAINTS
*f1  | 'year' | 'revenue' | v1 <- 'product'.* | revenue LIKE '%1%' AND country = 'US' AND year >= 2`

// TestAutoBackendThroughServer registers a dataset on the auto backend and
// pins the whole serving surface: results byte-identical to the row-store
// reference session, planner counters on /stats, and the three planner series
// on /metrics (including the per-route breakdown only the auto backend emits).
func TestAutoBackendThroughServer(t *testing.T) {
	// Unsharded: workload.Sales has fractional measures, and byte-identity
	// across shard merges holds only for exact (integer/dyadic) sums — see
	// exactSalesTable. The engine-level differential fuzzer covers the
	// sharded auto store on exact data.
	ts, reg := newTestServer(t, Config{Backend: "auto"})
	ref := referenceSession(t)

	if got := reg.Get("sales").Backend(); got != "auto" {
		t.Fatalf("backend = %q, want auto", got)
	}
	env := postQuery(t, ts.URL+"/query", QueryRequest{Dataset: "sales", ZQL: plannerQuery})
	want, err := ref.Query(plannerQuery)
	if err != nil {
		t.Fatal(err)
	}
	if wantB := encodePayload(t, EncodeResult(want)); !bytes.Equal(env.Result, wantB) {
		t.Errorf("auto-backend result differs:\nserver: %.200s\nlocal:  %.200s", env.Result, wantB)
	}
	// A second, no-WHERE shape exercises a different route bucket.
	postQuery(t, ts.URL+"/query", QueryRequest{Dataset: "sales", ZQL: pointQuery})

	st := reg.Get("sales").Stats()
	if st.Planner == nil {
		t.Fatal("/stats carries no planner block on the auto backend")
	}
	if st.Planner.PlansPlanned == 0 {
		t.Error("three-conjunct constraint planned no plans")
	}
	if st.Planner.PlansReordered == 0 {
		t.Error("LIKE-first conjunction was not reordered")
	}
	if len(st.Planner.Routes) == 0 {
		t.Fatal("auto backend reported no routing decisions")
	}
	var routed int64
	for _, e := range st.Planner.Routes {
		if e.Route == "" || e.Count <= 0 {
			t.Errorf("bad route entry %+v", e)
		}
		routed += e.Count
	}
	if routed < 2 {
		t.Errorf("routed %d plans, want at least the 2 distinct queries served", routed)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	scrape := buf.String()
	for _, series := range []string{
		`zen_plans_planned_total{dataset="sales"}`,
		`zen_plans_reordered_total{dataset="sales"}`,
		`zen_plan_route_total{dataset="sales",route="`,
	} {
		if !strings.Contains(scrape, series) {
			t.Errorf("/metrics scrape is missing %s", series)
		}
	}
}

// TestNoPlannerConfigPinsWrittenOrder pins the -no-planner A/B baseline: the
// store serves the same bytes, and the planner counters stay at zero because
// Prepare never scores the conjunction.
func TestNoPlannerConfigPinsWrittenOrder(t *testing.T) {
	ts, reg := newTestServer(t, Config{Backend: "column", NoPlanner: true})
	ref := referenceSession(t)

	env := postQuery(t, ts.URL+"/query", QueryRequest{Dataset: "sales", ZQL: plannerQuery})
	want, err := ref.Query(plannerQuery)
	if err != nil {
		t.Fatal(err)
	}
	if wantB := encodePayload(t, EncodeResult(want)); !bytes.Equal(env.Result, wantB) {
		t.Errorf("no-planner result differs:\nserver: %.200s\nlocal:  %.200s", env.Result, wantB)
	}
	st := reg.Get("sales").Stats()
	if st.Planner == nil {
		t.Fatal("/stats planner block should be present even with planning off")
	}
	if st.Planner.PlansPlanned != 0 || st.Planner.PlansReordered != 0 {
		t.Errorf("planner counters moved with NoPlanner set: %+v", st.Planner)
	}
}
