package server

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/minisql"
)

// ResultCache is a bounded LRU cache of engine results keyed by the canonical
// rendered SQL of a prepared plan (engine.Plan.SQL). The canonical renderer
// makes the key insensitive to the request that produced the query: two
// browser sessions asking for the same slice hit the same entry.
//
// Cached *engine.Result values are shared between requests and MUST be
// treated as read-only by every consumer; the zexec splitter and the JSON
// encoders only read them.
type ResultCache struct {
	mu        sync.Mutex
	cap       int
	rowBudget int64 // total result rows held across entries
	rows      int64
	ll        *list.List // front = most recently used
	items     map[string]*list.Element

	// ctr is a pointer so a successor cache (dataset append swap) can adopt
	// its predecessor's cell: late increments from requests still running on
	// the old view land in the same totals, keeping /stats exact.
	ctr *cacheCounters
}

// cacheCounters holds the cumulative effectiveness counters that survive
// dataset snapshot swaps.
type cacheCounters struct {
	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

type cacheEntry struct {
	key  string
	res  *engine.Result
	rows int64
}

// cacheRowsPerEntry scales the cache's total row budget: entry count alone is
// a poor memory bound because a raw (no GROUP BY) result can hold a table's
// worth of rows, so the cache also evicts by cumulative result rows —
// capacity entries of this average size.
const cacheRowsPerEntry = 1024

// NewResultCache creates a cache holding up to capacity results totalling at
// most capacity*cacheRowsPerEntry result rows. A capacity <= 0 disables
// caching: Get always misses and Put is a no-op.
func NewResultCache(capacity int) *ResultCache {
	return &ResultCache{
		cap:       capacity,
		rowBudget: int64(capacity) * cacheRowsPerEntry,
		ll:        list.New(),
		items:     make(map[string]*list.Element),
		ctr:       &cacheCounters{},
	}
}

// Get returns the cached result for key, marking it most recently used.
func (c *ResultCache) Get(key string) (*engine.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.ctr.hits.Add(1)
		return el.Value.(*cacheEntry).res, true
	}
	c.ctr.misses.Add(1)
	return nil, false
}

// Put stores a result under key, evicting least recently used entries while
// the cache exceeds its entry capacity or its total row budget. A single
// result bigger than the whole budget is not cached at all — pinning the
// entire budget for one query would evict everything else for no aggregate
// gain.
func (c *ResultCache) Put(key string, res *engine.Result) {
	if c.cap <= 0 {
		return
	}
	rows := int64(len(res.Rows))
	if rows > c.rowBudget {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*cacheEntry)
		c.rows += rows - e.rows
		e.res, e.rows = res, rows
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&cacheEntry{key: key, res: res, rows: rows})
		c.rows += rows
	}
	for c.ll.Len() > c.cap || c.rows > c.rowBudget {
		oldest := c.ll.Back()
		e := oldest.Value.(*cacheEntry)
		c.ll.Remove(oldest)
		delete(c.items, e.key)
		c.rows -= e.rows
		c.ctr.evictions.Add(1)
	}
}

// InheritStats adopts a predecessor cache's counter cell and counts every
// entry the predecessor still held as evicted — the dataset
// replacement/append path, where the old cache is dropped wholesale because
// its results describe a superseded snapshot. Sharing the cell (rather than
// copying values) keeps /stats exact and monotonic even while requests on
// the old view are still completing. Must be called before the new cache
// serves traffic.
func (c *ResultCache) InheritStats(prev *ResultCache) {
	prev.ctr.evictions.Add(int64(prev.Stats().Entries))
	c.ctr = prev.ctr
}

// CacheStats is a point-in-time snapshot of cache effectiveness. Evictions
// counts LRU/row-budget displacements plus wholesale invalidations when a
// dataset is replaced by an append.
type CacheStats struct {
	Entries   int   `json:"entries"`
	Capacity  int   `json:"capacity"`
	Rows      int64 `json:"rows"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// Stats snapshots the cache counters.
func (c *ResultCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:   c.ll.Len(),
		Capacity:  c.cap,
		Rows:      c.rows,
		Hits:      c.ctr.hits.Load(),
		Misses:    c.ctr.misses.Load(),
		Evictions: c.ctr.evictions.Load(),
	}
}

// cachingDB interposes the result cache between callers and an inner back-end:
// every plan of a batch is first looked up by its canonical SQL; only the
// misses reach the inner ExecuteBatch (and from there the coalescer and the
// store's shared scans). It implements engine.DB so the whole client / zexec /
// recommend stack runs over it unchanged.
//
// It deliberately does NOT implement engine.Parallel: the store's scan-worker
// bound is server configuration, not per-request state.
type cachingDB struct {
	inner engine.DB
	cache *ResultCache
}

func (d *cachingDB) Name() string                                   { return d.inner.Name() }
func (d *cachingDB) Table(name string) *dataset.Table               { return d.inner.Table(name) }
func (d *cachingDB) Counters() engine.Counters                      { return d.inner.Counters() }
func (d *cachingDB) Prepare(q *minisql.Query) (*engine.Plan, error) { return d.inner.Prepare(q) }

// Execute runs one query through the cache.
func (d *cachingDB) Execute(q *minisql.Query) (*engine.Result, error) {
	p, err := d.Prepare(q)
	if err != nil {
		return nil, err
	}
	results, err := d.ExecuteBatch(context.Background(), []*engine.Plan{p})
	if err != nil {
		return nil, err
	}
	return results[0], nil
}

// ExecuteSQL parses and runs SQL text through the cache.
func (d *cachingDB) ExecuteSQL(sql string) (*engine.Result, error) {
	q, err := minisql.Parse(sql)
	if err != nil {
		return nil, err
	}
	return d.Execute(q)
}

// ExecuteBatch serves cache hits immediately and forwards only the missing
// plans to the inner back-end as one (smaller) batch. Cache hits cost no
// admission: a fully-hit batch never consults ctx or the coalescer's queue.
func (d *cachingDB) ExecuteBatch(ctx context.Context, plans []*engine.Plan) ([]*engine.Result, error) {
	results := make([]*engine.Result, len(plans))
	var missIdx []int
	var missPlans []*engine.Plan
	for i, p := range plans {
		if r, ok := d.cache.Get(p.SQL()); ok {
			results[i] = r
			continue
		}
		missIdx = append(missIdx, i)
		missPlans = append(missPlans, p)
	}
	if len(missPlans) == 0 {
		return results, nil
	}
	fetched, err := d.inner.ExecuteBatch(ctx, missPlans)
	if err != nil {
		return nil, err
	}
	for k, i := range missIdx {
		results[i] = fetched[k]
		d.cache.Put(plans[i].SQL(), fetched[k])
	}
	return results, nil
}
