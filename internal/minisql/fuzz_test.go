package minisql

import "testing"

// FuzzParse asserts the SQL parser never panics and that accepted queries
// render back to SQL that re-parses to the same canonical text (a full
// round-trip invariant, stronger than mere acceptance).
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT year, SUM(sales) FROM sales WHERE product='chair' GROUP BY year ORDER BY year",
		"SELECT BIN(weight, 20), SUM(sales) AS s FROM r GROUP BY BIN(weight, 20) LIMIT 5",
		"SELECT a FROM r WHERE a IN ('x','y') AND b LIKE '02%' OR NOT (c BETWEEN 1 AND 5)",
		"SELECT COUNT(*) FROM r WHERE x != -3.5",
		"select a from r where p = 'O''Brien'",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		text := q.SQL()
		q2, err := Parse(text)
		if err != nil {
			t.Fatalf("canonical SQL does not reparse: %q -> %q: %v", src, text, err)
		}
		if q2.SQL() != text {
			t.Fatalf("SQL rendering not canonical: %q -> %q", text, q2.SQL())
		}
	})
}
