// Package minisql implements the SQL subset that the zenvisage ZQL compiler
// emits (Chapter 5 of the paper): single-table SELECT with aggregates,
// conjunctive/disjunctive WHERE predicates (=, !=, <, <=, >, >=, IN, LIKE,
// BETWEEN, NOT), GROUP BY (with binning), ORDER BY, and LIMIT.
//
// The package contains the lexer, parser, and AST; execution lives in
// internal/engine so that the row-scan and bitmap back-ends can share one
// query representation, exactly as the paper's PostgreSQL and RoaringDB
// back-ends share SQL text.
package minisql

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokString // 'single quoted'
	tokNumber
	tokSymbol // ( ) , = != <> < <= > >= * .
	tokKeyword
)

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"ORDER": true, "LIMIT": true, "AND": true, "OR": true, "NOT": true,
	"IN": true, "LIKE": true, "BETWEEN": true, "AS": true, "ASC": true,
	"DESC": true, "SUM": true, "AVG": true, "COUNT": true, "MIN": true,
	"MAX": true, "BIN": true,
}

type token struct {
	kind tokenKind
	text string // keywords upper-cased; strings unquoted
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case c >= '0' && c <= '9' || (c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9'):
			l.lexNumber()
		case isIdentStart(rune(c)):
			l.lexIdent()
		default:
			if err := l.lexSymbol(); err != nil {
				return nil, err
			}
		}
	}
	l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
	return l.toks, nil
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			// '' escapes a quote, SQL style.
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				sb.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: sb.String(), pos: start})
			return nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("minisql: unterminated string at offset %d", start)
}

func (l *lexer) lexNumber() {
	start := l.pos
	if l.src[l.pos] == '-' {
		l.pos++
	}
	for l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9' || l.src[l.pos] == '.') {
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	text := l.src[start:l.pos]
	upper := strings.ToUpper(text)
	if keywords[upper] {
		l.toks = append(l.toks, token{kind: tokKeyword, text: upper, pos: start})
	} else {
		l.toks = append(l.toks, token{kind: tokIdent, text: text, pos: start})
	}
}

func (l *lexer) lexSymbol() error {
	start := l.pos
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "!=", "<>", "<=", ">=":
		l.pos += 2
		text := two
		if text == "<>" {
			text = "!="
		}
		l.toks = append(l.toks, token{kind: tokSymbol, text: text, pos: start})
		return nil
	}
	switch c := l.src[l.pos]; c {
	case '(', ')', ',', '=', '<', '>', '*', '.':
		l.pos++
		l.toks = append(l.toks, token{kind: tokSymbol, text: string(c), pos: start})
		return nil
	default:
		return fmt.Errorf("minisql: unexpected character %q at offset %d", c, start)
	}
}
