package minisql

import (
	"fmt"
	"strconv"

	"repro/internal/dataset"
)

// Parse parses a single SELECT statement of the supported subset.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{src: src, toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errorf("trailing input starting with %q", p.peek().text)
	}
	return q, nil
}

// ParseExpr parses a bare predicate expression — the WHERE-clause grammar
// without the surrounding SELECT. Callers that assemble Query ASTs directly
// (e.g. the ZQL compiler) use it to lift raw constraint text into an Expr.
func ParseExpr(src string) (Expr, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{src: src, toks: toks}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errorf("trailing input starting with %q", p.peek().text)
	}
	return e, nil
}

type parser struct {
	src  string
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("minisql: at offset %d: %s", p.peek().pos, fmt.Sprintf(format, args...))
}

func (p *parser) acceptKeyword(kw string) bool {
	if t := p.peek(); t.kind == tokKeyword && t.text == kw {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errorf("expected %s, got %q", kw, p.peek().text)
	}
	return nil
}

func (p *parser) acceptSymbol(sym string) bool {
	if t := p.peek(); t.kind == tokSymbol && t.text == sym {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectSymbol(sym string) error {
	if !p.acceptSymbol(sym) {
		return p.errorf("expected %q, got %q", sym, p.peek().text)
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	if t := p.peek(); t.kind == tokIdent {
		p.i++
		return t.text, nil
	}
	return "", p.errorf("expected identifier, got %q", p.peek().text)
}

func (p *parser) parseQuery() (*Query, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	q := &Query{Limit: -1}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		q.Select = append(q.Select, item)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	from, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	q.From = from
	if p.acceptKeyword("WHERE") {
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		q.Where = e
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			gk, err := p.parseGroupKey()
			if err != nil {
				return nil, err
			}
			q.GroupBy = append(q.GroupBy, gk)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			oi := OrderItem{Col: col}
			if p.acceptKeyword("DESC") {
				oi.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			q.OrderBy = append(q.OrderBy, oi)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		t := p.peek()
		if t.kind != tokNumber {
			return nil, p.errorf("expected LIMIT count, got %q", t.text)
		}
		p.i++
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, p.errorf("bad LIMIT %q", t.text)
		}
		q.Limit = n
	}
	return q, nil
}

var aggKeywords = map[string]AggFunc{
	"SUM": AggSum, "AVG": AggAvg, "COUNT": AggCount, "MIN": AggMin, "MAX": AggMax,
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	var item SelectItem
	t := p.peek()
	if t.kind == tokKeyword {
		if agg, ok := aggKeywords[t.text]; ok {
			p.i++
			if err := p.expectSymbol("("); err != nil {
				return item, err
			}
			item.Agg = agg
			if agg == AggCount && p.acceptSymbol("*") {
				item.Col = "*"
			} else {
				inner, err := p.parseColOrBin()
				if err != nil {
					return item, err
				}
				item.Col, item.Bin = inner.Col, inner.Bin
			}
			if err := p.expectSymbol(")"); err != nil {
				return item, err
			}
			return p.finishAlias(item)
		}
		if t.text == "BIN" {
			gk, err := p.parseColOrBin()
			if err != nil {
				return item, err
			}
			item.Col, item.Bin = gk.Col, gk.Bin
			return p.finishAlias(item)
		}
	}
	col, err := p.expectIdent()
	if err != nil {
		return item, err
	}
	item.Col = col
	return p.finishAlias(item)
}

func (p *parser) finishAlias(item SelectItem) (SelectItem, error) {
	if p.acceptKeyword("AS") {
		alias, err := p.expectIdent()
		if err != nil {
			return item, err
		}
		item.Alias = alias
	}
	return item, nil
}

// parseColOrBin parses either `col` or `BIN(col, width)`.
func (p *parser) parseColOrBin() (GroupKey, error) {
	if p.acceptKeyword("BIN") {
		if err := p.expectSymbol("("); err != nil {
			return GroupKey{}, err
		}
		col, err := p.expectIdent()
		if err != nil {
			return GroupKey{}, err
		}
		if err := p.expectSymbol(","); err != nil {
			return GroupKey{}, err
		}
		t := p.peek()
		if t.kind != tokNumber {
			return GroupKey{}, p.errorf("expected bin width, got %q", t.text)
		}
		p.i++
		w, err := strconv.ParseFloat(t.text, 64)
		if err != nil || w <= 0 {
			return GroupKey{}, p.errorf("bad bin width %q", t.text)
		}
		if err := p.expectSymbol(")"); err != nil {
			return GroupKey{}, err
		}
		return GroupKey{Col: col, Bin: w}, nil
	}
	col, err := p.expectIdent()
	if err != nil {
		return GroupKey{}, err
	}
	return GroupKey{Col: col}, nil
}

func (p *parser) parseGroupKey() (GroupKey, error) { return p.parseColOrBin() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	args := []Expr{left}
	for p.acceptKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		args = append(args, right)
	}
	if len(args) == 1 {
		return left, nil
	}
	return &Or{Args: args}, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	args := []Expr{left}
	for p.acceptKeyword("AND") {
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		args = append(args, right)
	}
	if len(args) == 1 {
		return left, nil
	}
	return &And{Args: args}, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.acceptKeyword("NOT") {
		arg, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Not{Arg: arg}, nil
	}
	if p.acceptSymbol("(") {
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return p.parseComparison()
}

func (p *parser) parseLiteral() (dataset.Value, error) {
	t := p.peek()
	switch t.kind {
	case tokString:
		p.i++
		return dataset.SV(t.text), nil
	case tokNumber:
		p.i++
		return dataset.ParseValue(t.text), nil
	}
	return dataset.Value{}, p.errorf("expected literal, got %q", t.text)
}

func (p *parser) parseComparison() (Expr, error) {
	col, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if p.acceptKeyword("IN") {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var vals []dataset.Value
		for {
			v, err := p.parseLiteral()
			if err != nil {
				return nil, err
			}
			vals = append(vals, v)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return &In{Col: col, Vals: vals}, nil
	}
	if p.acceptKeyword("LIKE") {
		t := p.peek()
		if t.kind != tokString {
			return nil, p.errorf("expected LIKE pattern string, got %q", t.text)
		}
		p.i++
		return &Like{Col: col, Pattern: t.text}, nil
	}
	if p.acceptKeyword("BETWEEN") {
		lo, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		return &Between{Col: col, Lo: lo, Hi: hi}, nil
	}
	t := p.peek()
	if t.kind != tokSymbol {
		return nil, p.errorf("expected comparison operator, got %q", t.text)
	}
	var op CmpOp
	switch t.text {
	case "=":
		op = CmpEq
	case "!=":
		op = CmpNe
	case "<":
		op = CmpLt
	case "<=":
		op = CmpLe
	case ">":
		op = CmpGt
	case ">=":
		op = CmpGe
	default:
		return nil, p.errorf("expected comparison operator, got %q", t.text)
	}
	p.i++
	v, err := p.parseLiteral()
	if err != nil {
		return nil, err
	}
	return &Compare{Col: col, Op: op, Val: v}, nil
}
