package minisql

import (
	"fmt"
	"strings"

	"repro/internal/dataset"
)

// AggFunc identifies the aggregate applied to a select item.
type AggFunc int

// Aggregate functions supported in SELECT items.
const (
	AggNone AggFunc = iota
	AggSum
	AggAvg
	AggCount
	AggMin
	AggMax
)

// String returns the SQL spelling of the aggregate.
func (a AggFunc) String() string {
	switch a {
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	case AggCount:
		return "COUNT"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	}
	return ""
}

// ParseAgg maps a ZQL agg('name') string to an AggFunc.
func ParseAgg(name string) (AggFunc, error) {
	switch strings.ToUpper(name) {
	case "SUM":
		return AggSum, nil
	case "AVG", "MEAN":
		return AggAvg, nil
	case "COUNT":
		return AggCount, nil
	case "MIN":
		return AggMin, nil
	case "MAX":
		return AggMax, nil
	}
	return AggNone, fmt.Errorf("minisql: unknown aggregate %q", name)
}

// SelectItem is one output column: a bare column, an aggregate over a column,
// or a binned column (BIN(col, width) floors col to multiples of width).
type SelectItem struct {
	Agg   AggFunc
	Col   string
	Bin   float64 // >0 means BIN(Col, Bin)
	Alias string
}

// OutName returns the result-column name for the item.
func (s SelectItem) OutName() string {
	if s.Alias != "" {
		return s.Alias
	}
	return s.exprSQL()
}

func (s SelectItem) exprSQL() string {
	inner := s.Col
	if s.Bin > 0 {
		inner = fmt.Sprintf("BIN(%s, %g)", s.Col, s.Bin)
	}
	if s.Agg != AggNone {
		return fmt.Sprintf("%s(%s)", s.Agg, inner)
	}
	return inner
}

// SQL renders the item as SQL text.
func (s SelectItem) SQL() string {
	if s.Alias != "" {
		return s.exprSQL() + " AS " + s.Alias
	}
	return s.exprSQL()
}

// GroupKey is one GROUP BY expression.
type GroupKey struct {
	Col string
	Bin float64
}

// SQL renders the key as SQL text.
func (g GroupKey) SQL() string {
	if g.Bin > 0 {
		return fmt.Sprintf("BIN(%s, %g)", g.Col, g.Bin)
	}
	return g.Col
}

// OrderItem is one ORDER BY term, referring to an output column name.
type OrderItem struct {
	Col  string
	Desc bool
}

// SQL renders the order term.
func (o OrderItem) SQL() string {
	if o.Desc {
		return o.Col + " DESC"
	}
	return o.Col
}

// CmpOp is a scalar comparison operator.
type CmpOp int

// Comparison operators.
const (
	CmpEq CmpOp = iota
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

// String returns the SQL spelling.
func (o CmpOp) String() string {
	return [...]string{"=", "!=", "<", "<=", ">", ">="}[o]
}

// Expr is a boolean predicate over a row.
type Expr interface {
	// SQL renders the predicate as SQL text.
	SQL() string
	isExpr()
}

// And is an n-ary conjunction.
type And struct{ Args []Expr }

// Or is an n-ary disjunction.
type Or struct{ Args []Expr }

// Not negates its argument.
type Not struct{ Arg Expr }

// Compare is `Col op Val`.
type Compare struct {
	Col string
	Op  CmpOp
	Val dataset.Value
}

// In is `Col IN (v1, v2, ...)`.
type In struct {
	Col  string
	Vals []dataset.Value
}

// Like is `Col LIKE pattern` with % and _ wildcards.
type Like struct {
	Col     string
	Pattern string
}

// Between is `Col BETWEEN Lo AND Hi` (inclusive).
type Between struct {
	Col    string
	Lo, Hi dataset.Value
}

func (*And) isExpr()     {}
func (*Or) isExpr()      {}
func (*Not) isExpr()     {}
func (*Compare) isExpr() {}
func (*In) isExpr()      {}
func (*Like) isExpr()    {}
func (*Between) isExpr() {}

func quoteVal(v dataset.Value) string {
	if v.Kind == dataset.KindString {
		return "'" + strings.ReplaceAll(v.S, "'", "''") + "'"
	}
	return v.String()
}

// SQL renders the conjunction.
func (e *And) SQL() string { return joinExprs(e.Args, " AND ") }

// SQL renders the disjunction.
func (e *Or) SQL() string { return joinExprs(e.Args, " OR ") }

func joinExprs(args []Expr, sep string) string {
	parts := make([]string, len(args))
	for i, a := range args {
		s := a.SQL()
		switch a.(type) {
		case *And, *Or:
			s = "(" + s + ")"
		}
		parts[i] = s
	}
	return strings.Join(parts, sep)
}

// SQL renders the negation.
func (e *Not) SQL() string { return "NOT (" + e.Arg.SQL() + ")" }

// SQL renders the comparison.
func (e *Compare) SQL() string {
	return fmt.Sprintf("%s %s %s", e.Col, e.Op, quoteVal(e.Val))
}

// SQL renders the IN list.
func (e *In) SQL() string {
	parts := make([]string, len(e.Vals))
	for i, v := range e.Vals {
		parts[i] = quoteVal(v)
	}
	return fmt.Sprintf("%s IN (%s)", e.Col, strings.Join(parts, ", "))
}

// SQL renders the LIKE.
func (e *Like) SQL() string {
	return fmt.Sprintf("%s LIKE '%s'", e.Col, strings.ReplaceAll(e.Pattern, "'", "''"))
}

// SQL renders the BETWEEN.
func (e *Between) SQL() string {
	return fmt.Sprintf("%s BETWEEN %s AND %s", e.Col, quoteVal(e.Lo), quoteVal(e.Hi))
}

// Query is a parsed single-table SELECT.
type Query struct {
	Select  []SelectItem
	From    string
	Where   Expr // nil when absent
	GroupBy []GroupKey
	OrderBy []OrderItem
	Limit   int // -1 when absent
}

// SQL renders the query back to SQL text (canonical form).
func (q *Query) SQL() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	for i, s := range q.Select {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(s.SQL())
	}
	sb.WriteString(" FROM ")
	sb.WriteString(q.From)
	if q.Where != nil {
		sb.WriteString(" WHERE ")
		sb.WriteString(q.Where.SQL())
	}
	if len(q.GroupBy) > 0 {
		sb.WriteString(" GROUP BY ")
		for i, g := range q.GroupBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(g.SQL())
		}
	}
	if len(q.OrderBy) > 0 {
		sb.WriteString(" ORDER BY ")
		for i, o := range q.OrderBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(o.SQL())
		}
	}
	if q.Limit >= 0 {
		fmt.Fprintf(&sb, " LIMIT %d", q.Limit)
	}
	return sb.String()
}

// Columns returns every table column the query references, deduplicated, in
// first-reference order. Used by executors to validate against the schema.
func (q *Query) Columns() []string {
	seen := make(map[string]bool)
	var out []string
	add := func(c string) {
		if c != "" && !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	for _, s := range q.Select {
		add(s.Col)
	}
	for _, g := range q.GroupBy {
		add(g.Col)
	}
	walkExpr(q.Where, func(c string) { add(c) })
	return out
}

func walkExpr(e Expr, fn func(col string)) {
	switch x := e.(type) {
	case nil:
	case *And:
		for _, a := range x.Args {
			walkExpr(a, fn)
		}
	case *Or:
		for _, a := range x.Args {
			walkExpr(a, fn)
		}
	case *Not:
		walkExpr(x.Arg, fn)
	case *Compare:
		fn(x.Col)
	case *In:
		fn(x.Col)
	case *Like:
		fn(x.Col)
	case *Between:
		fn(x.Col)
	}
}
