package minisql

import (
	"strings"
	"testing"

	"repro/internal/dataset"
)

func mustParse(t *testing.T, src string) *Query {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return q
}

func TestParseBasicSelect(t *testing.T) {
	q := mustParse(t, "SELECT year, SUM(sales) FROM sales WHERE product='chair' GROUP BY year ORDER BY year")
	if len(q.Select) != 2 || q.Select[0].Col != "year" || q.Select[1].Agg != AggSum || q.Select[1].Col != "sales" {
		t.Errorf("select = %+v", q.Select)
	}
	if q.From != "sales" {
		t.Errorf("from = %q", q.From)
	}
	cmp, ok := q.Where.(*Compare)
	if !ok || cmp.Col != "product" || cmp.Op != CmpEq || cmp.Val.S != "chair" {
		t.Errorf("where = %#v", q.Where)
	}
	if len(q.GroupBy) != 1 || q.GroupBy[0].Col != "year" {
		t.Errorf("group by = %+v", q.GroupBy)
	}
	if len(q.OrderBy) != 1 || q.OrderBy[0].Col != "year" || q.OrderBy[0].Desc {
		t.Errorf("order by = %+v", q.OrderBy)
	}
	if q.Limit != -1 {
		t.Errorf("limit = %d", q.Limit)
	}
}

func TestParseMultiAggAndAlias(t *testing.T) {
	q := mustParse(t, "SELECT year, SUM(sales) AS s, AVG(profit) AS p, COUNT(*) FROM r GROUP BY year")
	if q.Select[1].Alias != "s" || q.Select[2].Agg != AggAvg || q.Select[3].Agg != AggCount || q.Select[3].Col != "*" {
		t.Errorf("select = %+v", q.Select)
	}
	if q.Select[1].OutName() != "s" {
		t.Errorf("OutName = %q", q.Select[1].OutName())
	}
	if q.Select[3].OutName() != "COUNT(*)" {
		t.Errorf("OutName = %q", q.Select[3].OutName())
	}
}

func TestParseBin(t *testing.T) {
	q := mustParse(t, "SELECT BIN(weight, 20), SUM(sales) FROM r GROUP BY BIN(weight, 20)")
	if q.Select[0].Bin != 20 || q.Select[0].Col != "weight" {
		t.Errorf("select bin = %+v", q.Select[0])
	}
	if q.GroupBy[0].Bin != 20 {
		t.Errorf("group bin = %+v", q.GroupBy[0])
	}
}

func TestParsePredicates(t *testing.T) {
	q := mustParse(t, "SELECT a FROM r WHERE a IN ('x','y') AND b LIKE '02%' AND c BETWEEN 1 AND 5 AND NOT (d > 3 OR e != 'z')")
	and, ok := q.Where.(*And)
	if !ok || len(and.Args) != 4 {
		t.Fatalf("where = %#v", q.Where)
	}
	in := and.Args[0].(*In)
	if in.Col != "a" || len(in.Vals) != 2 || in.Vals[1].S != "y" {
		t.Errorf("in = %+v", in)
	}
	like := and.Args[1].(*Like)
	if like.Pattern != "02%" {
		t.Errorf("like = %+v", like)
	}
	btw := and.Args[2].(*Between)
	if btw.Lo.I != 1 || btw.Hi.I != 5 {
		t.Errorf("between = %+v", btw)
	}
	not := and.Args[3].(*Not)
	or, ok := not.Arg.(*Or)
	if !ok || len(or.Args) != 2 {
		t.Errorf("not/or = %#v", not.Arg)
	}
}

func TestParseLimitAndDesc(t *testing.T) {
	q := mustParse(t, "SELECT a FROM r ORDER BY a DESC, b ASC LIMIT 10")
	if !q.OrderBy[0].Desc || q.OrderBy[1].Desc {
		t.Errorf("order = %+v", q.OrderBy)
	}
	if q.Limit != 10 {
		t.Errorf("limit = %d", q.Limit)
	}
}

func TestParseNumericLiterals(t *testing.T) {
	q := mustParse(t, "SELECT a FROM r WHERE x = -5 AND y = 2.75")
	and := q.Where.(*And)
	if v := and.Args[0].(*Compare).Val; v.Kind != dataset.KindInt || v.I != -5 {
		t.Errorf("neg literal = %#v", v)
	}
	if v := and.Args[1].(*Compare).Val; v.Kind != dataset.KindFloat || v.F != 2.75 {
		t.Errorf("float literal = %#v", v)
	}
}

func TestParseStringEscapes(t *testing.T) {
	q := mustParse(t, "SELECT a FROM r WHERE p = 'O''Brien'")
	if got := q.Where.(*Compare).Val.S; got != "O'Brien" {
		t.Errorf("escaped string = %q", got)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM r",
		"SELECT a",
		"SELECT a FROM",
		"SELECT a FROM r WHERE",
		"SELECT a FROM r WHERE a",
		"SELECT a FROM r WHERE a = ",
		"SELECT a FROM r LIMIT x",
		"SELECT a FROM r GROUP",
		"SELECT a FROM r trailing",
		"SELECT a FROM r WHERE a = 'unterminated",
		"SELECT BIN(a) FROM r",
		"SELECT a FROM r WHERE a LIKE 5",
		"SELECT a FROM r WHERE a IN ()",
		"SELECT a FROM r WHERE a ~ 3",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestSQLRoundTrip(t *testing.T) {
	srcs := []string{
		"SELECT year, SUM(sales) AS s FROM sales WHERE product = 'chair' AND location = 'US' GROUP BY year ORDER BY year",
		"SELECT a FROM r WHERE a IN ('x', 'y') OR b BETWEEN 1 AND 2",
		"SELECT BIN(weight, 20), SUM(sales) FROM r GROUP BY BIN(weight, 20) ORDER BY s DESC LIMIT 5",
		"SELECT a FROM r WHERE NOT (a = 1)",
		"SELECT COUNT(*) FROM r",
	}
	for _, src := range srcs {
		q1 := mustParse(t, src)
		text := q1.SQL()
		q2, err := Parse(text)
		if err != nil {
			t.Fatalf("reparse of %q (%q): %v", src, text, err)
		}
		if q2.SQL() != text {
			t.Errorf("SQL not canonical: %q -> %q", text, q2.SQL())
		}
	}
}

func TestQueryColumns(t *testing.T) {
	q := mustParse(t, "SELECT year, SUM(sales) FROM r WHERE product='x' AND location IN ('a') GROUP BY year, month")
	got := q.Columns()
	want := []string{"year", "sales", "month", "product", "location"}
	if len(got) != len(want) {
		t.Fatalf("columns = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("columns = %v, want %v", got, want)
		}
	}
}

func TestCaseInsensitiveKeywords(t *testing.T) {
	q := mustParse(t, "select year, sum(sales) from r where a='b' group by year order by year desc limit 3")
	if q.Select[1].Agg != AggSum || !q.OrderBy[0].Desc || q.Limit != 3 {
		t.Errorf("case-insensitive parse broken: %+v", q)
	}
}

func TestParseAggNames(t *testing.T) {
	for name, want := range map[string]AggFunc{"sum": AggSum, "AVG": AggAvg, "mean": AggAvg, "count": AggCount, "min": AggMin, "max": AggMax} {
		got, err := ParseAgg(name)
		if err != nil || got != want {
			t.Errorf("ParseAgg(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseAgg("median"); err == nil {
		t.Error("ParseAgg(median) should fail")
	}
}

func TestExprSQLQuoting(t *testing.T) {
	e := &Compare{Col: "p", Op: CmpEq, Val: dataset.SV("O'Brien")}
	if !strings.Contains(e.SQL(), "O''Brien") {
		t.Errorf("quote escaping broken: %s", e.SQL())
	}
}

func TestParseExpr(t *testing.T) {
	cases := []struct {
		src  string
		want string // canonical re-rendering
	}{
		{"country='US'", "country = 'US'"},
		{"a = 1 AND b != 2", "a = 1 AND b != 2"},
		{"a = 1 OR b = 2 AND c = 3", "a = 1 OR (b = 2 AND c = 3)"},
		{"product IN ('chair', 'desk')", "product IN ('chair', 'desk')"},
		{"year BETWEEN 2010 AND 2012", "year BETWEEN 2010 AND 2012"},
		{"NOT (p = 'yes')", "NOT (p = 'yes')"},
		{"zip LIKE '02%'", "zip LIKE '02%'"},
	}
	for _, c := range cases {
		e, err := ParseExpr(c.src)
		if err != nil {
			t.Fatalf("ParseExpr(%q): %v", c.src, err)
		}
		if got := e.SQL(); got != c.want {
			t.Errorf("ParseExpr(%q).SQL() = %q, want %q", c.src, got, c.want)
		}
	}
	for _, bad := range []string{"", "a =", "a = 1 extra", "SELECT x"} {
		if _, err := ParseExpr(bad); err == nil {
			t.Errorf("ParseExpr(%q) should fail", bad)
		}
	}
}
