package zql

import (
	"sort"
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *Query {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v\nquery:\n%s", err, src)
	}
	return q
}

func TestCorpusParses(t *testing.T) {
	keys := make([]string, 0, len(Corpus))
	for k := range Corpus {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := Parse(Corpus[k]); err != nil {
			t.Errorf("Table %s does not parse: %v", k, err)
		}
	}
}

func TestParseTable21Shape(t *testing.T) {
	q := mustParse(t, Corpus["2.1"])
	if len(q.Rows) != 1 {
		t.Fatalf("%d rows", len(q.Rows))
	}
	r := q.Rows[0]
	if !r.Name.Output || r.Name.Var != "f1" {
		t.Errorf("name = %+v", r.Name)
	}
	if r.X.Kind != AxisLiteral || r.X.Attr != "year" {
		t.Errorf("x = %+v", r.X)
	}
	if r.Y.Kind != AxisLiteral || r.Y.Attr != "sales" {
		t.Errorf("y = %+v", r.Y)
	}
	if len(r.Z) != 1 || r.Z[0].Kind != ZValues || r.Z[0].Var != "v1" || r.Z[0].Attr != "product" || !r.Z[0].ValSet.Star {
		t.Errorf("z = %+v", r.Z)
	}
	if r.Constraints != "location='US'" {
		t.Errorf("constraints = %q", r.Constraints)
	}
	if r.Viz.Kind != VizSingle || r.Viz.Defs[0].Type != "bar" || r.Viz.Defs[0].YAgg != "sum" {
		t.Errorf("viz = %+v", r.Viz)
	}
}

func TestParseUserInputRow(t *testing.T) {
	q := mustParse(t, Corpus["2.2"])
	if !q.Rows[0].Name.UserInput {
		t.Error("-f1 must flag user input")
	}
	p := q.Rows[1].Process
	if len(p) != 1 {
		t.Fatalf("process = %+v", p)
	}
	d := p[0]
	if d.Mech != MechArgmin || d.Filter != FilterK || d.K != 1 {
		t.Errorf("decl = %+v", d)
	}
	if len(d.OutVars) != 1 || d.OutVars[0] != "v2" || d.LoopVars[0] != "v1" {
		t.Errorf("vars = %+v", d)
	}
	if d.Expr.Kind != ObjD || d.Expr.F1 != "f1" || d.Expr.F2 != "f2" {
		t.Errorf("expr = %+v", d.Expr)
	}
}

func TestParseThresholdFilter(t *testing.T) {
	q := mustParse(t, Corpus["2.3"])
	d := q.Rows[0].Process[0]
	if d.Mech != MechArgany || d.Filter != FilterT || d.TOp != ">" || d.TVal != 0 {
		t.Errorf("decl = %+v", d)
	}
	if q.Rows[1].Process[0].TOp != "<" {
		t.Errorf("decl2 = %+v", q.Rows[1].Process[0])
	}
	// Row 3: range intersection and R.
	z := q.Rows[2].Z[0]
	if z.Kind != ZSetExpr || z.Var != "v4" || z.Set.Op == nil || *z.Set.Op != SetIntersect {
		t.Errorf("z = %+v", z)
	}
	r := q.Rows[2].Process[0]
	if r.Mech != MechR || r.RK != 10 || r.RName != "f3" || r.RVars[0] != "v4" {
		t.Errorf("R = %+v", r)
	}
}

func TestParseAxisSetDecl(t *testing.T) {
	q := mustParse(t, Corpus["3.1"])
	y := q.Rows[0].Y
	if y.Kind != AxisVarDecl || y.Var != "y1" {
		t.Fatalf("y = %+v", y)
	}
	if len(y.Set.Literals) != 2 || y.Set.Literals[0] != "profit" {
		t.Errorf("set = %+v", y.Set)
	}
}

func TestParseAxisComposition(t *testing.T) {
	q := mustParse(t, Corpus["3.2"])
	y := q.Rows[0].Y
	if y.Kind != AxisSum || len(y.Parts) != 2 || y.Parts[0].Attr != "profit" || y.Parts[1].Attr != "sales" {
		t.Errorf("sum axis = %+v", y)
	}
	q = mustParse(t, Corpus["3.3"])
	x := q.Rows[0].X
	if x.Kind != AxisCross || len(x.Parts) != 2 {
		t.Fatalf("cross axis = %+v", x)
	}
	if x.Parts[0].Attr != "product" || x.Parts[1].Var != "x1" || len(x.Parts[1].Set.Literals) != 3 {
		t.Errorf("cross parts = %+v", x.Parts)
	}
}

func TestParseZForms(t *testing.T) {
	q := mustParse(t, Corpus["3.4"])
	if z := q.Rows[0].Z[0]; z.Kind != ZFixed || z.Attr != "product" || z.Value != "chair" {
		t.Errorf("fixed z = %+v", z)
	}
	q = mustParse(t, Corpus["3.6"])
	z := q.Rows[0].Z[0]
	if z.Kind != ZPairs || z.AttrVar != "z1" || z.Var != "v1" {
		t.Fatalf("pairs z = %+v", z)
	}
	pair := z.Set.Pair
	if pair == nil || pair.Attr.Op == nil || *pair.Attr.Op != SetDiff || !pair.Val.Star {
		t.Errorf("pair = %+v", pair)
	}
	q = mustParse(t, Corpus["3.7"])
	z = q.Rows[0].Z[0]
	if z.Kind != ZPairs || z.Set.Op == nil || *z.Set.Op != SetUnion {
		t.Errorf("union pairs = %+v", z)
	}
	q = mustParse(t, Corpus["3.8"])
	if len(q.Rows[0].Z) != 2 {
		t.Fatalf("expected 2 z columns")
	}
	if z2 := q.Rows[0].Z[1]; z2.Attr != "location" || len(z2.ValSet.Literals) != 2 {
		t.Errorf("z2 = %+v", z2)
	}
}

func TestParseVizForms(t *testing.T) {
	q := mustParse(t, Corpus["3.10"])
	d := q.Rows[0].Viz.Defs[0]
	if d.Type != "bar" || d.XBin != 20 || d.YAgg != "sum" {
		t.Errorf("viz = %+v", d)
	}
	q = mustParse(t, Corpus["3.11"])
	vz := q.Rows[0].Viz
	if vz.Kind != VizVarDecl || vz.Var != "s1" || len(vz.Defs) != 3 || vz.Defs[2].XBin != 40 {
		t.Errorf("viz set = %+v", vz)
	}
	q = mustParse(t, Corpus["3.12"])
	vz = q.Rows[0].Viz
	if len(vz.Defs) != 2 || vz.Defs[0].Type != "bar" || vz.Defs[1].Type != "dotplot" {
		t.Errorf("type set = %+v", vz)
	}
	if vz.Defs[1].XBin != 20 {
		t.Error("summarization must apply to every type in the set")
	}
}

func TestParseDerivedNames(t *testing.T) {
	q := mustParse(t, Corpus["3.15"])
	r := q.Rows[1]
	if r.Name.Expr == nil || r.Name.Expr.Kind != NameOrder || r.Name.Expr.Left != "f1" {
		t.Errorf("order expr = %+v", r.Name.Expr)
	}
	if !r.Z[0].Order || r.Z[0].Var != "u1" {
		t.Errorf("order marker = %+v", r.Z[0])
	}
	q = mustParse(t, Corpus["3.16"])
	r = q.Rows[2]
	if r.Name.Expr == nil || r.Name.Expr.Kind != NamePlus || r.Name.Expr.Left != "f1" || r.Name.Expr.Right != "f2" {
		t.Errorf("plus expr = %+v", r.Name.Expr)
	}
	if r.Y.Kind != AxisVarDecl || r.Y.Set != nil {
		t.Errorf("derived y binding = %+v", r.Y)
	}
	if z := r.Z[0]; z.Kind != ZValues || z.Attr != "product" || !z.ValSet.Derived {
		t.Errorf("derived z binding = %+v", z)
	}
}

func TestParseNameExprVariants(t *testing.T) {
	cases := map[string]NameExprKind{
		"f2=f1-f0":    NameMinus,
		"f2=f1^f0":    NameIntersect,
		"f2=f1[3]":    NameIndex,
		"f2=f1[2:5]":  NameSlice,
		"f2=f1.range": NameRange,
		"f2=f1":       NameAlias,
	}
	for cell, want := range cases {
		src := "NAME | X\nf0 | 'a'\nf1 | 'a'\n" + cell + " | 'a'"
		q, err := Parse(src)
		if err != nil {
			t.Errorf("%s: %v", cell, err)
			continue
		}
		if got := q.Rows[2].Name.Expr.Kind; got != want {
			t.Errorf("%s: kind = %v, want %v", cell, got, want)
		}
	}
}

func TestParseNestedProcess(t *testing.T) {
	q := mustParse(t, Corpus["3.20"])
	d := q.Rows[1].Process[0]
	if len(d.Inner) != 1 || d.Inner[0].Fn != "min" || d.Inner[0].Vars[0] != "v2" {
		t.Errorf("inner = %+v", d.Inner)
	}
	q = mustParse(t, Corpus["3.25"])
	d = q.Rows[1].Process[0]
	if len(d.Inner) != 1 || d.Inner[0].Fn != "sum" || len(d.Inner[0].Vars) != 2 {
		t.Errorf("sum inner = %+v", d.Inner)
	}
	if len(d.OutVars) != 2 || d.OutVars[0] != "x3" {
		t.Errorf("outs = %+v", d.OutVars)
	}
}

func TestParseMultipleProcessDecls(t *testing.T) {
	q := mustParse(t, Corpus["3.21"])
	p := q.Rows[1].Process
	if len(p) != 2 || p[0].Mech != MechArgmax || p[1].Mech != MechArgmin {
		t.Errorf("process = %+v", p)
	}
}

func TestParseMultiVarProcess(t *testing.T) {
	q := mustParse(t, Corpus["3.24"])
	d := q.Rows[2].Process[0]
	if len(d.OutVars) != 3 || len(d.LoopVars) != 3 || d.LoopVars[1] != "v2" {
		t.Errorf("multi-var = %+v", d)
	}
	z := q.Rows[3].Z[0]
	if z.Kind != ZSetExpr || *z.Set.Op != SetUnion {
		t.Errorf("union range z = %+v", z)
	}
}

func TestParseInfK(t *testing.T) {
	q := mustParse(t, Corpus["3.15"])
	if d := q.Rows[0].Process[0]; d.K != -1 {
		t.Errorf("k=inf should parse to -1: %+v", d)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",                             // no rows
		"BOGUS | X\na | 'b'",           // unknown column
		"NAME | X\nf1 | 'a' | 'extra'", // too many cells
		"NAME | X\nf1 | v1 <-",         // truncated decl is a derived binding: actually valid; see below
		"NAME | X\nf1 | 'a\n",          // unterminated quote
		"NAME\nf1=f9",                  // undeclared derived ref
		"NAME | X\nf1 | 'a'\nf1 | 'b'", // duplicate name
		"NAME | PROCESS\nf1 | v2 <- argmin(v1)[q=3] T(f1)",     // bad filter
		"NAME | PROCESS\nf1 | v2, v3 <- argmin(v1)[k=1] T(f1)", // arity mismatch
		"NAME | PROCESS\nf1 | v2 <- R(0, v1, f1)",              // bad R count
		"NAME | PROCESS\nf1 | v2 <- argmin(v1)[k=1] D(f1)",     // D arity
		"NAME | VIZ\nf1 | {bar, dotplot}.(x=bin(20))",          // viz set without var
		"NAME | Z\nf1 | v1 <- product.*",                       // unquoted attr
	}
	for i, src := range bad {
		if i == 3 {
			continue // `v1 <-` with nothing is the derived-binding form; skip
		}
		if _, err := Parse(src); err == nil {
			t.Errorf("case %d should fail:\n%s", i, src)
		}
	}
}

func TestParseCommentsAndBlankLines(t *testing.T) {
	src := `
# leading comment
NAME | X
-- another comment

*f1 | 'year'
`
	q := mustParse(t, src)
	if len(q.Rows) != 1 {
		t.Errorf("%d rows", len(q.Rows))
	}
}

func TestSplitCellsRespectsNesting(t *testing.T) {
	cells := splitCells("a | ('x'.{'p'} | 'y'.'q') | c")
	if len(cells) != 3 || !strings.Contains(cells[1], "|") {
		t.Errorf("cells = %q", cells)
	}
	cells = splitCells("'a|b' | c")
	if len(cells) != 2 || cells[0] != "'a|b' " {
		t.Errorf("quoted pipe cells = %q", cells)
	}
}

func TestNumZAndOutputRows(t *testing.T) {
	q := mustParse(t, Corpus["3.8"])
	if q.NumZ() != 2 {
		t.Errorf("NumZ = %d", q.NumZ())
	}
	q = mustParse(t, Corpus["3.17"])
	if len(q.OutputRows()) != 2 {
		t.Errorf("outputs = %d", len(q.OutputRows()))
	}
}

func TestVizDefString(t *testing.T) {
	d := VizDef{Type: "bar", XBin: 20, YAgg: "sum"}
	if d.String() != "bar.(x=bin(20), y=agg('sum'))" {
		t.Errorf("String = %q", d.String())
	}
	if (VizDef{Type: "line"}).String() != "line" {
		t.Error("bare type String broken")
	}
}

func TestUserDefinedObjective(t *testing.T) {
	src := "NAME | Z | PROCESS\nf1 | v1 <- 'p'.* | v2 <- argmax(v1)[k=5] Spike(f1)"
	q := mustParse(t, src)
	d := q.Rows[0].Process[0]
	if d.Expr.Kind != ObjU || d.Expr.User != "Spike" || d.Expr.Args[0] != "f1" {
		t.Errorf("user objective = %+v", d.Expr)
	}
}
