package zql

import (
	"strings"
	"testing"
)

// FuzzParse asserts the ZQL parser never panics and that whatever it accepts
// has a well-formed AST. Run with `go test -fuzz=FuzzParse ./internal/zql`.
func FuzzParse(f *testing.F) {
	for _, src := range Corpus {
		f.Add(src)
	}
	f.Add("NAME | X\n*f1 | 'a'")
	f.Add("NAME | X | Y | Z | Z2 | CONSTRAINTS | VIZ | PROCESS\nf1|||||||")
	f.Add("X\n'a' + 'b' × 'c'")
	f.Add("NAME | PROCESS\nf1 | v1, v2 <- argmin(a, b)[k=inf] min(c) sum(d, e) D(f1, f2)")
	f.Add("NAME\nf1=f1[1:2]")
	f.Add("Z\n{'a'} \\ {'b'} & v1.range | *")
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		if len(q.Rows) == 0 {
			t.Fatal("accepted query with no rows")
		}
		for _, r := range q.Rows {
			for _, d := range r.Process {
				if d.Mech != MechR && len(d.OutVars) != len(d.LoopVars) {
					t.Fatalf("accepted arity mismatch: %+v", d)
				}
				if d.Mech == MechR && (d.RK <= 0 || d.RName == "") {
					t.Fatalf("accepted malformed R: %+v", d)
				}
			}
		}
	})
}

// FuzzLexCell asserts the cell lexer terminates and never panics.
func FuzzLexCell(f *testing.F) {
	f.Add("v1 <- 'product'.(* \\ {'a','b'})")
	f.Add("bar.{(x=bin(20), y=agg('sum'))}")
	f.Add("'unterminated")
	f.Add("-5.5.range ->")
	f.Add(strings.Repeat("(", 100))
	f.Fuzz(func(t *testing.T, cell string) {
		toks, err := lexCell(cell)
		if err != nil {
			return
		}
		if len(toks) == 0 || toks[len(toks)-1].kind != tEOF {
			t.Fatal("lexer must end with EOF")
		}
	})
}
