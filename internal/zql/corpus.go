package zql

// Corpus holds every ZQL query that appears in the paper, keyed by its table
// number, rendered in this package's ASCII syntax. Differences from the
// thesis typography: `<-` for the left arrow, `->` for the order marker, `_`
// for the bind-to-derived-component symbol, `|` for set union, `x1 in {...}`
// for Polaris × iteration terms, and concrete attribute sets in place of the
// abstract set names C and M. Table 3.9's regex is written as a SQL LIKE.
//
// The corpus doubles as the parser's acceptance suite and as the input for
// the executor's paper-query tests.
var Corpus = map[string]string{
	// Chapter 2 — motivating examples.
	"2.1": `
NAME | X      | Y       | Z                 | CONSTRAINTS   | VIZ                | PROCESS
*f1  | 'year' | 'sales' | v1 <- 'product'.* | location='US' | bar.(y=agg('sum')) |`,

	"2.2": `
NAME | X      | Y       | Z                 | PROCESS
-f1  |        |         |                   |
f2   | 'year' | 'sales' | v1 <- 'product'.* | v2 <- argmin(v1)[k=1] D(f1, f2)
*f3  | 'year' | 'sales' | v2                |`,

	"2.3": `
NAME | X      | Y        | Z                               | CONSTRAINTS   | PROCESS
f1   | 'year' | 'sales'  | v1 <- 'product'.*               | location='US' | v2 <- argany(v1)[t>0] T(f1)
f2   | 'year' | 'sales'  | v1                              | location='UK' | v3 <- argany(v1)[t<0] T(f2)
f3   | 'year' | 'sales'  | v4 <- (v2.range & v3.range)     |               | v5 <- R(10, v4, f3)
*f4  | 'year' | 'profit' | v5                              |               |`,

	// Chapter 3 — language reference examples.
	"3.1": `
NAME | X      | Y                          | CONSTRAINTS
*f1  | 'year' | y1 <- {'profit', 'sales'}  | product='stapler'`,

	"3.2": `
NAME | X         | Y                  | CONSTRAINTS
*f1  | 'product' | 'profit' + 'sales' | location='US'`,

	"3.3": `
NAME | X                                                | Y
*f1  | 'product' × (x1 in {'county','state','country'}) | 'sales'`,

	"3.4": `
NAME | X      | Y       | Z
*f1  | 'year' | 'sales' | 'product'.'chair'
*f2  | 'year' | 'sales' | 'product'.'desk'`,

	"3.5": `
NAME | X      | Y       | Z
*f1  | 'year' | 'sales' | v1 <- 'product'.*`,

	"3.6": `
NAME | X      | Y       | Z
*f1  | 'year' | 'sales' | z1.v1 <- (* \ {'year','sales'}).*`,

	"3.7": `
X      | Y       | Z
'year' | 'sales' | z1.v1 <- ('product'.{'chair','desk'} | 'location'.'US')`,

	"3.8": `
X      | Y       | Z                 | Z2
'year' | 'sales' | v1 <- 'product'.* | v2 <- 'location'.{'USA','Canada'}`,

	"3.9": `
NAME | X      | Y       | CONSTRAINTS
*f1  | 'time' | 'sales' | product='chair' AND zip LIKE '02___'`,

	"3.10": `
NAME | X        | Y       | VIZ
*f1  | 'weight' | 'sales' | bar.(x=bin(20), y=agg('sum'))`,

	"3.11": `
NAME | X        | Y       | VIZ
*f1  | 'weight' | 'sales' | s1 <- bar.{(x=bin(20), y=agg('sum')), (x=bin(30), y=agg('sum')), (x=bin(40), y=agg('sum'))}`,

	"3.12": `
NAME | X        | Y       | VIZ
*f1  | 'weight' | 'sales' | t1 <- {bar, dotplot}.(x=bin(20), y=agg('sum'))`,

	"3.13": `
NAME | X      | Y       | Z                              | PROCESS
*f1  | 'year' | 'sales' | 'product'.'stapler'            |
f2   | 'year' | 'sales' | v1 <- 'product'.(* \ {'stapler'}) | v2 <- argmin(v1)[k=10] D(f1, f2)
*f3  | 'year' | 'sales' | v2                             |`,

	"3.14": `
NAME | X                         | Y                        | Z                   | PROCESS
-f1  |                           |                          |                     |
f2   | x1 <- {'time','location'} | y1 <- {'sales','profit'} | 'product'.'stapler' | x2, y2 <- argmin(x1, y1)[k=10] D(f1, f2)
*f3  | x2                        | y2                       | 'product'.'stapler' |`,

	"3.15": `
NAME         | X      | Y       | Z                 | PROCESS
f1           | 'year' | 'sales' | v1 <- 'product'.* | u1 <- argmin(v1)[k=inf] T(f1)
*f2=f1.order |        |         | u1 ->             |`,

	"3.16": `
NAME     | X      | Y        | Z                                  | PROCESS
f1       | 'year' | 'sales'  | v1 <- 'product'.(* \ {'stapler'})  |
f2       | 'year' | 'sales'  | 'product'.'stapler'                |
f3=f1+f2 |        | y1 <- _  | v2 <- 'product'._                  |
f4       | 'year' | 'profit' | v2                                 | v3 <- argmax(v2)[k=10] D(f3, f4)
*f5      | 'year' | 'sales'  | v3                                 |`,

	"3.17": `
NAME | X      | Y        | Z                 | PROCESS
f1   | 'year' | 'sales'  | v1 <- 'product'.* |
f2   | 'year' | 'profit' | v1                | v2 <- argmax(v1)[k=10] D(f1, f2)
*f3  | 'year' | 'sales'  | v2                |
*f4  | 'year' | 'profit' | v2                |`,

	"3.18": `
NAME | X      | Y        | Z                 | CONSTRAINTS            | PROCESS
f1   | 'year' | 'sales'  | v1 <- 'product'.* |                        | v2 <- argmax(v1)[k=10] T(f1)
*f2  | 'year' | 'profit' |                   | product IN (v2.range)  |`,

	"3.19": `
NAME | X                          | Y                        | Z                 | PROCESS
f1   | x1 <- {'weight','size'}    | y1 <- {'sales','profit'} | 'product'.'chair' |
f2   | x1                         | y1                       | 'product'.'desk'  | x2, y2 <- argmax(x1, y1)[k=10] D(f1, f2)
*f3  | x2                         | y2                       | 'product'.'chair' |
*f4  | x2                         | y2                       | 'product'.'desk'  |`,

	"3.20": `
NAME | X      | Y       | Z                 | PROCESS
f1   | 'year' | 'sales' | v1 <- 'product'.* | v2 <- R(10, v1, f1)
f2   | 'year' | 'sales' | v2                | v3 <- argmax(v1)[k=10] min(v2) D(f1, f2)
*f3  | 'year' | 'sales' | v3                |`,

	"3.21": `
NAME | X      | Y       | Z                 | PROCESS
-f1  |        |         |                   |
f2   | 'year' | 'sales' | v1 <- 'product'.* | (v2 <- argmax(v1)[k=1] D(f1, f2)), (v3 <- argmin(v1)[k=1] D(f1, f2))
*f3  | 'year' | 'sales' | v2                |
*f4  | 'year' | 'sales' | v3                |`,

	"3.22": `
NAME | X      | Y        | Z                                 | VIZ                | PROCESS
f1   | 'year' | 'profit' | 'product'.'stapler'               | bar.(y=agg('sum')) |
f2   | 'year' | 'profit' | v1 <- 'product'.(* \ {'stapler'}) | bar.(y=agg('sum')) | v2 <- argmin(v1)[k=100] D(f1, f2)
f3   | 'year' | 'sales'  | v2                                | bar.(y=agg('sum')) | v3 <- R(10, v2, f3)
*f4  | 'year' | 'sales'  | v3                                | bar.(y=agg('sum')) |`,

	"3.23": `
NAME | X       | Y                        | Z                 | CONSTRAINTS | VIZ                | PROCESS
f1   | 'month' | 'profit'                 | v1 <- 'product'.* | year=2015   | bar.(y=agg('sum')) |
f2   | 'month' | 'sales'                  | v1                | year=2015   | bar.(y=agg('sum')) | v2 <- argmax(v1)[k=10] D(f1, f2)
*f3  | 'month' | y1 <- {'sales','profit'} | v2                | year=2015   | bar.(y=agg('sum')) |`,

	"3.24": `
NAME | X      | Y                                   | Z                           | VIZ                | PROCESS
f1   | 'year' | 'sales'                             | v1 <- 'product'.*           | bar.(y=agg('sum')) | v2 <- R(1, v1, f1)
f2   | 'year' | y1 <- {'sales','profit','revenue'}  | v2                          | bar.(y=agg('sum')) | v3 <- argmax(v1)[k=1] T(f1)
f3   | 'year' | y1                                  | v3                          | bar.(y=agg('sum')) | y2, v4, v5 <- argmax(y1, v2, v3)[k=10] D(f2, f3)
*f4  | 'year' | y2                                  | v6 <- (v4.range | v5.range) | bar.(y=agg('sum')) |`,

	"3.25": `
NAME | X                                  | Y                                  | Z | VIZ         | PROCESS
f1   | x1 <- {'sales','profit','weight'}  | y1 <- {'sales','profit','weight'}  |   |             |
f2   | x2 <- {'sales','profit','weight'}  | y2 <- {'sales','profit','weight'}  |   |             | x3, y3 <- argmax(x1, y1)[k=1] sum(x2, y2) D(f1, f2)
*f3  | x3                                 | y3                                 |   | scatterplot |`,

	// Chapter 5 — optimization examples.
	"5.1": `
NAME | X      | Y        | Z                                   | CONSTRAINTS   | VIZ                | PROCESS
f1   | 'year' | 'sales'  | v1 <- 'product'.{'chair','desk','stapler','table','printer'} | location='US' | bar.(y=agg('sum')) | v2 <- argany(v1)[t>0] T(f1)
f2   | 'year' | 'sales'  | v1                                  | location='UK' | bar.(y=agg('sum')) | v3 <- argany(v1)[t<0] T(f2)
*f3  | 'year' | 'profit' | v4 <- (v2.range | v3.range)         |               | bar.(y=agg('sum')) |`,

	"5.2": `
NAME | X          | Y        | Z                                   | CONSTRAINTS | VIZ                | PROCESS
f1   | 'location' | 'sales'  | v1 <- 'product'.{'chair','desk','stapler','table','printer'} | year=2010   | bar.(y=agg('sum')) |
f2   | 'location' | 'sales'  | v1                                  | year=2015   | bar.(y=agg('sum')) | v2 <- argmax(v1)[k=10] D(f1, f2)
*f3  | 'location' | 'profit' | v2                                  | year=2010   | bar.(y=agg('sum')) |
*f4  | 'location' | 'profit' | v2                                  | year=2015   | bar.(y=agg('sum')) |`,

	// Chapter 7 — experiment queries on the airline-like dataset.
	"7.1": `
NAME | X      | Y                                  | Z                                      | PROCESS
f1   | 'year' | 'DepDelay'                         | v1 <- 'airport'.{'JFK','SFO','ORD','LAX','ATL'} | v2 <- argany(v1)[t>0] T(f1)
f2   | 'year' | 'WeatherDelay'                     | v1                                     | v3 <- argany(v1)[t>0] T(f2)
*f3  | 'year' | y3 <- {'DepDelay','WeatherDelay'}  | v4 <- (v2.range | v3.range)            |`,

	"7.2": `
NAME | X        | Y                                  | Z                                      | CONSTRAINTS | PROCESS
f1   | 'Day'    | 'ArrDelay'                         | v1 <- 'airport'.{'JFK','SFO','ORD','LAX','ATL'} | Month='06'  |
f2   | 'Day'    | 'ArrDelay'                         | v1                                     | Month='12'  | v2 <- argmax(v1)[k=10] D(f1, f2)
*f3  | 'Month'  | y1 <- {'ArrDelay','WeatherDelay'}  | v2                                     |             |`,
}
