package zql

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses the textual rendering of a ZQL table. The first non-comment
// line is the header naming the columns; subsequent lines are rows. Lines
// beginning with # or -- are comments.
func Parse(src string) (*Query, error) {
	lines := strings.Split(src, "\n")
	var header []string
	q := &Query{}
	for lineNo, raw := range lines {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "--") {
			continue
		}
		cells := splitCells(line)
		if header == nil {
			header = make([]string, len(cells))
			for i, c := range cells {
				header[i] = strings.ToUpper(strings.TrimSpace(c))
				if !validColumn(header[i]) {
					return nil, fmt.Errorf("zql: line %d: unknown column %q", lineNo+1, c)
				}
			}
			continue
		}
		if len(cells) > len(header) {
			return nil, fmt.Errorf("zql: line %d: %d cells but %d header columns", lineNo+1, len(cells), len(header))
		}
		row := &Row{Line: lineNo + 1}
		for i, cell := range cells {
			cell = strings.TrimSpace(cell)
			if err := parseCellInto(row, header[i], cell); err != nil {
				return nil, fmt.Errorf("zql: line %d, column %s: %w", lineNo+1, header[i], err)
			}
		}
		q.Rows = append(q.Rows, row)
	}
	if len(q.Rows) == 0 {
		return nil, fmt.Errorf("zql: query has no rows")
	}
	if err := validate(q); err != nil {
		return nil, err
	}
	return q, nil
}

// splitCells splits a row on '|' separators that are not inside quotes.
// (The '|' set-union operator only occurs inside parentheses in practice, but
// quotes are the robust guard for attribute values containing '|'.)
func splitCells(line string) []string {
	var cells []string
	var sb strings.Builder
	inQuote := false
	depth := 0
	for _, r := range line {
		switch {
		case r == '\'':
			inQuote = !inQuote
			sb.WriteRune(r)
		case r == '(' || r == '{' || r == '[':
			if !inQuote {
				depth++
			}
			sb.WriteRune(r)
		case r == ')' || r == '}' || r == ']':
			if !inQuote {
				depth--
			}
			sb.WriteRune(r)
		case r == '|' && !inQuote && depth == 0:
			cells = append(cells, sb.String())
			sb.Reset()
		default:
			sb.WriteRune(r)
		}
	}
	cells = append(cells, sb.String())
	return cells
}

func validColumn(name string) bool {
	switch name {
	case "NAME", "X", "Y", "CONSTRAINTS", "VIZ", "PROCESS", "Z":
		return true
	}
	if strings.HasPrefix(name, "Z") {
		if _, err := strconv.Atoi(name[1:]); err == nil {
			return true
		}
	}
	return false
}

func parseCellInto(row *Row, column, cell string) error {
	switch column {
	case "NAME":
		ns, err := parseNameCell(cell)
		if err != nil {
			return err
		}
		row.Name = ns
		return nil
	case "X":
		ax, err := parseAxisCell(cell)
		if err != nil {
			return err
		}
		row.X = ax
		return nil
	case "Y":
		ax, err := parseAxisCell(cell)
		if err != nil {
			return err
		}
		row.Y = ax
		return nil
	case "CONSTRAINTS":
		row.Constraints = cell
		return nil
	case "VIZ":
		vz, err := parseVizCell(cell)
		if err != nil {
			return err
		}
		row.Viz = vz
		return nil
	case "PROCESS":
		ps, err := parseProcessCell(cell)
		if err != nil {
			return err
		}
		row.Process = ps
		return nil
	default: // Z, Z2, Z3...
		zs, err := parseZCell(cell)
		if err != nil {
			return err
		}
		row.Z = append(row.Z, zs)
		return nil
	}
}

// --------------------------------------------------------------- name ----

func parseNameCell(cell string) (NameSpec, error) {
	var ns NameSpec
	if cell == "" {
		return ns, nil
	}
	p, err := newCellParser(cell)
	if err != nil {
		return ns, err
	}
	if p.acceptSym("*") {
		ns.Output = true
	} else if p.acceptSym("-") {
		ns.UserInput = true
	}
	name, err := p.expectIdentTok()
	if err != nil {
		return ns, err
	}
	ns.Var = name
	if p.atEOF() {
		return ns, nil
	}
	if err := p.expectSym("="); err != nil {
		return ns, err
	}
	expr, err := parseNameExpr(p)
	if err != nil {
		return ns, err
	}
	ns.Expr = expr
	if !p.atEOF() {
		return ns, p.errorf("trailing input in name cell")
	}
	return ns, nil
}

func parseNameExpr(p *cellParser) (*NameExpr, error) {
	left, err := p.expectIdentTok()
	if err != nil {
		return nil, err
	}
	e := &NameExpr{Kind: NameAlias, Left: left, J: -1}
	switch {
	case p.acceptSym("+"):
		e.Kind = NamePlus
	case p.acceptSym("-"):
		e.Kind = NameMinus
	case p.acceptSym("^"):
		e.Kind = NameIntersect
	case p.acceptSym("["):
		t := p.peek()
		if t.kind != tNumber {
			return nil, p.errorf("expected index, got %q", t.text)
		}
		p.i++
		i, _ := strconv.Atoi(t.text)
		e.I = i
		e.Kind = NameIndex
		if p.acceptSym(":") {
			e.Kind = NameSlice
			t = p.peek()
			if t.kind == tNumber {
				p.i++
				j, _ := strconv.Atoi(t.text)
				e.J = j
			}
		}
		if err := p.expectSym("]"); err != nil {
			return nil, err
		}
		return e, nil
	case p.acceptSym("."):
		word, err := p.expectIdentTok()
		if err != nil {
			return nil, err
		}
		switch word {
		case "range":
			e.Kind = NameRange
		case "order":
			e.Kind = NameOrder
		default:
			return nil, p.errorf("unknown name operation .%s", word)
		}
		return e, nil
	default:
		return e, nil // plain alias f2=f1
	}
	right, err := p.expectIdentTok()
	if err != nil {
		return nil, err
	}
	e.Right = right
	return e, nil
}

// --------------------------------------------------------------- sets ----

// parseSetExpr parses the shared set grammar:
//
//	set  := prim (('|' | '\' | '&') prim)*
//	prim := base ['.' base]          -- pair when '.' follows
//	base := '{' lit (',' lit)* '}' | '*' | '(' set ')' | 'lit' | var.range | _
func parseSetExpr(p *cellParser) (*SetExpr, error) {
	left, err := parseSetPrim(p)
	if err != nil {
		return nil, err
	}
	for {
		var op SetOp
		switch {
		case p.acceptSym("|"):
			op = SetUnion
		case p.acceptSym("\\"):
			op = SetDiff
		case p.acceptSym("&"):
			op = SetIntersect
		default:
			return left, nil
		}
		right, err := parseSetPrim(p)
		if err != nil {
			return nil, err
		}
		o := op
		left = &SetExpr{Op: &o, Left: left, Right: right}
	}
}

func parseSetPrim(p *cellParser) (*SetExpr, error) {
	base, err := parseSetBase(p)
	if err != nil {
		return nil, err
	}
	if base.RangeVar != "" {
		// v2.range already consumed its dot.
		return base, nil
	}
	if p.acceptSym(".") {
		val, err := parseSetBase(p)
		if err != nil {
			return nil, err
		}
		return &SetExpr{Pair: &ZPair{Attr: base, Val: val}}, nil
	}
	return base, nil
}

func parseSetBase(p *cellParser) (*SetExpr, error) {
	t := p.peek()
	switch {
	case t.kind == tString:
		p.i++
		return &SetExpr{Literals: []string{t.text}}, nil
	case t.kind == tSym && t.text == "*":
		p.i++
		return &SetExpr{Star: true}, nil
	case t.kind == tSym && t.text == "{":
		p.i++
		var lits []string
		for {
			lt := p.peek()
			if lt.kind != tString && lt.kind != tIdent && lt.kind != tNumber {
				return nil, p.errorf("expected set element, got %q", lt.text)
			}
			p.i++
			lits = append(lits, lt.text)
			if !p.acceptSym(",") {
				break
			}
		}
		if err := p.expectSym("}"); err != nil {
			return nil, err
		}
		return &SetExpr{Literals: lits}, nil
	case t.kind == tSym && t.text == "(":
		p.i++
		inner, err := parseSetExpr(p)
		if err != nil {
			return nil, err
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		return inner, nil
	case t.kind == tIdent && t.text == "_":
		p.i++
		return &SetExpr{Derived: true}, nil
	case t.kind == tIdent:
		// Must be var.range.
		p.i++
		if !p.acceptSym(".") || !p.acceptIdent("range") {
			return nil, p.errorf("bare variable %q in a set; did you mean %s.range?", t.text, t.text)
		}
		return &SetExpr{RangeVar: t.text}, nil
	}
	return nil, p.errorf("expected set expression, got %q", t.text)
}

// --------------------------------------------------------------- axis ----

func parseAxisCell(cell string) (AxisSpec, error) {
	var ax AxisSpec
	if cell == "" {
		ax.Kind = AxisEmpty
		return ax, nil
	}
	p, err := newCellParser(cell)
	if err != nil {
		return ax, err
	}
	parts := []AxisPart{}
	var compOp string // "+", "×" or "" while undecided
	for {
		part, err := parseAxisPart(p)
		if err != nil {
			return ax, err
		}
		parts = append(parts, part)
		var op string
		switch {
		case p.acceptSym("+"):
			op = "+"
		case p.acceptSym("×"), p.acceptSym("/"):
			op = "×"
		default:
			op = ""
		}
		if op == "" {
			break
		}
		if compOp != "" && compOp != op {
			return ax, p.errorf("mixed axis composition operators")
		}
		compOp = op
	}
	if p.acceptSym("->") {
		ax.Order = true
	}
	if !p.atEOF() {
		return ax, p.errorf("trailing input in axis cell")
	}
	if len(parts) == 1 {
		p0 := parts[0]
		ax.Kind = p0.Kind
		ax.Attr, ax.Var, ax.Set = p0.Attr, p0.Var, p0.Set
		return ax, nil
	}
	ax.Parts = parts
	if compOp == "+" {
		ax.Kind = AxisSum
	} else {
		ax.Kind = AxisCross
	}
	return ax, nil
}

func parseAxisPart(p *cellParser) (AxisPart, error) {
	var part AxisPart
	t := p.peek()
	switch {
	case t.kind == tString:
		p.i++
		part.Kind = AxisLiteral
		part.Attr = t.text
		return part, nil
	case t.kind == tSym && t.text == "(":
		// '( x1 in {...} )' Polaris-style iteration term.
		p.i++
		name, err := p.expectIdentTok()
		if err != nil {
			return part, err
		}
		if !p.acceptIdent("in") {
			return part, p.errorf("expected 'in' inside parenthesized axis term")
		}
		set, err := parseSetExpr(p)
		if err != nil {
			return part, err
		}
		if err := p.expectSym(")"); err != nil {
			return part, err
		}
		part.Kind = AxisVarDecl
		part.Var = name
		part.Set = set
		return part, nil
	case t.kind == tIdent:
		p.i++
		part.Var = t.text
		if p.acceptSym("<-") {
			part.Kind = AxisVarDecl
			if p.acceptIdent("_") || p.atEOF() {
				part.Set = nil // bind to derived visual component
				return part, nil
			}
			set, err := parseSetExpr(p)
			if err != nil {
				return part, err
			}
			part.Set = set
			return part, nil
		}
		part.Kind = AxisVarRef
		return part, nil
	}
	return part, p.errorf("expected axis term, got %q", t.text)
}

// ------------------------------------------------------------------ z ----

func parseZCell(cell string) (ZSpec, error) {
	var z ZSpec
	if cell == "" {
		z.Kind = ZEmpty
		return z, nil
	}
	p, err := newCellParser(cell)
	if err != nil {
		return z, err
	}
	// Variable declaration forms.
	if p.peekIsVarDecl() {
		v1, _ := p.expectIdentTok()
		if p.acceptSym(".") {
			v2, err := p.expectIdentTok()
			if err != nil {
				return z, err
			}
			if err := p.expectSym("<-"); err != nil {
				return z, err
			}
			set, err := parseSetExpr(p)
			if err != nil {
				return z, err
			}
			z.Kind = ZPairs
			z.AttrVar, z.Var, z.Set = v1, v2, set
			return z, finishZ(p, &z)
		}
		if err := p.expectSym("<-"); err != nil {
			return z, err
		}
		set, err := parseSetExpr(p)
		if err != nil {
			return z, err
		}
		// Classify: 'attr'.<valset> (single-attribute values) vs set expr.
		if set.Pair != nil && len(set.Pair.Attr.Literals) == 1 && !set.Pair.Attr.Star {
			z.Kind = ZValues
			z.Var = v1
			z.Attr = set.Pair.Attr.Literals[0]
			z.ValSet = set.Pair.Val
			return z, finishZ(p, &z)
		}
		z.Kind = ZSetExpr
		z.Var = v1
		z.Set = set
		return z, finishZ(p, &z)
	}
	t := p.peek()
	switch {
	case t.kind == tString:
		// 'product'.'chair' or 'product'.<set> without a variable.
		set, err := parseSetExpr(p)
		if err != nil {
			return z, err
		}
		if set.Pair == nil || len(set.Pair.Attr.Literals) != 1 {
			return z, p.errorf("fixed Z entry must be 'attr'.'value'")
		}
		z.Attr = set.Pair.Attr.Literals[0]
		if len(set.Pair.Val.Literals) == 1 && !set.Pair.Val.Star {
			z.Kind = ZFixed
			z.Value = set.Pair.Val.Literals[0]
			return z, finishZ(p, &z)
		}
		// Anonymous set: treated as values iteration without a variable name.
		z.Kind = ZValues
		z.ValSet = set.Pair.Val
		return z, finishZ(p, &z)
	case t.kind == tIdent:
		p.i++
		z.Kind = ZVarRef
		z.Var = t.text
		return z, finishZ(p, &z)
	}
	return z, p.errorf("cannot parse Z cell")
}

func finishZ(p *cellParser, z *ZSpec) error {
	if p.acceptSym("->") {
		z.Order = true
	}
	if !p.atEOF() {
		return p.errorf("trailing input in Z cell")
	}
	return nil
}

// ---------------------------------------------------------------- viz ----

func parseVizCell(cell string) (VizSpec, error) {
	var vz VizSpec
	if cell == "" {
		vz.Kind = VizEmpty
		return vz, nil
	}
	p, err := newCellParser(cell)
	if err != nil {
		return vz, err
	}
	if p.peekIsVarDecl() {
		v, _ := p.expectIdentTok()
		if err := p.expectSym("<-"); err != nil {
			return vz, err
		}
		vz.Kind = VizVarDecl
		vz.Var = v
	} else {
		vz.Kind = VizSingle
	}
	// Visualization types: ident or {ident, ident}.
	var types []string
	if p.acceptSym("{") {
		for {
			ty, err := p.expectIdentTok()
			if err != nil {
				return vz, err
			}
			types = append(types, ty)
			if !p.acceptSym(",") {
				break
			}
		}
		if err := p.expectSym("}"); err != nil {
			return vz, err
		}
	} else {
		ty, err := p.expectIdentTok()
		if err != nil {
			return vz, err
		}
		types = append(types, ty)
	}
	// Optional summarization: .(...) or .{(...), (...)}.
	var sums []VizDef
	if p.acceptSym(".") {
		if p.acceptSym("{") {
			for {
				s, err := parseSummary(p)
				if err != nil {
					return vz, err
				}
				sums = append(sums, s)
				if !p.acceptSym(",") {
					break
				}
			}
			if err := p.expectSym("}"); err != nil {
				return vz, err
			}
		} else {
			s, err := parseSummary(p)
			if err != nil {
				return vz, err
			}
			sums = append(sums, s)
		}
	}
	if len(sums) == 0 {
		sums = []VizDef{{}}
	}
	for _, ty := range types {
		for _, s := range sums {
			d := s
			d.Type = ty
			vz.Defs = append(vz.Defs, d)
		}
	}
	if len(vz.Defs) > 1 && vz.Var == "" {
		return vz, p.errorf("a Viz set needs an iterating variable")
	}
	if !p.atEOF() {
		return vz, p.errorf("trailing input in Viz cell")
	}
	return vz, nil
}

// parseSummary parses one parenthesized summarization tuple like
// (x=bin(20), y=agg('sum')).
func parseSummary(p *cellParser) (VizDef, error) {
	var d VizDef
	if err := p.expectSym("("); err != nil {
		return d, err
	}
	for {
		axis, err := p.expectIdentTok()
		if err != nil {
			return d, err
		}
		if err := p.expectSym("="); err != nil {
			return d, err
		}
		fn, err := p.expectIdentTok()
		if err != nil {
			return d, err
		}
		if err := p.expectSym("("); err != nil {
			return d, err
		}
		switch {
		case axis == "x" && fn == "bin":
			t := p.peek()
			if t.kind != tNumber {
				return d, p.errorf("expected bin width, got %q", t.text)
			}
			p.i++
			w, err := strconv.ParseFloat(t.text, 64)
			if err != nil || w <= 0 {
				return d, p.errorf("bad bin width %q", t.text)
			}
			d.XBin = w
		case axis == "y" && fn == "agg":
			t := p.peek()
			if t.kind != tString && t.kind != tIdent {
				return d, p.errorf("expected aggregate name, got %q", t.text)
			}
			p.i++
			d.YAgg = t.text
		default:
			return d, p.errorf("unknown summarization %s=%s", axis, fn)
		}
		if err := p.expectSym(")"); err != nil {
			return d, err
		}
		if !p.acceptSym(",") {
			break
		}
	}
	if err := p.expectSym(")"); err != nil {
		return d, err
	}
	return d, nil
}

// ------------------------------------------------------------- process ----

func parseProcessCell(cell string) ([]ProcessDecl, error) {
	if cell == "" {
		return nil, nil
	}
	p, err := newCellParser(cell)
	if err != nil {
		return nil, err
	}
	var decls []ProcessDecl
	for {
		wrapped := p.acceptSym("(")
		d, err := parseProcessDecl(p)
		if err != nil {
			return nil, err
		}
		if wrapped {
			if err := p.expectSym(")"); err != nil {
				return nil, err
			}
		}
		decls = append(decls, d)
		if !p.acceptSym(",") && !p.acceptSym(";") {
			break
		}
	}
	if !p.atEOF() {
		return nil, p.errorf("trailing input in Process cell")
	}
	return decls, nil
}

func parseProcessDecl(p *cellParser) (ProcessDecl, error) {
	var d ProcessDecl
	for {
		v, err := p.expectIdentTok()
		if err != nil {
			return d, err
		}
		d.OutVars = append(d.OutVars, v)
		if !p.acceptSym(",") {
			break
		}
	}
	if err := p.expectSym("<-"); err != nil {
		return d, err
	}
	mech, err := p.expectIdentTok()
	if err != nil {
		return d, err
	}
	switch mech {
	case "argmin":
		d.Mech = MechArgmin
	case "argmax":
		d.Mech = MechArgmax
	case "argany":
		d.Mech = MechArgany
	case "R":
		d.Mech = MechR
		return d, parseRCall(p, &d)
	default:
		return d, p.errorf("unknown mechanism %q", mech)
	}
	if err := p.expectSym("("); err != nil {
		return d, err
	}
	for {
		v, err := p.expectIdentTok()
		if err != nil {
			return d, err
		}
		d.LoopVars = append(d.LoopVars, v)
		if !p.acceptSym(",") {
			break
		}
	}
	if err := p.expectSym(")"); err != nil {
		return d, err
	}
	if len(d.OutVars) != len(d.LoopVars) {
		return d, p.errorf("%d output variables for %d loop variables", len(d.OutVars), len(d.LoopVars))
	}
	if p.acceptSym("[") {
		if err := parseFilter(p, &d); err != nil {
			return d, err
		}
	}
	// Nested inner aggregations, then the objective.
	for {
		t := p.peek()
		if t.kind == tIdent && (t.text == "min" || t.text == "max" || t.text == "sum") {
			p.i++
			if err := p.expectSym("("); err != nil {
				return d, err
			}
			ia := InnerAgg{Fn: t.text}
			for {
				v, err := p.expectIdentTok()
				if err != nil {
					return d, err
				}
				ia.Vars = append(ia.Vars, v)
				if !p.acceptSym(",") {
					break
				}
			}
			if err := p.expectSym(")"); err != nil {
				return d, err
			}
			d.Inner = append(d.Inner, ia)
			continue
		}
		break
	}
	obj, err := parseObjExpr(p)
	if err != nil {
		return d, err
	}
	d.Expr = obj
	return d, nil
}

func parseFilter(p *cellParser, d *ProcessDecl) error {
	name, err := p.expectIdentTok()
	if err != nil {
		return err
	}
	switch name {
	case "k":
		if err := p.expectSym("="); err != nil {
			return err
		}
		d.Filter = FilterK
		t := p.peek()
		if t.kind == tIdent && (t.text == "inf" || t.text == "infinity") {
			p.i++
			d.K = -1
		} else if t.kind == tNumber {
			p.i++
			k, err := strconv.Atoi(t.text)
			if err != nil || k < 0 {
				return p.errorf("bad k %q", t.text)
			}
			d.K = k
		} else {
			return p.errorf("expected k value, got %q", t.text)
		}
	case "t":
		d.Filter = FilterT
		var op string
		switch {
		case p.acceptSym(">="):
			op = ">="
		case p.acceptSym("<="):
			op = "<="
		case p.acceptSym(">"):
			op = ">"
		case p.acceptSym("<"):
			op = "<"
		default:
			return p.errorf("expected threshold comparison, got %q", p.peek().text)
		}
		d.TOp = op
		t := p.peek()
		if t.kind != tNumber {
			return p.errorf("expected threshold value, got %q", t.text)
		}
		p.i++
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return p.errorf("bad threshold %q", t.text)
		}
		d.TVal = v
	default:
		return p.errorf("unknown filter %q (want k or t)", name)
	}
	return p.expectSym("]")
}

func parseRCall(p *cellParser, d *ProcessDecl) error {
	if err := p.expectSym("("); err != nil {
		return err
	}
	t := p.peek()
	if t.kind != tNumber {
		return p.errorf("expected representative count, got %q", t.text)
	}
	p.i++
	k, err := strconv.Atoi(t.text)
	if err != nil || k <= 0 {
		return p.errorf("bad representative count %q", t.text)
	}
	d.RK = k
	if err := p.expectSym(","); err != nil {
		return err
	}
	var idents []string
	for {
		v, err := p.expectIdentTok()
		if err != nil {
			return err
		}
		idents = append(idents, v)
		if !p.acceptSym(",") {
			break
		}
	}
	if err := p.expectSym(")"); err != nil {
		return err
	}
	if len(idents) < 2 {
		return p.errorf("R needs at least an axis variable and a name variable")
	}
	d.RVars = idents[:len(idents)-1]
	d.RName = idents[len(idents)-1]
	if len(d.OutVars) != len(d.RVars) {
		return p.errorf("%d output variables for %d R variables", len(d.OutVars), len(d.RVars))
	}
	return nil
}

func parseObjExpr(p *cellParser) (*ObjExpr, error) {
	name, err := p.expectIdentTok()
	if err != nil {
		return nil, err
	}
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	var args []string
	for {
		a, err := p.expectIdentTok()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
		if !p.acceptSym(",") {
			break
		}
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	switch name {
	case "T":
		if len(args) != 1 {
			return nil, p.errorf("T takes one name variable")
		}
		return &ObjExpr{Kind: ObjT, F1: args[0]}, nil
	case "D":
		if len(args) != 2 {
			return nil, p.errorf("D takes two name variables")
		}
		return &ObjExpr{Kind: ObjD, F1: args[0], F2: args[1]}, nil
	default:
		return &ObjExpr{Kind: ObjU, User: name, Args: args}, nil
	}
}

// validate performs structural checks that span rows: name uniqueness and
// derived-name references.
func validate(q *Query) error {
	names := make(map[string]int)
	for _, r := range q.Rows {
		if r.Name.Var != "" {
			if prev, dup := names[r.Name.Var]; dup {
				return fmt.Errorf("zql: line %d: name %s already declared on line %d", r.Line, r.Name.Var, prev)
			}
			names[r.Name.Var] = r.Line
		}
		if e := r.Name.Expr; e != nil {
			for _, ref := range []string{e.Left, e.Right} {
				if ref == "" {
					continue
				}
				if _, ok := names[ref]; !ok {
					return fmt.Errorf("zql: line %d: derived name refers to undeclared %s", r.Line, ref)
				}
			}
		}
	}
	return nil
}
