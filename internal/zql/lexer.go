package zql

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tString // 'quoted'
	tNumber
	tSym
)

type tok struct {
	kind tokKind
	text string
	pos  int
}

// cellLexer tokenizes the contents of one ZQL table cell.
type cellLexer struct {
	src  string
	pos  int
	toks []tok
}

// twoCharSyms are matched before single characters.
var twoCharSyms = []string{"<-", "->", "<=", ">="}

func lexCell(src string) ([]tok, error) {
	l := &cellLexer{src: src}
	for l.pos < len(l.src) {
		r, size := utf8.DecodeRuneInString(l.src[l.pos:])
		switch {
		case r == ' ' || r == '\t':
			l.pos += size
		case r == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case unicode.IsDigit(r):
			l.lexNumber()
		case r == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' && !l.prevIsOperand():
			l.lexNumber()
		case unicode.IsLetter(r) || r == '_':
			l.lexIdent()
		case r == '×':
			l.toks = append(l.toks, tok{kind: tSym, text: "×", pos: l.pos})
			l.pos += size
		default:
			if err := l.lexSym(); err != nil {
				return nil, err
			}
		}
	}
	l.toks = append(l.toks, tok{kind: tEOF, pos: l.pos})
	return l.toks, nil
}

// prevIsOperand reports whether the previous token could end an expression,
// in which case a following '-' is a binary operator rather than a sign.
func (l *cellLexer) prevIsOperand() bool {
	if len(l.toks) == 0 {
		return false
	}
	switch p := l.toks[len(l.toks)-1]; p.kind {
	case tIdent, tString, tNumber:
		return true
	case tSym:
		return p.text == ")" || p.text == "}" || p.text == "]" || p.text == "*"
	}
	return false
}

func (l *cellLexer) lexString() error {
	start := l.pos
	l.pos++
	var sb strings.Builder
	for l.pos < len(l.src) {
		if l.src[l.pos] == '\'' {
			l.pos++
			l.toks = append(l.toks, tok{kind: tString, text: sb.String(), pos: start})
			return nil
		}
		sb.WriteByte(l.src[l.pos])
		l.pos++
	}
	return fmt.Errorf("zql: unterminated string at offset %d in %q", start, l.src)
}

func (l *cellLexer) lexNumber() {
	start := l.pos
	if l.src[l.pos] == '-' {
		l.pos++
	}
	for l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9' || l.src[l.pos] == '.') {
		// A trailing ".range" style suffix must not be eaten: only consume a
		// '.' if a digit follows.
		if l.src[l.pos] == '.' && (l.pos+1 >= len(l.src) || l.src[l.pos+1] < '0' || l.src[l.pos+1] > '9') {
			break
		}
		l.pos++
	}
	l.toks = append(l.toks, tok{kind: tNumber, text: l.src[start:l.pos], pos: start})
}

func (l *cellLexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) {
		r, size := utf8.DecodeRuneInString(l.src[l.pos:])
		if !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '_' {
			break
		}
		l.pos += size
	}
	l.toks = append(l.toks, tok{kind: tIdent, text: l.src[start:l.pos], pos: start})
}

func (l *cellLexer) lexSym() error {
	for _, two := range twoCharSyms {
		if strings.HasPrefix(l.src[l.pos:], two) {
			l.toks = append(l.toks, tok{kind: tSym, text: two, pos: l.pos})
			l.pos += len(two)
			return nil
		}
	}
	c := l.src[l.pos]
	switch c {
	case '.', ',', '(', ')', '{', '}', '[', ']', '*', '\\', '|', '&', '=', '<', '>', '+', '-', '/', '^', ':', ';':
		l.toks = append(l.toks, tok{kind: tSym, text: string(c), pos: l.pos})
		l.pos++
		return nil
	}
	return fmt.Errorf("zql: unexpected character %q at offset %d in %q", c, l.pos, l.src)
}

// cellParser provides shared token-stream helpers for the column parsers.
type cellParser struct {
	cell string
	toks []tok
	i    int
}

func newCellParser(cell string) (*cellParser, error) {
	toks, err := lexCell(cell)
	if err != nil {
		return nil, err
	}
	return &cellParser{cell: cell, toks: toks}, nil
}

func (p *cellParser) peek() tok   { return p.toks[p.i] }
func (p *cellParser) next() tok   { t := p.toks[p.i]; p.i++; return t }
func (p *cellParser) atEOF() bool { return p.peek().kind == tEOF }

func (p *cellParser) errorf(format string, args ...any) error {
	return fmt.Errorf("zql: in cell %q at offset %d: %s", p.cell, p.peek().pos, fmt.Sprintf(format, args...))
}

func (p *cellParser) acceptSym(s string) bool {
	if t := p.peek(); t.kind == tSym && t.text == s {
		p.i++
		return true
	}
	return false
}

func (p *cellParser) expectSym(s string) error {
	if !p.acceptSym(s) {
		return p.errorf("expected %q, got %q", s, p.peek().text)
	}
	return nil
}

func (p *cellParser) acceptIdent(name string) bool {
	if t := p.peek(); t.kind == tIdent && t.text == name {
		p.i++
		return true
	}
	return false
}

func (p *cellParser) expectIdentTok() (string, error) {
	if t := p.peek(); t.kind == tIdent {
		p.i++
		return t.text, nil
	}
	return "", p.errorf("expected identifier, got %q", p.peek().text)
}

// peekIsVarDecl reports whether the remaining tokens begin `ident <-` or
// `ident.ident <-` (a variable declaration).
func (p *cellParser) peekIsVarDecl() bool {
	if p.peek().kind != tIdent {
		return false
	}
	j := p.i + 1
	if p.toks[j].kind == tSym && p.toks[j].text == "." &&
		p.toks[j+1].kind == tIdent {
		j += 2
	}
	return p.toks[j].kind == tSym && p.toks[j].text == "<-"
}
