// Package zql implements ZQL, zenvisage's table-based visual query language
// (Chapter 3 of the paper). A ZQL query is a table whose rows each describe a
// collection of visualizations (the visual component) plus an optional
// Process task that sorts / filters / compares collections.
//
// The package parses a textual rendering of the paper's tables. Each query is
// a header line naming the columns, then one pipe-separated line per row:
//
//	NAME | X      | Y       | Z                  | CONSTRAINTS   | VIZ                 | PROCESS
//	*f1  | 'year' | 'sales' | v1 <- 'product'.*  | location='US' | bar.(y=agg('sum'))  |
//
// Recognized columns: NAME, X, Y, Z, Z2, Z3, ..., CONSTRAINTS, VIZ, PROCESS.
// Cells follow the grammar of the corresponding thesis column, with two
// ASCII conventions: `<-` is the thesis's left-arrow, `->` its order marker,
// and `_` the "bind to derived visual component" symbol.
package zql

import (
	"fmt"
	"strings"
)

// Query is a parsed ZQL table.
type Query struct {
	Rows []*Row
}

// Row is one line of a ZQL table.
type Row struct {
	Name        NameSpec
	X, Y        AxisSpec
	Z           []ZSpec // Z, Z2, Z3, ... in column order
	Constraints string  // raw SQL-style predicate text ("" = none)
	Viz         VizSpec
	Process     []ProcessDecl
	Line        int // 1-based line in the source for error reporting
}

// NameSpec is the Name column: a name variable, output/user-input flags, or a
// derived visual component expression.
type NameSpec struct {
	Var       string // f1 ("" only for rows with no name)
	Output    bool   // *f1
	UserInput bool   // -f1: the visualization is provided by the user
	Expr      *NameExpr
}

// NameExprKind enumerates derived visual component operations (Section 3.6).
type NameExprKind int

// Derived-name operations.
const (
	NamePlus      NameExprKind = iota // f3=f1+f2 (concatenation)
	NameMinus                         // f3=f1-f2 (list difference)
	NameIntersect                     // f3=f1^f2
	NameIndex                         // f2=f1[i]
	NameSlice                         // f2=f1[i:j]
	NameRange                         // f2=f1.range (dedup)
	NameOrder                         // f2=f1.order (reorder by -> variables)
	NameAlias                         // f2=f1
)

// NameExpr is the right-hand side of a derived Name column entry.
type NameExpr struct {
	Kind        NameExprKind
	Left, Right string // operand name variables
	I, J        int    // for NameIndex / NameSlice (1-based, J=-1 for open)
}

// AxisKind enumerates X/Y cell forms.
type AxisKind int

// Axis cell forms.
const (
	AxisEmpty   AxisKind = iota
	AxisLiteral          // 'year'
	AxisVarDecl          // y1 <- {'sales','profit'} or y1 <- _ (derived)
	AxisVarRef           // y1
	AxisSum              // 'profit' + 'sales' (point-wise composition)
	AxisCross            // 'product' x (x1 in {...}) (Polaris ×, / treated alike)
)

// AxisSpec is an X or Y cell.
type AxisSpec struct {
	Kind  AxisKind
	Attr  string   // AxisLiteral
	Var   string   // AxisVarDecl / AxisVarRef
	Set   *SetExpr // AxisVarDecl; nil means bind to the derived component
	Parts []AxisPart
	Order bool // trailing -> (axis participates in f.order reordering)
}

// AxisPart is one term of an AxisSum or AxisCross composition.
type AxisPart struct {
	Kind AxisKind // AxisLiteral, AxisVarDecl or AxisVarRef
	Attr string
	Var  string
	Set  *SetExpr
}

// ZKind enumerates Z cell forms.
type ZKind int

// Z cell forms.
const (
	ZEmpty   ZKind = iota
	ZFixed         // 'product'.'chair'
	ZValues        // v1 <- 'product'.<value set>
	ZPairs         // z1.v1 <- <attr set>.<value set> or union of pair sets
	ZVarRef        // v1 (reuse a declared variable)
	ZSetExpr       // v4 <- (v2.range & v3.range)
)

// ZSpec is a Z (or Z2, Z3...) cell.
type ZSpec struct {
	Kind    ZKind
	Attr    string   // ZFixed / ZValues: the fixed attribute name
	Value   string   // ZFixed: the fixed attribute value
	AttrVar string   // ZPairs: variable over attributes (z1)
	Var     string   // declared or referenced value variable (v1)
	AttrSet *SetExpr // ZPairs: the attribute set
	ValSet  *SetExpr // ZValues / ZPairs: the value set; nil = derived binding
	Set     *SetExpr // ZSetExpr: a set expression over .range values
	Order   bool     // trailing ->
}

// SetOp is a set algebra operator.
type SetOp int

// Set operators: | union, \ difference, & intersection (Section 3.7).
const (
	SetUnion SetOp = iota
	SetDiff
	SetIntersect
)

// SetExpr is a set-valued expression tree.
type SetExpr struct {
	// Exactly one of the following shapes:
	Op          *SetOp   // binary node: Left Op Right
	Left, Right *SetExpr // binary node operands
	Literals    []string // {'a','b'} literal set
	Star        bool     // *
	RangeVar    string   // v2.range
	Derived     bool     // _ : values appearing in the derived component
	Pair        *ZPair   // attr-set . value-set leaf (used in Z cells)
}

// ZPair is an attribute-set/value-set pair leaf inside Z set expressions.
type ZPair struct {
	Attr *SetExpr
	Val  *SetExpr
}

// VizSpec is the Viz column.
type VizSpec struct {
	Kind VizKind
	Var  string   // declared iterator, "" if none
	Defs []VizDef // the candidate visualization settings (≥1 when non-empty)
}

// VizKind enumerates Viz cell forms.
type VizKind int

// Viz cell forms.
const (
	VizEmpty   VizKind = iota
	VizSingle          // bar.(y=agg('sum'))
	VizVarDecl         // t1 <- {bar, dotplot}.(...) or s1 <- bar.{(...), (...)}
)

// VizDef is a concrete visualization type plus summarization.
type VizDef struct {
	Type string  // bar, line, scatterplot, dotplot, boxplot...
	XBin float64 // x=bin(w), 0 if absent
	YAgg string  // y=agg('sum'), "" if absent
}

// String renders a VizDef in ZQL syntax.
func (v VizDef) String() string {
	var parts []string
	if v.XBin > 0 {
		parts = append(parts, fmt.Sprintf("x=bin(%g)", v.XBin))
	}
	if v.YAgg != "" {
		parts = append(parts, fmt.Sprintf("y=agg('%s')", v.YAgg))
	}
	if len(parts) == 0 {
		return v.Type
	}
	return v.Type + ".(" + strings.Join(parts, ", ") + ")"
}

// Mechanism is the optimizer kind of a process declaration.
type Mechanism int

// Process mechanisms (Section 3.8).
const (
	MechArgmin Mechanism = iota
	MechArgmax
	MechArgany
	MechR // R(k, vars, f): k-representative selection
)

// FilterKind distinguishes top-k from threshold filtering.
type FilterKind int

// Filter kinds for argmin/argmax/argany.
const (
	FilterNone FilterKind = iota // sort only
	FilterK                      // [k = n] or [k = inf]
	FilterT                      // [t > 0], [t < 0], ...
)

// ProcessDecl is one `outvars <- mechanism` declaration of a Process cell.
type ProcessDecl struct {
	OutVars []string
	Mech    Mechanism

	// argmin/argmax/argany fields:
	LoopVars []string
	Filter   FilterKind
	K        int    // -1 for inf
	TOp      string // ">", "<", ">=", "<=" for FilterT
	TVal     float64
	Inner    []InnerAgg // nested min/max/sum over further variables
	Expr     *ObjExpr

	// R fields:
	RK    int
	RVars []string
	RName string // the name variable argument
}

// InnerAgg is a nested aggregation level like min(v2) or sum(x2,y2).
type InnerAgg struct {
	Fn   string // "min", "max", "sum"
	Vars []string
}

// ObjExprKind is the objective function kind.
type ObjExprKind int

// Objective functions.
const (
	ObjT ObjExprKind = iota // T(f): trend
	ObjD                    // D(f1, f2): distance
	ObjU                    // U(name, f...): user-defined function
)

// ObjExpr is the objective function of a process task.
type ObjExpr struct {
	Kind ObjExprKind
	F1   string // name variable
	F2   string // second name variable for D
	User string // user-defined function name for ObjU
	Args []string
}

// NumZ returns how many Z columns the query uses (max across rows).
func (q *Query) NumZ() int {
	n := 0
	for _, r := range q.Rows {
		if len(r.Z) > n {
			n = len(r.Z)
		}
	}
	return n
}

// OutputRows returns the rows flagged with *.
func (q *Query) OutputRows() []*Row {
	var out []*Row
	for _, r := range q.Rows {
		if r.Name.Output {
			out = append(out, r)
		}
	}
	return out
}
