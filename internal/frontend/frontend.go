// Package frontend implements the query-building logic of zenvisage's drag
// and drop interface (Section 6.1): the user drags attributes onto the x-,
// y-, and z-axis placeholders, optionally draws a trend or picks a built-in
// exploration task, and "the ZQL front-end internally translates the
// selections in the drawing into a ZQL query and submits it to the back-end".
// This package is that translation — a Spec struct in, ZQL text out — minus
// the browser chrome.
package frontend

import (
	"fmt"
	"strings"
)

// TaskKind is one of the built-in exploration tasks exposed as buttons on
// the building-blocks panel ("for these data exploration queries, the user
// does not even need to compose ZQL queries; simply clicking the right
// button will do").
type TaskKind int

// Built-in tasks.
const (
	// TaskNone just displays the selected visualizations.
	TaskNone TaskKind = iota
	// TaskSimilarity finds the K slices most similar to the drawn trend.
	TaskSimilarity
	// TaskDissimilarity finds the K slices least like the drawn trend.
	TaskDissimilarity
	// TaskRepresentative finds K representative slices.
	TaskRepresentative
	// TaskOutlier finds K outlier slices (two-level, as in Table 3.20).
	TaskOutlier
	// TaskRisingTrends filters to slices with a positive overall trend.
	TaskRisingTrends
	// TaskFallingTrends filters to slices with a negative overall trend.
	TaskFallingTrends
)

// String returns the task's button name, the spelling TaskByName accepts.
func (t TaskKind) String() string {
	switch t {
	case TaskNone:
		return "none"
	case TaskSimilarity:
		return "similar"
	case TaskDissimilarity:
		return "dissimilar"
	case TaskRepresentative:
		return "representative"
	case TaskOutlier:
		return "outliers"
	case TaskRisingTrends:
		return "rising"
	case TaskFallingTrends:
		return "falling"
	}
	return fmt.Sprintf("TaskKind(%d)", int(t))
}

// TaskByName resolves a task button by name — the spelling shared by the CLI
// -task flag and the query server's spec endpoint. The empty string is
// TaskNone (just display the selection).
func TaskByName(name string) (TaskKind, error) {
	switch name {
	case "", "none":
		return TaskNone, nil
	case "similar":
		return TaskSimilarity, nil
	case "dissimilar":
		return TaskDissimilarity, nil
	case "representative":
		return TaskRepresentative, nil
	case "outliers":
		return TaskOutlier, nil
	case "rising":
		return TaskRisingTrends, nil
	case "falling":
		return TaskFallingTrends, nil
	}
	return 0, fmt.Errorf("frontend: unknown task %q (want similar, dissimilar, representative, outliers, rising, or falling)", name)
}

// Filter is one row of the filters panel.
type Filter struct {
	Attr  string
	Op    string // =, !=, <, <=, >, >=, LIKE
	Value string // quoted as a string unless numeric
}

// Spec is the state of the drawing box and panels.
type Spec struct {
	X, Y    string
	Z       string // category attribute; "" for a single visualization
	ZValue  string // optional fixed slice value
	Filters []Filter
	VizType string // bar, line, scatterplot; "" = rule of thumb
	Agg     string // sum, avg...; "" = default
	Task    TaskKind
	K       int       // top-k for tasks; default 10
	Drawn   []float64 // the user-drawn trend for (dis)similarity tasks
}

// ToZQL translates the interface state into ZQL text plus the user-input
// series keyed by name variable (for zexec.Options.Inputs).
func (s *Spec) ToZQL() (string, map[string][]float64, error) {
	if s.X == "" || s.Y == "" {
		return "", nil, fmt.Errorf("frontend: drag attributes onto both the x- and y-axis placeholders")
	}
	if (s.Task == TaskSimilarity || s.Task == TaskDissimilarity) && len(s.Drawn) < 2 {
		return "", nil, fmt.Errorf("frontend: the similarity tasks need a drawn trend")
	}
	if s.Task != TaskNone && s.Z == "" {
		return "", nil, fmt.Errorf("frontend: exploration tasks need a z-axis (category) attribute")
	}
	k := s.K
	if k <= 0 {
		k = 10
	}
	cons := s.constraints()
	viz := s.viz()
	zIter := fmt.Sprintf("v1 <- '%s'.*", s.Z)

	var b strings.Builder
	b.WriteString("NAME | X | Y | Z | CONSTRAINTS | VIZ | PROCESS\n")
	rowf := func(name, x, y, z, process string) {
		fmt.Fprintf(&b, "%s | %s | %s | %s | %s | %s | %s\n", name, x, y, z, cons, viz, process)
	}
	qx, qy := "'"+s.X+"'", "'"+s.Y+"'"
	inputs := map[string][]float64{}

	switch s.Task {
	case TaskNone:
		z := ""
		switch {
		case s.ZValue != "" && s.Z != "":
			z = fmt.Sprintf("'%s'.'%s'", s.Z, s.ZValue)
		case s.Z != "":
			z = zIter
		}
		rowf("*f1", qx, qy, z, "")
	case TaskSimilarity, TaskDissimilarity:
		mech := "argmin"
		if s.Task == TaskDissimilarity {
			mech = "argmax"
		}
		inputs["f1"] = s.Drawn
		b.WriteString("-f1 |  |  |  |  |  | \n")
		rowf("f2", qx, qy, zIter, fmt.Sprintf("v2 <- %s(v1)[k=%d] D(f1, f2)", mech, k))
		rowf("*f3", qx, qy, "v2", "")
	case TaskRepresentative:
		rowf("f1", qx, qy, zIter, fmt.Sprintf("v2 <- R(%d, v1, f1)", k))
		rowf("*f2", qx, qy, "v2", "")
	case TaskOutlier:
		// Table 3.20's two-level pattern: representatives, then the k slices
		// farthest from their nearest representative.
		rowf("f1", qx, qy, zIter, fmt.Sprintf("v2 <- R(%d, v1, f1)", defaultRepK(k)))
		rowf("f2", qx, qy, "v2", fmt.Sprintf("v3 <- argmax(v1)[k=%d] min(v2) D(f1, f2)", k))
		rowf("*f3", qx, qy, "v3", "")
	case TaskRisingTrends:
		rowf("f1", qx, qy, zIter, "v2 <- argany(v1)[t>0] T(f1)")
		rowf("*f2", qx, qy, "v2", "")
	case TaskFallingTrends:
		rowf("f1", qx, qy, zIter, "v2 <- argany(v1)[t<0] T(f1)")
		rowf("*f2", qx, qy, "v2", "")
	default:
		return "", nil, fmt.Errorf("frontend: unknown task %d", s.Task)
	}
	if len(inputs) == 0 {
		inputs = nil
	}
	return b.String(), inputs, nil
}

func defaultRepK(k int) int {
	if k < 5 {
		return k
	}
	return 5
}

func (s *Spec) viz() string {
	if s.VizType == "" && s.Agg == "" {
		return ""
	}
	ty := s.VizType
	if ty == "" {
		ty = "bar"
	}
	if s.Agg == "" {
		return ty
	}
	return fmt.Sprintf("%s.(y=agg('%s'))", ty, s.Agg)
}

func (s *Spec) constraints() string {
	parts := make([]string, 0, len(s.Filters))
	for _, f := range s.Filters {
		val := f.Value
		if !isNumeric(val) {
			val = "'" + strings.ReplaceAll(val, "'", "''") + "'"
		}
		op := f.Op
		if op == "" {
			op = "="
		}
		parts = append(parts, fmt.Sprintf("%s %s %s", f.Attr, op, val))
	}
	return strings.Join(parts, " AND ")
}

func isNumeric(s string) bool {
	if s == "" {
		return false
	}
	dot := false
	for i, c := range s {
		switch {
		case c >= '0' && c <= '9':
		case c == '-' && i == 0:
		case c == '.' && !dot:
			dot = true
		default:
			return false
		}
	}
	return true
}
