package frontend

import (
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/vis"
	"repro/internal/workload"
	"repro/internal/zexec"
	"repro/internal/zql"
)

func db() engine.DB {
	return engine.NewRowStore(workload.Sales(workload.SalesConfig{
		Rows: 20000, Products: 12, Years: 8, Cities: 4, Seed: 9,
	}))
}

// execute translates and runs a spec end to end.
func execute(t *testing.T, s Spec) *zexec.Result {
	t.Helper()
	src, rawInputs, err := s.ToZQL()
	if err != nil {
		t.Fatalf("ToZQL: %v", err)
	}
	q, err := zql.Parse(src)
	if err != nil {
		t.Fatalf("generated ZQL does not parse: %v\n%s", err, src)
	}
	opts := zexec.Options{Table: "sales", Opt: zexec.InterTask, Seed: 4}
	if rawInputs != nil {
		opts.Inputs = map[string]*vis.Visualization{}
		for name, ys := range rawInputs {
			opts.Inputs[name] = vis.FromFloats(ys)
		}
	}
	res, err := zexec.Run(q, db(), opts)
	if err != nil {
		t.Fatalf("generated ZQL does not execute: %v\n%s", err, src)
	}
	return res
}

func TestPlainSelection(t *testing.T) {
	res := execute(t, Spec{X: "year", Y: "revenue", Z: "product", Agg: "sum", VizType: "bar"})
	if res.Outputs[0].Len() != 12 {
		t.Errorf("%d visualizations, want one per product", res.Outputs[0].Len())
	}
	if res.Outputs[0].Vis[0].VizType != "bar" {
		t.Error("viz type lost in translation")
	}
}

func TestFixedSliceSelection(t *testing.T) {
	res := execute(t, Spec{X: "year", Y: "revenue", Z: "product", ZValue: "product0003"})
	if res.Outputs[0].Len() != 1 || res.Outputs[0].Vis[0].Slices[0].Value != "product0003" {
		t.Errorf("fixed slice broken: %v", res.Outputs[0].Combos())
	}
}

func TestSimilarityButton(t *testing.T) {
	res := execute(t, Spec{
		X: "year", Y: "revenue", Z: "product",
		Task: TaskSimilarity, K: 2,
		Drawn: []float64{1, 2, 3, 4, 5, 6, 7, 8},
	})
	v2 := res.Bindings["v2"]
	if len(v2) != 2 {
		t.Fatalf("v2 = %v", v2)
	}
	// Products 0, 4, 8 rise by construction (trendShape: p%4==0).
	for _, p := range v2 {
		if p != "product0000" && p != "product0004" && p != "product0008" {
			t.Errorf("similarity hit %v is not a rising product", p)
		}
	}
}

func TestDissimilarityButton(t *testing.T) {
	res := execute(t, Spec{
		X: "year", Y: "revenue", Z: "product",
		Task: TaskDissimilarity, K: 1,
		Drawn: []float64{1, 2, 3, 4, 5, 6, 7, 8},
	})
	v2 := res.Bindings["v2"]
	// Falling products are p%4==1.
	if len(v2) != 1 || (v2[0] != "product0001" && v2[0] != "product0005" && v2[0] != "product0009") {
		t.Errorf("dissimilarity hit = %v, want a falling product", v2)
	}
}

func TestRepresentativeButton(t *testing.T) {
	res := execute(t, Spec{X: "year", Y: "revenue", Z: "product", Task: TaskRepresentative, K: 4})
	if res.Outputs[0].Len() != 4 {
		t.Errorf("%d representatives", res.Outputs[0].Len())
	}
}

func TestOutlierButton(t *testing.T) {
	res := execute(t, Spec{X: "year", Y: "revenue", Z: "product", Task: TaskOutlier, K: 2})
	if res.Outputs[0].Len() != 2 {
		t.Errorf("%d outliers", res.Outputs[0].Len())
	}
}

func TestTrendButtons(t *testing.T) {
	up := execute(t, Spec{X: "year", Y: "revenue", Z: "product", Task: TaskRisingTrends})
	down := execute(t, Spec{X: "year", Y: "revenue", Z: "product", Task: TaskFallingTrends})
	// Products cycle rising/falling/flat/spiked (p%4). Flat products have
	// arbitrary-sign noise trends after normalization, so assert the planted
	// risers and fallers land on the correct side, not exact counts.
	inBindings := func(res *zexec.Result, v string) bool {
		for _, x := range res.Bindings["v2"] {
			if x == v {
				return true
			}
		}
		return false
	}
	for _, riser := range []string{"product0000", "product0004", "product0008"} {
		if !inBindings(up, riser) {
			t.Errorf("rising trends missing %s: %v", riser, up.Bindings["v2"])
		}
		if inBindings(down, riser) {
			t.Errorf("falling trends wrongly include %s", riser)
		}
	}
	for _, faller := range []string{"product0001", "product0005", "product0009"} {
		if !inBindings(down, faller) {
			t.Errorf("falling trends missing %s: %v", faller, down.Bindings["v2"])
		}
		if inBindings(up, faller) {
			t.Errorf("rising trends wrongly include %s", faller)
		}
	}
}

func TestFiltersTranslateToConstraints(t *testing.T) {
	src, _, err := (&Spec{
		X: "year", Y: "revenue", Z: "product",
		Filters: []Filter{
			{Attr: "country", Value: "US"},
			{Attr: "year", Op: ">=", Value: "2010"},
			{Attr: "city", Op: "LIKE", Value: "city0%"},
		},
	}).ToZQL()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"country = 'US'", "year >= 2010", "city LIKE 'city0%'"} {
		if !strings.Contains(src, want) {
			t.Errorf("constraints missing %q:\n%s", want, src)
		}
	}
	res := execute(t, Spec{X: "year", Y: "revenue", Z: "product",
		Filters: []Filter{{Attr: "country", Value: "US"}}})
	for _, v := range res.Outputs[0].Vis {
		_ = v // filtered execution succeeds; per-product US-only data
	}
}

func TestSpecValidation(t *testing.T) {
	if _, _, err := (&Spec{Y: "sales"}).ToZQL(); err == nil {
		t.Error("missing x should error")
	}
	if _, _, err := (&Spec{X: "year", Y: "sales", Z: "product", Task: TaskSimilarity}).ToZQL(); err == nil {
		t.Error("similarity without a drawing should error")
	}
	if _, _, err := (&Spec{X: "year", Y: "sales", Task: TaskOutlier}).ToZQL(); err == nil {
		t.Error("task without z should error")
	}
}

// TestEveryTaskGeneratesParsableZQL is the front-end's contract: whatever
// the panels produce must be valid ZQL.
func TestEveryTaskGeneratesParsableZQL(t *testing.T) {
	for task := TaskNone; task <= TaskFallingTrends; task++ {
		s := Spec{X: "year", Y: "revenue", Z: "product", Task: task, Drawn: []float64{1, 2, 3}}
		src, _, err := s.ToZQL()
		if err != nil {
			t.Fatalf("task %d: %v", task, err)
		}
		if _, err := zql.Parse(src); err != nil {
			t.Fatalf("task %d generates invalid ZQL: %v\n%s", task, err, src)
		}
	}
}
