package vis

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestKeyAndLabel(t *testing.T) {
	v := &Visualization{XAttr: "year", YAttr: "sales", Slices: []Slice{{Attr: "product", Value: "chair"}}}
	if v.Key() != "year|sales|product=chair" {
		t.Errorf("Key = %q", v.Key())
	}
	if v.Label() != "sales vs year [product=chair]" {
		t.Errorf("Label = %q", v.Label())
	}
	bare := &Visualization{XAttr: "x", YAttr: "y"}
	if bare.Label() != "y vs x" {
		t.Errorf("Label = %q", bare.Label())
	}
}

func TestSortPointsAndYs(t *testing.T) {
	v := FromSeries("year", "sales",
		[]dataset.Value{dataset.IV(2015), dataset.IV(2013), dataset.IV(2014)},
		[]float64{3, 1, 2})
	v.SortPoints()
	ys := v.Ys()
	if ys[0] != 1 || ys[1] != 2 || ys[2] != 3 {
		t.Errorf("sorted ys = %v", ys)
	}
}

func TestDomainUnion(t *testing.T) {
	a := FromFloats([]float64{1, 2})    // x = 0, 1
	b := FromFloats([]float64{1, 2, 3}) // x = 0, 1, 2
	d := Domain([]*Visualization{a, b})
	if len(d) != 3 || d[0].Int() != 0 || d[2].Int() != 2 {
		t.Errorf("domain = %v", d)
	}
}

func TestVectorInterpolation(t *testing.T) {
	v := FromSeries("x", "y",
		[]dataset.Value{dataset.IV(0), dataset.IV(2), dataset.IV(5)},
		[]float64{0, 4, 10})
	domain := []dataset.Value{
		dataset.IV(0), dataset.IV(1), dataset.IV(2), dataset.IV(3), dataset.IV(4), dataset.IV(5),
	}
	got := v.Vector(domain)
	want := []float64{0, 2, 4, 6, 8, 10}
	for i := range want {
		if !almostEq(got[i], want[i]) {
			t.Errorf("vector[%d] = %v, want %v (full: %v)", i, got[i], want[i], got)
		}
	}
}

func TestVectorClampsEnds(t *testing.T) {
	v := FromSeries("x", "y", []dataset.Value{dataset.IV(2)}, []float64{7})
	domain := []dataset.Value{dataset.IV(0), dataset.IV(2), dataset.IV(4)}
	got := v.Vector(domain)
	if got[0] != 7 || got[1] != 7 || got[2] != 7 {
		t.Errorf("clamped vector = %v", got)
	}
	empty := &Visualization{}
	if got := empty.Vector(domain); got[0] != 0 || got[2] != 0 {
		t.Errorf("empty vector = %v", got)
	}
}

func TestEuclidean(t *testing.T) {
	if !almostEq(Euclidean([]float64{0, 0}, []float64{3, 4}), 5) {
		t.Error("3-4-5 broken")
	}
	if Euclidean([]float64{1, 2}, []float64{1, 2}) != 0 {
		t.Error("identity broken")
	}
}

func TestDTW(t *testing.T) {
	a := []float64{1, 2, 3}
	if DTW(a, a) != 0 {
		t.Error("DTW(a,a) must be 0")
	}
	// A shifted copy should be closer under DTW than under Euclidean.
	b := []float64{1, 1, 2, 3}
	if DTW(a, b) > 0.01 {
		t.Errorf("DTW of time-shifted series = %v, want ~0", DTW(a, b))
	}
	if math.IsInf(DTW(nil, a), 1) != true {
		t.Error("DTW with empty series must be +inf")
	}
}

func TestKLAndEMDProperties(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{4, 3, 2, 1}
	if !almostEq(KLDivergence(a, a), 0) {
		t.Errorf("KL(a,a) = %v", KLDivergence(a, a))
	}
	if KLDivergence(a, b) <= 0 {
		t.Error("KL of different series must be positive")
	}
	if !almostEq(KLDivergence(a, b), KLDivergence(b, a)) {
		t.Error("symmetrized KL must be symmetric")
	}
	if !almostEq(EMD1D(a, a), 0) {
		t.Errorf("EMD(a,a) = %v", EMD1D(a, a))
	}
	if EMD1D(a, b) <= 0 {
		t.Error("EMD of different series must be positive")
	}
}

func TestZNormalize(t *testing.T) {
	got := ZNormalize([]float64{2, 4, 6})
	var mean, variance float64
	for _, x := range got {
		mean += x
	}
	mean /= 3
	for _, x := range got {
		variance += (x - mean) * (x - mean)
	}
	if !almostEq(mean, 0) || !almostEq(variance/3, 1) {
		t.Errorf("znorm = %v (mean %v var %v)", got, mean, variance/3)
	}
	flat := ZNormalize([]float64{5, 5, 5})
	if flat[0] != 0 || flat[2] != 0 {
		t.Errorf("constant series should normalize to zeros: %v", flat)
	}
	if len(ZNormalize(nil)) != 0 {
		t.Error("empty normalize should be empty")
	}
}

func TestMinMaxNormalize(t *testing.T) {
	got := MinMaxNormalize([]float64{10, 20, 30})
	if !almostEq(got[0], 0) || !almostEq(got[1], 0.5) || !almostEq(got[2], 1) {
		t.Errorf("minmax = %v", got)
	}
	flat := MinMaxNormalize([]float64{3, 3})
	if flat[0] != 0.5 {
		t.Errorf("flat minmax = %v", flat)
	}
}

func TestTrendSignsAndScale(t *testing.T) {
	up := FromFloats([]float64{1, 2, 3, 4, 5})
	down := FromFloats([]float64{5, 4, 3, 2, 1})
	flat := FromFloats([]float64{3, 3, 3, 3})
	if Trend(up) <= 0 {
		t.Errorf("Trend(up) = %v", Trend(up))
	}
	if Trend(down) >= 0 {
		t.Errorf("Trend(down) = %v", Trend(down))
	}
	if !almostEq(Trend(flat), 0) {
		t.Errorf("Trend(flat) = %v", Trend(flat))
	}
	if Trend(FromFloats([]float64{1})) != 0 {
		t.Error("single point trend must be 0")
	}
	// Scale invariance: trend of normalized shape, not magnitude.
	big := FromFloats([]float64{1000, 2000, 3000})
	small := FromFloats([]float64{1, 2, 3})
	if !almostEq(Trend(big), Trend(small)) {
		t.Errorf("Trend must be scale invariant: %v vs %v", Trend(big), Trend(small))
	}
}

func TestDistanceNormalizesShape(t *testing.T) {
	a := FromFloats([]float64{1, 2, 3})
	b := FromFloats([]float64{100, 200, 300})
	c := FromFloats([]float64{3, 2, 1})
	dSame := Distance(a, b, DefaultMetric)
	dDiff := Distance(a, c, DefaultMetric)
	if !almostEq(dSame, 0) {
		t.Errorf("distance of same shape at different scale = %v, want 0", dSame)
	}
	if dDiff <= dSame {
		t.Error("opposite shapes must be farther than scaled copies")
	}
	raw, _ := MetricByName("raw-euclidean")
	if Distance(a, b, raw) == 0 {
		t.Error("raw metric must see the magnitude difference")
	}
}

func TestMetricByName(t *testing.T) {
	for _, name := range []string{"", "euclidean", "l2", "dtw", "kl", "emd", "raw-dtw"} {
		if _, err := MetricByName(name); err != nil {
			t.Errorf("MetricByName(%q): %v", name, err)
		}
	}
	if _, err := MetricByName("cosine"); err == nil {
		t.Error("unknown metric should error")
	}
}

func TestDistanceSymmetryQuick(t *testing.T) {
	clamp := func(xs []float64) []float64 {
		out := make([]float64, len(xs))
		for i, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = 0
			}
			out[i] = math.Remainder(x, 1000)
		}
		return out
	}
	f := func(ay, by []float64) bool {
		if len(ay) < 2 || len(by) < 2 {
			return true
		}
		a, b := FromFloats(clamp(ay)), FromFloats(clamp(by))
		d1, d2 := Distance(a, b, DefaultMetric), Distance(b, a, DefaultMetric)
		return almostEq(d1, d2) && d1 >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func clusterData() []*Visualization {
	var vs []*Visualization
	// Three well-separated shapes: rising, falling, flat-with-spike.
	for i := 0; i < 5; i++ {
		o := float64(i) * 0.01
		vs = append(vs, FromFloats([]float64{0 + o, 1, 2, 3, 4 + o}))
	}
	for i := 0; i < 5; i++ {
		o := float64(i) * 0.01
		vs = append(vs, FromFloats([]float64{4 + o, 3, 2, 1, 0 - o}))
	}
	for i := 0; i < 5; i++ {
		o := float64(i) * 0.01
		vs = append(vs, FromFloats([]float64{1, 1 + o, 5, 1, 1 - o}))
	}
	return vs
}

func TestKMeansSeparatesClusters(t *testing.T) {
	vs := clusterData()
	vectors := vectorize(vs, DefaultMetric)
	res := KMeans(vectors, 3, 42, 50)
	if len(res.Centroids) != 3 {
		t.Fatalf("%d centroids", len(res.Centroids))
	}
	// All members of each ground-truth group must share an assignment.
	for g := 0; g < 3; g++ {
		want := res.Assign[g*5]
		for i := 1; i < 5; i++ {
			if res.Assign[g*5+i] != want {
				t.Errorf("group %d split: %v", g, res.Assign)
			}
		}
	}
}

func TestKMeansEdgeCases(t *testing.T) {
	if res := KMeans(nil, 3, 1, 10); len(res.Centroids) != 0 {
		t.Error("empty input should produce no centroids")
	}
	vectors := [][]float64{{1, 1}, {2, 2}}
	res := KMeans(vectors, 5, 1, 10)
	if len(res.Centroids) != 2 {
		t.Errorf("k clamped to n: %d centroids", len(res.Centroids))
	}
	// Identical points: must not loop forever or panic.
	same := [][]float64{{1}, {1}, {1}}
	res = KMeans(same, 2, 1, 10)
	if len(res.Assign) != 3 {
		t.Error("identical points assignment broken")
	}
}

func TestRepresentativePicksOnePerCluster(t *testing.T) {
	vs := clusterData()
	reps := Representative(vs, 3, DefaultMetric, 42)
	if len(reps) != 3 {
		t.Fatalf("reps = %v", reps)
	}
	groups := map[int]bool{}
	for _, r := range reps {
		groups[r/5] = true
	}
	if len(groups) != 3 {
		t.Errorf("representatives should span all clusters: %v", reps)
	}
	if got := Representative(nil, 3, DefaultMetric, 1); got != nil {
		t.Error("empty input should give nil")
	}
	if got := Representative(vs, 0, DefaultMetric, 1); got != nil {
		t.Error("k=0 should give nil")
	}
}

func TestOutliersFindsThePlantedOutlier(t *testing.T) {
	vs := clusterData()
	// Plant a wildly different shape.
	vs = append(vs, FromFloats([]float64{10, -10, 10, -10, 10}))
	out := Outliers(vs, 1, DefaultMetric, 42)
	if len(out) != 1 || out[0] != len(vs)-1 {
		t.Errorf("outlier = %v, want [%d]", out, len(vs)-1)
	}
	if got := Outliers(nil, 1, DefaultMetric, 1); got != nil {
		t.Error("empty outliers should be nil")
	}
}

func TestFillMissingAllMissing(t *testing.T) {
	ys := []float64{0, 0, 0}
	fillMissing(ys, []bool{true, true, true})
	if ys[0] != 0 || ys[2] != 0 {
		t.Errorf("all-missing fill = %v", ys)
	}
}
