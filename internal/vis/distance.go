package vis

import (
	"fmt"
	"math"
	"strconv"
)

// DistanceFunc measures dissimilarity between two equal-length series.
type DistanceFunc func(a, b []float64) float64

// BoundedDistanceFunc computes the same distance as its unbounded sibling
// but may abandon early once the result provably exceeds bound. The boolean
// is true when the call was abandoned; the value is then +Inf and only means
// "greater than bound". When false, the value is bit-identical to the
// unbounded kernel — the property the process-phase differential tests pin.
type BoundedDistanceFunc func(a, b []float64, bound float64) (float64, bool)

// Euclidean is the ℓ2 distance, the paper's default D for the task
// processors (Section 7.2 uses ℓ2 for similarity search).
func Euclidean(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// EuclideanBounded is Euclidean with early abandoning: squared differences
// accumulate in the same order as the unbounded kernel, and the loop bails as
// soon as the partial sum alone proves the distance exceeds bound. Partial
// sums only grow, so abandoning is exact: a completed call returns the very
// bits Euclidean would. The cheap squared comparison is confirmed in score
// space (sqrt is monotone) before abandoning, so a distance exactly equal to
// the bound always completes — bound² can round below the true squared
// distance, and top-k ties at the k-th score must survive to be broken by
// index. An infinite bound never abandons.
func EuclideanBounded(a, b []float64, bound float64) (float64, bool) {
	limit := bound * bound
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
		if s > limit && math.Sqrt(s) > bound {
			return math.Inf(1), true
		}
	}
	return math.Sqrt(s), false
}

// DTW is dynamic time warping with unconstrained warping window, the second
// metric the conclusion names ("euclidean and distance time warping").
func DTW(a, b []float64) float64 {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return math.Inf(1)
	}
	prev := make([]float64, m+1)
	cur := make([]float64, m+1)
	for j := 1; j <= m; j++ {
		prev[j] = math.Inf(1)
	}
	for i := 1; i <= n; i++ {
		cur[0] = math.Inf(1)
		for j := 1; j <= m; j++ {
			cost := math.Abs(a[i-1] - b[j-1])
			best := prev[j]
			if prev[j-1] < best {
				best = prev[j-1]
			}
			if cur[j-1] < best {
				best = cur[j-1]
			}
			if i == 1 && j == 1 {
				best = 0
			}
			cur[j] = cost + best
		}
		prev, cur = cur, prev
	}
	return prev[m]
}

// DTWBounded is DTW constrained to a Sakoe-Chiba band of half-width window
// (window < 0 means unconstrained) with row-wise early abandoning: every
// warping path visits every row of the cost matrix and cell values along a
// path never decrease, so once the minimum over a whole row exceeds bound the
// final distance must too and the call returns (+Inf, true). With an
// unconstrained window and no abandon the cell arithmetic matches DTW
// operation for operation, so the result is bit-identical. The band widens to
// the length difference so the end-to-end corner stays reachable.
func DTWBounded(a, b []float64, window int, bound float64) (float64, bool) {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return math.Inf(1), false
	}
	w := window
	if w < 0 {
		w = n + m // unconstrained: the band covers the whole matrix
	}
	if d := m - n; d > 0 && w < d {
		w = d
	}
	if d := n - m; d > 0 && w < d {
		w = d
	}
	prev := make([]float64, m+1)
	cur := make([]float64, m+1)
	for j := 1; j <= m; j++ {
		prev[j] = math.Inf(1)
	}
	for i := 1; i <= n; i++ {
		lo, hi := i-w, i+w
		if lo < 1 {
			lo = 1
		}
		if hi > m {
			hi = m
		}
		// Only cells the band can read need resetting: this row reads
		// cur[lo-1], and the next row's band shifts by at most one, so it
		// reads prev over [lo-1, hi+1]. Anything further out is never
		// touched, which keeps a narrow band O(n·w) instead of O(n·m).
		cur[lo-1] = math.Inf(1)
		if hi < m {
			cur[hi+1] = math.Inf(1)
		}
		rowMin := math.Inf(1)
		for j := lo; j <= hi; j++ {
			cost := math.Abs(a[i-1] - b[j-1])
			best := prev[j]
			if prev[j-1] < best {
				best = prev[j-1]
			}
			if cur[j-1] < best {
				best = cur[j-1]
			}
			if i == 1 && j == 1 {
				best = 0
			}
			cur[j] = cost + best
			if cur[j] < rowMin {
				rowMin = cur[j]
			}
		}
		if rowMin > bound {
			return math.Inf(1), true
		}
		prev, cur = cur, prev
	}
	return prev[m], false
}

// KLDivergence converts both series into probability distributions (shifted
// to be non-negative, normalized to sum 1, epsilon-smoothed) and returns the
// symmetrized Kullback-Leibler divergence, one of the distance choices the
// paper cites for D.
func KLDivergence(a, b []float64) float64 {
	p := toDistribution(a)
	q := toDistribution(b)
	var kl1, kl2 float64
	for i := range p {
		kl1 += p[i] * math.Log(p[i]/q[i])
		kl2 += q[i] * math.Log(q[i]/p[i])
	}
	return (kl1 + kl2) / 2
}

// EMD1D is the 1-dimensional Earth Mover's Distance between the induced
// distributions: the L1 distance between their CDFs.
func EMD1D(a, b []float64) float64 {
	p := toDistribution(a)
	q := toDistribution(b)
	var cum, emd float64
	for i := range p {
		cum += p[i] - q[i]
		emd += math.Abs(cum)
	}
	return emd
}

const distEps = 1e-9

func toDistribution(xs []float64) []float64 {
	out := make([]float64, len(xs))
	min := math.Inf(1)
	for _, x := range xs {
		if x < min {
			min = x
		}
	}
	var sum float64
	for i, x := range xs {
		out[i] = x - min + distEps
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// ZNormalize shifts the series to mean 0 and scales to standard deviation 1;
// a constant series normalizes to all zeros. zenvisage normalizes before
// comparing so that shape, not magnitude, drives similarity.
func ZNormalize(xs []float64) []float64 {
	out := make([]float64, len(xs))
	if len(xs) == 0 {
		return out
	}
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var variance float64
	for _, x := range xs {
		variance += (x - mean) * (x - mean)
	}
	variance /= float64(len(xs))
	sd := math.Sqrt(variance)
	if sd < distEps {
		return out
	}
	for i, x := range xs {
		out[i] = (x - mean) / sd
	}
	return out
}

// MinMaxNormalize scales the series into [0, 1]; a constant series maps to
// all 0.5.
func MinMaxNormalize(xs []float64) []float64 {
	out := make([]float64, len(xs))
	if len(xs) == 0 {
		return out
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if hi-lo < distEps {
		for i := range out {
			out[i] = 0.5
		}
		return out
	}
	for i, x := range xs {
		out[i] = (x - lo) / (hi - lo)
	}
	return out
}

// Metric bundles a distance function with the normalization zenvisage
// applies before measuring.
type Metric struct {
	Name      string
	Fn        DistanceFunc
	Normalize bool
	// Window is the Sakoe-Chiba band half-width for DTW metrics (0 =
	// unconstrained). It is part of the metric's identity: the sequential
	// oracle and the pruned executor see the same band, so pruning never
	// changes results.
	Window int
	// Bounded, when set, computes the same distance as Fn but may abandon
	// once the result provably exceeds the caller's bound — the hook the
	// process phase's top-k search uses to skip hopeless candidates.
	Bounded BoundedDistanceFunc
}

// DefaultMetric is z-normalized Euclidean distance.
var DefaultMetric = Metric{Name: "euclidean", Fn: Euclidean, Normalize: true, Bounded: EuclideanBounded}

// MetricByName resolves a metric name used in ZQL process columns and CLI
// flags: euclidean, dtw, kl, emd (each with a raw- prefix to skip
// normalization). DTW accepts a Sakoe-Chiba band half-width suffix, as in
// "dtw:8". Euclidean and DTW carry early-abandoning bounded kernels; KL and
// EMD need the whole series before anything is comparable, so they don't.
func MetricByName(name string) (Metric, error) {
	norm := true
	if rest, ok := cutPrefix(name, "raw-"); ok {
		norm = false
		name = rest
	}
	if rest, ok := cutPrefix(name, "dtw:"); ok {
		w, err := strconv.Atoi(rest)
		if err != nil || w < 1 {
			return Metric{}, fmt.Errorf("vis: bad DTW band width in %q (want dtw:N with N >= 1)", name)
		}
		return dtwMetric(norm, w), nil
	}
	switch name {
	case "", "euclidean", "l2":
		return Metric{Name: "euclidean", Fn: Euclidean, Normalize: norm, Bounded: EuclideanBounded}, nil
	case "dtw":
		return dtwMetric(norm, 0), nil
	case "kl":
		return Metric{Name: "kl", Fn: KLDivergence, Normalize: norm}, nil
	case "emd":
		return Metric{Name: "emd", Fn: EMD1D, Normalize: norm}, nil
	}
	return Metric{}, fmt.Errorf("vis: unknown distance metric %q", name)
}

// dtwMetric builds the (possibly banded) DTW metric; window 0 means
// unconstrained. Fn and Bounded share one kernel so their completed results
// agree bit for bit.
func dtwMetric(norm bool, window int) Metric {
	w := window
	if w == 0 {
		w = -1
	}
	name := "dtw"
	if window > 0 {
		name = fmt.Sprintf("dtw:%d", window)
	}
	return Metric{
		Name:      name,
		Normalize: norm,
		Window:    window,
		Fn: func(a, b []float64) float64 {
			d, _ := DTWBounded(a, b, w, math.Inf(1))
			return d
		},
		Bounded: func(a, b []float64, bound float64) (float64, bool) {
			return DTWBounded(a, b, w, bound)
		},
	}
}

func cutPrefix(s, prefix string) (string, bool) {
	if len(s) >= len(prefix) && s[:len(prefix)] == prefix {
		return s[len(prefix):], true
	}
	return s, false
}

// Distance aligns two visualizations and measures the metric between them —
// the D(f1, f2) of ZQL process columns. Visualizations sharing x values are
// aligned on their joint domain; visualizations with fully disjoint domains
// (a user-drawn trend at x = 0..n against a chart over years) are aligned
// positionally, resampling the shorter to the longer — the way the
// front-end's drawing box maps a sketched polyline onto the chart's x-axis.
func Distance(a, b *Visualization, m Metric) float64 {
	va, vb := alignedVectors(a, b, m)
	return m.Fn(va, vb)
}

// DistanceBounded is Distance with an early-abandoning cutoff: when the
// metric carries a bounded kernel, the call may stop as soon as the distance
// provably exceeds bound (returning +Inf, true). A completed call returns
// exactly the bits Distance would — the guarantee that lets the top-k
// process executor prune without changing results. Metrics without a bounded
// kernel fall back to the full computation.
func DistanceBounded(a, b *Visualization, m Metric, bound float64) (float64, bool) {
	va, vb := alignedVectors(a, b, m)
	if m.Bounded == nil || math.IsInf(bound, 1) {
		return m.Fn(va, vb), false
	}
	return m.Bounded(va, vb, bound)
}

// alignedVectors aligns and normalizes the two visualizations the way
// Distance documents.
func alignedVectors(a, b *Visualization, m Metric) ([]float64, []float64) {
	var va, vb []float64
	if sameSortedDomain(a, b) {
		// Identical ordered x sequences — the overwhelmingly common case for
		// two visualizations of one query, whose points arrive sorted on the
		// same group-by domain. Their y series already are the vectors the
		// map-based union below would produce, at a fraction of the cost;
		// this is the alignment half of the distance hot path.
		va, vb = a.Ys(), b.Ys()
	} else if disjointDomains(a, b) {
		va, vb = a.Ys(), b.Ys()
		n := len(va)
		if len(vb) > n {
			n = len(vb)
		}
		va, vb = Resample(va, n), Resample(vb, n)
	} else {
		domain := Domain([]*Visualization{a, b})
		va, vb = a.Vector(domain), b.Vector(domain)
	}
	if m.Normalize {
		va, vb = ZNormalize(va), ZNormalize(vb)
	}
	return va, vb
}

// sameSortedDomain reports whether the two series carry an identical,
// strictly ascending x sequence. Strict ascent rules out duplicate keys (and
// NaN x values, which compare unordered), so the pairwise union the slow
// path computes is exactly this sequence and the fast path is
// result-identical.
func sameSortedDomain(a, b *Visualization) bool {
	if len(a.Points) == 0 || len(a.Points) != len(b.Points) {
		return false
	}
	for i := range a.Points {
		ax, bx := a.Points[i].X, b.Points[i].X
		if ax != bx {
			return false
		}
		if i > 0 && a.Points[i-1].X.Compare(ax) >= 0 {
			return false
		}
	}
	return true
}

// disjointDomains reports whether the two visualizations share no x value.
func disjointDomains(a, b *Visualization) bool {
	if len(a.Points) == 0 || len(b.Points) == 0 {
		return false
	}
	seen := make(map[string]bool, len(a.Points))
	for _, p := range a.Points {
		seen[p.X.String()] = true
	}
	for _, p := range b.Points {
		if seen[p.X.String()] {
			return false
		}
	}
	return true
}

// Resample linearly interpolates the series to n points, preserving its
// endpoints and shape.
func Resample(ys []float64, n int) []float64 {
	if n <= 0 || len(ys) == 0 {
		return nil
	}
	out := make([]float64, n)
	if len(ys) == 1 || n == 1 {
		for i := range out {
			out[i] = ys[0]
		}
		return out
	}
	scale := float64(len(ys)-1) / float64(n-1)
	for i := range out {
		pos := float64(i) * scale
		lo := int(pos)
		if lo >= len(ys)-1 {
			out[i] = ys[len(ys)-1]
			continue
		}
		frac := pos - float64(lo)
		out[i] = ys[lo]*(1-frac) + ys[lo+1]*frac
	}
	return out
}

// Trend is T(f): the slope of the least-squares line fit to the normalized
// series against equally spaced x positions. Positive means "growth".
func Trend(v *Visualization) float64 {
	ys := MinMaxNormalize(v.Ys())
	n := len(ys)
	if n < 2 {
		return 0
	}
	// x positions 0..n-1 scaled into [0,1] so slopes are comparable across
	// visualizations with different series lengths.
	var sumX, sumY, sumXY, sumXX float64
	for i, y := range ys {
		x := float64(i) / float64(n-1)
		sumX += x
		sumY += y
		sumXY += x * y
		sumXX += x * x
	}
	nf := float64(n)
	denom := nf*sumXX - sumX*sumX
	if math.Abs(denom) < distEps {
		return 0
	}
	return (nf*sumXY - sumX*sumY) / denom
}
