package vis

import (
	"testing"

	"repro/internal/dataset"
)

func TestAutoKFindsPlantedClusterCount(t *testing.T) {
	vs := clusterData() // three well-separated shape clusters
	got := AutoK(vs, 8, DefaultMetric, 42)
	if got != 3 {
		t.Errorf("AutoK = %d, want 3", got)
	}
}

func TestAutoKTwoClusters(t *testing.T) {
	var vs []*Visualization
	for i := 0; i < 6; i++ {
		o := float64(i) * 0.02
		vs = append(vs, FromFloats([]float64{0, 1, 2, 3, 4 + o}))
	}
	for i := 0; i < 6; i++ {
		o := float64(i) * 0.02
		vs = append(vs, FromFloats([]float64{4, 3, 2, 1, 0 - o}))
	}
	if got := AutoK(vs, 6, DefaultMetric, 42); got != 2 {
		t.Errorf("AutoK = %d, want 2", got)
	}
}

func TestAutoKDegenerate(t *testing.T) {
	if AutoK(nil, 5, DefaultMetric, 1) != 0 {
		t.Error("empty input should give 0")
	}
	// Identical shapes: one trend.
	var vs []*Visualization
	for i := 0; i < 8; i++ {
		vs = append(vs, FromFloats([]float64{1, 2, 3}))
	}
	if got := AutoK(vs, 5, DefaultMetric, 1); got != 1 {
		t.Errorf("identical shapes AutoK = %d, want 1", got)
	}
	// Fewer items than kMax.
	if got := AutoK(vs[:2], 10, DefaultMetric, 1); got < 1 || got > 2 {
		t.Errorf("tiny input AutoK = %d", got)
	}
}

func TestAutoRepresentative(t *testing.T) {
	vs := clusterData()
	reps := AutoRepresentative(vs, 8, DefaultMetric, 42)
	if len(reps) != 3 {
		t.Fatalf("auto representatives = %v, want one per planted cluster", reps)
	}
	groups := map[int]bool{}
	for _, r := range reps {
		groups[r/5] = true
	}
	if len(groups) != 3 {
		t.Errorf("representatives should span the clusters: %v", reps)
	}
}

func TestResample(t *testing.T) {
	got := Resample([]float64{0, 10}, 5)
	want := []float64{0, 2.5, 5, 7.5, 10}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("resample = %v, want %v", got, want)
		}
	}
	if got := Resample([]float64{3}, 4); got[0] != 3 || got[3] != 3 {
		t.Errorf("single point resample = %v", got)
	}
	if got := Resample([]float64{1, 2, 3}, 1); len(got) != 1 || got[0] != 1 {
		t.Errorf("n=1 resample = %v", got)
	}
	if Resample(nil, 3) != nil || Resample([]float64{1}, 0) != nil {
		t.Error("degenerate resample")
	}
	// Identity when n == len.
	id := Resample([]float64{1, 5, 2}, 3)
	if id[0] != 1 || id[1] != 5 || id[2] != 2 {
		t.Errorf("identity resample = %v", id)
	}
}

func TestDistanceAlignsDisjointDomainsPositionally(t *testing.T) {
	// A drawn rising line at x=0..3 vs the same shape over years must be
	// near-zero distance, not the clamp-union artifact.
	drawn := FromFloats([]float64{0, 1, 2, 3})
	years := FromSeries("year", "price",
		[]dataset.Value{dataset.IV(2004), dataset.IV(2005), dataset.IV(2006), dataset.IV(2007)},
		[]float64{100, 200, 300, 400})
	falling := FromSeries("year", "price",
		[]dataset.Value{dataset.IV(2004), dataset.IV(2005), dataset.IV(2006), dataset.IV(2007)},
		[]float64{400, 300, 200, 100})
	if d := Distance(drawn, years, DefaultMetric); !almostEq(d, 0) {
		t.Errorf("disjoint-domain same shape distance = %v, want 0", d)
	}
	if Distance(drawn, falling, DefaultMetric) <= Distance(drawn, years, DefaultMetric) {
		t.Error("opposite shape must be farther")
	}
	// Different lengths resample.
	short := FromFloats([]float64{0, 3})
	if d := Distance(short, years, DefaultMetric); !almostEq(d, 0) {
		t.Errorf("resampled distance = %v, want 0", d)
	}
}
