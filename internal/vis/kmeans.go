package vis

import (
	"math"
	"math/rand"
)

// KMeansResult holds the outcome of Lloyd's algorithm.
type KMeansResult struct {
	Centroids [][]float64
	Assign    []int // Assign[i] = centroid index of vector i
	Inertia   float64
}

// KMeans clusters the vectors into k groups with k-means++ seeding and
// Lloyd's iterations. The seed makes runs reproducible, which the experiment
// harness depends on. k is clamped to len(vectors).
func KMeans(vectors [][]float64, k int, seed int64, maxIter int) KMeansResult {
	n := len(vectors)
	if k > n {
		k = n
	}
	if k <= 0 || n == 0 {
		return KMeansResult{}
	}
	rng := rand.New(rand.NewSource(seed))
	dim := len(vectors[0])
	centroids := seedPlusPlus(vectors, k, rng)
	assign := make([]int, n)
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i, v := range vectors {
			best, bestD := 0, math.Inf(1)
			for c, cent := range centroids {
				d := sqDist(v, cent)
				if d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		// Recompute centroids.
		counts := make([]int, k)
		sums := make([][]float64, k)
		for c := range sums {
			sums[c] = make([]float64, dim)
		}
		for i, v := range vectors {
			c := assign[i]
			counts[c]++
			for j, x := range v {
				sums[c][j] += x
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				// Re-seed an empty cluster at the farthest point.
				centroids[c] = append([]float64(nil), vectors[farthestPoint(vectors, centroids)]...)
				continue
			}
			for j := range sums[c] {
				sums[c][j] /= float64(counts[c])
			}
			centroids[c] = sums[c]
		}
	}
	var inertia float64
	for i, v := range vectors {
		inertia += sqDist(v, centroids[assign[i]])
	}
	return KMeansResult{Centroids: centroids, Assign: assign, Inertia: inertia}
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

func seedPlusPlus(vectors [][]float64, k int, rng *rand.Rand) [][]float64 {
	n := len(vectors)
	centroids := make([][]float64, 0, k)
	centroids = append(centroids, append([]float64(nil), vectors[rng.Intn(n)]...))
	dists := make([]float64, n)
	for len(centroids) < k {
		var total float64
		for i, v := range vectors {
			d := math.Inf(1)
			for _, c := range centroids {
				if s := sqDist(v, c); s < d {
					d = s
				}
			}
			dists[i] = d
			total += d
		}
		if total == 0 {
			// All points coincide with centroids; duplicate one.
			centroids = append(centroids, append([]float64(nil), vectors[0]...))
			continue
		}
		// Weighted pick. When rounding leaves target positive after the scan,
		// fall back to the last positive-weight index — the point the exact
		// arithmetic would have chosen — instead of silently duplicating
		// vector 0.
		target := rng.Float64() * total
		idx := -1
		for i, d := range dists {
			target -= d
			if target <= 0 {
				idx = i
				break
			}
		}
		if idx < 0 {
			// Also reached when every weight is NaN (NaN y-values poison
			// sqDist and the total==0 guard), where no comparison ever
			// fires; fall back to vector 0 rather than indexing with -1.
			idx = 0
			for i := len(dists) - 1; i >= 0; i-- {
				if dists[i] > 0 {
					idx = i
					break
				}
			}
		}
		centroids = append(centroids, append([]float64(nil), vectors[idx]...))
	}
	return centroids
}

func farthestPoint(vectors [][]float64, centroids [][]float64) int {
	best, bestD := 0, -1.0
	for i, v := range vectors {
		d := math.Inf(1)
		for _, c := range centroids {
			if s := sqDist(v, c); s < d {
				d = s
			}
		}
		if d > bestD {
			best, bestD = i, d
		}
	}
	return best
}

// vectorize projects the visualizations onto their shared domain and applies
// the metric's normalization.
func vectorize(vs []*Visualization, m Metric) [][]float64 {
	domain := Domain(vs)
	out := make([][]float64, len(vs))
	for i, v := range vs {
		vec := v.Vector(domain)
		if m.Normalize {
			vec = ZNormalize(vec)
		}
		out[i] = vec
	}
	return out
}

// Representative is R(k, ·): it clusters the visualizations with k-means and
// returns the indices of the k visualizations nearest each centroid — the
// paper's default representative-finding algorithm. Results are ordered by
// cluster size (largest first) so "the most representative" comes first.
func Representative(vs []*Visualization, k int, m Metric, seed int64) []int {
	if len(vs) == 0 || k <= 0 {
		return nil
	}
	if k > len(vs) {
		k = len(vs)
	}
	vectors := vectorize(vs, m)
	res := KMeans(vectors, k, seed, 50)
	counts := make([]int, len(res.Centroids))
	nearest := make([]int, len(res.Centroids))
	nearestD := make([]float64, len(res.Centroids))
	for c := range nearestD {
		nearestD[c] = math.Inf(1)
		nearest[c] = -1
	}
	for i, v := range vectors {
		c := res.Assign[i]
		counts[c]++
		if d := sqDist(v, res.Centroids[c]); d < nearestD[c] {
			nearest[c], nearestD[c] = i, d
		}
	}
	// Order clusters by descending size, breaking ties by centroid index.
	order := make([]int, 0, len(res.Centroids))
	for c := range res.Centroids {
		if nearest[c] >= 0 {
			order = append(order, c)
		}
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && counts[order[j]] > counts[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	out := make([]int, 0, k)
	seen := make(map[int]bool)
	for _, c := range order {
		if !seen[nearest[c]] {
			seen[nearest[c]] = true
			out = append(out, nearest[c])
		}
	}
	// Duplicate shapes can collapse clusters below k; pad with the remaining
	// visualizations in order so R(k, ...) always yields min(k, n) items.
	for i := 0; len(out) < k && i < len(vs); i++ {
		if !seen[i] {
			seen[i] = true
			out = append(out, i)
		}
	}
	return out
}

// Outliers finds the k visualizations whose minimum distance to the
// representative trends is largest — the paper's outlier search task (Section
// 7.2: "apply the representative search task, then return the k
// visualizations for which the minimum distance D to the representative
// trends is maximized"). Representative trends are the k-means centroids;
// centroids of singleton clusters are excluded when any multi-member cluster
// exists, since a trend followed by exactly one visualization represents
// nothing but the candidate outlier itself.
func Outliers(vs []*Visualization, k int, m Metric, seed int64) []int {
	if len(vs) == 0 || k <= 0 {
		return nil
	}
	vectors := vectorize(vs, m)
	km := KMeans(vectors, defaultRepresentativeK(len(vs)), seed, 50)
	counts := make([]int, len(km.Centroids))
	for _, c := range km.Assign {
		counts[c]++
	}
	var trends [][]float64
	for c, cent := range km.Centroids {
		if counts[c] > 1 {
			trends = append(trends, cent)
		}
	}
	if len(trends) == 0 {
		trends = km.Centroids
	}
	scores := make([]scored, 0, len(vs))
	for i := range vs {
		minD := math.Inf(1)
		for _, tr := range trends {
			if d := m.Fn(vectors[i], tr); d < minD {
				minD = d
			}
		}
		scores = append(scores, scored{idx: i, d: minD})
	}
	if k > len(scores) {
		k = len(scores)
	}
	selectTopDesc(scores, k)
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = scores[i].idx
	}
	return out
}

// selectTopDesc partially selection-sorts the first k entries by (distance
// descending, index ascending). The index is an explicit tie-break: a plain
// `>` selection over the swapped slice would order equal-distance entries by
// whatever positions earlier swaps left them in, making outlier output for
// tied candidates depend on selection history rather than input order.
func selectTopDesc(scores []scored, k int) {
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < len(scores); j++ {
			if scores[j].d > scores[best].d ||
				(scores[j].d == scores[best].d && scores[j].idx < scores[best].idx) {
				best = j
			}
		}
		scores[i], scores[best] = scores[best], scores[i]
	}
}

// scored pairs a visualization index with its outlier distance.
type scored struct {
	idx int
	d   float64
}

// defaultRepresentativeK is the cluster count used inside outlier search;
// the paper's recommendation engine default is 5.
func defaultRepresentativeK(n int) int {
	if n < 5 {
		return n
	}
	return 5
}
