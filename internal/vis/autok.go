package vis

// AutoK picks the number of representative trends from the data rather than
// a fixed k — the paper's future-work item "automatically figure out the
// right number of representative trends based on data characteristics"
// (Section 10.1). It runs k-means for k = 1..kMax and selects the elbow of
// the inertia curve: the k maximizing the normalized second difference of
// within-cluster variance (a knee detector that needs no tuning parameter).
func AutoK(vs []*Visualization, kMax int, m Metric, seed int64) int {
	n := len(vs)
	if n == 0 {
		return 0
	}
	if kMax > n {
		kMax = n
	}
	if kMax < 1 {
		kMax = 1
	}
	vectors := vectorize(vs, m)
	inertia := make([]float64, kMax+1)
	for k := 1; k <= kMax; k++ {
		inertia[k] = KMeans(vectors, k, seed, 50).Inertia
	}
	if inertia[1] == 0 {
		// All shapes identical (after normalization): one trend suffices.
		return 1
	}
	// If even kMax leaves most variance unexplained there is no elbow;
	// otherwise find the largest drop-off in marginal gain.
	bestK, bestKnee := 1, 0.0
	for k := 2; k < kMax; k++ {
		gainHere := inertia[k-1] - inertia[k]
		gainNext := inertia[k] - inertia[k+1]
		knee := (gainHere - gainNext) / inertia[1]
		if knee > bestKnee {
			bestK, bestKnee = k, knee
		}
	}
	if bestKnee <= 0 {
		return 1
	}
	return bestK
}

// AutoRepresentative is Representative with AutoK choosing the count.
func AutoRepresentative(vs []*Visualization, kMax int, m Metric, seed int64) []int {
	k := AutoK(vs, kMax, m, seed)
	return Representative(vs, k, m, seed)
}
