package vis

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// Property tests for the distance kernels and normalizers: randomized but
// seeded, so failures reproduce.

func randSeries(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64() * 10
	}
	return out
}

// propertyMetrics is every named metric the property suite sweeps.
func propertyMetrics(t *testing.T) []Metric {
	t.Helper()
	var out []Metric
	for _, name := range []string{"euclidean", "dtw", "dtw:4", "kl", "emd", "raw-euclidean", "raw-dtw"} {
		m, err := MetricByName(name)
		if err != nil {
			t.Fatalf("MetricByName(%q): %v", name, err)
		}
		out = append(out, m)
	}
	return out
}

func TestMetricSymmetryAndNonNegativity(t *testing.T) {
	for _, m := range propertyMetrics(t) {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			for trial := 0; trial < 60; trial++ {
				n := 2 + rng.Intn(40)
				a, b := randSeries(rng, n), randSeries(rng, n)
				dab, dba := m.Fn(a, b), m.Fn(b, a)
				if dab < 0 || dba < 0 {
					t.Fatalf("trial %d: negative distance %g / %g", trial, dab, dba)
				}
				if math.Abs(dab-dba) > 1e-9*(1+math.Abs(dab)) {
					t.Fatalf("trial %d: asymmetric: d(a,b)=%g d(b,a)=%g", trial, dab, dba)
				}
				if self := m.Fn(a, a); self > 1e-9 {
					t.Fatalf("trial %d: d(a,a)=%g, want ~0", trial, self)
				}
			}
		})
	}
}

func TestEuclideanBoundedAgreesWhenBoundNotHit(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(64)
		a, b := randSeries(rng, n), randSeries(rng, n)
		full := Euclidean(a, b)
		// Bound at or above the true distance: must complete bit-identically.
		for _, bound := range []float64{full, full * 1.5, math.Inf(1)} {
			got, abandoned := EuclideanBounded(a, b, bound)
			if abandoned {
				t.Fatalf("trial %d: abandoned with bound %g >= distance %g", trial, bound, full)
			}
			if got != full {
				t.Fatalf("trial %d: bounded %v != unbounded %v", trial, got, full)
			}
		}
		// Bound strictly below: must abandon and report +Inf.
		if full > 0 {
			got, abandoned := EuclideanBounded(a, b, full*0.9)
			if !abandoned || !math.IsInf(got, 1) {
				t.Fatalf("trial %d: want abandon below bound, got (%v, %v)", trial, got, abandoned)
			}
		}
	}
}

func TestDTWBoundedAgreesWhenBoundNotHit(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 120; trial++ {
		n, m := 1+rng.Intn(32), 1+rng.Intn(32)
		a, b := randSeries(rng, n), randSeries(rng, m)
		full := DTW(a, b)
		for _, bound := range []float64{full, full + 1, math.Inf(1)} {
			got, abandoned := DTWBounded(a, b, -1, bound)
			if abandoned {
				t.Fatalf("trial %d: abandoned with bound %g >= distance %g", trial, bound, full)
			}
			if got != full {
				t.Fatalf("trial %d: bounded %v != DTW %v", trial, got, full)
			}
		}
		// Row-min abandoning is best-effort (the row minimum only lower-bounds
		// the path cost), so a bound below the distance permits either
		// outcome — but each must be self-consistent: an abandoned call
		// reports +Inf, a completed one the exact distance.
		if full > 0 {
			got, abandoned := DTWBounded(a, b, -1, full*0.9)
			if abandoned && !math.IsInf(got, 1) {
				t.Fatalf("trial %d: abandoned but returned %v, want +Inf", trial, got)
			}
			if !abandoned && got != full {
				t.Fatalf("trial %d: completed with %v, want exact DTW %v", trial, got, full)
			}
		}
	}
}

func TestDTWBandWideningAndMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 80; trial++ {
		n := 2 + rng.Intn(24)
		a, b := randSeries(rng, n), randSeries(rng, n)
		full := DTW(a, b)
		// A band at least as wide as the series is the unconstrained problem.
		if got, _ := DTWBounded(a, b, n, math.Inf(1)); got != full {
			t.Fatalf("trial %d: window %d (full width) = %v, want DTW %v", trial, n, got, full)
		}
		// Tightening the band only removes warping paths, so the distance is
		// non-decreasing as the window shrinks.
		prev := math.Inf(1)
		for _, w := range []int{0, 1, 2, 4, 8, n} {
			got, abandoned := DTWBounded(a, b, w, math.Inf(1))
			if abandoned {
				t.Fatalf("trial %d: infinite bound abandoned", trial)
			}
			if got > prev+1e-9 {
				t.Fatalf("trial %d: window %d distance %v above narrower window's %v", trial, w, got, prev)
			}
			prev = got
		}
		if prev != full {
			t.Fatalf("trial %d: widest band %v != DTW %v", trial, prev, full)
		}
	}
}

func TestNormalizationIdempotence(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	cases := [][]float64{
		{}, {3}, {5, 5, 5, 5}, // degenerate: empty, singleton, constant
	}
	for trial := 0; trial < 40; trial++ {
		cases = append(cases, randSeries(rng, 1+rng.Intn(50)))
	}
	for i, xs := range cases {
		t.Run(fmt.Sprintf("case%d", i), func(t *testing.T) {
			once := ZNormalize(xs)
			twice := ZNormalize(once)
			for j := range once {
				if math.Abs(twice[j]-once[j]) > 1e-9 {
					t.Fatalf("ZNormalize not idempotent at %d: %v vs %v", j, twice[j], once[j])
				}
			}
			mm := MinMaxNormalize(xs)
			mm2 := MinMaxNormalize(mm)
			for j := range mm {
				if mm2[j] != mm[j] {
					t.Fatalf("MinMaxNormalize not idempotent at %d: %v vs %v", j, mm2[j], mm[j])
				}
			}
		})
	}
}

// TestSelectTopDescStableTies is the regression test for the outlier
// selection fix: equal distances must order by ascending index, not by
// whatever positions earlier swaps left the tied entries in. The scores
// below are the minimal pattern where the old swap-based selection emitted
// index 2 before index 0.
func TestSelectTopDescStableTies(t *testing.T) {
	scores := []scored{{idx: 0, d: 5}, {idx: 1, d: 9}, {idx: 2, d: 5}, {idx: 3, d: 9}}
	selectTopDesc(scores, 4)
	want := []int{1, 3, 0, 2}
	for i, w := range want {
		if scores[i].idx != w {
			got := make([]int, len(scores))
			for j, s := range scores {
				got[j] = s.idx
			}
			t.Fatalf("selection order = %v, want %v", got, want)
		}
	}
}

// TestOutliersStableWithDuplicateShapes pins end-to-end determinism for tied
// candidates: duplicate shapes score identical outlier distances, so
// whenever two of them are both selected they must appear in ascending index
// order, and the whole result must repeat run after run.
func TestOutliersStableWithDuplicateShapes(t *testing.T) {
	flat := []float64{1, 1, 1, 1, 1, 2}
	spike := []float64{0, 9, 0, 9, 0, 9}
	shapes := [][]float64{flat, spike, flat, spike, flat, flat, flat, flat}
	var vs []*Visualization
	for _, ys := range shapes {
		vs = append(vs, FromFloats(ys))
	}
	sameShape := func(i, j int) bool {
		for p := range shapes[i] {
			if shapes[i][p] != shapes[j][p] {
				return false
			}
		}
		return true
	}
	m := DefaultMetric
	first := Outliers(vs, 3, m, 42)
	if len(first) != 3 {
		t.Fatalf("got %d outliers, want 3", len(first))
	}
	for a := 0; a < len(first); a++ {
		for b := a + 1; b < len(first); b++ {
			if sameShape(first[a], first[b]) && first[a] > first[b] {
				t.Errorf("outliers = %v: tied duplicates %d and %d out of index order", first, first[a], first[b])
			}
		}
	}
	for run := 0; run < 20; run++ {
		got := Outliers(vs, 3, m, 42)
		for i := range first {
			if got[i] != first[i] {
				t.Fatalf("run %d: outliers = %v, want %v (deterministic)", run, got, first)
			}
		}
	}
}

// TestRepresentativeSurvivesNaNSeries pins the k-means++ fallback: NaN
// y-values poison every seeding weight, and the weighted pick must fall back
// to a valid index instead of panicking.
func TestRepresentativeSurvivesNaNSeries(t *testing.T) {
	nan := math.NaN()
	var vs []*Visualization
	for i := 0; i < 6; i++ {
		vs = append(vs, FromFloats([]float64{nan, nan, nan, nan}))
	}
	got := Representative(vs, 3, Metric{Name: "euclidean", Fn: Euclidean}, 42)
	if len(got) != 3 {
		t.Fatalf("got %d representatives, want 3", len(got))
	}
}
