// Package vis defines the visualization data model of zenvisage and the
// paper's three exploration primitives: T (overall trend of a visualization),
// D (distance between two visualizations), and R (k-representative
// selection). Chapter 3.8 of the paper defines these as configurable black
// boxes with system defaults; the defaults here are least-squares slope for
// T, z-normalized Euclidean distance for D, and k-means centroids for R —
// exactly the defaults the paper names.
package vis

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dataset"
)

// Point is one (x, y) pair of a visualization, x kept as a dynamic value so
// that both ordinal (year) and categorical (state) x-axes work.
type Point struct {
	X dataset.Value
	Y float64
}

// Slice identifies one Z-column selection: attribute = value.
type Slice struct {
	Attr  string
	Value string
}

// Visualization is the data underlying a single rendered chart: the axis
// attributes, the slice (Z) selections that subset the data, the chart type,
// and the (x, y) series.
type Visualization struct {
	XAttr   string
	YAttr   string
	Slices  []Slice
	VizType string // "bar", "line", "scatterplot", ... ("" = rule-of-thumb)
	Points  []Point
}

// Key returns a stable identity string for the visualization: axes plus
// slices. Two visualizations with equal keys plot the same data selection.
func (v *Visualization) Key() string {
	var sb strings.Builder
	sb.WriteString(v.XAttr)
	sb.WriteByte('|')
	sb.WriteString(v.YAttr)
	for _, s := range v.Slices {
		sb.WriteByte('|')
		sb.WriteString(s.Attr)
		sb.WriteByte('=')
		sb.WriteString(s.Value)
	}
	return sb.String()
}

// Label renders a short human-readable title like "sales vs year [product=chair]".
func (v *Visualization) Label() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s vs %s", v.YAttr, v.XAttr)
	if len(v.Slices) > 0 {
		sb.WriteString(" [")
		for i, s := range v.Slices {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "%s=%s", s.Attr, s.Value)
		}
		sb.WriteString("]")
	}
	return sb.String()
}

// SortPoints orders the series by x ascending; executors emit ordered data
// but user-drawn input may not be.
func (v *Visualization) SortPoints() {
	sort.SliceStable(v.Points, func(i, j int) bool {
		return v.Points[i].X.Compare(v.Points[j].X) < 0
	})
}

// Ys returns the y series in x order.
func (v *Visualization) Ys() []float64 {
	out := make([]float64, len(v.Points))
	for i, p := range v.Points {
		out[i] = p.Y
	}
	return out
}

// FromSeries builds a visualization from parallel x/y slices.
func FromSeries(xAttr, yAttr string, xs []dataset.Value, ys []float64) *Visualization {
	v := &Visualization{XAttr: xAttr, YAttr: yAttr}
	for i := range xs {
		v.Points = append(v.Points, Point{X: xs[i], Y: ys[i]})
	}
	return v
}

// FromFloats builds a user-drawn visualization from y values at integer x
// positions, the shape the front-end's drawing box produces.
func FromFloats(ys []float64) *Visualization {
	v := &Visualization{XAttr: "x", YAttr: "y"}
	for i, y := range ys {
		v.Points = append(v.Points, Point{X: dataset.IV(int64(i)), Y: y})
	}
	return v
}

// Domain returns the sorted union of x keys across the visualizations,
// rendered as strings; it is the shared coordinate system used when
// vectorizing visualizations for distance computation and clustering.
func Domain(vs []*Visualization) []dataset.Value {
	seen := make(map[string]dataset.Value)
	for _, v := range vs {
		for _, p := range v.Points {
			seen[p.X.String()] = p.X
		}
	}
	out := make([]dataset.Value, 0, len(seen))
	for _, v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// Vector projects the visualization onto the given x domain, filling missing
// x positions by linear interpolation between neighbours (the paper's future
// work names interpolation for missing points; endpoints clamp).
func (v *Visualization) Vector(domain []dataset.Value) []float64 {
	byX := make(map[string]float64, len(v.Points))
	for _, p := range v.Points {
		byX[p.X.String()] = p.Y
	}
	out := make([]float64, len(domain))
	missing := make([]bool, len(domain))
	for i, x := range domain {
		if y, ok := byX[x.String()]; ok {
			out[i] = y
		} else {
			missing[i] = true
		}
	}
	fillMissing(out, missing)
	return out
}

// fillMissing linearly interpolates runs of missing values; leading and
// trailing runs clamp to the nearest present value; all-missing yields zeros.
func fillMissing(ys []float64, missing []bool) {
	first := -1
	for i, m := range missing {
		if !m {
			first = i
			break
		}
	}
	if first == -1 {
		return
	}
	for i := 0; i < first; i++ {
		ys[i] = ys[first]
	}
	prev := first
	for i := first + 1; i < len(ys); i++ {
		if missing[i] {
			continue
		}
		if i > prev+1 {
			step := (ys[i] - ys[prev]) / float64(i-prev)
			for j := prev + 1; j < i; j++ {
				ys[j] = ys[prev] + step*float64(j-prev)
			}
		}
		prev = i
	}
	for i := prev + 1; i < len(ys); i++ {
		ys[i] = ys[prev]
	}
}
