// Package trace is the dependency-free span library behind per-query
// execution tracing: EXPLAIN ANALYZE trees, the slow-query log, and the
// zen_stage_duration_seconds histograms all render from the same spans, so
// they can never disagree about where a request's time went.
//
// The design optimizes for the common case — tracing OFF — being free. A nil
// *Span is a fully valid no-op recorder: every method has a nil receiver
// fast path, so an uninstrumented request pays one nil-check per span site
// and zero allocations (pinned by TestNoopZeroAlloc). Instrumented requests
// pay a mutex and a few small allocations per span, which is noise next to
// the work the span measures.
//
// Spans form a tree. A root is minted by New (which also assigns the W3C
// trace ID, honoring an inbound traceparent header via ParseTraceparent);
// children attach with StartChild and may be created concurrently from many
// goroutines — the scatter-gather engine does exactly that. Children are
// bounded per span (MaxChildren); beyond the bound the child count is still
// recorded and surfaces as droppedChildren in the rendered tree, so a
// truncated trace is visibly truncated. Timing uses the monotonic clock
// (time.Now/Since).
package trace

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"
)

// MaxChildren bounds the children recorded per span. The bound keeps a
// pathological request (thousands of segments, huge batches) from turning
// its own trace into the memory problem; dropped children are counted and
// rendered as a truncation marker.
const MaxChildren = 64

// attrKind discriminates the typed attribute value.
type attrKind uint8

const (
	attrStr attrKind = iota
	attrInt
	attrFloat
	attrBool
)

// Attr is one typed key/value annotation on a span. Values are typed fields
// rather than an interface so that setting an attribute on a no-op (nil)
// span never boxes — the zero-allocation guarantee covers attr sites too.
type Attr struct {
	Key  string
	kind attrKind
	s    string
	i    int64
	f    float64
	b    bool
}

// Value returns the attribute's value as an any, for JSON rendering.
func (a Attr) Value() any {
	switch a.kind {
	case attrInt:
		return a.i
	case attrFloat:
		return a.f
	case attrBool:
		return a.b
	default:
		return a.s
	}
}

// Trace is one request's span tree plus its correlation identity: the W3C
// trace ID (inbound traceparent or freshly minted) and the serving layer's
// request ID, stamped into the root so log lines, slow-log entries, and
// EXPLAIN output all join on the same keys.
type Trace struct {
	// TraceID is 32 lowercase hex digits (the W3C trace-id field).
	TraceID string
	// RequestID is the serving layer's X-Request-ID, when there is one.
	RequestID string
	// Root is the request-level span every stage hangs off.
	Root *Span

	ids atomic.Uint64 // span ID allocator
}

// New mints a trace whose root span is started now. traceID, when non-empty,
// is adopted verbatim (the inbound traceparent case); otherwise a fresh
// 16-byte random ID is generated.
func New(rootName, traceID string) *Trace {
	if traceID == "" {
		var buf [16]byte
		if _, err := rand.Read(buf[:]); err == nil {
			traceID = hex.EncodeToString(buf[:])
		} else {
			traceID = "00000000000000000000000000000000"
		}
	}
	t := &Trace{TraceID: traceID}
	t.Root = &Span{trace: t, id: t.ids.Add(1), name: rootName, start: time.Now()}
	return t
}

// Span is one timed stage of a request. The zero *Span (nil) is a valid
// no-op: all methods are safe and free on it. A non-nil Span is safe for
// concurrent use — children may be started and attributes set from many
// goroutines.
type Span struct {
	id    uint64
	name  string
	start time.Time
	trace *Trace

	mu       sync.Mutex
	dur      time.Duration
	ended    bool
	attrs    []Attr
	children []*Span
	dropped  int
}

// Trace returns the owning trace, or nil on a no-op span.
func (s *Span) Trace() *Trace {
	if s == nil {
		return nil
	}
	return s.trace
}

// StartChild starts a new child span. On a nil receiver it returns nil (the
// no-op propagates down the tree for free). Children beyond MaxChildren are
// not recorded but are counted, so the rendered tree carries a truncation
// marker instead of silently looking complete.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now(), trace: s.trace}
	if c.trace != nil {
		c.id = c.trace.ids.Add(1)
	}
	s.mu.Lock()
	if len(s.children) >= MaxChildren {
		s.dropped++
		s.mu.Unlock()
		// The child still times and carries attrs — it is just not retained.
		return c
	}
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End fixes the span's duration. Multiple Ends keep the first. Nil-safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.dur = time.Since(s.start)
		s.ended = true
	}
	s.mu.Unlock()
}

// Duration returns the span's duration: its final duration once ended, the
// running elapsed time before that, 0 on nil.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return s.dur
	}
	return time.Since(s.start)
}

// Name returns the span name, "" on nil.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// SetStr records a string attribute. Nil-safe and allocation-free when nil.
func (s *Span) SetStr(key, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, kind: attrStr, s: v})
	s.mu.Unlock()
}

// SetInt records an integer attribute. Nil-safe and allocation-free when nil.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, kind: attrInt, i: v})
	s.mu.Unlock()
}

// SetFloat records a float attribute. Nil-safe and allocation-free when nil.
func (s *Span) SetFloat(key string, v float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, kind: attrFloat, f: v})
	s.mu.Unlock()
}

// SetBool records a boolean attribute. Nil-safe and allocation-free when nil.
func (s *Span) SetBool(key string, v bool) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, kind: attrBool, b: v})
	s.mu.Unlock()
}

// ctxKey is the private context key spans travel under.
type ctxKey struct{}

// WithSpan returns a context carrying sp as the current parent span. A nil
// sp returns ctx unchanged, so the no-op recorder costs nothing to thread.
func WithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sp)
}

// FromContext returns the current parent span, or nil when the request is
// untraced — the single nil-check every instrumented site starts with.
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}

// ParseTraceparent extracts the trace-id of a W3C traceparent header
// ("00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>"), reporting
// whether the header was well-formed. Only the trace ID is adopted; parent
// span IDs are not modeled.
func ParseTraceparent(h string) (traceID string, ok bool) {
	// version(2) - traceid(32) - parentid(16) - flags(2), dashes between.
	if len(h) != 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return "", false
	}
	if !isHex(h[:2]) || !isHex(h[3:35]) || !isHex(h[36:52]) || !isHex(h[53:]) {
		return "", false
	}
	id := h[3:35]
	if id == "00000000000000000000000000000000" {
		return "", false
	}
	return id, true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
