package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Node is the rendered (immutable snapshot) form of a span, the shape that
// goes out as JSON in explain responses and /debug/slowlog entries. StartUs
// is the span's start offset relative to the tree root; DurUs is the span
// duration, ceiling-rounded so an ended span never reports 0µs (sub-micro
// stages still show up as 1, which keeps "nonzero duration" assertions and
// eyeballs honest about the stage having run).
type Node struct {
	Name            string         `json:"name"`
	StartUs         int64          `json:"startUs"`
	DurUs           int64          `json:"durUs"`
	Attrs           map[string]any `json:"attrs,omitempty"`
	DroppedChildren int            `json:"droppedChildren,omitempty"`
	Children        []*Node        `json:"children,omitempty"`
}

// Tree is a full trace snapshot: identity plus the root node.
type Tree struct {
	TraceID   string `json:"traceId"`
	RequestID string `json:"requestId,omitempty"`
	Root      *Node  `json:"root"`
}

// Tree snapshots the trace into its rendered form. Safe to call while spans
// are still running (unended spans report elapsed-so-far) and concurrently
// with span mutation — each span is copied under its own lock.
func (t *Trace) Tree() *Tree {
	if t == nil {
		return nil
	}
	return &Tree{
		TraceID:   t.TraceID,
		RequestID: t.RequestID,
		Root:      snapshot(t.Root, t.Root.start),
	}
}

func ceilUs(d time.Duration) int64 {
	if d <= 0 {
		return 0
	}
	return int64((d + time.Microsecond - 1) / time.Microsecond)
}

func snapshot(s *Span, origin time.Time) *Node {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	dur := s.dur
	if !s.ended {
		dur = time.Since(s.start)
	}
	n := &Node{
		Name:            s.name,
		StartUs:         int64(s.start.Sub(origin) / time.Microsecond),
		DurUs:           ceilUs(dur),
		DroppedChildren: s.dropped,
	}
	if len(s.attrs) > 0 {
		n.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			n.Attrs[a.Key] = a.Value()
		}
	}
	kids := make([]*Span, len(s.children))
	copy(kids, s.children)
	s.mu.Unlock()
	if len(kids) > 0 {
		n.Children = make([]*Node, 0, len(kids))
		for _, c := range kids {
			n.Children = append(n.Children, snapshot(c, origin))
		}
	}
	return n
}

// Walk visits n and every descendant, depth-first.
func Walk(n *Node, fn func(*Node)) {
	if n == nil {
		return
	}
	fn(n)
	for _, c := range n.Children {
		Walk(c, fn)
	}
}

// Render formats the tree in EXPLAIN ANALYZE style: one line per span with
// offset, duration, and attrs, indented by depth. Attr keys are sorted so
// output is stable.
func (t *Tree) Render() string {
	if t == nil || t.Root == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s", t.TraceID)
	if t.RequestID != "" {
		fmt.Fprintf(&b, " request %s", t.RequestID)
	}
	b.WriteByte('\n')
	renderNode(&b, t.Root, 0)
	return b.String()
}

func renderNode(b *strings.Builder, n *Node, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	if depth > 0 {
		b.WriteString("-> ")
	}
	fmt.Fprintf(b, "%s  [+%s %s]", n.Name, usString(n.StartUs), usString(n.DurUs))
	if len(n.Attrs) > 0 {
		keys := make([]string, 0, len(n.Attrs))
		for k := range n.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteString("  ")
		for i, k := range keys {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(b, "%s=%v", k, n.Attrs[k])
		}
	}
	b.WriteByte('\n')
	for _, c := range n.Children {
		renderNode(b, c, depth+1)
	}
	if n.DroppedChildren > 0 {
		for i := 0; i < depth+1; i++ {
			b.WriteString("  ")
		}
		fmt.Fprintf(b, "-> ... %d more children dropped\n", n.DroppedChildren)
	}
}

func usString(us int64) string {
	switch {
	case us >= 1_000_000:
		return fmt.Sprintf("%.2fs", float64(us)/1e6)
	case us >= 1_000:
		return fmt.Sprintf("%.2fms", float64(us)/1e3)
	default:
		return fmt.Sprintf("%dµs", us)
	}
}
