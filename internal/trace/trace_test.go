package trace

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestConcurrentChildren hammers one parent span from many goroutines —
// exactly what the scatter-gather engine does — and must pass under -race.
func TestConcurrentChildren(t *testing.T) {
	tr := New("request", "")
	const workers = 16
	const perWorker = 8 // 128 total, over MaxChildren
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c := tr.Root.StartChild("scan")
				c.SetInt("shard", int64(w))
				c.SetStr("table", "sales")
				c.SetBool("skipped", i%2 == 0)
				c.SetFloat("sel", 0.25)
				c.End()
			}
		}(w)
	}
	wg.Wait()
	tr.Root.End()

	tree := tr.Tree()
	if got := len(tree.Root.Children); got != MaxChildren {
		t.Fatalf("children = %d, want bounded at %d", got, MaxChildren)
	}
	if want := workers*perWorker - MaxChildren; tree.Root.DroppedChildren != want {
		t.Fatalf("droppedChildren = %d, want %d", tree.Root.DroppedChildren, want)
	}
}

// TestTruncationMarker checks the dropped-children count is visible in both
// the JSON and the text rendering.
func TestTruncationMarker(t *testing.T) {
	tr := New("request", "")
	for i := 0; i < MaxChildren+3; i++ {
		tr.Root.StartChild("segment").End()
	}
	tr.Root.End()
	tree := tr.Tree()
	if tree.Root.DroppedChildren != 3 {
		t.Fatalf("droppedChildren = %d, want 3", tree.Root.DroppedChildren)
	}
	raw, err := json.Marshal(tree)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"droppedChildren":3`) {
		t.Fatalf("JSON missing truncation marker: %s", raw)
	}
	if text := tree.Render(); !strings.Contains(text, "3 more children dropped") {
		t.Fatalf("text render missing truncation marker:\n%s", text)
	}
}

// TestNoopZeroAlloc pins the off-path cost: every span operation on the
// no-op (nil) recorder must be allocation-free. This is the contract that
// lets tracing instrumentation live on the hot path.
func TestNoopZeroAlloc(t *testing.T) {
	var sp *Span
	allocs := testing.AllocsPerRun(1000, func() {
		c := sp.StartChild("scan")
		c.SetStr("table", "sales")
		c.SetInt("rows", 12345)
		c.SetFloat("sel", 0.5)
		c.SetBool("skipped", true)
		_ = c.Duration()
		_ = c.Name()
		c.End()
		grand := c.StartChild("segment")
		grand.End()
	})
	if allocs != 0 {
		t.Fatalf("no-op recorder allocated %.1f per run, want 0", allocs)
	}
	if FromContext(context.Background()) != nil {
		t.Fatal("FromContext on bare context should be nil")
	}
	if ctx := WithSpan(context.Background(), nil); FromContext(ctx) != nil {
		t.Fatal("WithSpan(nil) must keep the context untraced")
	}
}

func TestContextRoundTrip(t *testing.T) {
	tr := New("request", "")
	ctx := WithSpan(context.Background(), tr.Root)
	got := FromContext(ctx)
	if got != tr.Root {
		t.Fatal("FromContext did not return the stored span")
	}
	if got.Trace() != tr {
		t.Fatal("span lost its owning trace")
	}
	child := got.StartChild("prepare")
	if child.Trace() != tr {
		t.Fatal("child lost the owning trace")
	}
}

func TestTreeSnapshot(t *testing.T) {
	tr := New("request", "abc0123456789def0123456789abcdef")
	tr.RequestID = "req-42"
	prep := tr.Root.StartChild("prepare")
	prep.SetStr("sql", "SELECT x FROM t")
	time.Sleep(time.Millisecond)
	prep.End()
	exec := tr.Root.StartChild("execute")
	scan := exec.StartChild("scan")
	scan.SetInt("rows", 100)
	scan.End()
	exec.End()
	tr.Root.End()

	tree := tr.Tree()
	if tree.TraceID != "abc0123456789def0123456789abcdef" || tree.RequestID != "req-42" {
		t.Fatalf("identity lost: %+v", tree)
	}
	if len(tree.Root.Children) != 2 {
		t.Fatalf("want 2 children, got %d", len(tree.Root.Children))
	}
	if tree.Root.Children[0].DurUs < 1000 {
		t.Fatalf("prepare duration %dµs, want >= 1ms", tree.Root.Children[0].DurUs)
	}
	// Every ended span reports a nonzero duration (ceil to 1µs).
	Walk(tree.Root, func(n *Node) {
		if n.DurUs == 0 {
			t.Fatalf("span %q has zero duration", n.Name)
		}
	})
	// Child offsets are relative to the root and ordered.
	if tree.Root.Children[1].StartUs < tree.Root.Children[0].StartUs {
		t.Fatal("children out of start order")
	}
	if got := tree.Root.Children[1].Children[0].Attrs["rows"]; got != int64(100) {
		t.Fatalf("scan rows attr = %v, want 100", got)
	}

	text := tree.Render()
	for _, want := range []string{"trace abc0123456789def0123456789abcdef", "request req-42", "-> prepare", "-> execute", "-> scan", "sql=SELECT x FROM t"} {
		if !strings.Contains(text, want) {
			t.Fatalf("render missing %q:\n%s", want, text)
		}
	}
}

// TestTreeWhileRunning snapshots a live trace (the explain path does this
// before the request span ends).
func TestTreeWhileRunning(t *testing.T) {
	tr := New("request", "")
	child := tr.Root.StartChild("execute")
	time.Sleep(time.Millisecond)
	tree := tr.Tree() // neither span ended
	if tree.Root.DurUs == 0 || tree.Root.Children[0].DurUs == 0 {
		t.Fatalf("running spans should report elapsed time: %+v", tree.Root)
	}
	child.End()
	tr.Root.End()
	if d := child.Duration(); d < time.Millisecond {
		t.Fatalf("ended duration %v, want >= 1ms", d)
	}
	first := child.Duration()
	child.End() // second End keeps the first duration
	if child.Duration() != first {
		t.Fatal("second End changed the duration")
	}
}

func TestParseTraceparent(t *testing.T) {
	valid := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	id, ok := ParseTraceparent(valid)
	if !ok || id != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("valid header rejected: id=%q ok=%v", id, ok)
	}
	bad := []string{
		"",
		"00-short-00f067aa0ba902b7-01",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",      // missing flags
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",   // uppercase
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",   // all-zero id
		"00x4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01x",  // bad dashes
		"zz-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",   // bad version hex
		"00-4bf92f3577b34da6a3ce929d0e0e473g-00f067aa0ba902b7-01",   // bad id hex
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902bg-01",   // bad parent hex
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-0g",   // bad flags hex
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-x", // too long
	}
	for _, h := range bad {
		if id, ok := ParseTraceparent(h); ok {
			t.Fatalf("accepted malformed traceparent %q -> %q", h, id)
		}
	}
	// Minted IDs are 32 hex and unique-ish.
	a, b := New("r", ""), New("r", "")
	if len(a.TraceID) != 32 || !isHex(a.TraceID) {
		t.Fatalf("minted trace ID malformed: %q", a.TraceID)
	}
	if a.TraceID == b.TraceID {
		t.Fatal("two minted trace IDs collided")
	}
}
