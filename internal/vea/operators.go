package vea

import (
	"fmt"
	"sort"

	"repro/internal/vis"
)

// Pred is a selection predicate for σv. Only =, != over X, Y, and the
// relation attributes are allowed (Section 4.4), composed with ∧ and ∨.
type Pred interface {
	eval(g *Group, s Source) bool
}

// And conjoins predicates.
type And []Pred

// Or disjoins predicates.
type Or []Pred

// Cmp compares a field (X, Y, or an attribute name) against a value, which
// may be the wildcard Star. Eq=false means !=.
type Cmp struct {
	Field string
	Eq    bool
	Val   string
}

func (a And) eval(g *Group, s Source) bool {
	for _, p := range a {
		if !p.eval(g, s) {
			return false
		}
	}
	return true
}

func (o Or) eval(g *Group, s Source) bool {
	for _, p := range o {
		if p.eval(g, s) {
			return true
		}
	}
	return false
}

func (c Cmp) eval(g *Group, s Source) bool {
	var got string
	switch c.Field {
	case "X":
		got = s.X
	case "Y":
		got = s.Y
	default:
		i := g.AttrIndex(c.Field)
		if i < 0 {
			return false
		}
		got = s.Vals[i]
	}
	if c.Eq {
		return got == c.Val
	}
	return got != c.Val
}

// Select is σv: subselects visual sources satisfying θ, preserving order.
func Select(g *Group, p Pred) *Group {
	out := g.emptyLike()
	for _, s := range g.Srcs {
		if p.eval(g, s) {
			out.Srcs = append(out.Srcs, s)
		}
	}
	return out
}

// SortBy is τv_F(T): sorts the group in increasing order of f applied to each
// rendered visualization. Use a negated f for decreasing order, mirroring
// the paper's τv_{-T}.
func SortBy(g *Group, f func(*vis.Visualization) float64) *Group {
	type scored struct {
		s     Source
		score float64
	}
	scores := make([]scored, g.Len())
	for i, s := range g.Srcs {
		scores[i] = scored{s: s, score: f(g.Render(s))}
	}
	sort.SliceStable(scores, func(i, j int) bool { return scores[i].score < scores[j].score })
	out := g.emptyLike()
	for _, sc := range scores {
		out.Srcs = append(out.Srcs, sc.s)
	}
	return out
}

// Limit is µv_k: the first k visual sources in order.
func Limit(g *Group, k int) *Group {
	if k > g.Len() {
		k = g.Len()
	}
	if k < 0 {
		k = 0
	}
	out := g.emptyLike()
	out.Srcs = append(out.Srcs, g.Srcs[:k]...)
	return out
}

// Slice is µv_[a:b]: sources at positions a..b, 1-based inclusive; b<0 means
// to the end. It doubles as the V[a:b] indexing of ordered bag algebra.
func Slice(g *Group, a, b int) *Group {
	if a < 1 {
		a = 1
	}
	if b < 0 || b > g.Len() {
		b = g.Len()
	}
	out := g.emptyLike()
	for i := a; i <= b; i++ {
		out.Srcs = append(out.Srcs, g.Srcs[i-1])
	}
	return out
}

// Dedup is δv: keeps the first copy of each source in first-appearance order.
func Dedup(g *Group) *Group {
	seen := make(map[string]bool, g.Len())
	out := g.emptyLike()
	for _, s := range g.Srcs {
		k := s.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		out.Srcs = append(out.Srcs, s)
	}
	return out
}

// Representative is ζv_{R,k}: the k most representative sources per the R
// exploration function (k-means representatives from internal/vis).
func Representative(g *Group, k int, m vis.Metric, seed int64) *Group {
	viss := make([]*vis.Visualization, g.Len())
	for i, s := range g.Srcs {
		viss[i] = g.Render(s)
	}
	picked := vis.Representative(viss, k, m, seed)
	out := g.emptyLike()
	for _, i := range picked {
		out.Srcs = append(out.Srcs, g.Srcs[i])
	}
	return out
}

// Union is ∪v: bag concatenation.
func Union(a, b *Group) *Group {
	out := a.emptyLike()
	out.Srcs = append(append(out.Srcs, a.Srcs...), b.Srcs...)
	return out
}

// Diff is \v: removes from a every source present in b.
func Diff(a, b *Group) *Group {
	drop := make(map[string]bool, b.Len())
	for _, s := range b.Srcs {
		drop[s.Key()] = true
	}
	out := a.emptyLike()
	for _, s := range a.Srcs {
		if !drop[s.Key()] {
			out.Srcs = append(out.Srcs, s)
		}
	}
	return out
}

// Intersect is ∩v: keeps sources of a present in b.
func Intersect(a, b *Group) *Group {
	keep := make(map[string]bool, b.Len())
	for _, s := range b.Srcs {
		keep[s.Key()] = true
	}
	out := a.emptyLike()
	for _, s := range a.Srcs {
		if keep[s.Key()] {
			out.Srcs = append(out.Srcs, s)
		}
	}
	return out
}

// Swap is βv_A(V, U): replaces attribute A's values in V with A's values in
// U via the cross product π_{¬A}(V) × π_A(U) of the paper's definition. A may
// be "X", "Y", or a relation attribute.
func Swap(a string, v, u *Group) *Group {
	out := v.emptyLike()
	// Distinct values of A in u, first-appearance order (projection under
	// bag semantics keeps duplicates, but the cross product below follows
	// the paper's ordered-bag π which preserves every tuple; dedup keeps the
	// result size meaningful).
	var uVals []string
	seen := make(map[string]bool)
	for _, s := range u.Srcs {
		var val string
		switch a {
		case "X":
			val = s.X
		case "Y":
			val = s.Y
		default:
			i := u.AttrIndex(a)
			if i < 0 {
				continue
			}
			val = s.Vals[i]
		}
		if !seen[val] {
			seen[val] = true
			uVals = append(uVals, val)
		}
	}
	for _, s := range v.Srcs {
		for _, val := range uVals {
			ns := s.Clone()
			switch a {
			case "X":
				ns.X = val
			case "Y":
				ns.Y = val
			default:
				i := v.AttrIndex(a)
				if i < 0 {
					continue
				}
				ns.Vals[i] = val
			}
			out.Srcs = append(out.Srcs, ns)
		}
	}
	return out
}

// Dist is φv_{F(D),A1..Aj}(V, U): sorts V in increasing order of the distance
// between each source and the source of U matching it on attributes
// A1..Aj. The operation is undefined (returns an error) when a match key
// selects more than one source on either side, as in the paper.
func Dist(attrs []string, v, u *Group, f func(a, b *vis.Visualization) float64) (*Group, error) {
	keyOf := func(g *Group, s Source) (string, error) {
		var parts []string
		for _, a := range attrs {
			switch a {
			case "X":
				parts = append(parts, s.X)
			case "Y":
				parts = append(parts, s.Y)
			default:
				i := g.AttrIndex(a)
				if i < 0 {
					return "", fmt.Errorf("vea: φv attribute %q not in schema", a)
				}
				parts = append(parts, s.Vals[i])
			}
		}
		return fmt.Sprint(parts), nil
	}
	uByKey := make(map[string]Source, u.Len())
	for _, s := range u.Srcs {
		k, err := keyOf(u, s)
		if err != nil {
			return nil, err
		}
		if _, dup := uByKey[k]; dup {
			return nil, fmt.Errorf("vea: φv undefined: key %v selects multiple sources in U", k)
		}
		uByKey[k] = s
	}
	type scored struct {
		s     Source
		score float64
	}
	var scores []scored
	seenV := make(map[string]bool)
	for _, s := range v.Srcs {
		k, err := keyOf(v, s)
		if err != nil {
			return nil, err
		}
		if seenV[k] {
			return nil, fmt.Errorf("vea: φv undefined: key %v selects multiple sources in V", k)
		}
		seenV[k] = true
		us, ok := uByKey[k]
		if !ok {
			return nil, fmt.Errorf("vea: φv undefined: no source in U matches key %v", k)
		}
		scores = append(scores, scored{s: s, score: f(v.Render(s), u.Render(us))})
	}
	sort.SliceStable(scores, func(i, j int) bool { return scores[i].score < scores[j].score })
	out := v.emptyLike()
	for _, sc := range scores {
		out.Srcs = append(out.Srcs, sc.s)
	}
	return out, nil
}

// Find is ηv_{F(D)}(V, U): sorts V in increasing order of distance to the
// single reference source in U. Undefined when U is not a singleton.
func Find(v, u *Group, f func(a, b *vis.Visualization) float64) (*Group, error) {
	if u.Len() != 1 {
		return nil, fmt.Errorf("vea: ηv undefined: reference group has %d sources, want 1", u.Len())
	}
	ref := u.Render(u.Srcs[0])
	type scored struct {
		s     Source
		score float64
	}
	scores := make([]scored, v.Len())
	for i, s := range v.Srcs {
		scores[i] = scored{s: s, score: f(v.Render(s), ref)}
	}
	sort.SliceStable(scores, func(i, j int) bool { return scores[i].score < scores[j].score })
	out := v.emptyLike()
	for _, sc := range scores {
		out.Srcs = append(out.Srcs, sc.s)
	}
	return out, nil
}
