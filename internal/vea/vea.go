// Package vea implements the visual exploration algebra of Chapter 4: an
// ordered-bag algebra over visual sources, with the unary operators σv, τv,
// µv, δv, ζv and the binary operators ∪v, \v, ∩v, βv, φv, ηv (Table 4.2).
//
// A visual source is a (k+2)-tuple (X, Y, A1, ..., Ak) where X and Y name the
// axes and each Ai is either a concrete value of attribute i or the wildcard
// '*' (no selection on that attribute). A visual group is an ordered bag of
// visual sources over one relation. The exploration functions T, D, R come
// from internal/vis, exactly as the paper parameterizes completeness by them.
package vea

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dataset"
	"repro/internal/vis"
)

// Star is the wildcard attribute value: no selection on that attribute.
const Star = "*"

// Source is one visual source: the X/Y axis attributes plus one value (or
// Star) per relation attribute.
type Source struct {
	X, Y string
	Vals []string // parallel to the group's Attrs
}

// Key renders a comparable identity for bag semantics.
func (s Source) Key() string {
	return s.X + "\x00" + s.Y + "\x00" + strings.Join(s.Vals, "\x00")
}

// Clone deep-copies the source.
func (s Source) Clone() Source {
	return Source{X: s.X, Y: s.Y, Vals: append([]string(nil), s.Vals...)}
}

// Group is an ordered bag of visual sources over a relation.
type Group struct {
	Table *dataset.Table
	Attrs []string // the relation's attributes A1..Ak, fixed order
	Srcs  []Source
}

// NewGroup returns an empty group over the table's full attribute list.
func NewGroup(t *dataset.Table) *Group {
	return &Group{Table: t, Attrs: t.ColumnNames()}
}

// Len returns the number of visual sources.
func (g *Group) Len() int { return len(g.Srcs) }

// Add appends a source, validating arity.
func (g *Group) Add(s Source) *Group {
	if len(s.Vals) != len(g.Attrs) {
		panic(fmt.Sprintf("vea: source arity %d != %d attributes", len(s.Vals), len(g.Attrs)))
	}
	g.Srcs = append(g.Srcs, s)
	return g
}

// AttrIndex returns the position of an attribute, or -1.
func (g *Group) AttrIndex(name string) int {
	for i, a := range g.Attrs {
		if a == name {
			return i
		}
	}
	return -1
}

// emptyLike returns an empty group sharing table and schema.
func (g *Group) emptyLike() *Group {
	return &Group{Table: g.Table, Attrs: g.Attrs}
}

// Universe materializes ν(R) = X × Y × ×i (πAi(R) ∪ {*}): every combination
// of x-axis attribute, y-axis attribute, and per-attribute value-or-wildcard.
// It is exponential in the attribute count and intended for the test-scale
// relations of the completeness proofs, exactly like Table 4.1's example.
func Universe(t *dataset.Table, xAttrs, yAttrs []string) *Group {
	g := NewGroup(t)
	domains := make([][]string, len(g.Attrs))
	for i, a := range g.Attrs {
		vals := t.Column(a).DistinctSorted()
		dom := make([]string, 0, len(vals)+1)
		dom = append(dom, Star)
		for _, v := range vals {
			dom = append(dom, v.String())
		}
		domains[i] = dom
	}
	var rec func(i int, vals []string)
	var combos [][]string
	rec = func(i int, vals []string) {
		if i == len(domains) {
			combos = append(combos, append([]string(nil), vals...))
			return
		}
		for _, v := range domains[i] {
			rec(i+1, append(vals, v))
		}
	}
	rec(0, nil)
	for _, x := range xAttrs {
		for _, y := range yAttrs {
			for _, vals := range combos {
				g.Add(Source{X: x, Y: y, Vals: append([]string(nil), vals...)})
			}
		}
	}
	return g
}

// Render materializes the visualization a source denotes: rows matching the
// non-wildcard attribute values, grouped by X with SUM(Y). The paper assumes
// each visual source maps to a single visualization via standard rules; SUM
// grouping is that standard rule here.
func (g *Group) Render(s Source) *vis.Visualization {
	t := g.Table
	v := &vis.Visualization{XAttr: s.X, YAttr: s.Y}
	for i, a := range g.Attrs {
		if s.Vals[i] != Star {
			v.Slices = append(v.Slices, vis.Slice{Attr: a, Value: s.Vals[i]})
		}
	}
	xCol, yCol := t.Column(s.X), t.Column(s.Y)
	if xCol == nil || yCol == nil {
		return v
	}
	cols := make([]*dataset.Column, len(g.Attrs))
	for i, a := range g.Attrs {
		cols[i] = t.Column(a)
	}
	sums := make(map[string]float64)
	xvals := make(map[string]dataset.Value)
	for r := 0; r < t.NumRows(); r++ {
		match := true
		for i := range g.Attrs {
			if s.Vals[i] == Star {
				continue
			}
			if cols[i].Value(r).String() != s.Vals[i] {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		xv := xCol.Value(r)
		k := xv.String()
		sums[k] += yCol.Float(r)
		xvals[k] = xv
	}
	keys := make([]string, 0, len(sums))
	for k := range sums {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return xvals[keys[i]].Compare(xvals[keys[j]]) < 0 })
	for _, k := range keys {
		v.Points = append(v.Points, vis.Point{X: xvals[k], Y: sums[k]})
	}
	return v
}
