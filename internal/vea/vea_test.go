package vea

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/vis"
	"repro/internal/zexec"
	"repro/internal/zql"
)

// fixture builds a small relation in the shape of the paper's Table 4.1:
// (year, month, product, location, sales, profit), with deterministic trends
// (chair sales rise, table sales fall) and small measure domains so the
// visual universe stays materializable.
func fixture() *dataset.Table {
	t := dataset.NewTable("r", []dataset.Field{
		{Name: "year", Kind: dataset.KindInt},
		{Name: "month", Kind: dataset.KindInt},
		{Name: "product", Kind: dataset.KindString},
		{Name: "location", Kind: dataset.KindString},
		{Name: "sales", Kind: dataset.KindFloat},
		{Name: "profit", Kind: dataset.KindFloat},
	})
	for _, p := range []string{"chair", "table"} {
		for _, l := range []string{"US", "UK"} {
			for year := 2014; year <= 2016; year++ {
				for month := 1; month <= 2; month++ {
					dy := float64(year - 2014)
					sales := 100.0
					if p == "chair" {
						sales += dy * 100 // rising
					} else {
						sales += (2 - dy) * 100 // falling
					}
					profit := 300 - sales/2
					t.AppendRow(
						dataset.IV(int64(year)), dataset.IV(int64(month)),
						dataset.SV(p), dataset.SV(l),
						dataset.FV(sales), dataset.FV(profit),
					)
				}
			}
		}
	}
	return t
}

var xyAttrs = []string{"year", "month"}
var measures = []string{"sales", "profit"}

func universe(t *testing.T) *Group {
	t.Helper()
	return Universe(fixture(), xyAttrs, measures)
}

// starExcept builds the σv predicate of Table 4.3: X/Y pinned, one attribute
// != *, one attribute pinned to a value, the rest = *.
func starExcept(g *Group, x, y string, free string, fixed map[string]string) Pred {
	p := And{Cmp{Field: "X", Eq: true, Val: x}, Cmp{Field: "Y", Eq: true, Val: y}}
	for _, a := range g.Attrs {
		if a == free {
			p = append(p, Cmp{Field: a, Eq: false, Val: Star})
			continue
		}
		if v, ok := fixed[a]; ok {
			p = append(p, Cmp{Field: a, Eq: true, Val: v})
			continue
		}
		p = append(p, Cmp{Field: a, Eq: true, Val: Star})
	}
	return p
}

func TestUniverseSize(t *testing.T) {
	g := universe(t)
	// Domains+wildcard: year 4, month 3, product 3, location 3, sales 4
	// (chair 100/200/300 ∪ table 300/200/100 → {100,200,300}), profit 4.
	want := 2 * 2 * 4 * 3 * 3 * 3 * 4 * 4
	if g.Len() != want {
		t.Fatalf("universe size = %d, want %d", g.Len(), want)
	}
}

func TestSelectTable43(t *testing.T) {
	g := universe(t)
	pred := starExcept(g, "year", "sales", "product", map[string]string{"location": "US"})
	got := Select(g, pred)
	// One source per product value: chair, table.
	if got.Len() != 2 {
		t.Fatalf("σv result = %d sources, want 2", got.Len())
	}
	pi := got.AttrIndex("product")
	li := got.AttrIndex("location")
	for _, s := range got.Srcs {
		if s.X != "year" || s.Y != "sales" || s.Vals[pi] == Star || s.Vals[li] != "US" {
			t.Errorf("bad source %+v", s)
		}
	}
}

// TestSelectViaIntersection verifies the Lemma 2 identity the completeness
// proof uses: σv_{X=B}(V) = V ∩v U where U is the filtering visual group
// with X pinned to B and everything else free.
func TestSelectViaIntersection(t *testing.T) {
	g := universe(t)
	v := Select(g, starExcept(g, "year", "sales", "product", map[string]string{"location": "US"}))
	// Direct: σv_{X=year}(V) (a no-op here, but exercised against filter).
	direct := Select(v, Cmp{Field: "X", Eq: true, Val: "year"})
	// Filter group: same sources with X forced to 'year' via Swap of the
	// whole universe selection.
	filter := Select(g, starExcept(g, "year", "sales", "product", map[string]string{"location": "US"}))
	viaIntersect := Intersect(v, filter)
	if direct.Len() != viaIntersect.Len() {
		t.Fatalf("σv = %d, ∩v = %d", direct.Len(), viaIntersect.Len())
	}
	for i := range direct.Srcs {
		if direct.Srcs[i].Key() != viaIntersect.Srcs[i].Key() {
			t.Errorf("source %d diverges", i)
		}
	}
}

func TestSelectNotEqualsExcludesOnlyValue(t *testing.T) {
	g := universe(t)
	v := Select(g, starExcept(g, "year", "sales", "product", map[string]string{"location": "US"}))
	got := Select(v, Cmp{Field: "product", Eq: false, Val: "chair"})
	if got.Len() != 1 {
		t.Fatalf("σv != = %d sources", got.Len())
	}
	if got.Srcs[0].Vals[got.AttrIndex("product")] != "table" {
		t.Error("wrong survivor")
	}
}

func TestSelectOrSemantics(t *testing.T) {
	g := universe(t)
	v := Select(g, starExcept(g, "year", "sales", "product", map[string]string{"location": "US"}))
	got := Select(v, Or{
		Cmp{Field: "product", Eq: true, Val: "chair"},
		Cmp{Field: "product", Eq: true, Val: "table"},
	})
	if got.Len() != v.Len() {
		t.Errorf("σv with ∨ = %d, want %d", got.Len(), v.Len())
	}
}

func productGroup(t *testing.T) *Group {
	g := universe(t)
	return Select(g, starExcept(g, "year", "sales", "product", map[string]string{"location": "US"}))
}

func TestSortByTrend(t *testing.T) {
	v := productGroup(t)
	sorted := SortBy(v, vis.Trend) // increasing trend: table (falling) first
	pi := sorted.AttrIndex("product")
	if sorted.Srcs[0].Vals[pi] != "table" || sorted.Srcs[1].Vals[pi] != "chair" {
		t.Errorf("τv order = %v, %v", sorted.Srcs[0].Vals[pi], sorted.Srcs[1].Vals[pi])
	}
	desc := SortBy(v, func(x *vis.Visualization) float64 { return -vis.Trend(x) })
	if desc.Srcs[0].Vals[pi] != "chair" {
		t.Error("τv with -T must reverse")
	}
}

func TestLimitSliceDedupe(t *testing.T) {
	v := productGroup(t)
	both := Union(v, v)
	if both.Len() != 4 {
		t.Fatalf("∪v = %d", both.Len())
	}
	if Limit(both, 3).Len() != 3 || Limit(both, 99).Len() != 4 || Limit(both, -1).Len() != 0 {
		t.Error("µv bounds broken")
	}
	if got := Slice(both, 2, 3); got.Len() != 2 || got.Srcs[0].Key() != both.Srcs[1].Key() {
		t.Error("µv[a:b] broken")
	}
	if got := Slice(both, 1, -1); got.Len() != 4 {
		t.Error("open slice broken")
	}
	d := Dedup(both)
	if d.Len() != 2 {
		t.Errorf("δv = %d, want 2", d.Len())
	}
	if Dedup(d).Len() != d.Len() {
		t.Error("δv must be idempotent")
	}
}

func TestDiffAndIntersect(t *testing.T) {
	v := productGroup(t)
	chair := Select(v, Cmp{Field: "product", Eq: true, Val: "chair"})
	diff := Diff(v, chair)
	if diff.Len() != 1 || diff.Srcs[0].Vals[diff.AttrIndex("product")] != "table" {
		t.Errorf("\\v = %+v", diff.Srcs)
	}
	inter := Intersect(v, chair)
	if inter.Len() != 1 || inter.Srcs[0].Vals[inter.AttrIndex("product")] != "chair" {
		t.Errorf("∩v = %+v", inter.Srcs)
	}
}

func TestSwapAxis(t *testing.T) {
	v := productGroup(t)
	g := universe(t)
	profitRef := Select(g, starExcept(g, "year", "profit", "product", map[string]string{"location": "US"}))
	swapped := Swap("Y", v, profitRef)
	if swapped.Len() != v.Len() {
		t.Fatalf("βv size = %d", swapped.Len())
	}
	for _, s := range swapped.Srcs {
		if s.Y != "profit" {
			t.Errorf("βv_Y left Y = %q", s.Y)
		}
	}
	// Swap on an attribute: move to location UK.
	ukRef := Select(g, starExcept(g, "year", "sales", "product", map[string]string{"location": "UK"}))
	sw := Swap("location", v, ukRef)
	li := sw.AttrIndex("location")
	for _, s := range sw.Srcs {
		if s.Vals[li] != "UK" {
			t.Errorf("βv_location = %q", s.Vals[li])
		}
	}
}

func TestSwapCrossProductGrowth(t *testing.T) {
	v := productGroup(t) // 2 sources
	g := universe(t)
	// U carries two distinct Y values -> βv yields |V| × 2 sources.
	u := Union(
		Select(g, starExcept(g, "year", "sales", "product", map[string]string{"location": "US"})),
		Select(g, starExcept(g, "year", "profit", "product", map[string]string{"location": "US"})),
	)
	got := Swap("Y", v, u)
	if got.Len() != 4 {
		t.Errorf("βv cross product = %d, want 4", got.Len())
	}
}

func dMetric(a, b *vis.Visualization) float64 {
	return vis.Distance(a, b, vis.DefaultMetric)
}

func TestDistSortsByPairwiseDistance(t *testing.T) {
	g := universe(t)
	v := productGroup(t)
	u := Select(g, starExcept(g, "year", "profit", "product", map[string]string{"location": "US"}))
	got, err := Dist([]string{"product"}, v, u, dMetric)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("φv = %d", got.Len())
	}
	// chair: sales rise, profit falls (max discrepancy); table: sales fall,
	// profit rises (also max). Both are symmetric; just check order is by
	// non-decreasing distance.
	d0 := dMetric(v.Render(got.Srcs[0]), u.Render(matchProduct(u, got.Srcs[0], t)))
	d1 := dMetric(v.Render(got.Srcs[1]), u.Render(matchProduct(u, got.Srcs[1], t)))
	if d0 > d1 {
		t.Errorf("φv order not increasing: %v > %v", d0, d1)
	}
}

func matchProduct(u *Group, s Source, t *testing.T) Source {
	t.Helper()
	pi := u.AttrIndex("product")
	for _, us := range u.Srcs {
		if us.Vals[pi] == s.Vals[pi] {
			return us
		}
	}
	t.Fatal("no match")
	return Source{}
}

func TestDistUndefinedOnDuplicates(t *testing.T) {
	v := productGroup(t)
	dup := Union(v, v)
	if _, err := Dist([]string{"product"}, dup, v, dMetric); err == nil {
		t.Error("φv with duplicate keys in V must be undefined")
	}
	if _, err := Dist([]string{"product"}, v, dup, dMetric); err == nil {
		t.Error("φv with duplicate keys in U must be undefined")
	}
	empty := v.emptyLike()
	if _, err := Dist([]string{"product"}, v, empty, dMetric); err == nil {
		t.Error("φv with unmatched keys must be undefined")
	}
}

func TestFindSortsByReferenceDistance(t *testing.T) {
	v := productGroup(t)
	chair := Select(v, Cmp{Field: "product", Eq: true, Val: "chair"})
	got, err := Find(v, chair, dMetric)
	if err != nil {
		t.Fatal(err)
	}
	pi := got.AttrIndex("product")
	if got.Srcs[0].Vals[pi] != "chair" {
		t.Errorf("ηv nearest to chair = %v", got.Srcs[0].Vals[pi])
	}
	if _, err := Find(v, v, dMetric); err == nil {
		t.Error("ηv with non-singleton reference must be undefined")
	}
}

func TestRepresentativeOperator(t *testing.T) {
	v := productGroup(t)
	got := Representative(v, 1, vis.DefaultMetric, 7)
	if got.Len() != 1 {
		t.Errorf("ζv = %d", got.Len())
	}
	all := Representative(v, 5, vis.DefaultMetric, 7)
	if all.Len() != 2 {
		t.Errorf("ζv with k>n = %d, want n", all.Len())
	}
}

func TestSelectDistributesOverUnion(t *testing.T) {
	v := productGroup(t)
	chairPred := Cmp{Field: "product", Eq: true, Val: "chair"}
	lhs := Select(Union(v, v), chairPred)
	rhs := Union(Select(v, chairPred), Select(v, chairPred))
	if lhs.Len() != rhs.Len() {
		t.Fatalf("σ(A∪B) = %d, σA∪σB = %d", lhs.Len(), rhs.Len())
	}
	for i := range lhs.Srcs {
		if lhs.Srcs[i].Key() != rhs.Srcs[i].Key() {
			t.Error("distribution order mismatch")
		}
	}
}

func TestRenderAppliesWildcards(t *testing.T) {
	v := productGroup(t)
	chair := Select(v, Cmp{Field: "product", Eq: true, Val: "chair"}).Srcs[0]
	r := v.Render(chair)
	if len(r.Points) != 3 {
		t.Fatalf("%d points, want 3 years", len(r.Points))
	}
	// Chair US sales: 2 months × (100 + dy*100) summed.
	if r.Points[0].Y != 200 || r.Points[2].Y != 600 {
		t.Errorf("rendered sums = %v, %v", r.Points[0].Y, r.Points[2].Y)
	}
	// A source with all wildcards aggregates everything.
	all := Source{X: "year", Y: "sales", Vals: []string{Star, Star, Star, Star, Star, Star}}
	ra := v.Render(all)
	var total float64
	for _, p := range ra.Points {
		total += p.Y
	}
	tb := fixture()
	var want float64
	for i := 0; i < tb.NumRows(); i++ {
		want += tb.Column("sales").Float(i)
	}
	if math.Abs(total-want) > 1e-9 {
		t.Errorf("wildcard render total = %v, want %v", total, want)
	}
}

// TestZQLExpressesEta cross-checks Lemma 11 behaviourally: the ηv operator
// and the equivalent ZQL similarity query (in the shape of Table 3.13)
// produce the same product ordering.
func TestZQLExpressesEta(t *testing.T) {
	tb := fixture()
	v := productGroup(t)
	chair := Select(v, Cmp{Field: "product", Eq: true, Val: "chair"})
	alg, err := Find(v, chair, dMetric)
	if err != nil {
		t.Fatal(err)
	}
	src := `
NAME | X      | Y       | Z                  | CONSTRAINTS   | VIZ                | PROCESS
f1   | 'year' | 'sales' | 'product'.'chair'  | location='US' | bar.(y=agg('sum')) |
f2   | 'year' | 'sales' | v1 <- 'product'.*  | location='US' | bar.(y=agg('sum')) | v2 <- argmin(v1)[k=inf] D(f1, f2)
*f3  | 'year' | 'sales' | v2                 | location='US' | bar.(y=agg('sum')) |`
	q, err := zql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := zexec.Run(q, engine.NewRowStore(tb), zexec.Options{Table: "r", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	zqlOrder := res.Bindings["v2"]
	pi := alg.AttrIndex("product")
	if len(zqlOrder) != alg.Len() {
		t.Fatalf("lengths differ: %d vs %d", len(zqlOrder), alg.Len())
	}
	for i := range zqlOrder {
		if zqlOrder[i] != alg.Srcs[i].Vals[pi] {
			t.Errorf("ηv vs ZQL order at %d: %s vs %s", i, alg.Srcs[i].Vals[pi], zqlOrder[i])
		}
	}
}

// TestZQLExpressesTau cross-checks Lemma 3: τv_T matches ZQL's
// argmin[k=inf] T(f1) ordering.
func TestZQLExpressesTau(t *testing.T) {
	tb := fixture()
	v := productGroup(t)
	alg := SortBy(v, vis.Trend)
	src := `
NAME | X      | Y       | Z                 | CONSTRAINTS   | VIZ                | PROCESS
f1   | 'year' | 'sales' | v1 <- 'product'.* | location='US' | bar.(y=agg('sum')) | u1 <- argmin(v1)[k=inf] T(f1)`
	q, err := zql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := zexec.Run(q, engine.NewRowStore(tb), zexec.Options{Table: "r", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Bindings["u1"]
	pi := alg.AttrIndex("product")
	for i := range got {
		if got[i] != alg.Srcs[i].Vals[pi] {
			t.Errorf("τv vs ZQL at %d: %s vs %s", i, alg.Srcs[i].Vals[pi], got[i])
		}
	}
}

// TestZQLExpressesMuDelta cross-checks Lemmas 4 and 6: µv[a:b] matches
// f1[a:b] and δv matches f1.range.
func TestZQLExpressesMuDelta(t *testing.T) {
	tb := fixture()
	src := `
NAME        | X      | Y       | Z                 | CONSTRAINTS   | VIZ                | PROCESS
f1          | 'year' | 'sales' | v1 <- 'product'.* | location='US' | bar.(y=agg('sum')) |
*f2=f1[1:1] |        |         |                   |               |                    |
*f3=f1.range |       |         |                   |               |                    |`
	q, err := zql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := zexec.Run(q, engine.NewRowStore(tb), zexec.Options{Table: "r", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	v := productGroup(t)
	mu := Slice(v, 1, 1)
	if res.Outputs[0].Len() != mu.Len() {
		t.Errorf("µv[1:1] = %d, ZQL f1[1:1] = %d", mu.Len(), res.Outputs[0].Len())
	}
	if res.Outputs[1].Len() != Dedup(v).Len() {
		t.Errorf("δv = %d, ZQL f1.range = %d", Dedup(v).Len(), res.Outputs[1].Len())
	}
}

func TestAddArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewGroup(fixture()).Add(Source{X: "year", Y: "sales", Vals: []string{"*"}})
}

// TestZQLExpressesZeta cross-checks Lemma 5: ζv (k-representatives) matches
// ZQL's R(k, v1, f1) selection under the same seed and metric.
func TestZQLExpressesZeta(t *testing.T) {
	tb := fixture()
	v := productGroup(t)
	alg := Representative(v, 1, vis.DefaultMetric, 9)
	src := `
NAME | X      | Y       | Z                 | CONSTRAINTS   | VIZ                | PROCESS
f1   | 'year' | 'sales' | v1 <- 'product'.* | location='US' | bar.(y=agg('sum')) | v2 <- R(1, v1, f1)
*f2  | 'year' | 'sales' | v2                | location='US' | bar.(y=agg('sum')) |`
	q, err := zql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := zexec.Run(q, engine.NewRowStore(tb), zexec.Options{Table: "r", Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Bindings["v2"]
	pi := alg.AttrIndex("product")
	if len(got) != alg.Len() {
		t.Fatalf("ζv = %d, ZQL R = %d", alg.Len(), len(got))
	}
	for i := range got {
		if got[i] != alg.Srcs[i].Vals[pi] {
			t.Errorf("ζv vs ZQL at %d: %s vs %s", i, alg.Srcs[i].Vals[pi], got[i])
		}
	}
}

// TestZQLExpressesBeta cross-checks Lemma 9's effect: βv_Y pivoting a sales
// group to profit produces the same visualizations as re-running the ZQL
// query with the Y axis swapped.
func TestZQLExpressesBeta(t *testing.T) {
	tb := fixture()
	g := universe(t)
	v := productGroup(t)
	profitRef := Select(g, starExcept(g, "year", "profit", "product", map[string]string{"location": "US"}))
	swapped := Swap("Y", v, profitRef)
	src := `
NAME | X      | Y        | Z                 | CONSTRAINTS   | VIZ                | PROCESS
*f1  | 'year' | 'profit' | v1 <- 'product'.* | location='US' | bar.(y=agg('sum')) |`
	q, err := zql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := zexec.Run(q, engine.NewRowStore(tb), zexec.Options{Table: "r", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Outputs[0]
	if out.Len() != swapped.Len() {
		t.Fatalf("βv = %d sources, ZQL = %d visualizations", swapped.Len(), out.Len())
	}
	// Compare rendered data point-wise (same product order: both sorted).
	for i, s := range swapped.Srcs {
		rendered := swapped.Render(s)
		zv := out.Vis[i]
		if len(rendered.Points) != len(zv.Points) {
			t.Fatalf("source %d: %d vs %d points", i, len(rendered.Points), len(zv.Points))
		}
		for j := range rendered.Points {
			if rendered.Points[j].Y != zv.Points[j].Y {
				t.Errorf("source %d point %d: %v vs %v", i, j, rendered.Points[j].Y, zv.Points[j].Y)
			}
		}
	}
}
