package zexec

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/vis"
	"repro/internal/zql"
)

// processCounters accumulates process-phase work across worker goroutines.
type processCounters struct {
	tuples        atomic.Int64
	distCalls     atomic.Int64
	distAbandoned atomic.Int64
}

func (c *processCounters) snapshot() ProcessStats {
	return ProcessStats{
		Tuples:        c.tuples.Load(),
		DistCalls:     c.distCalls.Load(),
		DistAbandoned: c.distAbandoned.Load(),
	}
}

// processWorkers is the worker count for one fan-out of n tuples:
// Options.ProcessParallelism when set, otherwise sequential at NoOpt (the
// differential oracle) and GOMAXPROCS at every optimized level.
func (ex *executor) processWorkers(n int) int {
	w := ex.opts.ProcessParallelism
	if w <= 0 {
		if ex.opts.Opt == NoOpt {
			w = 1
		} else {
			w = runtime.GOMAXPROCS(0)
		}
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// topKPrunable reports whether the declaration is an argmin/argmax [k=...]
// search the bounded-heap evaluator handles, returning the effective k.
// Pruning stays off at NoOpt and under ProcessNoPrune; argany keeps its
// input-order semantics (its [k=...] is a prefix, not a selection) and
// [k=inf] keeps everything, so neither can prune. [k=0] takes the ranked
// path too: skipping evaluation entirely would also skip the scoring errors
// the sequential oracle surfaces.
func (ex *executor) topKPrunable(d *zql.ProcessDecl, n int) (int, bool) {
	if ex.opts.Opt == NoOpt || ex.opts.ProcessNoPrune {
		return 0, false
	}
	if d.Filter != zql.FilterK || d.K < 1 || d.K >= n {
		return 0, false
	}
	if d.Mech != zql.MechArgmin && d.Mech != zql.MechArgmax {
		return 0, false
	}
	return d.K, true
}

// abandonableD reports whether scoring is a plain argmin over D(f1, f2) —
// the case where a partial distance exceeding the current k-th best proves
// the tuple irrelevant. argmax cannot abandon (partial sums lower-bound a
// distance; argmax pruning would need an upper bound), and nested inner
// aggregations need the exact leaf values.
func (ex *executor) abandonableD(d *zql.ProcessDecl) bool {
	return d.Mech == zql.MechArgmin && len(d.Inner) == 0 &&
		d.Expr != nil && d.Expr.Kind == zql.ObjD && ex.opts.Metric.Bounded != nil
}

// forEachTuple runs fn(i) for every i in [0, n) across the process worker
// pool. With one worker it degenerates to the plain sequential loop — in
// order, first error stops, panics propagate — keeping the O0 oracle exactly
// what it always was. With more workers, indices are dealt through an atomic
// cursor, panics are contained as errors (an unrecovered panic on a worker
// goroutine would kill the whole process — cf. the server batcher's drain),
// and the reported error is the one at the lowest failing index: the error
// the sequential loop would have surfaced.
func (ex *executor) forEachTuple(n int, fn func(i int) error) error {
	workers := ex.processWorkers(n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			// Cancellation point: a cancelled run stops between tuples.
			if ex.ctx != nil {
				if err := ex.ctx.Err(); err != nil {
					return err
				}
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		cursor atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup

		mu       sync.Mutex
		errIdx   = n
		firstErr error
	)
	record := func(i int, err error) {
		failed.Store(true)
		mu.Lock()
		if i < errIdx {
			errIdx, firstErr = i, err
		}
		mu.Unlock()
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				// The stop check must precede the draw: a drawn index is
				// always evaluated, so every index below a recorded failure
				// has run — abandoning an index after drawing it could let a
				// lower failing index go unreported.
				if failed.Load() {
					return
				}
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				// Cancellation point: a drawn index must still be accounted
				// for, so a cancelled worker records ctx.Err() at its index
				// (the lowest-index rule keeps the reported error stable).
				if ex.ctx != nil {
					if err := ex.ctx.Err(); err != nil {
						record(i, err)
						return
					}
				}
				if err := runContained(fn, i); err != nil {
					record(i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	// The cursor hands indices out in order and drawn indices always run, so
	// every index below the lowest recorded failure completed cleanly — the
	// recorded error is deterministic even though workers race.
	return firstErr
}

// runContained invokes fn(i), converting a panic into an error.
func runContained(fn func(int) error, i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("process worker panic: %v", r)
		}
	}()
	return fn(i)
}

// scoredTuple orders top-k candidates: the tuple's score plus its iteration
// index for stable tie-breaks.
type scoredTuple struct {
	idx   int
	score float64
}

// boundHeap keeps the k best scored tuples seen so far. The root is the
// worst retained pair, so a candidate either displaces it or is discarded in
// O(log k). "Better" is (score, index) ascending for argmin and (score
// descending, index ascending) for argmax — exactly the order the stable
// sort in evalRankFilter produces — so heap selection reproduces
// sort-then-truncate byte for byte.
type boundHeap struct {
	argmax bool
	cap    int
	items  []scoredTuple
}

// scoreBetter is the one score ordering every evaluation path shares: the
// ranked stable sort, the bounded heap, and the final output order. NaN
// scores (a user function can return one) compare false under both < and >,
// which would make the order schedule-dependent in the heap and
// merge-order-dependent in the stable sort; ranking them explicitly after
// every number keeps output identical at every opt level.
func scoreBetter(argmax bool, a, b float64) bool {
	if an, bn := math.IsNaN(a), math.IsNaN(b); an || bn {
		return !an && bn // a number beats NaN; NaN against NaN is a tie
	}
	if argmax {
		return a > b
	}
	return a < b
}

// better totally orders candidates: scoreBetter first, iteration index as
// the tie-break — exactly the order stable sorting in input order produces.
func (h *boundHeap) better(a, b scoredTuple) bool {
	if scoreBetter(h.argmax, a.score, b.score) {
		return true
	}
	if scoreBetter(h.argmax, b.score, a.score) {
		return false
	}
	return a.idx < b.idx
}

func (h *boundHeap) full() bool { return len(h.items) == h.cap }

// worst is the retained pair the next candidate must beat.
func (h *boundHeap) worst() scoredTuple { return h.items[0] }

// offer inserts the candidate if it beats the current worst (or the heap has
// room).
func (h *boundHeap) offer(t scoredTuple) {
	if len(h.items) < h.cap {
		h.items = append(h.items, t)
		h.up(len(h.items) - 1)
		return
	}
	if !h.better(t, h.items[0]) {
		return
	}
	h.items[0] = t
	h.down(0)
}

// up/down restore the worst-at-root heap property.
func (h *boundHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.better(h.items[parent], h.items[i]) {
			return
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

func (h *boundHeap) down(i int) {
	for {
		worst := i
		for _, c := range [2]int{2*i + 1, 2*i + 2} {
			if c < len(h.items) && h.better(h.items[worst], h.items[c]) {
				worst = c
			}
		}
		if worst == i {
			return
		}
		h.items[i], h.items[worst] = h.items[worst], h.items[i]
		i = worst
	}
}

// sorted returns the retained pairs best-first.
func (h *boundHeap) sorted() []scoredTuple {
	out := append([]scoredTuple(nil), h.items...)
	sort.Slice(out, func(i, j int) bool { return h.better(out[i], out[j]) })
	return out
}

// atomicFloat publishes the running top-k bound to workers without a lock.
// Updates happen under the heap's mutex, so stores are monotone; a stale
// read is merely a looser (safe) bound.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) store(v float64) { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) load() float64   { return math.Float64frombits(f.bits.Load()) }

// evalTopK evaluates an argmin/argmax [k=...] declaration through the
// bounded heap, and — for plain argmin D(...) searches — feeds the k-th-best
// score so far to the early-abandoning distance kernels as their cutoff. An
// abandoned tuple's true score provably exceeds the bound, and the bound
// only tightens, so the kept set and order equal the sequential
// stable-sort-then-truncate: the k best (score, index) pairs under the
// mechanism's ordering, ties broken by iteration order.
func (ex *executor) evalTopK(d *zql.ProcessDecl, tuples []loopTuple, k int) ([]loopTuple, error) {
	h := &boundHeap{argmax: d.Mech == zql.MechArgmax, cap: k}
	var hmu sync.Mutex
	var bound atomicFloat
	bound.store(math.Inf(1))
	abandonable := ex.abandonableD(d)
	err := ex.forEachTuple(len(tuples), func(i int) error {
		ex.proc.tuples.Add(1)
		var score float64
		if abandonable {
			s, abandoned, err := ex.evalDistBounded(d.Expr, tuples[i].assign, bound.load())
			if err != nil {
				return err
			}
			if abandoned {
				return nil // provably outside the top k
			}
			score = s
		} else {
			s, err := ex.evalInner(d, 0, tuples[i].assign)
			if err != nil {
				return err
			}
			score = s
		}
		hmu.Lock()
		h.offer(scoredTuple{idx: i, score: score})
		if abandonable && h.full() {
			bound.store(h.worst().score)
		}
		hmu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	picked := h.sorted()
	kept := make([]loopTuple, len(picked))
	for j, st := range picked {
		kept[j] = tuples[st.idx]
		kept[j].score = st.score
	}
	return kept, nil
}

// evalDistBounded scores a plain D(f1, f2) objective with an abandoning
// cutoff.
func (ex *executor) evalDistBounded(e *zql.ObjExpr, assign map[string]element, bound float64) (float64, bool, error) {
	v1, err := ex.lookupVis(e.F1, assign)
	if err != nil {
		return 0, false, err
	}
	v2, err := ex.lookupVis(e.F2, assign)
	if err != nil {
		return 0, false, err
	}
	ex.proc.distCalls.Add(1)
	dist, abandoned := vis.DistanceBounded(v1, v2, ex.opts.Metric, bound)
	if abandoned {
		ex.proc.distAbandoned.Add(1)
	}
	return dist, abandoned, nil
}
