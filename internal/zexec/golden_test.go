package zexec

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/compact"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/trace"
	"repro/internal/vis"
	"repro/internal/zpack"
	"repro/internal/zql"
)

// buildZpack serializes a fixture table to a temporary .zpack file.
func buildZpack(t *testing.T, tbl *dataset.Table) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), tbl.Name+".zpack")
	if err := zpack.Build(path, tbl); err != nil {
		t.Fatal(err)
	}
	return path
}

// The golden corpus is the differential oracle for the process-phase
// executor: every script under testdata/zql runs at every optimization level
// (NoOpt is the sequential, unpruned reference), on all three store
// back-ends, and with the worker pool forced on and pruning toggled — and
// every configuration must render byte-identically to the checked-in golden
// file.
//
// Regenerate goldens (from the row-store O0 oracle) after an intentional
// result change:
//
//	go test ./internal/zexec -run TestGoldenCorpus -update

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files from the row-store NoOpt oracle")

// goldenCase binds one script to its dataset fixture and user inputs.
type goldenCase struct {
	file   string
	table  func() *dataset.Table
	inputs map[string]*vis.Visualization
}

func drawnInput() map[string]*vis.Visualization {
	return map[string]*vis.Visualization{
		"f1": vis.FromFloats([]float64{0, 1, 2, 3, 4, 5}),
	}
}

func goldenCases() []goldenCase {
	return []goldenCase{
		{file: "similarity_topk.zql", table: fixtureSales, inputs: drawnInput()},
		{file: "dissimilarity_topk.zql", table: fixtureSales, inputs: drawnInput()},
		{file: "representative.zql", table: fixtureSales},
		{file: "outlier_two_level.zql", table: fixtureSales},
		{file: "threshold_rising.zql", table: fixtureSales},
		{file: "threshold_falling.zql", table: fixtureSales},
		{file: "multirow_pipeline.zql", table: fixtureSales},
		{file: "order_all.zql", table: fixtureSales},
		{file: "multi_output.zql", table: fixtureSales, inputs: drawnInput()},
		{file: "axis_loop.zql", table: fixtureSales, inputs: drawnInput()},
		{file: "inner_sum.zql", table: fixtureSales},
		{file: "set_algebra.zql", table: fixtureSales},
		{file: "subset_topk.zql", table: fixtureSales},
		{file: "airline_dissimilar.zql", table: fixtureAirline},
		{file: "airline_rising.zql", table: fixtureAirline},
	}
}

// goldenVariant is one executor configuration of the differential matrix.
type goldenVariant struct {
	name   string
	opts   func(o *Options)
	noPlan bool // pin written conjunct order: the planner-off baseline
	traced bool // run under a live span tree: tracing must not move a byte
}

func goldenVariants() []goldenVariant {
	vars := []goldenVariant{
		{name: "noopt", opts: func(o *Options) { o.Opt = NoOpt }},
		{name: "intraline", opts: func(o *Options) { o.Opt = IntraLine }},
		{name: "intratask", opts: func(o *Options) { o.Opt = IntraTask }},
		{name: "intertask", opts: func(o *Options) { o.Opt = InterTask }},
		// Force the worker pool on even on one core, and exercise the
		// pruned/unpruned pair explicitly.
		{name: "intertask-par4", opts: func(o *Options) { o.Opt = InterTask; o.ProcessParallelism = 4 }},
		{name: "intertask-par4-noprune", opts: func(o *Options) {
			o.Opt = InterTask
			o.ProcessParallelism = 4
			o.ProcessNoPrune = true
		}},
		// The conjunct planner reorders compiled WHERE legs at Prepare time;
		// running the corpus with it pinned off must still render the same
		// bytes at both ends of the optimization ladder.
		{name: "noopt-noplan", opts: func(o *Options) { o.Opt = NoOpt }, noPlan: true},
		{name: "intertask-noplan", opts: func(o *Options) { o.Opt = InterTask }, noPlan: true},
		// Tracing threads spans through the whole execution path; it is
		// observation only and must never change a rendered byte.
		{name: "intertask-traced", opts: func(o *Options) { o.Opt = InterTask }, traced: true},
		{name: "noopt-traced", opts: func(o *Options) { o.Opt = NoOpt }, traced: true},
	}
	return vars
}

// encodeResult renders a result deterministically for byte comparison:
// outputs with full point data, then bindings in sorted name order. SQLLog
// is deliberately excluded — the SQL issued differs by design across levels;
// the paper's invariant is that results don't.
func encodeResult(res *Result) string {
	var b strings.Builder
	for i, out := range res.Outputs {
		fmt.Fprintf(&b, "output %d (%d visualizations)\n", i+1, out.Len())
		for _, v := range out.Vis {
			b.WriteString("  ")
			b.WriteString(v.Label())
			if v.VizType != "" {
				b.WriteString(" viz=")
				b.WriteString(v.VizType)
			}
			b.WriteByte('\n')
			b.WriteString("   ")
			for _, p := range v.Points {
				fmt.Fprintf(&b, " (%s, %s)", p.X.String(), strconv.FormatFloat(p.Y, 'g', -1, 64))
			}
			b.WriteByte('\n')
		}
	}
	names := make([]string, 0, len(res.Bindings))
	for n := range res.Bindings {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "bind %s = %s\n", n, strings.Join(res.Bindings[n], ", "))
	}
	return b.String()
}

func runGolden(t *testing.T, src string, db engine.DB, gc goldenCase, mutate func(o *Options)) string {
	return runGoldenCtx(t, src, db, gc, mutate, false)
}

func runGoldenCtx(t *testing.T, src string, db engine.DB, gc goldenCase, mutate func(o *Options), traced bool) string {
	t.Helper()
	q, err := zql.Parse(src)
	if err != nil {
		t.Fatalf("parse %s: %v", gc.file, err)
	}
	opts := Options{Table: gc.table().Name, Seed: 42, Inputs: gc.inputs}
	mutate(&opts)
	ctx := context.Background()
	if traced {
		tr := trace.New("query", "")
		ctx = trace.WithSpan(ctx, tr.Root)
		defer func() {
			tr.Root.End()
			// The tree must actually record execution — a trivially empty
			// trace would make this variant vacuous.
			if tree := tr.Tree(); len(tree.Root.Children) == 0 {
				t.Errorf("traced run of %s produced an empty span tree", gc.file)
			}
		}()
	}
	res, err := RunContext(ctx, q, db, opts)
	if err != nil {
		t.Fatalf("run %s: %v", gc.file, err)
	}
	return encodeResult(res)
}

func TestGoldenCorpus(t *testing.T) {
	for _, gc := range goldenCases() {
		gc := gc
		t.Run(strings.TrimSuffix(gc.file, ".zql"), func(t *testing.T) {
			srcBytes, err := os.ReadFile(filepath.Join("testdata", "zql", gc.file))
			if err != nil {
				t.Fatal(err)
			}
			src := string(srcBytes)
			goldenPath := filepath.Join("testdata", "zql", strings.TrimSuffix(gc.file, ".zql")+".golden")
			tbl := gc.table()
			if *updateGolden {
				got := runGolden(t, src, engine.NewRowStore(tbl), gc, func(o *Options) { o.Opt = NoOpt })
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden (run with -update to generate): %v", err)
			}
			// The zpack backend runs the corpus over a lazily-loaded
			// on-disk build of the same table: the round-trip property
			// test of the persistent format.
			pack, err := zpack.Open(buildZpack(t, tbl))
			if err != nil {
				t.Fatal(err)
			}
			defer pack.Close()
			// The compacted variant re-clusters the same build (z-order on
			// auto-picked columns) before serving it: a physical row reorder
			// must never move a rendered byte. Fixture measures are exact
			// binary floats, so even aggregate sums are order-invariant.
			cpath := buildZpack(t, tbl)
			if _, err := compact.File(cpath, compact.Options{}); err != nil {
				t.Fatal(err)
			}
			cpack, err := zpack.Open(cpath)
			if err != nil {
				t.Fatal(err)
			}
			defer cpack.Close()
			backends := map[string]engine.DB{
				"row":    engine.NewRowStore(tbl),
				"bitmap": engine.NewBitmapStore(tbl),
				"column": engine.NewColumnStore(tbl),
				"zpack":  engine.NewColumnStoreFromSource(pack),
				// Same corpus over the re-clustered generation.
				"zpack-compacted": engine.NewColumnStoreFromSource(cpack),
				// Sharded variants: 3 deliberately uneven shards (SplitSourceAt
				// rather than a balanced split) over the in-memory source and
				// the same zpack reader. Scatter-gather must render the corpus
				// byte-identically to the single-walk scan at every opt level.
				"column-shard3": engine.NewShardedStoreFromShards(
					engine.SplitSourceAt(engine.NewMemSource(tbl), unevenCuts(engine.NewMemSource(tbl).NumSegments()))),
				"zpack-shard3": engine.NewShardedStoreFromShards(
					engine.SplitSourceAt(pack, unevenCuts(pack.NumSegments()))),
				// backend=auto routes each prepared plan to a row or column
				// sub-store by query shape; whichever way a script's queries
				// route, the rendered bytes must not move.
				"auto":        engine.NewAutoStore(1, tbl),
				"auto-shard3": engine.NewAutoStore(3, tbl),
			}
			for _, backend := range []string{"row", "bitmap", "column", "zpack", "zpack-compacted", "column-shard3", "zpack-shard3", "auto", "auto-shard3"} {
				db := backends[backend]
				for _, gv := range goldenVariants() {
					t.Run(backend+"/"+gv.name, func(t *testing.T) {
						if gv.noPlan {
							p := db.(engine.Planner)
							p.SetPlanning(false)
							defer p.SetPlanning(true)
						}
						got := runGoldenCtx(t, src, db, gc, gv.opts, gv.traced)
						if got != string(want) {
							t.Errorf("result differs from golden\n--- got ---\n%s\n--- want ---\n%s", clip(got), clip(string(want)))
						}
					})
				}
			}
		})
	}
}

// unevenCuts returns two lopsided interior cut points for a 3-way shard
// split: the first quarter, then the half, leaving the last shard twice the
// size of the middle one. On the single-segment fixtures this degenerates to
// [0, 0] — two empty shards plus one full one — which is exactly the edge the
// gather's identity-merge must handle.
func unevenCuts(nseg int) []int {
	return []int{nseg / 4, nseg / 2}
}

// clip keeps failure output readable for big results.
func clip(s string) string {
	const max = 4000
	if len(s) <= max {
		return s
	}
	return s[:max] + "\n... (clipped)"
}
