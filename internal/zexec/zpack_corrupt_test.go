package zexec

import (
	"os"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/zpack"
	"repro/internal/zql"
)

func mustParseZQL(t *testing.T, src string) *zql.Query {
	t.Helper()
	q, err := zql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// TestZpackCorruptEnumerationErrors pins the loud-failure contract for lazy
// datasets: when a data block is corrupt, a ZQL query whose axis `*`
// expansion must materialize the column (float values have no footer
// dictionary) fails with a zpack error instead of silently enumerating over
// missing values.
func TestZpackCorruptEnumerationErrors(t *testing.T) {
	tbl := fixtureSales()
	path := buildZpack(t, tbl)
	// Flip one byte in the first data block (directly after the 16-byte
	// header): segment 0's first column, so any load of segment 0 fails.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[16+3] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := zpack.Open(path) // footer is intact; only data is corrupt
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	db := engine.NewColumnStoreFromSource(r)
	src := `
NAME | X      | Y       | Z
*f1  | 'year' | 'sales' | v1 <- 'weight'.*`
	_, err = Run(mustParseZQL(t, src), db, Options{Table: "sales", Seed: 1})
	if err == nil {
		t.Fatal("query over corrupt data succeeded — enumeration silently incomplete")
	}
	if !strings.Contains(err.Error(), "zpack") {
		t.Errorf("error %q does not surface the zpack corruption", err)
	}
}
