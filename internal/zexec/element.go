package zexec

import (
	"sync"

	"repro/internal/vis"
	"repro/internal/zql"
)

// zqlQuery keeps the alias local so zexec.go can re-export it.
type zqlQuery = zql.Query

// elemKind records which column an element came from, which drives how
// lookups fall back to matching visualization structure when a variable name
// is absent from a combo.
type elemKind int

const (
	elemX elemKind = iota
	elemY
	elemZ
	elemViz
)

// element is one value of an ordered variable binding: an attribute name for
// axis variables, an (attribute, value) pair for Z variables, or a
// visualization definition for Viz variables.
type element struct {
	kind elemKind
	attr string      // Z: the attribute
	val  string      // Z: the value; X/Y: the attribute name
	viz  *zql.VizDef // Viz variables only
}

// key returns a comparable identity for set algebra.
func (e element) key() string {
	if e.viz != nil {
		return "viz:" + e.viz.String()
	}
	return e.attr + "\x00" + e.val
}

// display renders the element for Result.Bindings.
func (e element) display() string {
	if e.viz != nil {
		return e.viz.String()
	}
	if e.kind == elemZ {
		return e.val
	}
	return e.val
}

// binding is the ordered element list a variable iterates over.
type binding struct {
	elems []element
}

// group of variables declared together iterate in lockstep; tuples[i] holds
// the i-th element of every variable in the group.
type varGroup struct {
	vars   []string
	tuples [][]element // tuples[i][j] = value of vars[j] at position i
}

// dimension is one iteration axis of a row's visual component.
type dimension struct {
	vars  []string    // 0 (anonymous set), 1, or 2 (z-pair) variables
	elems [][]element // elems[i] is the tuple for position i (len == len(vars), or 1 for anonymous)
	ref   bool        // true when this dimension reuses an existing binding
}

// Collection is the materialized visual component of a row: an ordered list
// of visualizations plus, for each, the variable assignment that produced it.
type Collection struct {
	Vis    []*vis.Visualization
	combos []map[string]element
	// wildcard marks user-drawn collections, which compare against every
	// loop assignment (the -f1 rows of Tables 2.2, 3.14, 3.21).
	wildcard bool

	// Lazily computed matching metadata (see ensureMeta). Guarded by a
	// sync.Once because parallel process workers call matches concurrently.
	metaOnce      sync.Once
	comboVars     map[string]bool
	iteratedAttrs map[string]bool
	iteratedKinds map[elemKind]bool
}

// ensureMeta computes which variables and slots the collection iterates.
// Combos are immutable after construction, so this runs once; concurrent
// callers block until the maps are published.
func (c *Collection) ensureMeta() {
	c.metaOnce.Do(func() {
		c.comboVars = make(map[string]bool)
		c.iteratedAttrs = make(map[string]bool)
		c.iteratedKinds = make(map[elemKind]bool)
		for _, combo := range c.combos {
			for name, e := range combo {
				c.comboVars[name] = true
				if e.kind == elemZ {
					c.iteratedAttrs[e.attr] = true
				} else {
					c.iteratedKinds[e.kind] = true
				}
			}
		}
	})
}

// sameSlot reports whether two elements constrain the same aspect of a
// visualization: the same Z attribute, or the same axis position.
func sameSlot(a, b element) bool {
	if a.kind != b.kind {
		return false
	}
	if a.kind == elemZ {
		return a.attr == b.attr
	}
	return true
}

// iteratesSlot reports whether the collection varies over the element's slot.
func (c *Collection) iteratesSlot(e element) bool {
	if e.kind == elemZ {
		return c.iteratedAttrs[e.attr]
	}
	return c.iteratedKinds[e.kind]
}

// Len returns the number of visualizations.
func (c *Collection) Len() int { return len(c.Vis) }

// Combos exposes variable assignments for testing and rendering.
func (c *Collection) Combos() []map[string]string {
	out := make([]map[string]string, len(c.combos))
	for i, cb := range c.combos {
		m := make(map[string]string, len(cb))
		for k, e := range cb {
			m[k] = e.display()
		}
		out[i] = m
	}
	return out
}

// matches reports whether visualization i of the collection is consistent
// with the given assignment. A variable constrains the collection only when
// the collection iterates it:
//
//  1. variables present in the visualization's combo must agree by name;
//  2. a variable absent from the combos is skipped when another assignment
//     variable covering the same slot is combo-matched (e.g. Table 3.24's v3
//     must not constrain the collection keyed by v2, even though both range
//     over products);
//  3. otherwise, if the collection iterates the variable's slot, the element
//     must structurally match the visualization (slice for Z, axis attribute
//     for X/Y) — this is how derived components like f3 = f1 + f2 are looked
//     up under freshly declared variables (Table 3.16);
//  4. variables over slots the collection never varies are unconstrained —
//     a fixed 'product'.'stapler' row matches every product assignment
//     (Table 3.13).
func (c *Collection) matches(i int, assign map[string]element) bool {
	if c.wildcard {
		return true
	}
	c.ensureMeta()
	combo := c.combos[i]
	v := c.Vis[i]
	for name, want := range assign {
		if got, ok := combo[name]; ok {
			if got.key() != want.key() {
				return false
			}
			continue
		}
		if c.comboVars[name] {
			// Iterated by name elsewhere in the collection but absent from
			// this combo: cannot match.
			return false
		}
		covered := false
		for other, oe := range assign {
			if other != name && c.comboVars[other] && sameSlot(oe, want) {
				covered = true
				break
			}
		}
		if covered {
			continue
		}
		if !c.iteratesSlot(want) {
			continue
		}
		if !structuralMatch(v, want) {
			return false
		}
	}
	return true
}

// structuralMatch tests an element against the visualization's shape.
func structuralMatch(v *vis.Visualization, want element) bool {
	switch want.kind {
	case elemZ:
		for _, s := range v.Slices {
			if s.Attr == want.attr && s.Value == want.val {
				return true
			}
		}
		return false
	case elemX:
		return v.XAttr == want.val
	case elemY:
		return v.YAttr == want.val
	case elemViz:
		return want.viz == nil || v.VizType == want.viz.Type
	}
	return false
}

// find returns the first visualization consistent with the assignment, or
// nil. A single-visualization collection with an empty combo (user input,
// fixed rows) matches any assignment.
func (c *Collection) find(assign map[string]element) *vis.Visualization {
	for i := range c.Vis {
		if c.matches(i, assign) {
			return c.Vis[i]
		}
	}
	return nil
}

// concat appends the other collection (f3 = f1 + f2).
func (c *Collection) concat(o *Collection) *Collection {
	out := &Collection{}
	out.Vis = append(append([]*vis.Visualization{}, c.Vis...), o.Vis...)
	out.combos = append(append([]map[string]element{}, c.combos...), o.combos...)
	return out
}

// minus removes visualizations whose key appears in o (f3 = f1 - f2).
func (c *Collection) minus(o *Collection) *Collection {
	drop := make(map[string]bool, len(o.Vis))
	for _, v := range o.Vis {
		drop[v.Key()] = true
	}
	out := &Collection{}
	for i, v := range c.Vis {
		if !drop[v.Key()] {
			out.Vis = append(out.Vis, v)
			out.combos = append(out.combos, c.combos[i])
		}
	}
	return out
}

// intersect keeps visualizations whose key appears in o (f3 = f1 ^ f2).
func (c *Collection) intersect(o *Collection) *Collection {
	keep := make(map[string]bool, len(o.Vis))
	for _, v := range o.Vis {
		keep[v.Key()] = true
	}
	out := &Collection{}
	for i, v := range c.Vis {
		if keep[v.Key()] {
			out.Vis = append(out.Vis, v)
			out.combos = append(out.combos, c.combos[i])
		}
	}
	return out
}

// dedup keeps the first appearance of each visualization (f2 = f1.range).
func (c *Collection) dedup() *Collection {
	seen := make(map[string]bool, len(c.Vis))
	out := &Collection{}
	for i, v := range c.Vis {
		if seen[v.Key()] {
			continue
		}
		seen[v.Key()] = true
		out.Vis = append(out.Vis, v)
		out.combos = append(out.combos, c.combos[i])
	}
	return out
}

// index returns the i-th visualization, 1-based (f2 = f1[i]).
func (c *Collection) index(i int) *Collection {
	out := &Collection{}
	if i >= 1 && i <= len(c.Vis) {
		out.Vis = append(out.Vis, c.Vis[i-1])
		out.combos = append(out.combos, c.combos[i-1])
	}
	return out
}

// slice returns visualizations i..j inclusive, 1-based; j<0 means to the end
// (f2 = f1[i:j]).
func (c *Collection) slice(i, j int) *Collection {
	if i < 1 {
		i = 1
	}
	if j < 0 || j > len(c.Vis) {
		j = len(c.Vis)
	}
	out := &Collection{}
	for k := i; k <= j; k++ {
		out.Vis = append(out.Vis, c.Vis[k-1])
		out.combos = append(out.combos, c.combos[k-1])
	}
	return out
}

// reorder sorts the collection by the position of each visualization's
// matching element in the order variables' bindings (f2 = f1.order with
// `u1 ->` markers).
func (c *Collection) reorder(orderVars []*binding) *Collection {
	// For each element of the order bindings (in order), emit the first
	// not-yet-taken visualization matching it; unmatched visualizations keep
	// their relative order at the end.
	taken := make([]bool, len(c.Vis))
	out := &Collection{}
	if len(orderVars) > 0 {
		for pos := range orderVars[0].elems {
			assign := make(map[string]element, len(orderVars))
			for vi, b := range orderVars {
				if pos < len(b.elems) {
					assign[orderKeyVar(vi)] = b.elems[pos]
				}
			}
			for i := range c.Vis {
				if taken[i] {
					continue
				}
				if c.matchesElems(i, assign) {
					taken[i] = true
					out.Vis = append(out.Vis, c.Vis[i])
					out.combos = append(out.combos, c.combos[i])
					break
				}
			}
		}
	}
	for i := range c.Vis {
		if !taken[i] {
			out.Vis = append(out.Vis, c.Vis[i])
			out.combos = append(out.combos, c.combos[i])
		}
	}
	return out
}

func orderKeyVar(i int) string { return "\x00order" + string(rune('0'+i)) }

// matchesElems is like matches but ignores variable names entirely, matching
// each element structurally.
func (c *Collection) matchesElems(i int, assign map[string]element) bool {
	v := c.Vis[i]
	combo := c.combos[i]
	for _, want := range assign {
		ok := false
		for _, got := range combo {
			if got.key() == want.key() {
				ok = true
				break
			}
		}
		if !ok && !structuralMatch(v, want) {
			return false
		}
	}
	return true
}

// derivedElements extracts the ordered distinct elements of an attribute (Z)
// or axis (X/Y) appearing in the collection, for `v2 <- 'product'._` and
// `y1 <- _` bindings against derived components.
func (c *Collection) derivedElements(kind elemKind, attr string) []element {
	var out []element
	seen := make(map[string]bool)
	add := func(e element) {
		if !seen[e.key()] {
			seen[e.key()] = true
			out = append(out, e)
		}
	}
	for _, v := range c.Vis {
		switch kind {
		case elemZ:
			for _, s := range v.Slices {
				if s.Attr == attr {
					add(element{kind: elemZ, attr: attr, val: s.Value})
				}
			}
		case elemX:
			add(element{kind: elemX, val: v.XAttr})
		case elemY:
			add(element{kind: elemY, val: v.YAttr})
		}
	}
	return out
}
