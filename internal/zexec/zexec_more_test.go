package zexec

import (
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/minisql"
	"repro/internal/vis"
	"repro/internal/zql"
)

// TestWholeCorpusOnBitmapBackend runs every corpus query against the
// roaring-bitmap store, mirroring the row-store corpus test.
func TestWholeCorpusOnBitmapBackend(t *testing.T) {
	sdb := engine.NewBitmapStore(fixtureSales())
	adb := engine.NewBitmapStore(fixtureAirline())
	salesKeys := []string{"2.1", "2.3", "3.1", "3.2", "3.3", "3.4", "3.5", "3.6", "3.7", "3.8",
		"3.9", "3.10", "3.11", "3.12", "3.13", "3.15", "3.16", "3.17", "3.18", "3.19",
		"3.20", "3.22", "3.23", "3.24", "3.25", "5.1", "5.2"}
	for _, k := range salesKeys {
		runCorpus(t, k, sdb, salesOpts())
	}
	for _, k := range []string{"2.2", "3.14", "3.21"} {
		opts := salesOpts()
		opts.Inputs = map[string]*vis.Visualization{"f1": vis.FromFloats([]float64{0, 1, 2, 3, 4, 5})}
		runCorpus(t, k, sdb, opts)
	}
	for _, k := range []string{"7.1", "7.2"} {
		runCorpus(t, k, adb, Options{Table: "airline", Seed: 1})
	}
}

func TestTwoZColumnsCrossProduct(t *testing.T) {
	src := `
NAME | X      | Y       | Z                                  | Z2
*f1  | 'year' | 'sales' | v1 <- 'product'.{'chair','desk'}   | v2 <- 'location'.{'US','UK'}`
	q, err := zql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(q, salesDB(), salesOpts())
	if err != nil {
		t.Fatal(err)
	}
	out := res.Outputs[0]
	if out.Len() != 4 {
		t.Fatalf("Z × Z2 = %d visualizations, want 4", out.Len())
	}
	// Column-major order: Z varies slowest (chair/US, chair/UK, desk/US...).
	combos := out.Combos()
	if combos[0]["v1"] != "chair" || combos[0]["v2"] != "US" ||
		combos[1]["v1"] != "chair" || combos[1]["v2"] != "UK" ||
		combos[2]["v1"] != "desk" {
		t.Errorf("iteration order = %v", combos)
	}
	for _, v := range out.Vis {
		if len(v.Slices) != 2 {
			t.Errorf("each visualization should carry both slices: %v", v.Slices)
		}
	}
}

func TestDerivedChain(t *testing.T) {
	src := `
NAME         | X      | Y       | Z
f1           | 'year' | 'sales' | v1 <- 'product'.{'chair','desk'}
f2           | 'year' | 'sales' | v2 <- 'product'.{'desk','table'}
f3=f1+f2     |        |         |
f4=f3.range  |        |         |
*f5=f4[2:3]  |        |         |`
	q, err := zql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(q, salesDB(), salesOpts())
	if err != nil {
		t.Fatal(err)
	}
	// f3 = chair, desk, desk, table (4); f4 dedups to chair, desk, table;
	// f5 = positions 2..3 = desk, table.
	if res.Collections["f3"].Len() != 4 {
		t.Errorf("f3 = %d", res.Collections["f3"].Len())
	}
	if res.Collections["f4"].Len() != 3 {
		t.Errorf("f4 = %d", res.Collections["f4"].Len())
	}
	out := res.Outputs[0]
	if out.Len() != 2 || out.Vis[0].Slices[0].Value != "desk" || out.Vis[1].Slices[0].Value != "table" {
		t.Errorf("f5 = %v", out.Combos())
	}
}

func TestDerivedMinusAndIntersect(t *testing.T) {
	src := `
NAME     | X      | Y       | Z
f1       | 'year' | 'sales' | v1 <- 'product'.{'chair','desk','table'}
f2       | 'year' | 'sales' | v2 <- 'product'.{'desk'}
*f3=f1-f2 |       |         |
*f4=f1^f2 |       |         |`
	q, err := zql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(q, salesDB(), salesOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[0].Len() != 2 {
		t.Errorf("f1-f2 = %d, want 2", res.Outputs[0].Len())
	}
	if res.Outputs[1].Len() != 1 || res.Outputs[1].Vis[0].Slices[0].Value != "desk" {
		t.Errorf("f1^f2 = %v", res.Outputs[1].Combos())
	}
}

func TestUndefinedVariableStucksInterTask(t *testing.T) {
	src := `
NAME | X      | Y       | Z
*f1  | 'year' | 'sales' | v9`
	q, err := zql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	opts := salesOpts()
	opts.Opt = InterTask
	_, err = Run(q, salesDB(), opts)
	if err == nil || !strings.Contains(err.Error(), "stuck") {
		t.Errorf("expected stuck-query-tree error, got %v", err)
	}
}

func TestThresholdSortsArgmin(t *testing.T) {
	// argmin with threshold keeps matching values sorted ascending by score.
	src := `
NAME | X      | Y       | Z                 | CONSTRAINTS   | PROCESS
f1   | 'year' | 'sales' | v1 <- 'product'.* | location='US' | v2 <- argmin(v1)[t<0] T(f1)`
	q, err := zql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(q, salesDB(), salesOpts())
	if err != nil {
		t.Fatal(err)
	}
	got := res.Bindings["v2"]
	// Negative US sales trends: table, printer.
	wantSet(t, "v2", got, []string{"table", "printer"})
}

func TestVizVariableInProcess(t *testing.T) {
	// Iterate bin widths and pick the one whose chart is most similar to a
	// user-drawn shape — a Viz variable flowing through a task.
	src := `
NAME | X        | Y       | VIZ                                                               | PROCESS
-f1  |          |         |                                                                   |
f2   | 'weight' | 'sales' | s1 <- bar.{(x=bin(10), y=agg('sum')), (x=bin(50), y=agg('sum'))}  | s2 <- argmin(s1)[k=1] D(f1, f2)
`
	q, err := zql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	opts := salesOpts()
	opts.Inputs = map[string]*vis.Visualization{"f1": vis.FromFloats([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})}
	res, err := Run(q, salesDB(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Bindings["s2"]; len(got) != 1 || !strings.Contains(got[0], "bin(") {
		t.Errorf("s2 = %v", got)
	}
}

func TestDefaultAggOption(t *testing.T) {
	src := "NAME | X | Y\n*f1 | 'year' | 'sales'"
	q, err := zql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	sumOpts := salesOpts()
	sumOpts.DefaultAgg = "sum"
	avgOpts := salesOpts()
	rSum, err := Run(q, salesDB(), sumOpts)
	if err != nil {
		t.Fatal(err)
	}
	rAvg, err := Run(q, salesDB(), avgOpts)
	if err != nil {
		t.Fatal(err)
	}
	s := rSum.Outputs[0].Vis[0].Points[0].Y
	a := rAvg.Outputs[0].Vis[0].Points[0].Y
	if s <= a {
		t.Errorf("sum (%v) should exceed avg (%v) over many rows", s, a)
	}
}

func TestMetricChangesSimilarityWinner(t *testing.T) {
	// A time-shifted shape: DTW forgives the shift, Euclidean does not
	// necessarily. At minimum both must run and produce one winner each.
	src := `
NAME | X      | Y       | Z                 | PROCESS
-f1  |        |         |                   |
f2   | 'year' | 'sales' | v1 <- 'product'.* | v2 <- argmin(v1)[k=1] D(f1, f2)`
	q, err := zql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"euclidean", "dtw", "kl", "emd"} {
		m, err := vis.MetricByName(name)
		if err != nil {
			t.Fatal(err)
		}
		opts := salesOpts()
		opts.Metric = m
		opts.Inputs = map[string]*vis.Visualization{"f1": vis.FromFloats([]float64{0, 0, 1, 2, 3, 4})}
		res, err := Run(q, salesDB(), opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.Bindings["v2"]) != 1 {
			t.Errorf("%s: v2 = %v", name, res.Bindings["v2"])
		}
	}
}

func TestOrderedBagSemanticsPreserveDuplicates(t *testing.T) {
	// Union of overlapping ranges keeps duplicates (ordered bag semantics,
	// Section 4.1): f3 is an ordered bag, not a set.
	src := `
NAME | X      | Y        | Z                                      | CONSTRAINTS   | PROCESS
f1   | 'year' | 'sales'  | v1 <- 'product'.{'chair','desk'}       | location='US' | v2 <- argany(v1)[t>0] T(f1)
f2   | 'year' | 'sales'  | v1                                     | location='US' | v3 <- argany(v1)[t>0] T(f2)
*f3  | 'year' | 'profit' | v4 <- (v2.range | v3.range)            |               |`
	q, err := zql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(q, salesDB(), salesOpts())
	if err != nil {
		t.Fatal(err)
	}
	// v2 = v3 = {chair, desk}; union dedups by element key per Section 3.7's
	// set semantics for ranges, so f3 has exactly 2.
	if res.Outputs[0].Len() != 2 {
		t.Errorf("f3 = %d", res.Outputs[0].Len())
	}
}

func TestIndexDerivedSingle(t *testing.T) {
	src := `
NAME       | X      | Y       | Z                 | PROCESS
f1         | 'year' | 'sales' | v1 <- 'product'.* | u1 <- argmax(v1)[k=inf] T(f1)
f2=f1.order |       |         | u1 ->             |
*f3=f2[1]  |        |         |                   |`
	q, err := zql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(q, salesDB(), salesOpts())
	if err != nil {
		t.Fatal(err)
	}
	out := res.Outputs[0]
	if out.Len() != 1 {
		t.Fatalf("f3 = %d", out.Len())
	}
	// Highest overall trend across locations: stapler (rises everywhere).
	if got := out.Vis[0].Slices[0].Value; got != "stapler" {
		t.Errorf("f2[1] = %s, want stapler", got)
	}
}

func TestParallelismOption(t *testing.T) {
	opts := salesOpts()
	opts.Opt = IntraTask
	opts.Parallelism = 1
	res := runCorpus(t, "5.2", salesDB(), opts)
	if res.Outputs[0].Len() == 0 {
		t.Error("sequential parallelism must still work")
	}
}

func TestSQLLogRecordsTranslation(t *testing.T) {
	intra := salesOpts()
	intra.Opt = IntraLine
	res := runCorpus(t, "5.1", salesDB(), intra)
	if len(res.SQLLog) != res.Stats.SQLQueries {
		t.Fatalf("log has %d entries, stats say %d", len(res.SQLLog), res.Stats.SQLQueries)
	}
	// The Section 5.2 intra-line shape: one batched query per row with an
	// IN list, GROUP BY z then x, ORDER BY z then x.
	first := res.SQLLog[0]
	for _, want := range []string{"SELECT year", "SUM(sales)", "product IN (", "GROUP BY product, year", "ORDER BY product, year"} {
		if !strings.Contains(first, want) {
			t.Errorf("compiled SQL missing %q:\n%s", want, first)
		}
	}
	// NoOpt logs one statement per visualization with equality predicates.
	opts := salesOpts()
	opts.Opt = NoOpt
	res = runCorpus(t, "5.1", salesDB(), opts)
	if len(res.SQLLog) != 14 {
		t.Errorf("NoOpt log = %d statements, want 14", len(res.SQLLog))
	}
	if !strings.Contains(res.SQLLog[0], "product = '") {
		t.Errorf("NoOpt SQL should use equality predicates:\n%s", res.SQLLog[0])
	}
}

// TestSQLLogIsCanonicalSQL pins the AST renderer: every statement the
// compiler logs must parse back and re-render to the identical bytes, at
// every optimization level — the log is real, executable, canonical SQL.
func TestSQLLogIsCanonicalSQL(t *testing.T) {
	for _, key := range []string{"5.1", "5.2", "3.20"} {
		for _, level := range []OptLevel{NoOpt, IntraLine, IntraTask, InterTask} {
			opts := salesOpts()
			opts.Opt = level
			res := runCorpus(t, key, salesDB(), opts)
			if len(res.SQLLog) == 0 {
				t.Fatalf("%s at %s: empty SQL log", key, level)
			}
			for _, sql := range res.SQLLog {
				q, err := minisql.Parse(sql)
				if err != nil {
					t.Fatalf("%s at %s: logged SQL does not parse: %v\n%s", key, level, err, sql)
				}
				if got := q.SQL(); got != sql {
					t.Errorf("%s at %s: log is not canonical:\nlogged:   %s\nreparsed: %s", key, level, sql, got)
				}
			}
		}
	}
}
