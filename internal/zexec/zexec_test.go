package zexec

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/vis"
	"repro/internal/zql"
)

// fixtureSales builds a deterministic sales table with known trends:
//
//	product   US sales trend   UK sales trend   US profit trend
//	stapler   up               up               up
//	chair     up               down             down
//	desk      up               down             up
//	table     down             up               down
//	printer   down             down             down
//	lamp      flat             flat             flat
//
// Locations USA / Canada mirror US / UK so Table 3.8-style queries work.
func fixtureSales() *dataset.Table {
	t := dataset.NewTable("sales", []dataset.Field{
		{Name: "product", Kind: dataset.KindString},
		{Name: "location", Kind: dataset.KindString},
		{Name: "county", Kind: dataset.KindString},
		{Name: "state", Kind: dataset.KindString},
		{Name: "country", Kind: dataset.KindString},
		{Name: "zip", Kind: dataset.KindString},
		{Name: "year", Kind: dataset.KindInt},
		{Name: "month", Kind: dataset.KindInt},
		{Name: "time", Kind: dataset.KindInt},
		{Name: "weight", Kind: dataset.KindFloat},
		{Name: "size", Kind: dataset.KindFloat},
		{Name: "sales", Kind: dataset.KindFloat},
		{Name: "profit", Kind: dataset.KindFloat},
		{Name: "revenue", Kind: dataset.KindFloat},
	})
	salesSlope := map[string]map[string]float64{
		"stapler": {"US": 1, "UK": 1},
		"chair":   {"US": 1, "UK": -1},
		"desk":    {"US": 1, "UK": -1},
		"table":   {"US": -1, "UK": 1},
		"printer": {"US": -1, "UK": -1},
		"lamp":    {"US": 0, "UK": 0},
	}
	profitSlope := map[string]map[string]float64{
		"stapler": {"US": 1, "UK": 1},
		"chair":   {"US": -1, "UK": -1},
		"desk":    {"US": 1, "UK": 1},
		"table":   {"US": -1, "UK": -1},
		"printer": {"US": -1, "UK": -1},
		"lamp":    {"US": 0, "UK": 0},
	}
	baseLoc := map[string]string{"US": "US", "UK": "UK", "USA": "US", "Canada": "UK"}
	row := 0
	for p, slopes := range salesSlope {
		for _, loc := range []string{"US", "UK", "USA", "Canada"} {
			base := baseLoc[loc]
			for year := 2010; year <= 2015; year++ {
				for month := 1; month <= 3; month++ {
					dy := float64(year - 2010)
					sales := 500 + slopes[base]*dy*50 + float64(month)
					profit := 300 + profitSlope[p][base]*dy*30 + float64(month)
					zip := "02000"
					if loc == "UK" {
						zip = "99000"
					}
					t.AppendRow(
						dataset.SV(p), dataset.SV(loc),
						dataset.SV(loc+"-county"), dataset.SV(loc+"-state"), dataset.SV(loc+"-country"),
						dataset.SV(zip),
						dataset.IV(int64(year)), dataset.IV(int64(month)), dataset.IV(int64(year*100+month)),
						dataset.FV(float64((row*7)%100)), dataset.FV(float64((row*13)%50)),
						dataset.FV(sales), dataset.FV(profit), dataset.FV(sales*2),
					)
					row++
				}
			}
		}
	}
	return t
}

func fixtureAirline() *dataset.Table {
	t := dataset.NewTable("airline", []dataset.Field{
		{Name: "airport", Kind: dataset.KindString},
		{Name: "Month", Kind: dataset.KindString},
		{Name: "Day", Kind: dataset.KindInt},
		{Name: "year", Kind: dataset.KindInt},
		{Name: "ArrDelay", Kind: dataset.KindFloat},
		{Name: "DepDelay", Kind: dataset.KindFloat},
		{Name: "WeatherDelay", Kind: dataset.KindFloat},
	})
	slope := map[string]float64{"JFK": 2, "SFO": 1, "ORD": -1, "LAX": -2, "ATL": 0}
	months := []string{"01", "06", "12"}
	for ap, s := range slope {
		for year := 2010; year <= 2015; year++ {
			for _, m := range months {
				for day := 1; day <= 5; day++ {
					dy := float64(year - 2010)
					arr := 30 + s*dy*5 + float64(day)
					if m == "12" {
						arr += 20 * s // December diverges per airport slope
					}
					t.AppendRow(
						dataset.SV(ap), dataset.SV(m), dataset.IV(int64(day)), dataset.IV(int64(year)),
						dataset.FV(arr), dataset.FV(25+s*dy*5), dataset.FV(10+s*dy*2),
					)
				}
			}
		}
	}
	return t
}

func runCorpus(t *testing.T, key string, db engine.DB, opts Options) *Result {
	t.Helper()
	q, err := zql.Parse(zql.Corpus[key])
	if err != nil {
		t.Fatalf("parse %s: %v", key, err)
	}
	res, err := Run(q, db, opts)
	if err != nil {
		t.Fatalf("run %s: %v", key, err)
	}
	return res
}

func salesDB() engine.DB { return engine.NewRowStore(fixtureSales()) }

func salesOpts() Options { return Options{Table: "sales", Seed: 42} }

func TestTable21CollectionPerProduct(t *testing.T) {
	res := runCorpus(t, "2.1", salesDB(), salesOpts())
	if len(res.Outputs) != 1 {
		t.Fatalf("%d outputs", len(res.Outputs))
	}
	out := res.Outputs[0]
	if out.Len() != 6 {
		t.Fatalf("expected one visualization per product, got %d", out.Len())
	}
	for _, v := range out.Vis {
		if v.XAttr != "year" || v.YAttr != "sales" || v.VizType != "bar" {
			t.Errorf("vis shape = %s %s %s", v.XAttr, v.YAttr, v.VizType)
		}
		if len(v.Points) != 6 {
			t.Errorf("%s: %d points, want 6 years", v.Label(), len(v.Points))
		}
		if len(v.Slices) != 1 || v.Slices[0].Attr != "product" {
			t.Errorf("slices = %v", v.Slices)
		}
	}
}

func TestTable22SimilaritySearch(t *testing.T) {
	opts := salesOpts()
	// The user draws a steeply increasing line; stapler/chair/desk rise in
	// the US, but without constraints data spans both locations; chair &
	// desk cancel out, stapler rises everywhere.
	opts.Inputs = map[string]*vis.Visualization{
		"f1": vis.FromFloats([]float64{0, 1, 2, 3, 4, 5}),
	}
	res := runCorpus(t, "2.2", salesDB(), opts)
	if got := res.Bindings["v2"]; len(got) != 1 || got[0] != "stapler" {
		t.Errorf("most similar product = %v, want [stapler]", got)
	}
	if res.Outputs[0].Len() != 1 {
		t.Errorf("f3 should hold one visualization")
	}
}

func TestTable23TrendFilterAndRepresentatives(t *testing.T) {
	res := runCorpus(t, "2.3", salesDB(), salesOpts())
	wantSet(t, "v2 (US positive)", res.Bindings["v2"], []string{"chair", "desk", "stapler"})
	wantSet(t, "v3 (UK negative)", res.Bindings["v3"], []string{"chair", "desk", "printer"})
	wantSet(t, "v4 (intersection)", res.Bindings["v4"], []string{"chair", "desk"})
	if got := res.Outputs[0].Len(); got != 2 {
		t.Errorf("f4 = %d visualizations, want 2", got)
	}
}

func wantSet(t *testing.T, label string, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s = %v, want %v", label, got, want)
		return
	}
	gs := make(map[string]bool)
	for _, g := range got {
		gs[g] = true
	}
	for _, w := range want {
		if !gs[w] {
			t.Errorf("%s = %v, want %v", label, got, want)
			return
		}
	}
}

func TestTable31AxisSet(t *testing.T) {
	res := runCorpus(t, "3.1", salesDB(), salesOpts())
	out := res.Outputs[0]
	if out.Len() != 2 {
		t.Fatalf("%d visualizations, want 2 (profit and sales)", out.Len())
	}
	if out.Vis[0].YAttr != "profit" || out.Vis[1].YAttr != "sales" {
		t.Errorf("y attrs = %s, %s", out.Vis[0].YAttr, out.Vis[1].YAttr)
	}
}

func TestTable32SumComposition(t *testing.T) {
	res := runCorpus(t, "3.2", salesDB(), salesOpts())
	v := res.Outputs[0].Vis[0]
	if v.YAttr != "profit+sales" {
		t.Errorf("composite y = %q", v.YAttr)
	}
	// Point-wise sum: y = avg(profit) + avg(sales) per product.
	if len(v.Points) != 6 {
		t.Errorf("%d x points, want 6 products", len(v.Points))
	}
}

func TestTable33CrossComposition(t *testing.T) {
	res := runCorpus(t, "3.3", salesDB(), salesOpts())
	out := res.Outputs[0]
	if out.Len() != 3 {
		t.Fatalf("%d visualizations, want 3 (county, state, country)", out.Len())
	}
	if out.Vis[0].XAttr != "product×county" {
		t.Errorf("x attr = %q", out.Vis[0].XAttr)
	}
	if len(out.Vis[0].Points) == 0 {
		t.Error("composite x should produce points")
	}
}

func TestTable34FixedSlices(t *testing.T) {
	res := runCorpus(t, "3.4", salesDB(), salesOpts())
	if len(res.Outputs) != 2 {
		t.Fatalf("%d outputs", len(res.Outputs))
	}
	if res.Outputs[0].Vis[0].Slices[0].Value != "chair" || res.Outputs[1].Vis[0].Slices[0].Value != "desk" {
		t.Error("fixed slices wrong")
	}
}

func TestTable36AttributeIteration(t *testing.T) {
	res := runCorpus(t, "3.6", salesDB(), salesOpts())
	out := res.Outputs[0]
	// Every attribute except year and sales, every distinct value.
	tb := fixtureSales()
	want := 0
	for _, name := range tb.ColumnNames() {
		if name == "year" || name == "sales" {
			continue
		}
		want += len(tb.Column(name).DistinctSorted())
	}
	if out.Len() != want {
		t.Errorf("%d visualizations, want %d", out.Len(), want)
	}
}

func TestTable37PairUnion(t *testing.T) {
	res := runCorpus(t, "3.7", salesDB(), salesOpts())
	// The row has no name, so there are no explicit outputs; instead check
	// that execution produced bindings for the pair variables.
	if got := res.Bindings["v1"]; len(got) != 3 {
		t.Errorf("v1 = %v, want chair, desk, US", got)
	}
}

func TestTable38TwoZColumns(t *testing.T) {
	res := runCorpus(t, "3.8", salesDB(), salesOpts())
	if got := res.Bindings["v1"]; len(got) != 6 {
		t.Errorf("v1 = %v", got)
	}
	if got := res.Bindings["v2"]; len(got) != 2 {
		t.Errorf("v2 = %v", got)
	}
}

func TestTable39LikeConstraint(t *testing.T) {
	res := runCorpus(t, "3.9", salesDB(), salesOpts())
	v := res.Outputs[0].Vis[0]
	if len(v.Points) == 0 {
		t.Error("zip LIKE constraint should still match US rows")
	}
}

func TestTable310Binning(t *testing.T) {
	res := runCorpus(t, "3.10", salesDB(), salesOpts())
	v := res.Outputs[0].Vis[0]
	if len(v.Points) != 5 {
		t.Errorf("%d bins, want 5 (weights 0..99, width 20)", len(v.Points))
	}
	if v.Points[0].X.Float() != 0 || v.Points[4].X.Float() != 80 {
		t.Errorf("bin edges = %v .. %v", v.Points[0].X, v.Points[4].X)
	}
}

func TestTable311VizSetIteration(t *testing.T) {
	res := runCorpus(t, "3.11", salesDB(), salesOpts())
	out := res.Outputs[0]
	if out.Len() != 3 {
		t.Fatalf("%d visualizations, want 3 bin widths", out.Len())
	}
	if len(out.Vis[0].Points) <= len(out.Vis[2].Points) {
		t.Errorf("bin(20) should make more buckets than bin(40): %d vs %d",
			len(out.Vis[0].Points), len(out.Vis[2].Points))
	}
}

func TestTable313TopKSimilar(t *testing.T) {
	res := runCorpus(t, "3.13", salesDB(), salesOpts())
	v2 := res.Bindings["v2"]
	if len(v2) != 5 {
		t.Fatalf("v2 = %v, want the 5 non-stapler products", v2)
	}
	// All-location sales: stapler rises; chair/desk flat (US up + UK down
	// cancel); lamp flat; the closest shapes should come first and printer
	// (falling everywhere) should be last.
	if v2[len(v2)-1] != "printer" && v2[len(v2)-1] != "table" {
		t.Errorf("least similar = %v", v2[len(v2)-1])
	}
}

func TestTable315OrderBy(t *testing.T) {
	res := runCorpus(t, "3.15", salesDB(), salesOpts())
	out := res.Outputs[0]
	if out.Len() != 6 {
		t.Fatalf("%d visualizations", out.Len())
	}
	// Reordered by increasing trend: first should be a falling product,
	// last a rising one.
	first := out.Vis[0].Slices[0].Value
	last := out.Vis[out.Len()-1].Slices[0].Value
	if first != "printer" {
		t.Errorf("first (most decreasing overall) = %s, want printer", first)
	}
	if last != "stapler" {
		t.Errorf("last (most increasing) = %s, want stapler", last)
	}
}

func TestTable316DerivedComponent(t *testing.T) {
	res := runCorpus(t, "3.16", salesDB(), salesOpts())
	// v2 binds to products appearing in f3 = f1 + f2 (all products).
	if got := res.Bindings["v2"]; len(got) != 6 {
		t.Errorf("v2 = %v, want 6 products", got)
	}
	if got := res.Bindings["v3"]; len(got) != 6 {
		t.Errorf("v3 (top 10 of 6) = %v", got)
	}
	if res.Outputs[0].Len() != 6 {
		t.Errorf("f5 = %d", res.Outputs[0].Len())
	}
}

func TestTable317SalesVsProfitDiscrepancy(t *testing.T) {
	res := runCorpus(t, "3.17", salesDB(), salesOpts())
	v2 := res.Bindings["v2"]
	if len(v2) != 6 {
		t.Fatalf("v2 = %v", v2)
	}
	// chair: sales flat-ish across locations but profit falls; stapler:
	// both rise (similar). The most discrepant should not be stapler or lamp.
	if v2[0] == "stapler" || v2[0] == "lamp" {
		t.Errorf("most discrepant = %s", v2[0])
	}
}

func TestTable318RangeConstraint(t *testing.T) {
	res := runCorpus(t, "3.18", salesDB(), salesOpts())
	if res.Outputs[0].Len() != 1 {
		t.Fatalf("f2 should be a single aggregated visualization")
	}
	if len(res.Outputs[0].Vis[0].Points) != 6 {
		t.Errorf("points = %d, want 6 years", len(res.Outputs[0].Vis[0].Points))
	}
}

func TestTable319ComparativeSearch(t *testing.T) {
	res := runCorpus(t, "3.19", salesDB(), salesOpts())
	x2, y2 := res.Bindings["x2"], res.Bindings["y2"]
	if len(x2) != 4 || len(y2) != 4 {
		t.Fatalf("x2 = %v, y2 = %v (Cartesian of 2x2)", x2, y2)
	}
	if len(res.Outputs) != 2 {
		t.Errorf("%d outputs", len(res.Outputs))
	}
}

func TestTable320OutlierTwoLevel(t *testing.T) {
	res := runCorpus(t, "3.20", salesDB(), salesOpts())
	if got := res.Bindings["v3"]; len(got) != 6 {
		t.Errorf("v3 = %v", got)
	}
	if res.Outputs[0].Len() == 0 {
		t.Error("outlier output empty")
	}
}

func TestTable321TwoProcessesOneRow(t *testing.T) {
	opts := salesOpts()
	opts.Inputs = map[string]*vis.Visualization{
		"f1": vis.FromFloats([]float64{0, 1, 2, 3, 4, 5}),
	}
	res := runCorpus(t, "3.21", salesDB(), opts)
	v2, v3 := res.Bindings["v2"], res.Bindings["v3"]
	if len(v2) != 1 || len(v3) != 1 {
		t.Fatalf("v2 = %v, v3 = %v", v2, v3)
	}
	if v2[0] == v3[0] {
		t.Error("most similar and most dissimilar should differ")
	}
	if v3[0] != "stapler" {
		t.Errorf("most similar to rising line = %v, want stapler", v3)
	}
}

func TestTable324MultiVarTask(t *testing.T) {
	res := runCorpus(t, "3.24", salesDB(), salesOpts())
	if got := res.Bindings["v2"]; len(got) != 1 {
		t.Fatalf("v2 (1 representative) = %v", got)
	}
	if got := res.Bindings["v3"]; len(got) != 1 || got[0] != "stapler" {
		t.Errorf("v3 (highest sales trend) = %v, want [stapler]", got)
	}
	if got := res.Bindings["y2"]; len(got) == 0 {
		t.Error("y2 should bind")
	}
	if res.Outputs[0].Len() == 0 {
		t.Error("f4 empty")
	}
}

func TestTable325ScatterUnusualPair(t *testing.T) {
	res := runCorpus(t, "3.25", salesDB(), salesOpts())
	if got := res.Bindings["x3"]; len(got) != 1 {
		t.Fatalf("x3 = %v", got)
	}
	out := res.Outputs[0]
	if out.Len() != 1 || out.Vis[0].VizType != "scatterplot" {
		t.Errorf("f3 = %+v", out.Vis)
	}
	if len(out.Vis[0].Points) == 0 {
		t.Error("scatter should carry raw points")
	}
}

func TestTable71Airline(t *testing.T) {
	db := engine.NewRowStore(fixtureAirline())
	res := runCorpus(t, "7.1", db, Options{Table: "airline", Seed: 1})
	wantSet(t, "v2 (rising DepDelay)", res.Bindings["v2"], []string{"JFK", "SFO"})
	if res.Outputs[0].Len() != 4 {
		t.Errorf("f3 = %d visualizations, want |{JFK,SFO}| x 2 measures", res.Outputs[0].Len())
	}
}

func TestTable72Airline(t *testing.T) {
	db := engine.NewRowStore(fixtureAirline())
	res := runCorpus(t, "7.2", db, Options{Table: "airline", Seed: 1})
	if got := res.Bindings["v2"]; len(got) != 5 {
		t.Errorf("v2 = %v (k=10 clamps to 5 airports)", got)
	}
	if res.Outputs[0].Len() != 10 {
		t.Errorf("f3 = %d visualizations, want 5 airports x 2 measures", res.Outputs[0].Len())
	}
}

func TestWholeCorpusExecutesAtEveryOptLevel(t *testing.T) {
	salesKeys := []string{"2.1", "2.3", "3.1", "3.2", "3.3", "3.4", "3.5", "3.6", "3.7", "3.8",
		"3.9", "3.10", "3.11", "3.12", "3.13", "3.15", "3.16", "3.17", "3.18", "3.19",
		"3.20", "3.22", "3.23", "3.24", "3.25", "5.1", "5.2"}
	inputKeys := map[string]bool{"2.2": true, "3.14": true, "3.21": true}
	sdb := salesDB()
	adb := engine.NewRowStore(fixtureAirline())
	for _, level := range []OptLevel{NoOpt, IntraLine, IntraTask, InterTask} {
		for _, k := range salesKeys {
			opts := salesOpts()
			opts.Opt = level
			runCorpus(t, k, sdb, opts)
		}
		for k := range inputKeys {
			opts := salesOpts()
			opts.Opt = level
			opts.Inputs = map[string]*vis.Visualization{
				"f1": vis.FromFloats([]float64{0, 1, 2, 3, 4, 5}),
			}
			runCorpus(t, k, sdb, opts)
		}
		for _, k := range []string{"7.1", "7.2"} {
			runCorpus(t, k, adb, Options{Table: "airline", Opt: level, Seed: 1})
		}
	}
}

func TestOptLevelsAgreeOnTable51(t *testing.T) {
	var base []string
	for _, level := range []OptLevel{NoOpt, IntraLine, IntraTask, InterTask} {
		opts := salesOpts()
		opts.Opt = level
		res := runCorpus(t, "5.1", salesDB(), opts)
		var got []string
		for _, v := range res.Outputs[0].Vis {
			got = append(got, v.Slices[0].Value)
		}
		if base == nil {
			base = got
			continue
		}
		if len(got) != len(base) {
			t.Fatalf("%v: %v vs %v", level, got, base)
		}
		gs := map[string]bool{}
		for _, g := range got {
			gs[g] = true
		}
		for _, b := range base {
			if !gs[b] {
				t.Errorf("%v: output sets diverge: %v vs %v", level, got, base)
			}
		}
	}
}

func TestRequestCountsDropWithOptimization(t *testing.T) {
	counts := map[OptLevel]int{}
	queries := map[OptLevel]int{}
	for _, level := range []OptLevel{NoOpt, IntraLine, IntraTask, InterTask} {
		opts := salesOpts()
		opts.Opt = level
		res := runCorpus(t, "5.1", salesDB(), opts)
		counts[level] = res.Stats.Requests
		queries[level] = res.Stats.SQLQueries
	}
	// Table 5.1 has 5 products x 2 rows + 1 union row: NoOpt issues one
	// request per visualization.
	if counts[NoOpt] != 14 {
		t.Errorf("NoOpt requests = %d, want 14 (5+5+4 visualizations)", counts[NoOpt])
	}
	if queries[IntraLine] != 3 {
		t.Errorf("IntraLine queries = %d, want 3 (one per row)", queries[IntraLine])
	}
	if counts[IntraLine] != 3 {
		t.Errorf("IntraLine requests = %d, want 3", counts[IntraLine])
	}
	// Inter-task batches rows 1 and 2 together (row 2 independent of task 1).
	if counts[InterTask] != 2 {
		t.Errorf("InterTask requests = %d, want 2", counts[InterTask])
	}
	if !(counts[NoOpt] > counts[IntraLine] && counts[IntraLine] >= counts[IntraTask] && counts[IntraTask] >= counts[InterTask]) {
		t.Errorf("requests must decrease with optimization: %v", counts)
	}
}

func TestIntraTaskBatchesTable52(t *testing.T) {
	opts := salesOpts()
	opts.Opt = IntraTask
	res := runCorpus(t, "5.2", salesDB(), opts)
	// Rows 1+2 batch (row 2 carries the task), rows 3+4 batch.
	if res.Stats.Requests != 2 {
		t.Errorf("IntraTask requests = %d, want 2", res.Stats.Requests)
	}
}

func TestBothBackendsAgree(t *testing.T) {
	tb := fixtureSales()
	row := engine.NewRowStore(tb)
	bit := engine.NewBitmapStore(tb)
	r1 := runCorpus(t, "5.1", row, salesOpts())
	r2 := runCorpus(t, "5.1", bit, salesOpts())
	if len(r1.Outputs[0].Vis) != len(r2.Outputs[0].Vis) {
		t.Fatalf("backends disagree: %d vs %d", len(r1.Outputs[0].Vis), len(r2.Outputs[0].Vis))
	}
	for i := range r1.Outputs[0].Vis {
		a, b := r1.Outputs[0].Vis[i], r2.Outputs[0].Vis[i]
		if a.Key() != b.Key() || len(a.Points) != len(b.Points) {
			t.Errorf("vis %d diverges", i)
		}
	}
}

func TestUserDefinedFunction(t *testing.T) {
	src := "NAME | X | Y | Z | PROCESS\nf1 | 'year' | 'sales' | v1 <- 'product'.* | v2 <- argmax(v1)[k=1] Spread(f1)\n*f2 | 'year' | 'sales' | v2 |"
	q, err := zql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	opts := salesOpts()
	opts.UserFuncs = map[string]UserFunc{
		"Spread": func(args []*vis.Visualization) float64 {
			ys := args[0].Ys()
			if len(ys) == 0 {
				return 0
			}
			lo, hi := ys[0], ys[0]
			for _, y := range ys {
				if y < lo {
					lo = y
				}
				if y > hi {
					hi = y
				}
			}
			return hi - lo
		},
	}
	res, err := Run(q, salesDB(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Bindings["v2"]; len(got) != 1 {
		t.Errorf("v2 = %v", got)
	}
}

func TestErrorPaths(t *testing.T) {
	q, _ := zql.Parse("NAME | X | Y\n*f1 | 'year' | 'sales'")
	if _, err := Run(q, salesDB(), Options{Table: "missing"}); err == nil {
		t.Error("missing table should error")
	}
	// User-input row without input.
	q2, _ := zql.Parse(zql.Corpus["2.2"])
	if _, err := Run(q2, salesDB(), salesOpts()); err == nil {
		t.Error("missing user input should error")
	}
	// Undefined variable reference.
	q3, err := zql.Parse("NAME | X | Y | Z\n*f1 | 'year' | 'sales' | v9")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(q3, salesDB(), salesOpts()); err == nil {
		t.Error("undefined z var should error")
	}
	// Unknown attribute.
	q4, _ := zql.Parse("NAME | X | Y\n*f1 | 'bogus' | 'sales'")
	if _, err := Run(q4, salesDB(), salesOpts()); err == nil {
		t.Error("unknown attribute should error")
	}
}

func TestStatsPopulated(t *testing.T) {
	res := runCorpus(t, "2.1", salesDB(), salesOpts())
	if res.Stats.SQLQueries == 0 || res.Stats.Requests == 0 {
		t.Errorf("stats = %+v", res.Stats)
	}
}
