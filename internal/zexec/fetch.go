package zexec

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/vis"
	"repro/internal/zql"
)

// fetchUnit is one visualization to retrieve for a row.
type fetchUnit struct {
	rs     *rowState
	order  int // position within the row's combo iteration
	assign map[string]element
	xattrs []string // ≥2 for composite × axes
	yattrs []string // ≥2 for composite + axes
	slices []vis.Slice
	vd     zql.VizDef
	out    *vis.Visualization // filled by the splitter
}

// buildUnits enumerates a resolved row's visualizations.
func (ex *executor) buildUnits(rs *rowState) ([]*fetchUnit, error) {
	var units []*fetchUnit
	var buildErr error
	forEachCombo(rs.dims, func(assign map[string]element, tuple []element) {
		if buildErr != nil {
			return
		}
		u := &fetchUnit{rs: rs, order: len(units), assign: assign}
		for _, e := range tuple {
			switch e.kind {
			case elemX:
				u.xattrs = splitComposite(e.val)
			case elemY:
				u.yattrs = strings.Split(e.val, "+")
			case elemZ:
				u.slices = append(u.slices, vis.Slice{Attr: e.attr, Value: e.val})
			case elemViz:
				u.vd = *e.viz
			}
		}
		if len(u.xattrs) == 0 || len(u.yattrs) == 0 {
			buildErr = fmt.Errorf("zexec: line %d: row needs both X and Y axes", rs.row.Line)
			return
		}
		units = append(units, u)
	})
	return units, buildErr
}

func splitComposite(attr string) []string {
	if strings.Contains(attr, "×") {
		return strings.Split(attr, "×")
	}
	return []string{attr}
}

// sqlJob is one SQL statement feeding one or more units.
type sqlJob struct {
	sql   string
	units []*fetchUnit
	// Splitting metadata:
	xCols   []string
	zCols   []string
	yAlias  map[string]string // y attribute -> result column alias
	raw     bool              // scatter: no aggregation
	rawYCol string
}

// agg resolution: explicit y=agg('f') wins; scatterplots default to raw
// points; everything else uses the rule-of-thumb default aggregate.
func (ex *executor) aggFor(vd zql.VizDef) (agg string, raw bool) {
	if vd.YAgg != "" {
		return vd.YAgg, false
	}
	if vd.Type == "scatterplot" {
		return "", true
	}
	return ex.opts.DefaultAgg, false
}

// unitSQL builds the naive one-query-per-visualization SQL of Section 5.1.
func (ex *executor) unitSQL(u *fetchUnit, constraints string) (*sqlJob, error) {
	agg, raw := ex.aggFor(u.vd)
	var sb strings.Builder
	sb.WriteString("SELECT ")
	for i, x := range u.xattrs {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(xExpr(x, u.vd.XBin, i == 0))
	}
	yAlias := make(map[string]string, len(u.yattrs))
	if raw {
		fmt.Fprintf(&sb, ", %s", u.yattrs[0])
	} else {
		for i, y := range u.yattrs {
			alias := fmt.Sprintf("a%d", i)
			yAlias[y] = alias
			fmt.Fprintf(&sb, ", %s(%s) AS %s", strings.ToUpper(agg), y, alias)
		}
	}
	fmt.Fprintf(&sb, " FROM %s", ex.table.Name)
	where := whereClause(u.slices, constraints)
	if where != "" {
		sb.WriteString(" WHERE " + where)
	}
	if !raw {
		sb.WriteString(" GROUP BY ")
		sb.WriteString(groupByList(u.xattrs, u.vd.XBin))
	}
	sb.WriteString(" ORDER BY " + strings.Join(xOutNames(u.xattrs, u.vd.XBin), ", "))
	job := &sqlJob{sql: sb.String(), units: []*fetchUnit{u}, xCols: xOutNames(u.xattrs, u.vd.XBin), yAlias: yAlias, raw: raw}
	if raw {
		job.rawYCol = u.yattrs[0]
	}
	return job, nil
}

func xExpr(attr string, bin float64, binnable bool) string {
	if bin > 0 && binnable {
		return fmt.Sprintf("BIN(%s, %g) AS xbin", attr, bin)
	}
	return attr
}

func xOutNames(xattrs []string, bin float64) []string {
	out := make([]string, len(xattrs))
	for i, x := range xattrs {
		if bin > 0 && i == 0 {
			out[i] = "xbin"
		} else {
			out[i] = x
		}
	}
	return out
}

func groupByList(xattrs []string, bin float64) string {
	parts := make([]string, len(xattrs))
	for i, x := range xattrs {
		if bin > 0 && i == 0 {
			parts[i] = fmt.Sprintf("BIN(%s, %g)", x, bin)
		} else {
			parts[i] = x
		}
	}
	return strings.Join(parts, ", ")
}

func whereClause(slices []vis.Slice, constraints string) string {
	var parts []string
	for _, s := range slices {
		parts = append(parts, fmt.Sprintf("%s = '%s'", s.Attr, strings.ReplaceAll(s.Value, "'", "''")))
	}
	if strings.TrimSpace(constraints) != "" {
		parts = append(parts, "("+constraints+")")
	}
	return strings.Join(parts, " AND ")
}

// batchKey groups units that one SQL query can serve: same x shape, same
// aggregation, same z attribute signature, same rawness.
func batchKey(u *fetchUnit, agg string, raw bool) string {
	zattrs := make([]string, len(u.slices))
	for i, s := range u.slices {
		zattrs[i] = s.Attr
	}
	return strings.Join(u.xattrs, "×") + "|" + fmt.Sprint(u.vd.XBin) + "|" + agg + "|" +
		fmt.Sprint(raw) + "|" + strings.Join(zattrs, ",")
}

// batchSQL builds the intra-line batched SQL of Section 5.2: Z values become
// IN lists, Y attributes become a multi-aggregate select, and the Z columns
// are added to SELECT/GROUP BY/ORDER BY so results can be split.
func (ex *executor) batchSQL(units []*fetchUnit, constraints string) (*sqlJob, error) {
	u0 := units[0]
	agg, raw := ex.aggFor(u0.vd)
	// Collect distinct y attributes and z values per attribute, preserving
	// first-seen order.
	var yattrs []string
	ySeen := make(map[string]bool)
	zattrs := make([]string, len(u0.slices))
	zvals := make([]map[string]bool, len(u0.slices))
	zlists := make([][]string, len(u0.slices))
	for i, s := range u0.slices {
		zattrs[i] = s.Attr
		zvals[i] = make(map[string]bool)
	}
	for _, u := range units {
		for _, y := range u.yattrs {
			if !ySeen[y] {
				ySeen[y] = true
				yattrs = append(yattrs, y)
			}
		}
		for i, s := range u.slices {
			if !zvals[i][s.Value] {
				zvals[i][s.Value] = true
				zlists[i] = append(zlists[i], s.Value)
			}
		}
	}
	var sb strings.Builder
	sb.WriteString("SELECT ")
	for i, x := range u0.xattrs {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(xExpr(x, u0.vd.XBin, i == 0))
	}
	yAlias := make(map[string]string, len(yattrs))
	if raw {
		fmt.Fprintf(&sb, ", %s", yattrs[0])
	} else {
		for i, y := range yattrs {
			alias := fmt.Sprintf("a%d", i)
			yAlias[y] = alias
			fmt.Fprintf(&sb, ", %s(%s) AS %s", strings.ToUpper(agg), y, alias)
		}
	}
	for _, z := range zattrs {
		fmt.Fprintf(&sb, ", %s", z)
	}
	fmt.Fprintf(&sb, " FROM %s", ex.table.Name)
	var where []string
	for i, z := range zattrs {
		quoted := make([]string, len(zlists[i]))
		for j, v := range zlists[i] {
			quoted[j] = "'" + strings.ReplaceAll(v, "'", "''") + "'"
		}
		where = append(where, fmt.Sprintf("%s IN (%s)", z, strings.Join(quoted, ", ")))
	}
	if strings.TrimSpace(constraints) != "" {
		where = append(where, "("+constraints+")")
	}
	if len(where) > 0 {
		sb.WriteString(" WHERE " + strings.Join(where, " AND "))
	}
	orderCols := append(append([]string{}, zattrs...), xOutNames(u0.xattrs, u0.vd.XBin)...)
	if !raw {
		sb.WriteString(" GROUP BY ")
		groupCols := append(append([]string{}, zattrs...), groupByList(u0.xattrs, u0.vd.XBin))
		sb.WriteString(strings.Join(groupCols, ", "))
	}
	sb.WriteString(" ORDER BY " + strings.Join(orderCols, ", "))
	job := &sqlJob{
		sql:    sb.String(),
		units:  units,
		xCols:  xOutNames(u0.xattrs, u0.vd.XBin),
		zCols:  zattrs,
		yAlias: yAlias,
		raw:    raw,
	}
	if raw {
		job.rawYCol = yattrs[0]
	}
	return job, nil
}

// rowJobs compiles a resolved row into SQL jobs under the current
// optimization level.
func (ex *executor) rowJobs(rs *rowState, units []*fetchUnit) ([]*sqlJob, error) {
	constraints, err := ex.expandConstraints(rs.row.Constraints)
	if err != nil {
		return nil, err
	}
	if ex.opts.Opt == NoOpt {
		jobs := make([]*sqlJob, 0, len(units))
		for _, u := range units {
			j, err := ex.unitSQL(u, constraints)
			if err != nil {
				return nil, err
			}
			jobs = append(jobs, j)
		}
		return jobs, nil
	}
	// Intra-line batching: group compatible units into one query each.
	groups := make(map[string][]*fetchUnit)
	var keys []string
	for _, u := range units {
		agg, raw := ex.aggFor(u.vd)
		k := batchKey(u, agg, raw)
		if _, ok := groups[k]; !ok {
			keys = append(keys, k)
		}
		groups[k] = append(groups[k], u)
	}
	sort.Strings(keys)
	var jobs []*sqlJob
	for _, k := range keys {
		j, err := ex.batchSQL(groups[k], constraints)
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, j)
	}
	return jobs, nil
}

// executeBatch runs the jobs of one request concurrently and splits their
// results into the units' visualizations. It counts one request.
func (ex *executor) executeBatch(jobs []*sqlJob) error {
	if len(jobs) == 0 {
		return nil
	}
	ex.stats.Requests++
	ex.stats.SQLQueries += len(jobs)
	for _, j := range jobs {
		ex.sqlLog = append(ex.sqlLog, j.sql)
	}
	start := time.Now()
	par := ex.opts.Parallelism
	if par <= 0 {
		par = 8
	}
	sem := make(chan struct{}, par)
	var wg sync.WaitGroup
	errs := make([]error, len(jobs))
	results := make([]*engine.Result, len(jobs))
	for i, j := range jobs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, j *sqlJob) {
			defer wg.Done()
			defer func() { <-sem }()
			res, err := ex.db.ExecuteSQL(j.sql)
			results[i], errs[i] = res, err
		}(i, j)
	}
	wg.Wait()
	ex.stats.QueryTime += time.Since(start)
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("zexec: executing %q: %w", jobs[i].sql, err)
		}
	}
	for i, j := range jobs {
		if err := splitJob(j, results[i]); err != nil {
			return err
		}
	}
	return nil
}

// splitJob distributes a job's result rows into its units' visualizations.
func splitJob(j *sqlJob, res *engine.Result) error {
	xIdx := make([]int, len(j.xCols))
	for i, c := range j.xCols {
		xIdx[i] = res.ColIndex(c)
		if xIdx[i] < 0 {
			return fmt.Errorf("zexec: result missing x column %q", c)
		}
	}
	zIdx := make([]int, len(j.zCols))
	for i, c := range j.zCols {
		zIdx[i] = res.ColIndex(c)
		if zIdx[i] < 0 {
			return fmt.Errorf("zexec: result missing z column %q", c)
		}
	}
	// Index rows by their z-value signature.
	rowsByZ := make(map[string][]dataset.Row)
	var zOrder []string
	for _, row := range res.Rows {
		var kb strings.Builder
		for _, zi := range zIdx {
			kb.WriteString(row[zi].String())
			kb.WriteByte('\x00')
		}
		k := kb.String()
		if _, ok := rowsByZ[k]; !ok {
			zOrder = append(zOrder, k)
		}
		rowsByZ[k] = append(rowsByZ[k], row)
	}
	for _, u := range j.units {
		// z columns in job order correspond to the unit's slices in order.
		var kb strings.Builder
		for i := range j.zCols {
			kb.WriteString(u.slices[i].Value)
			kb.WriteByte('\x00')
		}
		rows := rowsByZ[kb.String()]
		v := &vis.Visualization{
			XAttr:   strings.Join(u.xattrs, "×"),
			YAttr:   strings.Join(u.yattrs, "+"),
			Slices:  u.slices,
			VizType: u.vd.Type,
		}
		for _, row := range rows {
			x := composeX(row, xIdx)
			var y float64
			if j.raw {
				yi := res.ColIndex(j.rawYCol)
				if yi < 0 {
					return fmt.Errorf("zexec: result missing y column %q", j.rawYCol)
				}
				y = row[yi].Float()
			} else {
				for _, yattr := range u.yattrs {
					alias := j.yAlias[yattr]
					yi := res.ColIndex(alias)
					if yi < 0 {
						return fmt.Errorf("zexec: result missing aggregate column %q", alias)
					}
					y += row[yi].Float()
				}
			}
			v.Points = append(v.Points, vis.Point{X: x, Y: y})
		}
		u.out = v
	}
	return nil
}

// composeX renders a result row's x value: the single x column's value, or a
// composite "a|b" for × axes.
func composeX(row dataset.Row, xIdx []int) dataset.Value {
	if len(xIdx) == 1 {
		return row[xIdx[0]]
	}
	parts := make([]string, len(xIdx))
	for i, xi := range xIdx {
		parts[i] = row[xi].String()
	}
	return dataset.SV(strings.Join(parts, "|"))
}

// collectionFromUnits assembles a row's collection after its units are
// fetched.
func collectionFromUnits(units []*fetchUnit) *Collection {
	sorted := append([]*fetchUnit(nil), units...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].order < sorted[j].order })
	c := &Collection{}
	for _, u := range sorted {
		c.Vis = append(c.Vis, u.out)
		c.combos = append(c.combos, u.assign)
	}
	return c
}
