package zexec

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/minisql"
	"repro/internal/trace"
	"repro/internal/vis"
	"repro/internal/zql"
)

// fetchUnit is one visualization to retrieve for a row.
type fetchUnit struct {
	rs     *rowState
	order  int // position within the row's combo iteration
	assign map[string]element
	xattrs []string // ≥2 for composite × axes
	yattrs []string // ≥2 for composite + axes
	slices []vis.Slice
	vd     zql.VizDef
	out    *vis.Visualization // filled by the splitter
}

// buildUnits enumerates a resolved row's visualizations.
func (ex *executor) buildUnits(rs *rowState) ([]*fetchUnit, error) {
	var units []*fetchUnit
	var buildErr error
	forEachCombo(rs.dims, func(assign map[string]element, tuple []element) {
		if buildErr != nil {
			return
		}
		u := &fetchUnit{rs: rs, order: len(units), assign: assign}
		for _, e := range tuple {
			switch e.kind {
			case elemX:
				u.xattrs = splitComposite(e.val)
			case elemY:
				u.yattrs = strings.Split(e.val, "+")
			case elemZ:
				u.slices = append(u.slices, vis.Slice{Attr: e.attr, Value: e.val})
			case elemViz:
				u.vd = *e.viz
			}
		}
		if len(u.xattrs) == 0 || len(u.yattrs) == 0 {
			buildErr = fmt.Errorf("zexec: line %d: row needs both X and Y axes", rs.row.Line)
			return
		}
		units = append(units, u)
	})
	return units, buildErr
}

func splitComposite(attr string) []string {
	if strings.Contains(attr, "×") {
		return strings.Split(attr, "×")
	}
	return []string{attr}
}

// queryJob is one logical query feeding one or more units. The query is a
// minisql AST built directly by the compiler — no SQL text is parsed on the
// hot path; the statement is only rendered to SQL for the inspectable log.
type queryJob struct {
	q     *minisql.Query
	units []*fetchUnit
	// Splitting metadata:
	xCols   []string
	zCols   []string
	yAlias  map[string]string // y attribute -> result column alias
	raw     bool              // scatter: no aggregation
	rawYCol string
}

// agg resolution: explicit y=agg('f') wins; scatterplots default to raw
// points; everything else uses the rule-of-thumb default aggregate.
func (ex *executor) aggFor(vd zql.VizDef) (agg string, raw bool) {
	if vd.YAgg != "" {
		return vd.YAgg, false
	}
	if vd.Type == "scatterplot" {
		return "", true
	}
	return ex.opts.DefaultAgg, false
}

// unitQuery builds the naive one-query-per-visualization plan of Section 5.1
// as a minisql AST.
func (ex *executor) unitQuery(u *fetchUnit, constraints minisql.Expr) (*queryJob, error) {
	agg, raw := ex.aggFor(u.vd)
	q := &minisql.Query{From: ex.table.Name, Limit: -1}
	for i, x := range u.xattrs {
		q.Select = append(q.Select, xSelectItem(x, u.vd.XBin, i == 0))
	}
	yAlias := make(map[string]string, len(u.yattrs))
	if raw {
		q.Select = append(q.Select, minisql.SelectItem{Col: u.yattrs[0]})
	} else {
		fn, err := minisql.ParseAgg(agg)
		if err != nil {
			return nil, err
		}
		for i, y := range u.yattrs {
			alias := fmt.Sprintf("a%d", i)
			yAlias[y] = alias
			q.Select = append(q.Select, minisql.SelectItem{Agg: fn, Col: y, Alias: alias})
		}
		for i, x := range u.xattrs {
			q.GroupBy = append(q.GroupBy, xGroupKey(x, u.vd.XBin, i == 0))
		}
	}
	q.Where = whereExpr(u.slices, constraints)
	for _, c := range xOutNames(u.xattrs, u.vd.XBin) {
		q.OrderBy = append(q.OrderBy, minisql.OrderItem{Col: c})
	}
	job := &queryJob{q: q, units: []*fetchUnit{u}, xCols: xOutNames(u.xattrs, u.vd.XBin), yAlias: yAlias, raw: raw}
	if raw {
		job.rawYCol = u.yattrs[0]
	}
	return job, nil
}

// xSelectItem is an x-axis select item; the first x attribute carries the
// binning and is aliased "xbin" so splitting can find it.
func xSelectItem(attr string, bin float64, binnable bool) minisql.SelectItem {
	if bin > 0 && binnable {
		return minisql.SelectItem{Col: attr, Bin: bin, Alias: "xbin"}
	}
	return minisql.SelectItem{Col: attr}
}

func xGroupKey(attr string, bin float64, binnable bool) minisql.GroupKey {
	if bin > 0 && binnable {
		return minisql.GroupKey{Col: attr, Bin: bin}
	}
	return minisql.GroupKey{Col: attr}
}

func xOutNames(xattrs []string, bin float64) []string {
	out := make([]string, len(xattrs))
	for i, x := range xattrs {
		if bin > 0 && i == 0 {
			out[i] = "xbin"
		} else {
			out[i] = x
		}
	}
	return out
}

// whereExpr conjoins slice equality predicates with the row constraints.
func whereExpr(slices []vis.Slice, constraints minisql.Expr) minisql.Expr {
	var parts []minisql.Expr
	for _, s := range slices {
		parts = append(parts, &minisql.Compare{Col: s.Attr, Op: minisql.CmpEq, Val: dataset.SV(s.Value)})
	}
	if constraints != nil {
		parts = append(parts, constraints)
	}
	return andOf(parts)
}

// andOf conjoins predicate parts: nil for none, the bare expression for one.
func andOf(parts []minisql.Expr) minisql.Expr {
	switch len(parts) {
	case 0:
		return nil
	case 1:
		return parts[0]
	}
	return &minisql.And{Args: parts}
}

// batchKey groups units that one SQL query can serve: same x shape, same
// aggregation, same z attribute signature, same rawness.
func batchKey(u *fetchUnit, agg string, raw bool) string {
	zattrs := make([]string, len(u.slices))
	for i, s := range u.slices {
		zattrs[i] = s.Attr
	}
	return strings.Join(u.xattrs, "×") + "|" + fmt.Sprint(u.vd.XBin) + "|" + agg + "|" +
		fmt.Sprint(raw) + "|" + strings.Join(zattrs, ",")
}

// batchQuery builds the intra-line batched query of Section 5.2 as a minisql
// AST: Z values become IN lists, Y attributes become a multi-aggregate
// select, and the Z columns are added to SELECT/GROUP BY/ORDER BY so results
// can be split.
func (ex *executor) batchQuery(units []*fetchUnit, constraints minisql.Expr) (*queryJob, error) {
	u0 := units[0]
	agg, raw := ex.aggFor(u0.vd)
	// Collect distinct y attributes and z values per attribute, preserving
	// first-seen order.
	var yattrs []string
	ySeen := make(map[string]bool)
	zattrs := make([]string, len(u0.slices))
	zvals := make([]map[string]bool, len(u0.slices))
	zlists := make([][]string, len(u0.slices))
	for i, s := range u0.slices {
		zattrs[i] = s.Attr
		zvals[i] = make(map[string]bool)
	}
	for _, u := range units {
		for _, y := range u.yattrs {
			if !ySeen[y] {
				ySeen[y] = true
				yattrs = append(yattrs, y)
			}
		}
		for i, s := range u.slices {
			if !zvals[i][s.Value] {
				zvals[i][s.Value] = true
				zlists[i] = append(zlists[i], s.Value)
			}
		}
	}
	q := &minisql.Query{From: ex.table.Name, Limit: -1}
	for i, x := range u0.xattrs {
		q.Select = append(q.Select, xSelectItem(x, u0.vd.XBin, i == 0))
	}
	yAlias := make(map[string]string, len(yattrs))
	if raw {
		q.Select = append(q.Select, minisql.SelectItem{Col: yattrs[0]})
	} else {
		fn, err := minisql.ParseAgg(agg)
		if err != nil {
			return nil, err
		}
		for i, y := range yattrs {
			alias := fmt.Sprintf("a%d", i)
			yAlias[y] = alias
			q.Select = append(q.Select, minisql.SelectItem{Agg: fn, Col: y, Alias: alias})
		}
	}
	for _, z := range zattrs {
		q.Select = append(q.Select, minisql.SelectItem{Col: z})
	}
	var where []minisql.Expr
	for i, z := range zattrs {
		vals := make([]dataset.Value, len(zlists[i]))
		for j, v := range zlists[i] {
			vals[j] = dataset.SV(v)
		}
		where = append(where, &minisql.In{Col: z, Vals: vals})
	}
	if constraints != nil {
		where = append(where, constraints)
	}
	q.Where = andOf(where)
	if !raw {
		for _, z := range zattrs {
			q.GroupBy = append(q.GroupBy, minisql.GroupKey{Col: z})
		}
		for i, x := range u0.xattrs {
			q.GroupBy = append(q.GroupBy, xGroupKey(x, u0.vd.XBin, i == 0))
		}
	}
	orderCols := append(append([]string{}, zattrs...), xOutNames(u0.xattrs, u0.vd.XBin)...)
	for _, c := range orderCols {
		q.OrderBy = append(q.OrderBy, minisql.OrderItem{Col: c})
	}
	job := &queryJob{
		q:      q,
		units:  units,
		xCols:  xOutNames(u0.xattrs, u0.vd.XBin),
		zCols:  zattrs,
		yAlias: yAlias,
		raw:    raw,
	}
	if raw {
		job.rawYCol = yattrs[0]
	}
	return job, nil
}

// rowConstraints expands and parses the row's raw constraint text into a
// predicate AST, once per row.
func (ex *executor) rowConstraints(raw string) (minisql.Expr, error) {
	expanded, err := ex.expandConstraints(raw)
	if err != nil {
		return nil, err
	}
	if strings.TrimSpace(expanded) == "" {
		return nil, nil
	}
	e, err := minisql.ParseExpr(expanded)
	if err != nil {
		return nil, fmt.Errorf("constraints %q: %w", raw, err)
	}
	return e, nil
}

// rowJobs compiles a resolved row into query jobs under the current
// optimization level.
func (ex *executor) rowJobs(rs *rowState, units []*fetchUnit) ([]*queryJob, error) {
	constraints, err := ex.rowConstraints(rs.row.Constraints)
	if err != nil {
		return nil, err
	}
	if ex.opts.Opt == NoOpt {
		jobs := make([]*queryJob, 0, len(units))
		for _, u := range units {
			j, err := ex.unitQuery(u, constraints)
			if err != nil {
				return nil, err
			}
			jobs = append(jobs, j)
		}
		return jobs, nil
	}
	// Intra-line batching: group compatible units into one query each.
	groups := make(map[string][]*fetchUnit)
	var keys []string
	for _, u := range units {
		agg, raw := ex.aggFor(u.vd)
		k := batchKey(u, agg, raw)
		if _, ok := groups[k]; !ok {
			keys = append(keys, k)
		}
		groups[k] = append(groups[k], u)
	}
	sort.Strings(keys)
	var jobs []*queryJob
	for _, k := range keys {
		j, err := ex.batchQuery(groups[k], constraints)
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, j)
	}
	return jobs, nil
}

// executeBatch prepares the jobs of one request, runs them through the
// back-end's shared-scan batch executor, and splits the results into the
// units' visualizations. It counts one request.
func (ex *executor) executeBatch(jobs []*queryJob) error {
	if len(jobs) == 0 {
		return nil
	}
	ex.stats.Requests++
	ex.stats.SQLQueries += len(jobs)
	parent := trace.FromContext(ex.ctx)
	prep := parent.StartChild("prepare")
	prep.SetInt("plans", int64(len(jobs)))
	plans := make([]*engine.Plan, len(jobs))
	for i, j := range jobs {
		p, err := ex.db.Prepare(j.q)
		if err != nil {
			prep.End()
			return fmt.Errorf("zexec: preparing %q: %w", j.q.SQL(), err)
		}
		// The plan rendered its canonical SQL once at Prepare; reuse it for
		// the log instead of rendering again.
		ex.sqlLog = append(ex.sqlLog, p.SQL())
		plans[i] = p
		annotatePlanSpan(prep, p)
	}
	prep.End()
	if ex.opts.PlanOnly {
		// EXPLAIN (plan mode): planning ran — canonical SQL, routes, and
		// conjunct orders are all decided — but nothing executes. Every unit
		// gets an empty visualization so downstream shaping stays total.
		for _, j := range jobs {
			for _, u := range j.units {
				u.out = &vis.Visualization{
					XAttr:   strings.Join(u.xattrs, "×"),
					YAttr:   strings.Join(u.yattrs, "+"),
					Slices:  u.slices,
					VizType: u.vd.Type,
				}
			}
		}
		return nil
	}
	exec := parent.StartChild("execute")
	start := time.Now()
	results, err := ex.db.ExecuteBatch(trace.WithSpan(ex.ctx, exec), plans)
	ex.stats.QueryTime += time.Since(start)
	exec.End()
	if err != nil {
		return fmt.Errorf("zexec: %w", err)
	}
	mat := parent.StartChild("materialize")
	defer mat.End()
	var points int64
	for i, j := range jobs {
		if err := splitJob(j, results[i]); err != nil {
			return err
		}
		for _, u := range j.units {
			points += int64(len(u.out.Points))
		}
	}
	mat.SetInt("points", points)
	return nil
}

// annotatePlanSpan records one prepared plan's audit trail — canonical SQL,
// the auto-router's decision, and the greedy planner's chosen conjunct order
// with the scores that ordered it — as a "plan" child span.
func annotatePlanSpan(prep *trace.Span, p *engine.Plan) {
	if prep == nil {
		return
	}
	info := p.Info()
	sp := prep.StartChild("plan")
	sp.SetStr("sql", info.SQL)
	if info.Route != "" {
		sp.SetStr("route", info.Route)
	}
	sp.SetBool("reordered", info.Reordered)
	if len(info.Conjuncts) > 0 {
		var b strings.Builder
		for i, c := range info.Conjuncts {
			if i > 0 {
				b.WriteString("; ")
			}
			if c.Sel >= 0 {
				fmt.Fprintf(&b, "%s (sel=%.3g cost=%d)", c.SQL, c.Sel, c.Cost)
			} else {
				b.WriteString(c.SQL)
			}
		}
		sp.SetStr("conjuncts", b.String())
	}
	sp.End()
}

// splitJob distributes a job's result rows into its units' visualizations.
func splitJob(j *queryJob, res *engine.Result) error {
	xIdx := make([]int, len(j.xCols))
	for i, c := range j.xCols {
		xIdx[i] = res.ColIndex(c)
		if xIdx[i] < 0 {
			return fmt.Errorf("zexec: result missing x column %q", c)
		}
	}
	zIdx := make([]int, len(j.zCols))
	for i, c := range j.zCols {
		zIdx[i] = res.ColIndex(c)
		if zIdx[i] < 0 {
			return fmt.Errorf("zexec: result missing z column %q", c)
		}
	}
	// Index rows by their z-value signature.
	rowsByZ := make(map[string][]dataset.Row)
	var zOrder []string
	for _, row := range res.Rows {
		var kb strings.Builder
		for _, zi := range zIdx {
			kb.WriteString(row[zi].String())
			kb.WriteByte('\x00')
		}
		k := kb.String()
		if _, ok := rowsByZ[k]; !ok {
			zOrder = append(zOrder, k)
		}
		rowsByZ[k] = append(rowsByZ[k], row)
	}
	for _, u := range j.units {
		// z columns in job order correspond to the unit's slices in order.
		var kb strings.Builder
		for i := range j.zCols {
			kb.WriteString(u.slices[i].Value)
			kb.WriteByte('\x00')
		}
		rows := rowsByZ[kb.String()]
		v := &vis.Visualization{
			XAttr:   strings.Join(u.xattrs, "×"),
			YAttr:   strings.Join(u.yattrs, "+"),
			Slices:  u.slices,
			VizType: u.vd.Type,
		}
		for _, row := range rows {
			x := composeX(row, xIdx)
			var y float64
			if j.raw {
				yi := res.ColIndex(j.rawYCol)
				if yi < 0 {
					return fmt.Errorf("zexec: result missing y column %q", j.rawYCol)
				}
				y = row[yi].Float()
			} else {
				for _, yattr := range u.yattrs {
					alias := j.yAlias[yattr]
					yi := res.ColIndex(alias)
					if yi < 0 {
						return fmt.Errorf("zexec: result missing aggregate column %q", alias)
					}
					y += row[yi].Float()
				}
			}
			v.Points = append(v.Points, vis.Point{X: x, Y: y})
		}
		u.out = v
	}
	return nil
}

// composeX renders a result row's x value: the single x column's value, or a
// composite "a|b" for × axes.
func composeX(row dataset.Row, xIdx []int) dataset.Value {
	if len(xIdx) == 1 {
		return row[xIdx[0]]
	}
	parts := make([]string, len(xIdx))
	for i, xi := range xIdx {
		parts[i] = row[xi].String()
	}
	return dataset.SV(strings.Join(parts, "|"))
}

// collectionFromUnits assembles a row's collection after its units are
// fetched.
func collectionFromUnits(units []*fetchUnit) *Collection {
	sorted := append([]*fetchUnit(nil), units...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].order < sorted[j].order })
	c := &Collection{}
	for _, u := range sorted {
		c.Vis = append(c.Vis, u.out)
		c.combos = append(c.combos, u.assign)
	}
	return c
}
