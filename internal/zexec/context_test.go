package zexec

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/zql"
)

// TestRunContextCanceledReturnsPartialError pins the cancellation contract:
// a run cut short by its context fails with an error that (a) satisfies
// errors.Is against the context cause, so the serving layer can map it to
// 504/499, and (b) unwraps to a *PartialError carrying the statistics of the
// work done before the cut.
func TestRunContextCanceledReturnsPartialError(t *testing.T) {
	q, err := zql.Parse(zql.Corpus["2.1"])
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the first cancellation point must observe it
	res, err := RunContext(ctx, q, salesDB(), salesOpts())
	if res != nil {
		t.Fatalf("canceled run returned a result: %+v", res)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want errors.Is(context.Canceled)", err)
	}
	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PartialError in the chain", err)
	}
	// The variable-resolution phase may legitimately scan rows before the
	// first cancellation point; the partial stats must reflect whatever ran.
	if pe.Stats.RowsScanned < 0 {
		t.Errorf("partial stats report negative rows scanned: %d", pe.Stats.RowsScanned)
	}
}

// TestRunContextNilAndBackgroundUnchanged pins that Run (no context) and an
// explicit Background context behave identically: the context plumbing must
// cost nothing on the happy path.
func TestRunContextNilAndBackgroundUnchanged(t *testing.T) {
	q, err := zql.Parse(zql.Corpus["2.1"])
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Run(q, salesDB(), salesOpts())
	if err != nil {
		t.Fatal(err)
	}
	ctxed, err := RunContext(context.Background(), q, salesDB(), salesOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Outputs) != len(ctxed.Outputs) {
		t.Fatalf("outputs differ: %d vs %d", len(plain.Outputs), len(ctxed.Outputs))
	}
	for i := range plain.Outputs {
		if got, want := len(ctxed.Outputs[i].Vis), len(plain.Outputs[i].Vis); got != want {
			t.Errorf("output %d: %d visualizations, want %d", i, got, want)
		}
	}
}

// TestRunContextDeadlineCutsMidRun exercises a deadline that expires while
// the query is executing (not before): the run must stop at a cancellation
// point and report a partial error rather than running to completion.
func TestRunContextDeadlineCutsMidRun(t *testing.T) {
	q, err := zql.Parse(zql.Corpus["2.1"])
	if err != nil {
		t.Fatal(err)
	}
	// An already-expired deadline exercises the same code path as one
	// expiring mid-run without making the test timing-sensitive.
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err = RunContext(ctx, q, salesDB(), salesOpts())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want errors.Is(context.DeadlineExceeded)", err)
	}
}
