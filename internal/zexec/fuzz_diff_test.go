package zexec

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/zql"
)

// Differential fuzz at the ZQL layer: random constraint conjunctions —
// deliberately including mis-ordered shapes like an expensive LIKE-over-float
// written first and a selective range last — injected into a Z-iterating
// script, executed across back-ends, optimization levels, and the conjunct
// planner toggle. Every configuration must render byte-identically to the
// sequential row-store reference with planning off.

// fuzzConstraintPool holds conjunct fragments over the sales fixture, from
// cheap categorical equalities to the fallback-shaped worst case.
var fuzzConstraintPool = []string{
	"location = 'US'",
	"location != 'UK'",
	"product != 'lamp'",
	"year >= 2012",
	"year BETWEEN 2011 AND 2014",
	"month IN (1, 2, 3, 4, 5, 6)",
	"weight > 0.5",
	"sales LIKE '%1%'", // stringifies every float cell: costliest shape
	"zip LIKE '9%'",
	"profit < 100000",
	"NOT (month BETWEEN 11 AND 12)",
}

// fuzzZQLScript renders the threshold template with a random conjunction.
func fuzzZQLScript(rng *rand.Rand) string {
	n := 1 + rng.Intn(3)
	perm := rng.Perm(len(fuzzConstraintPool))
	conjs := make([]string, n)
	for i := 0; i < n; i++ {
		conjs[i] = fuzzConstraintPool[perm[i]]
	}
	where := strings.Join(conjs, " AND ")
	return fmt.Sprintf(`NAME | X      | Y       | Z                 | CONSTRAINTS | PROCESS
f1   | 'year' | 'sales' | v1 <- 'product'.* | %s | v2 <- argany(v1)[t>0] T(f1)
*f2  | 'year' | 'sales' | v2                | %s |
`, where, where)
}

// TestDifferentialZQLBounded runs the seeded ZQL differential matrix on every
// `go test` (and under -race in CI).
func TestDifferentialZQLBounded(t *testing.T) {
	iters := 12
	if testing.Short() {
		iters = 4
	}
	tbl := fixtureSales()
	type variant struct {
		name string
		db   engine.DB
	}
	variants := []variant{
		{"row", engine.NewRowStore(tbl)},
		{"bitmap", engine.NewBitmapStore(tbl)},
		{"column", engine.NewColumnStore(tbl)},
		{"sharded3", engine.NewShardedStore(3, tbl)},
		{"auto", engine.NewAutoStore(1, tbl)},
		{"auto3", engine.NewAutoStore(3, tbl)},
	}
	oracle := engine.NewRowStore(tbl)
	oracle.SetPlanning(false)
	for i := 0; i < iters; i++ {
		rng := rand.New(rand.NewSource(int64(100 + i)))
		src := fuzzZQLScript(rng)
		q, err := zql.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: parse: %v\n%s", i, err, src)
		}
		run := func(db engine.DB, opt OptLevel) string {
			res, err := Run(q, db, Options{Table: tbl.Name, Seed: 42, Opt: opt})
			if err != nil {
				t.Fatalf("seed %d: run: %v\n%s", i, err, src)
			}
			return encodeResult(res)
		}
		want := run(oracle, NoOpt)
		for _, v := range variants {
			for _, planning := range []bool{true, false} {
				v.db.(engine.Planner).SetPlanning(planning)
				for _, opt := range []OptLevel{NoOpt, IntraLine, IntraTask, InterTask} {
					if got := run(v.db, opt); got != want {
						t.Fatalf("seed %d: %s planning=%v opt=%d diverged\n%s\n--- got ---\n%s\n--- want ---\n%s",
							i, v.name, planning, opt, src, clip(got), clip(want))
					}
				}
			}
		}
	}
}
