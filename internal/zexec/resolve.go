package zexec

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/zql"
)

// rowState tracks one row through the execution pipeline.
type rowState struct {
	row  *zql.Row
	idx  int
	dims []dimension // resolved iteration dimensions, column order
	// orderMarkers lists bindings referenced with `->` for f.order rows.
	orderMarkers []*binding
	resolved     bool
	fetched      bool
	processed    bool
	coll         *Collection
}

// executor carries the shared execution state.
type executor struct {
	q    *zql.Query
	db   engine.DB
	opts Options
	ctx  context.Context // bounds the run; never nil (RunContext defaults it)

	table    *dataset.Table
	rows     []*rowState
	bindings map[string]*binding  // axis variable -> ordered elements
	groups   map[string]*varGroup // variable -> lockstep group
	colls    map[string]*Collection
	sqlLog   []string
	stats    Stats
	proc     processCounters // process-phase work; atomic: workers share it
}

// varDefined reports whether an axis variable has a binding yet.
func (ex *executor) varDefined(name string) bool {
	_, ok := ex.bindings[name]
	return ok
}

// refsOfSet lists axis variables a set expression depends on (.range refs).
func refsOfSet(s *zql.SetExpr, out *[]string) {
	if s == nil {
		return
	}
	if s.RangeVar != "" {
		*out = append(*out, s.RangeVar)
	}
	if s.Pair != nil {
		refsOfSet(s.Pair.Attr, out)
		refsOfSet(s.Pair.Val, out)
	}
	refsOfSet(s.Left, out)
	refsOfSet(s.Right, out)
}

// rowVarRefs lists every axis variable a row needs defined before its
// dimensions can be resolved, plus whether it needs a derived collection.
func rowVarRefs(r *zql.Row) []string {
	var refs []string
	axis := func(a zql.AxisSpec) {
		switch a.Kind {
		case zql.AxisVarRef:
			refs = append(refs, a.Var)
		case zql.AxisVarDecl:
			refsOfSet(a.Set, &refs)
		case zql.AxisSum, zql.AxisCross:
			for _, p := range a.Parts {
				if p.Kind == zql.AxisVarRef {
					refs = append(refs, p.Var)
				} else if p.Kind == zql.AxisVarDecl {
					refsOfSet(p.Set, &refs)
				}
			}
		}
	}
	axis(r.X)
	axis(r.Y)
	for _, z := range r.Z {
		switch z.Kind {
		case zql.ZVarRef:
			refs = append(refs, z.Var)
		case zql.ZValues:
			refsOfSet(z.ValSet, &refs)
		case zql.ZPairs, zql.ZSetExpr:
			refsOfSet(z.Set, &refs)
		}
	}
	refs = append(refs, constraintRangeRefs(r.Constraints)...)
	return refs
}

// constraintRangeRefs finds `IN (v.range)` references inside a raw
// constraints string.
func constraintRangeRefs(c string) []string {
	var out []string
	rest := c
	for {
		i := strings.Index(rest, ".range")
		if i < 0 {
			return out
		}
		j := i
		for j > 0 && (isIdentChar(rest[j-1])) {
			j--
		}
		if j < i {
			out = append(out, rest[j:i])
		}
		rest = rest[i+len(".range"):]
	}
}

func isIdentChar(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b >= '0' && b <= '9' || b == '_'
}

// expandConstraints rewrites `attr IN (v.range)` into a literal IN list from
// the variable's binding.
func (ex *executor) expandConstraints(c string) (string, error) {
	for _, ref := range constraintRangeRefs(c) {
		b, ok := ex.bindings[ref]
		if !ok {
			return "", fmt.Errorf("zexec: constraints reference undefined variable %s", ref)
		}
		var vals []string
		for _, e := range b.elems {
			vals = append(vals, "'"+strings.ReplaceAll(e.val, "'", "''")+"'")
		}
		if len(vals) == 0 {
			vals = []string{"''"}
		}
		c = strings.ReplaceAll(c, "("+ref+".range)", "("+strings.Join(vals, ", ")+")")
		c = strings.ReplaceAll(c, "( "+ref+".range )", "("+strings.Join(vals, ", ")+")")
	}
	return c, nil
}

// evalSet evaluates a set expression into ordered elements. kind tells how
// leaves are interpreted; attrCtx carries the enclosing attribute for Z value
// sets; derived supplies the derived collection for `_` leaves.
func (ex *executor) evalSet(s *zql.SetExpr, kind elemKind, attrCtx string, derived *Collection) ([]element, error) {
	if s == nil {
		return nil, fmt.Errorf("zexec: nil set expression")
	}
	switch {
	case s.Op != nil:
		left, err := ex.evalSet(s.Left, kind, attrCtx, derived)
		if err != nil {
			return nil, err
		}
		right, err := ex.evalSet(s.Right, kind, attrCtx, derived)
		if err != nil {
			return nil, err
		}
		return applySetOp(*s.Op, left, right), nil
	case s.Pair != nil:
		// Cartesian product of attribute set × value set, attribute-major,
		// with the value set evaluated per attribute (so '*' means "all
		// values of that attribute").
		attrs, err := ex.evalSet(s.Pair.Attr, elemZ, "", derived)
		if err != nil {
			return nil, err
		}
		var out []element
		for _, a := range attrs {
			attrName := a.val
			if attrName == "" {
				attrName = a.attr
			}
			vals, err := ex.evalSet(s.Pair.Val, elemZ, attrName, derived)
			if err != nil {
				return nil, err
			}
			for _, v := range vals {
				out = append(out, element{kind: elemZ, attr: attrName, val: v.val})
			}
		}
		return out, nil
	case s.Star:
		return ex.starElements(kind, attrCtx)
	case len(s.Literals) > 0:
		out := make([]element, len(s.Literals))
		for i, lit := range s.Literals {
			out[i] = element{kind: kind, attr: attrCtx, val: lit}
		}
		return out, nil
	case s.RangeVar != "":
		b, ok := ex.bindings[s.RangeVar]
		if !ok {
			return nil, fmt.Errorf("zexec: %s.range references undefined variable", s.RangeVar)
		}
		return append([]element(nil), b.elems...), nil
	case s.Derived:
		if derived == nil {
			return nil, fmt.Errorf("zexec: '_' used outside a derived visual component row")
		}
		return derived.derivedElements(kind, attrCtx), nil
	}
	return nil, fmt.Errorf("zexec: empty set expression")
}

// starElements expands `*`: all attributes (for attribute positions) or all
// values of the context attribute (for value positions). Value enumeration
// reads the column's full data; a lazily-backed column (zpack) signals a
// failed materialization by panicking, which is recovered here into a query
// error rather than an incomplete value set.
func (ex *executor) starElements(kind elemKind, attrCtx string) (out []element, err error) {
	defer func() {
		if r := recover(); r != nil {
			out, err = nil, fmt.Errorf("zexec: enumerating values of %q: %v", attrCtx, r)
		}
	}()
	return ex.starElementsInner(kind, attrCtx)
}

func (ex *executor) starElementsInner(kind elemKind, attrCtx string) ([]element, error) {
	if kind != elemZ || attrCtx == "" {
		// Attribute star: every column of the table.
		var out []element
		for _, name := range ex.table.ColumnNames() {
			out = append(out, element{kind: kind, val: name})
		}
		return out, nil
	}
	col := ex.table.Column(attrCtx)
	if col == nil {
		return nil, fmt.Errorf("zexec: table %q has no attribute %q", ex.table.Name, attrCtx)
	}
	vals := col.DistinctSorted()
	out := make([]element, len(vals))
	for i, v := range vals {
		out[i] = element{kind: elemZ, attr: attrCtx, val: v.String()}
	}
	return out, nil
}

func applySetOp(op zql.SetOp, left, right []element) []element {
	rightKeys := make(map[string]bool, len(right))
	for _, e := range right {
		rightKeys[e.key()] = true
	}
	var out []element
	switch op {
	case zql.SetUnion:
		seen := make(map[string]bool, len(left))
		for _, e := range left {
			seen[e.key()] = true
			out = append(out, e)
		}
		for _, e := range right {
			if !seen[e.key()] {
				out = append(out, e)
			}
		}
	case zql.SetDiff:
		for _, e := range left {
			if !rightKeys[e.key()] {
				out = append(out, e)
			}
		}
	case zql.SetIntersect:
		for _, e := range left {
			if rightKeys[e.key()] {
				out = append(out, e)
			}
		}
	}
	return out
}

// resolveRow computes the row's dimensions. derived is the collection the
// row's Name expression produced (nil for ordinary rows). It errors if a
// referenced variable is not yet defined — callers check readiness first.
func (ex *executor) resolveRow(rs *rowState, derived *Collection) error {
	r := rs.row
	rs.dims = rs.dims[:0]
	rs.orderMarkers = rs.orderMarkers[:0]

	addAxis := func(a zql.AxisSpec, kind elemKind) error {
		dim, marker, err := ex.resolveAxis(a, kind, derived)
		if err != nil {
			return err
		}
		if marker != nil {
			rs.orderMarkers = append(rs.orderMarkers, marker)
			return nil
		}
		if dim != nil {
			rs.dims = append(rs.dims, *dim)
		}
		return nil
	}
	if err := addAxis(r.X, elemX); err != nil {
		return err
	}
	if err := addAxis(r.Y, elemY); err != nil {
		return err
	}
	for _, z := range r.Z {
		dim, marker, err := ex.resolveZ(z, derived)
		if err != nil {
			return err
		}
		if marker != nil {
			rs.orderMarkers = append(rs.orderMarkers, marker)
			continue
		}
		if dim != nil {
			rs.dims = append(rs.dims, *dim)
		}
	}
	if dim := ex.resolveViz(r.Viz); dim != nil {
		rs.dims = append(rs.dims, *dim)
	}
	rs.resolved = true
	return nil
}

func (ex *executor) resolveAxis(a zql.AxisSpec, kind elemKind, derived *Collection) (*dimension, *binding, error) {
	switch a.Kind {
	case zql.AxisEmpty:
		return nil, nil, nil
	case zql.AxisLiteral:
		e := element{kind: kind, val: a.Attr}
		return &dimension{elems: [][]element{{e}}}, nil, nil
	case zql.AxisVarRef:
		b, ok := ex.bindings[a.Var]
		if !ok {
			return nil, nil, fmt.Errorf("zexec: axis variable %s is not defined", a.Var)
		}
		if a.Order {
			return nil, b, nil
		}
		return ex.dimFromBinding(a.Var, b), nil, nil
	case zql.AxisVarDecl:
		var elems []element
		var err error
		if a.Set == nil {
			if derived == nil {
				return nil, nil, fmt.Errorf("zexec: %s <- _ outside a derived row", a.Var)
			}
			elems = derived.derivedElements(kind, "")
		} else {
			elems, err = ex.evalSet(a.Set, kind, "", derived)
			if err != nil {
				return nil, nil, err
			}
		}
		// Re-stamp the kind: sets of attribute names are kind-agnostic.
		for i := range elems {
			elems[i].kind = kind
			if elems[i].val == "" {
				elems[i].val = elems[i].attr
				elems[i].attr = ""
			}
		}
		ex.bindings[a.Var] = &binding{elems: elems}
		tuples := make([][]element, len(elems))
		for i, e := range elems {
			tuples[i] = []element{e}
		}
		return &dimension{vars: []string{a.Var}, elems: tuples}, nil, nil
	case zql.AxisSum, zql.AxisCross:
		return ex.resolveCompositeAxis(a, kind, derived)
	}
	return nil, nil, fmt.Errorf("zexec: unhandled axis kind %v", a.Kind)
}

// resolveCompositeAxis handles 'a' + 'b' and 'a' × (x1 in {...}) axes. The
// composed attribute for each combination is rendered "a+b" or "a×b"; the
// fetch layer decodes it.
func (ex *executor) resolveCompositeAxis(a zql.AxisSpec, kind elemKind, derived *Collection) (*dimension, *binding, error) {
	sep := "+"
	if a.Kind == zql.AxisCross {
		sep = "×"
	}
	// Each part yields an ordered list of attribute names; the axis iterates
	// their Cartesian product (left-major), composing names with sep.
	lists := make([][]element, len(a.Parts))
	var declVars []string
	for i, p := range a.Parts {
		switch p.Kind {
		case zql.AxisLiteral:
			lists[i] = []element{{kind: kind, val: p.Attr}}
		case zql.AxisVarRef:
			b, ok := ex.bindings[p.Var]
			if !ok {
				return nil, nil, fmt.Errorf("zexec: axis variable %s is not defined", p.Var)
			}
			lists[i] = b.elems
		case zql.AxisVarDecl:
			elems, err := ex.evalSet(p.Set, kind, "", derived)
			if err != nil {
				return nil, nil, err
			}
			for j := range elems {
				elems[j].kind = kind
			}
			ex.bindings[p.Var] = &binding{elems: elems}
			lists[i] = elems
			declVars = append(declVars, p.Var)
		}
	}
	combos := [][]element{{}}
	for _, list := range lists {
		var next [][]element
		for _, c := range combos {
			for _, e := range list {
				next = append(next, append(append([]element(nil), c...), e))
			}
		}
		combos = next
	}
	tuples := make([][]element, len(combos))
	for i, c := range combos {
		parts := make([]string, len(c))
		for j, e := range c {
			parts[j] = e.val
		}
		composed := element{kind: kind, val: strings.Join(parts, sep)}
		tuples[i] = []element{composed}
	}
	// The composite axis acts as an anonymous dimension unless exactly one
	// variable was declared, in which case that variable tracks its part.
	if len(declVars) == 1 {
		// Bind the declared variable to its own part values but iterate the
		// composite; lookups use the composed attribute.
		return &dimension{vars: []string{""}, elems: tuples}, nil, nil
	}
	return &dimension{vars: []string{""}, elems: tuples}, nil, nil
}

func (ex *executor) resolveZ(z zql.ZSpec, derived *Collection) (*dimension, *binding, error) {
	switch z.Kind {
	case zql.ZEmpty:
		return nil, nil, nil
	case zql.ZFixed:
		e := element{kind: elemZ, attr: z.Attr, val: z.Value}
		return &dimension{elems: [][]element{{e}}}, nil, nil
	case zql.ZVarRef:
		b, ok := ex.bindings[z.Var]
		if !ok {
			return nil, nil, fmt.Errorf("zexec: Z variable %s is not defined", z.Var)
		}
		if z.Order {
			return nil, b, nil
		}
		return ex.dimFromBinding(z.Var, b), nil, nil
	case zql.ZValues:
		elems, err := ex.evalSet(z.ValSet, elemZ, z.Attr, derived)
		if err != nil {
			return nil, nil, err
		}
		for i := range elems {
			elems[i].kind = elemZ
			if elems[i].attr == "" {
				elems[i].attr = z.Attr
			}
		}
		if z.Var != "" {
			ex.bindings[z.Var] = &binding{elems: elems}
		}
		tuples := make([][]element, len(elems))
		for i, e := range elems {
			tuples[i] = []element{e}
		}
		var vars []string
		if z.Var != "" {
			vars = []string{z.Var}
		}
		return &dimension{vars: vars, elems: tuples}, nil, nil
	case zql.ZPairs:
		elems, err := ex.evalSet(z.Set, elemZ, "", derived)
		if err != nil {
			return nil, nil, err
		}
		// Two lockstep variables: attribute and value.
		attrB := &binding{}
		valB := &binding{}
		tuples := make([][]element, len(elems))
		for i, e := range elems {
			ae := element{kind: elemZ, attr: e.attr, val: e.attr}
			attrB.elems = append(attrB.elems, ae)
			valB.elems = append(valB.elems, e)
			tuples[i] = []element{ae, e}
		}
		ex.bindings[z.AttrVar] = attrB
		ex.bindings[z.Var] = valB
		ex.groups[z.AttrVar] = &varGroup{vars: []string{z.AttrVar, z.Var}, tuples: tuples}
		ex.groups[z.Var] = ex.groups[z.AttrVar]
		return &dimension{vars: []string{z.AttrVar, z.Var}, elems: tuples}, nil, nil
	case zql.ZSetExpr:
		elems, err := ex.evalSet(z.Set, elemZ, "", derived)
		if err != nil {
			return nil, nil, err
		}
		if z.Var != "" {
			ex.bindings[z.Var] = &binding{elems: elems}
		}
		tuples := make([][]element, len(elems))
		for i, e := range elems {
			tuples[i] = []element{e}
		}
		var vars []string
		if z.Var != "" {
			vars = []string{z.Var}
		}
		return &dimension{vars: vars, elems: tuples}, nil, nil
	}
	return nil, nil, fmt.Errorf("zexec: unhandled Z kind %v", z.Kind)
}

func (ex *executor) dimFromBinding(name string, b *binding) *dimension {
	// A lockstep group reference iterates the whole group together.
	if g, ok := ex.groups[name]; ok {
		return &dimension{vars: g.vars, elems: g.tuples, ref: true}
	}
	tuples := make([][]element, len(b.elems))
	for i, e := range b.elems {
		tuples[i] = []element{e}
	}
	return &dimension{vars: []string{name}, elems: tuples, ref: true}
}

func (ex *executor) resolveViz(v zql.VizSpec) *dimension {
	switch v.Kind {
	case zql.VizEmpty:
		return nil
	case zql.VizSingle:
		d := v.Defs[0]
		e := element{kind: elemViz, viz: &d}
		return &dimension{elems: [][]element{{e}}}
	case zql.VizVarDecl:
		elems := make([]element, len(v.Defs))
		tuples := make([][]element, len(v.Defs))
		for i := range v.Defs {
			d := v.Defs[i]
			elems[i] = element{kind: elemViz, viz: &d}
			tuples[i] = []element{elems[i]}
		}
		ex.bindings[v.Var] = &binding{elems: elems}
		return &dimension{vars: []string{v.Var}, elems: tuples}
	}
	return nil
}

// forEachCombo iterates the Cartesian product of the dimensions in column
// order (left-most slowest), calling fn with the flat assignment.
func forEachCombo(dims []dimension, fn func(assign map[string]element, tuple []element)) {
	idx := make([]int, len(dims))
	for {
		assign := make(map[string]element)
		var tuple []element
		for di, d := range dims {
			if len(d.elems) == 0 {
				return // empty dimension: no combos at all
			}
			t := d.elems[idx[di]]
			tuple = append(tuple, t...)
			for vi, v := range d.vars {
				if v != "" && vi < len(t) {
					assign[v] = t[vi]
				}
			}
		}
		fn(assign, tuple)
		// Advance odometer, right-most fastest.
		di := len(dims) - 1
		for di >= 0 {
			idx[di]++
			if idx[di] < len(dims[di].elems) {
				break
			}
			idx[di] = 0
			di--
		}
		if di < 0 {
			return
		}
	}
}

// sortedVarNames is a test helper exported via Bindings.
func sortedVarNames(m map[string]*binding) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
