package zexec

import (
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/vis"
	"repro/internal/zql"
)

// similarityTopKSrc is a drawn-input top-k similarity search — the workload
// that exercises the bounded heap, the abandoning kernels, and the
// Collection metadata shared by every worker.
const similarityTopKSrc = `
NAME | X      | Y       | Z                 | PROCESS
-f1  |        |         |                   |
f2   | 'year' | 'sales' | v1 <- 'product'.* | v2 <- argmin(v1)[k=3] D(f1, f2)
*f3  | 'year' | 'sales' | v2                |`

// TestProcessParallelConcurrentRuns hammers one shared engine.DB with
// concurrent process-phase executions, each running the worker pool, and
// checks every result against the sequential oracle. Run under -race (CI
// does) this is the data-race audit for the parallel tuple evaluator.
func TestProcessParallelConcurrentRuns(t *testing.T) {
	db := engine.NewRowStore(fixtureSales())
	q, err := zql.Parse(similarityTopKSrc)
	if err != nil {
		t.Fatal(err)
	}
	base := Options{
		Table:  "sales",
		Seed:   42,
		Inputs: map[string]*vis.Visualization{"f1": vis.FromFloats([]float64{0, 1, 2, 3, 4, 5})},
	}
	oracleOpts := base
	oracleOpts.Opt = NoOpt
	oracle, err := Run(q, db, oracleOpts)
	if err != nil {
		t.Fatal(err)
	}
	want := encodeResult(oracle)

	const goroutines, iters = 8, 4
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				opts := base
				opts.Opt = InterTask
				opts.ProcessParallelism = 4
				res, err := Run(q, db, opts)
				if err != nil {
					t.Errorf("parallel run: %v", err)
					return
				}
				if got := encodeResult(res); got != want {
					t.Errorf("parallel result diverged from sequential oracle\n got: %q\nwant: %q", got, want)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestProcessWorkerPanicContained mirrors the server batcher's panic test:
// a panic on a pool goroutine would kill the whole process (no net/http
// recover out there), so the pool must convert it into an error on the Run
// that owns it.
func TestProcessWorkerPanicContained(t *testing.T) {
	db := engine.NewRowStore(fixtureSales())
	src := `
NAME | X      | Y       | Z                 | PROCESS
f1   | 'year' | 'sales' | v1 <- 'product'.* | v2 <- argmin(v1)[k=2] boom(f1)
*f2  | 'year' | 'sales' | v2                |`
	q, err := zql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(q, db, Options{
		Table:              "sales",
		Opt:                InterTask,
		ProcessParallelism: 4,
		UserFuncs: map[string]UserFunc{
			"boom": func([]*vis.Visualization) float64 { panic("kaboom") },
		},
	})
	if err == nil {
		t.Fatal("Run returned nil error for a panicking user function")
	}
	if !strings.Contains(err.Error(), "panic") || !strings.Contains(err.Error(), "kaboom") {
		t.Errorf("error %q does not surface the contained panic", err)
	}
}

// TestProcessParallelErrorIsDeterministic pins the pool's error selection:
// whatever the interleaving, the reported failure is the one at the lowest
// tuple index — the error the sequential loop surfaces.
func TestProcessParallelErrorIsDeterministic(t *testing.T) {
	db := engine.NewRowStore(fixtureSales())
	src := `
NAME | X      | Y       | Z                 | PROCESS
f1   | 'year' | 'sales' | v1 <- 'product'.* | v2 <- argmin(v1)[k=2] pick(f1)
*f2  | 'year' | 'sales' | v2                |`
	q, err := zql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	// The fixture's products iterate in a deterministic order; fail on every
	// tuple with a message identifying it, and require the first tuple's
	// message every time.
	var mu sync.Mutex
	calls := 0
	opts := Options{
		Table:              "sales",
		Opt:                InterTask,
		ProcessParallelism: 4,
		UserFuncs: map[string]UserFunc{
			"pick": func([]*vis.Visualization) float64 {
				mu.Lock()
				calls++
				mu.Unlock()
				panic("tuple failure")
			},
		},
	}
	for trial := 0; trial < 10; trial++ {
		_, err := Run(q, db, opts)
		if err == nil {
			t.Fatal("expected an error")
		}
		if !strings.Contains(err.Error(), "tuple failure") {
			t.Fatalf("trial %d: unexpected error %q", trial, err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if calls == 0 {
		t.Fatal("user function never ran")
	}
}

// TestTopKZeroKeepsOracleErrorBehavior pins the [k=0] edge: the pruned path
// must not skip scoring, or errors the sequential oracle surfaces would
// vanish at optimized levels.
func TestTopKZeroKeepsOracleErrorBehavior(t *testing.T) {
	db := engine.NewRowStore(fixtureSales())
	src := `
NAME | X      | Y       | Z                 | PROCESS
f1   | 'year' | 'sales' | v1 <- 'product'.* | v2 <- argmin(v1)[k=0] nosuch(f1)
*f2  | 'year' | 'sales' | v2                |`
	q, err := zql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, opt := range []OptLevel{NoOpt, InterTask} {
		_, err := Run(q, db, Options{Table: "sales", Opt: opt})
		if err == nil || !strings.Contains(err.Error(), "nosuch") {
			t.Errorf("opt %v: err = %v, want unregistered user function error", opt, err)
		}
	}
}

// TestTopKNaNScoresDeterministic pins the shared score order: a user
// function returning NaN for some tuples must neither make parallel top-k
// selection depend on worker scheduling nor diverge from the sequential
// oracle — scoreBetter ranks NaN after every number on both paths.
func TestTopKNaNScoresDeterministic(t *testing.T) {
	db := engine.NewRowStore(fixtureSales())
	src := `
NAME | X      | Y       | Z                 | PROCESS
f1   | 'year' | 'sales' | v1 <- 'product'.* | v2 <- argmin(v1)[k=3] wobbly(f1)
*f2  | 'year' | 'sales' | v2                |`
	q, err := zql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	nan := math.NaN()
	opts := Options{
		Table:              "sales",
		Opt:                InterTask,
		ProcessParallelism: 4,
		UserFuncs: map[string]UserFunc{
			"wobbly": func(args []*vis.Visualization) float64 {
				// NaN for every product whose series is flat, a real score
				// otherwise.
				ys := args[0].Ys()
				if ys[0] == ys[len(ys)-1] {
					return nan
				}
				return ys[len(ys)-1] - ys[0]
			},
		},
	}
	oracleOpts := opts
	oracleOpts.Opt = NoOpt
	oracleOpts.ProcessParallelism = 0
	oracle, err := Run(q, db, oracleOpts)
	if err != nil {
		t.Fatal(err)
	}
	want := encodeResult(oracle)
	for trial := 0; trial < 15; trial++ {
		res, err := Run(q, db, opts)
		if err != nil {
			t.Fatal(err)
		}
		if got := encodeResult(res); got != want {
			t.Fatalf("trial %d: NaN-scored top-k diverged from the oracle\n got: %q\nwant: %q", trial, got, want)
		}
	}
}
