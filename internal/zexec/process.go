package zexec

import (
	"fmt"
	"sort"

	"repro/internal/vis"
	"repro/internal/zql"
)

// loopTuple is one assignment of the loop variables of a task.
type loopTuple struct {
	assign map[string]element
	elems  []element // per loop var, in declaration order
	score  float64
}

// loopGroups partitions variables into lockstep groups: variables declared
// together (z-pairs, multi-output tasks) iterate zipped; independent
// variables iterate as a Cartesian product in the order given.
func (ex *executor) loopGroups(vars []string) ([][]string, error) {
	var out [][]string
	used := make(map[string]bool)
	for _, v := range vars {
		if used[v] {
			continue
		}
		g, ok := ex.groups[v]
		if !ok {
			used[v] = true
			out = append(out, []string{v})
			continue
		}
		// Use the group only if every group member is in vars; otherwise the
		// variable iterates alone over its own binding.
		all := true
		for _, gv := range g.vars {
			if !contains(vars, gv) {
				all = false
				break
			}
		}
		if all {
			for _, gv := range g.vars {
				used[gv] = true
			}
			out = append(out, g.vars)
		} else {
			used[v] = true
			out = append(out, []string{v})
		}
	}
	return out, nil
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// iterateVars yields every assignment of the given variables, respecting
// lockstep groups, calling fn with the per-variable elements in vars order.
func (ex *executor) iterateVars(vars []string, base map[string]element, fn func(assign map[string]element, elems []element) error) error {
	groups, err := ex.loopGroups(vars)
	if err != nil {
		return err
	}
	// Build per-group tuple lists.
	type groupTuples struct {
		vars   []string
		tuples [][]element
	}
	var gts []groupTuples
	for _, g := range groups {
		if len(g) > 1 {
			grp := ex.groups[g[0]]
			gts = append(gts, groupTuples{vars: g, tuples: grp.tuples})
			continue
		}
		b, ok := ex.bindings[g[0]]
		if !ok {
			return fmt.Errorf("zexec: process variable %s is not defined", g[0])
		}
		tuples := make([][]element, len(b.elems))
		for i, e := range b.elems {
			tuples[i] = []element{e}
		}
		gts = append(gts, groupTuples{vars: g, tuples: tuples})
	}
	idx := make([]int, len(gts))
	for {
		assign := make(map[string]element, len(vars)+len(base))
		for k, v := range base {
			assign[k] = v
		}
		for gi, gt := range gts {
			if len(gt.tuples) == 0 {
				return nil
			}
			t := gt.tuples[idx[gi]]
			for vi, v := range gt.vars {
				assign[v] = t[vi]
			}
		}
		elems := make([]element, len(vars))
		for i, v := range vars {
			elems[i] = assign[v]
		}
		if err := fn(assign, elems); err != nil {
			return err
		}
		gi := len(gts) - 1
		for gi >= 0 {
			idx[gi]++
			if idx[gi] < len(gts[gi].tuples) {
				break
			}
			idx[gi] = 0
			gi--
		}
		if gi < 0 {
			return nil
		}
	}
}

// runProcess executes one process declaration of a row. Tuples are
// materialized first, then scored — sequentially at NoOpt (the differential
// oracle), across the worker pool otherwise — and argmin/argmax [k=...]
// declarations take the pruned top-k path. Every path yields the same kept
// tuples in the same order.
func (ex *executor) runProcess(rs *rowState, d *zql.ProcessDecl) error {
	if ex.opts.PlanOnly {
		// EXPLAIN plan mode: nothing was fetched, so there is nothing to
		// score. Output variables still bind (empty) so downstream rows and
		// the inter-task scheduler's progress check stay satisfied.
		ex.bindOutputs(d.OutVars, nil)
		return nil
	}
	if d.Mech == zql.MechR {
		return ex.runR(d)
	}
	tuples, err := ex.collectTuples(d)
	if err != nil {
		return err
	}
	var kept []loopTuple
	if k, ok := ex.topKPrunable(d, len(tuples)); ok {
		kept, err = ex.evalTopK(d, tuples, k)
	} else {
		kept, err = ex.evalRankFilter(d, tuples)
	}
	if err != nil {
		return fmt.Errorf("line %d: %w", rs.row.Line, err)
	}
	ex.bindOutputs(d.OutVars, kept)
	return nil
}

// collectTuples materializes the declaration's loop assignments in iteration
// order; scoring happens separately so it can fan across workers.
func (ex *executor) collectTuples(d *zql.ProcessDecl) ([]loopTuple, error) {
	var tuples []loopTuple
	err := ex.iterateVars(d.LoopVars, nil, func(assign map[string]element, elems []element) error {
		tuples = append(tuples, loopTuple{assign: assign, elems: elems})
		return nil
	})
	return tuples, err
}

// evalRankFilter scores every tuple, then applies the declaration's sort and
// filter exactly the way the sequential executor always has: argmin
// ascending, argmax descending (both stable), argany in input order; [k=...]
// truncates, [t...] thresholds.
func (ex *executor) evalRankFilter(d *zql.ProcessDecl, tuples []loopTuple) ([]loopTuple, error) {
	err := ex.forEachTuple(len(tuples), func(i int) error {
		ex.proc.tuples.Add(1)
		score, err := ex.evalInner(d, 0, tuples[i].assign)
		if err != nil {
			return err
		}
		tuples[i].score = score
		return nil
	})
	if err != nil {
		return nil, err
	}
	switch d.Mech {
	case zql.MechArgmin, zql.MechArgmax:
		argmax := d.Mech == zql.MechArgmax
		sort.SliceStable(tuples, func(i, j int) bool {
			return scoreBetter(argmax, tuples[i].score, tuples[j].score)
		})
	}
	var kept []loopTuple
	switch d.Filter {
	case zql.FilterK:
		if d.K < 0 || d.K >= len(tuples) {
			kept = tuples
		} else {
			kept = tuples[:d.K]
		}
	case zql.FilterT:
		for _, t := range tuples {
			if thresholdOK(t.score, d.TOp, d.TVal) {
				kept = append(kept, t)
			}
		}
	default:
		kept = tuples
	}
	return kept, nil
}

func thresholdOK(score float64, op string, val float64) bool {
	switch op {
	case ">":
		return score > val
	case "<":
		return score < val
	case ">=":
		return score >= val
	case "<=":
		return score <= val
	}
	return false
}

// bindOutputs declares the task's output variables from the kept tuples,
// registering them as a lockstep group when there are several.
func (ex *executor) bindOutputs(outVars []string, kept []loopTuple) {
	outTuples := make([][]element, len(kept))
	for i, t := range kept {
		outTuples[i] = t.elems
	}
	for vi, name := range outVars {
		b := &binding{}
		for _, t := range outTuples {
			b.elems = append(b.elems, t[vi])
		}
		ex.bindings[name] = b
	}
	if len(outVars) > 1 {
		g := &varGroup{vars: outVars, tuples: outTuples}
		for _, name := range outVars {
			ex.groups[name] = g
		}
	}
}

// evalInner evaluates the nested inner aggregations then the leaf objective.
func (ex *executor) evalInner(d *zql.ProcessDecl, level int, assign map[string]element) (float64, error) {
	if level == len(d.Inner) {
		return ex.evalLeaf(d.Expr, assign)
	}
	ia := d.Inner[level]
	first := true
	var acc float64
	err := ex.iterateVars(ia.Vars, assign, func(inner map[string]element, _ []element) error {
		v, err := ex.evalInner(d, level+1, inner)
		if err != nil {
			return err
		}
		switch {
		case first:
			acc = v
			first = false
		case ia.Fn == "min" && v < acc:
			acc = v
		case ia.Fn == "max" && v > acc:
			acc = v
		case ia.Fn == "sum":
			acc += v
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	if first {
		return 0, fmt.Errorf("inner %s over empty variable set", ia.Fn)
	}
	return acc, nil
}

// lookupVis resolves a name variable to the visualization selected by the
// current assignment.
func (ex *executor) lookupVis(name string, assign map[string]element) (*vis.Visualization, error) {
	c, ok := ex.colls[name]
	if !ok {
		return nil, fmt.Errorf("name variable %s has no collection", name)
	}
	v := c.find(assign)
	if v == nil {
		return nil, fmt.Errorf("no visualization in %s matches the current loop assignment", name)
	}
	return v, nil
}

func (ex *executor) evalLeaf(e *zql.ObjExpr, assign map[string]element) (float64, error) {
	switch e.Kind {
	case zql.ObjT:
		v, err := ex.lookupVis(e.F1, assign)
		if err != nil {
			return 0, err
		}
		return vis.Trend(v), nil
	case zql.ObjD:
		v1, err := ex.lookupVis(e.F1, assign)
		if err != nil {
			return 0, err
		}
		v2, err := ex.lookupVis(e.F2, assign)
		if err != nil {
			return 0, err
		}
		ex.proc.distCalls.Add(1)
		return vis.Distance(v1, v2, ex.opts.Metric), nil
	case zql.ObjU:
		fn, ok := ex.opts.UserFuncs[e.User]
		if !ok {
			return 0, fmt.Errorf("user function %s is not registered", e.User)
		}
		args := make([]*vis.Visualization, len(e.Args))
		for i, a := range e.Args {
			v, err := ex.lookupVis(a, assign)
			if err != nil {
				return 0, err
			}
			args[i] = v
		}
		return fn(args), nil
	}
	return 0, fmt.Errorf("unknown objective")
}

// runR executes an R(k, vars, f) representative-selection task.
func (ex *executor) runR(d *zql.ProcessDecl) error {
	var tuples []loopTuple
	var viss []*vis.Visualization
	err := ex.iterateVars(d.RVars, nil, func(assign map[string]element, elems []element) error {
		v, err := ex.lookupVis(d.RName, assign)
		if err != nil {
			return err
		}
		tuples = append(tuples, loopTuple{assign: assign, elems: elems})
		viss = append(viss, v)
		return nil
	})
	if err != nil {
		return err
	}
	picked := vis.Representative(viss, d.RK, ex.opts.Metric, ex.opts.Seed)
	kept := make([]loopTuple, 0, len(picked))
	for _, i := range picked {
		kept = append(kept, tuples[i])
	}
	ex.bindOutputs(d.OutVars, kept)
	return nil
}

// processRefs lists the name variables a declaration reads.
func processRefs(d *zql.ProcessDecl) []string {
	var out []string
	if d.Mech == zql.MechR {
		return []string{d.RName}
	}
	if d.Expr != nil {
		switch d.Expr.Kind {
		case zql.ObjT:
			out = append(out, d.Expr.F1)
		case zql.ObjD:
			out = append(out, d.Expr.F1, d.Expr.F2)
		case zql.ObjU:
			out = append(out, d.Expr.Args...)
		}
	}
	return out
}

// processVarRefs lists the axis variables a declaration iterates.
func processVarRefs(d *zql.ProcessDecl) []string {
	var out []string
	out = append(out, d.LoopVars...)
	out = append(out, d.RVars...)
	for _, ia := range d.Inner {
		out = append(out, ia.Vars...)
	}
	return out
}
