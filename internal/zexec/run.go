package zexec

import (
	"fmt"
	"time"

	"repro/internal/trace"
	"repro/internal/vis"
	"repro/internal/zql"
)

func (ex *executor) run() (*Result, error) {
	ex.table = ex.db.Table(ex.opts.Table)
	if ex.table == nil {
		return nil, fmt.Errorf("zexec: back-end has no table %q", ex.opts.Table)
	}
	countersBefore := ex.db.Counters()
	ex.bindings = make(map[string]*binding)
	ex.groups = make(map[string]*varGroup)
	ex.colls = make(map[string]*Collection)
	for i, r := range ex.q.Rows {
		ex.rows = append(ex.rows, &rowState{row: r, idx: i})
	}
	var err error
	switch ex.opts.Opt {
	case NoOpt, IntraLine:
		err = ex.runSequential()
	case IntraTask:
		err = ex.runIntraTask()
	default:
		err = ex.runInterTask()
	}
	fillStats := func() {
		countersAfter := ex.db.Counters()
		ex.stats.RowsScanned = countersAfter.RowsScanned - countersBefore.RowsScanned
		ex.stats.SegmentsSkipped = countersAfter.SegmentsSkipped - countersBefore.SegmentsSkipped
		ex.stats.Process = ex.proc.snapshot()
	}
	if err != nil {
		// A run cut short by its context still reports the work it did:
		// the serving layer surfaces these partial stats with the 504.
		if ex.ctx != nil && ex.ctx.Err() != nil {
			fillStats()
			return nil, &PartialError{Err: err, Stats: ex.stats}
		}
		return nil, err
	}
	fillStats()
	return ex.assemble(), nil
}

func (ex *executor) assemble() *Result {
	res := &Result{
		Collections: ex.colls,
		Bindings:    make(map[string][]string, len(ex.bindings)),
		SQLLog:      ex.sqlLog,
		Stats:       ex.stats,
	}
	for _, name := range sortedVarNames(ex.bindings) {
		b := ex.bindings[name]
		vals := make([]string, len(b.elems))
		for i, e := range b.elems {
			vals[i] = e.display()
		}
		res.Bindings[name] = vals
	}
	for _, rs := range ex.rows {
		if rs.row.Name.Output && rs.coll != nil {
			res.Outputs = append(res.Outputs, rs.coll)
		}
	}
	return res
}

// prepareNonSQL handles user-input and derived rows, which fetch nothing.
// It returns true if the row was one of those.
func (ex *executor) prepareNonSQL(rs *rowState) (bool, error) {
	r := rs.row
	if r.Name.UserInput {
		input, ok := ex.opts.Inputs[r.Name.Var]
		if !ok {
			return true, fmt.Errorf("zexec: line %d: no user input provided for -%s", r.Line, r.Name.Var)
		}
		rs.coll = &Collection{Vis: []*vis.Visualization{input}, combos: []map[string]element{{}}, wildcard: true}
		ex.colls[r.Name.Var] = rs.coll
		rs.fetched = true
		return true, nil
	}
	if r.Name.Expr != nil {
		coll, err := ex.deriveCollection(r.Name.Expr, rs)
		if err != nil {
			return true, fmt.Errorf("zexec: line %d: %w", r.Line, err)
		}
		rs.coll = coll
		// Resolve the row's cells against the derived collection so that
		// `_` bindings (y1 <- _, v2 <- 'product'._) get defined.
		if err := ex.resolveRow(rs, coll); err != nil {
			return true, fmt.Errorf("zexec: line %d: %w", r.Line, err)
		}
		if r.Name.Var != "" {
			ex.colls[r.Name.Var] = coll
		}
		rs.fetched = true
		return true, nil
	}
	return false, nil
}

// deriveCollection evaluates a Name-column expression.
func (ex *executor) deriveCollection(e *zql.NameExpr, rs *rowState) (*Collection, error) {
	left, ok := ex.colls[e.Left]
	if !ok {
		return nil, fmt.Errorf("derived name refers to unfetched %s", e.Left)
	}
	var right *Collection
	if e.Right != "" {
		right, ok = ex.colls[e.Right]
		if !ok {
			return nil, fmt.Errorf("derived name refers to unfetched %s", e.Right)
		}
	}
	switch e.Kind {
	case zql.NamePlus:
		return left.concat(right), nil
	case zql.NameMinus:
		return left.minus(right), nil
	case zql.NameIntersect:
		return left.intersect(right), nil
	case zql.NameRange:
		return left.dedup(), nil
	case zql.NameIndex:
		return left.index(e.I), nil
	case zql.NameSlice:
		return left.slice(e.I, e.J), nil
	case zql.NameAlias:
		return left, nil
	case zql.NameOrder:
		// Resolve the row first to find the `->` order markers.
		if err := ex.resolveRow(rs, left); err != nil {
			return nil, err
		}
		if len(rs.orderMarkers) == 0 {
			return nil, fmt.Errorf("f.order row has no -> order markers")
		}
		return left.reorder(rs.orderMarkers), nil
	}
	return nil, fmt.Errorf("unhandled name expression")
}

// fetchRows resolves, compiles, and fetches the given rows as one request,
// then builds their collections and marks them fetched.
func (ex *executor) fetchRows(states []*rowState) error {
	var jobs []*queryJob
	unitsByRow := make(map[*rowState][]*fetchUnit, len(states))
	for _, rs := range states {
		units, err := ex.buildUnits(rs)
		if err != nil {
			return err
		}
		rowJobs, err := ex.rowJobs(rs, units)
		if err != nil {
			return fmt.Errorf("zexec: line %d: %w", rs.row.Line, err)
		}
		unitsByRow[rs] = units
		jobs = append(jobs, rowJobs...)
	}
	if ex.opts.Opt == NoOpt {
		// The naive compiler issues every query as its own request.
		for _, j := range jobs {
			if err := ex.executeBatch([]*queryJob{j}); err != nil {
				return err
			}
		}
	} else {
		if err := ex.executeBatch(jobs); err != nil {
			return err
		}
	}
	for _, rs := range states {
		rs.coll = collectionFromUnits(unitsByRow[rs])
		if rs.row.Name.Var != "" {
			ex.colls[rs.row.Name.Var] = rs.coll
		}
		rs.fetched = true
	}
	return nil
}

// runRowProcesses executes the row's process declarations in order.
func (ex *executor) runRowProcesses(rs *rowState) error {
	start := time.Now()
	sp := trace.FromContext(ex.ctx).StartChild("process")
	sp.SetInt("line", int64(rs.row.Line))
	before := ex.proc.snapshot()
	defer func() {
		ex.stats.ProcessTime += time.Since(start)
		after := ex.proc.snapshot()
		sp.SetInt("tuples", after.Tuples-before.Tuples)
		sp.SetInt("distCalls", after.DistCalls-before.DistCalls)
		sp.SetInt("distAbandoned", after.DistAbandoned-before.DistAbandoned)
		sp.End()
	}()
	for i := range rs.row.Process {
		if err := ex.runProcess(rs, &rs.row.Process[i]); err != nil {
			return fmt.Errorf("zexec: line %d: %w", rs.row.Line, err)
		}
	}
	rs.processed = true
	return nil
}

// runSequential is NoOpt / IntraLine: rows strictly in order, one (or N)
// requests per row.
func (ex *executor) runSequential() error {
	for _, rs := range ex.rows {
		handled, err := ex.prepareNonSQL(rs)
		if err != nil {
			return err
		}
		if !handled {
			if err := ex.resolveRow(rs, nil); err != nil {
				return fmt.Errorf("zexec: line %d: %w", rs.row.Line, err)
			}
			if err := ex.fetchRows([]*rowState{rs}); err != nil {
				return err
			}
		}
		if err := ex.runRowProcesses(rs); err != nil {
			return err
		}
	}
	return nil
}

// runIntraTask batches the SQL of consecutive rows up to and including the
// next row that carries a task, then runs the accumulated tasks in order.
func (ex *executor) runIntraTask() error {
	var batch []*rowState
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		if err := ex.fetchRows(batch); err != nil {
			return err
		}
		for _, rs := range batch {
			if err := ex.runRowProcesses(rs); err != nil {
				return err
			}
		}
		batch = batch[:0]
		return nil
	}
	for _, rs := range ex.rows {
		// A row whose variables depend on an unflushed task forces a flush
		// first; detect by attempting resolution and flushing on failure.
		handled, err := ex.prepareNonSQL(rs)
		if handled {
			if err != nil {
				// Retry after flushing pending work.
				if ferr := flush(); ferr != nil {
					return ferr
				}
				if _, err = ex.prepareNonSQL(rs); err != nil {
					return err
				}
			}
			if err := ex.runRowProcesses(rs); err != nil {
				return err
			}
			continue
		}
		if err := ex.resolveRow(rs, nil); err != nil {
			if ferr := flush(); ferr != nil {
				return ferr
			}
			if err := ex.resolveRow(rs, nil); err != nil {
				return fmt.Errorf("zexec: line %d: %w", rs.row.Line, err)
			}
		}
		batch = append(batch, rs)
		if len(rs.row.Process) > 0 {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	return flush()
}

// runInterTask implements the query-tree execution of Section 5.2: in each
// round, every row whose dependencies are satisfied is resolved and its SQL
// batched into a single request; then every task whose inputs are fetched
// runs. Rounds repeat until all rows complete.
func (ex *executor) runInterTask() error {
	for {
		progress := false
		var batch []*rowState
		for _, rs := range ex.rows {
			if rs.fetched {
				continue
			}
			handled, err := ex.prepareNonSQL(rs)
			if handled {
				if err == nil {
					progress = true
				}
				continue
			}
			// Check readiness: every referenced variable defined.
			ready := true
			for _, ref := range rowVarRefs(rs.row) {
				if !ex.varDefined(ref) {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			if err := ex.resolveRow(rs, nil); err != nil {
				continue // a dependency resolved later; retry next round
			}
			batch = append(batch, rs)
		}
		if len(batch) > 0 {
			if err := ex.fetchRows(batch); err != nil {
				return err
			}
			progress = true
		}
		// Run ready tasks in row order.
		for _, rs := range ex.rows {
			if !rs.fetched || rs.processed || len(rs.row.Process) == 0 {
				continue
			}
			ready := true
			for i := range rs.row.Process {
				d := &rs.row.Process[i]
				for _, name := range processRefs(d) {
					if _, ok := ex.colls[name]; !ok {
						ready = false
					}
				}
				for _, v := range processVarRefs(d) {
					// Output vars of earlier decls in the same cell are fine;
					// they get defined as the decls run.
					if !ex.varDefined(v) && !contains(d.OutVars, v) && !declaredBySameRow(rs.row, v) {
						ready = false
					}
				}
			}
			if !ready {
				continue
			}
			if err := ex.runRowProcesses(rs); err != nil {
				return err
			}
			progress = true
		}
		// Mark process-less fetched rows as processed.
		done := true
		for _, rs := range ex.rows {
			if rs.fetched && !rs.processed && len(rs.row.Process) == 0 {
				rs.processed = true
			}
			if !rs.fetched || !rs.processed {
				done = false
			}
		}
		if done {
			return nil
		}
		if !progress {
			return fmt.Errorf("zexec: query tree is stuck: circular or undefined variable dependencies")
		}
	}
}

// declaredBySameRow reports whether a variable is declared by one of the
// row's own process declarations (earlier in the same cell).
func declaredBySameRow(r *zql.Row, name string) bool {
	for _, d := range r.Process {
		if contains(d.OutVars, name) {
			return true
		}
	}
	return false
}
