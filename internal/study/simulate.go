package study

import (
	"math"
	"math/rand"
)

// Interface identifies one of the three studied interfaces.
type Interface int

// The three interfaces of the study.
const (
	DragAndDrop Interface = iota
	CustomBuilder
	Baseline
)

// String names the interface as the paper does.
func (i Interface) String() string {
	switch i {
	case DragAndDrop:
		return "Drag and drop interface"
	case CustomBuilder:
		return "Custom query builder"
	case Baseline:
		return "Baseline tool"
	}
	return "?"
}

// Profile is the generative model for one interface, taken from the paper's
// published means and standard deviations (Findings 1 and 2 of Section 8.1):
// completion time in seconds and accuracy in percent.
type Profile struct {
	TimeMean, TimeSD float64
	AccMean, AccSD   float64
}

// PaperProfiles are the distributions the thesis reports.
var PaperProfiles = map[Interface]Profile{
	DragAndDrop:   {TimeMean: 74, TimeSD: 15.1, AccMean: 85.3, AccSD: 7.61},
	CustomBuilder: {TimeMean: 115, TimeSD: 51.6, AccMean: 96.3, AccSD: 5.82},
	Baseline:      {TimeMean: 172.5, TimeSD: 50.5, AccMean: 69.9, AccSD: 13.3},
}

// Participant is one simulated subject's measurements on one interface.
type Participant struct {
	ID        int
	Interface Interface
	TimeSec   float64
	Accuracy  float64
}

// Experience reproduces Table 8.1: participants' prior experience counts.
type Experience struct {
	Tools string
	Count int
}

// PriorExperience is the paper's Table 8.1, verbatim study metadata.
var PriorExperience = []Experience{
	{Tools: "Excel, Google spreadsheet, Google Charts", Count: 8},
	{Tools: "Tableau", Count: 4},
	{Tools: "SQL, Databases", Count: 6},
	{Tools: "Matlab,R,Python,Java", Count: 8},
	{Tools: "Data mining tools such as weka, JNP", Count: 2},
	{Tools: "Other tools like D3", Count: 2},
}

// Simulation holds one simulated run of the within-subjects study.
type Simulation struct {
	Participants []Participant
}

// Simulate draws n participants per interface from the paper's published
// distributions (within-subjects: every participant uses every interface).
// Times are clamped to 10s and accuracies to [0, 100].
func Simulate(n int, seed int64) *Simulation {
	rng := rand.New(rand.NewSource(seed))
	s := &Simulation{}
	for id := 0; id < n; id++ {
		for _, iface := range []Interface{DragAndDrop, CustomBuilder, Baseline} {
			p := PaperProfiles[iface]
			t := math.Max(10, p.TimeMean+rng.NormFloat64()*p.TimeSD)
			a := math.Min(100, math.Max(0, p.AccMean+rng.NormFloat64()*p.AccSD))
			s.Participants = append(s.Participants, Participant{
				ID: id, Interface: iface, TimeSec: t, Accuracy: a,
			})
		}
	}
	return s
}

// Times returns completion times per interface, in interface order.
func (s *Simulation) Times() [][]float64 {
	return s.metric(func(p Participant) float64 { return p.TimeSec })
}

// Accuracies returns accuracies per interface.
func (s *Simulation) Accuracies() [][]float64 {
	return s.metric(func(p Participant) float64 { return p.Accuracy })
}

func (s *Simulation) metric(f func(Participant) float64) [][]float64 {
	out := make([][]float64, 3)
	for _, p := range s.Participants {
		out[p.Interface] = append(out[p.Interface], f(p))
	}
	return out
}

// InterfaceNames returns the three interface labels in order.
func InterfaceNames() []string {
	return []string{DragAndDrop.String(), CustomBuilder.String(), Baseline.String()}
}

// Table82 reproduces the paper's Table 8.2: Tukey's test on task completion
// time across the three interfaces.
func (s *Simulation) Table82() ([]TukeyComparison, ANOVAResult, error) {
	times := s.Times()
	anova, err := OneWayANOVA(times)
	if err != nil {
		return nil, ANOVAResult{}, err
	}
	cmp, err := TukeyHSD(InterfaceNames(), times)
	return cmp, anova, err
}

// AccuracyOverTime reproduces Figure 8.2's curves: for each interface, the
// expected accuracy of answers produced by time t, modeled as the accuracy
// level scaled by the fraction of participants done by t. Completion times
// follow the interface's normal distribution truncated below at 10 seconds
// (no task completes faster), matching Simulate's clamp.
func AccuracyOverTime(maxSec int, step int) map[Interface][]float64 {
	const floor = 10.0
	out := make(map[Interface][]float64)
	for iface, p := range PaperProfiles {
		zFloor := normCDF((floor - p.TimeMean) / p.TimeSD)
		var series []float64
		for t := 0; t <= maxSec; t += step {
			done := (normCDF((float64(t)-p.TimeMean)/p.TimeSD) - zFloor) / (1 - zFloor)
			if done < 0 {
				done = 0
			}
			series = append(series, done*p.AccMean)
		}
		out[iface] = series
	}
	return out
}

func normCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// PreferenceChiSquare reproduces the paper's workflow-preference statistic:
// 9 of 12 participants preferred zenvisage, 2 the baseline (χ2 = 8.22 in the
// paper among those expressing a preference).
func PreferenceChiSquare() float64 {
	return ChiSquare1DF([2]int{9, 2})
}
